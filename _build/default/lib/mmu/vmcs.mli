(** Virtual Machine Control Structure — the slice SkyBridge needs (§2.2):
    the EPTP list (up to 512 entries), the currently installed EPTP
    index, the VPID control and VM-exit statistics.

    The Rootkernel (lib/core) owns the policy: which events exit and what
    the handlers do; the VMCS is passive state. *)

type exit_reason =
  | Exit_cpuid
  | Exit_vmcall
  | Exit_ept_violation
  | Exit_invalid_vmfunc

val exit_reason_name : exit_reason -> string

val eptp_list_size : int
(** 512 — the hardware limit the §10 LRU-eviction extension works around. *)

type t = {
  eptp_list : int array;
  mutable current_index : int;
  mutable vpid_enabled : bool;
  exit_counts : int array;
  mutable total_exits : int;
}

val create : ?vpid:bool -> unit -> t
(** [vpid] defaults to true; without it every EPTP switch flushes the
    TLBs ({!Vmfunc.execute}). *)

val set_eptp : t -> index:int -> eptp:int -> unit
val clear_eptp : t -> index:int -> unit
val eptp_at : t -> index:int -> int

val install_list : t -> int list -> unit
(** Replace the whole list (slot 0 first) and reset the current index to
    0 — what the Subkernel does through a VMCALL before scheduling a new
    process (§4.2). *)

val current_eptp : t -> int
val current_index : t -> int
val record_exit : t -> exit_reason -> unit
val exits : t -> exit_reason -> int
val total_exits : t -> int
