(** Performance monitoring unit: per-core event counters.

    Holds events that are not tied to a particular cache/TLB structure
    (those derive their counters from {!Cache}/{!Tlb} statistics via
    {!Cpu.footprint}): IPIs, VM exits, VMFUNC and SYSCALL executions, CR3
    writes, IPC round trips. *)

type event =
  | Ipi_sent
  | Vm_exit
  | Vmfunc_exec
  | Syscall_exec
  | Cr3_write
  | Ipc_roundtrip
  | Instruction
  | Psc_hit  (** TLB refill resumed the guest walk from a PSC level *)
  | Psc_miss  (** TLB refill had to walk from CR3 *)
  | Ept_walk_cache_hit
  | Ept_walk_cache_miss
  | Hot_line_hit  (** host-side hot line served the translation *)
  | Walk_cycles  (** accumulator: simulated cycles spent in TLB refills *)
  | Wrpkru_exec  (** WRPKRU protection-key switches (MPK backend) *)

type t

val create : unit -> t
val count : t -> event -> unit
val add : t -> event -> int -> unit
val read : t -> event -> int
val reset : t -> unit
val name : event -> string
