lib/mmu/vmfunc.mli: Vcpu
