type kind = Crash | Hang | Revoke | Ept_fault | Drop

type trigger = At_cycle of int | At_hit of int | Every of int | Prob of float

exception Injected of { site : string; kind : kind }

let string_of_kind = function
  | Crash -> "crash"
  | Hang -> "hang"
  | Revoke -> "revoke"
  | Ept_fault -> "ept_fault"
  | Drop -> "drop"

type arm_state = {
  a_kind : kind;
  a_trigger : trigger;
  mutable a_budget : int;
  mutable a_hits : int;
  mutable a_rng : int64;  (** per-arm splitmix64 state *)
}

(* All engine state lives in one record. Single-machine runs use the
   process-wide default engine and behave exactly like the old global
   singleton; the parallel scheduler binds a fresh engine domain-locally
   per shard ({!with_engine}), so concurrent shards arm, fire and log
   independently and a shard's census is identical whether it ran
   sequentially or on its own domain. *)
type engine = {
  mutable e_enabled : bool;
  mutable e_scope : int;
  mutable e_seed : int;
  mutable e_clock : int -> int;
  e_arms : (string, arm_state list ref) Hashtbl.t;
  mutable e_fired : (string * kind * int) list;
}

let fresh_engine ?(seed = 0) () =
  {
    e_enabled = false;
    e_scope = 0;
    e_seed = seed;
    e_clock = (fun _ -> 0);
    e_arms = Hashtbl.create 16;
    e_fired = [];
  }

let default_engine = fresh_engine ()

(* Count of engines whose [e_enabled] is set, so the disabled hot path
   ({!is_enabled} in {!Sky_sim.Cpu.charge}) stays one atomic load: when
   zero, no engine anywhere can fire and hooks return immediately. *)
let enabled_engines = Atomic.make 0

(* Number of domains currently bound to a non-default engine (same fast
   default / scoped override pattern as {!Sky_trace.Trace}). *)
let scoped_engines = Atomic.make 0

let engine_key : engine Domain.DLS.key =
  Domain.DLS.new_key (fun () -> default_engine)

let engine () =
  if Atomic.get scoped_engines = 0 then default_engine
  else Domain.DLS.get engine_key

let with_engine e f =
  let prev = Domain.DLS.get engine_key in
  Domain.DLS.set engine_key e;
  Atomic.incr scoped_engines;
  Fun.protect
    ~finally:(fun () ->
      Domain.DLS.set engine_key prev;
      Atomic.decr scoped_engines)
    f

let set_engine_enabled e b =
  if e.e_enabled <> b then begin
    e.e_enabled <- b;
    if b then Atomic.incr enabled_engines else Atomic.decr enabled_engines
  end

(* Same mixer as Sky_sim.Rng (copied: sky_faults sits below sky_sim in
   the dependency order so the sim's hot loop can host fault sites). *)
let sm_next a =
  let open Int64 in
  let s = add a.a_rng 0x9E3779B97F4A7C15L in
  a.a_rng <- s;
  let z = mul (logxor s (shift_right_logical s 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let sm_float a =
  let bits = Int64.to_int (sm_next a) land ((1 lsl 53) - 1) in
  float_of_int bits /. float_of_int (1 lsl 53)

let reset ?(seed = 1) () =
  let e = engine () in
  Hashtbl.reset e.e_arms;
  e.e_fired <- [];
  e.e_scope <- 0;
  e.e_seed <- seed;
  set_engine_enabled e true

let disable () = set_engine_enabled (engine ()) false

let is_enabled () = Atomic.get enabled_engines > 0 && (engine ()).e_enabled

let set_clock f = (engine ()).e_clock <- f

(* Layers above (e.g. the simulator's host-side hot lines) register
   state to drop whenever a fault scope opens, so runs with the engine
   armed take identical code paths regardless of prior warm-up. The
   hook list is registered once at module-init time and is process-wide;
   each callback acts on the *current* scoped state (e.g. the current
   shard's hot-line table), so scope entry in one shard cannot disturb
   another. *)
let scope_enter_hook : (unit -> unit) ref = ref (fun () -> ())

let on_scope_enter f =
  let prev = !scope_enter_hook in
  scope_enter_hook :=
    fun () ->
      prev ();
      f ()

let enter_scope () =
  let e = engine () in
  if e.e_enabled then !scope_enter_hook ();
  e.e_scope <- e.e_scope + 1

let leave_scope () =
  let e = engine () in
  if e.e_scope > 0 then e.e_scope <- e.e_scope - 1

let in_scope () = (engine ()).e_scope > 0

let with_scope f =
  enter_scope ();
  Fun.protect ~finally:leave_scope f

let arm ?(budget = 1) ~site ~kind trigger =
  let e = engine () in
  let lst =
    match Hashtbl.find_opt e.e_arms site with
    | Some l -> l
    | None ->
      let l = ref [] in
      Hashtbl.replace e.e_arms site l;
      l
  in
  (* Seed the arm's private stream from (engine seed, site, ordinal) so
     firing schedules do not depend on how other sites interleave. *)
  let ordinal = List.length !lst in
  let a =
    {
      a_kind = kind;
      a_trigger = trigger;
      a_budget = budget;
      a_hits = 0;
      a_rng =
        Int64.of_int (e.e_seed lxor Hashtbl.hash (site, ordinal) lxor 0x5b1d);
    }
  in
  lst := !lst @ [ a ]

let check ?(scoped = false) ~core site =
  let e = engine () in
  if not e.e_enabled then None
  else if scoped && e.e_scope <= 0 then None
  else
    match Hashtbl.find_opt e.e_arms site with
    | None -> None
    | Some lst ->
      let now = e.e_clock core in
      let rec go = function
        | [] -> None
        | a :: rest ->
          if a.a_budget <= 0 then go rest
          else begin
            a.a_hits <- a.a_hits + 1;
            let fires =
              match a.a_trigger with
              | At_cycle c -> now >= c
              | At_hit n -> a.a_hits = n
              | Every n -> n > 0 && a.a_hits mod n = 0
              | Prob p -> sm_float a < p
            in
            if fires then begin
              a.a_budget <- a.a_budget - 1;
              e.e_fired <- (site, a.a_kind, now) :: e.e_fired;
              Sky_trace.Trace.instant ~core ~cat:"fault" ("fault." ^ site);
              Some a.a_kind
            end
            else go rest
          end
      in
      go !lst

let inject ~core site =
  if is_enabled () then
    match check ~scoped:true ~core site with
    | Some kind -> raise (Injected { site; kind })
    | None -> ()

let fired () = List.rev (engine ()).e_fired

let fired_counts () =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (site, _, _) ->
      Hashtbl.replace tbl site
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl site)))
    (engine ()).e_fired;
  Hashtbl.fold (fun site n acc -> (site, n) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
