(** Bounded retry with exponential backoff over {!Subkernel.call} — the
    client-side half of §7 recovery used by the kvstore/ycsb clients.

    On [Crashed] the server is restarted (orphans rebound) before the
    retry; on [Revoked] from an aborted direct call the binding is
    re-established; a top-level revoked binding never errors at all — it
    degrades to the slowpath inside {!Subkernel.call}. *)

type stats = {
  mutable attempts : int;  (** total call attempts, including retries *)
  mutable retried_ok : int;  (** calls that succeeded after >= 1 retry *)
  mutable degraded : int;  (** calls served via the slowpath fallback *)
  mutable lost : int;  (** calls that exhausted the retry budget *)
  mutable restarts : int;  (** server restarts triggered *)
}

val create_stats : unit -> stats

type budget
(** A shared retry budget (token bucket): every fresh call deposits
    [ratio] tokens, every retry withdraws one. Under overload deposits
    dry up and retries are {e refused} — retry traffic is bounded to a
    fraction of offered traffic, so recovery can never amplify a
    saturation collapse. Also owns the deterministic jitter stream used
    to decorrelate backoff. *)

val budget : ?cap:float -> ?ratio:float -> seed:int -> unit -> budget
(** [ratio] (default 0.2) = sustained retries allowed per fresh call;
    [cap] (default 32) bounds the burst. *)

val budget_refused : budget -> int
(** Retries suppressed because the bucket was empty (each surfaces as a
    {!Gave_up}). *)

val budget_withdrawn : budget -> int

exception Gave_up of Subkernel.call_error
(** The retry budget is exhausted; carries the last typed error. *)

val call :
  ?max_attempts:int ->
  ?backoff:int ->
  ?stats:stats ->
  ?budget:budget ->
  ?timeout:int ->
  ?on_crash:(int -> unit) ->
  Subkernel.t ->
  core:int ->
  client:Sky_ukernel.Proc.t ->
  server_id:int ->
  bytes ->
  bytes
(** [call sb ~core ~client ~server_id msg] with up to [max_attempts]
    (default 4) attempts, charging [backoff lsl attempt] cycles (default
    base 2000) between attempts; with a [budget], each retry must also
    withdraw a token (else the call gives up immediately) and the
    backoff is decorrelated-jittered from the budget's seeded stream.
    [on_crash sid] runs after a crashed server [sid] has been restarted
    (e.g. to remount a file system). *)
