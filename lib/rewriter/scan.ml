open Sky_isa

type field = In_modrm | In_sib | In_disp | In_imm | In_opcode

type case = C1_vmfunc | C2_spanning | C3_embedded of field

type occurrence = { at : int; case : case; span : Decode.decoded list }

let find_pattern code =
  let n = Bytes.length code in
  let rec go i acc =
    if i + 2 >= n then List.rev acc
    else if
      Char.code (Bytes.get code i) = 0x0F
      && Char.code (Bytes.get code (i + 1)) = 0x01
      && Char.code (Bytes.get code (i + 2)) = 0xD4
    then go (i + 1) (i :: acc)
    else go (i + 1) acc
  in
  go 0 []

let count_pattern code = List.length (find_pattern code)

(* Chunked scanning for per-page audits. A [0F 01 D4] split across two
   chunks is invisible to [find_pattern] run on each chunk alone, so we
   carry the last two bytes of each chunk into the scan of the next one.
   [chunks] are [(global_offset, bytes)] pieces in increasing offset
   order; a gap between chunks resets the carry (the pattern cannot span
   unscanned bytes). Returns global offsets of every occurrence. *)
let find_pattern_chunked chunks =
  let hits = ref [] in
  let carry = ref Bytes.empty in
  let carry_off = ref 0 in
  List.iter
    (fun (off, chunk) ->
      let contiguous =
        Bytes.length !carry > 0 && !carry_off + Bytes.length !carry = off
      in
      let joined, joined_off =
        if contiguous then (Bytes.cat !carry chunk, !carry_off)
        else (chunk, off)
      in
      (* Hits entirely inside the carry were already reported by the
         previous iteration (the carry is < 3 bytes, so any hit here uses
         at least one byte of the new chunk). *)
      List.iter (fun at -> hits := (joined_off + at) :: !hits)
        (find_pattern joined);
      let keep = min 2 (Bytes.length joined) in
      carry := Bytes.sub joined (Bytes.length joined - keep) keep;
      carry_off := joined_off + Bytes.length joined - keep)
    chunks;
  List.sort_uniq compare !hits

(* [find_pattern] over [code] presented as [page_size]-sized pages — the
   shape a per-page audit sees. Equivalent to scanning the whole buffer
   contiguously thanks to the carried overlap. *)
let find_pattern_paged ?(page_size = 4096) code =
  let n = Bytes.length code in
  let rec pages off acc =
    if off >= n then List.rev acc
    else
      let len = min page_size (n - off) in
      pages (off + page_size) ((off, Bytes.sub code off len) :: acc)
  in
  find_pattern_chunked (pages 0 [])

(* Which encoding field does byte [rel] (relative to the instruction
   start) belong to? *)
let field_of (l : Encode.layout) rel =
  let in_span off len = match off with Some o -> rel >= o && rel < o + len | None -> false in
  if in_span l.Encode.modrm_off 1 then In_modrm
  else if in_span l.Encode.sib_off 1 then In_sib
  else if in_span l.Encode.disp_off l.Encode.disp_len then In_disp
  else if in_span l.Encode.imm_off l.Encode.imm_len then In_imm
  else In_opcode

let scan code =
  let hits = find_pattern code in
  if hits = [] then []
  else begin
    let insns = Array.of_list (Decode.decode_all code) in
    (* Map a byte offset to the index of the covering instruction. *)
    let covering at =
      let rec bsearch lo hi =
        if lo >= hi then lo - 1
        else
          let mid = (lo + hi) / 2 in
          if insns.(mid).Decode.off <= at then bsearch (mid + 1) hi
          else bsearch lo mid
      in
      bsearch 0 (Array.length insns)
    in
    List.map
      (fun at ->
        let i = covering at in
        let d = insns.(i) in
        let ends = d.Decode.off + d.Decode.len in
        if at + 3 > ends then begin
          (* Spans into following instruction(s). *)
          let rec collect j acc =
            if j >= Array.length insns then List.rev acc
            else
              let dj = insns.(j) in
              if dj.Decode.off < at + 3 then collect (j + 1) (dj :: acc)
              else List.rev acc
          in
          { at; case = C2_spanning; span = collect i [] }
        end
        else if d.Decode.insn = Some Insn.Vmfunc then
          { at; case = C1_vmfunc; span = [ d ] }
        else
          {
            at;
            case = C3_embedded (field_of d.Decode.layout (at - d.Decode.off));
            span = [ d ];
          })
      hits
  end

let field_name = function
  | In_modrm -> "modrm"
  | In_sib -> "sib"
  | In_disp -> "disp"
  | In_imm -> "imm"
  | In_opcode -> "opcode"

let case_name = function
  | C1_vmfunc -> "C1(vmfunc)"
  | C2_spanning -> "C2(spanning)"
  | C3_embedded f -> Printf.sprintf "C3(%s)" (field_name f)
