(** Minimal aligned-table rendering for experiment output, with optional
    paper-reference columns so every bench prints "paper vs measured"
    side by side. *)

type t = { title : string; header : string list; rows : string list list; notes : string list }

let make ~title ~header ?(notes = []) rows = { title; header; rows; notes }

let widths t =
  let all = t.header :: t.rows in
  let cols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let w = Array.make cols 0 in
  List.iter
    (List.iteri (fun i cell -> w.(i) <- max w.(i) (String.length cell)))
    all;
  w

let render t =
  let w = widths t in
  let line cells =
    String.concat "  "
      (List.mapi
         (fun i c ->
           let pad = w.(i) - String.length c in
           if i = 0 then c ^ String.make pad ' ' else String.make pad ' ' ^ c)
         cells)
  in
  let sep =
    String.concat "--"
      (Array.to_list (Array.map (fun n -> String.make n '-') w))
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf (line t.header ^ "\n");
  Buffer.add_string buf (sep ^ "\n");
  List.iter (fun r -> Buffer.add_string buf (line r ^ "\n")) t.rows;
  List.iter (fun n -> Buffer.add_string buf ("  note: " ^ n ^ "\n")) t.notes;
  Buffer.contents buf

let print t = print_string (render t)

let to_markdown t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "### %s\n\n" t.title);
  let row cells = "| " ^ String.concat " | " cells ^ " |\n" in
  Buffer.add_string buf (row t.header);
  Buffer.add_string buf (row (List.map (fun _ -> "---") t.header));
  List.iter (fun r -> Buffer.add_string buf (row r)) t.rows;
  List.iter (fun n -> Buffer.add_string buf (Printf.sprintf "\n> %s\n" n)) t.notes;
  Buffer.add_string buf "\n";
  Buffer.contents buf

(* Machine-readable rendering for `skybench run --json`, so benchmark
   trajectories can be recorded across PRs. *)
let to_json t =
  let open Sky_trace.Json in
  let row cells = List (List.map (fun c -> String c) cells) in
  to_string
    (Obj
       [
         ("title", String t.title);
         ("header", row t.header);
         ("rows", List (List.map row t.rows));
         ("notes", row t.notes);
       ])

(* Render tracer latency histograms as a table — the hook any experiment
   (or `skybench trace`) uses to print its p50/p95/p99 profile. *)
let of_histograms ~title hists =
  make ~title
    ~header:[ "span"; "count"; "p50"; "p95"; "p99"; "max"; "mean" ]
    (List.map
       (fun (name, h) ->
         let open Sky_trace.Histogram in
         [
           name;
           string_of_int (count h);
           string_of_int (p50 h);
           string_of_int (p95 h);
           string_of_int (p99 h);
           string_of_int (max_value h);
           Printf.sprintf "%.1f" (mean h);
         ])
       hists)

(* Per-category cycle attribution (the tracer's Figure-7-style view). *)
let of_categories ~title cats =
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 cats in
  make ~title
    ~header:[ "category"; "cycles"; "share" ]
    (List.map
       (fun (name, c) ->
         [
           name;
           string_of_int c;
           (if total = 0 then "0.0%"
            else Printf.sprintf "%.1f%%" (100.0 *. float_of_int c /. float_of_int total));
         ])
       cats)

let fmt_int n =
  (* 12345 -> "12,345" for readability *)
  let s = string_of_int n in
  let len = String.length s in
  let buf = Buffer.create (len + 4) in
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 && c <> '-' then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let fmt_float f = Printf.sprintf "%.1f" f
let fmt_ops f = Printf.sprintf "%.0f" f
let fmt_speedup f = Printf.sprintf "%+.1f%%" ((f -. 1.0) *. 100.0)
