type policy = Lazy_scheduling | Benno

let policy_name = function
  | Lazy_scheduling -> "lazy scheduling"
  | Benno -> "Benno scheduling"

type thread = { tid : int; mutable runnable : bool; mutable queued : bool }

let tid t = t.tid
let runnable t = t.runnable

type t = {
  policy : policy;
  mutable queue : thread list;  (** FIFO: head = next to run *)
  mutable examined : int;
  mutable queue_ops : int;
}

let queue_op_cost = 40 (* dequeue/enqueue: pointer surgery + accounting *)
let examine_cost = 15 (* look at one entry, test runnable *)

let create policy = { policy; queue = []; examined = 0; queue_ops = 0 }

let enqueue t cpu th =
  if not th.queued then begin
    t.queue <- t.queue @ [ th ];
    th.queued <- true;
    t.queue_ops <- t.queue_ops + 1;
    Sky_sim.Cpu.charge cpu queue_op_cost
  end

let dequeue_specific t cpu th =
  if th.queued then begin
    t.queue <- List.filter (fun x -> x != th) t.queue;
    th.queued <- false;
    t.queue_ops <- t.queue_ops + 1;
    Sky_sim.Cpu.charge cpu queue_op_cost
  end

let spawn_thread t ~tid =
  let th = { tid; runnable = true; queued = false } in
  t.queue <- t.queue @ [ th ];
  th.queued <- true;
  th

let block t cpu th =
  th.runnable <- false;
  match t.policy with
  | Benno -> dequeue_specific t cpu th
  | Lazy_scheduling -> (* the lazy part: leave the stale entry behind *) ()

let wake t cpu th =
  th.runnable <- true;
  match t.policy with
  | Benno -> enqueue t cpu th
  | Lazy_scheduling -> if not th.queued then enqueue t cpu th

let pick t cpu =
  let rec go () =
    match t.queue with
    | [] -> None
    | th :: rest ->
      t.examined <- t.examined + 1;
      Sky_sim.Cpu.charge cpu examine_cost;
      t.queue <- rest;
      th.queued <- false;
      t.queue_ops <- t.queue_ops + 1;
      Sky_sim.Cpu.charge cpu queue_op_cost;
      if th.runnable then Some th
      else (* lazy garbage collection of a stale entry *) go ()
  in
  go ()

let direct_switch t cpu ~from_thread ~to_thread =
  (* Fastpath: sender blocks, receiver (which was blocked in recv) runs.
     Under Benno neither is in the queue, so nothing is touched; under
     lazy scheduling the sender's stale entry stays behind for a later
     pick to trip over. *)
  from_thread.runnable <- false;
  to_thread.runnable <- true;
  match t.policy with
  | Benno -> ()
  | Lazy_scheduling ->
    ignore cpu;
    ignore t

let queue_length t = List.length t.queue
let examined t = t.examined
let queue_ops t = t.queue_ops
