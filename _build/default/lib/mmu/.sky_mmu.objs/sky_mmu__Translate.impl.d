lib/mmu/translate.ml: Bytes Ept List Page_table Pte Sky_mem Sky_sim Vcpu Vmcs
