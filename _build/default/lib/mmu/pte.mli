(** 64-bit page-table / EPT entry encoding (x86-64 bit layout).

    Bit 0 present (EPT: readable), bit 1 writable, bit 2 user (EPT:
    executable), bit 7 PS (huge page), bit 63 NX; the frame number sits
    in bits 12..51. Shared by the guest page tables and the EPTs so a
    walker reads exactly what hardware would. *)

type flags = {
  present : bool;
  writable : bool;
  user : bool;
  huge : bool;
  nx : bool;
}

val rw : flags
(** Supervisor read/write (kernel data). *)

val urw : flags
(** User read/write (heaps, stacks, buffers). *)

val urx : flags
(** User read/execute (code pages, the trampoline). *)

val ur : flags
(** User read-only, no-execute (the calling-key table). *)

val kernel_rx : flags
val absent : flags

val encode : pa:int -> flags -> int64
(** Raises [Invalid_argument] if [pa] is not page-aligned. *)

val decode : int64 -> int * flags
(** Physical address and flags of an entry. *)

val is_present : int64 -> bool

val zero : int64
(** The not-present entry. *)

val addr_mask : int64
