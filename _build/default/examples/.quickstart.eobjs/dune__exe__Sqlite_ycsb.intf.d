examples/sqlite_ycsb.mli:
