(** Chrome [trace_event] exporter.

    Produces the JSON Object Format understood by [chrome://tracing] and
    Perfetto: spans as complete ("ph":"X") events, instants as "ph":"i".
    Timestamps are simulated cycles emitted in the [ts]/[dur]
    microsecond fields — so the UI's "1 us" reads as "1 cycle"; at the
    modelled 4 GHz, 4,000 displayed "us" = 1 real microsecond. *)

let ev_json (e : Trace.ev) =
  let common =
    [
      ("name", Json.String e.Trace.name);
      ("cat", Json.String (if e.Trace.cat = "" then "default" else e.Trace.cat));
      ("pid", Json.Int 0);
      ("tid", Json.Int e.Trace.core);
      ("ts", Json.Int e.Trace.ts);
    ]
  in
  if Trace.is_span e then
    Json.Obj (common @ [ ("ph", Json.String "X"); ("dur", Json.Int e.Trace.dur) ])
  else Json.Obj (common @ [ ("ph", Json.String "i"); ("s", Json.String "t") ])

let hist_json (name, h) =
  ( name,
    Json.Obj
      [
        ("count", Json.Int (Histogram.count h));
        ("p50", Json.Int (Histogram.p50 h));
        ("p95", Json.Int (Histogram.p95 h));
        ("p99", Json.Int (Histogram.p99 h));
        ("max", Json.Int (Histogram.max_value h));
        ("mean", Json.Float (Histogram.mean h));
      ] )

let to_json () =
  Json.Obj
    [
      ("traceEvents", Json.List (List.map ev_json (Trace.events ())));
      ("displayTimeUnit", Json.String "ns");
      ( "otherData",
        Json.Obj
          [
            ("clock", Json.String "simulated-cycles");
            ("droppedEvents", Json.Int (Trace.dropped ()));
          ] );
      ( "categoryCycles",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (Trace.categories ())) );
      ("histograms", Json.Obj (List.map hist_json (Trace.histograms ())));
    ]

let export () = Json.to_string (to_json ())
