(** Extended page tables (GPA → HPA), stored in simulated physical memory.

    Supports the two shapes SkyBridge needs (§4.1, §4.3):

    - the Rootkernel's {e base EPT}, identity-mapping almost all host
      physical memory with 1 GiB huge pages so that the Subkernel never
      takes an EPT violation and nested walks stay short;
    - per-client {e server EPTs}: shallow clones of the base EPT in which
      the guest-physical address of the client's CR3 frame is remapped to
      the host-physical address of the server's CR3 frame. The clone is
      copy-on-write: only the four table pages on the path to the remapped
      GPA are private ("Only four pages ... are modified", §4.3). *)

type t

type fault = Ept_not_present of int  (** faulting guest-physical address *)

exception Ept_violation of fault

val create : Sky_mem.Frame_alloc.t -> t

val root_pa : t -> int
(** The EPTP value (physical address of the root table). *)

val map_identity_1g :
  t -> mem:Sky_mem.Phys_mem.t -> alloc:Sky_mem.Frame_alloc.t -> gib:int -> unit
(** Identity-map [gib] gibibytes of guest-physical space with 1 GiB huge
    pages (read/write/execute). *)

val map_identity_4k :
  t -> mem:Sky_mem.Phys_mem.t -> alloc:Sky_mem.Frame_alloc.t -> mib:int -> unit
(** Identity-map [mib] mebibytes with 4 KiB pages — the ablation baseline
    showing why the Rootkernel insists on 1 GiB pages (longer nested
    walks, far more EPT pages). *)

val map_4k :
  t ->
  mem:Sky_mem.Phys_mem.t ->
  alloc:Sky_mem.Frame_alloc.t ->
  gpa:int ->
  hpa:int ->
  unit
(** Map a single 4 KiB guest-physical page (r/w/x); splits huge mappings
    along the way as needed. *)

val map_4k_flags :
  t ->
  mem:Sky_mem.Phys_mem.t ->
  alloc:Sky_mem.Frame_alloc.t ->
  gpa:int ->
  hpa:int ->
  flags:Pte.flags ->
  unit
(** {!map_4k} with explicit permissions (EPT reading of the bits: bit 1
    write, bit 2 execute) — how the Subkernel maps the trampoline page
    non-writable into server EPTs. *)

val unmap_4k :
  t ->
  mem:Sky_mem.Phys_mem.t ->
  alloc:Sky_mem.Frame_alloc.t ->
  gpa:int ->
  unit
(** Make one 4 KiB GPA page not-present (subsequent access faults);
    splits huge mappings along the way. Used by tests to inject EPT
    violations. *)

val clone_shallow :
  t -> mem:Sky_mem.Phys_mem.t -> alloc:Sky_mem.Frame_alloc.t -> t
(** New EPT whose root is a copy of this EPT's root; all lower levels are
    shared until {!map_4k}/{!remap_gpa} copies them on write. *)

val clone_deep :
  t -> mem:Sky_mem.Phys_mem.t -> alloc:Sky_mem.Frame_alloc.t -> t
(** Copy every table page (the ablation contrast to {!clone_shallow}:
    §4.3's "just a shallow copy" claim quantified). *)

val remap_gpa :
  t ->
  mem:Sky_mem.Phys_mem.t ->
  alloc:Sky_mem.Frame_alloc.t ->
  gpa:int ->
  hpa:int ->
  unit
(** The CR3-remapping trick: make guest-physical page [gpa] translate to
    host-physical page [hpa] in this EPT. *)

type walk_result = {
  hpa : int;
  entries_read : int list;  (** PAs of EPT entries touched, root first *)
}

val walk :
  mem:Sky_mem.Phys_mem.t -> root_pa:int -> gpa:int -> (walk_result, fault) result

val walk_flags :
  mem:Sky_mem.Phys_mem.t ->
  root_pa:int ->
  gpa:int ->
  (int * Pte.flags, fault) result
(** Like {!walk} but returns the leaf entry's frame PA and flags — what
    the invariant checker needs to judge permissions. *)

val iter_leaves :
  mem:Sky_mem.Phys_mem.t ->
  root_pa:int ->
  (gpa:int -> hpa:int -> level:int -> flags:Pte.flags -> unit) ->
  unit
(** Visit every present leaf mapping reachable from [root_pa]: 4 KiB
    leaves at [level = 0] and huge leaves at their level. [hpa] is the
    base frame/region PA stored in the entry. *)

val pages_owned : t -> int
(** Table pages private to this EPT — 1 for a fresh shallow clone, 4 after
    one CR3 remap (§4.3's "only four pages"). *)

val destroy : t -> alloc:Sky_mem.Frame_alloc.t -> unit
