lib/ukernel/lock.ml: Array Fun List Sky_sim
