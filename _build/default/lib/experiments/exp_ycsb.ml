(** Figures 9–11: YCSB-A throughput vs number of client threads for
    seL4, Fiasco.OC and Zircon, each as st / mt / SkyBridge. *)

open Sky_harness
open Sky_ukernel

let paper =
  (* variant -> series name -> throughput at 1/2/4/8 threads *)
  [
    (Config.Sel4, "st", [ 9627.; 3748.; 1863.; 1387. ]);
    (Config.Sel4, "mt", [ 9660.; 4456.; 2182.; 1489. ]);
    (Config.Sel4, "SkyBridge", [ 17575.; 8321.; 6059.; 2122. ]);
    (Config.Fiasco, "st", [ 3644.; 2342.; 1365.; 786. ]);
    (Config.Fiasco, "mt", [ 4245.; 2933.; 1640.; 940. ]);
    (Config.Fiasco, "SkyBridge", [ 8080.; 4811.; 2970.; 2607. ]);
    (Config.Zircon, "st", [ 2466.; 1137.; 743.; 75. ]);
    (Config.Zircon, "mt", [ 4181.; 1602.; 1187.; 27. ]);
    (Config.Zircon, "SkyBridge", [ 11296.; 6162.; 3630.; 2060. ]);
  ]

let thread_counts = [ 1; 2; 4; 8 ]

(* Scaled-down workload sizes keep the bench fast; --full in bin/skybench
   runs the paper's 10,000 records. *)
let default_records = 1000
let default_ops = 50

let series ~variant ~transport ~records ~ops_per_thread =
  let stack = Stack.build ~variant ~transport () in
  let wl =
    Sky_ycsb.Workload.create stack.Stack.kernel stack.Stack.db ~records
      ~value_size:100
  in
  Sky_ycsb.Workload.load wl ~core:0;
  List.map
    (fun threads ->
      Stack.spread_client stack ~threads;
      Sky_ycsb.Workload.run wl ~kind:Sky_ycsb.Workload.A ~threads ~ops_per_thread)
    thread_counts

let run_variant ?(records = default_records) ?(ops_per_thread = default_ops)
    variant =
  let figno =
    match variant with
    | Config.Sel4 -> 9
    | Config.Fiasco -> 10
    | Config.Zircon | Config.Linux -> 11
  in
  let configs =
    [ ("st", Stack.Ipc { st = true }); ("mt", Stack.Ipc { st = false });
      ("SkyBridge", Stack.Skybridge) ]
  in
  let rows =
    List.map
      (fun (name, transport) ->
        let ours = series ~variant ~transport ~records ~ops_per_thread in
        let ref_series =
          let _, _, v =
            List.find (fun (v, n, _) -> v = variant && n = name) paper
          in
          v
        in
        Printf.sprintf "%s-%s" (Config.variant_name variant) name
        :: List.map2
             (fun p o -> Printf.sprintf "%.0f/%s" p (Tbl.fmt_ops o))
             ref_series ours)
      configs
  in
  Tbl.make
    ~title:
      (Printf.sprintf "Figure %d: YCSB-A throughput, %s (ops/s, paper/ours)"
         figno (Config.variant_name variant))
    ~header:[ "series"; "1 thread"; "2 threads"; "4 threads"; "8 threads" ]
    ~notes:
      [
        Printf.sprintf
          "scaled workload: %d records, %d ops/thread (paper: 10,000 \
           records); shape targets: SkyBridge highest, throughput falls \
           with threads (xv6fs big lock)"
          records ops_per_thread;
      ]
    rows

let run_fig9 () = run_variant Config.Sel4
let run_fig10 () = run_variant Config.Fiasco
let run_fig11 () = run_variant Config.Zircon
