(** Capability-routed service mesh over SkyBridge (ROADMAP item 5).

    Three pieces, layered on the PR 3 recovery machinery:

    - a {b name service} — a real SkyBridge server process ["nameserv"]
      mapping URI schemes ([kv://], [fs:///path], [blk://], [http://])
      to Subkernel server ids, with resolve/register/unregister carried
      over SkyBridge calls and a per-core resolution cache invalidated
      (by epoch) on re-registration {e and} on every binding change;
    - {b refcounted service capabilities} — a {!grant} derives child
      capabilities (from the name service's per-sid roots) to a client
      for the target and its whole dependency closure, then binds;
      revocation tears bindings down permanently
      ([revoke_binding ~orphan:false]) only once no live capability of
      that client covers the server id, and {!revoke_service} destroys
      the entire derivation subtree at once;
    - a {b mesh audit} — {!audit} lowers the live binding set into
      {!Sky_analysis.Mesh_check}: no binding outlives its capability,
      no URI resolves to a dead server.

    Fault site {!fault_site} (["server.nameserv"]): arm a [Crash] there
    to kill the name service mid-resolve; {!resolve} rides
    {!Sky_core.Retry.call}, so it restarts and retries transparently. *)

type t

type error =
  [ `Unresolved of string  (** no registration for the URI's scheme *)
  | `Denied of string  (** no live capability covers the target *)
  | `Failed of Sky_core.Subkernel.call_error  (** retry budget exhausted *)
  ]

exception Unknown_service of string
exception Denied of { uri : string; pid : int }

val fault_site : string

val create : ?seed:int -> ?retry_budget:Sky_core.Retry.budget -> Sky_core.Subkernel.t -> t
(** Spawns and registers the ["nameserv"] server (one connection per
    core) and the mesh's privileged ["meshd"] admin client, and
    subscribes to {!Sky_core.Subkernel.on_binding_change} so crash /
    revoke / rebind / restart all refresh the resolution caches.
    [retry_budget] (none by default) is applied to every routed
    {!call} so recovery retries cannot amplify overload; name-service
    admin traffic is never budgeted. *)

val connect : t -> Sky_ukernel.Proc.t -> unit
(** Bind [client] to the name service (deriving it a resolve
    capability). Idempotent; {!grant} calls it implicitly. *)

val register : t -> core:int -> uri:string -> server_id:int -> unit
(** Register (or re-register — the hot-upgrade primitive) the URI's
    scheme to [server_id], over a SkyBridge call to the name service.
    Re-registration bumps the epoch: every per-core cache entry for the
    scheme goes stale at once. *)

val unregister : t -> core:int -> uri:string -> unit

val resolve : t -> core:int -> client:Sky_ukernel.Proc.t -> string -> int option
(** Resolve a URI to a server id: per-core cache hit when the epoch
    matches, otherwise a SkyBridge call to the name service (under
    {!Sky_core.Retry.call} — a crashed name service restarts and the
    resolve retries). [client] must be {!connect}ed. *)

val server_of_uri : t -> string -> int option
(** Authoritative table lookup, no wire call — supervisor-side only. *)

type grant

val grant :
  t ->
  core:int ->
  ?rights:Sky_ukernel.Capability.rights ->
  client:Sky_ukernel.Proc.t ->
  string ->
  grant
(** [grant t ~core ~client uri] derives capabilities to [client] for the
    resolved server {e and every server in its dependency closure}
    (deps get send-only), then establishes the Subkernel binding.
    @raise Unknown_service when the URI does not resolve. *)

val grant_uri : grant -> string
val grant_pid : grant -> int
val grant_live : grant -> bool
val grants : t -> grant list

val revoke_grant : t -> core:int -> grant -> unit
(** Delete the grant's capabilities, then tear down every binding of
    that client no longer covered by {e any} live capability
    (refcounting across overlapping grants) — permanently:
    [revoke_binding ~orphan:false], so recovery never re-binds it. *)

val revoke_service : t -> core:int -> string -> int
(** Destroy the service's entire capability derivation tree (seL4
    [revoke] on the root) and sweep every binding that lost coverage.
    Returns the number of grants retired. *)

val suspend_client : t -> core:int -> Sky_ukernel.Proc.t -> unit
(** Crash bracket: revoke all of the client's bindings (orphaning them
    for recovery), remembering the set for {!resume_client}. *)

val resume_client : t -> Sky_ukernel.Proc.t -> unit
(** Re-establish the suspended bindings — except any whose capability
    was revoked while the client was down: those stay torn down
    (degradation, not resurrection). *)

val call :
  t ->
  core:int ->
  client:Sky_ukernel.Proc.t ->
  ?on_crash:(int -> unit) ->
  ?timeout:int ->
  string ->
  bytes ->
  (bytes, error) result
(** The routed call: resolve the URI, check the client holds a live
    send capability on the target (charging the check), then
    {!Sky_core.Retry.call} (under the mesh's retry budget, if any).
    [timeout] caps each attempt's server cycles — the deadline-
    propagation hook. [`Denied] is the least-privilege outcome —
    the client keeps running, the call never reaches the server. *)

val call_exn :
  t ->
  core:int ->
  client:Sky_ukernel.Proc.t ->
  ?on_crash:(int -> unit) ->
  ?timeout:int ->
  string ->
  bytes ->
  bytes
(** Like {!call} but raising {!Unknown_service} / {!Denied} /
    {!Sky_core.Retry.Gave_up}. *)

val audit : t -> Sky_analysis.Report.violation list
(** The mesh invariants ([mesh.binding-outlives-cap],
    [mesh.uri-dangling]) over the live Subkernel binding set, the
    capability registry and the name table, plus the Isoflow [flow.*]
    reachability pass with the capability closure as ground truth
    (a binding forged around the mesh is a cross-domain view with no
    covering grant). [[]] means clean. *)

val audit_passes : t -> Sky_analysis.Audit.pass_result list
(** The full unified registry over the live machine: every
    {!Sky_core.Subkernel.audit_passes} pass with the mesh invariants
    included and Isoflow grounded in the capability closure. *)

val isoflow_input : t -> Sky_analysis.Isoflow.input
(** The Isoflow machine model with the capability-closure ground truth —
    what the differential sharing-graph snapshots consume. *)

val epoch : t -> int
val resolves : t -> int
(** Wire round trips to the name service (cache misses). *)

val cache_hits : t -> int
val denials : t -> int
val registrations : t -> int
val retry_stats : t -> Sky_core.Retry.stats
val registry : t -> Sky_ukernel.Capability.registry
val name_server_id : t -> int

val cache_hit_cycles : int
val cap_check_cycles : int
val ns_lookup_cycles : int
