(** Performance monitoring unit: per-core event counters.

    These are the counters read for Table 1 ("the pollution of processor
    structures") plus counters the harness uses (IPIs, VM exits, IPC
    counts). Cache and TLB miss counters are derived from {!Cache} /
    {!Tlb} statistics by {!Cpu.footprint}; this module holds the events
    that are not attached to a particular structure.

    The translation-acceleration events attribute the walk savings:
    [Psc_hit]/[Psc_miss] count TLB refills that could / could not resume
    the guest walk from a paging-structure cache, [Ept_walk_cache_*]
    count nested translations served from the EPT walk cache, and
    [Walk_cycles] accumulates the simulated cycles spent inside TLB
    refills (read as a delta by the IPC layers for the Figure-7
    breakdown's "walk" column). *)

type event =
  | Ipi_sent
  | Vm_exit
  | Vmfunc_exec
  | Syscall_exec
  | Cr3_write
  | Ipc_roundtrip
  | Instruction
  | Psc_hit
  | Psc_miss
  | Ept_walk_cache_hit
  | Ept_walk_cache_miss
  | Hot_line_hit
  | Walk_cycles
  | Wrpkru_exec

let n_events = 14

let index = function
  | Ipi_sent -> 0
  | Vm_exit -> 1
  | Vmfunc_exec -> 2
  | Syscall_exec -> 3
  | Cr3_write -> 4
  | Ipc_roundtrip -> 5
  | Instruction -> 6
  | Psc_hit -> 7
  | Psc_miss -> 8
  | Ept_walk_cache_hit -> 9
  | Ept_walk_cache_miss -> 10
  | Hot_line_hit -> 11
  | Walk_cycles -> 12
  | Wrpkru_exec -> 13

let name = function
  | Ipi_sent -> "ipi_sent"
  | Vm_exit -> "vm_exit"
  | Vmfunc_exec -> "vmfunc"
  | Syscall_exec -> "syscall"
  | Cr3_write -> "cr3_write"
  | Ipc_roundtrip -> "ipc_roundtrip"
  | Instruction -> "instruction"
  | Psc_hit -> "psc_hit"
  | Psc_miss -> "psc_miss"
  | Ept_walk_cache_hit -> "ept_walk_cache_hit"
  | Ept_walk_cache_miss -> "ept_walk_cache_miss"
  | Hot_line_hit -> "hot_line_hit"
  | Walk_cycles -> "walk_cycles"
  | Wrpkru_exec -> "wrpkru"

type t = { counts : int array }

let create () = { counts = Array.make n_events 0 }
let count t ev = t.counts.(index ev) <- t.counts.(index ev) + 1
let add t ev n = t.counts.(index ev) <- t.counts.(index ev) + n
let read t ev = t.counts.(index ev)
let reset t = Array.fill t.counts 0 n_events 0
