lib/sim/tlb.mli:
