(** Structured violation reports for the static security auditor.

    Every check in {!Gadget}, {!Ept_check}, {!Tramp_check}, {!Mesh_check}
    and {!Isoflow} names the invariant it enforces with a stable dotted
    identifier (the mutation tests and the CI gate match on these names):

    - [gadget.*] — VMFUNC encodings outside the trampoline (§3.3, §5)
    - [ept.*] — EPT shape: W^X, execute-only trampoline, EPTP slots
      (§4.1, §4.3)
    - [pt.*] — guest page-table W^X and trampoline protection (§9)
    - [trampoline.*] — abstract-interpretation facts about the
      trampoline code itself (§4.4)
    - [mesh.*] — service-mesh authority: no binding outlives its
      capability, no URI resolves to a dead server
    - [flow.*] — whole-machine cross-domain reachability (Isoflow):
      least-privilege over the composed PT∘EPT sharing graph

    Each violation carries a {!severity}: [Error] findings are the CI
    gate (any one fails the audit); [Warn] findings are advisory
    (today only [gadget.unverifiable] on images the decoder has no
    semantics for — registration still refuses them, but a whole-machine
    sweep reports them below the hard failures). *)

type severity = Error | Warn

type violation = {
  invariant : string;  (** stable dotted name, e.g. ["ept.wx"] *)
  image : string;  (** process / EPT / page-table the fault is in *)
  addr : int option;  (** byte offset, VA or GPA, as fits the invariant *)
  detail : string;
  severity : severity;
}

let v ?(severity = Error) ?addr ~invariant ~image detail =
  { invariant; image; addr; detail; severity }

let severity_name = function Error -> "error" | Warn -> "warn"

let to_string r =
  Printf.sprintf "[%s%s] %s%s: %s"
    (match r.severity with Error -> "" | Warn -> "warn ")
    r.invariant r.image
    (match r.addr with Some a -> Printf.sprintf " @ %#x" a | None -> "")
    r.detail

let pp fmt r = Format.pp_print_string fmt (to_string r)

let has ~invariant vs = List.exists (fun r -> r.invariant = invariant) vs

let severity_rank = function Error -> 0 | Warn -> 1

(* Deterministic report order regardless of hash-table iteration order in
   the callers: severity first (errors above warnings), then invariant
   name, then location. *)
let sort vs =
  List.sort_uniq
    (fun a b ->
      compare
        (severity_rank a.severity, a.invariant, a.image, a.addr, a.detail)
        (severity_rank b.severity, b.invariant, b.image, b.addr, b.detail))
    vs

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json r =
  Printf.sprintf
    "{\"invariant\":\"%s\",\"severity\":\"%s\",\"image\":\"%s\",\"addr\":%s,\"detail\":\"%s\"}"
    (json_escape r.invariant)
    (severity_name r.severity)
    (json_escape r.image)
    (match r.addr with Some a -> string_of_int a | None -> "null")
    (json_escape r.detail)

let list_to_json vs =
  "[" ^ String.concat "," (List.map to_json vs) ^ "]"
