lib/mmu/ept.mli: Sky_mem
