(* Tests for the static security auditor (Sky_analysis): chunked scanning,
   decode totality, the gadget auditor, the trampoline abstract
   interpreter, the EPT/page-table checker, and whole-machine mutation
   tests driven through Subkernel.audit. *)

open Sky_isa
open Sky_rewriter
open Sky_analysis
open Sky_ukernel
open Sky_core

let encode = Encode.encode_all
let pattern = "\x0f\x01\xd4"

(* ------------------------------------------------------------------ *)
(* Chunked / paged scanning (page-boundary carry)                      *)
(* ------------------------------------------------------------------ *)

(* A pattern straddling the 4 KiB boundary is invisible to a naive
   per-page scan but must be found by the carried-overlap scan. *)
let test_paged_scan_boundary () =
  List.iter
    (fun at ->
      let code = Bytes.make 8192 '\x90' in
      Bytes.blit_string pattern 0 code at 3;
      (* naive per-page scan *)
      let naive =
        List.concat_map
          (fun page ->
            List.map (fun o -> (page * 4096) + o)
              (Scan.find_pattern (Bytes.sub code (page * 4096) 4096)))
          [ 0; 1 ]
      in
      let straddles = at < 4096 && at + 3 > 4096 in
      Alcotest.(check bool)
        (Printf.sprintf "naive misses straddler at %d" at)
        straddles (not (List.mem at naive));
      Alcotest.(check (list int))
        (Printf.sprintf "paged finds pattern at %d" at)
        [ at ]
        (Scan.find_pattern_paged code))
    [ 4092; 4093; 4094; 4095; 4096; 4097 ]

let test_paged_scan_equals_flat () =
  (* Random-ish buffer with many planted patterns, some adjacent to page
     boundaries: paged scan == whole-buffer scan. *)
  let n = 3 * 4096 in
  let code = Bytes.init n (fun i -> Char.chr (i * 37 mod 251)) in
  List.iter
    (fun at -> Bytes.blit_string pattern 0 code at 3)
    [ 0; 100; 4094; 4095; 4096; 8190; 8191; n - 3 ];
  Alcotest.(check (list int))
    "paged == flat"
    (Scan.find_pattern code)
    (Scan.find_pattern_paged code)

let test_chunked_scan_gap_resets_carry () =
  (* Pattern "spanning" two chunks that are NOT contiguous must not be
     reported: the bytes in between were never scanned. *)
  let a = Bytes.of_string "\x90\x0f" and b = Bytes.of_string "\x01\xd4" in
  Alcotest.(check (list int)) "contiguous chunks find the split pattern"
    [ 1 ]
    (Scan.find_pattern_chunked [ (0, a); (2, b) ]);
  Alcotest.(check (list int)) "gap between chunks resets the carry" []
    (Scan.find_pattern_chunked [ (0, a); (10, b) ])

(* ------------------------------------------------------------------ *)
(* Decode totality: spans tile the buffer, unknowns are explicit       *)
(* ------------------------------------------------------------------ *)

let span_bounds = function
  | Decode.Decoded d -> (d.Decode.off, d.Decode.len)
  | Decode.Unknown { off; len } -> (off, len)

let check_tiling code =
  let spans = Decode.decode_spans code in
  let last =
    List.fold_left
      (fun expect s ->
        let off, len = span_bounds s in
        Alcotest.(check int) "spans are contiguous" expect off;
        Alcotest.(check bool) "span non-empty" true (len > 0);
        off + len)
      0 spans
  in
  Alcotest.(check int) "spans cover the buffer" (Bytes.length code) last

let test_decode_spans_tile () =
  check_tiling (encode [ Insn.Nop; Insn.Vmfunc; Insn.Ret ]);
  (* garbage in the middle *)
  check_tiling
    (Bytes.cat (encode [ Insn.Nop ])
       (Bytes.cat (Bytes.of_string "\xf4\xf4\xf4") (encode [ Insn.Ret ])));
  (* truncated instruction at the end *)
  check_tiling (Bytes.of_string "\xb8\x01\x02");
  check_tiling Bytes.empty

let test_unknown_spans_coalesce () =
  let code =
    Bytes.cat (encode [ Insn.Nop ])
      (Bytes.cat (Bytes.of_string "\xf4\xf4\xf4") (encode [ Insn.Ret ]))
  in
  Alcotest.(check (list (pair int int)))
    "one coalesced unknown run"
    [ (1, 3) ]
    (Decode.unknown_spans code);
  Alcotest.(check (list (pair int int)))
    "clean code has no unknowns" []
    (Decode.unknown_spans (encode [ Insn.Nop; Insn.Ret ]))

(* ------------------------------------------------------------------ *)
(* Gadget auditor                                                      *)
(* ------------------------------------------------------------------ *)

let test_gadget_clean () =
  let img = Gadget.image ~name:"clean" (encode [ Insn.Nop; Insn.Ret ]) in
  Alcotest.(check int) "no violations" 0 (List.length (Gadget.audit img))

let test_gadget_aligned_vmfunc () =
  let img = Gadget.image ~name:"c1" (encode [ Insn.Nop; Insn.Vmfunc; Insn.Ret ]) in
  let vs = Gadget.audit img in
  Alcotest.(check bool) "raw pattern" true
    (Report.has ~invariant:"gadget.vmfunc-pattern" vs);
  Alcotest.(check bool) "reachable from entry" true
    (Report.has ~invariant:"gadget.reachable-vmfunc" vs);
  Alcotest.(check bool) "aligned, so not misaligned" false
    (Report.has ~invariant:"gadget.misaligned-vmfunc" vs)

let test_gadget_misaligned_vmfunc () =
  (* Pattern hidden in the immediate of an aligned instruction: the
     aligned decode never sees a VMFUNC, the every-offset sweep does. *)
  let img = Gadget.image ~name:"c3" (encode [ Insn.Add_ri (Reg.Rax, 0xD4010F); Insn.Ret ]) in
  let vs = Gadget.audit img in
  Alcotest.(check bool) "raw pattern" true
    (Report.has ~invariant:"gadget.vmfunc-pattern" vs);
  Alcotest.(check bool) "misaligned decode" true
    (Report.has ~invariant:"gadget.misaligned-vmfunc" vs);
  Alcotest.(check bool) "not reachable from entry" false
    (Report.has ~invariant:"gadget.reachable-vmfunc" vs)

let test_gadget_allowed_range () =
  let code = encode [ Insn.Vmfunc; Insn.Ret ] in
  let ok = Gadget.image ~name:"tramp" ~allowed:[ (0, 3) ] code in
  Alcotest.(check int) "allowed vmfunc accepted" 0 (List.length (Gadget.audit ok));
  let bad = Gadget.image ~name:"tramp" ~allowed:[ (5, 3) ] code in
  Alcotest.(check bool) "range elsewhere does not cover it" true
    (Report.has ~invariant:"gadget.vmfunc-pattern" (Gadget.audit bad))

let test_gadget_unverifiable () =
  let img = Gadget.image ~name:"data" (Bytes.of_string "\xf4\xf4") in
  Alcotest.(check bool) "undecodable bytes flagged" true
    (Report.has ~invariant:"gadget.unverifiable" (Gadget.audit img))

(* Rewrite then re-audit: the auditor agrees with the rewriter on
   randomized pattern-laden corpus programs. *)
let prop_rewrite_then_audit =
  QCheck.Test.make ~name:"rewritten corpus programs audit clean" ~count:50
    QCheck.(make Gen.(int_range 0 1_000_000))
    (fun seed ->
      let rng = Sky_sim.Rng.create ~seed in
      let code = Corpus.generate_program rng ~size_bytes:2048 ~plant:true in
      let r = Rewrite.rewrite code in
      let code_vs = Gadget.audit (Gadget.image ~name:"code" r.Rewrite.code) in
      let page_vs =
        if Bytes.length r.Rewrite.rewrite_page = 0 then []
        else Gadget.audit (Gadget.image ~name:"page" r.Rewrite.rewrite_page)
      in
      code_vs = [] && page_vs = [])

(* ------------------------------------------------------------------ *)
(* Rewrite.verify (the mandatory post-pass)                            *)
(* ------------------------------------------------------------------ *)

let test_verify_catches_tampering () =
  let r = Rewrite.rewrite (encode [ Insn.Nop; Insn.Nop; Insn.Ret ]) in
  Rewrite.verify r;
  (* Smuggle a pattern into the "verified" output. *)
  Bytes.blit_string pattern 0 r.Rewrite.code 0 3;
  match Rewrite.verify r with
  | () -> Alcotest.fail "verify accepted a planted pattern"
  | exception Rewrite.Rewrite_failed _ -> ()

let test_verify_respects_allowed () =
  let code = encode [ Insn.Vmfunc; Insn.Ret ] in
  let r = Rewrite.rewrite ~allowed:[ (0, 3) ] code in
  Rewrite.verify ~allowed:[ (0, 3) ] r;
  match Rewrite.verify r with
  | () -> Alcotest.fail "verify must reject the vmfunc without the range"
  | exception Rewrite.Rewrite_failed _ -> ()

(* ------------------------------------------------------------------ *)
(* Trampoline abstract interpreter                                     *)
(* ------------------------------------------------------------------ *)

let test_tramp_pristine () =
  Alcotest.(check int) "pristine trampoline verifies" 0
    (List.length (Tramp_check.check (Trampoline.code ())))

let tramp_mutant replace =
  encode
    (List.concat_map (fun i -> replace i) Trampoline.insns)

(* Replace one instruction of the trampoline (same or different length —
   the checker follows real instruction boundaries, not offsets). *)
let swap_insn ~from ~to_ =
  tramp_mutant (fun i -> if i = from then [ to_ ] else [ i ])

let drop_insn victim = tramp_mutant (fun i -> if i = victim then [] else [ i ])

let test_tramp_swapped_index () =
  (* RCX no longer carries the EPTP index from RDI. *)
  let code =
    swap_insn
      ~from:(Insn.Mov_rr (Reg.Rcx, Reg.Rdi))
      ~to_:(Insn.Mov_rr (Reg.Rcx, Reg.Rbx))
  in
  Alcotest.(check bool) "index flow violated" true
    (Report.has ~invariant:"trampoline.vmfunc-index-flow"
       (Tramp_check.check code))

let test_tramp_missing_pop () =
  let vs = Tramp_check.check (drop_insn (Insn.Pop Reg.R15)) in
  Alcotest.(check bool) "callee-saved violated" true
    (Report.has ~invariant:"trampoline.callee-saved" vs);
  Alcotest.(check bool) "rsp not restored" true
    (Report.has ~invariant:"trampoline.rsp-restored" vs)

let test_tramp_unpaired_vmfunc () =
  let vs = Tramp_check.check (drop_insn Insn.Vmfunc) in
  (* dropping both VMFUNCs -> no switch at all *)
  Alcotest.(check bool) "pairing violated" true
    (Report.has ~invariant:"trampoline.vmfunc-pairing" vs)

let test_tramp_syscall () =
  Alcotest.(check bool) "syscall rejected" true
    (Report.has ~invariant:"trampoline.unexpected-insn"
       (Tramp_check.check (encode [ Insn.Syscall; Insn.Ret ])))

let test_tramp_undecodable () =
  Alcotest.(check bool) "garbage rejected" true
    (Report.has ~invariant:"trampoline.undecodable"
       (Tramp_check.check (Bytes.of_string "\xf4")))

(* ------------------------------------------------------------------ *)
(* EPT checker on a hand-built machine fragment                        *)
(* ------------------------------------------------------------------ *)

let test_ept_wx_leaf () =
  let mem = Sky_mem.Phys_mem.create ~frames:2048 in
  let alloc = Sky_mem.Frame_alloc.create mem in
  let ept = Sky_mmu.Ept.create alloc in
  Sky_mmu.Ept.map_identity_4k ept ~mem ~alloc ~mib:4;
  (* Remap one GPA to a different HPA, read/write/execute: a W^X hole. *)
  Sky_mmu.Ept.map_4k ept ~mem ~alloc ~gpa:0x5000 ~hpa:0x9000;
  (* Trampoline frame mapped correctly (read/execute, not writable). *)
  let tramp_flags =
    { Sky_mmu.Pte.present = true; writable = false; user = true;
      huge = false; nx = false }
  in
  Sky_mmu.Ept.map_4k_flags ept ~mem ~alloc ~gpa:0x3000 ~hpa:0x3000
    ~flags:tramp_flags;
  let inp =
    {
      Ept_check.mem;
      phys_bytes = Sky_mem.Phys_mem.size_bytes mem;
      epts = [ ("ept:test", Sky_mmu.Ept.root_pa ept) ];
      known_roots = [ Sky_mmu.Ept.root_pa ept ];
      eptp_lists = [];
      page_tables = [];
      trampoline_gpa = 0x3000;
      trampoline_va = 0x3000;
    }
  in
  let vs = Ept_check.check inp in
  Alcotest.(check bool) "W+X remapped leaf flagged" true
    (Report.has ~invariant:"ept.wx" vs);
  Alcotest.(check bool) "trampoline mapping accepted" false
    (Report.has ~invariant:"ept.trampoline" vs)

let test_ept_trampoline_writable () =
  let mem = Sky_mem.Phys_mem.create ~frames:2048 in
  let alloc = Sky_mem.Frame_alloc.create mem in
  let ept = Sky_mmu.Ept.create alloc in
  Sky_mmu.Ept.map_identity_4k ept ~mem ~alloc ~mib:4;
  (* identity map is r/w/x: the trampoline frame must not stay that way *)
  let inp =
    {
      Ept_check.mem;
      phys_bytes = Sky_mem.Phys_mem.size_bytes mem;
      epts = [ ("ept:test", Sky_mmu.Ept.root_pa ept) ];
      known_roots = [ Sky_mmu.Ept.root_pa ept ];
      eptp_lists = [];
      page_tables = [];
      trampoline_gpa = 0x3000;
      trampoline_va = 0x3000;
    }
  in
  Alcotest.(check bool) "writable trampoline flagged" true
    (Report.has ~invariant:"ept.trampoline" (Ept_check.check inp))

(* ------------------------------------------------------------------ *)
(* Whole-machine mutation tests (Subkernel.audit)                      *)
(* ------------------------------------------------------------------ *)

let echo ~core:_ msg = msg

(* Same length as the dirty replacement below: the audit reads exactly
   the registered code extent back through the page tables. *)
let clean_code =
  encode
    [ Insn.Nop; Insn.Nop; Insn.Nop; Insn.Nop; Insn.Nop; Insn.Nop; Insn.Nop;
      Insn.Ret ]

let setup_full () =
  let machine = Sky_sim.Machine.create ~cores:2 ~mem_mib:64 () in
  let k = Kernel.create machine in
  let sb = Subkernel.init k in
  let client = Kernel.spawn k ~name:"client" in
  let client_code_va = Kernel.map_code k client clean_code in
  let server = Kernel.spawn k ~name:"server" in
  ignore (Kernel.map_code k server clean_code);
  let sid = Subkernel.register_server sb server echo in
  Subkernel.register_client_to_server sb client ~server_id:sid;
  Kernel.context_switch k ~core:0 client;
  (k, sb, client, server, sid, client_code_va)

let setup () =
  let k, sb, client, _server, _sid, client_code_va = setup_full () in
  (k, sb, client, client_code_va)

let test_audit_baseline_clean () =
  let _, sb, _, _ = setup () in
  let vs = Subkernel.audit sb in
  if vs <> [] then
    Alcotest.failf "expected clean audit, got:\n%s"
      (String.concat "\n" (List.map Report.to_string vs));
  Alcotest.(check bool) "Audit.ok" true (Audit.ok vs)

let test_audit_planted_gadget () =
  (* Mutation 1: after registration, a VMFUNC pattern appears in the
     client's code pages (e.g. via a kernel write bypassing W^X). *)
  let k, sb, client, va = setup () in
  Kernel.write_code k client ~va (encode [ Insn.Add_ri (Reg.Rax, 0xD4010F); Insn.Ret ]);
  let vs = Subkernel.audit sb in
  Alcotest.(check bool) "gadget.vmfunc-pattern" true
    (Report.has ~invariant:"gadget.vmfunc-pattern" vs)

let test_audit_wx_mapping () =
  (* Mutation 2: a writable+executable guest mapping (nx left clear). *)
  let k, sb, client, _ = setup () in
  ignore (Kernel.map_anon k client ~flags:Sky_mmu.Pte.urw 4096);
  let vs = Subkernel.audit sb in
  Alcotest.(check bool) "pt.wx" true (Report.has ~invariant:"pt.wx" vs)

let test_audit_corrupted_trampoline () =
  (* Mutation 3: the shared trampoline frame is overwritten with a
     same-length variant that feeds RBX (not the caller's RDI) into the
     EPTP-switch index register. *)
  let k, sb, _, _ = setup () in
  let corrupted =
    encode
      (List.map
         (fun i ->
           if i = Insn.Mov_rr (Reg.Rcx, Reg.Rdi) then
             Insn.Mov_rr (Reg.Rcx, Reg.Rbx)
           else i)
         Trampoline.insns)
  in
  Sky_mem.Phys_mem.write_bytes (Kernel.mem k)
    (Subkernel.trampoline_frame sb)
    corrupted;
  let vs = Subkernel.audit sb in
  Alcotest.(check bool) "trampoline.vmfunc-index-flow" true
    (Report.has ~invariant:"trampoline.vmfunc-index-flow" vs)

let test_registration_rejects_unverifiable () =
  (* A process whose executable pages contain bytes the auditor cannot
     decode is refused at registration. *)
  let machine = Sky_sim.Machine.create ~cores:2 ~mem_mib:64 () in
  let k = Kernel.create machine in
  let sb = Subkernel.init k in
  let shady = Kernel.spawn k ~name:"shady" in
  ignore (Kernel.map_code k shady (Bytes.of_string "\xf4\xf4\xf4\xc3"));
  match Subkernel.register_server sb shady echo with
  | _ -> Alcotest.fail "expected Audit_failed"
  | exception Subkernel.Audit_failed vs ->
    Alcotest.(check bool) "names gadget.unverifiable" true
      (Report.has ~invariant:"gadget.unverifiable" vs)

(* ------------------------------------------------------------------ *)
(* Isoflow mutation tests: one injected violation per flow.* invariant *)
(* ------------------------------------------------------------------ *)

let nx_rw = { Sky_mmu.Pte.urw with Sky_mmu.Pte.nx = true }
let mutation_va = 0x7400_0000 (* free window below the stacks *)

let test_flow_shared_writable () =
  (* A frame writable from two address spaces that is not a registered
     shared buffer — e.g. a forged shared mapping. *)
  let k, sb, client, server, _sid, _ = setup_full () in
  let pa = Sky_mem.Frame_alloc.alloc_frame (Kernel.alloc k) in
  Kernel.map_frames k client ~va:mutation_va ~pa ~len:4096 ~flags:nx_rw;
  Kernel.map_frames k server ~va:mutation_va ~pa ~len:4096 ~flags:nx_rw;
  Alcotest.(check bool) "flow.shared-writable" true
    (Report.has ~invariant:"flow.shared-writable" (Subkernel.audit sb))

let test_flow_wx_cross () =
  (* Writable in the client, executable in the server: cross-domain code
     injection even though each space is individually W^X. *)
  let k, sb, client, server, _sid, _ = setup_full () in
  let pa = Sky_mem.Frame_alloc.alloc_frame (Kernel.alloc k) in
  Kernel.map_frames k client ~va:mutation_va ~pa ~len:4096 ~flags:nx_rw;
  Kernel.map_frames k server ~va:mutation_va ~pa ~len:4096
    ~flags:Sky_mmu.Pte.urx;
  let vs = Subkernel.audit sb in
  Alcotest.(check bool) "flow.wx-cross" true
    (Report.has ~invariant:"flow.wx-cross" vs);
  Alcotest.(check bool) "per-space W^X alone does not see it" false
    (Report.has ~invariant:"pt.wx" vs)

let test_flow_tramp_identical () =
  (* The binding EPT silently redirects the trampoline GPA to a
     byte-identical copy frame: every per-structure check still passes
     (x-only mapping, identical code), but the view no longer shares THE
     trampoline frame. *)
  let k, sb, client, _server, sid, _ = setup_full () in
  let mem = Kernel.mem k in
  let alloc = Kernel.alloc k in
  let tramp_gpa = Subkernel.trampoline_frame sb in
  let copy = Sky_mem.Frame_alloc.alloc_frame alloc in
  Sky_mem.Phys_mem.write_bytes mem copy
    (Sky_mem.Phys_mem.read_bytes mem tramp_gpa 4096);
  (match Subkernel.binding_ept sb client ~server_id:sid with
  | None -> Alcotest.fail "client has no binding EPT"
  | Some ept ->
    Sky_mmu.Ept.map_4k_flags ept ~mem ~alloc ~gpa:tramp_gpa ~hpa:copy
      ~flags:
        { Sky_mmu.Pte.present = true; writable = false; user = true;
          huge = false; nx = false });
  Alcotest.(check bool) "flow.tramp-identical" true
    (Report.has ~invariant:"flow.tramp-identical" (Subkernel.audit sb))

let test_flow_closure () =
  (* A binding forged around the mesh: reachability without authority.
     The capability closure is Isoflow's ground truth in Mesh.audit. *)
  let machine = Sky_sim.Machine.create ~cores:2 ~mem_mib:64 () in
  let k = Kernel.create machine in
  let sb = Subkernel.init k in
  let mesh = Sky_mesh.Mesh.create sb in
  let server = Kernel.spawn k ~name:"server" in
  ignore (Kernel.map_code k server clean_code);
  let sid = Subkernel.register_server sb server echo in
  Sky_mesh.Mesh.register mesh ~core:0 ~uri:"svc://" ~server_id:sid;
  let rogue = Kernel.spawn k ~name:"rogue" in
  ignore (Kernel.map_code k rogue clean_code);
  Subkernel.register_client_to_server sb rogue ~server_id:sid;
  let vs = Sky_mesh.Mesh.audit mesh in
  Alcotest.(check bool) "flow.closure" true
    (Report.has ~invariant:"flow.closure" vs);
  Alcotest.(check bool) "mesh.binding-outlives-cap agrees" true
    (Report.has ~invariant:"mesh.binding-outlives-cap" vs)

let test_flow_slot_escape () =
  (* The base EPT root poked into a live VMCS EPTP slot: it IS a known
     root (the per-structure eptp-slot check accepts it), but it is not
     among the roots the running domain's bindings entitle it to — one
     VMFUNC away from the identity RWX view of all of memory. *)
  let _k, sb, _client, _server, _sid, _ = setup_full () in
  let root = Subkernel.rootkernel sb in
  let vmcs = root.Rootkernel.vmcses.(0) in
  let base = Sky_mmu.Ept.root_pa root.Rootkernel.base_ept in
  Sky_mmu.Vmcs.set_eptp vmcs ~index:3 ~eptp:base;
  let vs = Subkernel.audit sb in
  Alcotest.(check bool) "flow.slot-escape" true
    (Report.has ~invariant:"flow.slot-escape" vs);
  Alcotest.(check bool) "ept.eptp-slot alone is fooled (base is known)" false
    (Report.has ~invariant:"ept.eptp-slot" vs)

let test_revoke_unmaps_buffers () =
  (* Differential mode: revocation must shrink the sharing graph and
     leave no stale writable edge (the buffers are unmapped everywhere,
     not just dropped from the registry). *)
  let _k, sb, client, _server, sid, _ = setup_full () in
  let before = Isoflow.graph (Subkernel.isoflow_input sb) in
  Subkernel.revoke_binding sb ~core:0 client ~server_id:sid ~reason:"test";
  let inp = Subkernel.isoflow_input sb in
  let after = Isoflow.graph inp in
  let d = Isoflow.diff ~before ~after in
  Alcotest.(check bool) "revocation removed writable edges" true
    (List.exists (fun e -> e.Isoflow.e_w) d.Isoflow.removed);
  Alcotest.(check int) "differential stale count is 0" 0
    (List.length (Isoflow.stale ~shared:inp.Isoflow.shared d));
  let vs = Subkernel.audit sb in
  if Report.has ~invariant:"flow.shared-writable" vs then
    Alcotest.failf "revoked buffers left mapped:\n%s"
      (String.concat "\n" (List.map Report.to_string vs))

(* ------------------------------------------------------------------ *)
(* Severity ordering and gadget-scan memoization                       *)
(* ------------------------------------------------------------------ *)

let test_severity_order () =
  let w = Report.v ~severity:Report.Warn ~invariant:"a.a" ~image:"img" "w" in
  let e = Report.v ~invariant:"z.z" ~image:"img" "e" in
  (match Report.sort [ w; e ] with
  | [ first; second ] ->
    Alcotest.(check string) "errors sort above warnings" "z.z"
      first.Report.invariant;
    Alcotest.(check string) "warning second" "a.a" second.Report.invariant
  | vs -> Alcotest.failf "expected 2 violations, got %d" (List.length vs));
  let vs = Gadget.audit (Gadget.image ~name:"data" (Bytes.of_string "\xf4\xf4")) in
  Alcotest.(check bool) "gadget.unverifiable is a warning" true
    (List.exists
       (fun v ->
         v.Report.invariant = "gadget.unverifiable"
         && v.Report.severity = Report.Warn)
       vs)

let test_gadget_memo () =
  Gadget.memo_reset ();
  let img =
    Gadget.image ~name:"memo" (encode [ Insn.Nop; Insn.Vmfunc; Insn.Ret ])
  in
  let v1 = Gadget.audit img in
  let v2 = Gadget.audit img in
  Alcotest.(check bool) "cached verdict identical" true (v1 = v2);
  Alcotest.(check (pair int int)) "one hit, one miss" (1, 1)
    (Gadget.memo_stats ());
  (* Same name, different bytes: content hash changes, full rescan. *)
  let img2 = Gadget.image ~name:"memo" (encode [ Insn.Nop; Insn.Ret ]) in
  Alcotest.(check int) "changed content re-audits clean" 0
    (List.length (Gadget.audit img2));
  Alcotest.(check (pair int int)) "miss on changed content" (1, 2)
    (Gadget.memo_stats ())

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "analysis"
    [
      ( "scan",
        [
          Alcotest.test_case "paged scan at page boundary" `Quick
            test_paged_scan_boundary;
          Alcotest.test_case "paged == flat" `Quick test_paged_scan_equals_flat;
          Alcotest.test_case "gap resets carry" `Quick
            test_chunked_scan_gap_resets_carry;
        ] );
      ( "decode",
        [
          Alcotest.test_case "spans tile the buffer" `Quick test_decode_spans_tile;
          Alcotest.test_case "unknown spans coalesce" `Quick
            test_unknown_spans_coalesce;
        ] );
      ( "gadget",
        [
          Alcotest.test_case "clean image" `Quick test_gadget_clean;
          Alcotest.test_case "aligned vmfunc" `Quick test_gadget_aligned_vmfunc;
          Alcotest.test_case "misaligned vmfunc" `Quick
            test_gadget_misaligned_vmfunc;
          Alcotest.test_case "allowed range" `Quick test_gadget_allowed_range;
          Alcotest.test_case "unverifiable bytes" `Quick test_gadget_unverifiable;
          Alcotest.test_case "severity ordering" `Quick test_severity_order;
          Alcotest.test_case "memoized scan" `Quick test_gadget_memo;
        ]
        @ qc [ prop_rewrite_then_audit ] );
      ( "verify",
        [
          Alcotest.test_case "catches tampering" `Quick test_verify_catches_tampering;
          Alcotest.test_case "respects allowed ranges" `Quick
            test_verify_respects_allowed;
        ] );
      ( "trampoline",
        [
          Alcotest.test_case "pristine verifies" `Quick test_tramp_pristine;
          Alcotest.test_case "swapped index register" `Quick
            test_tramp_swapped_index;
          Alcotest.test_case "missing pop" `Quick test_tramp_missing_pop;
          Alcotest.test_case "no vmfunc pair" `Quick test_tramp_unpaired_vmfunc;
          Alcotest.test_case "syscall" `Quick test_tramp_syscall;
          Alcotest.test_case "undecodable" `Quick test_tramp_undecodable;
        ] );
      ( "ept",
        [
          Alcotest.test_case "W+X remapped leaf" `Quick test_ept_wx_leaf;
          Alcotest.test_case "writable trampoline" `Quick
            test_ept_trampoline_writable;
        ] );
      ( "machine",
        [
          Alcotest.test_case "baseline audits clean" `Quick
            test_audit_baseline_clean;
          Alcotest.test_case "planted gadget" `Quick test_audit_planted_gadget;
          Alcotest.test_case "W+X mapping" `Quick test_audit_wx_mapping;
          Alcotest.test_case "corrupted trampoline" `Quick
            test_audit_corrupted_trampoline;
          Alcotest.test_case "unverifiable image refused" `Quick
            test_registration_rejects_unverifiable;
        ] );
      ( "isoflow",
        [
          Alcotest.test_case "shared-writable alias" `Quick
            test_flow_shared_writable;
          Alcotest.test_case "cross-domain W^X" `Quick test_flow_wx_cross;
          Alcotest.test_case "trampoline divergence" `Quick
            test_flow_tramp_identical;
          Alcotest.test_case "closure without grant" `Quick test_flow_closure;
          Alcotest.test_case "EPTP slot escape" `Quick test_flow_slot_escape;
          Alcotest.test_case "revocation leaves no stale edge" `Quick
            test_revoke_unmaps_buffers;
        ] );
    ]
