lib/xv6fs/fs_iface.ml: Bytes Char Fs Int32 Printf Sky_kernels String
