(** Set-associative cache with LRU replacement.

    Models one level of the Skylake hierarchy (L1i, L1d, L2, shared L3).
    Caches are indexed and tagged by physical address, at 64-byte line
    granularity. Only presence is modelled (no dirty writeback timing):
    the SkyBridge experiments need miss *counts* and miss *latency*, not a
    coherence protocol. *)

type t

val create : name:string -> size_bytes:int -> ways:int -> line_bytes:int -> t
(** Raises [Invalid_argument] unless [size_bytes] is divisible into an
    integral power-of-two number of sets of [ways] lines. *)

val name : t -> string
val sets : t -> int
val ways : t -> int
val line_bytes : t -> int

val access : t -> int -> bool
(** [access t pa] looks the line containing physical address [pa] up,
    inserting it (evicting the LRU way) on miss. Returns [true] on hit. *)

val probe : t -> int -> bool
(** Lookup without inserting or updating LRU state. *)

val flush : t -> unit

val hits : t -> int
val misses : t -> int
val reset_stats : t -> unit
