lib/experiments/exp_fig7.ml: Breakdown Bytes Config Ipc Kernel List Sky_core Sky_harness Sky_kernels Sky_sim Sky_ukernel Tbl
