(** Quantum-synchronized execution of independent simulation lanes.

    A {e lane} is a resumable run loop over one shard's private world
    (its own machine, tracer, fault engine — see {!Scopes}): told
    [advance ~until:b], it runs its virtual-time interleave until every
    core's clock reaches the boundary [b], then parks. Because lanes
    share no mutable state below the boundary, each can be advanced on
    its own host domain inside a quantum; the join at the boundary is
    the barrier, and cross-lane interaction happens only in the [commit]
    callback, which runs single-threaded on the caller between quanta.

    Determinism argument, in two halves:
    - {e within a lane}: {!Machine.run_until} parks rather than clamps,
      so chunking a run into quanta replays exactly the unchunked step
      sequence — the boundary never reorders anything.
    - {e across lanes}: during a quantum lanes touch only their own
      world, so host scheduling of the domains is unobservable; [commit]
      visits lanes in a fixed order at a fixed virtual time. Hence
      [Seq] and [Par] (any job count, any host) produce bit-identical
      simulations. *)

type lane = { l_name : string; l_advance : until:int -> [ `Paused | `Done ] }

type engine = Seq | Par of { jobs : int }

let engine_name = function
  | Seq -> "seq"
  | Par { jobs } -> Printf.sprintf "par%d" jobs

let default_quantum = 50_000

let run ?(quantum = default_quantum) engine ~lanes
    ?(commit = fun ~boundary:_ -> ()) () =
  if quantum <= 0 then invalid_arg "Quantum.run: quantum <= 0";
  match lanes with
  | [] -> 0
  | lanes ->
    let lanes = Array.of_list lanes in
    let n = Array.length lanes in
    let finished = Array.make n false in
    (* Lane i is owned by worker [i mod jobs]: a static, host-independent
       partition. Each finished.(i) is written only by i's owner during a
       quantum and read by the caller only after the joins. *)
    let advance_lane ~until i =
      if not finished.(i) then
        match lanes.(i).l_advance ~until with
        | `Done -> finished.(i) <- true
        | `Paused -> ()
    in
    let boundary = ref quantum in
    let quanta = ref 0 in
    while not (Array.for_all Fun.id finished) do
      let until = !boundary in
      (match engine with
      | Seq -> for i = 0 to n - 1 do advance_lane ~until i done
      | Par { jobs } ->
        let jobs = max 1 (min jobs n) in
        if jobs = 1 then for i = 0 to n - 1 do advance_lane ~until i done
        else
          (* Spawn/join per quantum: the join IS the barrier, and domain
             spawn cost is microseconds against quanta of tens of
             thousands of simulated cycles' worth of host work. *)
          Array.init jobs (fun w ->
              Domain.spawn (fun () ->
                  let i = ref w in
                  while !i < n do
                    advance_lane ~until !i;
                    i := !i + jobs
                  done))
          |> Array.iter Domain.join);
      commit ~boundary:until;
      incr quanta;
      boundary := until + quantum
    done;
    !quanta
