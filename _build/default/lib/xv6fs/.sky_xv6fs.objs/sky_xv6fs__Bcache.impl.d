lib/xv6fs/bcache.ml: Array Bytes Hashtbl Sky_blockdev Sky_mem Sky_sim
