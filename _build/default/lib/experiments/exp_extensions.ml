(** Experiments for the features beyond the paper's evaluation:

    - the §10 monolithic-kernel direction — SkyBridge accelerating a
      Linux-like kernel's socket-style IPC;
    - L4's temporary mapping (§8.1) as a long-IPC alternative to the
      shared buffer, which the paper notes "is orthogonal to SkyBridge
      and may also be combined with SkyBridge". *)

open Sky_ukernel
open Sky_kernels
open Sky_harness

(* ---- monolithic kernel (§10) ---- *)

let roundtrip_env ~variant ~skybridge =
  let machine = Sky_sim.Machine.create ~cores:4 ~mem_mib:64 () in
  let kernel = Kernel.create ~config:(Config.default variant) machine in
  let client = Kernel.spawn kernel ~name:"client" in
  let server = Kernel.spawn kernel ~name:"server" in
  let call =
    if skybridge then begin
      let sb = Sky_core.Subkernel.init kernel in
      let sid = Sky_core.Subkernel.register_server sb server (fun ~core:_ m -> m) in
      Sky_core.Subkernel.register_client_to_server sb client ~server_id:sid;
      fun ~core msg ->
        Sky_core.Subkernel.direct_server_call sb ~core ~client ~server_id:sid msg
    end
    else begin
      let ipc = Ipc.create kernel in
      let ep = Ipc.register ipc server (fun ~core:_ m -> m) in
      fun ~core msg -> Ipc.call ipc ~core ~client ep msg
    end
  in
  Kernel.context_switch kernel ~core:0 client;
  (kernel, call)

let measure_roundtrip ~variant ~skybridge ~len =
  let kernel, call = roundtrip_env ~variant ~skybridge in
  let msg = Bytes.create len in
  for _ = 1 to 50 do
    ignore (call ~core:0 msg)
  done;
  let cpu = Kernel.cpu kernel ~core:0 in
  let t0 = Sky_sim.Cpu.cycles cpu in
  for _ = 1 to 500 do
    ignore (call ~core:0 msg)
  done;
  (Sky_sim.Cpu.cycles cpu - t0) / 500

let run_monolithic () =
  let rows =
    List.map
      (fun len ->
        let native = measure_roundtrip ~variant:Config.Linux ~skybridge:false ~len in
        let sky = measure_roundtrip ~variant:Config.Linux ~skybridge:true ~len in
        [
          Printf.sprintf "%d-byte message" len;
          Tbl.fmt_int native;
          Tbl.fmt_int sky;
          Printf.sprintf "%.1fx" (float_of_int native /. float_of_int sky);
        ])
      [ 8; 256; 1024; 4096 ]
  in
  Tbl.make
    ~title:
      "Extension (SS10): SkyBridge under a monolithic Linux-like kernel \
       (socket-IPC roundtrip, cycles)"
    ~header:[ "message"; "Linux IPC"; "Linux+SkyBridge"; "speedup" ]
    ~notes:
      [
        "the paper's first future-work direction: the Rootkernel/Subkernel \
         split is kernel-agnostic, so the same registration + \
         direct_server_call machinery slots beneath the monolithic \
         personality unchanged";
      ]
    rows

(* ---- temporary mapping (§8.1) ---- *)

let measure_long_ipc ~long_ipc ~len =
  let machine = Sky_sim.Machine.create ~cores:4 ~mem_mib:64 () in
  let kernel = Kernel.create machine in
  let ipc = Ipc.create ~long_ipc kernel in
  let client = Kernel.spawn kernel ~name:"client" in
  let server = Kernel.spawn kernel ~name:"server" in
  let ep = Ipc.register ipc server (fun ~core:_ _ -> Bytes.create 8) in
  Kernel.context_switch kernel ~core:0 client;
  let msg = Bytes.create len in
  for _ = 1 to 20 do
    ignore (Ipc.call ipc ~core:0 ~client ep msg)
  done;
  let cpu = Kernel.cpu kernel ~core:0 in
  let t0 = Sky_sim.Cpu.cycles cpu in
  for _ = 1 to 200 do
    ignore (Ipc.call ipc ~core:0 ~client ep msg)
  done;
  (Sky_sim.Cpu.cycles cpu - t0) / 200

let run_tempmap () =
  let rows =
    List.map
      (fun len ->
        let copy = measure_long_ipc ~long_ipc:Ipc.Shared_copy ~len in
        let tmap = measure_long_ipc ~long_ipc:Ipc.Temp_map ~len in
        [
          Printf.sprintf "%d-byte message" len;
          Tbl.fmt_int copy;
          Tbl.fmt_int tmap;
          Printf.sprintf "%+.1f%%"
            ((float_of_int copy /. float_of_int tmap -. 1.0) *. 100.0);
        ])
      [ 64; 512; 1024; 4096; 8192 ]
  in
  Tbl.make
    ~title:
      "Extension (SS8.1): long IPC via shared-buffer double copy vs L4 \
       temporary mapping (seL4 roundtrip, cycles)"
    ~header:[ "message"; "Shared_copy"; "Temp_map"; "Temp_map saves" ]
    ~notes:
      [
        "the temporary mapping replaces the receiver-side copy with \
         per-page map + INVLPG work; it wins once messages span pages";
      ]
    rows

(* ---- YCSB mix sensitivity ---- *)

(* The paper only reports YCSB-A; running B (95% read) and C (read-only)
   shows how the SkyBridge advantage tracks the write fraction — reads
   are absorbed by SQLite's page cache, so a read-only workload leaves
   almost nothing for SkyBridge to accelerate. *)
let run_ycsb_mix () =
  let measure ~transport ~kind =
    let stack = Stack.build ~transport () in
    let wl =
      Sky_ycsb.Workload.create stack.Stack.kernel stack.Stack.db ~records:600
        ~value_size:100
    in
    Sky_ycsb.Workload.load wl ~core:0;
    Stack.spread_client stack ~threads:1;
    Sky_ycsb.Workload.run wl ~kind ~threads:1 ~ops_per_thread:150
  in
  let rows =
    List.map
      (fun kind ->
        let mt = measure ~transport:(Stack.Ipc { st = false }) ~kind in
        let sky = measure ~transport:Stack.Skybridge ~kind in
        [
          Printf.sprintf "%s (%.0f%% read)" (Sky_ycsb.Workload.kind_name kind)
            (100.0 *. Sky_ycsb.Workload.read_fraction kind);
          Tbl.fmt_ops mt;
          Tbl.fmt_ops sky;
          Printf.sprintf "%+.1f%%" ((sky /. mt -. 1.0) *. 100.0);
        ])
      [ Sky_ycsb.Workload.A; Sky_ycsb.Workload.B; Sky_ycsb.Workload.C ]
  in
  Tbl.make
    ~title:
      "Extension: YCSB A/B/C mix sensitivity (1 thread, ops/s, seL4 MT vs \
       SkyBridge)"
    ~header:[ "workload"; "MT-Server"; "SkyBridge"; "speedup" ]
    ~notes:
      [
        "the speedup tracks the write fraction: writes are journaled FS \
         traffic (IPC-bound), reads hit the page cache (compute-bound)";
      ]
    rows
