(** The multi-tier SQLite stack of §6.5: client(+DB) → xv6fs server →
    RAM-disk server, assembled over each interconnect in the evaluation:

    - [Ipc { st = true }]: one server working thread each, pinned to
      dedicated cores (the client reaches them via cross-core IPC);
    - [Ipc { st = false }] (MT-Server): server threads pinned per core,
      every call takes the local path;
    - [Skybridge]: direct server calls; the disk is a dependency of the
      FS, so its EPT rides in every client's EPTP list. *)

open Sky_ukernel
open Sky_blockdev
open Sky_xv6fs

type transport = Ipc of { st : bool } | Skybridge

let transport_name = function
  | Ipc { st = true } -> "ST-Server"
  | Ipc { st = false } -> "MT-Server"
  | Skybridge -> "SkyBridge"

type t = {
  machine : Sky_sim.Machine.t;
  kernel : Kernel.t;
  client : Proc.t;
  fs_cell : Fs.t ref;  (** server-side handle; {!remount} swaps it *)
  iface : Fs_iface.t;  (** client-side view over the transport *)
  db : Sky_sqldb.Db.t;
  sb : Sky_core.Subkernel.t option;
  ramdisk : Ramdisk.t;
  rstats : Sky_core.Retry.stats option;
  remount : (unit -> unit) option;  (** Skybridge: remount after a crash *)
}

let fs t = !(t.fs_cell)
let retry_stats t = t.rstats

let fs_server_core = 1
let disk_server_core = 2

let build ?(variant = Config.Sel4) ?(kpti = false) ?(cores = 8)
    ?(disk_blocks = 16384) ?(value_size = 100) ?(resilient = false) ~transport
    () =
  let machine = Sky_sim.Machine.create ~cores ~mem_mib:128 () in
  let config = { (Config.default variant) with Config.kpti } in
  let kernel = Kernel.create ~config machine in
  let ramdisk = Ramdisk.create machine ~nblocks:disk_blocks in
  let raw = Disk.direct kernel ramdisk in
  Fs.mkfs kernel raw ~core:0 ~size:disk_blocks ~ninodes:64 ();
  let client = Kernel.spawn kernel ~name:"client" in
  let fs_proc = Kernel.spawn kernel ~name:"xv6fs" in
  let disk_proc = Kernel.spawn kernel ~name:"blockdev" in
  let rstats =
    if resilient then Some (Sky_core.Retry.create_stats ()) else None
  in
  let sb, iface, fs_cell, remount =
    match transport with
    | Ipc { st } ->
      let ipc = Sky_kernels.Ipc.create kernel in
      let disk_ep =
        Sky_kernels.Ipc.register ipc disk_proc
          ~cores:(if st then [ disk_server_core ] else [])
          (Disk.handler kernel ramdisk)
      in
      let fs =
        Fs.mount kernel (Disk.over_ipc ipc ~client:fs_proc disk_ep) ~core:0
      in
      let fs_ep =
        Sky_kernels.Ipc.register ipc fs_proc
          ~cores:(if st then [ fs_server_core ] else [])
          (Fs_iface.server_handler fs)
      in
      ( None,
        Fs_iface.over_call (fun ~core msg ->
            Sky_kernels.Ipc.call ipc ~core ~client fs_ep msg),
        ref fs,
        None )
    | Skybridge ->
      let sb = Sky_core.Subkernel.init kernel in
      let disk_sid =
        Sky_core.Subkernel.register_server sb disk_proc
          ~connection_count:cores (Disk.handler kernel ramdisk)
      in
      Sky_core.Subkernel.register_client_to_server sb fs_proc ~server_id:disk_sid;
      let sdisk = Disk.over_skybridge sb ~client:fs_proc ~server_id:disk_sid in
      let fs_cell = ref (Fs.mount kernel sdisk ~core:0) in
      (* Handler indirection: a crash-recovery remount swaps the Fs.t
         (running log recovery off the surviving ramdisk) without
         re-registering the server. *)
      let fs_handler ~core msg = Fs_iface.server_handler !fs_cell ~core msg in
      let fs_sid =
        Sky_core.Subkernel.register_server sb fs_proc ~connection_count:cores
          ~deps:[ disk_sid ] fs_handler
      in
      Sky_core.Subkernel.register_client_to_server sb client ~server_id:fs_sid;
      let remount () =
        let rec go n =
          try fs_cell := Fs.mount kernel sdisk ~core:0 with
          | Sky_core.Subkernel.Server_crashed { server_id } when n > 0 ->
            Sky_core.Subkernel.restart_server sb ~server_id;
            go (n - 1)
        in
        go 3
      in
      let call =
        if resilient then fun ~core msg ->
          (* Any crash along the chain (FS or disk) invalidates the FS's
             in-memory state: remount after the restart, which replays
             or rolls back the on-disk log — each FS op stays atomic, so
             the retried op re-applies cleanly. *)
          Sky_core.Retry.call ?stats:rstats
            ~on_crash:(fun _ -> remount ())
            sb ~core ~client ~server_id:fs_sid msg
        else fun ~core msg ->
          Sky_core.Subkernel.direct_server_call sb ~core ~client
            ~server_id:fs_sid msg
      in
      (Some sb, Fs_iface.over_call call, fs_cell, Some remount)
  in
  Kernel.context_switch kernel ~core:0 client;
  let db = Sky_sqldb.Db.create kernel iface ~core:0 ~name:"sqlite3" ~value_size in
  { machine; kernel; client; fs_cell; iface; db; sb; ramdisk; rstats; remount }

(* Make the client current on the cores a multi-threaded run will use. *)
let spread_client t ~threads =
  for core = 0 to threads - 1 do
    Kernel.context_switch t.kernel ~core t.client
  done
