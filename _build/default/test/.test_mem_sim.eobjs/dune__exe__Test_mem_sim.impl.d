test/test_mem_sim.ml: Alcotest Bytes Cache Char Costs Cpu Frame_alloc Gen Hashtbl List Machine Memsys Phys_mem QCheck QCheck_alcotest Rng Sky_mem Sky_sim String Tlb
