(** x86-64 instruction encoder.

    Besides the raw bytes, [encode] reports the field layout (offsets of
    the opcode, ModRM, SIB, displacement and immediate), which is what the
    VMFUNC rewriter uses to classify *where* inside an instruction an
    inadvertent [0F 01 D4] sequence falls (Table 3 of the paper). *)

type layout = {
  len : int;
  opcode_off : int;
  opcode_len : int;
  modrm_off : int option;
  sib_off : int option;
  disp_off : int option;
  disp_len : int;
  imm_off : int option;
  imm_len : int;
}

type encoded = { bytes : string; layout : layout }

let fits_i32 v = v >= -0x8000_0000 && v <= 0x7fff_ffff
let fits_i8 v = v >= -128 && v <= 127

(* Intermediate representation of the ModRM/SIB/disp cluster. *)
type modrm_cluster = {
  rex_r : bool;
  rex_x : bool;
  rex_b : bool;
  modrm : int;
  sib : int option;
  disp : (int * int) option; (* value, byte length *)
}

let cluster_rr ~reg_field ~rm_reg =
  let r = Reg.encoding reg_field and b = Reg.encoding rm_reg in
  {
    rex_r = r >= 8;
    rex_x = false;
    rex_b = b >= 8;
    modrm = 0b11000000 lor ((r land 7) lsl 3) lor (b land 7);
    sib = None;
    disp = None;
  }

let scale_log = function
  | 1 -> 0
  | 2 -> 1
  | 4 -> 2
  | 8 -> 3
  | s -> invalid_arg (Printf.sprintf "Encode: bad scale %d" s)

let cluster_mem ~reg_field (m : Insn.mem) =
  if not (fits_i32 m.Insn.disp) then invalid_arg "Encode: displacement too large";
  let r = Reg.encoding reg_field in
  let rex_r = r >= 8 in
  let reg3 = (r land 7) lsl 3 in
  match (m.Insn.base, m.Insn.index) with
  | None, None ->
    (* Absolute 32-bit address: ModRM rm=100, SIB base=101 index=none. *)
    {
      rex_r;
      rex_x = false;
      rex_b = false;
      modrm = 0b00000100 lor reg3;
      sib = Some 0x25;
      disp = Some (m.Insn.disp, 4);
    }
  | base, Some (idx, scale) ->
    if Reg.equal idx Reg.Rsp then invalid_arg "Encode: rsp cannot index";
    let i = Reg.encoding idx in
    let sib_hi = (scale_log scale lsl 6) lor ((i land 7) lsl 3) in
    let base_enc, rex_b, md, disp =
      match base with
      | None -> (0b101, false, 0b00, Some (m.Insn.disp, 4))
      | Some b ->
        let be = Reg.encoding b in
        let md, disp =
          if m.Insn.disp = 0 && be land 7 <> 5 then (0b00, None)
          else if fits_i8 m.Insn.disp then (0b01, Some (m.Insn.disp, 1))
          else (0b10, Some (m.Insn.disp, 4))
        in
        (be land 7, be >= 8, md, disp)
    in
    {
      rex_r;
      rex_x = i >= 8;
      rex_b;
      modrm = (md lsl 6) lor reg3 lor 0b100;
      sib = Some (sib_hi lor base_enc);
      disp;
    }
  | Some b, None ->
    let be = Reg.encoding b in
    let md, disp =
      if m.Insn.disp = 0 && be land 7 <> 5 then (0b00, None)
      else if fits_i8 m.Insn.disp then (0b01, Some (m.Insn.disp, 1))
      else (0b10, Some (m.Insn.disp, 4))
    in
    if be land 7 = 4 then
      (* RSP/R12 base forces a SIB byte (index = none). *)
      {
        rex_r;
        rex_x = false;
        rex_b = be >= 8;
        modrm = (md lsl 6) lor reg3 lor 0b100;
        sib = Some 0x24;
        disp;
      }
    else
      {
        rex_r;
        rex_x = false;
        rex_b = be >= 8;
        modrm = (md lsl 6) lor reg3 lor (be land 7);
        sib = None;
        disp;
      }

let cluster ~reg_field = function
  | Insn.R r -> cluster_rr ~reg_field ~rm_reg:r
  | Insn.M m -> cluster_mem ~reg_field m

(* Assemble: optional REX, opcode bytes, optional cluster, optional
   immediate; compute the layout as we go. *)
let build ?cluster:(cl = None) ?imm ~rex_w opcode =
  let buf = Buffer.create 16 in
  let rex_r, rex_x, rex_b =
    match cl with
    | Some c -> (c.rex_r, c.rex_x, c.rex_b)
    | None -> (false, false, false)
  in
  let need_rex = rex_w || rex_r || rex_x || rex_b in
  if need_rex then
    Buffer.add_char buf
      (Char.chr
         (0x40
         lor (if rex_w then 8 else 0)
         lor (if rex_r then 4 else 0)
         lor (if rex_x then 2 else 0)
         lor if rex_b then 1 else 0));
  let opcode_off = Buffer.length buf in
  List.iter (fun b -> Buffer.add_char buf (Char.chr b)) opcode;
  let opcode_len = List.length opcode in
  let modrm_off, sib_off, disp_off, disp_len =
    match cl with
    | None -> (None, None, None, 0)
    | Some c ->
      let m_off = Buffer.length buf in
      Buffer.add_char buf (Char.chr c.modrm);
      let s_off =
        match c.sib with
        | None -> None
        | Some s ->
          let o = Buffer.length buf in
          Buffer.add_char buf (Char.chr s);
          Some o
      in
      let d_off, d_len =
        match c.disp with
        | None -> (None, 0)
        | Some (v, len) ->
          let o = Buffer.length buf in
          for i = 0 to len - 1 do
            Buffer.add_char buf (Char.chr ((v asr (8 * i)) land 0xff))
          done;
          (Some o, len)
      in
      (Some m_off, s_off, d_off, d_len)
  in
  let imm_off, imm_len =
    match imm with
    | None -> (None, 0)
    | Some (v, len) ->
      let o = Buffer.length buf in
      for i = 0 to len - 1 do
        Buffer.add_char buf
          (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff))
      done;
      (Some o, len)
  in
  let bytes = Buffer.contents buf in
  {
    bytes;
    layout =
      {
        len = String.length bytes;
        opcode_off;
        opcode_len;
        modrm_off;
        sib_off;
        disp_off;
        disp_len;
        imm_off;
        imm_len;
      };
  }

let slash n = Reg.of_encoding n (* opcode-extension pseudo-register *)

(* 50+r / 58+r, with a REX.B prefix for r8..r15. *)
let encode_push_pop base r =
  let e = Reg.encoding r in
  let bytes =
    if e >= 8 then Printf.sprintf "\x41%c" (Char.chr (base lor (e land 7)))
    else String.make 1 (Char.chr (base lor e))
  in
  let opcode_off = String.length bytes - 1 in
  {
    bytes;
    layout =
      {
        len = String.length bytes;
        opcode_off;
        opcode_len = 1;
        modrm_off = None;
        sib_off = None;
        disp_off = None;
        disp_len = 0;
        imm_off = None;
        imm_len = 0;
      };
  }

let encode insn =
  match insn with
  | Insn.Nop -> build ~rex_w:false [ 0x90 ]
  | Insn.Ret -> build ~rex_w:false [ 0xC3 ]
  | Insn.Syscall -> build ~rex_w:false [ 0x0F; 0x05 ]
  | Insn.Vmfunc -> build ~rex_w:false [ 0x0F; 0x01; 0xD4 ]
  | Insn.Wrpkru -> build ~rex_w:false [ 0x0F; 0x01; 0xEF ]
  | Insn.Cpuid -> build ~rex_w:false [ 0x0F; 0xA2 ]
  | Insn.Push r -> encode_push_pop 0x50 r
  | Insn.Pop r -> encode_push_pop 0x58 r
  | Insn.Mov_rr (dst, src) ->
    build ~rex_w:true ~cluster:(Some (cluster_rr ~reg_field:src ~rm_reg:dst)) [ 0x89 ]
  | Insn.Mov_ri (dst, imm) ->
    if fits_i32 (Int64.to_int imm) && Int64.of_int (Int64.to_int imm) = imm then
      build ~rex_w:true
        ~cluster:(Some (cluster_rr ~reg_field:(slash 0) ~rm_reg:dst))
        ~imm:(imm, 4) [ 0xC7 ]
    else begin
      (* B8+r with imm64 (movabs). *)
      let e = Reg.encoding dst in
      let rex = 0x48 lor if e >= 8 then 1 else 0 in
      let buf = Buffer.create 10 in
      Buffer.add_char buf (Char.chr rex);
      Buffer.add_char buf (Char.chr (0xB8 lor (e land 7)));
      for i = 0 to 7 do
        Buffer.add_char buf
          (Char.chr (Int64.to_int (Int64.shift_right_logical imm (8 * i)) land 0xff))
      done;
      {
        bytes = Buffer.contents buf;
        layout =
          {
            len = 10;
            opcode_off = 1;
            opcode_len = 1;
            modrm_off = None;
            sib_off = None;
            disp_off = None;
            disp_len = 0;
            imm_off = Some 2;
            imm_len = 8;
          };
      }
    end
  | Insn.Mov_load (dst, m) ->
    build ~rex_w:true ~cluster:(Some (cluster_mem ~reg_field:dst m)) [ 0x8B ]
  | Insn.Mov_store (m, src) ->
    build ~rex_w:true ~cluster:(Some (cluster_mem ~reg_field:src m)) [ 0x89 ]
  | Insn.Add_rr (dst, src) ->
    build ~rex_w:true ~cluster:(Some (cluster_rr ~reg_field:src ~rm_reg:dst)) [ 0x01 ]
  | Insn.Add_ri (dst, imm) ->
    build ~rex_w:true
      ~cluster:(Some (cluster_rr ~reg_field:(slash 0) ~rm_reg:dst))
      ~imm:(Int64.of_int imm, 4) [ 0x81 ]
  | Insn.Sub_ri (dst, imm) ->
    build ~rex_w:true
      ~cluster:(Some (cluster_rr ~reg_field:(slash 5) ~rm_reg:dst))
      ~imm:(Int64.of_int imm, 4) [ 0x81 ]
  | Insn.Xor_rr (dst, src) ->
    build ~rex_w:true ~cluster:(Some (cluster_rr ~reg_field:src ~rm_reg:dst)) [ 0x31 ]
  | Insn.And_rr (dst, src) ->
    build ~rex_w:true ~cluster:(Some (cluster_rr ~reg_field:src ~rm_reg:dst)) [ 0x21 ]
  | Insn.And_ri (dst, imm) ->
    build ~rex_w:true
      ~cluster:(Some (cluster_rr ~reg_field:(slash 4) ~rm_reg:dst))
      ~imm:(Int64.of_int imm, 4) [ 0x81 ]
  | Insn.Or_rr (dst, src) ->
    build ~rex_w:true ~cluster:(Some (cluster_rr ~reg_field:src ~rm_reg:dst)) [ 0x09 ]
  | Insn.Or_ri (dst, imm) ->
    build ~rex_w:true
      ~cluster:(Some (cluster_rr ~reg_field:(slash 1) ~rm_reg:dst))
      ~imm:(Int64.of_int imm, 4) [ 0x81 ]
  | Insn.Cmp_rr (a, b) ->
    build ~rex_w:true ~cluster:(Some (cluster_rr ~reg_field:b ~rm_reg:a)) [ 0x39 ]
  | Insn.Cmp_ri (a, imm) ->
    build ~rex_w:true
      ~cluster:(Some (cluster_rr ~reg_field:(slash 7) ~rm_reg:a))
      ~imm:(Int64.of_int imm, 4) [ 0x81 ]
  | Insn.Test_rr (a, b) ->
    build ~rex_w:true ~cluster:(Some (cluster_rr ~reg_field:b ~rm_reg:a)) [ 0x85 ]
  | Insn.Shl_ri (dst, imm) ->
    build ~rex_w:true
      ~cluster:(Some (cluster_rr ~reg_field:(slash 4) ~rm_reg:dst))
      ~imm:(Int64.of_int (imm land 0x3f), 1) [ 0xC1 ]
  | Insn.Shr_ri (dst, imm) ->
    build ~rex_w:true
      ~cluster:(Some (cluster_rr ~reg_field:(slash 5) ~rm_reg:dst))
      ~imm:(Int64.of_int (imm land 0x3f), 1) [ 0xC1 ]
  | Insn.Inc dst ->
    build ~rex_w:true ~cluster:(Some (cluster_rr ~reg_field:(slash 0) ~rm_reg:dst)) [ 0xFF ]
  | Insn.Dec dst ->
    build ~rex_w:true ~cluster:(Some (cluster_rr ~reg_field:(slash 1) ~rm_reg:dst)) [ 0xFF ]
  | Insn.Neg dst ->
    build ~rex_w:true ~cluster:(Some (cluster_rr ~reg_field:(slash 3) ~rm_reg:dst)) [ 0xF7 ]
  | Insn.Jcc (c, rel) ->
    build ~rex_w:false ~imm:(Int64.of_int rel, 4) [ 0x0F; 0x80 lor Insn.cond_code c ]
  | Insn.Add_rm (dst, m) ->
    build ~rex_w:true ~cluster:(Some (cluster_mem ~reg_field:dst m)) [ 0x03 ]
  | Insn.Imul_rri (dst, src, imm) ->
    build ~rex_w:true ~cluster:(Some (cluster ~reg_field:dst src))
      ~imm:(Int64.of_int imm, 4) [ 0x69 ]
  | Insn.Imul_rm (dst, src) ->
    build ~rex_w:true ~cluster:(Some (cluster ~reg_field:dst src)) [ 0x0F; 0xAF ]
  | Insn.Lea (dst, m) ->
    build ~rex_w:true ~cluster:(Some (cluster_mem ~reg_field:dst m)) [ 0x8D ]
  | Insn.Jmp_rel rel -> build ~rex_w:false ~imm:(Int64.of_int rel, 4) [ 0xE9 ]
  | Insn.Call_rel rel -> build ~rex_w:false ~imm:(Int64.of_int rel, 4) [ 0xE8 ]

let length insn = (encode insn).layout.len

let encode_all insns =
  let buf = Buffer.create 64 in
  List.iter (fun i -> Buffer.add_string buf (encode i).bytes) insns;
  Buffer.to_bytes buf
