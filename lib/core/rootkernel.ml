open Sky_mem
open Sky_sim
open Sky_mmu
open Sky_ukernel

let log_src = Logs.Src.create "skybridge.rootkernel" ~doc:"SkyBridge Rootkernel"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = {
  kernel : Kernel.t;
  base_ept : Ept.t;
  vmcses : Vmcs.t array;
  reserved_bytes : int;
  vpid : bool;
}

exception Fatal_ept_violation of int

(* A VM exit + handler + VM entry; in the ballpark of a measured
   hypercall on Skylake. *)
let vmcall_cost = 1200
let cpuid_exit_cost = 1500

let boot ?(vpid = true) ?(reserved_mib = 8) ?(huge_ept = true) kernel =
  let machine = kernel.Kernel.machine in
  let mem = Kernel.mem kernel and alloc = Kernel.alloc kernel in
  (* Reserve the Rootkernel's own memory at the top of the physical
     space so the Subkernel cannot touch it through the base EPT. *)
  let total_frames = Phys_mem.frames mem in
  let reserved_frames = reserved_mib * 256 in
  Frame_alloc.reserve alloc
    ~first_frame:(total_frames - reserved_frames)
    ~count:reserved_frames;
  (* Base EPT: identity map all guest-visible memory with 1 GiB pages.
     (The reserved tail is inside the last huge page; real hardware would
     carve it out with smaller pages — the isolation property is tested
     at the allocator level here, and what matters for the experiments is
     the huge-page walk length.) *)
  let base_ept = Ept.create alloc in
  if huge_ept then begin
    let gib = (Phys_mem.size_bytes mem + (1 lsl 30) - 1) lsr 30 in
    Ept.map_identity_1g base_ept ~mem ~alloc ~gib
  end
  else
    (* Ablation: a commodity-hypervisor-style 4 KiB EPT — longer nested
       walks, hundreds of EPT pages. *)
    Ept.map_identity_4k base_ept ~mem ~alloc
      ~mib:(Phys_mem.size_bytes mem lsr 20);
  let n = Machine.n_cores machine in
  let vmcses = Array.init n (fun _ -> Vmcs.create ~vpid ()) in
  (* Downgrade every vCPU to non-root mode, EPTP slot 0 = base EPT. *)
  Array.iteri
    (fun i vmcs ->
      Vmcs.install_list vmcs [ Ept.root_pa base_ept ];
      Vcpu.enter_non_root kernel.Kernel.vcpus.(i) vmcs)
    vmcses;
  Log.info (fun m ->
      m "self-virtualized: %d cores, %d MiB reserved, %s base EPT, vpid=%b" n
        reserved_mib
        (if huge_ept then "1GiB-page" else "4KiB-page")
        vpid);
  {
    kernel;
    base_ept;
    vmcses;
    reserved_bytes = reserved_frames * Phys_mem.frame_size;
    vpid;
  }

let total_vm_exits t =
  Array.fold_left (fun acc v -> acc + Vmcs.total_exits v) 0 t.vmcses

let exits_of t reason =
  Array.fold_left (fun acc v -> acc + Vmcs.exits v reason) 0 t.vmcses

let record t ~core reason cost =
  Sky_trace.Trace.span ~core ~cat:"vmexit"
    ("vmexit." ^ Vmcs.exit_reason_name reason)
  @@ fun () ->
  let cpu = Kernel.cpu t.kernel ~core in
  Log.debug (fun m -> m "VM exit on core %d: %s" core (Vmcs.exit_reason_name reason));
  Vmcs.record_exit t.vmcses.(core) reason;
  Pmu.count (Cpu.pmu cpu) Pmu.Vm_exit;
  Cpu.charge cpu cost

let handle_cpuid t ~core = record t ~core Vmcs.Exit_cpuid cpuid_exit_cost

let handle_ept_violation t ~core ~gpa =
  record t ~core Vmcs.Exit_ept_violation vmcall_cost;
  raise (Fatal_ept_violation gpa)

let vmcall t ~core f =
  record t ~core Vmcs.Exit_vmcall vmcall_cost;
  f ()

(* Permissions for the non-identity mappings SkyBridge installs on top of
   the base EPT (EPT reading: bit 1 write, bit 2 execute). The identity
   page is read-only data; the remapped CR3 frame is a page table the
   guest walker reads and the guest kernel writes; neither may be
   executable — the W^X auditor ([ept.wx]) rejects any remapped leaf that
   is writable+executable. *)
let ept_ro = { Sky_mmu.Pte.absent with Sky_mmu.Pte.present = true }
let ept_rw = { ept_ro with Sky_mmu.Pte.writable = true }

let new_process_ept t proc =
  let mem = Kernel.mem t.kernel and alloc = Kernel.alloc t.kernel in
  let ept = Ept.clone_shallow t.base_ept ~mem ~alloc in
  Ept.map_4k_flags ept ~mem ~alloc ~gpa:Layout.identity_gpa
    ~hpa:proc.Proc.identity_frame ~flags:ept_ro;
  ept

let bind_ept t ~client ~server =
  let mem = Kernel.mem t.kernel and alloc = Kernel.alloc t.kernel in
  let ept = Ept.clone_shallow t.base_ept ~mem ~alloc in
  Ept.map_4k_flags ept ~mem ~alloc ~gpa:(Proc.cr3 client)
    ~hpa:(Proc.cr3 server) ~flags:ept_rw;
  Ept.map_4k_flags ept ~mem ~alloc ~gpa:Layout.identity_gpa
    ~hpa:server.Proc.identity_frame ~flags:ept_ro;
  ept

let install_eptp_list t ~core eptps =
  vmcall t ~core (fun () -> Vmcs.install_list t.vmcses.(core) eptps)

let current_identity t ~core =
  let mem = Kernel.mem t.kernel in
  let root_pa = Vmcs.current_eptp t.vmcses.(core) in
  match Ept.walk ~mem ~root_pa ~gpa:Layout.identity_gpa with
  | Ok { Ept.hpa; _ } -> Int64.to_int (Phys_mem.read_u64 mem hpa)
  | Error (Ept.Ept_not_present gpa) -> handle_ept_violation t ~core ~gpa
