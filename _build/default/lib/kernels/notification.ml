open Sky_sim
open Sky_ukernel

exception Would_block

type t = {
  kernel : Kernel.t;
  name : string;
  mutable word : int;
  mutable pending : (int * int) list;  (** (virtual time, badge), oldest first *)
  mutable waiter_core : int option;
  mutable signals : int;
  mutable waits : int;
}

let create kernel ~name =
  { kernel; name; word = 0; pending = []; waiter_core = None; signals = 0; waits = 0 }

let signal t ~core ~badge =
  t.signals <- t.signals + 1;
  Kernel.kernel_entry t.kernel ~core;
  let cpu = Kernel.cpu t.kernel ~core in
  Cpu.charge cpu 120 (* signal fastpath: word update + waiter check *);
  t.word <- t.word lor badge;
  t.pending <- t.pending @ [ (Cpu.cycles cpu, badge) ];
  (match t.waiter_core with
  | Some w when w <> core -> Kernel.send_ipi t.kernel ~from_core:core ~to_core:w
  | _ -> ());
  Kernel.kernel_exit t.kernel ~core

let poll t ~core =
  Kernel.kernel_entry t.kernel ~core;
  Cpu.charge (Kernel.cpu t.kernel ~core) 80;
  let r = if t.word = 0 then None else Some t.word in
  if r <> None then begin
    t.word <- 0;
    t.pending <- []
  end;
  Kernel.kernel_exit t.kernel ~core;
  r

let wait t ~core =
  t.waits <- t.waits + 1;
  Kernel.kernel_entry t.kernel ~core;
  let cpu = Kernel.cpu t.kernel ~core in
  Cpu.charge cpu 150 (* block/unblock bookkeeping *);
  let deliver () =
    let w = t.word in
    t.word <- 0;
    t.pending <- [];
    Kernel.kernel_exit t.kernel ~core;
    w
  in
  if t.word <> 0 then begin
    (* Something already pending: if it was signalled "later" than our
       current virtual time (a signaler on another core), block until
       its delivery time. *)
    (match t.pending with
    | (at, _) :: _ -> Cpu.advance_to cpu at
    | [] -> ());
    deliver ()
  end
  else begin
    t.waiter_core <- Some core;
    Kernel.kernel_exit t.kernel ~core;
    raise Would_block
  end

let signals t = t.signals
let waits t = t.waits
