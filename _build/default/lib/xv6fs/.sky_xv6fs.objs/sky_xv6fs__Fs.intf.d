lib/xv6fs/fs.mli: Sky_blockdev Sky_ukernel Superblock
