type t = { scheme : string; path : string }

exception Bad_uri of string

let scheme_char c =
  (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '+' || c = '.' || c = '-'

let parse s =
  let sep = "://" in
  let n = String.length s in
  let rec find i =
    if i + String.length sep > n then raise (Bad_uri s)
    else if String.sub s i (String.length sep) = sep then i
    else find (i + 1)
  in
  let i = find 0 in
  if i = 0 then raise (Bad_uri s);
  let scheme = String.sub s 0 i in
  String.iter (fun c -> if not (scheme_char c) then raise (Bad_uri s)) scheme;
  { scheme; path = String.sub s (i + 3) (n - i - 3) }

let service s = (parse s).scheme
let to_string t = t.scheme ^ "://" ^ t.path
let pp fmt t = Format.pp_print_string fmt (to_string t)
