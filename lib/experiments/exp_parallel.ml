(** The quantum-scheduler gate: bit-identical parallel simulation, plus
    the host-parallelism speedup measurement.

    Phase A ({e equivalence}) builds small web-serving clusters — with
    per-shard fault storms armed, so crash/restart/replay machinery runs
    inside the comparison — and checks that the {!Sky_sim.Quantum}
    scheduler produces byte-identical {!Sky_net.Cluster_web.digest}s:

    - [Seq] vs [Par] at the same quantum (full digest, gossip included),
      for every isolation backend and for two different job counts;
    - chunked ([Seq] with a quantum) vs the plain unchunked per-shard
      {!Sky_net.Web.run} — the boundary must not reorder anything;
    - two different quantum sizes (digest without the gossip log, which
      intentionally records boundary placement).

    Phase B ({e speedup}) runs a larger cluster — [shards × workers]
    sized to the paper's 16-core evaluation box — once under [Seq] and
    once under [Par], wall-clocking both through a caller-supplied host
    clock. The speedup gate scales with what the host can actually
    deliver ([Domain.recommended_domain_count]): ≥2x where four or more
    domains are available, a reduced bar for 2–3, and an explicit
    {e waived} verdict on a single-domain host, where no scheduler can
    manufacture parallelism. Wall seconds and the measured speedup are
    host-dependent, so they never appear in the deterministic result —
    the caller records them next to it (BENCH_parallel.json's ["host"]
    wrapper). *)

open Sky_net
open Sky_harness
module Fault = Sky_faults.Fault

type check = { c_name : string; c_ok : bool }

type result = {
  r_seed : int;
  r_eq_shards : int;
  r_eq_workers : int;
  r_eq_quantum : int;
  r_alt_quantum : int;
  r_eq_served : int;
  r_eq_errors : int;
  r_eq_quanta : int;
  r_eq_faults_fired : int;
  r_sc_shards : int;
  r_sc_workers : int;
  r_sc_quantum : int;
  r_sc_served : int;
  r_sc_quanta : int;
  r_checks : check list;
  (* Host-dependent: never rendered into the deterministic JSON. *)
  r_host_domains : int;
  r_jobs : int;
  r_seq_seconds : float;
  r_par_seconds : float;
  r_speedup : float;
  r_gate : string;
}

(* ---- phase A: equivalence ---- *)

let eq_shards = 3
let eq_workers = 2
let eq_conns = 8
let eq_requests = 2
let eq_quantum = 20_000
let alt_quantum = 7_333

(* Per-shard fault storms (armed inside the shard's scope bundle): even
   shards lose a worker mid-run and replay its in-flight requests, so
   the equivalence comparison covers the recovery machinery, not just
   the happy path. Distinct schedules per shard — identical storms on
   every shard would hide cross-shard state leaks. *)
let storm ~shard =
  if shard mod 2 = 0 then begin
    Fault.reset ~seed:(1000 + shard) ();
    Fault.arm ~budget:1 ~site:"server.httpd" ~kind:Fault.Crash
      (Fault.At_hit (7 + (5 * shard)));
    Fault.arm ~budget:1 ~site:"server.httpd" ~kind:Fault.Hang
      (Fault.At_hit (19 + (3 * shard)))
  end

let build_eq ?(quantum = eq_quantum) ~seed () =
  Cluster_web.build ~seed ~quantum ~conns:eq_conns
    ~requests_per_conn:eq_requests ~prepare:storm ~shards:eq_shards
    ~workers:eq_workers ~transport:Web.Skybridge ()

(* The unchunked reference: each shard driven to completion by the plain
   sequential scheduler, no quantum anywhere. *)
let run_reference cl =
  for i = 0 to Cluster_web.n_shards cl - 1 do
    Sky_sim.Scopes.enter
      (Cluster_web.shard_scope cl i)
      (fun () -> Web.run (Cluster_web.shard_web cl i))
  done

let fired_total cl =
  let n = ref 0 in
  for i = 0 to Cluster_web.n_shards cl - 1 do
    Sky_sim.Scopes.enter
      (Cluster_web.shard_scope cl i)
      (fun () ->
        List.iter (fun (_, c) -> n := !n + c) (Fault.fired_counts ()))
  done;
  !n

let equivalence ~seed =
  let checks = ref [] in
  let check name ok = checks := { c_name = name; c_ok = ok } :: !checks in
  let seq_vs_par backend =
    Sky_core.Backend.with_default backend @@ fun () ->
    let bname = Sky_core.Backend.name backend in
    let seq = build_eq ~seed () in
    ignore (Cluster_web.run seq Sky_sim.Quantum.Seq);
    let dseq = Cluster_web.digest seq in
    let par = build_eq ~seed () in
    ignore (Cluster_web.run par (Sky_sim.Quantum.Par { jobs = 2 }));
    check
      (Printf.sprintf "seq-vs-par2:%s" bname)
      (dseq = Cluster_web.digest par);
    seq
  in
  (* Every backend: the same cluster, sequential vs two domains. *)
  let seq_vmfunc = seq_vs_par Sky_core.Backend.Vmfunc in
  ignore (seq_vs_par Sky_core.Backend.Mpk);
  ignore (seq_vs_par Sky_core.Backend.Syscall);
  let dseq = Cluster_web.digest seq_vmfunc in
  let dseq_bare = Cluster_web.digest ~gossip:false seq_vmfunc in
  (* More domains than shards ever run at once. *)
  let par3 = build_eq ~seed () in
  ignore (Cluster_web.run par3 (Sky_sim.Quantum.Par { jobs = 3 }));
  check "jobs-invariance:par3" (dseq = Cluster_web.digest par3);
  (* Chunked vs the plain unchunked sequential scheduler. *)
  let reference = build_eq ~seed () in
  run_reference reference;
  check "chunked-vs-unchunked"
    (dseq_bare = Cluster_web.digest ~gossip:false reference);
  (* A different quantum only moves the boundaries, never the physics. *)
  let altq = build_eq ~quantum:alt_quantum ~seed () in
  ignore (Cluster_web.run altq Sky_sim.Quantum.Seq);
  check "quantum-invariance"
    (dseq_bare = Cluster_web.digest ~gossip:false altq);
  (* The storm must actually have fired, or the recovery-path coverage
     claimed above is vacuous. *)
  let fired = fired_total seq_vmfunc in
  check "storm-fired" (fired > 0);
  check "served-nonzero" (Cluster_web.served seq_vmfunc > 0);
  (seq_vmfunc, fired, List.rev !checks)

(* ---- phase B: speedup ---- *)

let sc_shards = 4
let sc_workers = 4
let sc_conns = 16
let sc_quantum = Sky_sim.Quantum.default_quantum

let build_scale ~seed () =
  Cluster_web.build ~seed ~quantum:sc_quantum ~conns:sc_conns
    ~requests_per_conn:eq_requests ~shards:sc_shards ~workers:sc_workers
    ~transport:Web.Skybridge ()

(* The honest gate: a simulator cannot out-parallelize its host. With
   [d] usable domains the bar is ~0.65x per extra domain up to the 2x
   the issue demands of a >=4-way host; a single-domain host gets an
   explicit waiver, not a fake pass. *)
let gate_of ~domains ~jobs ~seq_seconds ~speedup =
  if domains <= 1 then "waived:single-host-domain"
  else if seq_seconds <= 0. then "waived:no-host-clock"
  else
    let bar = Float.min 2.0 (0.65 *. float_of_int (min jobs domains)) in
    if speedup >= bar then Printf.sprintf "pass:>=%.2fx" bar
    else Printf.sprintf "fail:<%.2fx" bar

let speedup_phase ~seed ~now ~checks =
  let domains = Domain.recommended_domain_count () in
  let jobs = max 1 (min sc_shards domains) in
  let seq = build_scale ~seed () in
  let t0 = now () in
  let seq_quanta = Cluster_web.run seq Sky_sim.Quantum.Seq in
  let seq_seconds = now () -. t0 in
  let par = build_scale ~seed () in
  let t1 = now () in
  ignore (Cluster_web.run par (Sky_sim.Quantum.Par { jobs }));
  let par_seconds = now () -. t1 in
  (* The scale cluster must satisfy the same determinism gate. *)
  let ck =
    {
      c_name = "digest:scale-seq-vs-par";
      c_ok = Cluster_web.digest seq = Cluster_web.digest par;
    }
  in
  let speedup =
    if par_seconds > 0. then seq_seconds /. par_seconds else 1.0
  in
  ( seq,
    seq_quanta,
    checks @ [ ck ],
    domains,
    jobs,
    seq_seconds,
    par_seconds,
    speedup )

let run_full ?(seed = 42) ?(now = fun () -> 0.) () =
  let eq, fired, checks = equivalence ~seed in
  let sc, sc_quanta, checks, domains, jobs, seq_s, par_s, speedup =
    speedup_phase ~seed ~now ~checks
  in
  {
    r_seed = seed;
    r_eq_shards = eq_shards;
    r_eq_workers = eq_workers;
    r_eq_quantum = eq_quantum;
    r_alt_quantum = alt_quantum;
    r_eq_served = Cluster_web.served eq;
    r_eq_errors = Cluster_web.errors eq;
    r_eq_quanta = Cluster_web.quanta eq;
    r_eq_faults_fired = fired;
    r_sc_shards = sc_shards;
    r_sc_workers = sc_workers;
    r_sc_quantum = sc_quantum;
    r_sc_served = Cluster_web.served sc;
    r_sc_quanta = sc_quanta;
    r_checks = checks;
    r_host_domains = domains;
    r_jobs = jobs;
    r_seq_seconds = seq_s;
    r_par_seconds = par_s;
    r_speedup = speedup;
    r_gate = gate_of ~domains ~jobs ~seq_seconds:seq_s ~speedup;
  }

let all_identical r = List.for_all (fun c -> c.c_ok) r.r_checks
let gate_ok r = not (String.length r.r_gate >= 4 && String.sub r.r_gate 0 4 = "fail")
let ok r = all_identical r && gate_ok r

(* ---- rendering ---- *)

(* Deterministic: everything host-dependent (domains, jobs, seconds,
   speedup, the gate verdict) stays out — CI byte-diffs this across
   runs and the committed artifact carries the host numbers in a
   separate wrapper. *)
let to_json r =
  let open Sky_trace.Json in
  to_string
    (Obj
       [
         ("bench", String "parallel");
         ("seed", Int r.r_seed);
         ( "equivalence",
           Obj
             [
               ("shards", Int r.r_eq_shards);
               ("workers_per_shard", Int r.r_eq_workers);
               ("quantum_cycles", Int r.r_eq_quantum);
               ("alt_quantum_cycles", Int r.r_alt_quantum);
               ("served", Int r.r_eq_served);
               ("errors", Int r.r_eq_errors);
               ("quanta", Int r.r_eq_quanta);
               ("faults_fired", Int r.r_eq_faults_fired);
             ] );
         ( "scale",
           Obj
             [
               ("shards", Int r.r_sc_shards);
               ("workers_per_shard", Int r.r_sc_workers);
               ("quantum_cycles", Int r.r_sc_quantum);
               ("served", Int r.r_sc_served);
               ("quanta", Int r.r_sc_quanta);
             ] );
         ( "checks",
           List
             (List.map
                (fun c -> Obj [ ("name", String c.c_name); ("ok", Bool c.c_ok) ])
                r.r_checks) );
         ("all_identical", Bool (all_identical r));
         (* The verdict string is stable on a given host (raw wall
            seconds never appear here — they go to stderr). *)
         ("speedup_gate", String r.r_gate);
       ])

(* Host context for the artifact wrapper: stable on a given host, so the
   committed BENCH_parallel.json stays byte-deterministic across runs. *)
let host_json r =
  let open Sky_trace.Json in
  to_string
    (Obj
       [
         ("domains", Int r.r_host_domains);
         ("jobs", Int r.r_jobs);
         ("gate", String r.r_gate);
       ])

let table r =
  Tbl.make
    ~title:
      (Printf.sprintf
         "Quantum-synchronized parallel simulation (quantum %d cycles)"
         r.r_eq_quantum)
    ~header:[ "check"; "result" ]
    ~notes:
      [
        Printf.sprintf
          "equivalence: %d shards x %d workers, faults armed; scale: %d x %d"
          r.r_eq_shards r.r_eq_workers r.r_sc_shards r.r_sc_workers;
        Printf.sprintf
          "host: %d domain(s), par jobs=%d, speedup %.2fx -> gate %s"
          r.r_host_domains r.r_jobs r.r_speedup r.r_gate;
      ]
    (List.map
       (fun c -> [ c.c_name; (if c.c_ok then "identical" else "MISMATCH") ])
       r.r_checks
    @ [ [ "speedup-gate"; r.r_gate ] ])

let run () = table (run_full ())
