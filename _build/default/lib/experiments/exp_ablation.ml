(** Ablations of the design choices DESIGN.md calls out:

    1. 1 GiB vs 4 KiB base EPT (nested-walk length, EPT footprint);
    2. VPID on vs off (TLB flush on every VMFUNC);
    3. KPTI on vs off on the seL4 fastpath;
    4. shallow vs deep EPT copy at client registration;
    5. EPTP-list LRU eviction overhead beyond the list size. *)

open Sky_ukernel
open Sky_harness

let direct_roundtrip ?(vpid = true) ?(huge_ept = true) ?max_eptp ?(ws_pages = 8) ~servers () =
  let machine = Sky_sim.Machine.create ~cores:2 ~mem_mib:128 () in
  let kernel = Kernel.create machine in
  let sb = Sky_core.Subkernel.init ~vpid ~huge_ept ?max_eptp kernel in
  let client = Kernel.spawn kernel ~name:"client" in
  let vcpu = Kernel.vcpu kernel ~core:0 in
  let mem = Kernel.mem kernel in
  (* Client- and server-side data working sets: the VPID and EPT-page
     ablations only show up when the workload actually relies on warm
     TLB entries across the crossing. *)
  let client_ws = Kernel.map_anon kernel client (ws_pages * 4096) in
  let sids =
    List.init servers (fun i ->
        let s = Kernel.spawn kernel ~name:(Printf.sprintf "srv%d" i) in
        let ws = Kernel.map_anon kernel s (4 * 4096) in
        let handler ~core:_ m =
          for page = 0 to 3 do
            ignore (Sky_mmu.Translate.read_u64 vcpu mem ~va:(ws + (page * 4096)))
          done;
          m
        in
        let sid = Sky_core.Subkernel.register_server sb s handler in
        Sky_core.Subkernel.register_client_to_server sb client ~server_id:sid;
        sid)
  in
  Kernel.context_switch kernel ~core:0 client;
  Sky_mmu.Vcpu.set_mode vcpu Sky_mmu.Vcpu.User;
  let cpu = Kernel.cpu kernel ~core:0 in
  let msg = Bytes.create 8 in
  let one sid =
    for page = 0 to ws_pages - 1 do
      ignore (Sky_mmu.Translate.read_u64 vcpu mem ~va:(client_ws + (page * 4096)))
    done;
    ignore (Sky_core.Subkernel.direct_server_call sb ~core:0 ~client ~server_id:sid msg)
  in
  (* Round-robin over all servers: with a short EPTP list this thrashes
     the eviction path. *)
  List.iter one sids;
  let iters = 200 in
  let t0 = Sky_sim.Cpu.cycles cpu in
  for i = 1 to iters do
    one (List.nth sids (i mod servers))
  done;
  ((Sky_sim.Cpu.cycles cpu - t0) / iters, sb)

let fastpath_roundtrip ~kpti =
  let machine = Sky_sim.Machine.create ~cores:2 ~mem_mib:64 () in
  let config = { (Config.default Config.Sel4) with Config.kpti } in
  let kernel = Kernel.create ~config machine in
  let ipc = Sky_kernels.Ipc.create kernel in
  let client = Kernel.spawn kernel ~name:"c" in
  let server = Kernel.spawn kernel ~name:"s" in
  let ep = Sky_kernels.Ipc.register ipc server (fun ~core:_ m -> m) in
  Kernel.context_switch kernel ~core:0 client;
  let msg = Bytes.create 8 in
  for _ = 1 to 20 do
    ignore (Sky_kernels.Ipc.call ipc ~core:0 ~client ep msg)
  done;
  let cpu = Kernel.cpu kernel ~core:0 in
  let t0 = Sky_sim.Cpu.cycles cpu in
  for _ = 1 to 200 do
    ignore (Sky_kernels.Ipc.call ipc ~core:0 ~client ep msg)
  done;
  (Sky_sim.Cpu.cycles cpu - t0) / 200

let ept_copy_pages () =
  (* Fair contrast: a 64 MiB guest mapped with 4 KiB EPT pages (what a
     commodity hypervisor's EPT looks like). A CR3-remap binding needs a
     private view of it: §4.3's shallow copy privatizes 4 pages; a naive
     deep copy duplicates the whole radix tree. *)
  let machine = Sky_sim.Machine.create ~cores:1 ~mem_mib:128 () in
  let mem = machine.Sky_sim.Machine.mem and alloc = machine.Sky_sim.Machine.alloc in
  let base = Sky_mmu.Ept.create alloc in
  Sky_mmu.Ept.map_identity_4k base ~mem ~alloc ~mib:64;
  let shallow = Sky_mmu.Ept.clone_shallow base ~mem ~alloc in
  Sky_mmu.Ept.remap_gpa shallow ~mem ~alloc ~gpa:0x123000 ~hpa:0x456000;
  let deep = Sky_mmu.Ept.clone_deep base ~mem ~alloc in
  (Sky_mmu.Ept.pages_owned shallow, Sky_mmu.Ept.pages_owned deep)

let nested_walk_accesses ~huge_ept =
  (* Count d-cache accesses of one cold nested translation. *)
  let machine = Sky_sim.Machine.create ~cores:1 ~mem_mib:128 () in
  let kernel = Kernel.create machine in
  let sb = Sky_core.Subkernel.init ~huge_ept kernel in
  ignore (Sky_core.Subkernel.rootkernel sb);
  let proc = Kernel.spawn kernel ~name:"p" in
  let va = Kernel.map_anon kernel proc 4096 in
  Kernel.context_switch kernel ~core:0 proc;
  Sky_mmu.Vcpu.set_mode (Kernel.vcpu kernel ~core:0) Sky_mmu.Vcpu.User;
  let cpu = Kernel.cpu kernel ~core:0 in
  let before =
    Sky_sim.Cache.hits (Sky_sim.Cpu.l1d cpu) + Sky_sim.Cache.misses (Sky_sim.Cpu.l1d cpu)
  in
  ignore
    (Sky_mmu.Translate.translate (Kernel.vcpu kernel ~core:0) (Kernel.mem kernel)
       Sky_mmu.Translate.data_read ~va);
  Sky_sim.Cache.hits (Sky_sim.Cpu.l1d cpu)
  + Sky_sim.Cache.misses (Sky_sim.Cpu.l1d cpu)
  - before

let run () =
  let huge_walk = nested_walk_accesses ~huge_ept:true in
  let small_walk = nested_walk_accesses ~huge_ept:false in
  (* EPT page size matters when walks are live: use a working set beyond
     the 64-entry dTLB. VPID matters when the workload *relies* on warm
     entries: use a small one. *)
  let rt_huge, _ = direct_roundtrip ~ws_pages:80 ~servers:1 () in
  let rt_small, _ = direct_roundtrip ~ws_pages:80 ~huge_ept:false ~servers:1 () in
  let rt_vpid, _ = direct_roundtrip ~vpid:true ~servers:1 () in
  let rt_novpid, _ = direct_roundtrip ~vpid:false ~servers:1 () in
  let kpti_off = fastpath_roundtrip ~kpti:false in
  let kpti_on = fastpath_roundtrip ~kpti:true in
  let shallow_pages, deep_pages = ept_copy_pages () in
  let rt_fit, sb_fit = direct_roundtrip ~max_eptp:12 ~servers:8 () in
  let rt_evict, sb_evict = direct_roundtrip ~max_eptp:4 ~servers:8 () in
  Tbl.make ~title:"Ablations: SkyBridge design choices"
    ~header:[ "design choice"; "chosen"; "alternative"; "unit" ]
    ~notes:
      [
        Printf.sprintf "eviction run: %d evictions with max_eptp=4 vs %d with 12"
          (Sky_core.Subkernel.evictions sb_evict)
          (Sky_core.Subkernel.evictions sb_fit);
      ]
    [
      [ "base EPT page size: nested-walk accesses (1G vs 4K)";
        Tbl.fmt_int huge_walk; Tbl.fmt_int small_walk; "accesses" ];
      [ "base EPT page size: direct-call roundtrip";
        Tbl.fmt_int rt_huge; Tbl.fmt_int rt_small; "cycles" ];
      [ "VPID on (no flush) vs off (flush on VMFUNC)";
        Tbl.fmt_int rt_vpid; Tbl.fmt_int rt_novpid; "cycles" ];
      [ "KPTI off vs on (seL4 fastpath roundtrip)";
        Tbl.fmt_int kpti_off; Tbl.fmt_int kpti_on; "cycles" ];
      [ "EPT copy at binding: shallow vs deep";
        Tbl.fmt_int shallow_pages; Tbl.fmt_int deep_pages; "pages" ];
      [ "EPTP list: fits (12 slots) vs evicting (4 slots), 8 servers";
        Tbl.fmt_int rt_fit; Tbl.fmt_int rt_evict; "cycles" ];
    ]
