examples/kv_pipeline.ml: Array Kernel List Pipeline Printf Sky_core Sky_kvstore Sky_sim Sky_ukernel Sys
