(** Transport-independent block-device interface.

    The file system talks to whatever this record wraps: the raw RAM disk
    in the same address space (Baseline), an IPC server (the paper's
    evaluated configuration), a SkyBridge server, or a fault-injecting
    wrapper used by the crash-recovery tests. *)

type t = {
  read : core:int -> int -> bytes;
  write : core:int -> int -> bytes -> unit;
  name : string;
}

exception Crash of { writes_completed : int }

(* Same-process access: device work charged on the calling core. *)
let direct kernel rd =
  {
    name = "direct";
    read = (fun ~core blockno -> Ramdisk.read rd (Sky_ukernel.Kernel.cpu kernel ~core) blockno);
    write =
      (fun ~core blockno data ->
        Ramdisk.write rd (Sky_ukernel.Kernel.cpu kernel ~core) blockno data);
  }

(* The IPC server side: decode, execute against the RAM disk on the
   serving core. *)
let handler kernel rd : Sky_kernels.Ipc.handler =
 fun ~core msg ->
  let cpu = Sky_ukernel.Kernel.cpu kernel ~core in
  match Proto.decode_request msg with
  | Proto.Read blockno -> Proto.encode_read_reply (Ramdisk.read rd cpu blockno)
  | Proto.Write (blockno, data) ->
    Ramdisk.write rd cpu blockno data;
    Proto.write_ack

let over_ipc ipc ~client endpoint =
  {
    name = "ipc";
    read =
      (fun ~core blockno ->
        Sky_kernels.Ipc.call ipc ~core ~client endpoint
          (Proto.encode_request (Proto.Read blockno)));
    write =
      (fun ~core blockno data ->
        ignore
          (Sky_kernels.Ipc.call ipc ~core ~client endpoint
             (Proto.encode_request (Proto.Write (blockno, data)))));
  }

let over_skybridge sb ~client ~server_id =
  {
    name = "skybridge";
    read =
      (fun ~core blockno ->
        Sky_core.Subkernel.direct_server_call sb ~core ~client ~server_id
          (Proto.encode_request (Proto.Read blockno)));
    write =
      (fun ~core blockno data ->
        ignore
          (Sky_core.Subkernel.direct_server_call sb ~core ~client ~server_id
             (Proto.encode_request (Proto.Write (blockno, data)))));
  }

(* Crash injection: the machine "loses power" after [fail_after] more
   block writes — mid-transaction crashes for the log-recovery tests. *)
let faulty inner ~fail_after =
  let completed = ref 0 in
  {
    name = "faulty:" ^ inner.name;
    read = inner.read;
    write =
      (fun ~core blockno data ->
        if !fail_after <= 0 then raise (Crash { writes_completed = !completed })
        else begin
          decr fail_after;
          incr completed;
          inner.write ~core blockno data
        end);
  }
