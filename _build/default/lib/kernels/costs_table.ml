(** Per-kernel IPC path cost model, calibrated against Figure 7.

    The mode-switch and address-space-switch components are the measured
    hardware constants from {!Sky_sim.Costs}; the entries below are the
    per-leg *software* costs that differ between the three kernels:

    - seL4's fastpath runs 98 cycles of checks/endpoint/capability logic
      (§2.1.1); its slowpath enters the scheduler and runs the full IPC
      path.
    - Fiasco.OC's fastpath "may handle deferred requests (drq) during
      IPC, which is the reason why its IPC is relatively slower than
      seL4's" (§6.3).
    - "The Zircon microkernel does not have a fastpath IPC, which means
      it may enter the scheduler when handling IPC. Moreover, the IPC
      path in Zircon may be preempted by interrupts. The message copying
      in Zircon is not well optimized, which involves two expensive
      memory copies for each IPC" (§6.3).

    The footprint sizes control how much kernel text/data each leg pulls
    through the caches (the Table 1 indirect cost); they do not charge
    cycles directly. *)

type t = {
  has_fastpath : bool;
  fast_logic : int;  (** per-leg software logic on the fast path *)
  slow_logic : int;  (** per-leg software logic on the slow path *)
  sched : int;  (** scheduler entry cost when the slow path runs it *)
  cross_extra : int;  (** extra slow-path work on cross-core legs *)
  double_copy : bool;  (** Zircon: user->kernel->user message copies *)
  text_fast : int;  (** kernel text bytes touched per fast leg *)
  text_slow : int;
  data_touch : int;  (** kernel data bytes touched per leg *)
}

let sel4 =
  {
    has_fastpath = true;
    fast_logic = Sky_sim.Costs.sel4_fastpath_logic;
    slow_logic = 574;
    sched = 500;
    cross_extra = 1237;
    double_copy = false;
    text_fast = 2048;
    text_slow = 4096;
    data_touch = 1024;
  }

let fiasco =
  {
    has_fastpath = true;
    fast_logic = 963; (* includes drq processing *)
    slow_logic = 1412;
    sched = 500;
    cross_extra = 2075;
    double_copy = false;
    text_fast = 4096;
    text_slow = 12288;
    data_touch = 1024;
  }

let zircon =
  {
    has_fastpath = false;
    fast_logic = 0;
    slow_logic = 2085;
    sched = 1600;
    cross_extra = 11961; (* rescheduling + preemption on the remote core *)
    double_copy = true;
    text_fast = 0;
    text_slow = 16384;
    data_touch = 2048;
  }

(* A UDS-style socket round trip on Linux is ~10-20us of kernel path:
   syscalls, sk_buff management, two copies, wakeups and scheduling on
   both ends. *)
let linux =
  {
    has_fastpath = false;
    fast_logic = 0;
    slow_logic = 2600;
    sched = 1800;
    cross_extra = 2000;
    double_copy = true;
    text_fast = 0;
    text_slow = 24576;
    data_touch = 4096;
  }

let for_variant = function
  | Sky_ukernel.Config.Sel4 -> sel4
  | Sky_ukernel.Config.Fiasco -> fiasco
  | Sky_ukernel.Config.Zircon -> zircon
  | Sky_ukernel.Config.Linux -> linux
