examples/quickstart.ml: Bytes Kernel Printf Sky_core Sky_sim Sky_ukernel
