lib/core/rootkernel.ml: Array Cpu Ept Frame_alloc Int64 Kernel Layout Logs Machine Phys_mem Pmu Proc Sky_mem Sky_mmu Sky_sim Sky_ukernel Vcpu Vmcs
