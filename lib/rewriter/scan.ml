open Sky_isa

type field = In_modrm | In_sib | In_disp | In_imm | In_opcode

type case = C1_vmfunc | C2_spanning | C3_embedded of field

type occurrence = { at : int; case : case; span : Decode.decoded list }

(* The two privileged-mechanism encodings the audits care about: VMFUNC
   [0F 01 D4] and WRPKRU [0F 01 EF]. Same length, same scan machinery. *)
let vmfunc_bytes = Bytes.of_string "\x0f\x01\xd4"
let wrpkru_bytes = Bytes.of_string "\x0f\x01\xef"

let find_bytes ~pattern code =
  let p = Bytes.length pattern in
  let n = Bytes.length code in
  let matches i =
    let rec eq j = j >= p || (Bytes.get code (i + j) = Bytes.get pattern j && eq (j + 1)) in
    eq 0
  in
  let rec go i acc =
    if i + p > n then List.rev acc
    else if matches i then go (i + 1) (i :: acc)
    else go (i + 1) acc
  in
  if p = 0 then [] else go 0 []

let find_pattern ?(pattern = vmfunc_bytes) code = find_bytes ~pattern code
let find_wrpkru code = find_bytes ~pattern:wrpkru_bytes code
let count_pattern code = List.length (find_pattern code)

(* Chunked scanning for per-page audits. A pattern split across two
   chunks is invisible to [find_bytes] run on each chunk alone, so we
   carry the last [len-1] bytes of each chunk into the scan of the next
   one. [chunks] are [(global_offset, bytes)] pieces in increasing offset
   order; a gap between chunks resets the carry (the pattern cannot span
   unscanned bytes). Returns global offsets of every occurrence. *)
let find_pattern_chunked ?(pattern = vmfunc_bytes) chunks =
  let overlap = max 0 (Bytes.length pattern - 1) in
  let hits = ref [] in
  let carry = ref Bytes.empty in
  let carry_off = ref 0 in
  List.iter
    (fun (off, chunk) ->
      let contiguous =
        Bytes.length !carry > 0 && !carry_off + Bytes.length !carry = off
      in
      let joined, joined_off =
        if contiguous then (Bytes.cat !carry chunk, !carry_off)
        else (chunk, off)
      in
      (* Hits entirely inside the carry were already reported by the
         previous iteration (the carry is shorter than the pattern, so
         any hit here uses at least one byte of the new chunk). *)
      List.iter (fun at -> hits := (joined_off + at) :: !hits)
        (find_bytes ~pattern joined);
      let keep = min overlap (Bytes.length joined) in
      carry := Bytes.sub joined (Bytes.length joined - keep) keep;
      carry_off := joined_off + Bytes.length joined - keep)
    chunks;
  List.sort_uniq compare !hits

(* [find_bytes] over [code] presented as [page_size]-sized pages — the
   shape a per-page audit sees. Equivalent to scanning the whole buffer
   contiguously thanks to the carried overlap. *)
let find_pattern_paged ?(page_size = 4096) ?(pattern = vmfunc_bytes) code =
  let n = Bytes.length code in
  let rec pages off acc =
    if off >= n then List.rev acc
    else
      let len = min page_size (n - off) in
      pages (off + page_size) ((off, Bytes.sub code off len) :: acc)
  in
  find_pattern_chunked ~pattern (pages 0 [])

(* Which encoding field does byte [rel] (relative to the instruction
   start) belong to? *)
let field_of (l : Encode.layout) rel =
  let in_span off len = match off with Some o -> rel >= o && rel < o + len | None -> false in
  if in_span l.Encode.modrm_off 1 then In_modrm
  else if in_span l.Encode.sib_off 1 then In_sib
  else if in_span l.Encode.disp_off l.Encode.disp_len then In_disp
  else if in_span l.Encode.imm_off l.Encode.imm_len then In_imm
  else In_opcode

let scan ?(pattern = vmfunc_bytes) code =
  let expected_insn =
    if Bytes.equal pattern wrpkru_bytes then Insn.Wrpkru else Insn.Vmfunc
  in
  let plen = Bytes.length pattern in
  let hits = find_bytes ~pattern code in
  if hits = [] then []
  else begin
    let insns = Array.of_list (Decode.decode_all code) in
    (* Map a byte offset to the index of the covering instruction. *)
    let covering at =
      let rec bsearch lo hi =
        if lo >= hi then lo - 1
        else
          let mid = (lo + hi) / 2 in
          if insns.(mid).Decode.off <= at then bsearch (mid + 1) hi
          else bsearch lo mid
      in
      bsearch 0 (Array.length insns)
    in
    List.map
      (fun at ->
        let i = covering at in
        let d = insns.(i) in
        let ends = d.Decode.off + d.Decode.len in
        if at + plen > ends then begin
          (* Spans into following instruction(s). *)
          let rec collect j acc =
            if j >= Array.length insns then List.rev acc
            else
              let dj = insns.(j) in
              if dj.Decode.off < at + plen then collect (j + 1) (dj :: acc)
              else List.rev acc
          in
          { at; case = C2_spanning; span = collect i [] }
        end
        else if d.Decode.insn = Some expected_insn then
          { at; case = C1_vmfunc; span = [ d ] }
        else
          {
            at;
            case = C3_embedded (field_of d.Decode.layout (at - d.Decode.off));
            span = [ d ];
          })
      hits
  end

let field_name = function
  | In_modrm -> "modrm"
  | In_sib -> "sib"
  | In_disp -> "disp"
  | In_imm -> "imm"
  | In_opcode -> "opcode"

let case_name = function
  | C1_vmfunc -> "C1(vmfunc)"
  | C2_spanning -> "C2(spanning)"
  | C3_embedded f -> Printf.sprintf "C3(%s)" (field_name f)
