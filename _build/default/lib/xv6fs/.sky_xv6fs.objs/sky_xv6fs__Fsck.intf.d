lib/xv6fs/fsck.mli: Fs
