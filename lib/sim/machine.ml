type t = {
  mem : Sky_mem.Phys_mem.t;
  alloc : Sky_mem.Frame_alloc.t;
  cores : Cpu.t array;
  l3 : Cache.t;
}

let create ?(cores = 8) ?(mem_mib = 256) () =
  if cores <= 0 then invalid_arg "Machine.create: cores <= 0";
  let mem =
    Sky_mem.Phys_mem.create ~frames:(mem_mib * 1024 * 1024 / Sky_mem.Phys_mem.frame_size)
  in
  let l3 =
    Cache.create ~name:"l3" ~size_bytes:(8 * 1024 * 1024) ~ways:16 ~line_bytes:64
  in
  let t =
    {
      mem;
      alloc = Sky_mem.Frame_alloc.create mem;
      cores = Array.init cores (fun id -> Cpu.create ~id ~l3);
      l3;
    }
  in
  (* Tracing is keyed on simulated cycles: point the tracer's clock at
     this machine's per-core TSCs. Experiments build machines one at a
     time, so the latest machine owns the clock. *)
  Sky_trace.Trace.set_clock (fun core ->
      if core >= 0 && core < Array.length t.cores then Cpu.cycles t.cores.(core)
      else 0);
  (* The fault engine's At_cycle triggers read the same clock. *)
  Sky_faults.Fault.set_clock (fun core ->
      if core >= 0 && core < Array.length t.cores then Cpu.cycles t.cores.(core)
      else 0);
  t

let core t i = t.cores.(i)
let n_cores t = Array.length t.cores

let max_cycles t =
  Array.fold_left (fun acc c -> max acc (Cpu.cycles c)) 0 t.cores

let sync_cores t =
  let m = max_cycles t in
  Array.iter (fun c -> Cpu.advance_to c m) t.cores

(* ---- virtual-time interleaved multi-core run loop ---- *)

type step = Progress | Idle | Idle_until of int | Done

exception Stuck of string

let interleave t ~cores ~step =
  let cores = Array.of_list cores in
  if Array.length cores = 0 then invalid_arg "Machine.interleave: no cores";
  Array.iter
    (fun c ->
      if c < 0 || c >= Array.length t.cores then
        invalid_arg "Machine.interleave: core out of range")
    cores;
  let n = Array.length cores in
  let finished = Array.make n false in
  let live () =
    let acc = ref [] in
    for i = n - 1 downto 0 do
      if not finished.(i) then acc := i :: !acc
    done;
    !acc
  in
  (* Consecutive steps with neither progress nor clock movement: the
     deadlock guard. Closed systems always have a next event, so hitting
     the bound means a step function lied about being Idle. *)
  let idle_streak = ref 0 in
  let max_idle_streak = 64 * n in
  let rec loop () =
    match live () with
    | [] -> ()
    | l ->
      (* Run the core furthest behind in virtual time — the interleaving
         rule that makes a single-threaded simulation behave like n
         concurrent cores. *)
      let i =
        List.fold_left
          (fun best j ->
            if Cpu.cycles t.cores.(cores.(j)) < Cpu.cycles t.cores.(cores.(best))
            then j
            else best)
          (List.hd l) (List.tl l)
      in
      let c = cores.(i) in
      let cpu = t.cores.(c) in
      let before = Cpu.cycles cpu in
      (match step ~core:c with
      | Progress -> idle_streak := 0
      | Done ->
        finished.(i) <- true;
        idle_streak := 0
      | Idle_until ts when ts > before ->
        Cpu.advance_to cpu ts;
        idle_streak := 0
      | Idle | Idle_until _ ->
        (* Nothing to do at this virtual time: hop past the next-lowest
           live core so whoever can unblock us runs first. *)
        let next =
          List.fold_left
            (fun acc j ->
              if j = i then acc
              else min acc (Cpu.cycles t.cores.(cores.(j))))
            max_int l
        in
        if next < max_int then Cpu.advance_to cpu (next + 1)
        else Cpu.charge cpu 64 (* lone core: poll tick *);
        incr idle_streak;
        if !idle_streak > max_idle_streak then
          raise
            (Stuck
               (Printf.sprintf
                  "Machine.interleave: %d idle steps with no progress \
                   (cores stuck at cycle %d)"
                  !idle_streak (Cpu.cycles cpu))));
      loop ()
  in
  loop ()
