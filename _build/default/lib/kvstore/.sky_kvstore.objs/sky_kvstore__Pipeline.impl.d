lib/kvstore/pipeline.ml: Bytes Char Cpu Kernel Kv_server List Printf Proc Rc4 Rng Sky_core Sky_kernels Sky_mem Sky_mmu Sky_sim Sky_ukernel
