(** Service URIs, hiillos-style: services are addressed by scheme
    ([kv://], [fs:///etc/hosts], [blk://], [http://host/x]) and the name
    service routes on the scheme alone — the path is payload for the
    service behind it. *)

type t = {
  scheme : string;  (** the name-service routing key, e.g. ["fs"] *)
  path : string;  (** everything after ["://"], possibly empty *)
}

exception Bad_uri of string

val parse : string -> t
(** @raise Bad_uri when the ["://"] separator is missing or the scheme
    is empty / contains anything outside [a-z0-9+.-]. *)

val service : string -> string
(** [service uri] is [(parse uri).scheme] — the name-service key. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
