(** `--jobs N` replica harness: run the same experiment closure on N
    OCaml domains at once, each inside a fresh {!Sky_sim.Scopes} bundle
    (its own tracer, fault engine, Accel epoch and hot-line table), and
    byte-compare a rendering of every replica's result.

    This is the cheap, always-on form of the parallelism determinism
    gate: any host-global mutable state that leaked out of the scoped
    bundles would let concurrently-running replicas perturb each other
    and diverge — caught here as a hard failure rather than a flaky
    benchmark number. *)

let replicate ~jobs ~render f =
  if jobs <= 1 then f ()
  else begin
    let results =
      Array.init jobs (fun _ ->
          Domain.spawn (fun () ->
              Sky_sim.Scopes.enter
                (Sky_sim.Scopes.fresh ())
                (fun () ->
                  let r = f () in
                  (r, render r))))
      |> Array.map Domain.join
    in
    let r0, d0 = results.(0) in
    Array.iteri
      (fun i (_, d) ->
        if d <> d0 then
          failwith
            (Printf.sprintf
               "--jobs: replica %d diverged from replica 0 (%d vs %d bytes \
                rendered) — a host global leaked between simulator worlds"
               i (String.length d) (String.length d0)))
      results;
    r0
  end
