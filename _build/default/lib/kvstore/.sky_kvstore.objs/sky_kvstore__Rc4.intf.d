lib/kvstore/rc4.mli: Sky_sim
