examples/microkernel_primitives.mli:
