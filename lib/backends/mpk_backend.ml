(** ERIM-style MPK: a WRPKRU call gate switches the PKRU view (no
    address-space or TLB interaction at all).

    All domains share one address space; each gets a protection key and
    a resting PKRU view allowing only {e its} key plus the shared key 0.
    A crossing is one WRPKRU to the server's view — 26 cycles, the
    cheapest switch of the three — and the whole security argument is
    static: WRPKRU is unprivileged, so the binary inspection (the
    [wrpkru] audit pass) must prove no WRPKRU encoding survives outside
    the trampoline's two gates, and the trampoline check ([`Mpk]
    flavor) must prove those gates zero ECX/EDX (the hardware faults
    otherwise) and load RAX only from the blessed view registers. The
    [flow.pkru-escape] Isoflow invariant closes the loop: no resting
    view may grant write to another domain's key. Revocation has
    nothing architectural to tear down — the elevated view exists only
    inside the gate — so it is purely the Subkernel's binding/key-table
    bookkeeping, which is why the crash-and-rebind regression matters
    most here. *)

let descriptor =
  {
    Descriptor.d_kind = Sky_core.Backend.Mpk;
    d_name = "mpk";
    d_title = "MPK protection keys with a WRPKRU call gate (ERIM-style)";
    d_switch_cycles = Sky_core.Backend.switch_cycles Sky_core.Backend.Mpk;
    d_kernel_on_path = false;
    d_tlb_flush_on_switch = false;
    d_shared_address_space = true;
    d_audit_passes = [ "wrpkru"; "trampoline"; "isoflow" ];
    d_invalidation =
      "Nothing architectural: the elevated PKRU view exists only between \
       the gate's two WRPKRUs; revocation is the binding + calling-key \
       bookkeeping alone";
    d_security =
      "No WRPKRU encoding outside the trampoline (ERIM binary scan); gates \
       zero ECX/EDX and load RAX from blessed registers only; resting PKRU \
       views are pairwise write-disjoint (flow.pkru-escape)";
  }
