(** The xv6-style log-structured^W log-protected file system (§6.5 ports
    "a log-based file system named xv6fs").

    Inodes with 12 direct + 1 indirect block pointers, a flat root
    directory, a block bitmap, and every mutating operation wrapped in a
    write-ahead-log transaction. A single big lock serializes all
    operations — deliberately: "since the xv6fs does not support
    multithreading, we use one big lock in the file system, that is the
    reason why the scalability is so bad" (§6.5). *)

let bsize = Sky_blockdev.Ramdisk.block_size
let ndirect = 12
let nindirect = bsize / 4

(* One double-indirect pointer extends xv6's 12+256-block limit to
   ~64 MiB — needed by the YCSB table (10,000 records, §6.5). *)
let max_file_blocks = ndirect + nindirect + (nindirect * nindirect)
let inode_size = 64
let inodes_per_block = bsize / inode_size
let dirent_size = 16
let max_name = 14
let root_inum = 1

type itype = T_free | T_dir | T_file

exception Fs_error of string

let itype_code = function T_free -> 0 | T_dir -> 1 | T_file -> 2

let itype_of_code = function
  | 0 -> T_free
  | 1 -> T_dir
  | 2 -> T_file
  | n -> raise (Fs_error (Printf.sprintf "bad inode type %d" n))

type dinode = {
  mutable typ : itype;
  mutable nlink : int;
  mutable size : int;
  addrs : int array;  (** [ndirect] direct + 1 indirect *)
}

let empty_dinode () =
  { typ = T_free; nlink = 0; size = 0; addrs = Array.make (ndirect + 2) 0 }

let encode_dinode ino block off =
  Bytes.set_uint16_le block off (itype_code ino.typ);
  Bytes.set_uint16_le block (off + 2) ino.nlink;
  Bytes.set_int32_le block (off + 4) (Int32.of_int ino.size);
  Array.iteri
    (fun i a -> Bytes.set_int32_le block (off + 8 + (i * 4)) (Int32.of_int a))
    ino.addrs

let decode_dinode block off =
  {
    typ = itype_of_code (Bytes.get_uint16_le block off);
    nlink = Bytes.get_uint16_le block (off + 2);
    size = Int32.to_int (Bytes.get_int32_le block (off + 4));
    addrs =
      Array.init (ndirect + 2) (fun i ->
          Int32.to_int (Bytes.get_int32_le block (off + 8 + (i * 4))));
  }

type t = {
  kernel : Sky_ukernel.Kernel.t;
  disk : Sky_blockdev.Disk.t;
  sb : Superblock.t;
  bcache : Bcache.t;
  log : Log.t;
  lock : Sky_ukernel.Lock.t;
  mutable ops : int;  (** completed public operations *)
}

let cpu t ~core = Sky_ukernel.Kernel.cpu t.kernel ~core

(* ------------------------------------------------------------------ *)
(* mkfs                                                                *)
(* ------------------------------------------------------------------ *)

let mkfs kernel disk ~core ?(size = 2000) ?(ninodes = 200) ?(nlog = 30) () =
  ignore kernel;
  let sb = Superblock.layout ~size ~ninodes ~nlog in
  disk.Sky_blockdev.Disk.write ~core 1 (Superblock.encode sb);
  (* Clear the log header. *)
  disk.Sky_blockdev.Disk.write ~core sb.Superblock.logstart (Bytes.make bsize '\000');
  (* All inodes free. *)
  let ninodeblocks = (ninodes + inodes_per_block - 1) / inodes_per_block in
  for b = 0 to ninodeblocks - 1 do
    disk.Sky_blockdev.Disk.write ~core (sb.Superblock.inodestart + b)
      (Bytes.make bsize '\000')
  done;
  (* Bitmap: mark the metadata blocks (everything below data_start) used. *)
  let data_start = Superblock.data_start sb in
  let bitmap = Bytes.make bsize '\000' in
  for blk = 0 to data_start - 1 do
    let byte = blk / 8 and bit = blk mod 8 in
    Bytes.set bitmap byte
      (Char.chr (Char.code (Bytes.get bitmap byte) lor (1 lsl bit)))
  done;
  disk.Sky_blockdev.Disk.write ~core sb.Superblock.bmapstart bitmap;
  (* Root directory inode. *)
  let iblock = Bytes.make bsize '\000' in
  let root = empty_dinode () in
  root.typ <- T_dir;
  root.nlink <- 1;
  encode_dinode root iblock ((root_inum mod inodes_per_block) * inode_size);
  disk.Sky_blockdev.Disk.write ~core
    (sb.Superblock.inodestart + (root_inum / inodes_per_block))
    iblock

let mount kernel disk ~core =
  let machine = kernel.Sky_ukernel.Kernel.machine in
  let sb = Superblock.decode (disk.Sky_blockdev.Disk.read ~core 1) in
  ignore (Log.recover disk sb ~core);
  let bcache = Bcache.create machine in
  {
    kernel;
    disk;
    sb;
    bcache;
    log = Log.create disk sb bcache;
    lock = Sky_ukernel.Lock.create "xv6fs-big-lock";
    ops = 0;
  }

(* ------------------------------------------------------------------ *)
(* Block and inode primitives (inside a transaction)                   *)
(* ------------------------------------------------------------------ *)

let bread t ~core blockno = Log.read t.log (cpu t ~core) ~core blockno
let bwrite t blockno data = Log.write t.log blockno data

(* Allocate a zeroed data block. *)
let balloc t ~core =
  let data_start = Superblock.data_start t.sb in
  let bitmap_block blk = t.sb.Superblock.bmapstart + (blk / (bsize * 8)) in
  let rec scan blk =
    if blk >= t.sb.Superblock.size then raise (Fs_error "disk full")
    else begin
      let bm = bread t ~core (bitmap_block blk) in
      let idx = blk mod (bsize * 8) in
      let byte = idx / 8 and bit = idx mod 8 in
      if Char.code (Bytes.get bm byte) land (1 lsl bit) = 0 then begin
        Bytes.set bm byte (Char.chr (Char.code (Bytes.get bm byte) lor (1 lsl bit)));
        bwrite t (bitmap_block blk) bm;
        bwrite t blk (Bytes.make bsize '\000');
        blk
      end
      else scan (blk + 1)
    end
  in
  scan data_start

let bfree t ~core blk =
  let bmblock = t.sb.Superblock.bmapstart + (blk / (bsize * 8)) in
  let bm = bread t ~core bmblock in
  let idx = blk mod (bsize * 8) in
  let byte = idx / 8 and bit = idx mod 8 in
  Bytes.set bm byte (Char.chr (Char.code (Bytes.get bm byte) land lnot (1 lsl bit)));
  bwrite t bmblock bm

let inode_block t inum = t.sb.Superblock.inodestart + (inum / inodes_per_block)
let inode_off inum = inum mod inodes_per_block * inode_size

let read_inode t ~core inum =
  if inum < 1 || inum >= t.sb.Superblock.ninodes then
    raise (Fs_error (Printf.sprintf "bad inum %d" inum));
  decode_dinode (bread t ~core (inode_block t inum)) (inode_off inum)

let write_inode t ~core inum ino =
  let block = bread t ~core (inode_block t inum) in
  encode_dinode ino block (inode_off inum);
  bwrite t (inode_block t inum) block

let ialloc t ~core typ =
  let rec scan inum =
    if inum >= t.sb.Superblock.ninodes then raise (Fs_error "out of inodes")
    else
      let ino = read_inode t ~core inum in
      if ino.typ = T_free then begin
        ino.typ <- typ;
        ino.nlink <- 1;
        ino.size <- 0;
        Array.fill ino.addrs 0 (ndirect + 2) 0;
        write_inode t ~core inum ino;
        inum
      end
      else scan (inum + 1)
  in
  scan 1

(* Entry [slot] of the indirect block at [blk], allocating a fresh block
   into the slot when empty and [alloc]. *)
let indirect_slot t ~core blk slot ~alloc =
  let ind = bread t ~core blk in
  let cur = Int32.to_int (Bytes.get_int32_le ind (slot * 4)) in
  if cur = 0 && alloc then begin
    let fresh = balloc t ~core in
    (* Re-read: balloc dirtied the transaction; pick the latest copy. *)
    let ind = bread t ~core blk in
    Bytes.set_int32_le ind (slot * 4) (Int32.of_int fresh);
    bwrite t blk ind;
    fresh
  end
  else cur

(* File block [bn] of [ino], allocating on demand ([alloc]=true):
   12 direct, one single-indirect, one double-indirect. *)
let bmap t ~core inum ino bn ~alloc =
  if bn >= max_file_blocks then raise (Fs_error "file too large");
  let ensure_addr i =
    if ino.addrs.(i) = 0 && alloc then begin
      ino.addrs.(i) <- balloc t ~core;
      write_inode t ~core inum ino
    end;
    ino.addrs.(i)
  in
  if bn < ndirect then begin
    if ino.addrs.(bn) = 0 && alloc then begin
      ino.addrs.(bn) <- balloc t ~core;
      write_inode t ~core inum ino
    end;
    ino.addrs.(bn)
  end
  else if bn < ndirect + nindirect then begin
    let ind = ensure_addr ndirect in
    if ind = 0 then 0 else indirect_slot t ~core ind (bn - ndirect) ~alloc
  end
  else begin
    let dbn = bn - ndirect - nindirect in
    let dind = ensure_addr (ndirect + 1) in
    if dind = 0 then 0
    else begin
      let mid = indirect_slot t ~core dind (dbn / nindirect) ~alloc in
      if mid = 0 then 0 else indirect_slot t ~core mid (dbn mod nindirect) ~alloc
    end
  end

let readi t ~core inum ~off ~len =
  let ino = read_inode t ~core inum in
  let len = max 0 (min len (ino.size - off)) in
  let out = Bytes.create len in
  let rec go pos =
    if pos < len then begin
      let o = off + pos in
      let bn = o / bsize and boff = o mod bsize in
      let n = min (bsize - boff) (len - pos) in
      let blk = bmap t ~core inum ino bn ~alloc:false in
      if blk = 0 then Bytes.fill out pos n '\000'
      else Bytes.blit (bread t ~core blk) boff out pos n;
      go (pos + n)
    end
  in
  go 0;
  out

let writei t ~core inum ~off data =
  let ino = read_inode t ~core inum in
  let len = Bytes.length data in
  if off + len > max_file_blocks * bsize then raise (Fs_error "file too large");
  let rec go pos =
    if pos < len then begin
      let o = off + pos in
      let bn = o / bsize and boff = o mod bsize in
      let n = min (bsize - boff) (len - pos) in
      let blk = bmap t ~core inum ino bn ~alloc:true in
      let cur = bread t ~core blk in
      Bytes.blit data pos cur boff n;
      bwrite t blk cur;
      go (pos + n)
    end
  in
  go 0;
  if off + len > ino.size then begin
    ino.size <- off + len;
    write_inode t ~core inum ino
  end

(* ------------------------------------------------------------------ *)
(* Directory ops (flat root directory)                                 *)
(* ------------------------------------------------------------------ *)

let check_name name =
  if String.length name = 0 || String.length name > max_name then
    raise (Fs_error (Printf.sprintf "bad file name %S" name))

let dirent_name block off =
  let raw = Bytes.sub_string block (off + 2) max_name in
  match String.index_opt raw '\000' with
  | Some i -> String.sub raw 0 i
  | None -> raw

(* Iterate root dirents; [f off inum name] returns [Some x] to stop. *)
let dir_fold t ~core f =
  let root = read_inode t ~core root_inum in
  let rec go off =
    if off >= root.size then None
    else begin
      let data = readi t ~core root_inum ~off ~len:dirent_size in
      let inum = Bytes.get_uint16_le data 0 in
      match f off inum (dirent_name data 0) with
      | Some x -> Some x
      | None -> go (off + dirent_size)
    end
  in
  go 0

let dir_lookup t ~core name =
  dir_fold t ~core (fun _off inum n ->
      if inum <> 0 && n = name then Some inum else None)

let dir_link t ~core name inum =
  check_name name;
  let slot =
    match
      dir_fold t ~core (fun off i _ -> if i = 0 then Some off else None)
    with
    | Some off -> off
    | None -> (read_inode t ~core root_inum).size
  in
  let ent = Bytes.make dirent_size '\000' in
  Bytes.set_uint16_le ent 0 inum;
  Bytes.blit_string name 0 ent 2 (String.length name);
  writei t ~core root_inum ~off:slot ent

let dir_unlink t ~core name =
  match
    dir_fold t ~core (fun off i n -> if i <> 0 && n = name then Some off else None)
  with
  | None -> false
  | Some off ->
    writei t ~core root_inum ~off (Bytes.make dirent_size '\000');
    true

(* ------------------------------------------------------------------ *)
(* Public API: every operation is one logged transaction under the big
   lock                                                                *)
(* ------------------------------------------------------------------ *)

let with_op t ~core f =
  Sky_ukernel.Lock.with_lock t.lock (cpu t ~core) (fun () ->
      Log.begin_op t.log;
      match f () with
      | v ->
        Log.end_op t.log (cpu t ~core) ~core;
        t.ops <- t.ops + 1;
        v
      | exception e ->
        (* A crash mid-transaction leaves the log uncommitted; recovery
           discards it. Reset in-memory transaction state. *)
        Log.abort t.log;
        raise e)

let create t ~core name =
  with_op t ~core (fun () ->
      check_name name;
      match dir_lookup t ~core name with
      | Some inum -> inum
      | None ->
        let inum = ialloc t ~core T_file in
        dir_link t ~core name inum;
        inum)

let lookup t ~core name =
  with_op t ~core (fun () -> dir_lookup t ~core name)

let file_size t ~core ~inum =
  with_op t ~core (fun () -> (read_inode t ~core inum).size)

let read t ~core ~inum ~off ~len =
  with_op t ~core (fun () -> readi t ~core inum ~off ~len)

let write t ~core ~inum ~off data =
  with_op t ~core (fun () -> writei t ~core inum ~off data)

let free_indirect t ~core blk ~depth =
  let rec go blk depth =
    if depth > 0 then begin
      let ind = bread t ~core blk in
      for slot = 0 to nindirect - 1 do
        let child = Int32.to_int (Bytes.get_int32_le ind (slot * 4)) in
        if child <> 0 then go child (depth - 1)
      done
    end;
    bfree t ~core blk
  in
  go blk depth

let truncate_blocks t ~core inum =
  let ino = read_inode t ~core inum in
  for i = 0 to ndirect - 1 do
    if ino.addrs.(i) <> 0 then begin
      bfree t ~core ino.addrs.(i);
      ino.addrs.(i) <- 0
    end
  done;
  if ino.addrs.(ndirect) <> 0 then begin
    free_indirect t ~core ino.addrs.(ndirect) ~depth:1;
    ino.addrs.(ndirect) <- 0
  end;
  if ino.addrs.(ndirect + 1) <> 0 then begin
    free_indirect t ~core ino.addrs.(ndirect + 1) ~depth:2;
    ino.addrs.(ndirect + 1) <- 0
  end;
  ino.size <- 0;
  write_inode t ~core inum ino

let unlink t ~core name =
  with_op t ~core (fun () ->
      match dir_lookup t ~core name with
      | None -> false
      | Some inum ->
        let ok = dir_unlink t ~core name in
        if ok then begin
          truncate_blocks t ~core inum;
          let ino = read_inode t ~core inum in
          ino.typ <- T_free;
          ino.nlink <- 0;
          write_inode t ~core inum ino
        end;
        ok)

let list_dir t ~core =
  with_op t ~core (fun () ->
      let acc = ref [] in
      ignore
        (dir_fold t ~core (fun _ inum name ->
             if inum <> 0 then acc := name :: !acc;
             None));
      List.rev !acc)

let ops t = t.ops
let lock t = t.lock
let superblock t = t.sb

let inspect_inode t ~core inum =
  Sky_ukernel.Lock.with_lock t.lock (cpu t ~core) (fun () ->
      read_inode t ~core inum)

let inspect_block t ~core blockno =
  Sky_ukernel.Lock.with_lock t.lock (cpu t ~core) (fun () ->
      bread t ~core blockno)
let cache_hits t = Bcache.hits t.bcache
let cache_misses t = Bcache.misses t.bcache
let log_commits t = Log.commits t.log
