(** x86-64 instruction decoder (length + semantics for the known subset).

    Used by the VMFUNC rewriter to establish instruction boundaries while
    scanning code pages (§5.2: "the Subkernel will bookkeep current
    instruction during scanning, which helps to determine instruction's
    boundary"). Instructions outside the known subset decode as
    single-byte [None] so the scan never diverges on data. *)

type decoded = {
  off : int;  (** offset of the first byte within the scanned buffer *)
  len : int;
  insn : Insn.t option;  (** [None] for bytes we cannot give semantics to *)
  layout : Encode.layout;  (** offsets relative to [off] *)
}

let opaque_layout ~len ~opcode_off ~opcode_len =
  {
    Encode.len;
    opcode_off;
    opcode_len;
    modrm_off = None;
    sib_off = None;
    disp_off = None;
    disp_len = 0;
    imm_off = None;
    imm_len = 0;
  }

let u8 code i = Char.code (Bytes.get code i)

let i32_at code i =
  let v =
    u8 code i lor (u8 code (i + 1) lsl 8) lor (u8 code (i + 2) lsl 16)
    lor (u8 code (i + 3) lsl 24)
  in
  (* sign extend *)
  (v lxor 0x8000_0000) - 0x8000_0000

let i8_at code i =
  let v = u8 code i in
  if v >= 128 then v - 256 else v

let i64_at code i =
  let v = ref 0L in
  for k = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (u8 code (i + k)))
  done;
  !v

type modrm_parse = {
  modrm : int;
  md : int;
  reg : int;  (** with REX.R applied *)
  rm_operand : Insn.mem_or_reg option;  (** None for RIP-relative *)
  next : int;  (** offset just past ModRM/SIB/disp *)
  sib_off : int option;
  disp_off : int option;
  disp_len : int;
}

(* Parse ModRM (+SIB +disp) starting at [i]; [rex] is the REX byte or 0. *)
let parse_modrm code ~limit ~rex i =
  if i >= limit then None
  else begin
    let m = u8 code i in
    let md = m lsr 6 and reg0 = (m lsr 3) land 7 and rm = m land 7 in
    let rex_r = rex land 4 <> 0 and rex_x = rex land 2 <> 0 and rex_b = rex land 1 <> 0 in
    let reg = if rex_r then reg0 lor 8 else reg0 in
    let need_sib = md <> 3 && rm = 4 in
    let sib_off = if need_sib then Some (i + 1) else None in
    let after_sib = i + 1 + if need_sib then 1 else 0 in
    if need_sib && i + 1 >= limit then None
    else begin
      let sib = if need_sib then u8 code (i + 1) else 0 in
      let sib_base = sib land 7 in
      let disp_len =
        if md = 1 then 1
        else if md = 2 then 4
        else if md = 0 && ((not need_sib) && rm = 5) then 4 (* RIP-relative *)
        else if md = 0 && need_sib && sib_base = 5 then 4
        else 0
      in
      if after_sib + disp_len > limit then None
      else begin
        let disp_off = if disp_len > 0 then Some after_sib else None in
        let disp =
          match disp_len with
          | 1 -> i8_at code after_sib
          | 4 -> i32_at code after_sib
          | _ -> 0
        in
        let rm_operand =
          if md = 3 then
            Some (Insn.R (Reg.of_encoding (if rex_b then rm lor 8 else rm)))
          else if (not need_sib) && rm = 5 && md = 0 then None (* RIP-rel *)
          else if need_sib then begin
            let scale = 1 lsl (sib lsr 6) in
            let idx = (sib lsr 3) land 7 in
            let index =
              let idx = if rex_x then idx lor 8 else idx in
              if idx = 4 then None (* no index *)
              else Some (Reg.of_encoding idx, scale)
            in
            let base =
              if sib_base = 5 && md = 0 then None
              else Some (Reg.of_encoding (if rex_b then sib_base lor 8 else sib_base))
            in
            Some (Insn.M { Insn.base; index; disp })
          end
          else
            Some
              (Insn.M
                 {
                   Insn.base = Some (Reg.of_encoding (if rex_b then rm lor 8 else rm));
                   index = None;
                   disp;
                 })
        in
        Some
          {
            modrm = m;
            md;
            reg;
            rm_operand;
            next = after_sib + disp_len;
            sib_off;
            disp_off;
            disp_len;
          }
      end
    end
  end

let is_legacy_prefix b =
  match b with
  | 0x66 | 0x67 | 0xF0 | 0xF2 | 0xF3 | 0x2E | 0x36 | 0x3E | 0x26 | 0x64 | 0x65 ->
    true
  | _ -> false

(* Decode one instruction at [off]. Never raises: at worst a 1-byte
   opaque. *)
let decode_one code off =
  let limit = Bytes.length code in
  assert (off < limit);
  let opaque1 =
    {
      off;
      len = 1;
      insn = None;
      layout = opaque_layout ~len:1 ~opcode_off:0 ~opcode_len:1;
    }
  in
  (* Skip legacy prefixes, then an optional REX. *)
  let rec skip_prefixes i = if i < limit && is_legacy_prefix (u8 code i) then skip_prefixes (i + 1) else i in
  let p = skip_prefixes off in
  if p >= limit then opaque1
  else begin
    let rex, o = if u8 code p land 0xF0 = 0x40 then (u8 code p, p + 1) else (0, p) in
    if o >= limit then opaque1
    else begin
      let rex_w = rex land 8 <> 0 in
      let rex_b = rex land 1 <> 0 in
      let opc = u8 code o in
      let fin ?(insn = None) ?modrm ?imm last =
        (* [last] = offset one past the final byte. *)
        let len = last - off in
        let modrm_off, sib_off, disp_off, disp_len =
          match modrm with
          | None -> (None, None, None, 0)
          | Some mp ->
            ( Some (o + 1 - off),
              Option.map (fun x -> x - off) mp.sib_off,
              Option.map (fun x -> x - off) mp.disp_off,
              mp.disp_len )
        in
        let imm_off, imm_len =
          match imm with None -> (None, 0) | Some (io, il) -> (Some (io - off), il)
        in
        {
          off;
          len;
          insn;
          layout =
            {
              Encode.len;
              opcode_off = o - off;
              opcode_len = 1;
              modrm_off;
              sib_off;
              disp_off;
              disp_len;
              imm_off;
              imm_len;
            };
        }
      in
      let with_modrm k =
        match parse_modrm code ~limit ~rex (o + 1) with
        | None -> opaque1
        | Some mp -> k mp
      in
      let reg_of mp = Reg.of_encoding mp.reg in
      match opc with
      | 0x90 -> fin ~insn:(Some Insn.Nop) (o + 1)
      | 0xC3 -> fin ~insn:(Some Insn.Ret) (o + 1)
      | b when b land 0xF8 = 0x50 ->
        let r = (b land 7) lor if rex_b then 8 else 0 in
        fin ~insn:(Some (Insn.Push (Reg.of_encoding r))) (o + 1)
      | b when b land 0xF8 = 0x58 ->
        let r = (b land 7) lor if rex_b then 8 else 0 in
        fin ~insn:(Some (Insn.Pop (Reg.of_encoding r))) (o + 1)
      | b when b land 0xF8 = 0xB8 ->
        (* movabs / mov imm32 *)
        let r = Reg.of_encoding ((b land 7) lor if rex_b then 8 else 0) in
        if rex_w then
          if o + 9 > limit then opaque1
          else fin ~insn:(Some (Insn.Mov_ri (r, i64_at code (o + 1)))) ~imm:(o + 1, 8) (o + 9)
        else if o + 5 > limit then opaque1
        else
          let v = Int64.of_int (i32_at code (o + 1) land 0xffffffff) in
          fin ~insn:(Some (Insn.Mov_ri (r, v))) ~imm:(o + 1, 4) (o + 5)
      | 0xC7 ->
        with_modrm (fun mp ->
            if mp.next + 4 > limit then opaque1
            else
              let imm = i32_at code mp.next in
              let insn =
                match (mp.reg land 7, mp.rm_operand) with
                | 0, Some (Insn.R r) -> Some (Insn.Mov_ri (r, Int64.of_int imm))
                | _ -> None
              in
              fin ~insn ~modrm:mp ~imm:(mp.next, 4) (mp.next + 4))
      | 0x89 ->
        with_modrm (fun mp ->
            let insn =
              match mp.rm_operand with
              | Some (Insn.R dst) -> Some (Insn.Mov_rr (dst, reg_of mp))
              | Some (Insn.M m) -> Some (Insn.Mov_store (m, reg_of mp))
              | None -> None
            in
            fin ~insn ~modrm:mp mp.next)
      | 0x8B ->
        with_modrm (fun mp ->
            let insn =
              match mp.rm_operand with
              | Some (Insn.R src) -> Some (Insn.Mov_rr (reg_of mp, src))
              | Some (Insn.M m) -> Some (Insn.Mov_load (reg_of mp, m))
              | None -> None
            in
            fin ~insn ~modrm:mp mp.next)
      | 0x01 ->
        with_modrm (fun mp ->
            let insn =
              match mp.rm_operand with
              | Some (Insn.R dst) -> Some (Insn.Add_rr (dst, reg_of mp))
              | _ -> None
            in
            fin ~insn ~modrm:mp mp.next)
      | 0x03 ->
        with_modrm (fun mp ->
            let insn =
              match mp.rm_operand with
              | Some (Insn.R src) -> Some (Insn.Add_rr (reg_of mp, src))
              | Some (Insn.M m) -> Some (Insn.Add_rm (reg_of mp, m))
              | None -> None
            in
            fin ~insn ~modrm:mp mp.next)
      | 0x31 ->
        with_modrm (fun mp ->
            let insn =
              match mp.rm_operand with
              | Some (Insn.R dst) -> Some (Insn.Xor_rr (dst, reg_of mp))
              | _ -> None
            in
            fin ~insn ~modrm:mp mp.next)
      | 0x21 ->
        with_modrm (fun mp ->
            let insn =
              match mp.rm_operand with
              | Some (Insn.R dst) -> Some (Insn.And_rr (dst, reg_of mp))
              | _ -> None
            in
            fin ~insn ~modrm:mp mp.next)
      | 0x09 ->
        with_modrm (fun mp ->
            let insn =
              match mp.rm_operand with
              | Some (Insn.R dst) -> Some (Insn.Or_rr (dst, reg_of mp))
              | _ -> None
            in
            fin ~insn ~modrm:mp mp.next)
      | 0x39 ->
        with_modrm (fun mp ->
            let insn =
              match mp.rm_operand with
              | Some (Insn.R a) -> Some (Insn.Cmp_rr (a, reg_of mp))
              | _ -> None
            in
            fin ~insn ~modrm:mp mp.next)
      | 0x85 ->
        with_modrm (fun mp ->
            let insn =
              match mp.rm_operand with
              | Some (Insn.R a) -> Some (Insn.Test_rr (a, reg_of mp))
              | _ -> None
            in
            fin ~insn ~modrm:mp mp.next)
      | 0xC1 ->
        with_modrm (fun mp ->
            if mp.next + 1 > limit then opaque1
            else
              let imm = u8 code mp.next in
              let insn =
                match (mp.reg land 7, mp.rm_operand) with
                | 4, Some (Insn.R r) -> Some (Insn.Shl_ri (r, imm))
                | 5, Some (Insn.R r) -> Some (Insn.Shr_ri (r, imm))
                | _ -> None
              in
              fin ~insn ~modrm:mp ~imm:(mp.next, 1) (mp.next + 1))
      | 0xFF ->
        with_modrm (fun mp ->
            let insn =
              match (mp.reg land 7, mp.rm_operand) with
              | 0, Some (Insn.R r) -> Some (Insn.Inc r)
              | 1, Some (Insn.R r) -> Some (Insn.Dec r)
              | _ -> None
            in
            fin ~insn ~modrm:mp mp.next)
      | 0xF7 ->
        with_modrm (fun mp ->
            let insn =
              match (mp.reg land 7, mp.rm_operand) with
              | 3, Some (Insn.R r) -> Some (Insn.Neg r)
              | _ -> None
            in
            fin ~insn ~modrm:mp mp.next)
      | 0x81 ->
        with_modrm (fun mp ->
            if mp.next + 4 > limit then opaque1
            else
              let imm = i32_at code mp.next in
              let insn =
                match (mp.reg land 7, mp.rm_operand) with
                | 0, Some (Insn.R r) -> Some (Insn.Add_ri (r, imm))
                | 1, Some (Insn.R r) -> Some (Insn.Or_ri (r, imm))
                | 4, Some (Insn.R r) -> Some (Insn.And_ri (r, imm))
                | 5, Some (Insn.R r) -> Some (Insn.Sub_ri (r, imm))
                | 7, Some (Insn.R r) -> Some (Insn.Cmp_ri (r, imm))
                | _ -> None
              in
              fin ~insn ~modrm:mp ~imm:(mp.next, 4) (mp.next + 4))
      | 0x69 ->
        with_modrm (fun mp ->
            if mp.next + 4 > limit then opaque1
            else
              let imm = i32_at code mp.next in
              let insn =
                Option.map (fun rm -> Insn.Imul_rri (reg_of mp, rm, imm)) mp.rm_operand
              in
              fin ~insn ~modrm:mp ~imm:(mp.next, 4) (mp.next + 4))
      | 0x6B ->
        with_modrm (fun mp ->
            if mp.next + 1 > limit then opaque1
            else
              let imm = i8_at code mp.next in
              let insn =
                Option.map (fun rm -> Insn.Imul_rri (reg_of mp, rm, imm)) mp.rm_operand
              in
              fin ~insn ~modrm:mp ~imm:(mp.next, 1) (mp.next + 1))
      | 0x8D ->
        with_modrm (fun mp ->
            let insn =
              match mp.rm_operand with
              | Some (Insn.M m) -> Some (Insn.Lea (reg_of mp, m))
              | _ -> None
            in
            fin ~insn ~modrm:mp mp.next)
      | 0xE8 | 0xE9 ->
        if o + 5 > limit then opaque1
        else
          let rel = i32_at code (o + 1) in
          let insn =
            if opc = 0xE8 then Some (Insn.Call_rel rel) else Some (Insn.Jmp_rel rel)
          in
          fin ~insn ~imm:(o + 1, 4) (o + 5)
      | 0xEB ->
        if o + 2 > limit then opaque1
        else fin ~insn:(Some (Insn.Jmp_rel (i8_at code (o + 1)))) ~imm:(o + 1, 1) (o + 2)
      | 0x0F ->
        if o + 1 >= limit then opaque1
        else begin
          let opc2 = u8 code (o + 1) in
          match opc2 with
          | 0x05 -> fin ~insn:(Some Insn.Syscall) (o + 2)
          | 0xA2 -> fin ~insn:(Some Insn.Cpuid) (o + 2)
          | b when b land 0xF0 = 0x80 -> (
            (* Jcc rel32 *)
            match Insn.cond_of_code (b land 0x0F) with
            | Some c ->
              if o + 6 > limit then opaque1
              else begin
                let rel = i32_at code (o + 2) in
                let d = fin ~insn:(Some (Insn.Jcc (c, rel))) ~imm:(o + 2, 4) (o + 6) in
                { d with layout = { d.layout with Encode.opcode_len = 2 } }
              end
            | None -> fin ~insn:None (o + 2))
          | 0x01 ->
            if o + 2 >= limit then opaque1
            else if u8 code (o + 2) = 0xD4 then begin
              let d = fin ~insn:(Some Insn.Vmfunc) (o + 3) in
              { d with layout = { d.layout with Encode.opcode_len = 3 } }
            end
            else if u8 code (o + 2) = 0xEF then begin
              let d = fin ~insn:(Some Insn.Wrpkru) (o + 3) in
              { d with layout = { d.layout with Encode.opcode_len = 3 } }
            end
            else begin
              (* Other 0F 01 group members (SGDT etc.): length via ModRM. *)
              match parse_modrm code ~limit ~rex (o + 2) with
              | None -> opaque1
              | Some mp ->
                let d = fin ~insn:None ~modrm:mp mp.next in
                (* ModRM actually sits one byte later than [fin] assumed. *)
                {
                  d with
                  layout =
                    {
                      d.layout with
                      Encode.opcode_len = 2;
                      modrm_off = Option.map (( + ) 1) d.layout.Encode.modrm_off;
                    };
                }
            end
          | 0xAF -> (
            (* imul r64, r/m64 *)
            match parse_modrm code ~limit ~rex (o + 2) with
            | None -> opaque1
            | Some mp ->
              let insn =
                Option.map
                  (fun rm -> Insn.Imul_rm (Reg.of_encoding mp.reg, rm))
                  mp.rm_operand
              in
              let d = fin ~insn ~modrm:mp mp.next in
              {
                d with
                layout =
                  {
                    d.layout with
                    Encode.opcode_len = 2;
                    modrm_off = Option.map (( + ) 1) d.layout.Encode.modrm_off;
                  };
              })
          | 0x1F -> (
            (* multi-byte NOP *)
            match parse_modrm code ~limit ~rex (o + 2) with
            | None -> opaque1
            | Some mp -> fin ~insn:(Some Insn.Nop) ~modrm:mp mp.next)
          | _ -> fin ~insn:None (o + 2)
        end
      | _ -> opaque1
    end
  end

let decode_all code =
  let limit = Bytes.length code in
  let rec go off acc =
    if off >= limit then List.rev acc
    else
      let d = decode_one code off in
      go (off + d.len) (d :: acc)
  in
  go 0 []

(* ------------------------------------------------------------------ *)
(* Totality view for the auditor                                       *)
(* ------------------------------------------------------------------ *)

(* [decode_all] is total by construction: [decode_one] never raises and
   always consumes at least one byte, so the records tile the buffer
   exactly. Runs of bytes the decoder has no semantics for ([insn = None])
   are surfaced to the auditor as coalesced [Unknown] spans — regions it
   must flag as unverifiable rather than silently skip. *)
type span =
  | Decoded of decoded
  | Unknown of { off : int; len : int }

let decode_spans code =
  let flush acc = function
    | None -> acc
    | Some (off, len) -> Unknown { off; len } :: acc
  in
  let rec go acc cur = function
    | [] -> List.rev (flush acc cur)
    | d :: rest -> (
      match d.insn with
      | None ->
        let cur =
          match cur with
          | None -> Some (d.off, d.len)
          | Some (off, len) -> Some (off, len + d.len)
        in
        go acc cur rest
      | Some _ -> go (Decoded d :: flush acc cur) None rest)
  in
  go [] None (decode_all code)

let unknown_spans code =
  List.filter_map
    (function Unknown { off; len } -> Some (off, len) | Decoded _ -> None)
    (decode_spans code)
