lib/kernels/ipc.mli: Breakdown Sky_ukernel
