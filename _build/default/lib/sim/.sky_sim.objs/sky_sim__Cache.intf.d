lib/sim/cache.mli:
