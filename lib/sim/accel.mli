(** Global state for the translation-acceleration layer: the kill
    switch for all acceleration structures (paging-structure caches,
    EPT walk cache, host hot lines) and the mutation epoch that lazily
    invalidates every one of them when a mapping changes underneath.
    The epoch is scoped: parallel shards each hold their own via
    {!with_scope} so cross-shard mutations cannot flush each other. *)

val is_enabled : unit -> bool

val set_enabled : bool -> unit
(** Toggle all acceleration structures. Disabling restores the
    cache-free reference walker bit for bit; toggling also bumps the
    epoch so no entry survives a disable/enable round trip. *)

val current_epoch : unit -> int

val bump : unit -> unit
(** Record a mapping mutation (EPT unmap/remap of a live leaf, guest
    page-table unmap/protect/overwrite, table destruction). Every
    translation structure self-flushes on its next use. *)

type scope
(** One mutation-epoch cell. Single-machine runs use the process-wide
    default; the parallel scheduler gives each shard its own. *)

val fresh_scope : unit -> scope

val with_scope : scope -> (unit -> 'a) -> 'a
(** Run a thunk with {!current_epoch}/{!bump} acting on [scope] in this
    domain (exception-safe; the binding is domain-local). *)
