lib/rewriter/rewrite.ml: Buffer Bytes Decode Encode Insn Int64 List Reg Scan Sky_isa String
