(** Write-ahead log (xv6's [log.c]): transactions are all-or-nothing
    across crashes.

    [begin_op] opens a transaction; {!write}s are absorbed into a pending
    set (writing the same block twice logs it once); {!end_op} commits:
    (1) copy every dirty block to the log area, (2) write the header
    block — the commit point, (3) install the blocks to their home
    locations, (4) clear the header. {!recover}, run at mount, replays a
    committed-but-uninstalled transaction and discards anything that
    never reached step 2. The crash-safety property is qcheck-tested in
    test/test_fs.ml by injecting device failures at arbitrary write
    counts. *)

type t

exception Log_full
exception Nested_transaction

val create : Sky_blockdev.Disk.t -> Superblock.t -> Bcache.t -> t

val max_blocks : t -> int
(** Distinct blocks one transaction may dirty (nlog - 1). *)

val begin_op : t -> unit
(** @raise Nested_transaction if one is already open. *)

val write : t -> int -> bytes -> unit
(** Record a block write in the transaction (xv6's [log_write]).
    @raise Log_full past {!max_blocks} distinct blocks. *)

val read : t -> Sky_sim.Cpu.t -> core:int -> int -> bytes
(** Transaction-aware read: pending writes are visible to the
    transaction that made them; otherwise through the buffer cache. *)

val end_op : t -> Sky_sim.Cpu.t -> core:int -> unit
(** Commit (the four steps above); a no-op commit for read-only
    transactions. *)

val abort : t -> unit
(** Abandon the open transaction (error mid-operation): nothing reached
    the log header, so nothing persists. *)

val recover : Sky_blockdev.Disk.t -> Superblock.t -> core:int -> int
(** Replay at mount; returns the number of replayed blocks. *)

val commits : t -> int
val in_tx : t -> bool
val pending_blocks : t -> int
