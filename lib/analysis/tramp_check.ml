(** Abstract interpretation of the trampoline code (§4.4).

    The trampoline is the only page carrying legal VMFUNCs, so its
    correctness is load-bearing for the whole design. This module checks
    the {e bytes} of the page (as found in the shared physical frame, not
    the pristine constant) symbolically, over {!Sky_isa.Insn}:

    - [trampoline.vmfunc-index-flow] — the EPTP index the caller passed
      in RDI flows into RCX before the entry VMFUNC, and RAX is 0
      (EPTP-switching is VM function 0);
    - [trampoline.vmfunc-pairing] — VMFUNCs come in pairs on every path:
      the entry switch (index from RDI) followed by the return switch
      back to the slot the call entered from (RCX = 0, the client slot);
    - [trampoline.callee-saved] — RBX, RBP, R12–R15 hold their entry
      values again at every RET;
    - [trampoline.rsp-restored] — RSP equals its entry value at every RET;

    plus structural facts: the code must reach a RET
    ([trampoline.no-ret]), must not contain bytes the decoder cannot
    verify ([trampoline.undecodable]) and must not fall off the end or
    run unboundedly ([trampoline.diverges]).

    The handler invocation ([Call_rel]) is modelled with the System V
    ABI: caller-saved registers are havocked, callee-saved registers and
    RSP are preserved. That assumption is exactly what registration
    enforces on handlers, and it is the contract the trampoline relies
    on in the real system. Conditional branches explore both arms, so
    the register/stack facts hold on {e all} paths.

    The [?flavor] parameter selects which isolation mechanism the gate
    is allowed — and required — to use. [`Vmfunc] (the default) is the
    rules above. [`Mpk] replaces the VMFUNC-pairing/index-flow rules
    with WRPKRU rules: gates pair entry/return
    ([trampoline.wrpkru-pairing]), each provably executes with
    ECX = EDX = 0 ([trampoline.wrpkru-operands], the hardware #GP
    condition ERIM relies on), the entry gate loads the server view
    from RDI and the return gate restores the client PKRU from R9
    ([trampoline.wrpkru-index-flow]). [`Syscall] requires at least one
    kernel entry per path ([trampoline.syscall-missing]) and models
    SYSCALL's RCX/R11 clobbers. In every flavor, the other mechanisms'
    instructions are [trampoline.unexpected-insn]. *)

open Sky_isa

(* Abstract value: unknown, a known constant, the entry value of a
   register, or RSP displaced from its entry value by a known number of
   bytes. *)
type av = Top | Const of int64 | Init of Reg.t | Sp of int

let av_equal a b =
  match (a, b) with
  | Const x, Const y -> Int64.equal x y
  | Init r, Init s -> Reg.equal r s
  | Sp n, Sp m -> n = m
  | Top, Top -> true
  | _ -> false

type state = {
  regs : av array;  (** indexed by {!Reg.encoding} *)
  stack : (int * av) list;  (** [depth below entry RSP -> value] *)
  vmfuncs : (av * av) list;  (** (RAX, RCX) at each VMFUNC, in order *)
  wrpkrus : (av * av * av) list;
      (** (RAX, RCX, RDX) at each WRPKRU, in order — the MPK flavor's
          gates *)
  syscalls : int;  (** SYSCALLs on this path — the syscall flavor *)
}

let get st r = st.regs.(Reg.encoding r)

let set st r v =
  let regs = Array.copy st.regs in
  regs.(Reg.encoding r) <- v;
  { st with regs }

let callee_saved = [ Reg.Rbx; Reg.Rbp; Reg.R12; Reg.R13; Reg.R14; Reg.R15 ]

let caller_saved =
  [ Reg.Rax; Reg.Rcx; Reg.Rdx; Reg.Rsi; Reg.Rdi; Reg.R8; Reg.R9; Reg.R10;
    Reg.R11 ]

let initial_state () =
  let regs =
    Array.init 16 (fun i ->
        let r = Reg.of_encoding i in
        if Reg.equal r Reg.Rsp then Sp 0 else Init r)
  in
  { regs; stack = []; vmfuncs = []; wrpkrus = []; syscalls = 0 }

(* Paths through straight-line trampoline code are short; the fuel bound
   only exists to terminate on adversarial (looping) input. *)
let max_steps = 4096

let check ?(image = "trampoline") ?(flavor = `Vmfunc) code =
  let vs = ref [] in
  let add ?addr invariant detail =
    vs := Report.v ?addr ~invariant ~image detail :: !vs
  in
  let rets = ref 0 in
  let check_vmfunc_gates off st =
    let pairs = List.rev st.vmfuncs in
    if List.length pairs = 0 then
      add ~addr:off "trampoline.vmfunc-pairing" "path executes no VMFUNC"
    else if List.length pairs mod 2 <> 0 then
      add ~addr:off "trampoline.vmfunc-pairing"
        (Printf.sprintf "path executes %d VMFUNCs (must pair entry/return)"
           (List.length pairs));
    List.iteri
      (fun i (rax, rcx) ->
        if not (av_equal rax (Const 0L)) then
          add ~addr:off "trampoline.vmfunc-index-flow"
            (Printf.sprintf "VMFUNC #%d: RAX is not 0 (EPTP switching)" i);
        if i mod 2 = 0 then begin
          if not (av_equal rcx (Init Reg.Rdi)) then
            add ~addr:off "trampoline.vmfunc-index-flow"
              (Printf.sprintf
                 "VMFUNC #%d: RCX does not carry the EPTP index from RDI" i)
        end
        else if not (av_equal rcx (Const 0L)) then
          add ~addr:off "trampoline.vmfunc-pairing"
            (Printf.sprintf "VMFUNC #%d: return switch RCX is not 0" i))
      pairs
  in
  (* The MPK call gate: WRPKRUs pair entry/return; each one provably
     satisfies the hardware's ECX = EDX = 0 requirement; the entry gate
     loads the server view the caller passed in RDI; the return gate
     restores the client's resting PKRU passed in R9. *)
  let check_wrpkru_gates off st =
    let gates = List.rev st.wrpkrus in
    if List.length gates = 0 then
      add ~addr:off "trampoline.wrpkru-pairing" "path executes no WRPKRU"
    else if List.length gates mod 2 <> 0 then
      add ~addr:off "trampoline.wrpkru-pairing"
        (Printf.sprintf "path executes %d WRPKRUs (must pair entry/return)"
           (List.length gates));
    List.iteri
      (fun i (rax, rcx, rdx) ->
        if not (av_equal rcx (Const 0L) && av_equal rdx (Const 0L)) then
          add ~addr:off "trampoline.wrpkru-operands"
            (Printf.sprintf "WRPKRU #%d: ECX/EDX not provably 0 (hardware #GP)"
               i);
        if i mod 2 = 0 then begin
          if not (av_equal rax (Init Reg.Rdi)) then
            add ~addr:off "trampoline.wrpkru-index-flow"
              (Printf.sprintf
                 "WRPKRU #%d: RAX does not carry the server view from RDI" i)
        end
        else if not (av_equal rax (Init Reg.R9)) then
          add ~addr:off "trampoline.wrpkru-index-flow"
            (Printf.sprintf
               "WRPKRU #%d: return gate RAX does not restore the client PKRU \
                from R9"
               i))
      gates
  in
  let at_ret off st =
    incr rets;
    (match get st Reg.Rsp with
    | Sp 0 -> ()
    | _ ->
      add ~addr:off "trampoline.rsp-restored"
        "RSP does not equal its entry value at RET");
    List.iter
      (fun r ->
        if not (av_equal (get st r) (Init r)) then
          add ~addr:off "trampoline.callee-saved"
            (Printf.sprintf "%s not restored at RET" (Reg.name r)))
      callee_saved;
    match flavor with
    | `Vmfunc -> check_vmfunc_gates off st
    | `Mpk -> check_wrpkru_gates off st
    | `Syscall ->
      if st.syscalls = 0 then
        add ~addr:off "trampoline.syscall-missing"
          "path reaches RET without entering the kernel"
  in
  let n = Bytes.length code in
  let rec step off st fuel =
    if fuel <= 0 then add ~addr:off "trampoline.diverges" "step bound exceeded"
    else if off < 0 || off >= n then
      add ~addr:off "trampoline.diverges" "execution leaves the trampoline page"
    else begin
      let d = Decode.decode_one code off in
      let next = off + d.Decode.len in
      let continue st = step next st (fuel - 1) in
      match d.Decode.insn with
      | None ->
        add ~addr:off "trampoline.undecodable"
          (Printf.sprintf "%d unverifiable byte(s)" d.Decode.len)
      | Some insn -> (
        match insn with
        | Insn.Ret -> at_ret off st
        | Insn.Vmfunc -> (
          match flavor with
          | `Vmfunc ->
            continue
              { st with
                vmfuncs = (get st Reg.Rax, get st Reg.Rcx) :: st.vmfuncs }
          | `Mpk | `Syscall ->
            add ~addr:off "trampoline.unexpected-insn"
              "VMFUNC in a non-VMFUNC backend's call gate")
        | Insn.Wrpkru -> (
          match flavor with
          | `Mpk ->
            continue
              { st with
                wrpkrus =
                  (get st Reg.Rax, get st Reg.Rcx, get st Reg.Rdx)
                  :: st.wrpkrus }
          | `Vmfunc | `Syscall ->
            add ~addr:off "trampoline.unexpected-insn"
              "WRPKRU in a non-MPK backend's call gate")
        | Insn.Push r -> (
          match get st Reg.Rsp with
          | Sp depth ->
            let depth = depth + 8 in
            let st = set st Reg.Rsp (Sp depth) in
            continue { st with stack = (depth, get st r) :: st.stack }
          | _ -> continue (set st r Top))
        | Insn.Pop r -> (
          match get st Reg.Rsp with
          | Sp depth when depth >= 8 ->
            let v =
              match List.assoc_opt depth st.stack with
              | Some v -> v
              | None -> Top
            in
            let st = set st r v in
            continue (set st Reg.Rsp (Sp (depth - 8)))
          | Sp _ ->
            add ~addr:off "trampoline.rsp-restored"
              "POP underflows the entry stack frame"
          | _ -> continue (set st r Top))
        | Insn.Mov_rr (dst, src) -> continue (set st dst (get st src))
        | Insn.Mov_ri (dst, imm) -> continue (set st dst (Const imm))
        | Insn.Mov_load (dst, _) -> continue (set st dst Top)
        | Insn.Mov_store (_, _) -> continue st
        | Insn.Call_rel _ ->
          (* Handler call: System V ABI — caller-saved havocked,
             callee-saved and RSP preserved. *)
          continue (List.fold_left (fun st r -> set st r Top) st caller_saved)
        | Insn.Jmp_rel rel -> step (next + rel) st (fuel - 1)
        | Insn.Jcc (_, rel) ->
          step (next + rel) st (fuel - 1);
          continue st
        | Insn.Xor_rr (dst, src) when Reg.equal dst src ->
          continue (set st dst (Const 0L))
        | Insn.Syscall -> (
          match flavor with
          | `Syscall ->
            (* The kernel round trip: SYSCALL clobbers RCX/R11 with
               RIP/RFLAGS, and the slowpath's return value lands in RAX.
               Callee-saved registers and RSP survive (kernel ABI). *)
            let st = { st with syscalls = st.syscalls + 1 } in
            continue
              (List.fold_left (fun st r -> set st r Top) st
                 [ Reg.Rax; Reg.Rcx; Reg.R11 ])
          | `Vmfunc | `Mpk ->
            add ~addr:off "trampoline.unexpected-insn"
              "trampoline must not enter the kernel")
        | Insn.Cpuid ->
          add ~addr:off "trampoline.unexpected-insn"
            "trampoline must not execute CPUID"
        | insn ->
          (* Anything else conservatively havocks what it writes. *)
          continue
            (List.fold_left (fun st r -> set st r Top) st
               (Insn.regs_written insn)))
    end
  in
  step 0 (initial_state ()) max_steps;
  if !rets = 0 && !vs = [] then
    add "trampoline.no-ret" "no path reaches RET";
  Report.sort !vs
