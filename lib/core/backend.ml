(** The isolation-backend axis: which hardware mechanism carries a
    mediated cross-domain call.

    SkyBridge's design point — VMFUNC EPTP switching — is one of three
    ways to give a client a controlled window into a server's domain.
    This module makes the choice a first-class, per-run parameter so the
    same experiments, chaos storms and audits run against all three and
    the cost/security trade-off becomes measurable rather than asserted:

    - [Vmfunc] — the paper's mechanism. User-mode EPTP-list switching
      through the trampoline page; the kernel stays off the IPC path.
    - [Mpk] — ERIM-style protection keys. A WRPKRU call gate switches
      the PKRU view; no address-space or TLB interaction at all, but all
      domains share one address space and security rests on the WRPKRU
      binary scan.
    - [Syscall] — "syscall as a privilege": every crossing traps into a
      filtered kernel slowpath whose per-domain allowed-entry-point
      table is checked at trap time.

    The process-wide [default] mirrors {!Sky_sim.Accel}'s kill switch:
    {!Subkernel.init} picks it up unless told otherwise, so every
    existing experiment runs unchanged under whichever backend the CLI
    selected. *)

type kind = Vmfunc | Mpk | Syscall

let all = [ Vmfunc; Mpk; Syscall ]

let name = function
  | Vmfunc -> "vmfunc"
  | Mpk -> "mpk"
  | Syscall -> "syscall"

let of_string = function
  | "vmfunc" -> Some Vmfunc
  | "mpk" -> Some Mpk
  | "syscall" -> Some Syscall
  | _ -> None

let pp fmt k = Format.pp_print_string fmt (name k)

(* Atomic so parallel replicas spawned after the CLI sets the backend
   read it without a data race; it is configuration, written once per
   run before any domain is spawned. *)
let default = Atomic.make Vmfunc
let get_default () = Atomic.get default
let set_default k = Atomic.set default k

let with_default k f =
  let saved = Atomic.get default in
  Atomic.set default k;
  Fun.protect ~finally:(fun () -> Atomic.set default saved) f

(* The per-leg cost of the architectural switch itself (the rest of a
   crossing — save/restore, stack install — is mechanism-independent and
   charged by the trampoline). The syscall figure is the whole kernel
   round trip charged by the slowpath, not a single instruction. *)
let switch_cycles = function
  | Vmfunc -> Sky_sim.Costs.vmfunc
  | Mpk -> Sky_sim.Costs.wrpkru
  | Syscall ->
    Sky_sim.Costs.syscall + Sky_sim.Costs.swapgs
    + Sky_sim.Costs.entry_filter_check + Sky_sim.Costs.cr3_write
    + Sky_sim.Costs.swapgs + Sky_sim.Costs.sysret

let tramp_flavor = function
  | Vmfunc -> `Vmfunc
  | Mpk -> `Mpk
  | Syscall -> `Syscall
