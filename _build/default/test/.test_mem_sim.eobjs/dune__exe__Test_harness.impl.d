test/test_harness.ml: Alcotest List Sky_harness String Tbl
