(** Per-domain allowed-entry-point table for the filtered-syscall
    isolation backend ("syscall as a privilege").

    Where the VMFUNC backend keeps the kernel out of the IPC path
    entirely and the MPK backend gates crossings in user space, the
    filtered-syscall backend routes every cross-domain call through the
    kernel — but a {e filtered} kernel: a client's SYSCALL may only land
    on an entry point that was explicitly granted to it at bind time.
    The filter is checked at trap time, before any context switch, so a
    compromised client probing for other servers' handlers is denied at
    the cheapest possible point. Revocation is a table erase: the next
    trap from that client is denied and falls back to the typed
    [Binding_revoked] error, mirroring the EPTP-slot degeneracy trick of
    the VMFUNC path. *)

type t = {
  allowed : (int * int, int) Hashtbl.t;
      (** (client pid, server id) -> granted entry VA *)
  mutable checks : int;
  mutable denials : int;
}

let create () = { allowed = Hashtbl.create 64; checks = 0; denials = 0 }

let allow t ~pid ~server ~entry = Hashtbl.replace t.allowed (pid, server) entry

let revoke t ~pid ~server = Hashtbl.remove t.allowed (pid, server)

let revoke_server t ~server =
  Hashtbl.filter_map_inplace
    (fun (_, s) entry -> if s = server then None else Some entry)
    t.allowed

(* The trap-time check: charged at Costs.entry_filter_check by the
   caller (the kernel entry path), counted here. *)
let check t ~pid ~server ~entry =
  t.checks <- t.checks + 1;
  match Hashtbl.find_opt t.allowed (pid, server) with
  | Some granted when granted = entry -> true
  | _ ->
    t.denials <- t.denials + 1;
    false

let size t = Hashtbl.length t.allowed

let entries t =
  Hashtbl.fold (fun (pid, server) entry acc -> (pid, server, entry) :: acc)
    t.allowed []
  |> List.sort compare

let checks t = t.checks
let denials t = t.denials

let reset_stats t =
  t.checks <- 0;
  t.denials <- 0
