lib/mem/phys_mem.ml: Array Bytes Char Int32 Printf
