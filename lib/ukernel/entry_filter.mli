(** Per-domain allowed-entry-point table for the filtered-syscall
    isolation backend: a client's cross-domain SYSCALL may only land on
    an entry point granted to (client, server) at bind time, checked at
    trap time before any context switch. *)

type t

val create : unit -> t

val allow : t -> pid:int -> server:int -> entry:int -> unit
(** Grant [pid] the right to enter [server] at [entry] (replaces any
    previous grant for the pair). *)

val revoke : t -> pid:int -> server:int -> unit

val revoke_server : t -> server:int -> unit
(** Erase every grant targeting [server] — the crash/revoke path. *)

val check : t -> pid:int -> server:int -> entry:int -> bool
(** Trap-time filter: true iff the pair holds a grant for exactly this
    entry VA. Counts the check, and the denial when it fails. The
    {!Sky_sim.Costs.entry_filter_check} cycles are charged by the
    caller's kernel-entry path. *)

val size : t -> int

val entries : t -> (int * int * int) list
(** [(pid, server, entry)] grants, sorted — audit input. *)

val checks : t -> int
val denials : t -> int
val reset_stats : t -> unit
