(* Tests for the microkernel substrate and the three baseline IPC paths. *)

open Sky_sim
open Sky_ukernel
open Sky_kernels

let make ?(variant = Config.Sel4) ?(kpti = false) ?(cores = 4) () =
  let machine = Machine.create ~cores ~mem_mib:64 () in
  let config = { (Config.default variant) with Config.kpti } in
  let k = Kernel.create ~config machine in
  (k, Ipc.create k)

(* ------------------------------------------------------------------ *)
(* Kernel basics                                                       *)
(* ------------------------------------------------------------------ *)

let test_spawn_distinct () =
  let k, _ = make () in
  let a = Kernel.spawn k ~name:"a" in
  let b = Kernel.spawn k ~name:"b" in
  Alcotest.(check bool) "distinct pids" true (a.Proc.pid <> b.Proc.pid);
  Alcotest.(check bool) "distinct page tables" true (Proc.cr3 a <> Proc.cr3 b);
  Alcotest.(check bool) "identity frames differ" true
    (a.Proc.identity_frame <> b.Proc.identity_frame)

let test_map_code_roundtrip () =
  let k, _ = make () in
  let p = Kernel.spawn k ~name:"p" in
  let code = Sky_isa.Encode.encode_all [ Sky_isa.Insn.Nop; Sky_isa.Insn.Ret ] in
  let va = Kernel.map_code k p code in
  Alcotest.(check int) "at code base" Layout.code_va va;
  match Kernel.proc_code_bytes k p with
  | [ (va', back) ] ->
    Alcotest.(check int) "same va" va va';
    Alcotest.(check bool) "bytes readable back" true (Bytes.equal code back)
  | _ -> Alcotest.fail "expected one region"

let test_write_code_patches () =
  let k, _ = make () in
  let p = Kernel.spawn k ~name:"p" in
  let code = Bytes.make 8192 '\x90' in
  let va = Kernel.map_code k p code in
  Kernel.write_code k p ~va:(va + 5000) (Bytes.of_string "\xc3");
  match Kernel.proc_code_bytes k p with
  | [ (_, back) ] -> Alcotest.(check char) "patched across pages" '\xc3' (Bytes.get back 5000)
  | _ -> Alcotest.fail "expected one region"

let test_context_switch_costs () =
  let k, _ = make () in
  let a = Kernel.spawn k ~name:"a" and b = Kernel.spawn k ~name:"b" in
  let c = Kernel.cpu k ~core:0 in
  Kernel.context_switch k ~core:0 a;
  let t0 = Cpu.cycles c in
  Kernel.context_switch k ~core:0 b;
  Alcotest.(check int) "one CR3 write" Costs.cr3_write (Cpu.cycles c - t0);
  let t1 = Cpu.cycles c in
  Kernel.context_switch k ~core:0 b;
  Alcotest.(check int) "same process is free" 0 (Cpu.cycles c - t1)

let test_kernel_entry_exit_cost () =
  let k, _ = make () in
  let c = Kernel.cpu k ~core:0 in
  Kernel.kernel_entry k ~core:0;
  Kernel.kernel_exit k ~core:0;
  Alcotest.(check int) "mode switch = 209 cycles"
    (Costs.syscall + (2 * Costs.swapgs) + Costs.sysret)
    (Cpu.cycles c)

let test_kpti_doubles_switches () =
  let k, _ = make ~kpti:true () in
  let c = Kernel.cpu k ~core:0 in
  Kernel.kernel_entry k ~core:0;
  Kernel.kernel_exit k ~core:0;
  Alcotest.(check int) "mode switch + 2 CR3 writes"
    (Costs.syscall + (2 * Costs.swapgs) + Costs.sysret + (2 * Costs.cr3_write))
    (Cpu.cycles c)

let test_ipi_advances_target () =
  let k, _ = make () in
  let c0 = Kernel.cpu k ~core:0 and c1 = Kernel.cpu k ~core:1 in
  Cpu.charge c0 10_000;
  Kernel.send_ipi k ~from_core:0 ~to_core:1;
  Alcotest.(check int) "sender charged" (10_000 + Costs.ipi) (Cpu.cycles c0);
  Alcotest.(check int) "target caught up" (10_000 + Costs.ipi) (Cpu.cycles c1)

(* ------------------------------------------------------------------ *)
(* Lock                                                                *)
(* ------------------------------------------------------------------ *)

let test_lock_serializes () =
  let machine = Machine.create ~cores:2 ~mem_mib:16 () in
  let l = Lock.create "big" in
  let a = Machine.core machine 0 and b = Machine.core machine 1 in
  Lock.with_lock l a (fun () -> Cpu.charge a 1000);
  (* Core b arrives "earlier" in its own time but must wait for a's
     release. *)
  Lock.acquire l b;
  Alcotest.(check bool) "b waited" true (Cpu.cycles b >= 1000);
  Alcotest.(check int) "one contended acquisition" 1 l.Lock.contended;
  Lock.release l b

let test_lock_uncontended_cheap () =
  let machine = Machine.create ~cores:1 ~mem_mib:16 () in
  let l = Lock.create "l" in
  let a = Machine.core machine 0 in
  Lock.with_lock l a (fun () -> ());
  Lock.with_lock l a (fun () -> ());
  Alcotest.(check int) "no contention" 0 l.Lock.contended

(* ------------------------------------------------------------------ *)
(* IPC paths                                                           *)
(* ------------------------------------------------------------------ *)

let echo ~core:_ msg = msg

let setup_ipc ?variant ?(server_cores = []) () =
  let k, ipc = make ?variant () in
  let client = Kernel.spawn k ~name:"client" in
  let server = Kernel.spawn k ~name:"server" in
  let ep = Ipc.register ipc server ~cores:server_cores echo in
  Kernel.context_switch k ~core:0 client;
  (k, ipc, client, ep)

let roundtrip ?(core = 0) (k, ipc, client, ep) msg =
  let c = Kernel.cpu k ~core in
  let before = Cpu.cycles c in
  let reply = Ipc.call ipc ~core ~client ep msg in
  (reply, Cpu.cycles c - before)

let test_sel4_fastpath_direct_cost () =
  let env = setup_ipc () in
  (* Warm up, then measure the steady-state roundtrip. *)
  ignore (roundtrip env (Bytes.create 8));
  let reply, cycles = roundtrip env (Bytes.create 8) in
  Alcotest.(check int) "echo" 8 (Bytes.length reply);
  (* §6.3: seL4 fastpath roundtrip = 986 cycles. Ours must be exactly
     2 x 493 of direct cost. *)
  Alcotest.(check int) "fastpath roundtrip = 986" 986 cycles

let test_sel4_long_message_slowpath () =
  let env = setup_ipc () in
  ignore (roundtrip env (Bytes.create 1024));
  let reply, cycles = roundtrip env (Bytes.create 1024) in
  Alcotest.(check int) "echo" 1024 (Bytes.length reply);
  Alcotest.(check bool) "slower than fastpath" true (cycles > 986)

let test_cross_core_includes_ipis () =
  let k, ipc, client, ep = setup_ipc ~server_cores:[ 1 ] () in
  ignore (roundtrip (k, ipc, client, ep) (Bytes.create 8));
  let _, cycles = roundtrip (k, ipc, client, ep) (Bytes.create 8) in
  Alcotest.(check bool) "cross-core costs at least 2 IPIs" true
    (cycles > 2 * Costs.ipi);
  Alcotest.(check bool) "records IPIs" true (ep.Ipc.stats.Breakdown.ipi > 0)

let test_variant_ordering () =
  (* Figure 7 ordering: seL4 < Fiasco < Zircon for single-core IPC. *)
  let measure variant =
    let env = setup_ipc ~variant () in
    for _ = 1 to 10 do
      ignore (roundtrip env (Bytes.create 8))
    done;
    let _, cycles = roundtrip env (Bytes.create 8) in
    cycles
  in
  let s = measure Config.Sel4
  and f = measure Config.Fiasco
  and z = measure Config.Zircon in
  Alcotest.(check bool) (Printf.sprintf "sel4 (%d) < fiasco (%d)" s f) true (s < f);
  Alcotest.(check bool) (Printf.sprintf "fiasco (%d) < zircon (%d)" f z) true (f < z)

let test_handler_sees_message () =
  let k, ipc = make () in
  let client = Kernel.spawn k ~name:"c" in
  let server = Kernel.spawn k ~name:"s" in
  let seen = ref "" in
  let ep =
    Ipc.register ipc server (fun ~core:_ msg ->
        seen := Bytes.to_string msg;
        Bytes.of_string ("re:" ^ Bytes.to_string msg))
  in
  let reply = Ipc.call ipc ~core:0 ~client ep (Bytes.of_string "hello") in
  Alcotest.(check string) "handler saw" "hello" !seen;
  Alcotest.(check string) "reply" "re:hello" (Bytes.to_string reply)

let test_nested_ipc () =
  (* client -> fs -> disk, the SQLite shape. *)
  let k, ipc = make () in
  let client = Kernel.spawn k ~name:"client" in
  let fs = Kernel.spawn k ~name:"fs" in
  let disk = Kernel.spawn k ~name:"disk" in
  let disk_ep = Ipc.register ipc disk (fun ~core:_ _ -> Bytes.of_string "block") in
  let fs_ep =
    Ipc.register ipc fs (fun ~core msg ->
        let b = Ipc.call ipc ~core ~client:fs disk_ep msg in
        Bytes.of_string ("fs+" ^ Bytes.to_string b))
  in
  let reply = Ipc.call ipc ~core:0 ~client fs_ep (Bytes.of_string "read") in
  Alcotest.(check string) "nested pipeline" "fs+block" (Bytes.to_string reply)

let test_ipc_pollutes_tlb () =
  (* The Table 1 effect: IPC evicts the client's TLB entries (CR3 writes
     flush without PCID). *)
  let k, ipc, client, ep = setup_ipc () in
  let vcpu = Kernel.vcpu k ~core:0 in
  let mem = Kernel.mem k in
  let va = Kernel.map_anon k client 4096 in
  Sky_mmu.Vcpu.set_mode vcpu Sky_mmu.Vcpu.User;
  ignore (Sky_mmu.Translate.read_u64 vcpu mem ~va);
  let dtlb = Cpu.dtlb (Kernel.cpu k ~core:0) in
  Tlb.reset_stats dtlb;
  ignore (Sky_mmu.Translate.read_u64 vcpu mem ~va);
  Alcotest.(check int) "hit before IPC" 1 (Tlb.hits dtlb);
  ignore (Ipc.call ipc ~core:0 ~client ep (Bytes.create 8));
  Tlb.reset_stats dtlb;
  ignore (Sky_mmu.Translate.read_u64 vcpu mem ~va);
  Alcotest.(check int) "miss after IPC" 1 (Tlb.misses dtlb)

let test_breakdown_totals () =
  let k, ipc, client, ep = setup_ipc () in
  ignore (k, ipc, client);
  ignore (roundtrip (k, ipc, client, ep) (Bytes.create 8));
  let bd = ep.Ipc.stats in
  Alcotest.(check bool) "syscall component present" true (bd.Breakdown.syscall > 0);
  Alcotest.(check bool) "ctx component present" true (bd.Breakdown.ctx > 0);
  Alcotest.(check int) "no vmfunc in baseline IPC" 0 bd.Breakdown.vmfunc

let () =
  Alcotest.run "ukernel"
    [
      ( "kernel",
        [
          Alcotest.test_case "spawn" `Quick test_spawn_distinct;
          Alcotest.test_case "map_code roundtrip" `Quick test_map_code_roundtrip;
          Alcotest.test_case "write_code patches" `Quick test_write_code_patches;
          Alcotest.test_case "context switch cost" `Quick test_context_switch_costs;
          Alcotest.test_case "kernel entry/exit = 209" `Quick test_kernel_entry_exit_cost;
          Alcotest.test_case "KPTI adds 2 CR3 writes" `Quick test_kpti_doubles_switches;
          Alcotest.test_case "IPI timing" `Quick test_ipi_advances_target;
        ] );
      ( "lock",
        [
          Alcotest.test_case "serializes cores" `Quick test_lock_serializes;
          Alcotest.test_case "uncontended cheap" `Quick test_lock_uncontended_cheap;
        ] );
      ( "ipc",
        [
          Alcotest.test_case "seL4 fastpath = 986 cycles" `Quick
            test_sel4_fastpath_direct_cost;
          Alcotest.test_case "long message leaves fastpath" `Quick
            test_sel4_long_message_slowpath;
          Alcotest.test_case "cross-core pays IPIs" `Quick test_cross_core_includes_ipis;
          Alcotest.test_case "seL4 < Fiasco < Zircon" `Quick test_variant_ordering;
          Alcotest.test_case "handler sees message" `Quick test_handler_sees_message;
          Alcotest.test_case "nested IPC (client->fs->disk)" `Quick test_nested_ipc;
          Alcotest.test_case "IPC pollutes TLB (Table 1)" `Quick test_ipc_pollutes_tlb;
          Alcotest.test_case "breakdown accounting" `Quick test_breakdown_totals;
        ] );
    ]
