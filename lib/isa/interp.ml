(** Reference interpreter for the instruction subset.

    Exists to *verify the rewriter*: the qcheck equivalence property runs
    an original instruction stream and its VMFUNC-free rewrite on the same
    initial state and demands identical final registers, memory and
    event history. The machine model is flat: 16 64-bit registers and a
    sparse byte-addressable memory. *)

type event = Ev_vmfunc | Ev_syscall | Ev_cpuid | Ev_wrpkru of int64

(* Condition flags, reduced to the predicates the supported Jcc
   conditions need: zero, signed-less, unsigned-less. *)
type flags = { mutable zf : bool; mutable slt : bool; mutable ult : bool }

type state = {
  regs : int64 array;  (** indexed by {!Reg.encoding} *)
  mem : (int, int) Hashtbl.t;  (** sparse byte memory *)
  mutable ip : int;  (** byte offset into the code buffer *)
  mutable events : event list;  (** reverse chronological *)
  mutable steps : int;
  flags : flags;
}

exception Stuck of string

let create ?(rsp = 0x7000_0000) () =
  let regs = Array.make 16 0L in
  regs.(Reg.encoding Reg.Rsp) <- Int64.of_int rsp;
  {
    regs;
    mem = Hashtbl.create 64;
    ip = 0;
    events = [];
    steps = 0;
    flags = { zf = false; slt = false; ult = false };
  }

let get t r = t.regs.(Reg.encoding r)
let set t r v = t.regs.(Reg.encoding r) <- v
let read_byte t a = Option.value ~default:0 (Hashtbl.find_opt t.mem (a land 0x7fff_ffff_ffff_ffff))
let write_byte t a v = Hashtbl.replace t.mem (a land 0x7fff_ffff_ffff_ffff) (v land 0xff)

let read64 t a =
  let v = ref 0L in
  for k = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (read_byte t (a + k)))
  done;
  !v

let write64 t a v =
  for k = 0 to 7 do
    write_byte t (a + k) (Int64.to_int (Int64.shift_right_logical v (8 * k)) land 0xff)
  done

let ea t (m : Insn.mem) =
  let base = Option.fold ~none:0L ~some:(get t) m.Insn.base in
  let index =
    Option.fold ~none:0L
      ~some:(fun (r, s) -> Int64.mul (get t r) (Int64.of_int s))
      m.Insn.index
  in
  Int64.to_int (Int64.add (Int64.add base index) (Int64.of_int m.Insn.disp))

let push t v =
  let rsp = Int64.sub (get t Reg.Rsp) 8L in
  set t Reg.Rsp rsp;
  write64 t (Int64.to_int rsp) v

let pop t =
  let rsp = get t Reg.Rsp in
  let v = read64 t (Int64.to_int rsp) in
  set t Reg.Rsp (Int64.add rsp 8L);
  v

(* Flags from a result compared against zero (after ALU ops). *)
let set_flags_result t v =
  t.flags.zf <- Int64.equal v 0L;
  t.flags.slt <- Int64.compare v 0L < 0;
  t.flags.ult <- false

(* Flags from a subtraction a - b (CMP semantics). *)
let set_flags_cmp t a b =
  t.flags.zf <- Int64.equal a b;
  t.flags.slt <- Int64.compare a b < 0;
  t.flags.ult <- Int64.unsigned_compare a b < 0

let cond_holds t = function
  | Insn.E -> t.flags.zf
  | Insn.Ne -> not t.flags.zf
  | Insn.L -> t.flags.slt
  | Insn.Ge -> not t.flags.slt
  | Insn.Le -> t.flags.slt || t.flags.zf
  | Insn.G -> not (t.flags.slt || t.flags.zf)
  | Insn.B -> t.flags.ult
  | Insn.Ae -> not t.flags.ult

(* Executes the instruction; returns [None] for fallthrough or [Some ip]
   for a control transfer (absolute byte offset). *)
let exec_insn t insn ~next_ip =
  let alu r v =
    set t r v;
    set_flags_result t v;
    None
  in
  match insn with
  | Insn.Nop -> None
  | Insn.Push r ->
    push t (get t r);
    None
  | Insn.Pop r ->
    set t r (pop t);
    None
  | Insn.Mov_rr (d, s) ->
    set t d (get t s);
    None
  | Insn.Mov_ri (d, i) ->
    set t d i;
    None
  | Insn.Mov_load (d, m) ->
    set t d (read64 t (ea t m));
    None
  | Insn.Mov_store (m, s) ->
    write64 t (ea t m) (get t s);
    None
  | Insn.Add_rr (d, s) ->
    set t d (Int64.add (get t d) (get t s));
    None
  | Insn.Add_ri (d, i) ->
    set t d (Int64.add (get t d) (Int64.of_int i));
    None
  | Insn.Add_rm (d, m) ->
    set t d (Int64.add (get t d) (read64 t (ea t m)));
    None
  | Insn.Sub_ri (d, i) ->
    set t d (Int64.sub (get t d) (Int64.of_int i));
    None
  | Insn.Xor_rr (d, s) ->
    set t d (Int64.logxor (get t d) (get t s));
    None
  | Insn.Imul_rri (d, Insn.R s, i) ->
    set t d (Int64.mul (get t s) (Int64.of_int i));
    None
  | Insn.Imul_rri (d, Insn.M m, i) ->
    set t d (Int64.mul (read64 t (ea t m)) (Int64.of_int i));
    None
  | Insn.Imul_rm (d, Insn.R s) ->
    set t d (Int64.mul (get t d) (get t s));
    None
  | Insn.Imul_rm (d, Insn.M m) ->
    set t d (Int64.mul (get t d) (read64 t (ea t m)));
    None
  | Insn.Lea (d, m) ->
    set t d (Int64.of_int (ea t m));
    None
  | Insn.And_rr (d, sr) -> alu d (Int64.logand (get t d) (get t sr))
  | Insn.And_ri (d, i) -> alu d (Int64.logand (get t d) (Int64.of_int i))
  | Insn.Or_rr (d, sr) -> alu d (Int64.logor (get t d) (get t sr))
  | Insn.Or_ri (d, i) -> alu d (Int64.logor (get t d) (Int64.of_int i))
  | Insn.Cmp_rr (a, b) ->
    set_flags_cmp t (get t a) (get t b);
    None
  | Insn.Cmp_ri (a, i) ->
    set_flags_cmp t (get t a) (Int64.of_int i);
    None
  | Insn.Test_rr (a, b) ->
    set_flags_result t (Int64.logand (get t a) (get t b));
    None
  | Insn.Shl_ri (d, i) -> alu d (Int64.shift_left (get t d) (i land 0x3f))
  | Insn.Shr_ri (d, i) -> alu d (Int64.shift_right_logical (get t d) (i land 0x3f))
  | Insn.Inc d -> alu d (Int64.add (get t d) 1L)
  | Insn.Dec d -> alu d (Int64.sub (get t d) 1L)
  | Insn.Neg d -> alu d (Int64.neg (get t d))
  | Insn.Jcc (c, rel) -> if cond_holds t c then Some (next_ip + rel) else None
  | Insn.Jmp_rel rel -> Some (next_ip + rel)
  | Insn.Call_rel rel ->
    push t (Int64.of_int next_ip);
    Some (next_ip + rel)
  | Insn.Ret -> Some (Int64.to_int (pop t))
  | Insn.Syscall ->
    t.events <- Ev_syscall :: t.events;
    None
  | Insn.Vmfunc ->
    t.events <- Ev_vmfunc :: t.events;
    None
  | Insn.Wrpkru ->
    (* The PKRU write is an event (the value written matters for
       equivalence); the architectural requirement ECX = EDX = 0 is
       checked by the trampoline auditor, not here. *)
    t.events <- Ev_wrpkru (get t Reg.Rax) :: t.events;
    None
  | Insn.Cpuid ->
    (* Deterministic leaf values. *)
    set t Reg.Rax 0x16L;
    set t Reg.Rbx 0x756e_6547L;
    set t Reg.Rcx 0x6c65_746eL;
    set t Reg.Rdx 0x4965_6e69L;
    t.events <- Ev_cpuid :: t.events;
    None

(* Run until the instruction pointer leaves [code] (falling exactly onto
   [length code] is a normal exit; anywhere else raises), or [max_steps]
   is exceeded. *)
let run ?(max_steps = 10_000) t code =
  let len = Bytes.length code in
  let rec go () =
    if t.ip = len then ()
    else if t.ip < 0 || t.ip > len then
      raise (Stuck (Printf.sprintf "ip %#x outside code" t.ip))
    else if t.steps >= max_steps then raise (Stuck "step limit")
    else begin
      t.steps <- t.steps + 1;
      let d = Decode.decode_one code t.ip in
      match d.Decode.insn with
      | None ->
        raise
          (Stuck
             (Printf.sprintf "undecodable byte %#x at %#x"
                (Char.code (Bytes.get code t.ip))
                t.ip))
      | Some insn ->
        let next_ip = t.ip + d.Decode.len in
        (match exec_insn t insn ~next_ip with
        | None -> t.ip <- next_ip
        | Some target -> t.ip <- target);
        go ()
    end
  in
  go ()

let vmfunc_count t =
  List.length (List.filter (fun e -> e = Ev_vmfunc) t.events)

let equal_state a b =
  a.regs = b.regs
  && List.rev a.events = List.rev b.events
  &&
  (* Compare memory as maps, ignoring zero bytes (unset = 0). *)
  let nonzero h =
    Hashtbl.fold (fun k v acc -> if v <> 0 then (k, v) :: acc else acc) h []
    |> List.sort compare
  in
  nonzero a.mem = nonzero b.mem
