(** On-disk superblock (block 1) of the xv6-style log file system. *)

let magic = 0x10203040
let bsize = Sky_blockdev.Ramdisk.block_size

type t = {
  size : int;  (** total blocks *)
  nblocks : int;  (** data blocks *)
  ninodes : int;
  nlog : int;
  logstart : int;
  inodestart : int;
  bmapstart : int;
}

exception Bad_superblock of string

(* Derived layout: | boot | super | log... | inodes... | bitmap... | data |. *)
let layout ~size ~ninodes ~nlog =
  let inodes_per_block = bsize / 64 in
  let ninodeblocks = (ninodes + inodes_per_block - 1) / inodes_per_block in
  let nbitmap = (size / (bsize * 8)) + 1 in
  let logstart = 2 in
  let inodestart = logstart + nlog in
  let bmapstart = inodestart + ninodeblocks in
  let nmeta = bmapstart + nbitmap in
  if nmeta >= size then raise (Bad_superblock "metadata does not fit");
  {
    size;
    nblocks = size - nmeta;
    ninodes;
    nlog;
    logstart;
    inodestart;
    bmapstart;
  }

let data_start t = t.size - t.nblocks

let encode t =
  let b = Bytes.make bsize '\000' in
  let w i v = Bytes.set_int32_le b (i * 4) (Int32.of_int v) in
  w 0 magic;
  w 1 t.size;
  w 2 t.nblocks;
  w 3 t.ninodes;
  w 4 t.nlog;
  w 5 t.logstart;
  w 6 t.inodestart;
  w 7 t.bmapstart;
  b

let decode b =
  let r i = Int32.to_int (Bytes.get_int32_le b (i * 4)) in
  if r 0 <> magic then raise (Bad_superblock "bad magic");
  {
    size = r 1;
    nblocks = r 2;
    ninodes = r 3;
    nlog = r 4;
    logstart = r 5;
    inodestart = r 6;
    bmapstart = r 7;
  }
