(** One shard's worth of host-global simulator state, bundled: tracer
    context, fault engine, Accel epoch scope and hot-line table.

    Parallel shards (and `--jobs` replicas) each build a fresh bundle
    and run their whole machine inside {!enter}, so the domain-local
    scoping hooks of the individual modules all point at that shard's
    private copies and nothing leaks between worlds. *)

type t = {
  sc_trace : Sky_trace.Trace.ctx;
  sc_fault : Sky_faults.Fault.engine;
  sc_accel : Accel.scope;
  sc_hot : Memsys.Hotline.table;
}

val fresh : ?seed:int -> unit -> t
(** A new, independent world: empty tracer, disabled fault engine seeded
    with [seed], fresh Accel epoch, cold hot-line table. *)

val enter : t -> (unit -> 'a) -> 'a
(** Run [f] with every scoped singleton bound to this bundle. Nests:
    entering another bundle inside [f] shadows this one until it
    returns. *)
