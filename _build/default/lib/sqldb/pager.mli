(** Database pager: fixed-size pages of one FS file, with an internal
    LRU page cache backed by simulated guest frames (so hits still have
    real, warm micro-architectural cost).

    Writes are write-through: the FS sees every page write — that FS
    traffic is exactly what Table 4 measures across transports. *)

type t

val page_size : int
(** 1024 (= the FS block size). *)

val cache_slots : int

val create :
  Sky_ukernel.Kernel.t -> Sky_xv6fs.Fs_iface.t -> core:int -> inum:int -> t

val read : t -> core:int -> int -> bytes
(** Cached read of one page; misses go to the FS (zero-filled past EOF). *)

val write : t -> core:int -> int -> bytes -> unit
(** Write-through; updates the cache. *)

val alloc_page : t -> core:int -> int
(** Append a zeroed page; returns its number. *)

val npages : t -> int
val hits : t -> int
val misses : t -> int
val page_writes : t -> int
