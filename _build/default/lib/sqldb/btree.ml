(** B+tree over the pager: integer keys, fixed-size values.

    Page 0 is the table header (magic, root page, value size, record
    count); every other page is an internal node or a leaf. Leaves are
    chained for range scans. Deletion is lazy (no rebalancing) — like
    SQLite's freelist approach, pages are reused only via the allocator. *)

exception Corrupt of string

let magic = 0xB7EE
let header_page = 0

type t = {
  pager : Pager.t;
  mutable root : int;
  value_size : int;
  mutable count : int;
}

(* ---- header ---- *)

let write_header t ~core =
  let b = Bytes.make Pager.page_size '\000' in
  Bytes.set_int32_le b 0 (Int32.of_int magic);
  Bytes.set_int32_le b 4 (Int32.of_int t.root);
  Bytes.set_int32_le b 8 (Int32.of_int t.value_size);
  Bytes.set_int32_le b 12 (Int32.of_int t.count);
  Pager.write t.pager ~core header_page b

(* ---- node encoding ---- *)

let node_internal = 1
let node_leaf = 2

let kind b = Char.code (Bytes.get b 0)
let set_kind b k = Bytes.set b 0 (Char.chr k)
let nkeys b = Bytes.get_uint16_le b 2
let set_nkeys b n = Bytes.set_uint16_le b 2 n

(* internal: child0 at 4; (key, child) pairs from 8 *)
let ikey b i = Int32.to_int (Bytes.get_int32_le b (8 + (i * 8)))
let ichild0 b = Int32.to_int (Bytes.get_int32_le b 4)
let ichild b i = Int32.to_int (Bytes.get_int32_le b (8 + (i * 8) + 4))
let set_ikey b i v = Bytes.set_int32_le b (8 + (i * 8)) (Int32.of_int v)
let set_ichild0 b v = Bytes.set_int32_le b 4 (Int32.of_int v)
let set_ichild b i v = Bytes.set_int32_le b (8 + (i * 8) + 4) (Int32.of_int v)
let internal_cap = (Pager.page_size - 8) / 8

(* leaf: next at 4; (key u32, value) records from 8 *)
let leaf_rec_size t = 4 + t.value_size
let leaf_cap t = (Pager.page_size - 8) / leaf_rec_size t
let lnext b = Int32.to_int (Bytes.get_int32_le b 4)
let set_lnext b v = Bytes.set_int32_le b 4 (Int32.of_int v)
let lkey t b i = Int32.to_int (Bytes.get_int32_le b (8 + (i * leaf_rec_size t)))
let set_lkey t b i v = Bytes.set_int32_le b (8 + (i * leaf_rec_size t)) (Int32.of_int v)
let lval t b i = Bytes.sub b (8 + (i * leaf_rec_size t) + 4) t.value_size

let set_lval t b i v =
  let padded = Bytes.make t.value_size '\000' in
  Bytes.blit v 0 padded 0 (min (Bytes.length v) t.value_size);
  Bytes.blit padded 0 b (8 + (i * leaf_rec_size t) + 4) t.value_size

(* ---- create / open ---- *)

let create pager ~core ~value_size =
  if value_size <= 0 || value_size > 512 then invalid_arg "Btree.create: value_size";
  let t = { pager; root = 0; value_size; count = 0 } in
  (* Header occupies page 0; the first leaf is page 1. *)
  let _ = Pager.alloc_page pager ~core in
  let root = Pager.alloc_page pager ~core in
  let b = Bytes.make Pager.page_size '\000' in
  set_kind b node_leaf;
  set_nkeys b 0;
  set_lnext b 0;
  Pager.write pager ~core root b;
  t.root <- root;
  write_header t ~core;
  t

let open_ pager ~core =
  let b = Pager.read pager ~core header_page in
  if Int32.to_int (Bytes.get_int32_le b 0) <> magic then raise (Corrupt "bad magic");
  {
    pager;
    root = Int32.to_int (Bytes.get_int32_le b 4);
    value_size = Int32.to_int (Bytes.get_int32_le b 8);
    count = Int32.to_int (Bytes.get_int32_le b 12);
  }

(* ---- search ---- *)

(* Child slot for [key] in internal node [b]: the last separator <= key,
   or child0. Returns the child page. *)
let child_for t b key =
  ignore t;
  let n = nkeys b in
  let rec go i best =
    if i >= n then best
    else if ikey b i <= key then go (i + 1) (ichild b i)
    else best
  in
  go 0 (ichild0 b)

(* Descend to the leaf for [key]; returns the internal-page path (root
   first) and the leaf (page number, contents). *)
let find_leaf t ~core key =
  let rec go page path =
    let b = Pager.read t.pager ~core page in
    if kind b = node_leaf then (path, page, b)
    else if kind b = node_internal then go (child_for t b key) (page :: path)
    else raise (Corrupt (Printf.sprintf "bad node kind %d" (kind b)))
  in
  go t.root []

(* Index of [key] in leaf [b], or the insertion point. *)
let leaf_search t b key =
  let n = nkeys b in
  let rec go i =
    if i >= n then Error n
    else
      let k = lkey t b i in
      if k = key then Ok i else if k > key then Error i else go (i + 1)
  in
  go 0

let query t ~core key =
  let _, _, b = find_leaf t ~core key in
  match leaf_search t b key with
  | Ok i -> Some (lval t b i)
  | Error _ -> None

let mem t ~core key = query t ~core key <> None

(* ---- insertion ---- *)

(* Insert separator (key, child) into the internal node at [page],
   splitting upwards as needed. [path] holds the remaining ancestors
   (nearest first). *)
let rec insert_into_internal t ~core page path key child =
  let b = Pager.read t.pager ~core page in
  let n = nkeys b in
  (* Insertion point among separators. *)
  let pos =
    let rec go i = if i < n && ikey b i < key then go (i + 1) else i in
    go 0
  in
  if n < internal_cap then begin
    for i = n - 1 downto pos do
      set_ikey b (i + 1) (ikey b i);
      set_ichild b (i + 1) (ichild b i)
    done;
    set_ikey b pos key;
    set_ichild b pos child;
    set_nkeys b (n + 1);
    Pager.write t.pager ~core page b
  end
  else begin
    (* Split: gather all (key, child) pairs including the new one. *)
    let pairs = Array.init n (fun i -> (ikey b i, ichild b i)) in
    let pairs =
      Array.concat
        [ Array.sub pairs 0 pos; [| (key, child) |]; Array.sub pairs pos (n - pos) ]
    in
    let total = Array.length pairs in
    let mid = total / 2 in
    let mid_key, mid_child = pairs.(mid) in
    (* Left keeps pairs [0, mid); right takes (mid, total) with child0 =
       mid's child; mid_key is promoted. *)
    let right_pg = Pager.alloc_page t.pager ~core in
    let rb = Bytes.make Pager.page_size '\000' in
    set_kind rb node_internal;
    let right_pairs = Array.sub pairs (mid + 1) (total - mid - 1) in
    set_ichild0 rb mid_child;
    Array.iteri
      (fun i (k, c) ->
        set_ikey rb i k;
        set_ichild rb i c)
      right_pairs;
    set_nkeys rb (Array.length right_pairs);
    Pager.write t.pager ~core right_pg rb;
    set_nkeys b mid;
    Array.iteri
      (fun i (k, c) ->
        if i < mid then begin
          set_ikey b i k;
          set_ichild b i c
        end)
      pairs;
    Pager.write t.pager ~core page b;
    promote t ~core page path mid_key right_pg
  end

(* Promote separator (key, right) after [left_page] split. *)
and promote t ~core left_page path key right =
  match path with
  | parent :: rest -> insert_into_internal t ~core parent rest key right
  | [] ->
    (* The root split: make a new root. *)
    let root_pg = Pager.alloc_page t.pager ~core in
    let b = Bytes.make Pager.page_size '\000' in
    set_kind b node_internal;
    set_ichild0 b left_page;
    set_ikey b 0 key;
    set_ichild b 0 right;
    set_nkeys b 1;
    Pager.write t.pager ~core root_pg b;
    t.root <- root_pg;
    write_header t ~core

let insert t ~core ~key ~value =
  let path, leaf_pg, b = find_leaf t ~core key in
  match leaf_search t b key with
  | Ok i ->
    (* Overwrite in place. *)
    set_lval t b i value;
    Pager.write t.pager ~core leaf_pg b
  | Error pos ->
    let n = nkeys b in
    if n < leaf_cap t then begin
      for i = n - 1 downto pos do
        set_lkey t b (i + 1) (lkey t b i);
        set_lval t b (i + 1) (lval t b i)
      done;
      set_lkey t b pos key;
      set_lval t b pos value;
      set_nkeys b (n + 1);
      Pager.write t.pager ~core leaf_pg b;
      t.count <- t.count + 1
    end
    else begin
      (* Split the leaf. *)
      let recs =
        Array.init n (fun i -> (lkey t b i, lval t b i))
      in
      let recs =
        Array.concat
          [ Array.sub recs 0 pos; [| (key, value) |]; Array.sub recs pos (n - pos) ]
      in
      let total = Array.length recs in
      let mid = total / 2 in
      let right_pg = Pager.alloc_page t.pager ~core in
      let rb = Bytes.make Pager.page_size '\000' in
      set_kind rb node_leaf;
      set_lnext rb (lnext b);
      let right_n = total - mid in
      for i = 0 to right_n - 1 do
        let k, v = recs.(mid + i) in
        set_lkey t rb i k;
        set_lval t rb i v
      done;
      set_nkeys rb right_n;
      Pager.write t.pager ~core right_pg rb;
      set_nkeys b mid;
      for i = 0 to mid - 1 do
        let k, v = recs.(i) in
        set_lkey t b i k;
        set_lval t b i v
      done;
      set_lnext b right_pg;
      Pager.write t.pager ~core leaf_pg b;
      let sep = fst recs.(mid) in
      promote t ~core leaf_pg path sep right_pg;
      t.count <- t.count + 1
    end

let update t ~core ~key ~value =
  let _, leaf_pg, b = find_leaf t ~core key in
  match leaf_search t b key with
  | Ok i ->
    set_lval t b i value;
    Pager.write t.pager ~core leaf_pg b;
    true
  | Error _ -> false

let delete t ~core ~key =
  let _, leaf_pg, b = find_leaf t ~core key in
  match leaf_search t b key with
  | Error _ -> false
  | Ok i ->
    let n = nkeys b in
    for j = i to n - 2 do
      set_lkey t b j (lkey t b (j + 1));
      set_lval t b j (lval t b (j + 1))
    done;
    set_nkeys b (n - 1);
    Pager.write t.pager ~core leaf_pg b;
    t.count <- t.count - 1;
    true

let count t = t.count

(* Persist the header (root page + record count). The count is kept in
   memory between flushes — SQLite likewise does not touch its header on
   every row. *)
let flush t ~core = write_header t ~core

(* In-order scan via the leaf chain, for tests and range queries. *)
let fold t ~core f acc =
  (* Leftmost leaf. *)
  let rec leftmost page =
    let b = Pager.read t.pager ~core page in
    if kind b = node_leaf then page else leftmost (ichild0 b)
  in
  let rec walk page acc =
    if page = 0 then acc
    else begin
      let b = Pager.read t.pager ~core page in
      let acc = ref acc in
      for i = 0 to nkeys b - 1 do
        acc := f !acc (lkey t b i) (lval t b i)
      done;
      walk (lnext b) !acc
    end
  in
  walk (leftmost t.root) acc

let keys t ~core = List.rev (fold t ~core (fun acc k _ -> k :: acc) [])
