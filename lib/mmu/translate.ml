exception Page_fault = Page_table.Page_fault
exception Ept_violation = Ept.Ept_violation

type access = { kind : Sky_sim.Memsys.kind; write : bool }

let data_read = { kind = Sky_sim.Memsys.Data; write = false }
let data_write = { kind = Sky_sim.Memsys.Data; write = true }
let fetch = { kind = Sky_sim.Memsys.Insn; write = false }

(* Translate a guest-physical address through the current EPT, charging
   one cached data access per EPT entry read. Identity when the vCPU is
   not virtualized.

   The EPT walk cache memoizes gpn → hpn per EPT root (the hardware
   nested-walk cache): a hit skips the EPT walk and its per-entry
   memory accesses. Keyed by the EPT root's host-physical address, it
   is naturally correct across VMFUNC EPTP switches and guest-side
   flushes; EPT mutations invalidate it through the global epoch. *)
let ept_translate vcpu mem gpa =
  match vcpu.Vcpu.vmcs with
  | None -> gpa
  | Some vmcs ->
    let root_pa = Vmcs.current_eptp vmcs in
    let cpu = Vcpu.cpu vcpu in
    let walk_charged () =
      match Ept.walk ~mem ~root_pa ~gpa with
      | Ok { Ept.hpa; entries_read } ->
        List.iter
          (fun epa -> Sky_sim.Memsys.access cpu Sky_sim.Memsys.Data epa)
          entries_read;
        hpa
      | Error f -> raise (Ept.Ept_violation f)
    in
    if not (Sky_sim.Accel.is_enabled ()) then walk_charged ()
    else begin
      let wc = Sky_sim.Cpu.ept_walk_cache cpu in
      let pmu = Sky_sim.Cpu.pmu cpu in
      let gpn = gpa lsr 12 in
      match Sky_sim.Psc.lookup wc ~asid:root_pa ~key:gpn with
      | Some hpn ->
        Sky_sim.Pmu.count pmu Sky_sim.Pmu.Ept_walk_cache_hit;
        (hpn lsl 12) lor (gpa land 0xfff)
      | None ->
        Sky_sim.Pmu.count pmu Sky_sim.Pmu.Ept_walk_cache_miss;
        let hpa = walk_charged () in
        Sky_sim.Psc.insert wc ~asid:root_pa ~key:gpn (hpa lsr 12);
        hpa
    end

(* Nested guest walk: each guest table page is located through the EPT,
   then the entry is read with a cached access.

   The paging-structure caches (PML4E/PDPTE/PDE) let the walk resume at
   the deepest level whose next-table pointer is cached for this ASID
   and VA prefix — a PDE hit turns a 4-level nested walk into a single
   leaf read. Probes charge no cycles (they model on-core lookup
   structures); only the remaining entry reads and their EPT
   translations go through the memory system. Each level read on the
   way down is installed, mirroring how hardware fills these caches. *)
let guest_walk vcpu mem ~va =
  let cpu = Vcpu.cpu vcpu in
  (* Fault site "mmu.walk": a spurious EPT violation (or crash) injected
     into the nested walk — only fires inside a mediated-call scope. *)
  if Sky_faults.Fault.is_enabled () then
    Sky_faults.Fault.inject ~core:(Sky_sim.Cpu.id cpu) "mmu.walk";
  let accel = Sky_sim.Accel.is_enabled () in
  let asid = Vcpu.asid vcpu in
  let psc_for level =
    (* The cache holding pointers to tables at [level]. *)
    match level with
    | 0 -> Sky_sim.Cpu.psc_pde cpu
    | 1 -> Sky_sim.Cpu.psc_pdpte cpu
    | _ -> Sky_sim.Cpu.psc_pml4e cpu
  in
  let key_for level = va lsr (21 + (9 * level)) in
  let rec go table_gpa level =
    let table_hpa = ept_translate vcpu mem table_gpa in
    let index = Page_table.va_index ~level va in
    let epa = table_hpa + (index * 8) in
    Sky_sim.Memsys.access cpu Sky_sim.Memsys.Data epa;
    let e = Sky_mem.Phys_mem.read_u64 mem epa in
    if not (Pte.is_present e) then
      raise (Page_table.Page_fault (Page_table.Not_present va))
    else
      let pa, flags = Pte.decode e in
      if level = 0 then (pa, flags)
      else begin
        if accel then Sky_sim.Psc.insert (psc_for (level - 1)) ~asid
            ~key:(key_for (level - 1)) pa;
        go pa (level - 1)
      end
  in
  if not accel then go vcpu.Vcpu.cr3 3
  else begin
    let pmu = Sky_sim.Cpu.pmu cpu in
    match Sky_sim.Psc.lookup (psc_for 0) ~asid ~key:(key_for 0) with
    | Some pt ->
      Sky_sim.Pmu.count pmu Sky_sim.Pmu.Psc_hit;
      go pt 0
    | None -> (
      match Sky_sim.Psc.lookup (psc_for 1) ~asid ~key:(key_for 1) with
      | Some pd ->
        Sky_sim.Pmu.count pmu Sky_sim.Pmu.Psc_hit;
        go pd 1
      | None -> (
        match Sky_sim.Psc.lookup (psc_for 2) ~asid ~key:(key_for 2) with
        | Some pdpt ->
          Sky_sim.Pmu.count pmu Sky_sim.Pmu.Psc_hit;
          go pdpt 2
        | None ->
          Sky_sim.Pmu.count pmu Sky_sim.Pmu.Psc_miss;
          go vcpu.Vcpu.cr3 3))
  end

let check_perms vcpu acc ~va (flags : Pte.flags) =
  let user_mode = vcpu.Vcpu.mode = Vcpu.User in
  if user_mode && not flags.Pte.user then
    raise (Page_table.Page_fault (Page_table.Protection va));
  if acc.write && not flags.Pte.writable then
    raise (Page_table.Page_fault (Page_table.Protection va));
  if acc.kind = Sky_sim.Memsys.Insn && flags.Pte.nx then
    raise (Page_table.Page_fault (Page_table.Protection va))

(* A TLB entry carries the flattened leaf permissions; reconstruct the
   flags view a hit checks against. *)
let serve_hit vcpu acc ~va (entry : Sky_sim.Tlb.entry) =
  let flags =
    {
      Pte.present = true;
      writable = entry.Sky_sim.Tlb.writable;
      user = entry.Sky_sim.Tlb.user;
      huge = false;
      nx = false;
    }
  in
  check_perms vcpu acc ~va flags;
  (entry.Sky_sim.Tlb.ppn lsl 12) lor (va land 0xfff)

let translate vcpu mem acc ~va =
  let cpu = Vcpu.cpu vcpu in
  let insn = acc.kind = Sky_sim.Memsys.Insn in
  let tlb = if insn then Sky_sim.Cpu.itlb cpu else Sky_sim.Cpu.dtlb cpu in
  let vpn = va lsr 12 in
  let asid = Vcpu.asid vcpu in
  let refill () =
    let core = Sky_sim.Cpu.id cpu in
    Sky_trace.Trace.span ~core ~cat:"walk" "tlb.refill" @@ fun () ->
    let c0 = Sky_sim.Cpu.cycles cpu in
    let page_gpa, flags = guest_walk vcpu mem ~va in
    check_perms vcpu acc ~va flags;
    let page_hpa = ept_translate vcpu mem page_gpa in
    Sky_sim.Tlb.insert tlb ~asid ~vpn
      {
        Sky_sim.Tlb.ppn = page_hpa lsr 12;
        page_shift = 12;
        writable = flags.Pte.writable;
        user = flags.Pte.user;
      };
    Sky_sim.Pmu.add (Sky_sim.Cpu.pmu cpu) Sky_sim.Pmu.Walk_cycles
      (Sky_sim.Cpu.cycles cpu - c0);
    page_hpa lor (va land 0xfff)
  in
  if not (Sky_sim.Accel.is_enabled ()) then
    match Sky_sim.Tlb.lookup tlb ~asid ~vpn with
    | Some entry -> serve_hit vcpu acc ~va entry
    | None -> refill ()
  else begin
    (* Host fast path: revalidate the hot line remembered for this
       (core, side, vpn). Success is observably identical to a TLB hit
       (same counters, LRU and zero charged cycles) but skips the set
       scan and this function's setup on the OCaml side. *)
    let line = Sky_sim.Memsys.Hotline.line_for ~core:(Sky_sim.Cpu.id cpu) ~insn ~vpn in
    match Sky_sim.Memsys.Hotline.probe line ~tlb ~asid ~vpn with
    | Some entry ->
      Sky_sim.Pmu.count (Sky_sim.Cpu.pmu cpu) Sky_sim.Pmu.Hot_line_hit;
      serve_hit vcpu acc ~va entry
    | None -> (
      match Sky_sim.Tlb.lookup_slot tlb ~asid ~vpn with
      | Some slot ->
        Sky_sim.Memsys.Hotline.record line ~tlb ~slot ~asid ~vpn;
        serve_hit vcpu acc ~va (Sky_sim.Tlb.slot_entry slot)
      | None -> refill ())
  end

let accessed vcpu mem acc ~va =
  let hpa = translate vcpu mem acc ~va in
  Sky_sim.Memsys.access (Vcpu.cpu vcpu) acc.kind hpa;
  hpa

let read_u8 vcpu mem ~va = Sky_mem.Phys_mem.read_u8 mem (accessed vcpu mem data_read ~va)

let write_u8 vcpu mem ~va v =
  Sky_mem.Phys_mem.write_u8 mem (accessed vcpu mem data_write ~va) v

let read_u64 vcpu mem ~va =
  Sky_mem.Phys_mem.read_u64 mem (accessed vcpu mem data_read ~va)

let write_u64 vcpu mem ~va v =
  Sky_mem.Phys_mem.write_u64 mem (accessed vcpu mem data_write ~va) v

(* Iterate a virtual range page by page, giving [f] the HPA and length of
   each in-page chunk, charging one cached access per 64-byte line. *)
let iter_range vcpu mem acc ~va ~len f =
  let cpu = Vcpu.cpu vcpu in
  let rec go va off remaining =
    if remaining > 0 then begin
      let in_page = 4096 - (va land 0xfff) in
      let n = min remaining in_page in
      let hpa = translate vcpu mem acc ~va in
      Sky_sim.Memsys.touch_range cpu acc.kind ~pa:hpa ~len:n;
      f ~hpa ~off ~len:n;
      go (va + n) (off + n) (remaining - n)
    end
  in
  go va 0 len

let read_bytes vcpu mem ~va ~len =
  let dst = Bytes.create len in
  iter_range vcpu mem data_read ~va ~len (fun ~hpa ~off ~len ->
      Sky_mem.Phys_mem.blit_to mem ~src_pa:hpa ~dst ~dst_off:off ~len);
  dst

let write_bytes vcpu mem ~va src =
  iter_range vcpu mem data_write ~va ~len:(Bytes.length src)
    (fun ~hpa ~off ~len ->
      Sky_mem.Phys_mem.blit_from mem ~src ~src_off:off ~dst_pa:hpa ~len)

let touch vcpu mem acc ~va ~len =
  if len > 0 then
    iter_range vcpu mem acc ~va ~len (fun ~hpa:_ ~off:_ ~len:_ -> ())
