let frame_size = 4096
let frame_shift = 12

type t = {
  nframes : int;
  frames : bytes option array;
  mutable touched : int;
}

let create ~frames =
  if frames <= 0 then invalid_arg "Phys_mem.create: frames <= 0";
  { nframes = frames; frames = Array.make frames None; touched = 0 }

let size_bytes t = t.nframes * frame_size
let frames t = t.nframes
let frame_of_addr pa = pa lsr frame_shift
let addr_of_frame f = f lsl frame_shift

let get_frame t f =
  if f < 0 || f >= t.nframes then
    invalid_arg (Printf.sprintf "Phys_mem: frame %d out of range" f);
  match t.frames.(f) with
  | Some b -> b
  | None ->
    let b = Bytes.make frame_size '\000' in
    t.frames.(f) <- Some b;
    t.touched <- t.touched + 1;
    b

let check_range t pa len =
  if pa < 0 || len < 0 || pa + len > size_bytes t then
    invalid_arg
      (Printf.sprintf "Phys_mem: access [%#x, +%d) out of range" pa len)

let read_u8 t pa =
  check_range t pa 1;
  let b = get_frame t (frame_of_addr pa) in
  Char.code (Bytes.get b (pa land (frame_size - 1)))

let write_u8 t pa v =
  check_range t pa 1;
  let b = get_frame t (frame_of_addr pa) in
  Bytes.set b (pa land (frame_size - 1)) (Char.chr (v land 0xff))

let aligned pa n = pa land (n - 1) = 0

let read_u16 t pa =
  check_range t pa 2;
  if aligned pa 2 then
    let b = get_frame t (frame_of_addr pa) in
    Bytes.get_uint16_le b (pa land (frame_size - 1))
  else read_u8 t pa lor (read_u8 t (pa + 1) lsl 8)

let write_u16 t pa v =
  check_range t pa 2;
  if aligned pa 2 then
    let b = get_frame t (frame_of_addr pa) in
    Bytes.set_uint16_le b (pa land (frame_size - 1)) (v land 0xffff)
  else begin
    write_u8 t pa v;
    write_u8 t (pa + 1) (v lsr 8)
  end

let read_u32 t pa =
  check_range t pa 4;
  if aligned pa 4 then
    let b = get_frame t (frame_of_addr pa) in
    Int32.to_int (Bytes.get_int32_le b (pa land (frame_size - 1))) land 0xffffffff
  else read_u16 t pa lor (read_u16 t (pa + 2) lsl 16)

let write_u32 t pa v =
  check_range t pa 4;
  if aligned pa 4 then
    let b = get_frame t (frame_of_addr pa) in
    Bytes.set_int32_le b (pa land (frame_size - 1)) (Int32.of_int v)
  else begin
    write_u16 t pa v;
    write_u16 t (pa + 2) (v lsr 16)
  end

let read_u64 t pa =
  check_range t pa 8;
  if not (aligned pa 8) then
    invalid_arg (Printf.sprintf "Phys_mem.read_u64: unaligned %#x" pa);
  let b = get_frame t (frame_of_addr pa) in
  Bytes.get_int64_le b (pa land (frame_size - 1))

let write_u64 t pa v =
  check_range t pa 8;
  if not (aligned pa 8) then
    invalid_arg (Printf.sprintf "Phys_mem.write_u64: unaligned %#x" pa);
  let b = get_frame t (frame_of_addr pa) in
  Bytes.set_int64_le b (pa land (frame_size - 1)) v

let blit_to t ~src_pa ~dst ~dst_off ~len =
  check_range t src_pa len;
  let rec go pa off remaining =
    if remaining > 0 then begin
      let b = get_frame t (frame_of_addr pa) in
      let in_frame = pa land (frame_size - 1) in
      let n = min remaining (frame_size - in_frame) in
      Bytes.blit b in_frame dst off n;
      go (pa + n) (off + n) (remaining - n)
    end
  in
  go src_pa dst_off len

let blit_from t ~src ~src_off ~dst_pa ~len =
  check_range t dst_pa len;
  let rec go pa off remaining =
    if remaining > 0 then begin
      let b = get_frame t (frame_of_addr pa) in
      let in_frame = pa land (frame_size - 1) in
      let n = min remaining (frame_size - in_frame) in
      Bytes.blit src off b in_frame n;
      go (pa + n) (off + n) (remaining - n)
    end
  in
  go dst_pa src_off len

let read_bytes t pa len =
  let dst = Bytes.create len in
  blit_to t ~src_pa:pa ~dst ~dst_off:0 ~len;
  dst

let write_bytes t pa src =
  blit_from t ~src ~src_off:0 ~dst_pa:pa ~len:(Bytes.length src)

let zero_frame t f =
  match t.frames.(f) with
  | None -> ()
  | Some b -> Bytes.fill b 0 frame_size '\000'

let touched_frames t = t.touched
