(** End-to-end web-serving stack: load generator → RSS NIC → N skyhttpd
    workers (one per core) → KV + xv6fs backends, with the
    worker→backend hop over SkyBridge direct calls or the baseline
    kernel's synchronous IPC (the slowpath variant).

    Two front ends share the assembly: {!build} (closed-loop
    {!Loadgen}) and {!build_open} (the {b overload} stack — open-loop
    Poisson arrivals, admission control, deadline propagation, retry
    budgets and batched backend crossings). *)

type transport = Ipc_slowpath | Skybridge

val transport_name : transport -> string

type t

val default_conns : int
val default_requests_per_conn : int
val rtt : int

(** {2 Stack pieces} — shared with the composed service-mesh scenario
    ({!Sky_experiments.Exp_mesh} wires the same backends under a
    different worker/queue topology). *)

val kv_backend :
  Sky_ukernel.Kernel.t -> Sky_kvstore.Kv_server.t -> Sky_kernels.Ipc.handler
(** The KV store's 'I'/'Q'/'B' wire handler, closed over a freshly
    allocated instruction working set (so each server generation
    pollutes the caches like a real process would). 'B' carries a whole
    batch of operations in one crossing. *)

val binding_of_calls :
  ?batch:bool ->
  call_kv:(core:int -> bytes -> bytes) ->
  call_fs:(core:int -> bytes -> bytes) ->
  revoke:(core:int -> unit) ->
  rebind:(core:int -> unit) ->
  unit ->
  Httpd.binding
(** Lift raw wire calls into a worker's typed {!Httpd.binding} (the FS
    side goes through {!Sky_xv6fs.Fs_iface.over_call}). [batch]
    (default false) fills {!Httpd.binding.kv_batch} with the 'B'-opcode
    single-crossing path. *)

val provision_files : Sky_xv6fs.Fs.t -> seed:int -> (string * bytes) array
(** Create the static files the load mix reads (deterministic printable
    contents) through the server-side FS handle; returns name/content
    pairs for the load generator's response validation. *)

val tenant_keys :
  seed:int -> tenants:int -> keys_per_tenant:int -> (string * bytes) array array
(** Deterministic per-tenant warm keyspace for the open-loop generator
    ([build_open] provisions it server-side before traffic starts). *)

val build :
  ?variant:Sky_ukernel.Config.variant ->
  ?seed:int ->
  ?cores:int ->
  ?conns:int ->
  ?requests_per_conn:int ->
  ?mix:Loadgen.mix ->
  ?disk_blocks:int ->
  workers:int ->
  transport:transport ->
  unit ->
  t
(** Builds the machine, kernel, backends (KV store, xv6fs over a RAM
    disk), NIC with [workers] queues, [workers] worker processes bound
    to the backends over [transport], and the load generator.
    SkyBridge workers call through {!Sky_core.Retry.call}, so injected
    backend crashes recover transparently. *)

val run : t -> unit
(** Drive the whole stack by virtual time until every connection has
    been answered. *)

type session
(** Resumable form of {!run}, for the quantum scheduler. *)

val start_run : t -> session
(** Arm the load generator and capture the start clock. *)

val advance : t -> session -> until:int -> [ `Paused | `Done ]
(** Drive the stack until every live core's clock reaches [until]
    ([`Paused]) or the workload drains ([`Done], at which point
    {!elapsed} and {!throughput} are valid). Chunked advances replay
    exactly the step sequence of one {!run}. *)

val throughput : t -> float
(** Requests per simulated second, over the busiest worker core's
    elapsed cycles. *)

val elapsed : t -> int
val loadgen : t -> Loadgen.t
val httpd : t -> Httpd.t
val nic : t -> Nic.t
val kernel : t -> Sky_ukernel.Kernel.t
val subkernel : t -> Sky_core.Subkernel.t option

val mesh : t -> Sky_mesh.Mesh.t option
(** The service mesh routing worker→backend calls on the SkyBridge
    path ([kv://], [fs://], [blk://] plus the name service itself). *)

val retry_stats : t -> Sky_core.Retry.stats option

val fs : t -> Sky_xv6fs.Fs.t
(** The mounted xv6fs backend (post-recovery handle on the SkyBridge
    path) — for fsck after a fault storm. *)

val worker_procs : t -> Sky_ukernel.Proc.t array
(** The worker processes, in core order — for per-process census
    (e.g. {!Sky_core.Subkernel.process_evictions}). *)

(** {2 Open-loop (overload) front end} *)

type open_t = {
  o_machine : Sky_sim.Machine.t;
  o_kernel : Sky_ukernel.Kernel.t;
  o_transport : transport;
  o_workers : int;
  o_nic : Nic.t;
  o_httpd : Httpd.t;
  o_ol : Openloop.t;
  o_sb : Sky_core.Subkernel.t option;
  o_mesh : Sky_mesh.Mesh.t option;
  o_rstats : Sky_core.Retry.stats option;
  o_budget : Sky_core.Retry.budget option;
  o_worker_procs : Sky_ukernel.Proc.t array;
  o_fs_cell : Sky_xv6fs.Fs.t ref;
  mutable o_elapsed : int;
}

val build_open :
  ?variant:Sky_ukernel.Config.variant ->
  ?seed:int ->
  ?requests_per_conn:int ->
  ?mix:Loadgen.mix ->
  ?disk_blocks:int ->
  ?max_eptp:int ->
  ?max_bindings:int ->
  ?retry_budget:bool ->
  ?admission:Httpd.admission ->
  ?ttl:int ->
  ?keys_per_tenant:int ->
  tenants:int ->
  mean_gap:int ->
  total:int ->
  workers:int ->
  transport:transport ->
  unit ->
  open_t
(** The overload stack: same backends and bindings as {!build}, but fed
    by an {!Openloop} Poisson generator ([mean_gap] cycles between
    arrivals, [total] arrivals, spread over [tenants] pipelined
    connections) pumped by one extra core at index [workers]. [ttl]
    stamps a relative deadline on every request wire-side; [admission]
    configures the server's queue bounds / default deadline / batching;
    [retry_budget] (default true) bounds crash-recovery retries with a
    token bucket so retries cannot amplify overload; [max_eptp] /
    [max_bindings] throttle the SkyBridge translation-table budgets for
    eviction studies. Tenant warm keys are provisioned server-side
    before traffic starts. *)

val run_open : open_t -> unit
(** Drive workers + the arrival pump by virtual time until every
    arrival has been offered and resolved. *)
