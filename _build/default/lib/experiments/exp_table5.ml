(** Table 5: virtualization overhead of the Rootkernel — YCSB-A on seL4
    native vs running above the Rootkernel *without* using SkyBridge,
    plus the number of VM exits (zero, by design: §4.1). *)

open Sky_harness
open Sky_ukernel

let records = 800
let ops = 40

let measure ~rootkernel ~threads =
  let stack = Stack.build ~variant:Config.Sel4 ~transport:(Stack.Ipc { st = false }) () in
  let root =
    if rootkernel then
      (* Boot the Rootkernel beneath the running system; no process
         registers into SkyBridge, so the whole workload runs virtualized
         through the base EPT. *)
      Some (Sky_core.Subkernel.rootkernel (Sky_core.Subkernel.init stack.Stack.kernel))
    else None
  in
  let wl =
    Sky_ycsb.Workload.create stack.Stack.kernel stack.Stack.db ~records
      ~value_size:100
  in
  Sky_ycsb.Workload.load wl ~core:0;
  Stack.spread_client stack ~threads;
  let tput = Sky_ycsb.Workload.run wl ~kind:Sky_ycsb.Workload.A ~threads ~ops_per_thread:ops in
  let exits = Option.fold ~none:0 ~some:Sky_core.Rootkernel.total_vm_exits root in
  (tput, exits)

let run () =
  let n1, _ = measure ~rootkernel:false ~threads:1 in
  let v1, e1 = measure ~rootkernel:true ~threads:1 in
  let n8, _ = measure ~rootkernel:false ~threads:8 in
  let v8, e8 = measure ~rootkernel:true ~threads:8 in
  Tbl.make
    ~title:"Table 5: Rootkernel virtualization overhead (YCSB-A ops/s)"
    ~header:[ "workload"; "native"; "on Rootkernel"; "overhead"; "#VM exits" ]
    ~notes:
      [
        "paper: 9745.15 vs 9694.49 (1 thread), 1465.95 vs 1411.64 (8 \
         threads), 0 VM exits in both";
      ]
    [
      [
        "YCSB-A 1 thread"; Tbl.fmt_ops n1; Tbl.fmt_ops v1;
        Printf.sprintf "%.2f%%" ((n1 -. v1) /. n1 *. 100.0); Tbl.fmt_int e1;
      ];
      [
        "YCSB-A 8 threads"; Tbl.fmt_ops n8; Tbl.fmt_ops v8;
        Printf.sprintf "%.2f%%" ((n8 -. v8) /. n8 *. 100.0); Tbl.fmt_int e8;
      ];
    ]
