(** Performance monitoring unit: per-core event counters.

    These are the counters read for Table 1 ("the pollution of processor
    structures") plus counters the harness uses (IPIs, VM exits, IPC
    counts). Cache and TLB miss counters are derived from {!Cache} /
    {!Tlb} statistics by {!Cpu.footprint}; this module holds the events
    that are not attached to a particular structure. *)

type event =
  | Ipi_sent
  | Vm_exit
  | Vmfunc_exec
  | Syscall_exec
  | Cr3_write
  | Ipc_roundtrip
  | Instruction

let n_events = 7

let index = function
  | Ipi_sent -> 0
  | Vm_exit -> 1
  | Vmfunc_exec -> 2
  | Syscall_exec -> 3
  | Cr3_write -> 4
  | Ipc_roundtrip -> 5
  | Instruction -> 6

let name = function
  | Ipi_sent -> "ipi_sent"
  | Vm_exit -> "vm_exit"
  | Vmfunc_exec -> "vmfunc"
  | Syscall_exec -> "syscall"
  | Cr3_write -> "cr3_write"
  | Ipc_roundtrip -> "ipc_roundtrip"
  | Instruction -> "instruction"

type t = { counts : int array }

let create () = { counts = Array.make n_events 0 }
let count t ev = t.counts.(index ev) <- t.counts.(index ev) + 1
let add t ev n = t.counts.(index ev) <- t.counts.(index ev) + n
let read t ev = t.counts.(index ev)
let reset t = Array.fill t.counts 0 n_events 0
