(** Request-mix, expected-result and flow-placement machinery shared by
    the closed-loop ({!Loadgen}) and open-loop ({!Openloop}) load
    generators. Pure wire-side helpers — no simulated-core cycles. *)

type mix = { m_kv_get : int; m_kv_put : int; m_fs_get : int }
(** Relative request-type weights. *)

val default_mix : mix

type expect =
  | Stored  (** a PUT: the body must be ["stored"] *)
  | Value of bytes  (** a KV GET: the value previously stored *)
  | File of bytes  (** an FS GET: the provisioned file contents *)

type verdict =
  | Good  (** 200 with the expected body *)
  | Shed  (** 503 — admission control refused the request *)
  | Unservable  (** 403 — denied by every receiver (terminal) *)
  | Corrupt  (** anything else: lost, duplicated or corrupted *)

val value_bytes : Sky_sim.Rng.t -> int -> int -> bytes
(** [value_bytes rng flow n] — deterministic printable value for flow
    [flow]'s [n]-th request. *)

val body_matches : expect -> Http.response -> bool

val classify : expect -> Http.response -> verdict
(** Status-aware classification: sheds and terminal denials are counted
    apart from corruption, so overload runs can gate "zero lost or
    corrupt {e admitted} requests". *)

val place_flows : Nic.t -> conns:int -> int array
(** RSS-aware placement: connection [i] gets a flow id whose hash lands
    on queue [i mod n_queues]. *)
