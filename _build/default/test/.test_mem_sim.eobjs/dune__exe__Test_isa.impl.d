test/test_isa.ml: Alcotest Bytes Char Decode Encode Gen Insn Int64 Interp List Printf QCheck QCheck_alcotest Reg Sky_isa String
