(** Overload: open-loop load, admission control, and chaos under
    saturation.

    The closed-loop web benchmark ({!Exp_web}) can never overload the
    server — each connection waits for its response, so offered load
    self-throttles to the service rate. This experiment measures what
    happens when it doesn't:

    {ol
    {- {b Saturation probe}: one closed-loop run fixes the service
       rate; its mean completion gap becomes the unit for offered
       load.}
    {- {b Open-loop sweep}: Poisson arrivals at 0.5×, 1×, 1.5× and 2×
       the saturation rate drive the admission-controlled server
       (bounded endpoint queues shedding typed 503s at demux, request
       TTLs propagated as backend call timeouts, batched KV crossings
       when queues run deep). Goodput, shed rate, and p50/p99/p99.9 of
       {e admitted} requests are reported per point; latency is
       measured arrival→response (coordinated-omission-free).}
    {- {b Chaos at 2×}: the same 2× point re-runs with a fault storm —
       worker crashes and hangs, KV and FS backend crashes, a
       name-service crash — layered on top of the overload. Retries
       are bounded by a token-bucket budget so recovery cannot amplify
       the overload; the gates require zero lost-or-corrupt admitted
       requests and a clean post-storm audit + fsck.}
    {- {b Tenant scale}: hundreds of short-lived client processes bind
       and call under small EPTP-list and global-binding budgets,
       driving per-process LRU eviction and whole-process slot
       eviction; evicted tenants must degrade to slowpath IPC, never
       fail.}}

    Everything is seeded; the JSON is byte-deterministic, so CI diffs
    two same-seed runs. *)

open Sky_net
open Sky_harness
module Fault = Sky_faults.Fault
module Subkernel = Sky_core.Subkernel
module Retry = Sky_core.Retry
module Histogram = Sky_trace.Histogram

let mults = [ 0.5; 1.0; 1.5; 2.0 ]
let default_seed = 42

type point = {
  p_mult : float;  (** offered load as a multiple of the saturation rate *)
  p_mean_gap : int;
  p_offered : int;
  p_ok : int;  (** goodput: admitted requests answered correctly *)
  p_shed : int;  (** typed 503s (queue-full + deadline-blown) *)
  p_shed_wire : int;  (** RX-ring-full drops at the NIC *)
  p_unservable : int;  (** terminal 403s *)
  p_corrupt : int;  (** must be zero *)
  p_accounted : bool;  (** offered = ok + shed + shed_wire + errors *)
  p_goodput : float;  (** goodput requests per simulated second *)
  p_p50 : int;
  p_p99 : int;
  p_p999 : int;  (** p99.9 latency of admitted requests, cycles *)
  p_churns : int;
  p_batches : int;
  p_batched_ops : int;
  p_shed_queue : int;
  p_shed_expired : int;
  p_elapsed : int;
}

type chaos = {
  c_point : point;
  c_injected : (string * int) list;
  c_recovered : int;  (** calls that succeeded after >= 1 retry *)
  c_restarts : int;
  c_degraded : int;  (** calls served via the slowpath fallback *)
  c_lost_calls : int;  (** backend calls that gave up (surface as 503s) *)
  c_budget_withdrawn : int;
  c_budget_refused : int;
  c_audit : int;  (** post-storm mapping-audit violations — must be 0 *)
  c_fsck : int;  (** post-storm fsck problems — must be 0 *)
}

type tenant_phase = {
  t_tenants : int;
  t_calls : int;
  t_fast : int;  (** served by VMFUNC direct calls *)
  t_slow : int;  (** served by slowpath IPC after slot eviction *)
  t_evictions : int;  (** per-process EPTP-list LRU evictions *)
  t_slot_evictions : int;  (** global-budget whole-process retirements *)
  t_lost : int;  (** wrong or failed replies — must be zero *)
  t_live_bindings : int;
}

type result = {
  r_seed : int;
  r_workers : int;
  r_tenants : int;
  r_total : int;
  r_sat_gap : int;  (** closed-loop mean completion gap, cycles/request *)
  r_sat_tput : float;  (** closed-loop saturation throughput, req/s *)
  r_ttl : int;
  r_queue_cap : int;
  r_batch_max : int;
  r_points : point list;
  r_chaos : chaos;
  r_tenant : tenant_phase;
}

(* ---- phase 1: saturation probe (closed loop) ---- *)

let saturation ~seed ~workers =
  let conns = 16 * workers in
  let t =
    Web.build ~seed ~cores:workers ~conns ~requests_per_conn:6 ~workers
      ~transport:Web.Skybridge ()
  in
  Web.run t;
  let responses = Loadgen.responses (Web.loadgen t) in
  (Int.max 1 (Web.elapsed t / Int.max 1 responses), Web.throughput t)

(* ---- phases 2 & 3: the open-loop sweep ---- *)

let point_of ~mult ~mean_gap (o : Web.open_t) =
  let ol = o.Web.o_ol in
  let httpd = o.Web.o_httpd in
  let offered = Openloop.offered ol in
  let ok = Openloop.ok ol in
  let accounted =
    Openloop.finished ol
    && offered
       = ok + Openloop.shed ol + Openloop.shed_wire ol
         + Openloop.unservable ol + Openloop.corrupt ol
  in
  let h = Openloop.latencies ol in
  {
    p_mult = mult;
    p_mean_gap = mean_gap;
    p_offered = offered;
    p_ok = ok;
    p_shed = Openloop.shed ol;
    p_shed_wire = Openloop.shed_wire ol;
    p_unservable = Openloop.unservable ol;
    p_corrupt = Openloop.corrupt ol;
    p_accounted = accounted;
    p_goodput = Sky_sim.Costs.ops_per_sec ~ops:ok ~cycles:(Int.max 1 o.Web.o_elapsed);
    p_p50 = Histogram.p50 h;
    p_p99 = Histogram.p99 h;
    p_p999 = Histogram.p999 h;
    p_churns = Openloop.churns ol;
    p_batches = Httpd.batches httpd;
    p_batched_ops = Httpd.batched_ops httpd;
    p_shed_queue = Httpd.shed_queue httpd;
    p_shed_expired = Httpd.shed_expired httpd;
    p_elapsed = o.Web.o_elapsed;
  }

let build_point ~seed ~workers ~tenants ~total ~ttl ~queue_cap ~batch_max
    ~mean_gap =
  Web.build_open ~seed ~tenants ~mean_gap ~total ~workers
    ~admission:
      {
        Httpd.a_queue_cap = Some queue_cap;
        a_default_ttl = Some ttl;
        a_batch_max = batch_max;
      }
    ~ttl ~transport:Web.Skybridge ()

(* The 2×-overload fault storm: worker crashes and a hang, both
   backends, and the name service (binding churn from the first worker
   crash invalidates the resolution caches, so the re-resolve storm
   actually reaches nameserv). Armed after build: boot and provisioning
   run fault-free. *)
let storm ~seed ~total =
  Fault.reset ~seed ();
  let period = Int.max 20 (total / 12) in
  Fault.arm ~budget:3 ~site:Httpd.fault_site ~kind:Fault.Crash
    (Fault.Every period);
  (* Batching shrinks the per-site hit counts (one kvstore dispatch per
     crossing), so the backend triggers sit well below the admitted
     request count. *)
  Fault.arm ~budget:1 ~site:Httpd.fault_site ~kind:Fault.Hang
    (Fault.At_hit (Int.max 30 (total / 10)));
  Fault.arm ~budget:2 ~site:"server.kvstore" ~kind:Fault.Crash
    (Fault.At_hit (Int.max 25 (total / 10)));
  Fault.arm ~budget:1 ~site:"server.xv6fs" ~kind:Fault.Crash (Fault.At_hit 3);
  Fault.arm ~budget:1 ~site:Sky_mesh.Mesh.fault_site ~kind:Fault.Crash
    (Fault.At_hit 2)

let run_chaos ~seed ~workers ~tenants ~total ~ttl ~queue_cap ~batch_max
    ~mean_gap =
  let o =
    build_point ~seed ~workers ~tenants ~total ~ttl ~queue_cap ~batch_max
      ~mean_gap
  in
  storm ~seed ~total;
  Web.run_open o;
  Fault.disable ();
  let st = match o.Web.o_rstats with Some s -> s | None -> assert false in
  let sb = match o.Web.o_sb with Some sb -> sb | None -> assert false in
  let budget = match o.Web.o_budget with Some b -> b | None -> assert false in
  let fsck = Sky_xv6fs.Fsck.check !(o.Web.o_fs_cell) ~core:0 in
  {
    c_point = point_of ~mult:2.0 ~mean_gap o;
    c_injected = Fault.fired_counts ();
    c_recovered = st.Retry.retried_ok;
    c_restarts = st.Retry.restarts + Httpd.restarts o.Web.o_httpd;
    c_degraded = st.Retry.degraded;
    c_lost_calls = st.Retry.lost;
    c_budget_withdrawn = Retry.budget_withdrawn budget;
    c_budget_refused = Retry.budget_refused budget;
    c_audit = List.length (Subkernel.audit sb);
    c_fsck = List.length fsck;
  }

(* ---- phase 4: tenant scale (EPTP + global binding budgets) ---- *)

let tenant_code = Sky_isa.Encode.encode_all [ Sky_isa.Insn.Nop; Sky_isa.Insn.Ret ]

let run_tenants ~seed ~tenants () =
  let open Sky_ukernel in
  let machine = Sky_sim.Machine.create ~cores:2 ~mem_mib:256 () in
  let k = Kernel.create machine in
  (* max_eptp 2: slot 0 (own EPT) + 1 binding fit, so a tenant touching
     its 2nd and 3rd service thrashes the per-process LRU. max_bindings
     caps live fast-path bindings machine-wide: once the fleet exceeds
     it, the least-recently-calling tenants are retired to slowpath. *)
  let sb = Subkernel.init ~seed ~max_eptp:2 ~max_bindings:24 k in
  let mk_server name tag =
    let p = Kernel.spawn k ~name in
    ignore (Kernel.map_code k p tenant_code);
    Subkernel.register_server sb p ~connection_count:2 (fun ~core:_ msg ->
        let r = Bytes.copy msg in
        Bytes.set r 0 tag;
        r)
  in
  let sids = [ mk_server "svc0" 'a'; mk_server "svc1" 'b'; mk_server "svc2" 'c' ] in
  let tags = [ 'a'; 'b'; 'c' ] in
  let calls = ref 0 and fast = ref 0 and slow = ref 0 and lost = ref 0 in
  let do_call p i sid tag =
    incr calls;
    let msg = Bytes.of_string (Printf.sprintf "_t%d-s%d" i sid) in
    let want =
      let w = Bytes.copy msg in
      Bytes.set w 0 tag;
      w
    in
    match Subkernel.call sb ~core:0 ~client:p ~server_id:sid msg with
    | Ok (r, `Direct) -> if Bytes.equal r want then incr fast else incr lost
    | Ok (r, `Slowpath) -> if Bytes.equal r want then incr slow else incr lost
    | Error _ -> incr lost
  in
  let procs =
    Array.init tenants (fun i ->
        let p = Kernel.spawn k ~name:(Printf.sprintf "tenant%d" i) in
        ignore (Kernel.map_code k p tenant_code);
        List.iter
          (fun sid -> Subkernel.register_client_to_server sb p ~server_id:sid)
          sids;
        Kernel.context_switch k ~core:0 p;
        (* A short-lived tenant's whole life: one call per service. *)
        List.iter2 (fun sid tag -> do_call p i sid tag) sids tags;
        p)
  in
  (* Revisit a sample of early tenants: their bindings were retired by
     the global budget while they were idle, so the calls must come back
     correct via slowpath IPC — degraded, not failed. *)
  let i = ref 0 in
  while !i < tenants do
    let p = procs.(!i) in
    Kernel.context_switch k ~core:0 p;
    do_call p !i (List.hd sids) (List.hd tags);
    i := !i + 16
  done;
  {
    t_tenants = tenants;
    t_calls = !calls;
    t_fast = !fast;
    t_slow = !slow;
    t_evictions = Subkernel.evictions sb;
    t_slot_evictions = Subkernel.slot_evictions sb;
    t_lost = !lost;
    t_live_bindings = Subkernel.live_bindings sb;
  }

(* ---- the full experiment ---- *)

let run_overload ?(seed = default_seed) ?(workers = 3) ?(tenants = 32)
    ?(total = 1600) ?(scale_tenants = 240) ?(queue_cap = 8) ?(batch_max = 4)
    () =
  let sat_gap, sat_tput = saturation ~seed ~workers in
  (* TTL: generous against honest queueing (the per-receiver queue bound
     times the per-worker service time, with slack for batching and
     retry backoff), tight against unbounded backlog. *)
  let ttl = 12 * queue_cap * workers * sat_gap in
  let measure mult =
    let mean_gap = Int.max 1 (int_of_float (float_of_int sat_gap /. mult)) in
    let o =
      build_point ~seed ~workers ~tenants ~total ~ttl ~queue_cap ~batch_max
        ~mean_gap
    in
    Web.run_open o;
    point_of ~mult ~mean_gap o
  in
  let points = List.map measure mults in
  let chaos =
    run_chaos ~seed ~workers ~tenants ~total ~ttl ~queue_cap ~batch_max
      ~mean_gap:(Int.max 1 (sat_gap / 2))
  in
  let tenant = run_tenants ~seed ~tenants:scale_tenants () in
  {
    r_seed = seed;
    r_workers = workers;
    r_tenants = tenants;
    r_total = total;
    r_sat_gap = sat_gap;
    r_sat_tput = sat_tput;
    r_ttl = ttl;
    r_queue_cap = queue_cap;
    r_batch_max = batch_max;
    r_points = points;
    r_chaos = chaos;
    r_tenant = tenant;
  }

(* ---- acceptance gates ---- *)

let all_points r = r.r_chaos.c_point :: r.r_points

(* Nothing vanished and nothing lied: every offered request resolved
   into exactly one bucket, and no admitted request was lost or
   corrupted — under overload AND under the storm. *)
let zero_lost r =
  List.for_all (fun p -> p.p_accounted && p.p_corrupt = 0) (all_points r)
  && r.r_tenant.t_lost = 0

let goodput_at mult r =
  match List.find_opt (fun p -> p.p_mult = mult) r.r_points with
  | Some p -> p.p_goodput
  | None -> 0.0

(* Admission control holds the line: goodput at 2× offered load stays a
   healthy fraction of the saturation throughput instead of collapsing
   under queueing and retry amplification. *)
let goodput_ratio r = goodput_at 2.0 r /. Float.max 1e-9 r.r_sat_tput

let overload_sheds r =
  match List.find_opt (fun p -> p.p_mult = 2.0) r.r_points with
  | Some p -> p.p_shed + p.p_shed_wire > 0
  | None -> false

let chaos_active r =
  List.fold_left (fun a (_, n) -> a + n) 0 r.r_chaos.c_injected >= 3
  && r.r_chaos.c_restarts > 0

let chaos_clean r = r.r_chaos.c_audit = 0 && r.r_chaos.c_fsck = 0

let tenants_evicted r =
  r.r_tenant.t_evictions > 0
  && r.r_tenant.t_slot_evictions > 0
  && r.r_tenant.t_slow > 0
  && r.r_tenant.t_fast > 0

let ok ?(floor = 0.5) r =
  zero_lost r
  && goodput_ratio r >= floor
  && overload_sheds r
  && chaos_active r && chaos_clean r && tenants_evicted r

(* ---- rendering ---- *)

let row ?(label = "") p =
  [
    (if label = "" then Printf.sprintf "%.1fx" p.p_mult else label);
    string_of_int p.p_offered;
    string_of_int p.p_ok;
    string_of_int (p.p_shed + p.p_shed_wire);
    string_of_int (p.p_unservable + p.p_corrupt);
    Tbl.fmt_ops p.p_goodput;
    Tbl.fmt_int p.p_p50;
    Tbl.fmt_int p.p_p99;
    Tbl.fmt_int p.p_p999;
    string_of_int p.p_batches;
  ]

let table r =
  Tbl.make
    ~title:
      (Printf.sprintf
         "Overload: open-loop load vs admission control (%d workers, \
          saturation %s req/s)"
         r.r_workers (Tbl.fmt_ops r.r_sat_tput))
    ~header:
      [
        "offered"; "arrivals"; "goodput"; "shed"; "errors"; "good req/s";
        "p50"; "p99"; "p99.9"; "batches";
      ]
    ~notes:
      [
        Printf.sprintf
          "admission: queue cap %d/receiver, TTL %d cycles, batch <= %d; \
           latency = arrival to response of admitted requests"
          r.r_queue_cap r.r_ttl r.r_batch_max;
        Printf.sprintf
          "chaos row: %d faults injected at 2x load; %d retries recovered, \
           %d restarts, budget %d withdrawn / %d refused, audit %d, fsck %d"
          (List.fold_left (fun a (_, n) -> a + n) 0 r.r_chaos.c_injected)
          r.r_chaos.c_recovered r.r_chaos.c_restarts
          r.r_chaos.c_budget_withdrawn r.r_chaos.c_budget_refused
          r.r_chaos.c_audit r.r_chaos.c_fsck;
        Printf.sprintf
          "tenant scale: %d procs, %d calls, %d fast / %d slowpath, %d LRU + \
           %d slot evictions, %d lost"
          r.r_tenant.t_tenants r.r_tenant.t_calls r.r_tenant.t_fast
          r.r_tenant.t_slow r.r_tenant.t_evictions
          r.r_tenant.t_slot_evictions r.r_tenant.t_lost;
      ]
    (List.map row r.r_points @ [ row ~label:"2.0x+chaos" r.r_chaos.c_point ])

let to_json r =
  let open Sky_trace.Json in
  let point p =
    Obj
      [
        ("offered_mult", Float p.p_mult);
        ("mean_gap_cycles", Int p.p_mean_gap);
        ("offered", Int p.p_offered);
        ("goodput", Int p.p_ok);
        ("shed", Int p.p_shed);
        ("shed_wire", Int p.p_shed_wire);
        ("shed_queue", Int p.p_shed_queue);
        ("shed_expired", Int p.p_shed_expired);
        ("unservable", Int p.p_unservable);
        ("corrupt", Int p.p_corrupt);
        ("accounted", Bool p.p_accounted);
        ("goodput_req_per_sec", Float p.p_goodput);
        ("p50_cycles", Int p.p_p50);
        ("p99_cycles", Int p.p_p99);
        ("p999_cycles", Int p.p_p999);
        ("conn_churns", Int p.p_churns);
        ("batches", Int p.p_batches);
        ("batched_ops", Int p.p_batched_ops);
        ("elapsed_cycles", Int p.p_elapsed);
      ]
  in
  to_string
    (Obj
       [
         ("bench", String "overload");
         ("seed", Int r.r_seed);
         ("workers", Int r.r_workers);
         ("tenants", Int r.r_tenants);
         ("arrivals", Int r.r_total);
         ("saturation_gap_cycles", Int r.r_sat_gap);
         ("saturation_req_per_sec", Float r.r_sat_tput);
         ("ttl_cycles", Int r.r_ttl);
         ("queue_cap", Int r.r_queue_cap);
         ("batch_max", Int r.r_batch_max);
         ("points", List (List.map point r.r_points));
         ( "chaos",
           Obj
             [
               ("point", point r.r_chaos.c_point);
               ( "injected",
                 Obj
                   (List.map
                      (fun (site, n) -> (site, Int n))
                      r.r_chaos.c_injected) );
               ("recovered", Int r.r_chaos.c_recovered);
               ("restarts", Int r.r_chaos.c_restarts);
               ("degraded", Int r.r_chaos.c_degraded);
               ("lost_calls", Int r.r_chaos.c_lost_calls);
               ("budget_withdrawn", Int r.r_chaos.c_budget_withdrawn);
               ("budget_refused", Int r.r_chaos.c_budget_refused);
               ("audit_violations", Int r.r_chaos.c_audit);
               ("fsck_problems", Int r.r_chaos.c_fsck);
             ] );
         ( "tenant_scale",
           Obj
             [
               ("tenants", Int r.r_tenant.t_tenants);
               ("calls", Int r.r_tenant.t_calls);
               ("fast", Int r.r_tenant.t_fast);
               ("slowpath", Int r.r_tenant.t_slow);
               ("eptp_evictions", Int r.r_tenant.t_evictions);
               ("slot_evictions", Int r.r_tenant.t_slot_evictions);
               ("lost", Int r.r_tenant.t_lost);
               ("live_bindings", Int r.r_tenant.t_live_bindings);
             ] );
         ("goodput_ratio_2x", Float (goodput_ratio r));
         ("zero_lost", Bool (zero_lost r));
         ("overload_sheds", Bool (overload_sheds r));
         ("chaos_active", Bool (chaos_active r));
         ("chaos_clean", Bool (chaos_clean r));
         ("tenants_evicted", Bool (tenants_evicted r));
       ])

(* Registry entry: a small configuration so `skybench run all` and the
   test suite stay fast; `skybench overload` runs the full sweep. *)
let run () =
  table
    (run_overload ~workers:2 ~tenants:12 ~total:400 ~scale_tenants:80 ())
