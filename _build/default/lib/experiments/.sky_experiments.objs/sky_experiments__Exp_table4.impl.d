lib/experiments/exp_table4.ml: Config Kernel List Printf Sky_harness Sky_sim Sky_sqldb Sky_ukernel Stack Tbl
