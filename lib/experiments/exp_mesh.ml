(** The composed service-mesh scenario (ROADMAP item 5): the whole
    serving fabric addressed purely by URI.

    load generator → NIC (2 RX rings) → 4 skyhttpd workers fanned out
    over one multi-receiver {!Sky_mesh.Endpoint} → KV store + xv6fs +
    blockdev, every worker→backend hop routed by the capability mesh
    ([kv://], [fs://], with the FS mounted over [blk://]) — no flat
    server id reaches a worker.

    A supervisor core drives two control-plane events mid-run:

    - {b hot upgrade} (make-before-break): once a third of the load is
      served, a second-generation KV server sharing the same store is
      registered, every worker is granted a capability on it, the
      [kv://] name is re-registered to the new server id (one epoch
      bump stales every per-core cache at once), and only then are the
      v1 grants revoked — zero requests lost, both generations serve
      traffic;
    - {b least privilege}: at half load, one worker's [fs://] grant is
      revoked. Its next file request is denied at the capability check
      — the worker survives and bounces the request to a privileged
      peer ({!Sky_net.Httpd.Denied}), degradation instead of crash.

    `skybench mesh` gates on: every request served and content-checked,
    fan-out across all four workers (with work steals — two of them own
    no RX ring at all), both KV generations served traffic, denials
    observed and absorbed, and the mesh + subkernel audits clean. The
    JSON is byte-deterministic: CI diffs two same-seed runs. *)

open Sky_sim
open Sky_ukernel
open Sky_blockdev
open Sky_xv6fs
open Sky_harness
module Kv_server = Sky_kvstore.Kv_server
module Subkernel = Sky_core.Subkernel
module Retry = Sky_core.Retry
module Mesh = Sky_mesh.Mesh
module Web = Sky_net.Web
module Httpd = Sky_net.Httpd
module Nic = Sky_net.Nic
module Loadgen = Sky_net.Loadgen

let workers = 4
let queues = 2
let default_seed = 7

type result = {
  m_seed : int;
  m_expected : int;
  m_responses : int;
  m_errors : int;
  m_served : int;
  m_per_worker : int list;
  m_steals : int;
  m_denials : int;  (** requests bounced off the revoked worker *)
  m_kv_v1 : int;  (** KV calls served by the v1 server *)
  m_kv_v2 : int;  (** ... and by the hot-upgraded v2 server *)
  m_upgrade_at : int;  (** requests served when the upgrade committed *)
  m_revoke_at : int;  (** ... when the fs:// grant was revoked *)
  m_grants_retired : int;
  m_resolves : int;  (** name-service wire round trips *)
  m_cache_hits : int;
  m_epoch : int;
  m_restarts : int;
  m_attempts : int;
  m_recovered : int;
  m_degraded : int;
  m_lost : int;  (** retry-budget losses + unanswered requests *)
  m_forced_returns : int;
  m_sec_dropped : int;  (** security-ring overflow drops *)
  m_audit : int;  (** subkernel audit violations *)
  m_mesh_audit : int;  (** mesh audit violations *)
  m_graph_edges : int;  (** sharing-graph edges at end of run *)
  m_graph_added : int;  (** edges the scenario added (vs pre-storm) *)
  m_graph_removed : int;  (** ... and removed *)
  m_graph_stale : int;
      (** added writable edges no live shared buffer justifies — the
          Isoflow differential gate: crash → restart → rebind and the
          two control-plane events must leave no stale mapping *)
  m_fsck : int;
  m_elapsed : int;
  m_tput : float;
}

(* The supervisor polls the served counter between quanta; cheap, and
   keeps its virtual clock moving with the workers. *)
let supervisor_poll_cycles = 400

let run_mesh ?(seed = default_seed) ?(conns = 24) ?(requests_per_conn = 8)
    ?(storm = fun () -> ()) () =
  let machine = Machine.create ~cores:6 ~mem_mib:128 () in
  let kernel = Kernel.create machine in
  let sb = Subkernel.init ~seed kernel in
  let mesh = Mesh.create ~seed sb in
  (* Backends: blockdev → xv6fs, plus two generations of the KV server
     over one shared store (state survives the hot upgrade). *)
  let kv = Kv_server.create machine in
  let kv_v1_calls = ref 0 and kv_v2_calls = ref 0 in
  let counted counter h ~core msg =
    incr counter;
    h ~core msg
  in
  let ramdisk = Ramdisk.create machine ~nblocks:4096 in
  let raw = Disk.direct kernel ramdisk in
  Fs.mkfs kernel raw ~core:0 ~size:4096 ~ninodes:64 ();
  let disk_proc = Kernel.spawn kernel ~name:"blockdev" in
  let fs_proc = Kernel.spawn kernel ~name:"xv6fs" in
  let kv1_proc = Kernel.spawn kernel ~name:"kvstore" in
  let kv2_proc = Kernel.spawn kernel ~name:"kvstore-v2" in
  let worker_procs = Array.init workers (fun _ -> Kernel.spawn kernel ~name:"httpd") in
  let disk_sid =
    Subkernel.register_server sb disk_proc ~connection_count:6
      (Disk.handler kernel ramdisk)
  in
  Mesh.register mesh ~core:0 ~uri:"blk://" ~server_id:disk_sid;
  ignore (Mesh.grant mesh ~core:0 ~client:fs_proc "blk://");
  let sdisk = Disk.over_skybridge sb ~client:fs_proc ~server_id:disk_sid in
  let fs_cell = ref (Fs.mount kernel sdisk ~core:0) in
  let fs_handler ~core msg = Fs_iface.server_handler !fs_cell ~core msg in
  let fs_sid =
    Subkernel.register_server sb fs_proc ~connection_count:6 ~deps:[ disk_sid ]
      fs_handler
  in
  let kv1_sid =
    Subkernel.register_server sb kv1_proc ~connection_count:6
      (counted kv_v1_calls (Web.kv_backend kernel kv))
  in
  (* v2 exists from boot but owns no URI until the upgrade commits. *)
  let kv2_sid =
    Subkernel.register_server sb kv2_proc ~connection_count:6
      (counted kv_v2_calls (Web.kv_backend kernel kv))
  in
  Mesh.register mesh ~core:0 ~uri:"fs://" ~server_id:fs_sid;
  Mesh.register mesh ~core:0 ~uri:"kv://" ~server_id:kv1_sid;
  let remount () =
    let rec go n =
      try fs_cell := Fs.mount kernel sdisk ~core:0 with
      | Subkernel.Server_crashed { server_id } when n > 0 ->
        Subkernel.restart_server sb ~server_id;
        go (n - 1)
    in
    go 3
  in
  let files = Web.provision_files !fs_cell ~seed in
  let nic = Nic.create kernel ~queues in
  let lg =
    Loadgen.create nic ~seed ~mix:Loadgen.default_mix ~conns ~requests_per_conn
      ~rtt:Web.rtt ~files
  in
  let kv1_grants = Array.make workers None in
  let fs_grants = Array.make workers None in
  let bind i w_proc =
    kv1_grants.(i) <- Some (Mesh.grant mesh ~core:0 ~client:w_proc "kv://");
    fs_grants.(i) <- Some (Mesh.grant mesh ~core:0 ~client:w_proc "fs://");
    let routed ?on_crash uri ~core msg =
      match Mesh.call mesh ~core ~client:w_proc ?on_crash uri msg with
      | Ok r -> r
      | Error (`Denied _) -> raise Httpd.Denied
      | Error (`Unresolved u) -> raise (Mesh.Unknown_service u)
      | Error (`Failed e) -> raise (Retry.Gave_up e)
    in
    Web.binding_of_calls
      ~call_kv:(routed "kv://")
      ~call_fs:(routed ~on_crash:(fun _ -> remount ()) "fs://")
      ~revoke:(fun ~core -> Mesh.suspend_client mesh ~core w_proc)
      ~rebind:(fun ~core ->
        ignore core;
        Mesh.resume_client mesh w_proc)
      ()
  in
  (* No preload and no static-file cache: every Fs_get takes the
     capability-checked backend path, so revocation is actually felt. *)
  let httpd =
    Httpd.create ~preload:[] ~file_cache:false kernel nic
      ~workers:(Array.mapi (fun i p -> (p, bind i p)) worker_procs)
      ~queue_done:(fun ~queue -> Loadgen.queue_done lg ~queue)
  in
  (* ---- the supervisor's two control-plane events ---- *)
  let expected = conns * requests_per_conn in
  let upgrade_threshold = expected / 3 and revoke_threshold = expected / 2 in
  let upgrade_at = ref 0 and revoke_at = ref 0 and grants_retired = ref 0 in
  let do_upgrade ~core =
    (* Make before break: grant v2 to everyone, flip the name, and only
       then tear the v1 capability tree down. *)
    Mesh.register mesh ~core ~uri:"kv2://" ~server_id:kv2_sid;
    Array.iter
      (fun p -> ignore (Mesh.grant mesh ~core ~client:p "kv2://"))
      worker_procs;
    Mesh.register mesh ~core ~uri:"kv://" ~server_id:kv2_sid;
    Mesh.unregister mesh ~core ~uri:"kv2://";
    Array.iter
      (function
        | Some g ->
          Mesh.revoke_grant mesh ~core g;
          incr grants_retired
        | None -> ())
      kv1_grants;
    upgrade_at := Httpd.served httpd
  in
  let do_revoke ~core =
    (match fs_grants.(workers - 1) with
    | Some g ->
      Mesh.revoke_grant mesh ~core g;
      incr grants_retired
    | None -> ());
    revoke_at := Httpd.served httpd
  in
  let sup_state = ref 0 in
  let sup_step ~core =
    Cpu.charge (Machine.core machine core) supervisor_poll_cycles;
    match !sup_state with
    | 0 ->
      if Httpd.served httpd >= upgrade_threshold then begin
        do_upgrade ~core;
        incr sup_state
      end;
      Machine.Progress
    | 1 ->
      if Httpd.served httpd >= revoke_threshold then begin
        do_revoke ~core;
        incr sup_state
      end;
      Machine.Progress
    | _ -> Machine.Done
  in
  (* ---- drive the run ---- *)
  (* Differential Isoflow: snapshot the composed PT∘EPT sharing graph
     with every worker bound, before the storm and the control-plane
     events run. Whatever writable edges the run adds must be justified
     by a live shared buffer at the end — revocation, hot upgrade and
     crash recovery may grow the graph but never leak one. *)
  let graph_before = Sky_analysis.Isoflow.graph (Mesh.isoflow_input mesh) in
  storm ();
  Machine.sync_cores machine;
  let start = Cpu.cycles (Machine.core machine 0) in
  Loadgen.start lg ~at:(start + 500);
  Machine.interleave machine
    ~cores:[ 0; 1; 2; 3; workers ]
    ~step:(fun ~core ->
      if core < workers then Httpd.step httpd ~core else sup_step ~core);
  let elapsed = ref 1 in
  for core = 0 to workers - 1 do
    let c = Cpu.cycles (Machine.core machine core) - start in
    if c > !elapsed then elapsed := c
  done;
  let st = Mesh.retry_stats mesh in
  let dropped = Loadgen.expected lg - Loadgen.responses lg + Loadgen.errors lg in
  let iso_after = Mesh.isoflow_input mesh in
  let graph_after = Sky_analysis.Isoflow.graph iso_after in
  let gdelta = Sky_analysis.Isoflow.diff ~before:graph_before ~after:graph_after in
  let stale =
    Sky_analysis.Isoflow.stale
      ~shared:iso_after.Sky_analysis.Isoflow.shared gdelta
  in
  {
    m_seed = seed;
    m_expected = Loadgen.expected lg;
    m_responses = Loadgen.responses lg;
    m_errors = Loadgen.errors lg;
    m_served = Httpd.served httpd;
    m_per_worker = List.init workers (Httpd.worker_served httpd);
    m_steals = Httpd.steals httpd;
    m_denials = Httpd.denials httpd;
    m_kv_v1 = !kv_v1_calls;
    m_kv_v2 = !kv_v2_calls;
    m_upgrade_at = !upgrade_at;
    m_revoke_at = !revoke_at;
    m_grants_retired = !grants_retired;
    m_resolves = Mesh.resolves mesh;
    m_cache_hits = Mesh.cache_hits mesh;
    m_epoch = Mesh.epoch mesh;
    m_restarts = st.Retry.restarts + Httpd.restarts httpd;
    m_attempts = st.Retry.attempts;
    m_recovered = st.Retry.retried_ok;
    m_degraded = st.Retry.degraded;
    m_lost = st.Retry.lost + dropped;
    m_forced_returns = Subkernel.forced_returns sb;
    m_sec_dropped = Subkernel.security_events_dropped sb;
    m_audit = List.length (Subkernel.audit sb);
    m_mesh_audit = List.length (Mesh.audit mesh);
    m_graph_edges = List.length graph_after;
    m_graph_added = List.length gdelta.Sky_analysis.Isoflow.added;
    m_graph_removed = List.length gdelta.Sky_analysis.Isoflow.removed;
    m_graph_stale = List.length stale;
    m_fsck = List.length (Fsck.check !fs_cell ~core:0);
    m_elapsed = !elapsed;
    m_tput = Costs.ops_per_sec ~ops:(Loadgen.responses lg) ~cycles:(max 1 !elapsed);
  }

(* ---- acceptance ---- *)

let all_served r = r.m_responses = r.m_expected && r.m_errors = 0
let fanned_out r = List.for_all (fun n -> n > 0) r.m_per_worker && r.m_steals > 0
let upgraded r = r.m_kv_v1 > 0 && r.m_kv_v2 > 0 && r.m_upgrade_at > 0
let degraded r = r.m_denials > 0
let audits_clean r = r.m_audit = 0 && r.m_mesh_audit = 0 && r.m_fsck = 0
let no_stale r = r.m_graph_stale = 0

let ok r =
  all_served r && fanned_out r && upgraded r && degraded r && audits_clean r
  && no_stale r && r.m_lost = 0

(* ---- rendering ---- *)

let table r =
  let row k v = [ k; v ] in
  Tbl.make
    ~title:
      (Printf.sprintf
         "Service mesh: URI-routed web stack, %d workers / %d RX rings (seed %d)"
         workers queues r.m_seed)
    ~header:[ "metric"; "value" ]
    ~notes:
      [
        "net -> skyhttpd -> kv:// + fs:// (over blk://), all by URI";
        Printf.sprintf
          "hot upgrade at %d served, fs:// revocation at %d served"
          r.m_upgrade_at r.m_revoke_at;
        "acceptance: all served, fan-out + steals, both KV generations, \
         denials bounced, audits clean, zero lost";
      ]
    [
      row "requests served / expected"
        (Printf.sprintf "%d / %d" r.m_responses r.m_expected);
      row "errors" (string_of_int r.m_errors);
      row "per-worker served"
        (String.concat " " (List.map string_of_int r.m_per_worker));
      row "endpoint steals" (string_of_int r.m_steals);
      row "denials (bounced)" (string_of_int r.m_denials);
      row "kv calls v1 / v2"
        (Printf.sprintf "%d / %d" r.m_kv_v1 r.m_kv_v2);
      row "grants retired" (string_of_int r.m_grants_retired);
      row "name resolves / cache hits"
        (Printf.sprintf "%d / %d" r.m_resolves r.m_cache_hits);
      row "epoch" (string_of_int r.m_epoch);
      row "restarts" (string_of_int r.m_restarts);
      row "lost" (string_of_int r.m_lost);
      row "audit (subkernel / mesh / fsck)"
        (Printf.sprintf "%d / %d / %d" r.m_audit r.m_mesh_audit r.m_fsck);
      row "sharing graph (edges / +added / -removed / stale)"
        (Printf.sprintf "%d / +%d / -%d / %d" r.m_graph_edges r.m_graph_added
           r.m_graph_removed r.m_graph_stale);
      row "throughput" (Tbl.fmt_ops r.m_tput);
      row "acceptance" (if ok r then "PASS" else "FAIL");
    ]

let to_json r =
  let open Sky_trace.Json in
  to_string
    (Obj
       [
         ("bench", String "mesh");
         ("seed", Int r.m_seed);
         ("workers", Int workers);
         ("queues", Int queues);
         ("expected", Int r.m_expected);
         ("responses", Int r.m_responses);
         ("errors", Int r.m_errors);
         ("served", Int r.m_served);
         ("per_worker", List (List.map (fun n -> Int n) r.m_per_worker));
         ("steals", Int r.m_steals);
         ("denials", Int r.m_denials);
         ("kv_v1_calls", Int r.m_kv_v1);
         ("kv_v2_calls", Int r.m_kv_v2);
         ("upgrade_at_served", Int r.m_upgrade_at);
         ("revoke_at_served", Int r.m_revoke_at);
         ("grants_retired", Int r.m_grants_retired);
         ("resolves", Int r.m_resolves);
         ("cache_hits", Int r.m_cache_hits);
         ("epoch", Int r.m_epoch);
         ("restarts", Int r.m_restarts);
         ("attempts", Int r.m_attempts);
         ("recovered", Int r.m_recovered);
         ("degraded", Int r.m_degraded);
         ("lost", Int r.m_lost);
         ("forced_returns", Int r.m_forced_returns);
         ("security_dropped", Int r.m_sec_dropped);
         ("audit_violations", Int r.m_audit);
         ("mesh_audit_violations", Int r.m_mesh_audit);
         ("graph_edges", Int r.m_graph_edges);
         ("graph_added", Int r.m_graph_added);
         ("graph_removed", Int r.m_graph_removed);
         ("graph_stale", Int r.m_graph_stale);
         ("fsck_problems", Int r.m_fsck);
         ("elapsed_cycles", Int r.m_elapsed);
         ("throughput_req_per_sec", Float r.m_tput);
         ("all_served", Bool (all_served r));
         ("fanned_out", Bool (fanned_out r));
         ("upgraded", Bool (upgraded r));
         ("degraded_cleanly", Bool (degraded r));
         ("audits_clean", Bool (audits_clean r));
         ("no_stale_mappings", Bool (no_stale r));
         ("ok", Bool (ok r));
       ])

let run () = table (run_mesh ())
