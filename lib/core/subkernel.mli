(** The Subkernel side of SkyBridge: registration, calling keys, shared
    buffers, EPTP-list management and [direct_server_call] (§4.2–§4.4).

    This is the ~200-LoC-per-microkernel integration the paper describes,
    written once against the common {!Sky_ukernel.Kernel} substrate so it
    plugs into all three kernel personalities unchanged. *)

type t

(** Security violations detected by the optimistic checks. *)
exception Not_registered of { client_pid : int; server_id : int }

exception Bad_server_key of { server_id : int; presented : int64 }
(** The callee did not find the presented key in its calling-key table —
    an illegal server call (§4.4). *)

exception Bad_client_return of { server_id : int }
(** The callee returned a wrong client key — an illegal client return. *)

exception Call_timeout of { server_id : int; elapsed : int }
(** DoS defence (§7): the server exceeded the call's cycle budget and the
    kernel forced control back to the client. *)

exception Server_crashed of { server_id : int }
(** The server died while the client executed inside its space; the
    client was forced back to its own EPT (§7 recovery). *)

exception Binding_revoked of { server_id : int }
(** The binding was revoked (EPT fault, revocation storm, reaping) and
    the call could not proceed on the direct path. *)

exception Wx_violation of { pid : int; va : int }
(** A process stored to one of its executable pages (§9 W^X). *)

exception Audit_failed of Sky_analysis.Report.violation list
(** The mandatory post-registration gadget audit found a VMFUNC encoding
    (or unverifiable bytes) in the process's executable pages after
    rewriting — the process is refused. *)

val init :
  ?backend:Backend.kind ->
  ?vpid:bool ->
  ?huge_ept:bool ->
  ?max_eptp:int ->
  ?max_bindings:int ->
  ?seed:int ->
  Sky_ukernel.Kernel.t ->
  t
(** Boots the Rootkernel under the given kernel (the one line of Subkernel
    boot code, §3.2) and hooks context switches to install EPTP lists.
    [max_eptp] (default 512) bounds the per-process EPTP list; binding
    more servers than fit triggers the LRU-eviction extension (§10).
    [max_bindings] (default unlimited) caps the {e global} number of live
    fast-path bindings: exceeding it retires the least-recently-calling
    process's bindings permanently ([revoke_binding ~orphan:false]), so
    slot-evicted tenants degrade to slowpath IPC instead of failing —
    the tenant-scale recycling story. *)

val rootkernel : t -> Rootkernel.t
val kernel : t -> Sky_ukernel.Kernel.t

val backend : t -> Backend.kind
(** The isolation mechanism this machine was booted with. *)

val entry_filter : t -> Sky_ukernel.Entry_filter.t
(** The filtered-syscall backend's grant table (empty under the other
    backends) — exposed for the auditor's mutation tests. *)

val stats : t -> Sky_kernels.Breakdown.t
(** Accumulated direct-call cycle breakdown (for Figure 7). *)

val calls : t -> int

val evictions : t -> int
(** Per-process EPTP-list LRU evictions, totalled across processes. *)

val process_evictions : t -> Sky_ukernel.Proc.t -> int
(** EPTP-list LRU evictions charged to one process ([0] if it is not
    registered). *)

val installed_servers : t -> Sky_ukernel.Proc.t -> int list
(** Server ids currently holding EPTP-list slots for the process, in
    slot order (revoked/degenerate slots omitted). *)

val slot_evictions : t -> int
(** Bindings permanently retired by the global [max_bindings] budget —
    each victim process degrades to slowpath IPC rather than failing. *)

val live_bindings : t -> int

val security_events : t -> string list
(** Newest-first contents of the bounded security-event ring (capacity
    {!security_ring_capacity}); older events are dropped and counted. *)

val security_events_dropped : t -> int

val security_ring_capacity : int

type call_error =
  | Timeout of { server_id : int; elapsed : int }
      (** §7 watchdog: the server overran the cycle budget; the client
          was forced back to its own EPT with registers restored. *)
  | Crashed of { server_id : int }
      (** The server died mid-call; its connections were reaped. *)
  | Revoked of { server_id : int }
      (** The binding was revoked out from under the call. *)

val call :
  t ->
  core:int ->
  client:Sky_ukernel.Proc.t ->
  server_id:int ->
  ?timeout:int ->
  ?attack:[ `Fake_server_key | `Corrupt_return_key ] ->
  bytes ->
  (bytes * [ `Direct | `Slowpath ], call_error) result
(** Recovery-aware direct call: like {!direct_server_call} but the §7
    watchdog is armed by default ([timeout] defaults to 1M cycles) and
    abnormal outcomes surface as typed errors instead of exceptions. A
    revoked binding transparently degrades to the kernel-mediated
    slowpath ([`Slowpath]). Every error path forces the client back to
    its own EPT (VMFUNC-0 + saved-register restore) first. *)

val revoke_binding :
  ?orphan:bool ->
  t ->
  core:int ->
  Sky_ukernel.Proc.t ->
  server_id:int ->
  reason:string ->
  unit
(** Tear down one binding: remove it (the EPTP slot degenerates to the
    client's own EPT root, keeping slot positions stable), zero the
    calling-key table entry, refresh installed EPTP lists, and log a
    security event. Subsequent {!call}s fall back to the slowpath.
    [orphan] (default true) records the pair for {!restart_server}
    rebinding; pass [false] for a permanent teardown (the mesh's
    capability-revocation path) that recovery must never re-establish. *)

val restart_server : t -> server_id:int -> unit
(** Revive a crashed server and rebind every orphaned connection with
    fresh keys and binding EPTs. No-op if the server is not dead. *)

val rebind : t -> Sky_ukernel.Proc.t -> server_id:int -> unit
(** Re-establish a single revoked binding (fresh key, fresh EPT). *)

val bindings : t -> (int * int) list
(** Every live direct binding as a sorted [(client_pid, server_id)] list
    — what the mesh auditor checks against the capability registry. *)

val on_binding_change : t -> (server_id:int -> unit) -> unit
(** Subscribe to binding-set changes: fired after a binding to
    [server_id] is created ({!register_client_to_server}, {!rebind},
    {!restart_server}) or destroyed ({!revoke_binding}). The mesh name
    service uses this to drop stale resolution-cache entries so a crash
    mid-call never leaves a dangling binding reachable by URI. *)

val server_dep_closure : t -> server_id:int -> int list
(** The server ids a client binding to [server_id] is transitively bound
    to (the §4.2 dependency closure, including [server_id] itself),
    sorted. *)

val dead_servers : t -> int list
val degraded_calls : t -> int
val forced_returns : t -> int
val restarts : t -> int

val call_state : t -> core:int -> (int * int) option
(** Per-connection call state: [Some (server_id, since)] while the
    client on [core] executes inside a server's space (innermost frame),
    [None] when idle. *)

val thread_regs : t -> Sky_ukernel.Proc.t -> int64 array
(** The process's modelled register file (16 GPRs, indexed by
    {!Sky_isa.Reg.encoding}) — what the trampoline saves on call entry
    and what a §7 forced return must restore. *)

val register_server :
  t ->
  Sky_ukernel.Proc.t ->
  ?connection_count:int ->
  ?deps:int list ->
  Sky_kernels.Ipc.handler ->
  int
(** [register_server t proc handler] implements Figure 4's
    [register_server]: scans and rewrites the process's code pages, maps
    the trampoline and per-connection stacks, allocates the calling-key
    table, and returns the server ID. [deps] lists server IDs this server
    itself calls (their EPTs are added to every client's EPTP list,
    §4.2/§7 "Malicious Server Call"). *)

val register_client_to_server :
  t -> Sky_ukernel.Proc.t -> server_id:int -> unit
(** Figure 4's [register_client_to_server]: rewrites/prepares the client,
    asks the Rootkernel for the CR3-remapped server EPT (plus the
    server's dependencies), generates the calling key and installs it in
    the server's table, and allocates the shared buffers. *)

val direct_server_call :
  t ->
  core:int ->
  client:Sky_ukernel.Proc.t ->
  server_id:int ->
  ?timeout:int ->
  ?attack:[ `Fake_server_key | `Corrupt_return_key ] ->
  bytes ->
  bytes
(** The kernel-less IPC (§3.1, Figure 4's [direct_server_call]). May be
    invoked from inside another server's handler (nested calls resolve
    against the EPTP list of the root client, which carries the
    dependency EPTs). [attack] is a test hook simulating a malicious
    participant. *)

val current_identity : t -> core:int -> int
(** Pid of the address space live on [core] — the misidentification fix. *)

val trampoline_code : t -> bytes

val trampoline_va : int
(** Where the trampoline page is mapped in every registered process. *)

val server_stack_va : t -> server_id:int -> conn:int -> int
(** Top of the [conn]-th per-connection stack the Subkernel mapped into
    the server at registration (what the trampoline installs into RSP). *)

val key_table_va : int
(** Where a server's calling-key table page is mapped (read-only). *)

val proc_is_clean : t -> Sky_ukernel.Proc.t -> bool
(** No VMFUNC outside the trampoline in the process's executable pages. *)

val trampoline_frame : t -> int
(** Physical address of the shared trampoline frame (exposed for the
    auditor's mutation tests). *)

val audit : t -> Sky_analysis.Report.violation list
(** Whole-machine static security audit through the unified pass
    registry ({!Sky_analysis.Audit}): gadget-audits every registered
    process image and the live trampoline bytes, abstract-interprets the
    trampoline, checks EPT/page-table W^X, trampoline protection and
    EPTP-list validity across all process and binding EPTs, and runs the
    Isoflow cross-domain reachability pass over the composed PT∘EPT
    sharing graph. [[]] means every invariant holds. *)

val audit_passes :
  ?granted:(int * int) list -> t -> Sky_analysis.Audit.pass_result list
(** {!audit} with per-pass structure and timing ([skybench audit]'s
    view). [granted] overrides Isoflow's authority ground truth with the
    mesh capability closure (as [(client pid, server pid)] pairs); it
    defaults to the binding registry itself. *)

val audit_input : ?granted:(int * int) list -> t -> Sky_analysis.Audit.input
(** The lowered pass-registry input for this machine (every image, EPT,
    page table, EPTP list, and the Isoflow machine model). *)

val isoflow_input :
  ?granted:(int * int) list -> t -> Sky_analysis.Isoflow.input
(** The Isoflow machine model alone — what the differential
    sharing-graph snapshots ({!Sky_analysis.Isoflow.graph}) consume. *)

val server_ids : t -> (int * int) list
(** Sorted [(server_id, server_pid)] pairs for every registered server —
    for lowering capability grants (which speak server ids) into the pid
    pairs Isoflow's [flow.closure] check consumes. *)

val binding_ept :
  t -> Sky_ukernel.Proc.t -> server_id:int -> Sky_mmu.Ept.t option
(** The live binding EPT for [(client, server_id)], if bound — exposed
    for the auditor's mutation tests. [None] under non-VMFUNC backends. *)

val mpk_view : t -> Sky_ukernel.Proc.t -> (int * int) option
(** Under the MPK backend, the process's [(protection key, resting PKRU
    view)]; [None] otherwise or if unregistered. *)

val make_code_writable : t -> Sky_ukernel.Proc.t -> unit
(** W^X (§9): flip the process's code pages to writable+non-executable so
    dynamic code generation can proceed. *)

val restore_code_executable : t -> Sky_ukernel.Proc.t -> unit
(** Flip back to executable+read-only and {e rescan} the regenerated code,
    rewriting any VMFUNC the generator produced. *)
