lib/ukernel/proc.ml: Layout Sky_mmu
