(* Tests for the lib/trace subsystem: histogram math, the JSON
   writer/parser pair, span recording and aggregation, the Chrome
   exporter's output (parsed back and checked for Figure-7 category
   coverage), tracing-on/off cycle determinism, and the Breakdown
   accounting record the tracer complements. *)

open Sky_trace
open Sky_ukernel
open Sky_kernels

(* Every test drives the global tracer; make each one start clean. *)
let fresh () =
  Trace.disable ();
  Trace.clear ()

(* ------------------------------------------------------------------ *)
(* Histogram                                                           *)
(* ------------------------------------------------------------------ *)

let test_hist_empty () =
  let h = Histogram.create () in
  Alcotest.(check int) "count" 0 (Histogram.count h);
  Alcotest.(check int) "p50" 0 (Histogram.p50 h);
  Alcotest.(check int) "p99" 0 (Histogram.p99 h);
  Alcotest.(check int) "max" 0 (Histogram.max_value h)

let test_hist_single () =
  let h = Histogram.create () in
  Histogram.add h 396;
  Alcotest.(check int) "count" 1 (Histogram.count h);
  Alcotest.(check int) "max exact" 396 (Histogram.max_value h);
  Alcotest.(check int) "min exact" 396 (Histogram.min_value h);
  (* Every quantile of a single sample is that sample, up to bucket
     resolution (<= 12.5% with 8 sub-buckets); the top quantiles clamp
     to the exact max. *)
  Alcotest.(check int) "p99 = max" 396 (Histogram.p99 h);
  let p50 = Histogram.p50 h in
  Alcotest.(check bool) "p50 within bucket" true (p50 >= 396 && p50 <= 448)

let test_hist_quantiles () =
  let h = Histogram.create () in
  for v = 1 to 1000 do
    Histogram.add h v
  done;
  let within name expected actual =
    let err =
      Float.abs (float_of_int (actual - expected)) /. float_of_int expected
    in
    if err > 0.13 then
      Alcotest.failf "%s: expected ~%d, got %d (err %.3f)" name expected actual err
  in
  within "p50" 500 (Histogram.p50 h);
  within "p95" 950 (Histogram.p95 h);
  within "p99" 990 (Histogram.p99 h);
  Alcotest.(check int) "max exact" 1000 (Histogram.max_value h);
  Alcotest.(check (float 0.001)) "mean exact" 500.5 (Histogram.mean h)

let test_hist_small_values_exact () =
  (* Values below the sub-bucket count land in exact unit buckets. *)
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 0; 1; 2; 3; 4; 5; 6; 7 ];
  Alcotest.(check int) "p50 of 0..7" 3 (Histogram.p50 h);
  Alcotest.(check int) "min" 0 (Histogram.min_value h)

let test_hist_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  for v = 1 to 100 do
    Histogram.add a v
  done;
  for v = 901 to 1000 do
    Histogram.add b v
  done;
  Histogram.merge ~into:a b;
  Alcotest.(check int) "count" 200 (Histogram.count a);
  Alcotest.(check int) "max" 1000 (Histogram.max_value a);
  Alcotest.(check int) "min" 1 (Histogram.min_value a);
  let p50 = Histogram.p50 a in
  Alcotest.(check bool) "p50 at the low cluster's top" true
    (p50 >= 88 && p50 <= 112)

let test_hist_negative_clamped () =
  let h = Histogram.create () in
  Histogram.add h (-5);
  Alcotest.(check int) "clamped to 0" 0 (Histogram.max_value h);
  Alcotest.(check int) "counted" 1 (Histogram.count h)

(* ------------------------------------------------------------------ *)
(* Json                                                                *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("s", Json.String "a \"quoted\"\nline\twith\\escapes");
        ("i", Json.Int (-42));
        ("f", Json.Float 1.5);
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.String "x"; Json.Obj [] ]);
        ("empty", Json.List []);
      ]
  in
  let s = Json.to_string v in
  (match Json.of_string s with
  | parsed when parsed = v -> ()
  | parsed ->
    Alcotest.failf "roundtrip mismatch: %s vs %s" s (Json.to_string parsed)
  | exception Json.Parse_error m -> Alcotest.failf "parse error: %s" m)

let test_json_parse_whitespace () =
  match Json.of_string "  { \"a\" : [ 1 , 2 ] ,\n \"b\" : null }  " with
  | Json.Obj [ ("a", Json.List [ Json.Int 1; Json.Int 2 ]); ("b", Json.Null) ] ->
    ()
  | v -> Alcotest.failf "unexpected parse: %s" (Json.to_string v)

let test_json_parse_errors () =
  let fails s =
    match Json.of_string s with
    | exception Json.Parse_error _ -> ()
    | v -> Alcotest.failf "%S parsed as %s" s (Json.to_string v)
  in
  fails "";
  fails "{";
  fails "[1,]";
  fails "{\"a\":1,}";
  fails "\"unterminated";
  fails "[1] trailing"

(* ------------------------------------------------------------------ *)
(* Trace core                                                          *)
(* ------------------------------------------------------------------ *)

(* A hand-cranked clock so trace tests need no machine. *)
let manual_clock () =
  let t = ref 0 in
  Trace.set_clock (fun _core -> !t);
  t

let test_trace_disabled_is_noop () =
  fresh ();
  let clk = manual_clock () in
  Trace.span ~core:0 ~cat:"x" "outer" (fun () -> clk := !clk + 10);
  Trace.instant ~core:0 "tick";
  Alcotest.(check int) "no events" 0 (List.length (Trace.events ()));
  Alcotest.(check int) "no histograms" 0 (List.length (Trace.histograms ()))

let test_trace_span_nesting () =
  fresh ();
  let clk = manual_clock () in
  Trace.enable ();
  Trace.span ~core:0 ~cat:"a" "outer" (fun () ->
      clk := !clk + 100;
      Trace.span ~core:0 ~cat:"b" "inner" (fun () -> clk := !clk + 30);
      clk := !clk + 20);
  Trace.disable ();
  (* events are sorted by start ts: outer (ts 0) precedes inner (ts 100) *)
  (match Trace.events () with
  | [ outer; inner ] ->
    Alcotest.(check string) "inner name" "inner" inner.Trace.name;
    Alcotest.(check int) "inner ts" 100 inner.Trace.ts;
    Alcotest.(check int) "inner dur" 30 inner.Trace.dur;
    Alcotest.(check string) "outer name" "outer" outer.Trace.name;
    Alcotest.(check int) "outer dur" 150 outer.Trace.dur
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs));
  (* Folded: outer self-time excludes the inner span. *)
  let folded = Trace.folded () in
  Alcotest.(check (option int)) "outer self" (Some 120)
    (List.assoc_opt "outer" folded);
  Alcotest.(check (option int)) "inner path" (Some 30)
    (List.assoc_opt "outer;inner" folded)

let test_trace_charge_attribution () =
  fresh ();
  let clk = manual_clock () in
  Trace.enable ();
  Trace.on_charge ~core:0 7;
  Trace.span ~core:0 ~cat:"a" "outer" (fun () ->
      Trace.on_charge ~core:0 100;
      Trace.span ~core:0 ~cat:"b" "inner" (fun () -> Trace.on_charge ~core:0 30);
      Trace.on_charge ~core:0 20);
  Trace.disable ();
  ignore clk;
  let cats = Trace.categories () in
  Alcotest.(check (option int)) "cat a" (Some 120) (List.assoc_opt "a" cats);
  Alcotest.(check (option int)) "cat b" (Some 30) (List.assoc_opt "b" cats);
  Alcotest.(check (option int)) "untracked" (Some 7)
    (List.assoc_opt "untracked" cats)

let test_trace_span_exception () =
  fresh ();
  let clk = manual_clock () in
  Trace.enable ();
  (try
     Trace.span ~core:0 ~cat:"a" "boom" (fun () ->
         clk := !clk + 5;
         failwith "bang")
   with Failure _ -> ());
  (* The frame was popped and the partial span recorded. *)
  Trace.span ~core:0 ~cat:"a" "after" (fun () -> clk := !clk + 1);
  Trace.disable ();
  let names = List.map (fun e -> e.Trace.name) (Trace.events ()) in
  Alcotest.(check (list string)) "both recorded" [ "boom"; "after" ] names

let test_trace_ring_bounded () =
  fresh ();
  let clk = manual_clock () in
  Trace.enable ~ring_capacity:8 ();
  for i = 1 to 20 do
    clk := i;
    Trace.instant ~core:0 "tick"
  done;
  Trace.disable ();
  let evs = Trace.events () in
  Alcotest.(check int) "capacity bounds events" 8 (List.length evs);
  Alcotest.(check int) "dropped counted" 12 (Trace.dropped ());
  (* The newest events survive. *)
  Alcotest.(check int) "oldest kept" 13 (List.hd evs).Trace.ts;
  Alcotest.(check int) "newest kept" 20
    (List.nth evs (List.length evs - 1)).Trace.ts

let test_trace_emit_span_and_latency () =
  fresh ();
  let _clk = manual_clock () in
  Trace.enable ();
  Trace.emit_span ~core:1 ~cat:"ipc" "call" ~ts:10 ~dur:390;
  Trace.record_latency "op" 1234;
  Trace.disable ();
  (match Trace.histogram "call" with
  | Some h ->
    Alcotest.(check int) "span fed histogram" 390 (Histogram.max_value h)
  | None -> Alcotest.fail "no histogram for emitted span");
  match Trace.histogram "op" with
  | Some h -> Alcotest.(check int) "latency recorded" 1234 (Histogram.max_value h)
  | None -> Alcotest.fail "no histogram for record_latency"

(* ------------------------------------------------------------------ *)
(* Chrome export over a real IPC workload                              *)
(* ------------------------------------------------------------------ *)

(* Exercise every Figure-7 phase: seL4 fastpath (ctx/syscall/other),
   Zircon slowpath (sched/copy), a cross-core call (ipi), and a
   SkyBridge direct call (vmfunc). *)
let run_ipc_workload () =
  let run_baseline variant ~cross ~payload =
    let machine = Sky_sim.Machine.create ~cores:2 ~mem_mib:32 () in
    let kernel = Kernel.create ~config:(Config.default variant) machine in
    let ipc = Ipc.create kernel in
    let client = Kernel.spawn kernel ~name:"client" in
    let server = Kernel.spawn kernel ~name:"server" in
    let ep =
      Ipc.register ipc server
        ~cores:(if cross then [ 1 ] else [])
        (fun ~core:_ msg -> msg)
    in
    Kernel.context_switch kernel ~core:0 client;
    for _ = 1 to 10 do
      ignore (Ipc.call ipc ~core:0 ~client ep (Bytes.create payload))
    done;
    Sky_sim.Machine.max_cycles machine
  in
  let run_skybridge () =
    let machine = Sky_sim.Machine.create ~cores:2 ~mem_mib:32 () in
    let kernel = Kernel.create ~config:(Config.default Config.Sel4) machine in
    let sb = Sky_core.Subkernel.init kernel in
    let client = Kernel.spawn kernel ~name:"client" in
    let server = Kernel.spawn kernel ~name:"server" in
    let sid =
      Sky_core.Subkernel.register_server sb server (fun ~core:_ msg -> msg)
    in
    Sky_core.Subkernel.register_client_to_server sb client ~server_id:sid;
    Kernel.context_switch kernel ~core:0 client;
    for _ = 1 to 10 do
      ignore
        (Sky_core.Subkernel.direct_server_call sb ~core:0 ~client ~server_id:sid
           (Bytes.create 8))
    done;
    Sky_sim.Machine.max_cycles machine
  in
  let a = run_baseline Config.Sel4 ~cross:false ~payload:8 in
  let b = run_baseline Config.Zircon ~cross:false ~payload:256 in
  let c = run_baseline Config.Sel4 ~cross:true ~payload:8 in
  let d = run_skybridge () in
  a + b + c + d

let fig7_categories = [ "vmfunc"; "syscall"; "ctx"; "ipi"; "copy"; "sched"; "other" ]

let test_chrome_export_categories () =
  fresh ();
  Trace.enable ();
  ignore (run_ipc_workload ());
  Trace.disable ();
  let json = Chrome.export () in
  let parsed =
    try Json.of_string json
    with Json.Parse_error m -> Alcotest.failf "export does not parse: %s" m
  in
  let events =
    match Json.member "traceEvents" parsed with
    | Some l -> Json.to_list l
    | None -> Alcotest.fail "no traceEvents"
  in
  Alcotest.(check bool) "has events" true (List.length events > 0);
  let complete_span_cats =
    List.filter_map
      (fun e ->
        match (Json.member "ph" e, Json.member "cat" e) with
        | Some (Json.String "X"), Some (Json.String c) -> Some c
        | _ -> None)
      events
  in
  List.iter
    (fun cat ->
      Alcotest.(check bool)
        (Printf.sprintf "complete span in category %s" cat)
        true
        (List.mem cat complete_span_cats))
    fig7_categories;
  (* Every X event carries the required trace_event fields. *)
  List.iter
    (fun e ->
      match Json.member "ph" e with
      | Some (Json.String "X") ->
        List.iter
          (fun k ->
            if Json.member k e = None then
              Alcotest.failf "span missing field %s" k)
          [ "name"; "ts"; "dur"; "pid"; "tid" ]
      | _ -> ())
    events;
  (* Per-kernel roundtrip histograms with ordered quantiles. *)
  let hists =
    match Json.member "histograms" parsed with
    | Some (Json.Obj kvs) -> kvs
    | _ -> Alcotest.fail "no histograms object"
  in
  List.iter
    (fun name ->
      match List.assoc_opt name hists with
      | None -> Alcotest.failf "missing histogram %s" name
      | Some h ->
        let get k =
          match Json.member k h with
          | Some (Json.Int i) -> i
          | _ -> Alcotest.failf "%s: missing %s" name k
        in
        let p50 = get "p50" and p95 = get "p95" and p99 = get "p99" in
        Alcotest.(check bool)
          (name ^ " quantiles ordered")
          true
          (p50 <= p95 && p95 <= p99 && p99 <= get "max" && get "count" > 0))
    [ "sel4.roundtrip"; "zircon.roundtrip"; "skybridge.sel4.call" ];
  Trace.clear ()

let test_folded_export () =
  fresh ();
  Trace.enable ();
  ignore (run_ipc_workload ());
  Trace.disable ();
  let out = Folded.export () in
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' out) in
  Alcotest.(check bool) "has stacks" true (List.length lines > 0);
  List.iter
    (fun line ->
      match String.rindex_opt line ' ' with
      | None -> Alcotest.failf "malformed folded line %S" line
      | Some i -> (
        let count = String.sub line (i + 1) (String.length line - i - 1) in
        match int_of_string_opt count with
        | Some n when n > 0 -> ()
        | _ -> Alcotest.failf "bad self-cycles in %S" line))
    lines;
  (* Nested paths from the IPC stack appear. *)
  let has_prefix p l = String.length l >= String.length p && String.sub l 0 (String.length p) = p in
  Alcotest.(check bool) "roundtrip;leg path" true
    (List.exists (has_prefix "sel4.roundtrip;sel4.fastpath") lines);
  Trace.clear ()

(* ------------------------------------------------------------------ *)
(* Determinism: tracing must not change simulated cycles               *)
(* ------------------------------------------------------------------ *)

let test_tracing_cycle_neutral () =
  fresh ();
  let baseline = run_ipc_workload () in
  Trace.enable ();
  let traced = run_ipc_workload () in
  Trace.disable ();
  Trace.clear ();
  let again = run_ipc_workload () in
  Alcotest.(check int) "tracing on = off" baseline traced;
  Alcotest.(check int) "off after on" baseline again

let test_fig7_table_identical_with_tracing () =
  (* The acceptance check: the full Figure-7 experiment renders the same
     table (every measured cycle count identical) with tracing enabled
     and disabled. *)
  fresh ();
  let off = Sky_harness.Tbl.render (Sky_experiments.Exp_fig7.run ()) in
  Trace.enable ();
  let on = Sky_harness.Tbl.render (Sky_experiments.Exp_fig7.run ()) in
  Trace.disable ();
  Trace.clear ();
  Alcotest.(check string) "fig7 cycle totals identical" off on

(* ------------------------------------------------------------------ *)
(* Breakdown                                                           *)
(* ------------------------------------------------------------------ *)

let test_breakdown_add () =
  let a = Breakdown.create () and b = Breakdown.create () in
  a.Breakdown.vmfunc <- 10;
  a.Breakdown.other <- 1;
  b.Breakdown.vmfunc <- 32;
  b.Breakdown.syscall <- 5;
  b.Breakdown.ctx <- 4;
  b.Breakdown.ipi <- 3;
  b.Breakdown.copy <- 2;
  b.Breakdown.sched <- 1;
  Breakdown.add a b;
  Alcotest.(check int) "vmfunc" 42 a.Breakdown.vmfunc;
  Alcotest.(check int) "syscall" 5 a.Breakdown.syscall;
  Alcotest.(check int) "total" (42 + 5 + 4 + 3 + 2 + 1 + 1) (Breakdown.total a);
  (* add leaves the addend untouched *)
  Alcotest.(check int) "b untouched" 32 b.Breakdown.vmfunc

let test_breakdown_scale () =
  let t = Breakdown.create () in
  t.Breakdown.vmfunc <- 1000;
  t.Breakdown.syscall <- 999;
  t.Breakdown.other <- 1;
  let s = Breakdown.scale t 10 in
  Alcotest.(check int) "exact division" 100 s.Breakdown.vmfunc;
  Alcotest.(check int) "truncating division" 99 s.Breakdown.syscall;
  Alcotest.(check int) "rounds to zero" 0 s.Breakdown.other;
  (* scaling never mutates the input *)
  Alcotest.(check int) "input intact" 1000 t.Breakdown.vmfunc

let test_breakdown_scale_degenerate () =
  let t = Breakdown.create () in
  t.Breakdown.copy <- 123;
  let z = Breakdown.scale t 0 in
  Alcotest.(check int) "n=0 gives empty" 0 (Breakdown.total z);
  let n = Breakdown.scale t (-3) in
  Alcotest.(check int) "n<0 gives empty" 0 (Breakdown.total n);
  let one = Breakdown.scale t 1 in
  Alcotest.(check int) "n=1 is identity" 123 (Breakdown.total one)

let () =
  Alcotest.run "trace"
    [
      ( "histogram",
        [
          Alcotest.test_case "empty" `Quick test_hist_empty;
          Alcotest.test_case "single value" `Quick test_hist_single;
          Alcotest.test_case "quantiles of 1..1000" `Quick test_hist_quantiles;
          Alcotest.test_case "small values exact" `Quick test_hist_small_values_exact;
          Alcotest.test_case "merge" `Quick test_hist_merge;
          Alcotest.test_case "negative clamped" `Quick test_hist_negative_clamped;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "whitespace" `Quick test_json_parse_whitespace;
          Alcotest.test_case "errors" `Quick test_json_parse_errors;
        ] );
      ( "tracer",
        [
          Alcotest.test_case "disabled is a no-op" `Quick test_trace_disabled_is_noop;
          Alcotest.test_case "span nesting + folded" `Quick test_trace_span_nesting;
          Alcotest.test_case "charge attribution" `Quick test_trace_charge_attribution;
          Alcotest.test_case "exception safety" `Quick test_trace_span_exception;
          Alcotest.test_case "ring bounded" `Quick test_trace_ring_bounded;
          Alcotest.test_case "emit_span + record_latency" `Quick
            test_trace_emit_span_and_latency;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome JSON parses, fig7 categories" `Quick
            test_chrome_export_categories;
          Alcotest.test_case "folded stacks" `Quick test_folded_export;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "cycles identical on/off" `Quick
            test_tracing_cycle_neutral;
          Alcotest.test_case "fig7 table identical with tracing" `Slow
            test_fig7_table_identical_with_tracing;
        ] );
      ( "breakdown",
        [
          Alcotest.test_case "add" `Quick test_breakdown_add;
          Alcotest.test_case "scale truncation" `Quick test_breakdown_scale;
          Alcotest.test_case "scale degenerate n" `Quick
            test_breakdown_scale_degenerate;
        ] );
    ]
