open Sky_mem
open Sky_sim
open Sky_mmu
open Sky_ukernel
open Sky_kernels

module Fault = Sky_faults.Fault

exception Not_registered of { client_pid : int; server_id : int }
exception Bad_server_key of { server_id : int; presented : int64 }
exception Bad_client_return of { server_id : int }
exception Call_timeout of { server_id : int; elapsed : int }
exception Server_crashed of { server_id : int }
exception Binding_revoked of { server_id : int }
exception Wx_violation of { pid : int; va : int }

exception Audit_failed of Sky_analysis.Report.violation list

type call_error =
  | Timeout of { server_id : int; elapsed : int }
  | Crashed of { server_id : int }
  | Revoked of { server_id : int }

let buffer_size = 8192
let key_table_slots = 64
let security_ring_capacity = 256
let default_watchdog = 1_000_000
let hang_cycles = 1_500_000

type server = {
  server_id : int;
  sproc : Proc.t;
  handler : Ipc.handler;
  connection_count : int;
  stack_vas : int array;
  key_table_pa : int;  (** backing frame of the calling-key table page *)
  deps : int list;
}

(* What a binding materializes as, per isolation backend: the VMFUNC
   backend builds a binding EPT (an EPTP-list slot candidate); the MPK
   backend precomputes the elevated PKRU view the call gate installs;
   the filtered-syscall backend records the granted kernel entry point
   (the grant itself lives in the kernel's {!Entry_filter}). *)
type mech =
  | Meptp of Ept.t
  | Mpkey of { view : int; sproc : Proc.t }
  | Mentry of int

type binding = {
  b_server_id : int;
  server_key : int64;
  buffer_vas : int array;  (** one per server connection/stack *)
  buffer_pas : int array;  (** backing frames, for re-sharing on rebind *)
  mech : mech;
  mutable last_use : int;  (** for EPTP-list LRU eviction *)
}

(* Only the VMFUNC backend ever puts a binding in an EPTP list, so the
   installed list is Meptp-only by construction. *)
let binding_ept_exn b =
  match b.mech with
  | Meptp e -> e
  | Mpkey _ | Mentry _ -> invalid_arg "Subkernel: binding has no EPT"

type pstate = {
  proc : Proc.t;
  own_ept : Ept.t;
  trampoline_text_pa : int;
  save_area_pa : int;  (** trampoline save area: callee-saved regs, per call *)
  regs : int64 array;  (** modelled register file (16 GPRs, §7 recovery) *)
  mutable bindings : binding list;
  mutable installed : binding list;  (** subset currently in the EPTP list *)
  mutable revoked : int list;  (** server ids whose binding was revoked *)
  mutable p_evictions : int;  (** EPTP-slot LRU evictions in this process *)
  pkey : int;  (** MPK: the protection key tagging this domain (0 = none) *)
  pkru_view : int;  (** MPK: resting PKRU view installed when scheduled *)
}

type t = {
  kernel : Kernel.t;
  root : Rootkernel.t;
  rng : Rng.t;
  backend : Backend.kind;  (** the isolation mechanism carrying crossings *)
  entry_filter : Entry_filter.t;
      (** the filtered-syscall backend's per-domain grant table *)
  mutable next_pkey : int;  (** MPK key allocator (virtualized mod 15) *)
  mutable servers : server list;
  pstates : (int, pstate) Hashtbl.t;
  mutable next_server_id : int;
  mutable next_buffer_va : int;
  max_eptp : int;
  max_bindings : int;  (** global fast-path binding budget *)
  mutable live_bindings : int;
  mutable slot_evictions : int;
      (** bindings retired to reclaim a fast-path slot — the victims
          degrade to slowpath IPC, they are not failed *)
  stats : Breakdown.t;
  mutable calls : int;
  mutable evictions : int;
  sec_buf : string array;  (** bounded security-event ring *)
  mutable sec_next : int;
  mutable sec_count : int;
  mutable sec_dropped : int;
  active_client : pstate option array;  (** per core: live direct call *)
  call_stack : (int * int) list array;
      (** per core: (server_id, in-server since cycle), innermost first *)
  mutable dead_servers : int list;
  mutable orphans : (int * int) list;  (** (client pid, server_id) to rebind *)
  fallback_ipc : Ipc.t;  (** kernel-mediated slowpath for revoked bindings *)
  fallback_eps : (int, Ipc.endpoint) Hashtbl.t;
  mutable degraded_calls : int;
  mutable forced_returns : int;
  mutable restarts : int;
  trampoline_frame : int;  (** one shared physical frame for the code page *)
  trampoline_bytes : bytes;
  mutable binding_hooks : (server_id:int -> unit) list;
      (** observers of binding-set changes (the mesh name-service cache) *)
}

let log_src = Logs.Src.create "skybridge.subkernel" ~doc:"SkyBridge Subkernel"

module Log = (val Logs.src_log log_src : Logs.LOG)

let rootkernel t = t.root
let kernel t = t.kernel
let backend t = t.backend
let entry_filter t = t.entry_filter
let stats t = t.stats
let calls t = t.calls
let evictions t = t.evictions
let slot_evictions t = t.slot_evictions
let live_bindings t = t.live_bindings
let trampoline_code t = t.trampoline_bytes
let trampoline_va = Layout.trampoline_va
let key_table_va = Layout.identity_page_va + 4096

(* Bounded ring: fault storms generate thousands of events; keep the
   newest [security_ring_capacity] and count the overflow. *)
let security t msg =
  Log.warn (fun m -> m "security: %s" msg);
  let cap = Array.length t.sec_buf in
  t.sec_buf.(t.sec_next) <- msg;
  t.sec_next <- (t.sec_next + 1) mod cap;
  if t.sec_count < cap then t.sec_count <- t.sec_count + 1
  else t.sec_dropped <- t.sec_dropped + 1

(* Newest-first, like the unbounded list this replaces. *)
let security_events t =
  let cap = Array.length t.sec_buf in
  List.init t.sec_count (fun i -> t.sec_buf.((t.sec_next - 1 - i + (2 * cap)) mod cap))

let security_events_dropped t = t.sec_dropped
let degraded_calls t = t.degraded_calls
let forced_returns t = t.forced_returns
let restarts t = t.restarts
let dead_servers t = t.dead_servers

let call_state t ~core =
  match t.call_stack.(core) with [] -> None | frame :: _ -> Some frame

let pstate_opt t proc = Hashtbl.find_opt t.pstates proc.Proc.pid

let process_evictions t proc =
  match pstate_opt t proc with Some ps -> ps.p_evictions | None -> 0

(* Server ids currently occupying EPTP-list slots for [proc] (revoked
   slots degenerate to the process's own EPT and are skipped). *)
let installed_servers t proc =
  match pstate_opt t proc with
  | Some ps ->
    List.filter_map
      (fun b -> if b.b_server_id >= 0 then Some b.b_server_id else None)
      ps.installed
  | None -> []

let on_binding_change t f = t.binding_hooks <- f :: t.binding_hooks

let fire_binding_change t ~server_id =
  List.iter (fun f -> f ~server_id) t.binding_hooks

(* Every live direct binding, as (client pid, server id) pairs in a
   deterministic order — the raw material for the mesh auditor's
   "no binding outlives its capability" check. *)
let bindings t =
  Hashtbl.fold
    (fun pid ps acc ->
      List.fold_left (fun acc b -> (pid, b.b_server_id) :: acc) acc ps.bindings)
    t.pstates []
  |> List.sort compare

let eptp_list_of ps =
  Ept.root_pa ps.own_ept
  :: List.map (fun b -> Ept.root_pa (binding_ept_exn b)) ps.installed

(* Install the EPTP list for [proc] on [core] — called from the kernel's
   context-switch hook. Only processes registered into SkyBridge carry a
   list; switching between unregistered processes keeps the base list
   installed and costs no VM exit (Table 5). Under the MPK backend the
   scheduled process additionally gets its resting PKRU view. *)
let install_for t ~core proc =
  (match (t.backend, pstate_opt t proc) with
  | Backend.Mpk, Some ps ->
    (Kernel.vcpu t.kernel ~core).Vcpu.pkru <- ps.pkru_view
  | _ -> ());
  match pstate_opt t proc with
  | Some ps -> Rootkernel.install_eptp_list t.root ~core (eptp_list_of ps)
  | None ->
    let vmcs = t.root.Rootkernel.vmcses.(core) in
    let base = Ept.root_pa t.root.Rootkernel.base_ept in
    if Vmcs.eptp_at vmcs ~index:0 <> base || Vmcs.current_index vmcs <> 0 then
      Rootkernel.install_eptp_list t.root ~core [ base ]

let init ?backend ?(vpid = true) ?(huge_ept = true)
    ?(max_eptp = Vmcs.eptp_list_size) ?(max_bindings = max_int)
    ?(seed = 0x5b1d) kernel =
  if max_bindings < 1 then invalid_arg "Subkernel.init: max_bindings";
  let backend =
    match backend with Some b -> b | None -> Backend.get_default ()
  in
  let root = Rootkernel.boot ~vpid ~huge_ept kernel in
  let trampoline_bytes = Trampoline.code_for backend in
  let trampoline_frame = Frame_alloc.alloc_frame (Kernel.alloc kernel) in
  Phys_mem.write_bytes (Kernel.mem kernel) trampoline_frame trampoline_bytes;
  let t =
    {
      kernel;
      root;
      rng = Rng.create ~seed;
      backend;
      entry_filter = Entry_filter.create ();
      next_pkey = 1;
      servers = [];
      pstates = Hashtbl.create 16;
      next_server_id = 1;
      next_buffer_va = Layout.skybridge_buffer_va;
      max_eptp;
      max_bindings;
      live_bindings = 0;
      slot_evictions = 0;
      stats = Breakdown.create ();
      calls = 0;
      evictions = 0;
      sec_buf = Array.make security_ring_capacity "";
      sec_next = 0;
      sec_count = 0;
      sec_dropped = 0;
      active_client = Array.make (Machine.n_cores kernel.Kernel.machine) None;
      call_stack = Array.make (Machine.n_cores kernel.Kernel.machine) [];
      dead_servers = [];
      orphans = [];
      fallback_ipc = Ipc.create kernel;
      fallback_eps = Hashtbl.create 8;
      degraded_calls = 0;
      forced_returns = 0;
      restarts = 0;
      trampoline_frame;
      trampoline_bytes;
      binding_hooks = [];
    }
  in
  kernel.Kernel.on_context_switch <-
    (fun k ~core proc ->
      ignore k;
      install_for t ~core proc)
    :: kernel.Kernel.on_context_switch;
  t

(* ------------------------------------------------------------------ *)
(* Registration                                                        *)
(* ------------------------------------------------------------------ *)

(* Scan and rewrite every executable region of the process (§5). Each
   region's snippet page is laid out consecutively from 0x1000 so
   multi-section binaries get disjoint rewrite pages. *)
let rewrite_process t proc =
  let next_page_va = ref Layout.rewrite_page_va in
  List.iter
    (fun (va, code) ->
      let r =
        Sky_rewriter.Rewrite.rewrite ~code_va:va ~rewrite_page_va:!next_page_va
          code
      in
      if r.Sky_rewriter.Rewrite.patched > 0 then begin
        Kernel.write_code t.kernel proc ~va r.Sky_rewriter.Rewrite.code;
        let page = r.Sky_rewriter.Rewrite.rewrite_page in
        if Bytes.length page > 0 then begin
          let rw_va =
            Kernel.map_anon t.kernel proc ~va:!next_page_va ~flags:Pte.urx
              (Bytes.length page)
          in
          Kernel.write_code t.kernel proc ~va:rw_va page;
          (* The snippet page is executable code: record it so audits and
             W^X flips cover it like any other code region. *)
          if not (List.mem_assoc rw_va proc.Proc.code) then
            proc.Proc.code <- (rw_va, Bytes.copy page) :: proc.Proc.code;
          next_page_va :=
            !next_page_va + ((Bytes.length page + 4095) land lnot 4095)
        end
      end)
    (Kernel.proc_code_bytes t.kernel proc)

let trampoline_frame t = t.trampoline_frame

let gadget_images t proc =
  List.map
    (fun (va, code) ->
      Sky_analysis.Gadget.image
        ~name:(Printf.sprintf "%s[%#x]" proc.Proc.name va)
        ~va code)
    (Kernel.proc_code_bytes t.kernel proc)

(* Mandatory post-pass at registration: independently prove the rewrite
   result before the process gains a trampoline mapping. A process whose
   executable pages cannot be verified must not join SkyBridge. Under
   the MPK backend the same images must additionally prove free of
   WRPKRU occurrences (ERIM's inspection requirement): a stray
   [0F 01 EF] would let the domain rewrite its own PKRU. *)
let audit_registration t proc =
  let images = gadget_images t proc in
  let vs = List.concat_map Sky_analysis.Gadget.audit images in
  let vs =
    if t.backend = Backend.Mpk then
      vs @ List.concat_map Sky_analysis.Gadget.audit_wrpkru images
    else vs
  in
  if vs <> [] then begin
    List.iter (fun v -> security t (Sky_analysis.Report.to_string v)) vs;
    raise (Audit_failed vs)
  end

(* The trampoline frame's permissions in a process/binding EPT (EPT
   reading: bit 1 write, bit 2 execute): executable, never writable — the
   base EPT's identity RWX huge page would otherwise let a process forge
   the only legal VMFUNC-bearing page. *)
let ept_trampoline_flags =
  { Pte.present = true; writable = false; user = true; huge = false; nx = false }

let harden_trampoline_ept t ept =
  Ept.map_4k_flags ept ~mem:(Kernel.mem t.kernel) ~alloc:(Kernel.alloc t.kernel)
    ~gpa:t.trampoline_frame ~hpa:t.trampoline_frame ~flags:ept_trampoline_flags

let ensure_pstate t proc =
  match pstate_opt t proc with
  | Some ps -> ps
  | None ->
    rewrite_process t proc;
    audit_registration t proc;
    (* Map the shared trampoline page (read-execute). *)
    Kernel.map_frames t.kernel proc ~va:Layout.trampoline_va
      ~pa:t.trampoline_frame ~len:4096 ~flags:Pte.urx;
    let own_ept = Rootkernel.new_process_ept t.root proc in
    harden_trampoline_ept t own_ept;
    (* MPK: hand the domain a protection key and its resting view (own
       key + the shared-buffer key 0). With more domains than the 15
       non-default hardware keys, keys are virtualized round-robin —
       domains sharing a key fall back to page-table separation, which
       the Isoflow pkru-escape check accounts for. *)
    let pkey =
      match t.backend with
      | Backend.Mpk ->
        let k = ((t.next_pkey - 1) mod 15) + 1 in
        t.next_pkey <- t.next_pkey + 1;
        k
      | Backend.Vmfunc | Backend.Syscall -> 0
    in
    let ps =
      {
        proc;
        own_ept;
        trampoline_text_pa = t.trampoline_frame;
        save_area_pa = Frame_alloc.alloc_frame (Kernel.alloc t.kernel);
        regs =
          Array.init 16 (fun i -> Int64.of_int ((proc.Proc.pid * 0x100) lor i));
        bindings = [];
        installed = [];
        revoked = [];
        p_evictions = 0;
        pkey;
        pkru_view =
          (if t.backend = Backend.Mpk then Pkru.allow_only [ 0; pkey ] else 0);
      }
    in
    Hashtbl.replace t.pstates proc.Proc.pid ps;
    ps

let thread_regs t proc =
  match pstate_opt t proc with
  | Some ps -> ps.regs
  | None -> invalid_arg "Subkernel.thread_regs: process not registered"

(* ------------------------------------------------------------------ *)
(* Trampoline save area (§7 forced-return recovery)                    *)
(* ------------------------------------------------------------------ *)

(* The registers the trampoline prologue pushes (Trampoline.code): the
   SysV callee-saved set plus the client RSP. *)
let callee_saved =
  Sky_isa.Reg.[ Rbx; Rbp; Rsp; R12; R13; R14; R15 ]

let save_slot_bytes = 64

(* One save slot per (core, nesting depth). The Phys_mem accesses are
   uncharged: the paper's 64-cycle crossing constant already includes the
   trampoline's register save/restore work (see Trampoline). *)
let save_callee_saved t ps ~slot =
  let mem = Kernel.mem t.kernel in
  let base = ps.save_area_pa + (slot * save_slot_bytes) in
  List.iteri
    (fun i r ->
      Phys_mem.write_u64 mem (base + (i * 8)) ps.regs.(Sky_isa.Reg.encoding r))
    callee_saved

let restore_callee_saved t ps ~slot =
  let mem = Kernel.mem t.kernel in
  let base = ps.save_area_pa + (slot * save_slot_bytes) in
  List.iteri
    (fun i r ->
      ps.regs.(Sky_isa.Reg.encoding r) <- Phys_mem.read_u64 mem (base + (i * 8)))
    callee_saved

(* Model the aborted server run having trashed the client's registers —
   what §7 recovery must undo. *)
let clobber_callee_saved ps =
  List.iteri
    (fun i r -> ps.regs.(Sky_isa.Reg.encoding r) <- Int64.of_int (0xDEAD0000 + i))
    callee_saved

let find_server t server_id =
  match List.find_opt (fun s -> s.server_id = server_id) t.servers with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "SkyBridge: unknown server id %d" server_id)

let server_stack_va t ~server_id ~conn =
  let srv = find_server t server_id in
  srv.stack_vas.(conn mod srv.connection_count)

let register_server t proc ?(connection_count = 8) ?(deps = []) handler =
  List.iter (fun d -> ignore (find_server t d)) deps;
  let _ps = ensure_pstate t proc in
  (* Fault site "server.<name>": the handler crashes at dispatch or hangs
     past the watchdog budget (§7 DoS). *)
  let site = "server." ^ proc.Proc.name in
  let handler ~core msg =
    (match Fault.check ~core site with
    | Some (Fault.Crash as kind) | Some (Fault.Drop as kind) ->
      raise (Fault.Injected { site; kind })
    | Some Fault.Hang -> Kernel.user_compute t.kernel ~core ~cycles:hang_cycles
    | Some (Fault.Revoke | Fault.Ept_fault) | None -> ());
    handler ~core msg
  in
  let server_id = t.next_server_id in
  t.next_server_id <- server_id + 1;
  (* Per-connection stacks in the server's address space. *)
  let stack_vas =
    Array.init connection_count (fun _ ->
        let va = Proc.bump_stack proc 16384 in
        ignore (Kernel.map_anon t.kernel proc ~va 16384);
        va + 16384)
  in
  (* Calling-key table: one page, entries of (pid, key). *)
  let key_table_pa = Frame_alloc.alloc_frame (Kernel.alloc t.kernel) in
  let table_va = Layout.identity_page_va + 4096 in
  Kernel.map_frames t.kernel proc ~va:table_va ~pa:key_table_pa ~len:4096
    ~flags:Pte.ur;
  t.servers <-
    { server_id; sproc = proc; handler; connection_count; stack_vas; key_table_pa; deps }
    :: t.servers;
  Log.info (fun m ->
      m "registered server %d (%s), %d connections, deps [%s]" server_id
        proc.Proc.name connection_count
        (String.concat ";" (List.map string_of_int deps)));
  server_id

let install_key t srv ~client_pid ~key =
  let mem = Kernel.mem t.kernel in
  let rec find_slot i =
    if i >= key_table_slots then invalid_arg "SkyBridge: calling-key table full"
    else if Phys_mem.read_u64 mem (srv.key_table_pa + (i * 16)) = 0L then i
    else find_slot (i + 1)
  in
  let slot = find_slot 0 in
  Phys_mem.write_u64 mem (srv.key_table_pa + (slot * 16)) (Int64.of_int client_pid);
  Phys_mem.write_u64 mem (srv.key_table_pa + (slot * 16) + 8) key

(* Check [key] against the server's table, charging the reads the
   receiver performs (§4.4). *)
let check_key t ~core srv key =
  let mem = Kernel.mem t.kernel in
  let cpu = Kernel.cpu t.kernel ~core in
  let rec go i =
    if i >= key_table_slots then false
    else begin
      Memsys.access cpu Memsys.Data (srv.key_table_pa + (i * 16));
      let pid = Phys_mem.read_u64 mem (srv.key_table_pa + (i * 16)) in
      if pid = 0L then false
      else if Phys_mem.read_u64 mem (srv.key_table_pa + (i * 16) + 8) = key then true
      else go (i + 1)
    end
  in
  go 0

(* Transitive dependency closure of a server, in call order. *)
let rec dep_closure t server_id =
  let srv = find_server t server_id in
  server_id
  :: List.concat_map (fun d -> dep_closure t d) srv.deps

let server_dep_closure t ~server_id = List.sort_uniq compare (dep_closure t server_id)

let fresh_key t =
  let k = Rng.next_int64 t.rng in
  if k = 0L then 1L else k

let bind_one t ps ~server_id ~key ~share_with =
  let srv = find_server t server_id in
  let mech =
    match t.backend with
    | Backend.Vmfunc ->
      let ept = Rootkernel.bind_ept t.root ~client:ps.proc ~server:srv.sproc in
      harden_trampoline_ept t ept;
      Meptp ept
    | Backend.Mpk ->
      (* The elevated view the call gate installs for the handler's
         duration: the server's key plus the shared-buffer key. *)
      let spk =
        match pstate_opt t srv.sproc with
        | Some sps -> sps.pkey
        | None -> invalid_arg "Subkernel.bind_one: server not registered"
      in
      Mpkey { view = Pkru.allow_only [ 0; spk ]; sproc = srv.sproc }
    | Backend.Syscall ->
      (* Grant the kernel entry point; the trap-time filter will match
         it exactly. The gate page is the only blessed entry range. *)
      Entry_filter.allow t.entry_filter ~pid:ps.proc.Proc.pid ~server:server_id
        ~entry:Layout.trampoline_va;
      Mentry Layout.trampoline_va
  in
  (* Shared buffers, one per server connection, mapped at the same VA in
     every address space of the call chain: the client, the target
     server, and any intermediate servers (which fill the buffer when
     making dependency calls on the client's behalf). *)
  let chain =
    List.sort_uniq
      (fun a b -> compare a.Proc.pid b.Proc.pid)
      (ps.proc :: srv.sproc :: share_with)
  in
  let buffer_pas = Array.make srv.connection_count 0 in
  let buffer_vas =
    Array.init srv.connection_count (fun i ->
        let va = t.next_buffer_va in
        t.next_buffer_va <- t.next_buffer_va + buffer_size;
        let pa =
          Frame_alloc.alloc_frames (Kernel.alloc t.kernel)
            ~count:(buffer_size / 4096)
        in
        buffer_pas.(i) <- pa;
        List.iter
          (fun proc ->
            Kernel.map_frames t.kernel proc ~va ~pa ~len:buffer_size
              ~flags:{ Pte.urw with Pte.nx = true })
          chain;
        va)
  in
  let b =
    { b_server_id = server_id; server_key = key; buffer_vas; buffer_pas; mech;
      last_use = 0 }
  in
  ps.bindings <- ps.bindings @ [ b ];
  t.live_bindings <- t.live_bindings + 1;
  (match mech with
  | Meptp _ ->
    if List.length ps.installed + 1 < t.max_eptp then
      ps.installed <- ps.installed @ [ b ]
  | Mpkey _ | Mentry _ -> ());
  b

(* The key a process uses to call [server_id]: its own binding's key. *)
let key_for t proc ~server_id =
  match pstate_opt t proc with
  | None -> None
  | Some ps ->
    List.find_opt (fun b -> b.b_server_id = server_id) ps.bindings
    |> Option.map (fun b -> b.server_key)

(* The raw registration; the public [register_client_to_server] below
   first enforces the global fast-path binding budget (it needs
   [revoke_binding], defined later). *)
let register_client_unbudgeted t proc ~server_id =
  let ps = ensure_pstate t proc in
  if List.exists (fun b -> b.b_server_id = server_id) ps.bindings then ()
  else begin
    let closure = dep_closure t server_id in
    (* Every process in the call chain shares the dependency buffers.
       Besides [server_id]'s own closure, keep any intermediate server
       this process already reaches that depends on [server_id]: a
       rebound dependency binding's buffers are read while executing
       under the intermediary's EPT (the CR3 remap makes the guest walk
       use the intermediary's page tables), so dropping it from the
       chain would page-fault the next nested call after a recovery. *)
    let intermediaries =
      List.filter_map
        (fun b ->
          if b.b_server_id <> server_id
             && List.mem server_id (dep_closure t b.b_server_id)
          then Some (find_server t b.b_server_id).sproc
          else None)
        ps.bindings
    in
    let chain_procs =
      List.map (fun sid -> (find_server t sid).sproc) closure @ intermediaries
    in
    (* Dependency bindings that survived a partial reap keep their old
       buffers: re-share those frames with the (possibly new) chain so a
       freshly rebound intermediary can still reach them. *)
    List.iter
      (fun b ->
        if b.b_server_id <> server_id && List.mem b.b_server_id closure then
          Array.iteri
            (fun i va ->
              List.iter
                (fun proc ->
                  Kernel.map_frames t.kernel proc ~va ~pa:b.buffer_pas.(i)
                    ~len:buffer_size
                    ~flags:{ Pte.urw with Pte.nx = true })
                (ps.proc :: chain_procs))
            b.buffer_vas)
      ps.bindings;
    List.iter
      (fun sid ->
        if not (List.exists (fun b -> b.b_server_id = sid) ps.bindings) then begin
          let srv = find_server t sid in
          (* The direct binding gets a fresh key; dependency bindings
             reuse the key of the server that actually calls them (the
             FS's key for the disk, not the client's). *)
          let key =
            if sid = server_id then begin
              let k = fresh_key t in
              install_key t srv ~client_pid:proc.Proc.pid ~key:k;
              k
            end
            else
              match
                List.fold_left
                  (fun acc s ->
                    match acc with
                    | Some _ -> acc
                    | None -> key_for t s.sproc ~server_id:sid)
                  None t.servers
              with
              | Some k -> k
              | None ->
                (* The intermediate server never registered to its dep —
                   register it now with its own key. *)
                let k = fresh_key t in
                install_key t srv ~client_pid:proc.Proc.pid ~key:k;
                k
          in
          ignore (bind_one t ps ~server_id:sid ~key ~share_with:chain_procs)
        end)
      closure;
    ps.revoked <- List.filter (fun sid -> not (List.mem sid closure)) ps.revoked;
    List.iter (fun sid -> fire_binding_change t ~server_id:sid) closure
  end

(* ------------------------------------------------------------------ *)
(* Revocation, reaping, restart (§7 recovery)                          *)
(* ------------------------------------------------------------------ *)

(* Remove (pid, key) from the server's calling-key table, compacting the
   remaining entries: lookups treat the first zero pid as end-of-table,
   so a hole would hide every later key. *)
let clear_key t srv ~client_pid ~key =
  let mem = Kernel.mem t.kernel in
  let live = ref [] in
  for i = key_table_slots - 1 downto 0 do
    let base = srv.key_table_pa + (i * 16) in
    let pid = Phys_mem.read_u64 mem base in
    let k = Phys_mem.read_u64 mem (base + 8) in
    if pid <> 0L && not (pid = Int64.of_int client_pid && k = key) then
      live := (pid, k) :: !live
  done;
  List.iteri
    (fun i (pid, k) ->
      let base = srv.key_table_pa + (i * 16) in
      Phys_mem.write_u64 mem base pid;
      Phys_mem.write_u64 mem (base + 8) k)
    !live;
  for i = List.length !live to key_table_slots - 1 do
    let base = srv.key_table_pa + (i * 16) in
    Phys_mem.write_u64 mem base 0L;
    Phys_mem.write_u64 mem (base + 8) 0L
  done

(* A revoked binding's EPTP slot degenerates to the process's own EPT
   root instead of being removed: in-flight nested frames hold slot
   indices into the installed list, which must therefore keep its
   positions stable. *)
let dummy_binding ps =
  {
    b_server_id = -1;
    server_key = 0L;
    buffer_vas = [||];
    buffer_pas = [||];
    mech = Meptp ps.own_ept;
    last_use = 0;
  }

(* Push the (changed) EPTP list to every core currently running the
   process, preserving the live EPTP index (the list rewrite must not
   switch address spaces under a running call). *)
let refresh_lists t ps =
  Array.iteri
    (fun core running ->
      match running with
      | Some p when p == ps.proc ->
        let vmcs = t.root.Rootkernel.vmcses.(core) in
        let saved = Vmcs.current_index vmcs in
        Rootkernel.install_eptp_list t.root ~core (eptp_list_of ps);
        vmcs.Vmcs.current_index <- saved
      | _ -> ())
    t.kernel.Kernel.running

let revoke_binding ?(orphan = true) t ~core proc ~server_id ~reason =
  match pstate_opt t proc with
  | None -> ()
  | Some ps -> (
    match List.find_opt (fun b -> b.b_server_id = server_id) ps.bindings with
    | None -> ()
    | Some b ->
      ps.bindings <- List.filter (fun x -> x != b) ps.bindings;
      t.live_bindings <- t.live_bindings - 1;
      (* Per-mechanism invalidation: the VMFUNC backend degenerates the
         EPTP slot in place (in-flight nested frames hold slot indices);
         the filtered-syscall backend erases the kernel grant, so the
         very next trap is denied; the MPK backend has nothing standing
         — the elevated view only ever exists inside the call gate and
         the binding's disappearance already unreaches it. *)
      (match b.mech with
      | Meptp _ ->
        ps.installed <-
          List.map (fun x -> if x == b then dummy_binding ps else x)
            ps.installed
      | Mentry _ ->
        Entry_filter.revoke t.entry_filter ~pid:proc.Proc.pid ~server:server_id
      | Mpkey _ -> ());
      if not (List.mem server_id ps.revoked) then
        ps.revoked <- server_id :: ps.revoked;
      (* [orphan = false] is the capability-revocation path: the teardown
         is permanent, so a later [restart_server] must NOT rebind it. *)
      if orphan && not (List.mem (proc.Proc.pid, server_id) t.orphans) then
        t.orphans <- (proc.Proc.pid, server_id) :: t.orphans;
      clear_key t (find_server t server_id) ~client_pid:proc.Proc.pid
        ~key:b.server_key;
      (* Unmap the binding's shared buffers from {e every} registered
         address space (client, server, intermediaries): a frame whose
         grant died must not stay writable anywhere, or the revocation
         leaves a cross-domain channel behind — exactly what Isoflow's
         [flow.shared-writable] flags. Buffer VAs are allocated
         monotonically so they are unique to this binding, and
         {!Page_table.unmap} is a no-op in spaces that never mapped
         them. The frames themselves stay allocated: surviving
         dependency bindings keep their own (distinct) buffers. *)
      let mem = Kernel.mem t.kernel in
      Hashtbl.iter
        (fun _ other ->
          Array.iter
            (fun va ->
              for page = 0 to (buffer_size / 4096) - 1 do
                Page_table.unmap other.proc.Proc.page_table ~mem
                  ~va:(va + (page * 4096))
              done)
            b.buffer_vas)
        t.pstates;
      refresh_lists t ps;
      security t
        (Printf.sprintf "revoked binding pid %d -> server %d: %s" proc.Proc.pid
           server_id reason);
      Sky_trace.Trace.instant ~core ~cat:"recovery" "recovery.revoke";
      fire_binding_change t ~server_id)

(* ---- global fast-path binding budget (tenant-scale slot recycling) ----

   With hundreds–thousands of short-lived tenant clients the bounded
   resource is not just each process's EPTP list but the Subkernel's
   total fast-path footprint (binding EPTs, shared buffers, calling-key
   slots). [max_bindings] caps the number of live bindings; when a new
   registration would exceed it, the least-recently-calling {e process}
   (excluding the one registering) has its whole fast-path presence
   retired — [revoke_binding ~orphan:false] per binding, so its future
   calls transparently degrade to the kernel-mediated slowpath (counted
   in [degraded_calls]) instead of failing. Recycled tenants that come
   back re-register and evict someone else: slots circulate by LRU. *)

(* Victim = the registered process whose most recent call through any of
   its bindings is oldest; ties break on pid so the choice (and thus the
   whole run) stays deterministic. *)
let slot_victim t ~except_pid =
  let best = ref None in
  Hashtbl.iter
    (fun pid ps ->
      if pid <> except_pid && ps.bindings <> [] then begin
        let recent =
          List.fold_left (fun a b -> Int.max a b.last_use) 0 ps.bindings
        in
        match !best with
        | Some (r, p, _) when (r, p) <= (recent, pid) -> ()
        | _ -> best := Some (recent, pid, ps)
      end)
    t.pstates;
  match !best with Some (_, _, ps) -> Some ps | None -> None

let enforce_binding_budget t ps ~incoming =
  let rec go () =
    if t.live_bindings + incoming > t.max_bindings then
      match slot_victim t ~except_pid:ps.proc.Proc.pid with
      | None -> ()  (* only the registering process holds bindings *)
      | Some victim ->
        let sids = List.map (fun b -> b.b_server_id) victim.bindings in
        List.iter
          (fun sid ->
            t.slot_evictions <- t.slot_evictions + 1;
            revoke_binding ~orphan:false t ~core:0 victim.proc ~server_id:sid
              ~reason:"fast-path binding budget: LRU slots recycled")
          sids;
        go ()
  in
  go ()

let register_client_to_server t proc ~server_id =
  (if t.max_bindings <> max_int then
     let ps = ensure_pstate t proc in
     if not (List.exists (fun b -> b.b_server_id = server_id) ps.bindings)
     then begin
       let closure = dep_closure t server_id |> List.sort_uniq compare in
       let incoming =
         List.length
           (List.filter
              (fun sid ->
                not (List.exists (fun b -> b.b_server_id = sid) ps.bindings))
              closure)
       in
       enforce_binding_budget t ps ~incoming
     end);
  register_client_unbudgeted t proc ~server_id

let server_dead t server_id = List.mem server_id t.dead_servers

(* A crashed server strands every connection bound to it: revoke them
   all (reaping), recording the orphans so a restart can rebind. *)
let mark_server_dead t ~core ~server_id =
  if not (server_dead t server_id) then begin
    t.dead_servers <- server_id :: t.dead_servers;
    security t
      (Printf.sprintf "server %d crashed; reaping orphaned connections"
         server_id);
    Sky_trace.Trace.instant ~core ~cat:"recovery" "recovery.reap";
    Hashtbl.fold (fun _ ps acc -> ps :: acc) t.pstates []
    |> List.sort (fun a b -> compare a.proc.Proc.pid b.proc.Proc.pid)
    |> List.iter (fun ps ->
           if List.exists (fun b -> b.b_server_id = server_id) ps.bindings then
             revoke_binding t ~core ps.proc ~server_id
               ~reason:"orphaned by server crash")
  end

(* Bring a crashed server back and re-establish every orphaned
   connection with fresh keys and binding EPTs. *)
let restart_server t ~server_id =
  if server_dead t server_id then begin
    t.dead_servers <- List.filter (fun s -> s <> server_id) t.dead_servers;
    t.restarts <- t.restarts + 1;
    let mine, rest = List.partition (fun (_, sid) -> sid = server_id) t.orphans in
    t.orphans <- rest;
    List.iter
      (fun (pid, sid) ->
        match Hashtbl.find_opt t.pstates pid with
        | None -> ()
        | Some ps ->
          ps.revoked <- List.filter (fun s -> s <> sid) ps.revoked;
          register_client_to_server t ps.proc ~server_id:sid)
      (List.sort compare mine);
    security t
      (Printf.sprintf "server %d restarted; %d connections rebound" server_id
         (List.length mine));
    Sky_trace.Trace.instant ~core:0 ~cat:"recovery" "recovery.restart"
  end

(* Re-establish a single revoked binding (fresh key, fresh EPT). *)
let rebind t proc ~server_id =
  match pstate_opt t proc with
  | None -> ()
  | Some ps ->
    ps.revoked <- List.filter (fun s -> s <> server_id) ps.revoked;
    t.orphans <-
      List.filter
        (fun (pid, sid) -> not (pid = proc.Proc.pid && sid = server_id))
        t.orphans;
    register_client_to_server t proc ~server_id

(* ------------------------------------------------------------------ *)
(* direct_server_call                                                  *)
(* ------------------------------------------------------------------ *)

let binding_index ps b =
  let rec go i = function
    | [] -> None
    | x :: rest -> if x == b then Some (i + 1) else go (i + 1) rest
  in
  go 0 ps.installed

(* EPTP-list LRU eviction (§10 future work): make sure [b] occupies a
   slot, evicting the least-recently-used binding when the list is
   full. Requires a Rootkernel VMCALL to rewrite the list. *)
let ensure_installed t ~core ps b =
  let vmcs = t.root.Rootkernel.vmcses.(core) in
  let refresh () =
    (* Rewriting the EPTP list mid-call must not disturb the currently
       installed EPTP (the hardware list update does not switch). *)
    let saved_index = Vmcs.current_index vmcs in
    Rootkernel.install_eptp_list t.root ~core (eptp_list_of ps);
    vmcs.Vmcs.current_index <- saved_index
  in
  match binding_index ps b with
  | Some idx ->
    (* The list in the VMCS may predate this binding (registered after
       the client was last scheduled): refresh it if stale. *)
    if Vmcs.eptp_at vmcs ~index:idx <> Ept.root_pa (binding_ept_exn b) then
      refresh ();
    idx
  | None ->
    let saved_index = Vmcs.current_index vmcs in
    let victim =
      List.fold_left
        (fun acc x -> match acc with
          | None -> Some x
          | Some v -> if x.last_use < v.last_use then Some x else acc)
        None ps.installed
    in
    (match victim with
    | Some v when List.length ps.installed + 1 >= t.max_eptp ->
      ps.installed <-
        List.map (fun x -> if x == v then b else x) ps.installed;
      t.evictions <- t.evictions + 1;
      ps.p_evictions <- ps.p_evictions + 1
    | _ -> ps.installed <- ps.installed @ [ b ]);
    Rootkernel.install_eptp_list t.root ~core (eptp_list_of ps);
    vmcs.Vmcs.current_index <- saved_index;
    (match binding_index ps b with Some i -> i | None -> assert false)

(* ---- the per-mechanism crossing ----

   [cross_enter] switches the vCPU into the server's domain and returns
   the token [cross_leave] needs to switch back; the pair is the only
   place the three mechanisms differ on the hot path. The VMFUNC legs
   are byte-for-byte the original EPTP switches (the cost-neutrality
   gate holds the pingpong budget to ±2%). *)
type cross_token =
  | Tindex of int  (** VMFUNC: the EPTP index to return to *)
  | Tpkru of { pkru : int; cr3 : int; pcid : int }  (** MPK: client state *)
  | Tcr3 of { cr3 : int; pcid : int }  (** syscall: client translation *)

let cross_enter t ~core vcpu ps b srv ~idx =
  match b.mech with
  | Meptp _ ->
    let idx = match idx with Some i -> i | None -> assert false in
    let return_index = Vmcs.current_index (Vcpu.vmcs_exn vcpu) in
    Vmfunc.execute vcpu ~func:0 ~index:idx;
    Tindex return_index
  | Mpkey { view; sproc } ->
    let token =
      Tpkru { pkru = vcpu.Vcpu.pkru; cr3 = vcpu.Vcpu.cr3; pcid = vcpu.Vcpu.pcid }
    in
    (* The architectural switch is the WRPKRU alone: no EPTP change, no
       CR3 write, no flush. The CR3/PCID assignment below is the
       single-address-space emulation — under MPK client and server
       share one address space, which this machine models by viewing
       the server's page tables uncharged. Giving the borrowed view the
       server's own PCID tag keeps the TLB sound without a flush: the
       client's untagged entries stay filed under its own ASID. *)
    Wrpkru.execute vcpu ~pkru:view;
    vcpu.Vcpu.cr3 <- Proc.cr3 sproc;
    vcpu.Vcpu.pcid <- sproc.Proc.pid;
    token
  | Mentry entry ->
    let token = Tcr3 { cr3 = vcpu.Vcpu.cr3; pcid = vcpu.Vcpu.pcid } in
    (* The filtered kernel slowpath: trap, check the grant table before
       anything else, then a full (flushing) CR3 switch into the
       server. A missing grant is denied at the cheapest point. *)
    Kernel.kernel_entry t.kernel ~core;
    Cpu.charge (Kernel.cpu t.kernel ~core) Costs.entry_filter_check;
    if
      not
        (Entry_filter.check t.entry_filter ~pid:ps.proc.Proc.pid
           ~server:b.b_server_id ~entry)
    then begin
      Kernel.kernel_exit t.kernel ~core;
      security t
        (Printf.sprintf "entry filter denied pid %d -> server %d"
           ps.proc.Proc.pid b.b_server_id);
      raise (Binding_revoked { server_id = b.b_server_id })
    end;
    Vcpu.write_cr3 vcpu ~cr3:(Proc.cr3 srv.sproc) ~pcid:srv.sproc.Proc.pid;
    Kernel.kernel_exit t.kernel ~core;
    token

let cross_leave t ~core vcpu token =
  match token with
  | Tindex return_index -> Vmfunc.execute vcpu ~func:0 ~index:return_index
  | Tpkru { pkru; cr3; pcid } ->
    Wrpkru.execute vcpu ~pkru;
    vcpu.Vcpu.cr3 <- cr3;
    vcpu.Vcpu.pcid <- pcid
  | Tcr3 { cr3; pcid } ->
    (* Returning is a kernel round trip too: trap, validate the return
       frame, switch back to the client's translation. *)
    Kernel.kernel_entry t.kernel ~core;
    Cpu.charge (Kernel.cpu t.kernel ~core) Costs.entry_filter_check;
    Vcpu.write_cr3 vcpu ~cr3 ~pcid;
    Kernel.kernel_exit t.kernel ~core

let guest_copy_out t ~core va data =
  Translate.write_bytes (Kernel.vcpu t.kernel ~core) (Kernel.mem t.kernel) ~va data

let guest_copy_in t ~core va len =
  Translate.read_bytes (Kernel.vcpu t.kernel ~core) (Kernel.mem t.kernel) ~va ~len

(* Graceful degradation: a connection whose binding was revoked falls
   back to the kernel-mediated slowpath transparently. The server's
   handler (fault site included) is registered into the fallback Ipc
   instance on first use. *)
let fallback_endpoint t srv =
  match Hashtbl.find_opt t.fallback_eps srv.server_id with
  | Some ep -> ep
  | None ->
    let ep = Ipc.register t.fallback_ipc srv.sproc srv.handler in
    Hashtbl.replace t.fallback_eps srv.server_id ep;
    ep

let slowpath_call t ~core ps ~server_id msg =
  let srv = find_server t server_id in
  let ep = fallback_endpoint t srv in
  Sky_trace.Trace.span ~core ~cat:"recovery" "recovery.slowpath" @@ fun () ->
  Fault.enter_scope ();
  match Ipc.call t.fallback_ipc ~core ~client:ps.proc ep msg with
  | reply ->
    Fault.leave_scope ();
    t.degraded_calls <- t.degraded_calls + 1;
    Ok reply
  | exception e ->
    Fault.leave_scope ();
    Kernel.context_switch t.kernel ~core ps.proc;
    (match e with
    | Fault.Injected _ ->
      mark_server_dead t ~core ~server_id;
      Error (Crashed { server_id })
    | Server_crashed { server_id = sid } -> Error (Crashed { server_id = sid })
    | Call_timeout { server_id = sid; elapsed } ->
      Error (Timeout { server_id = sid; elapsed })
    | e -> raise e)

(* Map an in-server exception to the typed error the client observes,
   performing the matching recovery action. [None] = a genuine bug, to
   be re-raised. *)
let classify_abort t ~core cpu ~start ps ~server_id e =
  match e with
  | Fault.Injected { kind = Fault.Ept_fault; _ }
  | Ept.Ept_violation _
  | Vmfunc.Invalid_vmfunc _ ->
    revoke_binding t ~core ps.proc ~server_id
      ~reason:"EPT fault during direct call";
    Some (Revoked { server_id })
  | Fault.Injected { kind = Fault.Drop; _ } ->
    Some (Timeout { server_id; elapsed = Cpu.cycles cpu - start })
  | Fault.Injected _ ->
    mark_server_dead t ~core ~server_id;
    Some (Crashed { server_id })
  | Server_crashed { server_id = sid } -> Some (Crashed { server_id = sid })
  | Binding_revoked { server_id = sid } -> Some (Revoked { server_id = sid })
  | Call_timeout { server_id = sid; elapsed } ->
    Some (Timeout { server_id = sid; elapsed })
  | _ -> None

let call_internal t ~core ~client ~server_id ?timeout ?attack msg =
  (* Fault site "subkernel.call": a revocation storm yanks the binding at
     call entry; top-level calls then degrade to the slowpath. *)
  (match Fault.check ~core "subkernel.call" with
  | Some Fault.Revoke ->
    let proc =
      match t.active_client.(core) with Some ps -> ps.proc | None -> client
    in
    revoke_binding t ~core proc ~server_id ~reason:"injected revocation storm"
  | _ -> ());
  let ps =
    (* Nested calls resolve against the root client's EPTP list, which
       carries the dependency EPTs (§4.2). *)
    match t.active_client.(core) with
    | Some ps -> ps
    | None -> (
      match pstate_opt t client with
      | Some ps -> ps
      | None -> raise (Not_registered { client_pid = client.Proc.pid; server_id }))
  in
  if server_dead t server_id then begin
    security t
      (Printf.sprintf "pid %d called dead server %d" ps.proc.Proc.pid server_id);
    Error (Crashed { server_id })
  end
  else
    match List.find_opt (fun b -> b.b_server_id = server_id) ps.bindings with
    | None when List.mem server_id ps.revoked ->
      if t.active_client.(core) = None then
        Result.map (fun r -> (r, `Slowpath)) (slowpath_call t ~core ps ~server_id msg)
      else
        (* A nested call cannot take the slowpath mid-direct-call (the
           kernel transfer would rewrite the live EPTP state under the
           outer frame): abort the whole call chain instead. *)
        raise (Binding_revoked { server_id })
    | None ->
      security t
        (Printf.sprintf "pid %d attempted unbound call to server %d"
           ps.proc.Proc.pid server_id);
      raise (Not_registered { client_pid = ps.proc.Proc.pid; server_id })
    | Some b ->
      let srv = find_server t server_id in
      let cpu = Kernel.cpu t.kernel ~core in
      let vcpu = Kernel.vcpu t.kernel ~core in
      (* Make sure the root client is the running process (normally a
         no-op: the workload is already executing it). *)
      if t.active_client.(core) = None then
        Kernel.context_switch t.kernel ~core ps.proc;
      t.calls <- t.calls + 1;
      t.calls |> fun n -> b.last_use <- n;
      (* EPTP-slot residency is a VMFUNC-backend concern; prepared
         outside the measured crossing, as before the backend split. *)
      let idx =
        match b.mech with
        | Meptp _ -> Some (ensure_installed t ~core ps b)
        | Mpkey _ | Mentry _ -> None
      in
      let start = Cpu.cycles cpu in
      let walk0 = Pmu.read (Cpu.pmu cpu) Pmu.Walk_cycles in
      (* Roundtrip span: feeds the "skybridge.<kernel>.call" latency
         histogram; inner spans (vmfunc, copies, key check) refine the
         per-category attribution. *)
      let span_name =
        "skybridge."
        ^ (match t.kernel.Kernel.config.Config.variant with
          | Config.Sel4 -> "sel4"
          | Config.Fiasco -> "fiasco"
          | Config.Zircon -> "zircon"
          | Config.Linux -> "linux")
        ^ ".call"
      in
      Sky_trace.Trace.span ~core ~cat:"ipc" span_name @@ fun () ->
      let conn = core mod srv.connection_count in
      let large = Bytes.length msg > Ipc.register_msg_limit in
      (* --- client side of the trampoline --- *)
      Trampoline.charge_crossing cpu ~text_pa:ps.trampoline_text_pa;
      (* Trampoline prologue: the callee-saved set goes to the per-call
         save slot, from which a forced return can restore it (§7). *)
      let depth = List.length t.call_stack.(core) in
      let slot = ((core * 8) + depth) land 63 in
      save_callee_saved t ps ~slot;
      let copy0 = Cpu.cycles cpu in
      if large then
        Sky_trace.Trace.span ~core ~cat:"copy" "skybridge.copy" (fun () ->
            guest_copy_out t ~core b.buffer_vas.(conn) msg);
      let copy_cycles = ref (Cpu.cycles cpu - copy0) in
      let client_key = fresh_key t in
      (* --- cross into the server --- *)
      let outer = t.active_client.(core) in
      (* The gate returns to whatever state it was entered from: EPTP
         slot 0 for a plain VMFUNC client, the calling server's slot for
         a nested call (the FS returning from the disk driver must land
         back in the FS's address space, not the client's); the MPK and
         syscall tokens capture the analogous client state. *)
      let token = cross_enter t ~core vcpu ps b srv ~idx in
      t.active_client.(core) <- Some ps;
      t.call_stack.(core) <- (server_id, start) :: t.call_stack.(core);
      let returned = ref false in
      let pop_frame () =
        match t.call_stack.(core) with
        | _ :: rest -> t.call_stack.(core) <- rest
        | [] -> ()
      in
      let finish_return reply =
        (* --- cross back, restore --- *)
        Fault.leave_scope ();
        cross_leave t ~core vcpu token;
        t.active_client.(core) <- outer;
        pop_frame ();
        Trampoline.charge_crossing cpu ~text_pa:ps.trampoline_text_pa;
        returned := true;
        reply
      in
      let forced_return () =
        (* §7: the watchdog forces the stranded client back through the
           same mechanism it entered by — the VMFUNC return switch, the
           WRPKRU restore, or the kernel's CR3 switch back — and
           restores the callee-saved registers from the trampoline save
           area (the aborted server run never ran the gate epilogue). *)
        Fault.leave_scope ();
        t.forced_returns <- t.forced_returns + 1;
        Sky_trace.Trace.span ~core ~cat:"recovery" "recovery.forced_return"
        @@ fun () ->
        cross_leave t ~core vcpu token;
        t.active_client.(core) <- outer;
        pop_frame ();
        Trampoline.charge_crossing cpu ~text_pa:ps.trampoline_text_pa;
        restore_callee_saved t ps ~slot;
        returned := true
      in
      (* Scoped ambient fault sites (sim/mmu/exec/ipc) may fire from here
         until the return crossing: the fault lands while the client
         executes inside the server's space. *)
      Fault.enter_scope ();
      match
        (* --- server side --- *)
        (* Calling-key check against the server's table (§4.4). *)
        let presented =
          match attack with Some `Fake_server_key -> 0xBADBADL | _ -> b.server_key
        in
        let key_ok =
          Sky_trace.Trace.span ~core ~cat:"other" "skybridge.keycheck" (fun () ->
              check_key t ~core srv presented)
        in
        if not key_ok then begin
          security t
            (Printf.sprintf "server %d rejected key %Lx from pid %d" server_id
               presented ps.proc.Proc.pid);
          ignore (finish_return Bytes.empty);
          raise (Bad_server_key { server_id; presented })
        end;
        let msg' =
          if large then
            Sky_trace.Trace.span ~core ~cat:"copy" "skybridge.copy" (fun () ->
                guest_copy_in t ~core b.buffer_vas.(conn) (Bytes.length msg))
          else msg
        in
        let reply = srv.handler ~core msg' in
        (* DoS timeout (§7): if the server burned past the budget, the
           kernel's timer tick forces control back to the client. *)
        match timeout with
        | Some budget when Cpu.cycles cpu - start > budget ->
          let elapsed = Cpu.cycles cpu - start in
          clobber_callee_saved ps;
          forced_return ();
          Kernel.kernel_entry t.kernel ~core;
          Kernel.kernel_exit t.kernel ~core;
          security t
            (Printf.sprintf "server %d timed out after %d cycles; client forced back"
               server_id elapsed);
          Error (Timeout { server_id; elapsed })
        | _ ->
          (* Client-key echo (illegal client return defence). *)
          let echoed =
            match attack with
            | Some `Corrupt_return_key -> Int64.lognot client_key
            | _ -> client_key
          in
          let reply_large = Bytes.length reply > Ipc.register_msg_limit in
          if reply_large then begin
            let c0 = Cpu.cycles cpu in
            Sky_trace.Trace.span ~core ~cat:"copy" "skybridge.copy" (fun () ->
                guest_copy_out t ~core b.buffer_vas.(conn) reply);
            copy_cycles := !copy_cycles + (Cpu.cycles cpu - c0)
          end;
          let reply = finish_return reply in
          if echoed <> client_key then begin
            security t
              (Printf.sprintf "server %d returned a corrupted client key"
                 server_id);
            raise (Bad_client_return { server_id })
          end;
          let reply =
            if reply_large then begin
              let c0 = Cpu.cycles cpu in
              let r =
                Sky_trace.Trace.span ~core ~cat:"copy" "skybridge.copy" (fun () ->
                    guest_copy_in t ~core b.buffer_vas.(conn) (Bytes.length reply))
              in
              copy_cycles := !copy_cycles + (Cpu.cycles cpu - c0);
              r
            end
            else reply
          in
          (* Accounting (Figure 7 categories): the two switch legs land
             in the domain-switch bucket for the user-level mechanisms
             and the syscall bucket for the kernel-mediated one. *)
          (match t.backend with
          | Backend.Vmfunc | Backend.Mpk ->
            t.stats.Breakdown.vmfunc <-
              t.stats.Breakdown.vmfunc + (2 * Backend.switch_cycles t.backend)
          | Backend.Syscall ->
            t.stats.Breakdown.syscall <-
              t.stats.Breakdown.syscall + (2 * Backend.switch_cycles t.backend));
          t.stats.Breakdown.other <-
            t.stats.Breakdown.other + (2 * Trampoline.crossing_cycles);
          t.stats.Breakdown.copy <- t.stats.Breakdown.copy + !copy_cycles;
          t.stats.Breakdown.walk <-
            t.stats.Breakdown.walk
            + (Pmu.read (Cpu.pmu cpu) Pmu.Walk_cycles - walk0);
          Ok reply
      with
      | outcome -> Result.map (fun reply -> (reply, `Direct)) outcome
      | exception e when not !returned ->
        (* The client is stranded inside the server's space: force it
           back, then surface a typed error (or re-raise a genuine bug —
           the cleanup has already happened either way). *)
        clobber_callee_saved ps;
        forced_return ();
        (match classify_abort t ~core cpu ~start ps ~server_id e with
        | Some err ->
          security t
            (Printf.sprintf "call to server %d aborted (%s); client forced back"
               server_id (Printexc.to_string e));
          Error err
        | None -> raise e)

let call t ~core ~client ~server_id ?(timeout = default_watchdog) ?attack msg =
  call_internal t ~core ~client ~server_id ~timeout ?attack msg

let direct_server_call t ~core ~client ~server_id ?timeout ?attack msg =
  match call_internal t ~core ~client ~server_id ?timeout ?attack msg with
  | Ok (reply, _) -> reply
  | Error (Timeout { server_id; elapsed }) ->
    raise (Call_timeout { server_id; elapsed })
  | Error (Crashed { server_id }) -> raise (Server_crashed { server_id })
  | Error (Revoked { server_id }) -> raise (Binding_revoked { server_id })

let current_identity t ~core = Rootkernel.current_identity t.root ~core

(* ------------------------------------------------------------------ *)
(* W^X code pages (§9)                                                 *)
(* ------------------------------------------------------------------ *)

let for_each_code_page proc f =
  List.iter
    (fun (va, code) ->
      let pages = (Bytes.length code + 4095) / 4096 in
      for i = 0 to pages - 1 do
        f (va + (i * 4096))
      done)
    proc.Proc.code

let make_code_writable t proc =
  for_each_code_page proc (fun va ->
      Page_table.protect proc.Proc.page_table ~mem:(Kernel.mem t.kernel) ~va
        ~flags:{ Pte.urw with Pte.nx = true })

let restore_code_executable t proc =
  for_each_code_page proc (fun va ->
      Page_table.protect proc.Proc.page_table ~mem:(Kernel.mem t.kernel) ~va
        ~flags:Pte.urx);
  (* Rescan the regenerated code — including instructions spanning
     neighbouring pages, because we rescan whole regions, not pages. *)
  rewrite_process t proc

let proc_is_clean t proc =
  List.for_all
    (fun (_va, code) -> Sky_rewriter.Rewrite.clean code)
    (Kernel.proc_code_bytes t.kernel proc)

(* ------------------------------------------------------------------ *)
(* Static security audit (lib/analysis)                                *)
(* ------------------------------------------------------------------ *)

(* The trampoline page as it currently exists in the shared physical
   frame — what processes actually execute, which is what the auditor
   must judge (a corrupted frame with pristine [trampoline_bytes] records
   would otherwise audit clean). *)
let live_trampoline t =
  Phys_mem.read_bytes (Kernel.mem t.kernel) t.trampoline_frame
    (Bytes.length t.trampoline_bytes)

(* Whole-machine audit: every registered process image, every guest page
   table, every process/binding EPT, every EPTP list, and the live
   trampoline bytes. Returns the (sorted) violation list; [] = clean. *)
(* [trampoline.callee-saved]: a thread at rest (no in-flight direct
   call) whose callee-saved registers still hold the aborted server
   run's clobber pattern — the §7 forced return failed to restore the
   trampoline save area. *)
let callee_saved_violations t =
  let in_flight ps =
    Array.exists
      (function Some a -> a == ps | None -> false)
      t.active_client
  in
  Hashtbl.fold (fun _ ps acc -> ps :: acc) t.pstates []
  |> List.sort (fun a b -> compare a.proc.Proc.pid b.proc.Proc.pid)
  |> List.concat_map (fun ps ->
         if in_flight ps then []
         else
           List.concat
             (List.mapi
                (fun i r ->
                  if
                    ps.regs.(Sky_isa.Reg.encoding r)
                    = Int64.of_int (0xDEAD0000 + i)
                  then
                    [
                      Sky_analysis.Report.v
                        ~invariant:"trampoline.callee-saved"
                        ~image:ps.proc.Proc.name
                        (Printf.sprintf
                           "%s holds the aborted server's clobber pattern \
                            (forced return did not restore the save area)"
                           (Sky_isa.Reg.name r));
                    ]
                  else [])
                callee_saved))

let sorted_pstates t =
  List.sort
    (fun a b -> compare a.proc.Proc.pid b.proc.Proc.pid)
    (Hashtbl.fold (fun _ ps acc -> ps :: acc) t.pstates [])

(* The server-id → server-pid table, for lowering capability grants
   (which speak server ids) into the pid pairs Isoflow's closure check
   consumes. *)
let server_ids t =
  List.sort compare
    (List.map (fun s -> (s.server_id, s.sproc.Proc.pid)) t.servers)

(* Test accessor: the live binding EPT for (client, server), for the
   mutation tests that forge mappings into it. *)
let binding_ept t proc ~server_id =
  match pstate_opt t proc with
  | None -> None
  | Some ps ->
    List.find_opt (fun b -> b.b_server_id = server_id) ps.bindings
    |> fun o ->
    Option.bind o (fun b ->
        match b.mech with Meptp e -> Some e | Mpkey _ | Mentry _ -> None)

(* Test accessor: the MPK identity of a registered process. *)
let mpk_view t proc =
  match pstate_opt t proc with
  | Some ps when t.backend = Backend.Mpk -> Some (ps.pkey, ps.pkru_view)
  | _ -> None

(* Lower the live machine into Isoflow's input: every registered process
   is both a domain (a set of VMFUNC-reachable EPTP slots) and a space
   (a CR3 that slots can land in); the live binding buffers are the only
   authorized cross-domain writable frames; [granted] defaults to the
   binding registry itself (the mesh overrides it with the capability
   closure, which is the stricter ground truth). *)
let isoflow_input ?granted t =
  let pstates = sorted_pstates t in
  let spaces =
    List.map
      (fun ps ->
        {
          Sky_analysis.Isoflow.s_pid = ps.proc.Proc.pid;
          s_name = ps.proc.Proc.name;
          s_cr3 = Proc.cr3 ps.proc;
        })
      pstates
  in
  let domains =
    List.map
      (fun ps ->
        {
          Sky_analysis.Isoflow.d_pid = ps.proc.Proc.pid;
          d_name = ps.proc.Proc.name;
          d_cr3 = Proc.cr3 ps.proc;
          d_slots = List.mapi (fun i root -> (i, root)) (eptp_list_of ps);
          d_allowed =
            Ept.root_pa ps.own_ept
            :: List.filter_map
                 (fun b ->
                   match b.mech with
                   | Meptp e -> Some (Ept.root_pa e)
                   | Mpkey _ | Mentry _ -> None)
                 ps.bindings;
        })
      pstates
  in
  let shared =
    List.concat_map
      (fun ps ->
        List.concat_map
          (fun b ->
            Array.to_list
              (Array.mapi
                 (fun i pa ->
                   {
                     Sky_analysis.Isoflow.r_name =
                       Printf.sprintf "buf:%s->server%d/%d" ps.proc.Proc.name
                         b.b_server_id i;
                     r_pa = pa;
                     r_len = buffer_size;
                   })
                 b.buffer_pas))
          ps.bindings)
      pstates
  in
  let granted =
    match granted with
    | Some g -> g
    | None ->
      List.sort_uniq compare
        (List.concat_map
           (fun ps ->
             List.map
               (fun b ->
                 ( ps.proc.Proc.pid,
                   (find_server t b.b_server_id).sproc.Proc.pid ))
               ps.bindings)
           pstates)
  in
  let cores =
    Array.to_list
      (Array.mapi
         (fun core vmcs ->
           let pid =
             match t.kernel.Kernel.running.(core) with
             | Some p when Hashtbl.mem t.pstates p.Proc.pid -> Some p.Proc.pid
             | _ -> None
           in
           ( Printf.sprintf "core%d" core,
             pid,
             Array.to_list vmcs.Vmcs.eptp_list ))
         t.root.Rootkernel.vmcses)
  in
  {
    Sky_analysis.Isoflow.mem = Kernel.mem t.kernel;
    domains;
    spaces;
    shared;
    granted;
    cores;
    base_root = Ept.root_pa t.root.Rootkernel.base_ept;
    trampoline_va = Layout.trampoline_va;
    trampoline_gpa = t.trampoline_frame;
    trampoline_bytes = live_trampoline t;
    mpk =
      (match t.backend with
      | Backend.Mpk ->
        Some
          {
            Sky_analysis.Isoflow.m_domains =
              List.map
                (fun ps ->
                  {
                    Sky_analysis.Isoflow.m_pid = ps.proc.Proc.pid;
                    m_name = ps.proc.Proc.name;
                    m_key = ps.pkey;
                    m_view = ps.pkru_view;
                  })
                pstates;
            m_shared_key = 0;
          }
      | Backend.Vmfunc | Backend.Syscall -> None);
  }

(* The full pass-registry input for this machine. *)
let audit_input ?granted t =
  let mem = Kernel.mem t.kernel in
  let tramp = live_trampoline t in
  let allowed = Trampoline.vmfunc_ranges t.trampoline_bytes in
  let pstates = sorted_pstates t in
  let images =
    Sky_analysis.Gadget.image ~name:"trampoline" ~va:Layout.trampoline_va
      ~allowed tramp
    :: List.concat_map (fun ps -> gadget_images t ps.proc) pstates
  in
  (* The MPK backend's WRPKRU scan: same images, but the allowed ranges
     are the call gate's two WRPKRUs rather than VMFUNCs. *)
  let wrpkru_images =
    match t.backend with
    | Backend.Mpk ->
      Sky_analysis.Gadget.image ~name:"trampoline" ~va:Layout.trampoline_va
        ~allowed:(Trampoline.wrpkru_ranges t.trampoline_bytes)
        tramp
      :: List.concat_map (fun ps -> gadget_images t ps.proc) pstates
    | Backend.Vmfunc | Backend.Syscall -> []
  in
  let entry_filter =
    match t.backend with
    | Backend.Syscall ->
      Some
        {
          Sky_analysis.Audit.ef_entries = Entry_filter.entries t.entry_filter;
          ef_blessed = [ (Layout.trampoline_va, 4096) ];
        }
    | Backend.Vmfunc | Backend.Mpk -> None
  in
  let epts =
    List.concat_map
      (fun ps ->
        (Printf.sprintf "ept:%s" ps.proc.Proc.name, Ept.root_pa ps.own_ept)
        :: List.filter_map
             (fun b ->
               match b.mech with
               | Meptp e ->
                 Some
                   ( Printf.sprintf "ept:%s->server%d" ps.proc.Proc.name
                       b.b_server_id,
                     Ept.root_pa e )
               | Mpkey _ | Mentry _ -> None)
             ps.bindings)
      pstates
  in
  let known_roots =
    Ept.root_pa t.root.Rootkernel.base_ept :: List.map snd epts
  in
  let eptp_lists =
    Array.to_list
      (Array.mapi (fun core vmcs -> (Printf.sprintf "vmcs:core%d" core, vmcs))
         t.root.Rootkernel.vmcses)
  in
  let page_tables =
    List.map
      (fun ps -> (Printf.sprintf "pt:%s" ps.proc.Proc.name, Proc.cr3 ps.proc))
      pstates
  in
  let machine =
    {
      Sky_analysis.Ept_check.mem;
      phys_bytes = Phys_mem.size_bytes mem;
      epts;
      known_roots;
      eptp_lists;
      page_tables;
      trampoline_gpa = t.trampoline_frame;
      trampoline_va = Layout.trampoline_va;
    }
  in
  Sky_analysis.Audit.input ~images ~wrpkru_images ~machine
    ~trampolines:[ ("trampoline", tramp, Backend.tramp_flavor t.backend) ]
    ?entry_filter ~isoflow:(isoflow_input ?granted t) ()

(* Whole-machine audit through the unified pass registry; the dynamic
   callee-saved check (live register state, not lowerable to plain data)
   rides in the trampoline pass. *)
let audit_passes ?granted t =
  let prs = Sky_analysis.Audit.run_passes (audit_input ?granted t) in
  match callee_saved_violations t with
  | [] -> prs
  | cs ->
    List.map
      (fun (pr : Sky_analysis.Audit.pass_result) ->
        if pr.Sky_analysis.Audit.pr_name = "trampoline" then
          {
            pr with
            Sky_analysis.Audit.pr_violations =
              Sky_analysis.Report.sort
                (cs @ pr.Sky_analysis.Audit.pr_violations);
          }
        else pr)
      prs

let audit t = Sky_analysis.Audit.violations (audit_passes t)
