test/test_mmu.ml: Alcotest Bytes Cache Char Cpu Ept Frame_alloc Gen Hashtbl List Machine Page_table Phys_mem Pte QCheck QCheck_alcotest Sky_mem Sky_mmu Sky_sim String Tlb Translate Vcpu Vmcs Vmfunc
