lib/xv6fs/fs.ml: Array Bcache Bytes Char Int32 List Log Printf Sky_blockdev Sky_ukernel String Superblock
