open Sky_sim
open Sky_ukernel

exception Would_block

type t = {
  kernel : Kernel.t;
  name : string;
  mutable word : int;
  mutable pending : (int * int) list;  (** (virtual time, badge), oldest first *)
  mutable waiters : int list;  (** cores blocked in [wait], oldest first *)
  mutable signals : int;
  mutable waits : int;
  mutable ipis : int;
}

let create kernel ~name =
  { kernel; name; word = 0; pending = []; waiters = []; signals = 0; waits = 0; ipis = 0 }

let signal t ~core ~badge =
  t.signals <- t.signals + 1;
  Kernel.kernel_entry t.kernel ~core;
  let cpu = Kernel.cpu t.kernel ~core in
  Cpu.charge cpu 120 (* signal fastpath: word update + waiter check *);
  t.word <- t.word lor badge;
  t.pending <- t.pending @ [ (Cpu.cycles cpu, badge) ];
  (* Kick every blocked waiter: one IPI per remote core. N signals racing
     a single wait coalesce — the word accumulates, the waiters are only
     woken (and cleared) once. *)
  List.iter
    (fun w ->
      if w <> core then begin
        t.ipis <- t.ipis + 1;
        Kernel.send_ipi t.kernel ~from_core:core ~to_core:w
      end)
    t.waiters;
  t.waiters <- [];
  Kernel.kernel_exit t.kernel ~core

let poll t ~core =
  Kernel.kernel_entry t.kernel ~core;
  Cpu.charge (Kernel.cpu t.kernel ~core) 80;
  let r = if t.word = 0 then None else Some t.word in
  if r <> None then begin
    t.word <- 0;
    t.pending <- []
  end;
  Kernel.kernel_exit t.kernel ~core;
  r

let wait t ~core =
  t.waits <- t.waits + 1;
  Kernel.kernel_entry t.kernel ~core;
  let cpu = Kernel.cpu t.kernel ~core in
  Cpu.charge cpu 150 (* block/unblock bookkeeping *);
  let deliver () =
    let w = t.word in
    t.word <- 0;
    t.pending <- [];
    t.waiters <- List.filter (fun c -> c <> core) t.waiters;
    Kernel.kernel_exit t.kernel ~core;
    w
  in
  if t.word <> 0 then begin
    (* Something already pending: if it was signalled "later" than our
       current virtual time (a signaler on another core), block until
       its delivery time. *)
    (match t.pending with
    | (at, _) :: _ -> Cpu.advance_to cpu at
    | [] -> ());
    deliver ()
  end
  else begin
    if not (List.mem core t.waiters) then t.waiters <- t.waiters @ [ core ];
    Kernel.kernel_exit t.kernel ~core;
    raise Would_block
  end

(* The documented poll loop for IRQ consumers (the NIC driver path): try
   to consume; on empty, stay registered as a waiter and burn [poll]
   cycles per round, up to [polls] rounds. In a single-threaded
   simulation a signal can only arrive between invocations (when the
   signaling core runs), so callers embed this in a run loop — e.g.
   {!Sky_sim.Machine.interleave} — and treat [None] as "idle, let the
   other cores run". *)
let wait_blocking ?(poll = 200) ?(polls = 1) t ~core =
  let cpu = Kernel.cpu t.kernel ~core in
  let rec go n =
    match wait t ~core with
    | w -> Some w
    | exception Would_block ->
      if n <= 0 then None
      else begin
        Cpu.charge cpu poll;
        go (n - 1)
      end
  in
  go polls

let signals t = t.signals
let waits t = t.waits
let ipis t = t.ipis
let waiting_cores t = t.waiters
