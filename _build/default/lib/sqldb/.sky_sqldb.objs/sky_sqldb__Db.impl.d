lib/sqldb/db.ml: Btree Bytes Fun Int32 Pager Printf Sky_ukernel Sky_xv6fs
