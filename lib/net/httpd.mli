(** skyhttpd: N worker processes (worker [i] pinned to core [i]; workers
    [0..queues-1] each own a NIC ring) parsing HTTP-style requests and
    serving them through per-worker backend {!binding}s — mediated
    SkyBridge calls on the fast path, baseline kernel IPC on the
    slowpath variant.

    Requests are routed through a multi-receiver {!Sky_mesh.Endpoint},
    not by RSS: ring owners push demultiplexed requests onto the
    endpoint, any worker pops (own queue first, then work-stealing), and
    workers beyond the ring count live purely off the endpoint — one
    server URI fanning out across more cores than RX queues.

    {b Admission control} ({!admission}): bounded per-receiver queues
    shed overflow with a typed 503 at demux time; a TTL carried on the
    request ([Http.with_ttl]) becomes an absolute deadline — expired
    requests are shed on pop, and the live deadline is exported
    ({!current_deadline}) so bindings can propagate the remaining budget
    as a backend call timeout. [a_batch_max > 1] lets a worker drain
    several queued requests per quantum and carry all their KV
    operations to the backend in one crossing ({!binding.kv_batch}),
    amortizing per-call overhead exactly when queues are deep.

    Fault site ["server.httpd"]: [Crash] kills a worker mid-request; the
    in-flight requests are parked, bindings are revoked, and the worker
    is restarted and re-bound (PR 3 machinery) with the requests
    replayed — zero lost requests. [Hang] shows up as a tail-latency
    spike. A binding that raises {!Denied} (capability revoked — least
    privilege) bounces the request to the next receiver; a request
    denied by {e every} worker terminates with a typed 403 instead of
    cycling forever. *)

type kv_op = Op_put of string * bytes | Op_get of string
type kv_reply = R_stored of bool | R_value of bytes option

type binding = {
  kv_put : core:int -> key:string -> value:bytes -> bool;
  kv_get : core:int -> key:string -> bytes option;
  fs_read : core:int -> name:string -> bytes option;
  kv_batch : (core:int -> kv_op list -> kv_reply list) option;
  revoke : core:int -> unit;
  rebind : core:int -> unit;
}
(** One worker's typed view of the backends, closed over its process and
    transport. [revoke]/[rebind] bracket a worker crash/restart;
    [kv_batch] (optional) serves a whole list of KV operations in one
    backend crossing — the batched worker→backend hop. *)

type req
(** A demultiplexed request riding the endpoint (opaque): carries its
    connection, body, absolute deadline, and denied-worker mask. *)

type admission = {
  a_queue_cap : int option;
      (** per-receiver endpoint queue bound; [None] = unbounded *)
  a_default_ttl : int option;
      (** deadline (cycles from demux) stamped on TTL-less requests *)
  a_batch_max : int;  (** max requests drained per worker quantum *)
}

val no_admission : admission
(** Unbounded queues, no deadlines, singleton batches — byte-identical
    to the pre-admission server. *)

type t

val fault_site : string
(** ["server.httpd"] — arm {!Sky_faults.Fault} here to crash/hang
    workers mid-request. *)

exception Denied
(** Raised by a binding whose capability was revoked: the worker
    survives, counts the denial, and bounces the request to a peer.
    Once every worker has denied it, the request terminates as a typed
    403 ({!unservable}). *)

exception Expired
(** Raised by a deadline-aware binding when the request's remaining
    budget is gone: the request is shed with a 503 ({!shed_expired}). *)

val restart_cycles : int

val create :
  ?preload:string list ->
  ?file_cache:bool ->
  ?admission:admission ->
  ?wire_hint:(unit -> int option) ->
  Sky_ukernel.Kernel.t ->
  Nic.t ->
  workers:(Sky_ukernel.Proc.t * binding) array ->
  queue_done:(queue:int -> bool) ->
  t
(** One worker per (process, binding) pair; worker [i] is pinned to core
    [i]. There must be at least as many workers as NIC queues; workers
    [0..queues-1] own a ring each and park blocked in recv on its IRQ,
    the rest park on the endpoint notification. The caller spawns the
    processes (they must already be registered as clients with whatever
    transport the bindings use). [preload] names static files each
    worker reads into its cache at boot, through its binding — the
    startup cost of not convoying every request on the FS big lock.
    [file_cache] (default true) enables the per-worker static-file
    cache; the composed mesh scenario disables it so every [Fs_get]
    exercises the capability-checked backend path. [admission] (default
    {!no_admission}) configures queue bounds, default deadlines and
    batching. [wire_hint] reports the next future wire event the rings
    cannot see (an open-loop generator's next arrival) so drained
    workers sleep to it. [queue_done] is the load generator's per-queue
    exit test. *)

val step : t -> core:int -> Sky_sim.Machine.step
(** One event-loop quantum of [core]'s worker, for
    {!Sky_sim.Machine.interleave}. *)

val run : t -> unit
(** Interleave all workers by virtual time until every queue is done and
    the endpoint is drained. *)

type session
(** Persistent run-loop state for driving the server a bounded slice of
    virtual time at a time (the quantum scheduler's lane hook). *)

val start : t -> session

val advance : t -> session -> until:int -> [ `Paused | `Done ]
(** Interleave workers until every live core's clock reaches [until]
    ([`Paused]) or the whole workload completes ([`Done]). Chunking via
    [advance] replays exactly the same step sequence as one [run] — see
    {!Sky_sim.Machine.run_until}. *)

val served : t -> int
val bad_requests : t -> int
val restarts : t -> int
val hangs : t -> int

val denials : t -> int
(** Requests bounced to a peer because a binding raised {!Denied}. *)

val unservable : t -> int
(** Requests denied by {e every} worker and terminated with a 403 —
    the counted-error outcome of total capability revocation. *)

val shed_queue : t -> int
(** Requests 503-shed at demux because the target endpoint queue was at
    its [a_queue_cap] bound. *)

val shed_expired : t -> int
(** Requests 503-shed because their deadline passed while queued (or
    mid-dispatch, via {!Expired}). *)

val shed : t -> int
(** [shed_queue + shed_expired]. *)

val batches : t -> int
(** Batched worker→backend crossings issued (≥ 2 KV ops each). *)

val batched_ops : t -> int
(** KV operations carried by those crossings. *)

val current_deadline : t -> core:int -> int option
(** Absolute deadline of the request being dispatched on [core], if any
    — what a deadline-propagating binding reads to derive the backend
    call timeout. *)

val steals : t -> int
(** Endpoint pops satisfied from a peer's receive queue. *)

val endpoint : t -> req Sky_mesh.Endpoint.t

val fs_cold : t -> int
(** Static-file cache misses served through the (big-locked) xv6fs
    backend. Each worker pays one per file per lifetime — a crash wipes
    its cache, so restarts re-read through the FS. *)

val worker_served : t -> int -> int
