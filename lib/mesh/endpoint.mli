(** Multi-receiver endpoints: one service URI fanning out over N
    receiver cores (hiillos's "multiple parallel receivers", the shape a
    serving fleet needs), replacing RSS-as-routing with an explicit
    queue + {!Sky_kernels.Notification} wake.

    Each receiver owns a FIFO receive queue; {!push} places an item on
    one queue (round-robin by default) and signals the endpoint's
    notification with the receiver's badge bit. {!pop} serves the
    receiver's own queue first and otherwise {e steals} from the longest
    other queue (ties to the lowest index) — deterministic, so whole
    runs stay bit-reproducible under {!Sky_sim.Machine.interleave}.

    Conservation invariant (checked by test/test_mesh.ml): every pushed
    item is popped exactly once, under any receiver interleaving. *)

type 'a t

val create :
  ?capacity:int -> Sky_ukernel.Kernel.t -> name:string -> receivers:int -> 'a t
(** [capacity] bounds each receiver's queue for {!try_push} (admission
    control); {!push} itself stays unbounded — reserved for items that
    must not be dropped (crash replays, denial bounces). *)

val receivers : 'a t -> int

val push : 'a t -> core:int -> ?receiver:int -> 'a -> unit
(** Enqueue on [receiver]'s queue (default: round-robin cursor), charge
    the enqueue cost on [core], and signal the wake notification with
    badge bit [1 lsl receiver]. *)

val try_push : 'a t -> core:int -> ?receiver:int -> 'a -> bool
(** Like {!push} but refusing (returning [false], counting it in
    {!rejected}) when the target queue already holds [capacity] items —
    the bounded-queue admission decision. Always succeeds on an
    unbounded endpoint. *)

val pop : 'a t -> core:int -> recv:int -> 'a option
(** Dequeue for receiver [recv]: own queue first, then steal from the
    longest other queue. [None] when the whole endpoint is empty. *)

val note : 'a t -> Sky_kernels.Notification.t
(** The wake notification — what an idle receiver blocks on. *)

val pending : 'a t -> int
(** Items currently queued across all receivers. *)

val queue_level : 'a t -> recv:int -> int
val pushed : 'a t -> int
val popped : 'a t -> int
val steals : 'a t -> int

val rejected : 'a t -> int
(** {!try_push} refusals (load shed at the queue). *)

val capacity : 'a t -> int option

val push_cycles : int
val pop_cycles : int
val steal_cycles : int
