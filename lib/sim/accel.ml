(** Global state for the translation-acceleration layer.

    Two pieces, both deliberately tiny so the hot path pays one atomic
    load:

    {b The kill switch.} All acceleration structures (paging-structure
    caches, EPT walk cache, host-side hot lines) consult [is_enabled].
    Disabling them restores the pre-acceleration walker bit for bit —
    the cache-free reference the equivalence property tests against and
    the "before" column of the EXPERIMENTS.md pingpong table. The
    switch lives in the scope, not in process-wide state: the pingpong
    experiment toggles it mid-run, and a `--jobs` replica flipping a
    shared flag would perturb the measurements of replicas running
    concurrently on other domains.

    {b The mutation epoch.} Control-plane events that can invalidate a
    cached translation without going through an architectural flush —
    [Ept.unmap_4k], an EPT remap of a live leaf, [Page_table.unmap] /
    [protect], table destruction — bump an epoch. Every translation
    structure records the epoch it last observed and lazily self-flushes
    (O(1), via its generation counter) when it sees a newer one. This
    keeps the rare mutation path O(1) and the per-lookup cost at one
    integer compare, while guaranteeing that no stale entry survives a
    mapping change.

    The epoch lives in a {!scope}: single-machine runs use the
    process-wide default scope; the parallel scheduler binds a fresh
    scope domain-locally per shard ({!with_scope}) so one shard's EPT
    mutations never spuriously flush another shard's caches — which
    would otherwise make cycle counts depend on shard interleaving. *)

type scope = { mutable s_epoch : int; mutable s_enabled : bool }

let fresh_scope () = { s_epoch = 0; s_enabled = true }

let default_scope = fresh_scope ()

(* Number of domains bound to a non-default scope (fast default / scoped
   override, same pattern as {!Sky_trace.Trace}). *)
let scoped = Atomic.make 0

let scope_key : scope Domain.DLS.key = Domain.DLS.new_key (fun () -> default_scope)

let scope () =
  if Atomic.get scoped = 0 then default_scope else Domain.DLS.get scope_key

let with_scope s f =
  let prev = Domain.DLS.get scope_key in
  Domain.DLS.set scope_key s;
  Atomic.incr scoped;
  Fun.protect
    ~finally:(fun () ->
      Domain.DLS.set scope_key prev;
      Atomic.decr scoped)
    f

let is_enabled () = (scope ()).s_enabled

let current_epoch () = (scope ()).s_epoch

let bump () =
  let s = scope () in
  s.s_epoch <- s.s_epoch + 1

let set_enabled b =
  (scope ()).s_enabled <- b;
  (* Entries inserted before a disable/enable round trip may predate
     mutations performed while the structures were dormant: discard. *)
  bump ()
