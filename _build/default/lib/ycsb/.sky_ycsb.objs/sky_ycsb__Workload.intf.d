lib/ycsb/workload.mli: Sky_sqldb Sky_ukernel
