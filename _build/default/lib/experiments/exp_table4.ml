(** Table 4: throughput of the four basic SQLite operations under
    ST-Server / MT-Server / SkyBridge on the three microkernels. *)

open Sky_harness
open Sky_ukernel

type measurement = { insert : float; update : float; query : float; delete : float }

let paper =
  [
    (Config.Sel4, "ST-Server", (4839.08, 3943.71, 13245.92, 4326.92));
    (Config.Sel4, "MT-Server", (6001.82, 4714.52, 14025.37, 5314.04));
    (Config.Sel4, "SkyBridge", (11251.08, 7335.57, 18610.60, 7339.31));
    (Config.Fiasco, "ST-Server", (1296.83, 1222.83, 8108.11, 1255.23));
    (Config.Fiasco, "MT-Server", (1685.39, 1557.09, 8256.88, 1607.14));
    (Config.Fiasco, "SkyBridge", (5000.00, 4545.45, 15789.47, 4568.53));
    (Config.Zircon, "ST-Server", (1408.42, 1376.77, 9432.34, 1389.64));
    (Config.Zircon, "MT-Server", (2467.90, 2360.00, 9535.56, 1389.64));
    (Config.Zircon, "SkyBridge", (7710.63, 6643.24, 17843.54, 7027.30));
  ]

let ops_per_segment = 400

let measure ~variant ~transport =
  let stack = Stack.build ~variant ~transport () in
  let db = stack.Stack.db in
  let cpu = Kernel.cpu stack.Stack.kernel ~core:0 in
  let rng = Sky_sim.Rng.create ~seed:0x7ab1e4 in
  let value () = Sky_sim.Rng.bytes rng 100 in
  (* Warm the stack with a base table bigger than the pager cache. *)
  for key = 0 to 99 do
    Sky_sqldb.Db.insert db ~core:0 ~key ~value:(value ())
  done;
  let segment f =
    let t0 = Sky_sim.Cpu.cycles cpu in
    for i = 0 to ops_per_segment - 1 do
      f i
    done;
    Sky_sim.Costs.ops_per_sec ~ops:ops_per_segment
      ~cycles:(Sky_sim.Cpu.cycles cpu - t0)
  in
  let insert = segment (fun i -> Sky_sqldb.Db.insert db ~core:0 ~key:(1000 + i) ~value:(value ())) in
  let update =
    segment (fun i -> ignore (Sky_sqldb.Db.update db ~core:0 ~key:(1000 + i) ~value:(value ())))
  in
  let query = segment (fun i -> ignore (Sky_sqldb.Db.query db ~core:0 ~key:(1000 + i))) in
  let delete = segment (fun i -> ignore (Sky_sqldb.Db.delete db ~core:0 ~key:(1000 + i))) in
  { insert; update; query; delete }

let run () =
  let variants = [ Config.Sel4; Config.Fiasco; Config.Zircon ] in
  let transports =
    [ ("ST-Server", Stack.Ipc { st = true }); ("MT-Server", Stack.Ipc { st = false });
      ("SkyBridge", Stack.Skybridge) ]
  in
  let results =
    List.concat_map
      (fun variant ->
        List.map
          (fun (tname, transport) -> ((variant, tname), measure ~variant ~transport))
          transports)
      variants
  in
  let rows =
    List.concat_map
      (fun variant ->
        let get tname = List.assoc (variant, tname) results in
        let st = get "ST-Server" and mt = get "MT-Server" and sky = get "SkyBridge" in
        let paper_of tname =
          let _, _, v = List.find (fun (v, t, _) -> v = variant && t = tname) paper in
          v
        in
        let row op pick =
          let pst, pmt, psky =
            let f (a, b, c, d) =
              match op with
              | "Insert" -> a
              | "Update" -> b
              | "Query" -> c
              | _ -> d
            in
            (f (paper_of "ST-Server"), f (paper_of "MT-Server"), f (paper_of "SkyBridge"))
          in
          [
            Printf.sprintf "%s %s" (Config.variant_name variant) op;
            Printf.sprintf "%.0f/%s" pst (Tbl.fmt_ops (pick st));
            Printf.sprintf "%.0f/%s" pmt (Tbl.fmt_ops (pick mt));
            Printf.sprintf "%.0f/%s" psky (Tbl.fmt_ops (pick sky));
            Printf.sprintf "%+.1f%% (paper %+.1f%%)"
              ((pick sky /. pick mt -. 1.0) *. 100.0)
              ((psky /. pmt -. 1.0) *. 100.0);
          ]
        in
        [
          row "Insert" (fun m -> m.insert);
          row "Update" (fun m -> m.update);
          row "Query" (fun m -> m.query);
          row "Delete" (fun m -> m.delete);
        ])
      variants
  in
  Tbl.make ~title:"Table 4: SQLite3 basic operations (ops/s, paper/ours)"
    ~header:[ "kernel op"; "ST-Server"; "MT-Server"; "SkyBridge"; "speedup vs MT" ]
    ~notes:
      [
        "shape targets: SkyBridge > MT > ST everywhere; Query gains least \
         (pager cache absorbs reads); Fiasco/Zircon gain more than seL4";
      ]
    rows
