(** A user process: page table, address-space bookkeeping, code pages. *)

type t = {
  pid : int;
  name : string;
  page_table : Sky_mmu.Page_table.t;
  mutable next_heap_va : int;
  mutable next_stack_va : int;
  mutable code : (int * bytes) list;  (** (va, bytes) executable regions *)
  mutable identity_frame : int;  (** PA of the identity page (0 = none) *)
}

let create ~pid ~name ~page_table =
  {
    pid;
    name;
    page_table;
    next_heap_va = Layout.heap_va;
    next_stack_va = Layout.stack_top_va;
    code = [];
    identity_frame = 0;
  }

let cr3 t = Sky_mmu.Page_table.root_pa t.page_table

let bump_heap t len =
  let va = t.next_heap_va in
  t.next_heap_va <- (t.next_heap_va + len + 4095) land lnot 4095;
  va

(* Stacks grow down; carve fixed-size slots below the previous one. *)
let bump_stack t len =
  let len = (len + 4095) land lnot 4095 in
  t.next_stack_va <- t.next_stack_va - len - 4096 (* guard page *);
  t.next_stack_va
