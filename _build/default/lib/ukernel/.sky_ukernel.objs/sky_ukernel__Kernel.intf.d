lib/ukernel/kernel.mli: Config Proc Sky_isa Sky_mem Sky_mmu Sky_sim
