(** Translation look-aside buffer.

    Set-associative, LRU, keyed by virtual page number and an address-space
    identifier. The ASID is an opaque tag composed by the MMU layer from
    (VPID, PCID, EPTP root) so that, as on real hardware with VPID+PCID
    enabled, neither CR3 writes nor VMFUNC EPTP switches need flush the
    TLB — stale entries are simply never matched.

    All flushes are O(1) on the slot array: [flush_all] bumps a
    generation counter, [flush_asid] records a per-ASID LRU-clock floor,
    and mapping mutations elsewhere in the machine (EPT unmap/remap,
    guest page-table unmap/protect, table teardown) invalidate every
    instance lazily through the global {!Accel} mutation epoch. *)

type t

type entry = {
  ppn : int;  (** physical page number the VPN maps to *)
  page_shift : int;  (** 12 for 4 KiB, 21 for 2 MiB, 30 for 1 GiB *)
  writable : bool;
  user : bool;
}

type slot
(** A handle on the internal storage of one entry, for hot-line
    memoization: remember the slot a lookup hit and revalidate it with
    {!slot_hit} instead of re-scanning the set. *)

val create : name:string -> entries:int -> ways:int -> t

val name : t -> string
val capacity : t -> int

val lookup : t -> asid:int -> vpn:int -> entry option
(** Hit updates LRU state and the hit counter; miss counts a miss. *)

val lookup_slot : t -> asid:int -> vpn:int -> slot option
(** Like {!lookup} but returns the slot handle on a hit. *)

val slot_entry : slot -> entry

val slot_hit : t -> slot -> asid:int -> vpn:int -> entry option
(** If [slot] still holds a live mapping for (asid, vpn), count a hit,
    update LRU state and return the entry — observably identical to a
    {!lookup} hit, without the set scan. Returns [None] (and counts
    nothing) if the slot was reused, flushed or outlived by a flush;
    the caller then falls back to {!lookup}/{!lookup_slot}. *)

val insert : t -> asid:int -> vpn:int -> entry -> unit

val flush_all : t -> unit
(** O(1): bumps the generation counter. *)

val flush_asid : t -> asid:int -> unit
(** Invalidate every entry tagged [asid] (INVPCID-style). O(1). *)

val flush_page : t -> asid:int -> vpn:int -> unit
(** INVLPG-style single-entry invalidation. *)

val flush_vpn_all_asids : t -> vpn:int -> unit
(** Invalidate [vpn] under every ASID (INVLPG also drops
    paging-structure-cache entries regardless of PCID). O(ways). *)

val hits : t -> int
val misses : t -> int
val reset_stats : t -> unit
