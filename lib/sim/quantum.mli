(** Quantum-synchronized execution of independent simulation lanes
    (shards), sequentially or across OCaml domains.

    Lanes advance privately inside a fixed quantum of simulated cycles
    and synchronize at quantum boundaries; cross-lane interaction is
    deferred to the boundary [commit]. [Seq] and [Par] are
    bit-identical by construction — see the determinism argument in the
    implementation and DESIGN.md. *)

type lane = {
  l_name : string;
  l_advance : until:int -> [ `Paused | `Done ];
      (** Advance this lane's world until its clocks reach the boundary
          ([`Paused]) or its workload completes ([`Done]). Must bind the
          lane's {!Scopes} bundle itself: under [Par] it runs on an
          arbitrary worker domain each quantum. *)
}

type engine =
  | Seq  (** advance lanes in order on the calling domain *)
  | Par of { jobs : int }
      (** advance lanes on [jobs] spawned domains (lane [i] on worker
          [i mod jobs]), joining at each boundary *)

val engine_name : engine -> string

val default_quantum : int
(** 50k simulated cycles: coarse enough to amortize the barrier, fine
    enough that boundary commits (gossip, load rebalance) stay timely. *)

val run :
  ?quantum:int ->
  engine ->
  lanes:lane list ->
  ?commit:(boundary:int -> unit) ->
  unit ->
  int
(** Drive all lanes to completion; returns the number of quanta
    executed. After each quantum's barrier, [commit ~boundary] runs
    single-threaded on the caller — the only place cross-lane state may
    be touched. *)
