examples/quickstart.mli:
