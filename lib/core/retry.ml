open Sky_ukernel

type stats = {
  mutable attempts : int;
  mutable retried_ok : int;
  mutable degraded : int;
  mutable lost : int;
  mutable restarts : int;
}

let create_stats () =
  { attempts = 0; retried_ok = 0; degraded = 0; lost = 0; restarts = 0 }

(* Finagle-style retry budget: every fresh call deposits [ratio] tokens
   (clamped to [cap]), every retry withdraws one. Under overload most
   calls fail, deposits dry up, and retries are refused instead of
   multiplying the offered load — the amplification limiter. The budget
   also owns the jitter stream: decorrelated backoff, deterministic
   because the simulation is single-threaded. *)
type budget = {
  b_rng : Sky_sim.Rng.t;
  b_ratio : float;
  b_cap : float;
  mutable b_tokens : float;
  mutable b_withdrawn : int;
  mutable b_refused : int;
}

let budget ?(cap = 32.0) ?(ratio = 0.2) ~seed () =
  if ratio < 0.0 then invalid_arg "Retry.budget: ratio";
  {
    b_rng = Sky_sim.Rng.create ~seed:(seed lxor 0x5e77b);
    b_ratio = ratio;
    b_cap = cap;
    b_tokens = cap /. 2.0;
    b_withdrawn = 0;
    b_refused = 0;
  }

let budget_refused b = b.b_refused
let budget_withdrawn b = b.b_withdrawn

let deposit b =
  b.b_tokens <- Float.min b.b_cap (b.b_tokens +. b.b_ratio)

let try_withdraw b =
  if b.b_tokens >= 1.0 then begin
    b.b_tokens <- b.b_tokens -. 1.0;
    b.b_withdrawn <- b.b_withdrawn + 1;
    true
  end
  else begin
    b.b_refused <- b.b_refused + 1;
    false
  end

exception Gave_up of Subkernel.call_error

let bump stats f = match stats with Some s -> f s | None -> ()

let call ?(max_attempts = 4) ?(backoff = 2000) ?stats ?budget ?timeout
    ?(on_crash = fun _ -> ()) sb ~core ~client ~server_id msg =
  let cpu = Kernel.cpu (Subkernel.kernel sb) ~core in
  (match budget with Some b -> deposit b | None -> ());
  let rec go attempt =
    bump stats (fun s -> s.attempts <- s.attempts + 1);
    match Subkernel.call sb ~core ~client ~server_id ?timeout msg with
    | Ok (reply, via) ->
      if attempt > 0 then bump stats (fun s -> s.retried_ok <- s.retried_ok + 1);
      if via = `Slowpath then bump stats (fun s -> s.degraded <- s.degraded + 1);
      reply
    | Error err ->
      let refused =
        match budget with Some b -> not (try_withdraw b) | None -> false
      in
      if attempt + 1 >= max_attempts || refused then begin
        bump stats (fun s -> s.lost <- s.lost + 1);
        raise (Gave_up err)
      end;
      (* Exponential backoff, charged as client compute; with a budget,
         decorrelated jitter spreads the storm's synchronized retries. *)
      let wait =
        let base = backoff lsl attempt in
        match budget with
        | Some b -> (base / 2) + Sky_sim.Rng.int b.b_rng (Int.max 1 base)
        | None -> base
      in
      Sky_sim.Cpu.charge cpu wait;
      Sky_trace.Trace.instant ~core ~cat:"recovery" "recovery.retry";
      (match err with
      | Subkernel.Crashed { server_id = sid } ->
        Subkernel.restart_server sb ~server_id:sid;
        bump stats (fun s -> s.restarts <- s.restarts + 1);
        on_crash sid
      | Subkernel.Revoked { server_id = sid } ->
        (* An aborted direct call revoked the binding: re-establish it
           (a top-level revocation degrades inside Subkernel.call and
           never reaches this handler). *)
        Subkernel.rebind sb client ~server_id:sid
      | Subkernel.Timeout _ -> ());
      go (attempt + 1)
  in
  go 0
