(** Global state for the translation-acceleration layer.

    Two pieces, both deliberately tiny so the hot path pays one ref read:

    {b The kill switch.} All acceleration structures (paging-structure
    caches, EPT walk cache, host-side hot lines) consult [is_enabled].
    Disabling them restores the pre-acceleration walker bit for bit —
    the cache-free reference the equivalence property tests against and
    the "before" column of the EXPERIMENTS.md pingpong table.

    {b The mutation epoch.} Control-plane events that can invalidate a
    cached translation without going through an architectural flush —
    [Ept.unmap_4k], an EPT remap of a live leaf, [Page_table.unmap] /
    [protect], table destruction — bump a single global epoch. Every
    translation structure records the epoch it last observed and lazily
    self-flushes (O(1), via its generation counter) when it sees a newer
    one. This keeps the rare mutation path O(1) and the per-lookup cost
    at one integer compare, while guaranteeing that no stale entry
    survives a mapping change. *)

let enabled = ref true
let epoch = ref 0

let is_enabled () = !enabled

let set_enabled b =
  enabled := b;
  (* Entries inserted before a disable/enable round trip may predate
     mutations performed while the structures were dormant: discard. *)
  incr epoch

let current_epoch () = !epoch
let bump () = incr epoch
