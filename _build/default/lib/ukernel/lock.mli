(** A cross-core lock in virtual time.

    Cores are independent cycle counters; a lock serializes them by
    advancing the acquiring core to the release time of the previous
    holder. Contended cross-core handoffs additionally pay a convoy cost
    (the waiter sleeps and is woken through the kernel, then drags the
    protected working set across the cache hierarchy) that grows with
    the number of cores fighting over the lock — the effect that
    collapses the paper's Figures 9–11 as client threads are added. *)

type t = {
  name : string;
  mutable available_at : int;
  mutable acquisitions : int;
  mutable contended : int;
  mutable wait_cycles : int;
  mutable holder : int;
  recent : int array;
  mutable recent_idx : int;
}

val create : string -> t

val acquire : t -> Sky_sim.Cpu.t -> unit
(** Blocks (advances the core) until available; charges the handoff /
    migration cost when the holder changes core. *)

val release : t -> Sky_sim.Cpu.t -> unit

val with_lock : t -> Sky_sim.Cpu.t -> (unit -> 'a) -> 'a
(** Acquire, run, release (exception-safe). *)

val convoy_size : t -> int
(** Distinct cores among the recent acquirers. *)

val contended_handoff_cycles : int
val migration_cycles : int
