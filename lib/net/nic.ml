(** A simulated multi-queue NIC.

    Descriptor rings and packet buffers live in simulated physical
    memory, so driver accesses have real cache footprints; the wire side
    (DMA engine) writes them raw, like a device master that bypasses the
    core's caches. Flows are spread over queues by RSS: a splitmix hash
    of the flow id indexed into a 128-entry redirection table (RETA)
    initialized round-robin, exactly the scheme real NICs default to.
    Each queue raises its RX interrupt through a badged
    {!Sky_kernels.Notification} pinned to one core — coalesced, so a
    burst of deliveries costs one wakeup. *)

open Sky_sim
open Sky_ukernel

let ring_entries = 256
let desc_bytes = 16
let buf_slot = 512
let reta_entries = 128

let payload_max = buf_slot - 2 (* u16 length prefix in the buffer slot *)

type pkt = { flow : int; seq : int; payload : bytes; deliver_at : int }

type ring = {
  desc_pa : int;  (** descriptor array base (simulated physical memory) *)
  buf_pa : int;  (** packet buffer slots, [buf_slot] bytes each *)
  mutable head : int;  (** consumer index (free-running) *)
  mutable tail : int;  (** producer index (free-running) *)
  deliver_at : int array;  (** per-slot wire timestamp (sim bookkeeping) *)
}

type queue = {
  id : int;
  rx : ring;
  tx : ring;
  irq : Sky_kernels.Notification.t;
  mutable pinned_core : int;
  mutable rx_pkts : int;
  mutable tx_pkts : int;
  mutable irqs_raised : int;
}

type t = {
  kernel : Kernel.t;
  queues : queue array;
  reta : int array;
  mutable on_tx : pkt -> unit;  (** wire-side TX-completion hook *)
  mutable dropped : int;  (** ring-full drops *)
}

exception Ring_full of { queue : int }

let alloc_ring kernel =
  let alloc = Kernel.alloc kernel in
  let desc_pa =
    Sky_mem.Frame_alloc.alloc_frames alloc
      ~count:((ring_entries * desc_bytes) / Sky_mem.Phys_mem.frame_size)
  in
  let buf_pa =
    Sky_mem.Frame_alloc.alloc_frames alloc
      ~count:((ring_entries * buf_slot) / Sky_mem.Phys_mem.frame_size)
  in
  { desc_pa; buf_pa; head = 0; tail = 0; deliver_at = Array.make ring_entries 0 }

let create kernel ~queues:nq =
  if nq <= 0 then invalid_arg "Nic.create: queues <= 0";
  let queues =
    Array.init nq (fun id ->
        {
          id;
          rx = alloc_ring kernel;
          tx = alloc_ring kernel;
          irq =
            Sky_kernels.Notification.create kernel
              ~name:(Printf.sprintf "nic-rxq%d" id);
          pinned_core = id;
          rx_pkts = 0;
          tx_pkts = 0;
          irqs_raised = 0;
        })
  in
  (* RETA default: round-robin over the enabled queues. *)
  let reta = Array.init reta_entries (fun i -> i mod nq) in
  { kernel; queues; reta; on_tx = (fun _ -> ()); dropped = 0 }

let n_queues t = Array.length t.queues
let irq t ~queue = t.queues.(queue).irq
let pin t ~queue ~core = t.queues.(queue).pinned_core <- core
let set_on_tx t f = t.on_tx <- f
let dropped t = t.dropped

(* splitmix64 finalizer over the flow id — the "Toeplitz hash" stand-in. *)
let rss_hash flow =
  let z = Int64.of_int (flow * 2 + 0x9e3779b9) in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94d049bb133111ebL in
  Int64.to_int (Int64.logxor z (Int64.shift_right_logical z 31)) land max_int

let queue_of_flow t flow = t.reta.(rss_hash flow land (reta_entries - 1))

let ring_level r = r.tail - r.head
let rx_level t ~queue = ring_level t.queues.(queue).rx

(* ---- raw descriptor encoding ----
   [flow:u32][seq:u32][len:u16][pad:u16][gen:u32] at desc_pa + slot*16.
   The wire writes raw (device DMA); the driver reads through the cache
   model so polling the ring has an honest footprint. *)

let write_desc mem r slot ~flow ~seq ~len =
  let pa = r.desc_pa + (slot * desc_bytes) in
  Sky_mem.Phys_mem.write_u32 mem pa flow;
  Sky_mem.Phys_mem.write_u32 mem (pa + 4) seq;
  Sky_mem.Phys_mem.write_u16 mem (pa + 8) len

let read_desc mem r slot =
  let pa = r.desc_pa + (slot * desc_bytes) in
  let flow = Sky_mem.Phys_mem.read_u32 mem pa in
  let seq = Sky_mem.Phys_mem.read_u32 mem (pa + 4) in
  let len = Sky_mem.Phys_mem.read_u16 mem (pa + 8) in
  (flow, seq, len)

let charge_desc cpu r slot =
  Memsys.touch_range cpu Memsys.Data ~pa:(r.desc_pa + (slot * desc_bytes))
    ~len:desc_bytes

let charge_payload cpu r slot len =
  Memsys.touch_range cpu Memsys.Data ~pa:(r.buf_pa + (slot * buf_slot))
    ~len:(max 1 len)

(* ---- wire side (RX delivery) ---- *)

let deliver t ~flow ~seq ~payload ~at =
  if Bytes.length payload > payload_max then
    invalid_arg "Nic.deliver: payload exceeds MTU";
  let q = t.queues.(queue_of_flow t flow) in
  let r = q.rx in
  if ring_level r >= ring_entries then begin
    t.dropped <- t.dropped + 1
  end
  else begin
    let slot = r.tail mod ring_entries in
    let mem = Kernel.mem t.kernel in
    write_desc mem r slot ~flow ~seq ~len:(Bytes.length payload);
    Sky_mem.Phys_mem.write_bytes mem (r.buf_pa + (slot * buf_slot)) payload;
    r.deliver_at.(slot) <- at;
    let was_empty = ring_level r = 0 in
    r.tail <- r.tail + 1;
    q.rx_pkts <- q.rx_pkts + 1;
    (* Interrupt coalescing: only the empty->non-empty edge raises the
       MSI-X vector; packets landing on a backlogged ring are picked up
       by the same service pass. *)
    if was_empty then begin
      q.irqs_raised <- q.irqs_raised + 1;
      Sky_kernels.Notification.signal q.irq ~core:q.pinned_core
        ~badge:(1 lsl q.id)
    end
  end

(* ---- driver side ---- *)

let rx t ~queue ~core =
  let q = t.queues.(queue) in
  let r = q.rx in
  if ring_level r = 0 then None
  else begin
    let cpu = Kernel.cpu t.kernel ~core in
    let slot = r.head mod ring_entries in
    charge_desc cpu r slot;
    let mem = Kernel.mem t.kernel in
    let flow, seq, len = read_desc mem r slot in
    (* The packet exists on the wire only from its delivery time. *)
    Cpu.advance_to cpu r.deliver_at.(slot);
    charge_payload cpu r slot len;
    let payload = Sky_mem.Phys_mem.read_bytes mem (r.buf_pa + (slot * buf_slot)) len in
    r.head <- r.head + 1;
    Some { flow; seq; payload; deliver_at = r.deliver_at.(slot) }
  end

let next_deliver_at t ~queue =
  let r = t.queues.(queue).rx in
  if ring_level r = 0 then None
  else Some r.deliver_at.(r.head mod ring_entries)

let tx t ~queue ~core ~flow ~seq payload =
  if Bytes.length payload > payload_max then
    invalid_arg "Nic.tx: payload exceeds MTU";
  let q = t.queues.(queue) in
  let r = q.tx in
  if ring_level r >= ring_entries then raise (Ring_full { queue });
  let cpu = Kernel.cpu t.kernel ~core in
  let slot = r.tail mod ring_entries in
  let mem = Kernel.mem t.kernel in
  (* The driver composes the descriptor and payload through the cache
     hierarchy (it owns these lines until the doorbell rings). *)
  charge_desc cpu r slot;
  charge_payload cpu r slot (Bytes.length payload);
  write_desc mem r slot ~flow ~seq ~len:(Bytes.length payload);
  Sky_mem.Phys_mem.write_bytes mem (r.buf_pa + (slot * buf_slot)) payload;
  r.tail <- r.tail + 1;
  q.tx_pkts <- q.tx_pkts + 1;
  (* Doorbell: an uncached MMIO store. *)
  Memsys.access_uncached cpu;
  (* The simulated wire completes TX immediately: hand the packet to the
     installed wire hook (the load generator's loopback). *)
  let pkt = { flow; seq; payload; deliver_at = Cpu.cycles cpu } in
  r.head <- r.head + 1;
  t.on_tx pkt

let rx_pkts t ~queue = t.queues.(queue).rx_pkts
let tx_pkts t ~queue = t.queues.(queue).tx_pkts
let irqs_raised t ~queue = t.queues.(queue).irqs_raised
