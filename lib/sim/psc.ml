(** Paging-structure caches and the EPT walk cache.

    Skylake-class hardware keeps, besides the leaf TLBs, small caches of
    upper-level paging-structure entries (PML4E / PDPTE / PDE) so a TLB
    miss resumes the page walk at the deepest cached level, and a nested
    walk cache so the EPT translations of guest table pages skip the EPT
    walk. All four are the same structure: a set-associative ASID-tagged
    map from an integer key to an integer payload. We reuse {!Tlb}'s
    storage (payload in [entry.ppn]) so they inherit its LRU policy and
    its O(1) generation/epoch-based invalidation for free. *)

type t = Tlb.t

let create ~name ~entries ~ways = Tlb.create ~name ~entries ~ways
let name = Tlb.name

let lookup t ~asid ~key =
  match Tlb.lookup t ~asid ~vpn:key with
  | Some e -> Some e.Tlb.ppn
  | None -> None

let insert t ~asid ~key value =
  Tlb.insert t ~asid ~vpn:key
    { Tlb.ppn = value; page_shift = 0; writable = false; user = false }

let flush_all = Tlb.flush_all
let flush_asid = Tlb.flush_asid
let flush_key t ~key = Tlb.flush_vpn_all_asids t ~vpn:key
let hits = Tlb.hits
let misses = Tlb.misses
let reset_stats = Tlb.reset_stats
