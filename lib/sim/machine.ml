type t = {
  mem : Sky_mem.Phys_mem.t;
  alloc : Sky_mem.Frame_alloc.t;
  cores : Cpu.t array;
  l3 : Cache.t;
}

let create ?(cores = 8) ?(mem_mib = 256) () =
  if cores <= 0 then invalid_arg "Machine.create: cores <= 0";
  let mem =
    Sky_mem.Phys_mem.create ~frames:(mem_mib * 1024 * 1024 / Sky_mem.Phys_mem.frame_size)
  in
  let l3 =
    Cache.create ~name:"l3" ~size_bytes:(8 * 1024 * 1024) ~ways:16 ~line_bytes:64
  in
  let t =
    {
      mem;
      alloc = Sky_mem.Frame_alloc.create mem;
      cores = Array.init cores (fun id -> Cpu.create ~id ~l3);
      l3;
    }
  in
  (* Tracing is keyed on simulated cycles: point the tracer's clock at
     this machine's per-core TSCs. Experiments build machines one at a
     time, so the latest machine owns the clock. *)
  Sky_trace.Trace.set_clock (fun core ->
      if core >= 0 && core < Array.length t.cores then Cpu.cycles t.cores.(core)
      else 0);
  (* The fault engine's At_cycle triggers read the same clock. *)
  Sky_faults.Fault.set_clock (fun core ->
      if core >= 0 && core < Array.length t.cores then Cpu.cycles t.cores.(core)
      else 0);
  t

let core t i = t.cores.(i)
let n_cores t = Array.length t.cores

let max_cycles t =
  Array.fold_left (fun acc c -> max acc (Cpu.cycles c)) 0 t.cores

let sync_cores t =
  let m = max_cycles t in
  Array.iter (fun c -> Cpu.advance_to c m) t.cores

(* ---- virtual-time interleaved multi-core run loop ---- *)

type step = Progress | Idle | Idle_until of int | Done

exception Stuck of string

(* Persistent state of one interleaved run, so the loop can be driven a
   quantum at a time ({!run_until}) by the parallel scheduler: which
   cores are still live and the idle-streak deadlock counter, which must
   survive quantum boundaries or a lost-wakeup spanning boundaries would
   never trip the guard. *)
type run = {
  r_cores : int array;
  r_finished : bool array;
  mutable r_idle_streak : int;
}

let start_run t ~cores =
  let cores = Array.of_list cores in
  if Array.length cores = 0 then invalid_arg "Machine.interleave: no cores";
  Array.iter
    (fun c ->
      if c < 0 || c >= Array.length t.cores then
        invalid_arg "Machine.interleave: core out of range")
    cores;
  {
    r_cores = cores;
    r_finished = Array.make (Array.length cores) false;
    r_idle_streak = 0;
  }

(* Advance the run until every live core's clock has reached [until] (or
   its workload finished). The boundary only *parks* cores — a stepped
   core may overshoot [until] and is simply not stepped again this
   quantum — so for any boundary placement the scheduling decisions and
   per-core trajectories are bit-identical to an unbounded run: the
   lowest-cycle-first rule never runs a core at/past the boundary while
   another sits below it, which is exactly what parking enforces. *)
let run_until t r ~step ~until =
  let cores = r.r_cores in
  let n = Array.length cores in
  let live () =
    let acc = ref [] in
    for i = n - 1 downto 0 do
      if not r.r_finished.(i) then acc := i :: !acc
    done;
    !acc
  in
  (* Consecutive steps with neither progress nor fresh wakeup targets:
     the deadlock guard. Closed systems always have a next event, so
     hitting the bound means a step function lied about being Idle. *)
  let max_idle_streak = 64 * n in
  let rec loop () =
    match live () with
    | [] -> `Done
    | l -> (
      match List.filter (fun j -> Cpu.cycles t.cores.(cores.(j)) < until) l with
      | [] -> `Paused
      | rl ->
        (* Run the core furthest behind in virtual time — the
           interleaving rule that makes a single-threaded simulation
           behave like n concurrent cores. *)
        let i =
          List.fold_left
            (fun best j ->
              if
                Cpu.cycles t.cores.(cores.(j))
                < Cpu.cycles t.cores.(cores.(best))
              then j
              else best)
            (List.hd rl) (List.tl rl)
        in
        let c = cores.(i) in
        let cpu = t.cores.(c) in
        let before = Cpu.cycles cpu in
        (match step ~core:c with
        | Progress -> r.r_idle_streak <- 0
        | Done ->
          r.r_finished.(i) <- true;
          r.r_idle_streak <- 0
        | Idle_until ts when ts > before ->
          Cpu.advance_to cpu ts;
          r.r_idle_streak <- 0
        | Idle | Idle_until _ ->
          (* Nothing to do at this virtual time: hop past the
             next-lowest live core (parked ones included — they are
             still events in this machine's future) so whoever can
             unblock us runs first. *)
          let next =
            List.fold_left
              (fun acc j ->
                if j = i then acc
                else min acc (Cpu.cycles t.cores.(cores.(j))))
              max_int l
          in
          if next < max_int then Cpu.advance_to cpu (next + 1)
          else Cpu.charge cpu 64 (* lone core: poll tick *);
          r.r_idle_streak <- r.r_idle_streak + 1;
          if r.r_idle_streak > max_idle_streak then
            raise
              (Stuck
                 (Printf.sprintf
                    "Machine.interleave: %d idle steps with no progress \
                     (cores stuck at cycle %d)"
                    r.r_idle_streak (Cpu.cycles cpu))));
        loop ())
  in
  loop ()

let interleave t ~cores ~step =
  let r = start_run t ~cores in
  match run_until t r ~step ~until:max_int with
  | `Done -> ()
  | `Paused -> assert false (* no core's clock can reach max_int *)
