(** The xv6-style log-protected file system (§6.5 ports "a log-based file
    system named xv6fs").

    Inodes with 12 direct, one single-indirect and one double-indirect
    block pointers; a flat root directory; a block bitmap; and every
    mutating operation wrapped in one write-ahead-log transaction, so a
    crash at any block write leaves committed operations intact and
    uncommitted ones invisible (property-tested in test/test_fs.ml).

    A single big lock serializes all operations — deliberately: "since
    the xv6fs does not support multithreading, we use one big lock in the
    file system, that is the reason why the scalability is so bad"
    (§6.5). *)

type t

exception Fs_error of string

val bsize : int
(** 1024-byte blocks. *)

val ndirect : int
val nindirect : int

val max_file_blocks : int
(** 12 + 256 + 256² blocks (~64 MiB) with the double-indirect pointer —
    extended beyond xv6 so the 10,000-record YCSB table fits. *)

val root_inum : int

val mkfs :
  Sky_ukernel.Kernel.t ->
  Sky_blockdev.Disk.t ->
  core:int ->
  ?size:int ->
  ?ninodes:int ->
  ?nlog:int ->
  unit ->
  unit
(** Format the device: superblock, empty log, free inodes, bitmap with
    the metadata marked used, root directory. *)

val mount : Sky_ukernel.Kernel.t -> Sky_blockdev.Disk.t -> core:int -> t
(** Read the superblock and {e replay the log} (crash recovery), then
    attach a fresh buffer cache. *)

val create : t -> core:int -> string -> int
(** Create (or return the existing) file named in the root directory;
    returns the inode number. Names are 1–14 bytes. *)

val lookup : t -> core:int -> string -> int option
val file_size : t -> core:int -> inum:int -> int

val read : t -> core:int -> inum:int -> off:int -> len:int -> bytes
(** Short reads past EOF; holes read as zeros. *)

val write : t -> core:int -> inum:int -> off:int -> bytes -> unit
(** Extends the file (allocating data/indirect blocks) as needed; the
    whole call is one committed transaction. *)

val unlink : t -> core:int -> string -> bool
(** Remove the directory entry, free every data block and the inode.
    Returns false if the name does not exist. *)

val list_dir : t -> core:int -> string list

val ops : t -> int
(** Completed public operations. *)

val lock : t -> Sky_ukernel.Lock.t
(** The big lock, exposed for the contention experiments. *)

val cache_hits : t -> int
val cache_misses : t -> int
val log_commits : t -> int

(** {2 Introspection (for {!Fsck} and tests)} *)

type itype = T_free | T_dir | T_file

type dinode = {
  mutable typ : itype;
  mutable nlink : int;
  mutable size : int;
  addrs : int array;  (** 12 direct + single-indirect + double-indirect *)
}

val superblock : t -> Superblock.t

val inspect_inode : t -> core:int -> int -> dinode
(** Raw on-disk inode (under the big lock). *)

val inspect_block : t -> core:int -> int -> bytes
(** Raw block contents through the buffer cache (under the big lock). *)

val dirent_size : int
val max_name : int
