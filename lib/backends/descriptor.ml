(** A first-class description of one isolation backend: the declarative
    facts the cross-mechanism matrix reports next to the measured cycle
    numbers.

    {!Sky_core.Backend} is the mechanism switch the Subkernel consumes;
    this record is what the showdown says {e about} each mechanism —
    which audit passes carry its security argument, whether the kernel
    sits on the IPC path, what the architectural switch costs per leg,
    and what invalidating a grant means. Keeping it data (rather than
    prose in DESIGN.md only) lets [skybench matrix] print the same
    security matrix it gates on. *)

type t = {
  d_kind : Sky_core.Backend.kind;
  d_name : string;  (** CLI spelling: ["vmfunc"] / ["mpk"] / ["syscall"] *)
  d_title : string;  (** one-line mechanism description *)
  d_switch_cycles : int;
      (** architectural switch cost per crossing leg (two legs per call) *)
  d_kernel_on_path : bool;
      (** does a normal call enter the kernel? (only the syscall backend) *)
  d_tlb_flush_on_switch : bool;
      (** does a crossing flush translations? (only the syscall backend's
          un-PCID'd CR3 write) *)
  d_shared_address_space : bool;
      (** do domains share one address space? (only MPK — its isolation
          is the PKRU view, not the page tables) *)
  d_audit_passes : string list;
      (** the {!Sky_analysis.Audit} passes that carry this mechanism's
          security argument (beyond the always-on gadget/ept/isoflow) *)
  d_invalidation : string;
      (** what [revoke_binding] architecturally does under this backend *)
  d_security : string;  (** the one-paragraph security argument *)
}

let name d = d.d_name
let kind d = d.d_kind
let switch_cycles d = d.d_switch_cycles

(** Round-trip switch cost: both legs of one call. *)
let round_trip d = 2 * d.d_switch_cycles

let to_json d =
  Printf.sprintf
    "{\"backend\":\"%s\",\"switch_cycles_leg\":%d,\"kernel_on_path\":%b,\
     \"tlb_flush_on_switch\":%b,\"shared_address_space\":%b,\
     \"audit_passes\":[%s]}"
    d.d_name d.d_switch_cycles d.d_kernel_on_path d.d_tlb_flush_on_switch
    d.d_shared_address_space
    (String.concat "," (List.map (Printf.sprintf "\"%s\"") d.d_audit_passes))
