(** Mesh-layer audit: the service mesh's two liveness/authority
    invariants, checked over plain data so [lib/analysis] stays below
    [lib/core] in the dependency order (the caller lowers the live
    binding set and a capability-coverage predicate out of its
    registries):

    - [mesh.binding-outlives-cap] — every live Subkernel binding
      (client pid → server id) must be covered by a live capability
      carrying at least the send right. A binding that survives the
      revocation of the capability that justified it is exactly the
      privilege-escalation hole the mesh's refcounted grant/revoke is
      supposed to close.
    - [mesh.uri-dangling] — no name-service entry may resolve to a dead
      server: a crash during a resolved call must not leave a dangling
      binding reachable by URI. *)

type input = {
  bindings : (int * int) list;  (** live (client pid, server id) pairs *)
  covered : pid:int -> server_id:int -> bool;
      (** does a live capability with the send right cover the pair? *)
  resolutions : (string * int) list;  (** name-service (uri, sid) table *)
  dead : int list;  (** crashed-and-not-restarted server ids *)
}

let check inp =
  let orphaned =
    List.filter_map
      (fun (pid, server_id) ->
        if inp.covered ~pid ~server_id then None
        else
          Some
            (Report.v ~addr:server_id ~invariant:"mesh.binding-outlives-cap"
               ~image:(Printf.sprintf "pid%d->sid%d" pid server_id)
               "live binding with no live capability covering it"))
      inp.bindings
  in
  let dangling =
    List.filter_map
      (fun (uri, sid) ->
        if List.mem sid inp.dead then
          Some
            (Report.v ~addr:sid ~invariant:"mesh.uri-dangling" ~image:uri
               "URI resolves to a dead server")
        else None)
      inp.resolutions
  in
  Report.sort (orphaned @ dangling)
