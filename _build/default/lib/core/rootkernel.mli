(** The Rootkernel: SkyBridge's tiny hypervisor (§4.1).

    Booted *by* the Subkernel (self-virtualization, CloudVisor-style): it
    reserves a small slice of physical memory for itself, builds a base
    EPT that identity-maps everything else with 1 GiB huge pages, creates
    a per-core VMCS and downgrades every vCPU to non-root mode. The
    configuration lets the guest handle external interrupts and
    privileged instructions directly, so in steady state {e no VM exits
    occur at all} (Table 5). The only retained exit handlers are CPUID,
    VMCALL (the Subkernel interface) and EPT violations. *)

type t = {
  kernel : Sky_ukernel.Kernel.t;
  base_ept : Sky_mmu.Ept.t;
  vmcses : Sky_mmu.Vmcs.t array;  (** one per core *)
  reserved_bytes : int;
  vpid : bool;
}

exception Fatal_ept_violation of int  (** guest-physical address *)

val vmcall_cost : int
(** Cycles charged for a VMCALL round trip (VM exit + handler + resume). *)

val boot :
  ?vpid:bool -> ?reserved_mib:int -> ?huge_ept:bool -> Sky_ukernel.Kernel.t -> t
(** Self-virtualize the machine under the given Subkernel. Reserves
    [reserved_mib] (default 8; the paper reserves 100 MiB on a 16 GiB
    box — same ratio) and flips every vCPU into non-root mode with the
    base EPT installed in EPTP slot 0. *)

val total_vm_exits : t -> int
val exits_of : t -> Sky_mmu.Vmcs.exit_reason -> int

val handle_cpuid : t -> core:int -> unit
(** A guest CPUID: exits to the Rootkernel, which emulates and resumes. *)

val handle_ept_violation : t -> core:int -> gpa:int -> 'a
(** Records the exit and raises {!Fatal_ept_violation} — under the base
    EPT's full mapping a violation means a guest bug or an attack. *)

val vmcall : t -> core:int -> (unit -> 'a) -> 'a
(** Subkernel→Rootkernel call: charges the exit cost, counts it, runs the
    handler body in root mode. *)

val new_process_ept : t -> Sky_ukernel.Proc.t -> Sky_mmu.Ept.t
(** Shallow clone of the base EPT with the process's identity page
    mapped at {!Sky_ukernel.Layout.identity_gpa} (§4.2). *)

val bind_ept :
  t ->
  client:Sky_ukernel.Proc.t ->
  server:Sky_ukernel.Proc.t ->
  Sky_mmu.Ept.t
(** The §4.3 binding: clone the base EPT and remap the GPA of the
    client's CR3 frame to the HPA of the server's CR3 frame, and the
    identity GPA to the server's identity frame. After VMFUNC to this
    EPT the hardware transparently walks the server's page table. *)

val install_eptp_list : t -> core:int -> int list -> unit
(** VMCALL service used by the Subkernel on context switch (§4.2). *)

val current_identity : t -> core:int -> int
(** Read the identity page through the core's *current* EPT — how the
    Subkernel solves process misidentification (§4.2). Returns the pid
    of the process whose address space is live, even mid-direct-call. *)
