(** Simulated multi-queue NIC: RX/TX descriptor rings in simulated
    physical memory, RSS (hash + round-robin redirection table) spreading
    flows over queues, and coalesced RX interrupts delivered through
    badged {!Sky_kernels.Notification}s pinned one-per-core.

    The wire side ([deliver], the [on_tx] hook) models the device's DMA
    engine: raw memory masters that cost no core cycles. The driver side
    ([rx], [tx]) reads and writes the same rings through the cache
    hierarchy, so a busy queue has a real footprint in the pinned core's
    caches. *)

type pkt = { flow : int; seq : int; payload : bytes; deliver_at : int }

type t

exception Ring_full of { queue : int }

val ring_entries : int
val payload_max : int
(** MTU-ish: largest payload one descriptor's buffer slot carries. *)

val create : Sky_ukernel.Kernel.t -> queues:int -> t
(** Allocate per-queue RX/TX rings and buffer frames from the kernel's
    frame allocator and initialize the RETA round-robin. Queue [i] is
    initially pinned to core [i]. *)

val n_queues : t -> int
val irq : t -> queue:int -> Sky_kernels.Notification.t
val pin : t -> queue:int -> core:int -> unit
(** Re-point queue [queue]'s MSI-X vector at [core]. *)

val queue_of_flow : t -> int -> int
(** RSS: splitmix hash of the flow id into the 128-entry RETA. *)

val set_on_tx : t -> (pkt -> unit) -> unit
(** Install the wire-side TX-completion hook (the load generator's
    loopback). Called synchronously from {!tx}. *)

val deliver : t -> flow:int -> seq:int -> payload:bytes -> at:int -> unit
(** Wire side: DMA one packet into the RSS-selected queue's RX ring and,
    on the empty→non-empty edge, raise the queue's IRQ (badge [1 lsl
    queue]). [at] is the wire timestamp: a consumer polling earlier is
    advanced to it. A full ring drops the packet (counted). *)

val rx : t -> queue:int -> core:int -> pkt option
(** Driver: pop the next RX packet, charging descriptor + payload reads
    through [core]'s caches and advancing the core to the packet's
    delivery time. [None] when the ring is empty. *)

val next_deliver_at : t -> queue:int -> int option
(** Wire timestamp of the head RX packet, if any — what an idle worker
    reports to the interleaved run loop as its next-event time. *)

val tx : t -> queue:int -> core:int -> flow:int -> seq:int -> bytes -> unit
(** Driver: post one TX descriptor (charged), ring the doorbell (one
    uncached MMIO store) and complete through the wire hook. *)

val rx_level : t -> queue:int -> int
val rx_pkts : t -> queue:int -> int
val tx_pkts : t -> queue:int -> int
val irqs_raised : t -> queue:int -> int
val dropped : t -> int
