(** Log-bucketed latency histogram: O(1) insert, approximate quantiles.

    Values land in [2^k, 2^(k+1)) ranges subdivided into
    [sub_buckets] linear sub-buckets (HdrHistogram-style, ~12% worst-case
    relative error at 8 sub-buckets), so a histogram covers the full
    [0, max_int] cycle range in a few hundred counters. Inserts on the
    IPC hot path never allocate. *)

let max_exp = 62
let sub_buckets = 8

type t = {
  counts : int array;  (** [max_exp * sub_buckets] bucket counters *)
  mutable n : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
}

let create () =
  {
    counts = Array.make (max_exp * sub_buckets) 0;
    n = 0;
    sum = 0;
    min_v = max_int;
    max_v = 0;
  }

let reset t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.n <- 0;
  t.sum <- 0;
  t.min_v <- max_int;
  t.max_v <- 0

(* Bucket index of a non-negative value. Values 0..sub_buckets-1 map to
   exact unit buckets in the first rows. *)
let bucket_of v =
  if v < sub_buckets then v
  else begin
    (* exp = position of the highest set bit *)
    let rec msb x acc = if x <= 1 then acc else msb (x lsr 1) (acc + 1) in
    let exp = msb v 0 in
    let sub = (v lsr (exp - 3)) land (sub_buckets - 1) in
    (exp * sub_buckets) + sub
  end

(* Representative (upper-edge) value of a bucket, the inverse of
   {!bucket_of} up to sub-bucket resolution. *)
let bucket_value i =
  if i < sub_buckets then i
  else
    let exp = i / sub_buckets and sub = i mod sub_buckets in
    if exp < 3 then (1 lsl exp) lor sub
    else (1 lsl exp) lor (sub lsl (exp - 3)) lor ((1 lsl (exp - 3)) - 1)

let add t v =
  let v = if v < 0 then 0 else v in
  let i = bucket_of v in
  t.counts.(i) <- t.counts.(i) + 1;
  t.n <- t.n + 1;
  t.sum <- t.sum + v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let count t = t.n
let max_value t = t.max_v
let min_value t = if t.n = 0 then 0 else t.min_v
let mean t = if t.n = 0 then 0.0 else float_of_int t.sum /. float_of_int t.n

let merge ~into src =
  Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) src.counts;
  into.n <- into.n + src.n;
  into.sum <- into.sum + src.sum;
  if src.n > 0 then begin
    if src.min_v < into.min_v then into.min_v <- src.min_v;
    if src.max_v > into.max_v then into.max_v <- src.max_v
  end

(* Quantile by walking the cumulative counts; the exact max is reported
   for the top of the distribution (q >= the last sample's rank). *)
let percentile t q =
  if t.n = 0 then 0
  else begin
    let rank =
      let r = int_of_float (ceil (q /. 100.0 *. float_of_int t.n)) in
      if r < 1 then 1 else if r > t.n then t.n else r
    in
    let rec go i seen =
      if i >= Array.length t.counts then t.max_v
      else begin
        let seen = seen + t.counts.(i) in
        if seen >= rank then min (bucket_value i) t.max_v else go (i + 1) seen
      end
    in
    go 0 0
  end

let p50 t = percentile t 50.0
let p95 t = percentile t 95.0
let p99 t = percentile t 99.0
let p999 t = percentile t 99.9

let pp fmt t =
  Format.fprintf fmt "n=%d p50=%d p95=%d p99=%d max=%d" t.n (p50 t) (p95 t)
    (p99 t) t.max_v
