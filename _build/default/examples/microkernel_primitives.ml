(* A tour of the microkernel substrate the SkyBridge reproduction is
   built on: capabilities with revocation, asynchronous notifications,
   the two §8.1 scheduling policies, and the temporary-mapping long-IPC
   option — the pieces a downstream user composes their own systems from.

   Run with:  dune exec examples/microkernel_primitives.exe *)

open Sky_ukernel
open Sky_kernels

let () =
  let machine = Sky_sim.Machine.create ~cores:4 ~mem_mib:64 () in
  let kernel = Kernel.create machine in

  (* --- capabilities ------------------------------------------------ *)
  print_endline "capabilities (seL4-style, enforced on the IPC path)";
  let ipc = Ipc.create ~enforce_caps:true kernel in
  let server = Kernel.spawn kernel ~name:"files" in
  let alice = Kernel.spawn kernel ~name:"alice" in
  let mallory = Kernel.spawn kernel ~name:"mallory" in
  let ep = Ipc.register ipc server (fun ~core:_ m -> m) in
  let alice_cap = Ipc.grant_send ipc ep alice in
  Kernel.context_switch kernel ~core:0 alice;
  ignore (Ipc.call ipc ~core:0 ~client:alice ep (Bytes.of_string "ok"));
  Printf.printf "  alice (badge %d) called the server with her capability\n"
    (Capability.badge alice_cap);
  (try ignore (Ipc.call ipc ~core:0 ~client:mallory ep Bytes.empty)
   with Capability.Cap_denied _ ->
     print_endline "  mallory without a capability: denied");
  Capability.revoke (Ipc.caps ipc) ep.Ipc.root_cap;
  (try ignore (Ipc.call ipc ~core:0 ~client:alice ep Bytes.empty)
   with Capability.Cap_denied _ ->
     print_endline "  after revoking the root's children, alice is cut off too\n");

  (* --- notifications ----------------------------------------------- *)
  print_endline "asynchronous notifications (badged, coalescing)";
  let irq = Notification.create kernel ~name:"nic-irq" in
  Notification.signal irq ~core:1 ~badge:0b001;
  Notification.signal irq ~core:1 ~badge:0b100;
  Printf.printf "  two signals from core 1 coalesce: wait() = %#o\n"
    (Notification.wait irq ~core:0);
  (try ignore (Notification.wait irq ~core:0)
   with Notification.Would_block ->
     print_endline "  further wait() would block (word consumed)\n");

  (* --- scheduling policies (SS8.1) ---------------------------------- *)
  print_endline "scheduling: lazy vs Benno under interrupt churn";
  let cpu = Sky_sim.Machine.core machine 2 in
  List.iter
    (fun policy ->
      let s = Scheduler.create policy in
      let threads = List.init 16 (fun i -> Scheduler.spawn_thread s ~tid:i) in
      List.iteri (fun i th -> if i < 15 then Scheduler.block s cpu th) threads;
      let before = Scheduler.examined s in
      ignore (Scheduler.pick s cpu);
      Printf.printf "  %-16s pick examined %2d queue entries\n"
        (Scheduler.policy_name policy)
        (Scheduler.examined s - before))
    [ Scheduler.Lazy_scheduling; Scheduler.Benno ];
  print_newline ();

  (* --- long IPC transports ------------------------------------------ *)
  print_endline "long IPC: shared-buffer double copy vs temporary mapping (8 KiB)";
  List.iter
    (fun (name, long_ipc) ->
      let k = Kernel.create (Sky_sim.Machine.create ~cores:2 ~mem_mib:64 ()) in
      let ipc = Ipc.create ~long_ipc k in
      let c = Kernel.spawn k ~name:"c" and s = Kernel.spawn k ~name:"s" in
      let ep = Ipc.register ipc s (fun ~core:_ _ -> Bytes.create 8) in
      Kernel.context_switch k ~core:0 c;
      let msg = Bytes.create 8192 in
      for _ = 1 to 20 do
        ignore (Ipc.call ipc ~core:0 ~client:c ep msg)
      done;
      let cc = Kernel.cpu k ~core:0 in
      let t0 = Sky_sim.Cpu.cycles cc in
      for _ = 1 to 100 do
        ignore (Ipc.call ipc ~core:0 ~client:c ep msg)
      done;
      Printf.printf "  %-12s %5d cycles/roundtrip\n" name
        ((Sky_sim.Cpu.cycles cc - t0) / 100))
    [ ("Shared_copy", Ipc.Shared_copy); ("Temp_map", Ipc.Temp_map) ]
