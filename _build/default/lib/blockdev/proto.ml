(** Wire format for block-device requests (the IPC message bytes). *)

type request = Read of int | Write of int * bytes

exception Bad_message of string

let encode_request = function
  | Read blockno ->
    let b = Bytes.create 5 in
    Bytes.set b 0 '\001';
    Bytes.set_int32_le b 1 (Int32.of_int blockno);
    b
  | Write (blockno, data) ->
    if Bytes.length data <> Ramdisk.block_size then
      invalid_arg "Proto.encode_request: bad block length";
    let b = Bytes.create (5 + Ramdisk.block_size) in
    Bytes.set b 0 '\002';
    Bytes.set_int32_le b 1 (Int32.of_int blockno);
    Bytes.blit data 0 b 5 Ramdisk.block_size;
    b

let decode_request b =
  if Bytes.length b < 5 then raise (Bad_message "short request");
  let blockno = Int32.to_int (Bytes.get_int32_le b 1) in
  match Bytes.get b 0 with
  | '\001' -> Read blockno
  | '\002' ->
    if Bytes.length b < 5 + Ramdisk.block_size then raise (Bad_message "short write");
    Write (blockno, Bytes.sub b 5 Ramdisk.block_size)
  | c -> raise (Bad_message (Printf.sprintf "bad opcode %d" (Char.code c)))

let encode_read_reply data =
  if Bytes.length data <> Ramdisk.block_size then
    invalid_arg "Proto.encode_read_reply";
  data

let write_ack = Bytes.of_string "ok"
