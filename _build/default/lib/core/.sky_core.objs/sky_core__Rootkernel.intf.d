lib/core/rootkernel.mli: Sky_mmu Sky_ukernel
