lib/mmu/translate.mli: Ept Page_table Sky_mem Sky_sim Vcpu
