(* Tests for the table-rendering harness (lib/harness) — the layer every
   experiment's output goes through, so misalignment or bad number
   formatting would corrupt EXPERIMENTS.md silently. *)

open Sky_harness

let sample =
  Tbl.make ~title:"t" ~header:[ "name"; "a"; "b" ]
    ~notes:[ "a note" ]
    [ [ "row1"; "1"; "2,000" ]; [ "longer row name"; "33"; "4" ] ]

let test_fmt_int () =
  Alcotest.(check string) "small" "7" (Tbl.fmt_int 7);
  Alcotest.(check string) "grouping" "1,234,567" (Tbl.fmt_int 1234567);
  Alcotest.(check string) "exact thousands" "12,000" (Tbl.fmt_int 12000);
  Alcotest.(check string) "negative" "-1,234" (Tbl.fmt_int (-1234))

let test_render_alignment () =
  let out = Tbl.render sample in
  let lines = String.split_on_char '\n' out in
  (* Header, separator and rows all share one width. *)
  let widths =
    List.filter_map
      (fun l -> if l = "" || String.length l < 3 then None else Some (String.length l))
      (List.filteri (fun i _ -> i >= 1 && i <= 4) lines)
  in
  (match widths with
  | w :: rest -> List.iter (fun w' -> Alcotest.(check int) "aligned" w w') rest
  | [] -> Alcotest.fail "no lines");
  Alcotest.(check bool) "title present" true
    (String.length out > 0 && String.sub out 0 4 = "== t");
  Alcotest.(check bool) "note present" true
    (List.exists (fun l -> l = "  note: a note") lines)

let test_markdown () =
  let md = Tbl.to_markdown sample in
  Alcotest.(check bool) "heading" true (String.sub md 0 5 = "### t");
  Alcotest.(check bool) "separator row" true
    (List.exists (fun l -> l = "| --- | --- | --- |") (String.split_on_char '\n' md));
  Alcotest.(check bool) "cells intact" true
    (List.exists
       (fun l -> l = "| longer row name | 33 | 4 |")
       (String.split_on_char '\n' md))

let test_speedup_format () =
  Alcotest.(check string) "+50%" "+50.0%" (Tbl.fmt_speedup 1.5);
  Alcotest.(check string) "-10%" "-10.0%" (Tbl.fmt_speedup 0.9)

let () =
  Alcotest.run "harness"
    [
      ( "tbl",
        [
          Alcotest.test_case "fmt_int grouping" `Quick test_fmt_int;
          Alcotest.test_case "render alignment" `Quick test_render_alignment;
          Alcotest.test_case "markdown" `Quick test_markdown;
          Alcotest.test_case "speedup format" `Quick test_speedup_format;
        ] );
    ]
