lib/experiments/exp_ycsb.ml: Config List Printf Sky_harness Sky_ukernel Sky_ycsb Stack Tbl
