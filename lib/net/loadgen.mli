(** Closed-loop, RSS-aware load generator on the {!Nic}'s wire side.

    Each connection keeps one request outstanding; a response's TX
    completion schedules the next request [rtt] cycles later. Flow ids
    are chosen so RSS spreads connections evenly over queues, and every
    response is validated against the expected result — lost or corrupt
    requests surface in {!errors}. Runs entirely on the wire (DMA) side:
    no simulated-core cycles are charged to the client. *)

type mix = Workload.mix = { m_kv_get : int; m_kv_put : int; m_fs_get : int }
(** Relative request-type weights (shared with {!Openloop} via
    {!Workload}). *)

val default_mix : mix

type t

val create :
  Nic.t ->
  seed:int ->
  mix:mix ->
  conns:int ->
  requests_per_conn:int ->
  rtt:int ->
  files:(string * bytes) array ->
  t
(** [files] are the provisioned FS objects [Fs_get] requests draw from
    (name, expected contents). *)

val start : t -> at:int -> unit
(** Install the NIC TX hook and inject every connection's SYN (carrying
    its first request), staggered from cycle [at]. *)

val queue_done : t -> queue:int -> bool
(** No responses owed by [queue] — the serving worker may exit. *)

val finished : t -> bool
val responses : t -> int
val expected : t -> int
(** Total requests the run will issue ([conns * requests_per_conn]). *)

val errors : t -> int
(** Responses that failed validation (wrong value, bad status, unknown
    flow) — zero on a healthy run, {e and} on a chaos run, since crash
    recovery replays the in-flight request. *)

val latencies : t -> Sky_trace.Histogram.t
(** Wire-to-wire per-request latency (arrival at NIC to response TX),
    including queueing delay behind a busy worker. *)

val conns : t -> int
