type t = {
  mem : Sky_mem.Phys_mem.t;
  alloc : Sky_mem.Frame_alloc.t;
  cores : Cpu.t array;
  l3 : Cache.t;
}

let create ?(cores = 8) ?(mem_mib = 256) () =
  if cores <= 0 then invalid_arg "Machine.create: cores <= 0";
  let mem =
    Sky_mem.Phys_mem.create ~frames:(mem_mib * 1024 * 1024 / Sky_mem.Phys_mem.frame_size)
  in
  let l3 =
    Cache.create ~name:"l3" ~size_bytes:(8 * 1024 * 1024) ~ways:16 ~line_bytes:64
  in
  let t =
    {
      mem;
      alloc = Sky_mem.Frame_alloc.create mem;
      cores = Array.init cores (fun id -> Cpu.create ~id ~l3);
      l3;
    }
  in
  (* Tracing is keyed on simulated cycles: point the tracer's clock at
     this machine's per-core TSCs. Experiments build machines one at a
     time, so the latest machine owns the clock. *)
  Sky_trace.Trace.set_clock (fun core ->
      if core >= 0 && core < Array.length t.cores then Cpu.cycles t.cores.(core)
      else 0);
  (* The fault engine's At_cycle triggers read the same clock. *)
  Sky_faults.Fault.set_clock (fun core ->
      if core >= 0 && core < Array.length t.cores then Cpu.cycles t.cores.(core)
      else 0);
  t

let core t i = t.cores.(i)
let n_cores t = Array.length t.cores

let max_cycles t =
  Array.fold_left (fun acc c -> max acc (Cpu.cycles c)) 0 t.cores

let sync_cores t =
  let m = max_cycles t in
  Array.iter (fun c -> Cpu.advance_to c m) t.cores
