lib/isa/binfmt.ml: Buffer Bytes Char Int32 List Printf String
