(** The whole web-serving stack, assembled end to end:

    load generator → NIC (RSS over [workers] queues) → skyhttpd workers
    (one per core) → KV store + xv6fs/RAM-disk backends, with the
    worker→backend hop carried either by mediated SkyBridge direct calls
    ([Skybridge]) or by the configured baseline kernel's synchronous IPC
    ([Ipc] — the slowpath variant, MT-server so every call at least
    takes the kernel's local path).

    Worker [i] is pinned to core [i]; backend handlers run on the
    calling worker's core in the server's address space, exactly as a
    direct server call (or local IPC) executes them. All worker calls go
    through {!Sky_core.Retry.call} on the SkyBridge path, so backend
    crashes injected by the chaos experiment recover transparently. *)

open Sky_sim
open Sky_ukernel
open Sky_blockdev
open Sky_xv6fs
module Kv_server = Sky_kvstore.Kv_server
module Subkernel = Sky_core.Subkernel
module Retry = Sky_core.Retry
module Ipc = Sky_kernels.Ipc
module Mesh = Sky_mesh.Mesh

type transport = Ipc_slowpath | Skybridge

let transport_name = function
  | Ipc_slowpath -> "slowpath-IPC"
  | Skybridge -> "SkyBridge"

let default_conns = 120
let default_requests_per_conn = 8
let rtt = 2_000 (* wire round trip: client is "one switch away" *)
let n_files = 4
let file_bytes = 192
let backend_text = 6 * 1024 (* KV server instruction working set *)

type t = {
  machine : Machine.t;
  kernel : Kernel.t;
  transport : transport;
  workers : int;
  nic : Nic.t;
  httpd : Httpd.t;
  lg : Loadgen.t;
  sb : Subkernel.t option;
  mesh : Mesh.t option;
  rstats : Retry.stats option;
  fs_cell : Fs.t ref;
  kv : Kv_server.t;
  mutable elapsed : int;  (** busiest worker core's cycles across {!run} *)
}

(* ---- KV wire format (the store's own 'I'/'Q' protocol) ---- *)

let kv_insert_msg ~key ~value =
  let kb = Bytes.of_string key in
  let b = Bytes.create (4 + Bytes.length kb + Bytes.length value) in
  Bytes.set b 0 'I';
  Bytes.set_uint16_le b 2 (Bytes.length kb);
  Bytes.blit kb 0 b 4 (Bytes.length kb);
  Bytes.blit value 0 b (4 + Bytes.length kb) (Bytes.length value);
  b

let kv_query_msg ~key =
  let kb = Bytes.of_string key in
  let b = Bytes.create (4 + Bytes.length kb) in
  Bytes.set b 0 'Q';
  Bytes.set_uint16_le b 2 (Bytes.length kb);
  Bytes.blit kb 0 b 4 (Bytes.length kb);
  b

let kv_handler kv kernel ~text_pa : Ipc.handler =
 fun ~core msg ->
  let cpu = Kernel.cpu kernel ~core in
  Memsys.touch_range_state_only cpu Memsys.Insn ~pa:text_pa ~len:backend_text;
  let klen = Bytes.get_uint16_le msg 2 in
  let key = Bytes.sub msg 4 klen in
  match Bytes.get msg 0 with
  | 'I' ->
    let value = Bytes.sub msg (4 + klen) (Bytes.length msg - 4 - klen) in
    Kv_server.insert kv cpu ~key ~value;
    Bytes.of_string "ok"
  | 'Q' -> (
    match Kv_server.query kv cpu ~key with Some v -> v | None -> Bytes.empty)
  | c -> invalid_arg (Printf.sprintf "web kv_handler: opcode %c" c)

(* Allocate the KV server's instruction working set and close the wire
   handler over it — shared with the composed mesh scenario, which runs
   two KV server generations over the same store. *)
let kv_backend kernel kv =
  let text_pa =
    Sky_mem.Frame_alloc.alloc_frames (Kernel.alloc kernel)
      ~count:((backend_text + 4095) / 4096)
  in
  kv_handler kv kernel ~text_pa

(* ---- typed worker bindings over either transport ---- *)

let fs_read_of iface ~core ~name =
  match iface.Fs_iface.lookup ~core name with
  | None -> None
  | Some inum ->
    let len = iface.Fs_iface.size ~core inum in
    Some (iface.Fs_iface.read ~core ~inum ~off:0 ~len)

let binding_of_calls ~call_kv ~call_fs ~revoke ~rebind =
  let iface = Fs_iface.over_call call_fs in
  {
    Httpd.kv_put =
      (fun ~core ~key ~value ->
        Bytes.to_string (call_kv ~core (kv_insert_msg ~key ~value)) = "ok");
    kv_get =
      (fun ~core ~key ->
        let r = call_kv ~core (kv_query_msg ~key) in
        if Bytes.length r = 0 then None else Some r);
    fs_read = (fun ~core ~name -> fs_read_of iface ~core ~name);
    revoke;
    rebind;
  }

(* Provision the FS objects the load mix reads: deterministic printable
   contents, written through the server-side handle before the run. *)
let provision_files fs ~seed =
  let rng = Rng.create ~seed:(seed lxor 0xf11e5) in
  Array.init n_files (fun i ->
      let name = Printf.sprintf "web%d.html" i in
      let data = Bytes.create file_bytes in
      let head = Printf.sprintf "<html>%d:" i in
      Bytes.iteri
        (fun j _ ->
          if j < String.length head then Bytes.set data j head.[j]
          else Bytes.set data j (Char.chr (97 + Rng.int rng 26)))
        data;
      let inum = Fs.create fs ~core:0 name in
      Fs.write fs ~core:0 ~inum ~off:0 data;
      (name, data))

let build ?(variant = Config.Sel4) ?(seed = 42) ?(cores = 8)
    ?(conns = default_conns) ?(requests_per_conn = default_requests_per_conn)
    ?(mix = Loadgen.default_mix) ?(disk_blocks = 4096) ~workers ~transport () =
  if workers < 1 || workers > cores then
    invalid_arg "Web.build: workers must be in [1, cores]";
  let machine = Machine.create ~cores ~mem_mib:128 () in
  let kernel = Kernel.create ~config:(Config.default variant) machine in
  (* Backends: KV store + xv6fs over a RAM disk. *)
  let kv = Kv_server.create machine in
  let kv_h = kv_backend kernel kv in
  let ramdisk = Ramdisk.create machine ~nblocks:disk_blocks in
  let raw = Disk.direct kernel ramdisk in
  Fs.mkfs kernel raw ~core:0 ~size:disk_blocks ~ninodes:64 ();
  let kv_proc = Kernel.spawn kernel ~name:"kvstore" in
  let fs_proc = Kernel.spawn kernel ~name:"xv6fs" in
  let disk_proc = Kernel.spawn kernel ~name:"blockdev" in
  let worker_procs = Array.init workers (fun _ -> Kernel.spawn kernel ~name:"httpd") in
  let sb, mesh, rstats, fs_cell, bind =
    match transport with
    | Skybridge ->
      let sb = Subkernel.init ~seed kernel in
      (* URI addressing through the mesh: servers register under their
         scheme, workers are granted capabilities and call by URI — no
         flat sid plumbing reaches the worker bindings. *)
      let mesh = Mesh.create ~seed sb in
      let disk_sid =
        Subkernel.register_server sb disk_proc ~connection_count:cores
          (Disk.handler kernel ramdisk)
      in
      Mesh.register mesh ~core:0 ~uri:"blk://" ~server_id:disk_sid;
      ignore (Mesh.grant mesh ~core:0 ~client:fs_proc "blk://");
      let sdisk = Disk.over_skybridge sb ~client:fs_proc ~server_id:disk_sid in
      let fs_cell = ref (Fs.mount kernel sdisk ~core:0) in
      (* Handler indirection so a crash-recovery remount swaps the Fs.t
         without re-registering the server (same trick as the SQLite
         stack). *)
      let fs_handler ~core msg = Fs_iface.server_handler !fs_cell ~core msg in
      let fs_sid =
        Subkernel.register_server sb fs_proc ~connection_count:cores
          ~deps:[ disk_sid ] fs_handler
      in
      let kv_sid = Subkernel.register_server sb kv_proc ~connection_count:cores kv_h in
      Mesh.register mesh ~core:0 ~uri:"fs://" ~server_id:fs_sid;
      Mesh.register mesh ~core:0 ~uri:"kv://" ~server_id:kv_sid;
      let rstats = Mesh.retry_stats mesh in
      let remount () =
        let rec go n =
          try fs_cell := Fs.mount kernel sdisk ~core:0 with
          | Subkernel.Server_crashed { server_id } when n > 0 ->
            Subkernel.restart_server sb ~server_id;
            go (n - 1)
        in
        go 3
      in
      let bind w_proc =
        ignore (Mesh.grant mesh ~core:0 ~client:w_proc "kv://");
        ignore (Mesh.grant mesh ~core:0 ~client:w_proc "fs://");
        let call_kv ~core msg = Mesh.call_exn mesh ~core ~client:w_proc "kv://" msg in
        let call_fs ~core msg =
          Mesh.call_exn mesh ~core ~client:w_proc
            ~on_crash:(fun _ -> remount ())
            "fs://" msg
        in
        binding_of_calls ~call_kv ~call_fs
          ~revoke:(fun ~core -> Mesh.suspend_client mesh ~core w_proc)
          ~rebind:(fun ~core ->
            ignore core;
            Mesh.resume_client mesh w_proc)
      in
      (Some sb, Some mesh, Some rstats, fs_cell, bind)
    | Ipc_slowpath ->
      let ipc = Ipc.create kernel in
      let disk_ep =
        Ipc.register ipc disk_proc ~cores:[] (Disk.handler kernel ramdisk)
      in
      let fs = Fs.mount kernel (Disk.over_ipc ipc ~client:fs_proc disk_ep) ~core:0 in
      let fs_ep = Ipc.register ipc fs_proc ~cores:[] (Fs_iface.server_handler fs) in
      let kv_ep = Ipc.register ipc kv_proc ~cores:[] kv_h in
      let bind w_proc =
        let call_kv ~core msg = Ipc.call ipc ~core ~client:w_proc kv_ep msg in
        let call_fs ~core msg = Ipc.call ipc ~core ~client:w_proc fs_ep msg in
        binding_of_calls ~call_kv ~call_fs
          ~revoke:(fun ~core -> ignore core)
          ~rebind:(fun ~core -> ignore core)
      in
      (None, None, None, ref fs, bind)
  in
  let files = provision_files !fs_cell ~seed in
  let nic = Nic.create kernel ~queues:workers in
  let lg = Loadgen.create nic ~seed ~mix ~conns ~requests_per_conn ~rtt ~files in
  let httpd =
    Httpd.create kernel nic
      ~preload:(Array.to_list (Array.map fst files))
      ~workers:(Array.map (fun p -> (p, bind p)) worker_procs)
      ~queue_done:(fun ~queue -> Loadgen.queue_done lg ~queue)
  in
  {
    machine;
    kernel;
    transport;
    workers;
    nic;
    httpd;
    lg;
    sb;
    mesh;
    rstats;
    fs_cell;
    kv;
    elapsed = 0;
  }

let run t =
  Machine.sync_cores t.machine;
  let start = Cpu.cycles (Machine.core t.machine 0) in
  Loadgen.start t.lg ~at:(start + 500);
  Httpd.run t.httpd;
  let elapsed = ref 1 in
  for core = 0 to t.workers - 1 do
    let c = Cpu.cycles (Machine.core t.machine core) - start in
    if c > !elapsed then elapsed := c
  done;
  t.elapsed <- !elapsed

let throughput t =
  Costs.ops_per_sec ~ops:(Loadgen.responses t.lg) ~cycles:(max 1 t.elapsed)

let elapsed t = t.elapsed
let loadgen t = t.lg
let httpd t = t.httpd
let nic t = t.nic
let kernel t = t.kernel
let subkernel t = t.sb
let mesh t = t.mesh
let retry_stats t = t.rstats
let fs t = !(t.fs_cell)
