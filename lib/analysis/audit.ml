(** The unified audit-pass registry.

    Every auditor is a named pass over one {!input} record, so the
    whole-machine sweep ([skybench audit --json], the chaos/mesh gates,
    {!Sky_core.Subkernel.audit}) runs them from a single driver with
    per-pass timing and one report schema. The inputs are plain data
    (bytes, roots, VMCSes, pid pairs) rather than Subkernel values so the
    library stays below [sky_core] in the dependency order;
    {!Sky_core.Subkernel.audit} assembles the inputs from a live machine
    and the CLI formats the result.

    Passes, in registry order:

    - [gadget] — whole-image VMFUNC scan ({!Gadget}, memoized on image
      content)
    - [wrpkru] — whole-image WRPKRU scan, the MPK backend's ERIM-style
      binary inspection ({!Gadget.audit_wrpkru})
    - [trampoline] — abstract interpretation of the live trampoline
      bytes ({!Tramp_check}), per isolation-backend flavor
    - [entryfilter] — the filtered-syscall backend's grant table: every
      granted entry VA must fall inside a blessed code range
    - [ept] — EPT / guest-PT shape: W^X, execute-only trampoline, EPTP
      slots ({!Ept_check})
    - [mesh] — service-mesh authority: bindings vs capabilities, URI
      liveness ({!Mesh_check})
    - [isoflow] — whole-machine cross-domain reachability over the
      composed PT∘EPT sharing graph ({!Isoflow}) *)

type flavor = [ `Vmfunc | `Mpk | `Syscall ]

type entry_filter = {
  ef_entries : (int * int * int) list;
      (** (client pid, server id, granted entry VA) *)
  ef_blessed : (int * int) list;
      (** (va, len) code ranges a grant may legally point into *)
}

type input = {
  images : Gadget.image list;
  wrpkru_images : Gadget.image list;
      (** images the MPK backend's WRPKRU scan must prove clean *)
  machine : Ept_check.input option;
  trampolines : (string * bytes * flavor) list;
      (** trampoline page bytes as read from the shared physical frame,
          with the isolation flavor governing which gate rules apply *)
  entry_filter : entry_filter option;
  mesh : Mesh_check.input option;
  isoflow : Isoflow.input option;
}

let input ?(images = []) ?(wrpkru_images = []) ?machine ?(trampolines = [])
    ?entry_filter ?mesh ?isoflow () =
  { images; wrpkru_images; machine; trampolines; entry_filter; mesh; isoflow }

type pass = {
  p_name : string;
  p_run : input -> Report.violation list;
}

let check_entry_filter ef =
  let blessed va =
    List.exists (fun (base, len) -> va >= base && va < base + len) ef.ef_blessed
  in
  List.filter_map
    (fun (pid, server, entry) ->
      if blessed entry then None
      else
        Some
          (Report.v ~addr:entry ~invariant:"entryfilter.unblessed-entry"
             ~image:(Printf.sprintf "pid%d" pid)
             (Printf.sprintf
                "grant (pid %d -> server %d) points outside every blessed \
                 code range"
                pid server)))
    ef.ef_entries

let passes =
  [
    { p_name = "gadget";
      p_run = (fun inp -> List.concat_map Gadget.audit inp.images) };
    { p_name = "wrpkru";
      p_run = (fun inp -> List.concat_map Gadget.audit_wrpkru inp.wrpkru_images) };
    { p_name = "trampoline";
      p_run =
        (fun inp ->
          List.concat_map
            (fun (image, code, flavor) -> Tramp_check.check ~image ~flavor code)
            inp.trampolines) };
    { p_name = "entryfilter";
      p_run =
        (fun inp ->
          match inp.entry_filter with
          | None -> []
          | Some ef -> check_entry_filter ef) };
    { p_name = "ept";
      p_run =
        (fun inp ->
          match inp.machine with None -> [] | Some m -> Ept_check.check m) };
    { p_name = "mesh";
      p_run =
        (fun inp ->
          match inp.mesh with None -> [] | Some m -> Mesh_check.check m) };
    { p_name = "isoflow";
      p_run =
        (fun inp ->
          match inp.isoflow with None -> [] | Some i -> Isoflow.check i) };
  ]

let pass_names = List.map (fun p -> p.p_name) passes

type pass_result = {
  pr_name : string;
  pr_violations : Report.violation list;
  pr_ms : float;  (** host milliseconds — diagnostic, not deterministic *)
}

let run_passes inp =
  List.map
    (fun p ->
      let t0 = Sys.time () in
      let vs = Report.sort (p.p_run inp) in
      { pr_name = p.p_name;
        pr_violations = vs;
        pr_ms = (Sys.time () -. t0) *. 1000. })
    passes

let violations prs = Report.sort (List.concat_map (fun pr -> pr.pr_violations) prs)

let run inp = violations (run_passes inp)

let ok vs = vs = []
