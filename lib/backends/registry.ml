(** The backend registry: every isolation backend behind one lookup, in
    showdown order (fastest switch last so tables read
    baseline → contender). *)

let all =
  [
    Vmfunc_backend.descriptor; Mpk_backend.descriptor;
    Syscall_backend.descriptor;
  ]

let find kind = List.find (fun d -> Descriptor.kind d = kind) all

let of_string s =
  match Sky_core.Backend.of_string s with
  | Some k -> Some (find k)
  | None -> None

let names () = List.map Descriptor.name all

(** Run [f] with [kind] as the process-wide default backend (restored
    afterwards) — every [Subkernel.init] inside picks it up, so whole
    experiments re-run against another mechanism unchanged. *)
let with_backend kind f = Sky_core.Backend.with_default kind f
