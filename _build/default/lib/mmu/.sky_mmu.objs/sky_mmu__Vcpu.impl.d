lib/mmu/vcpu.ml: Sky_sim Vmcs
