lib/ukernel/lock.mli: Sky_sim
