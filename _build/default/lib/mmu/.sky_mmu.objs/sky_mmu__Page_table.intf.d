lib/mmu/page_table.mli: Pte Sky_mem
