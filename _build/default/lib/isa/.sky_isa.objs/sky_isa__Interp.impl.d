lib/isa/interp.ml: Array Bytes Char Decode Hashtbl Insn Int64 List Option Printf Reg
