(** Deterministic pseudo-random numbers (splitmix64).

    All randomness in the simulator (calling keys, workload key choice,
    synthetic binary corpus) flows through explicitly seeded generators so
    every experiment is reproducible run-to-run. *)

type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let next t = Int64.to_int (next_int64 t) land max_int

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  next t mod bound

let float t =
  (* 53 random bits mapped to [0, 1). *)
  float_of_int (next t land ((1 lsl 53) - 1)) /. float_of_int (1 lsl 53)

let bool t = next t land 1 = 1

let bytes t len =
  let b = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.set b i (Char.chr (int t 256))
  done;
  b

let split t = create ~seed:(next t)
