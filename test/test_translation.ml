(* Tests for the translation-acceleration layer: the paging-structure
   caches, EPT walk cache and host hot lines must be pure accelerators —
   observably identical to the cache-free reference walker under any
   interleaving of mapping mutations, flushes, CR3 writes and VMFUNC
   EPTP switches. *)

open Sky_mem
open Sky_sim
open Sky_mmu

(* ------------------------------------------------------------------ *)
(* Reference walker: the cache-free nested translation, replicating     *)
(* Translate.translate's semantics (including the quirk that guest      *)
(* intermediate entries are always treated as next-table pointers)      *)
(* without touching any acceleration structure.                         *)
(* ------------------------------------------------------------------ *)

let ref_translate vcpu mem ~write ~va =
  let ept gpa =
    match vcpu.Vcpu.vmcs with
    | None -> gpa
    | Some vmcs -> (
      match Ept.walk ~mem ~root_pa:(Vmcs.current_eptp vmcs) ~gpa with
      | Ok r -> r.Ept.hpa
      | Error f -> raise (Ept.Ept_violation f))
  in
  let rec go table_gpa level =
    let table_hpa = ept table_gpa in
    let e = Phys_mem.read_u64 mem (table_hpa + (Page_table.va_index ~level va * 8)) in
    if not (Pte.is_present e) then
      raise (Page_table.Page_fault (Page_table.Not_present va))
    else
      let pa, flags = Pte.decode e in
      if level = 0 then (pa, flags) else go pa (level - 1)
  in
  let page_gpa, flags = go vcpu.Vcpu.cr3 3 in
  if vcpu.Vcpu.mode = Vcpu.User && not flags.Pte.user then
    raise (Page_table.Page_fault (Page_table.Protection va));
  if write && not flags.Pte.writable then
    raise (Page_table.Page_fault (Page_table.Protection va));
  ept page_gpa lor (va land 0xfff)

(* Collapse a translation attempt into a comparable outcome. *)
let outcome f =
  match f () with
  | hpa -> Printf.sprintf "hpa:%x" hpa
  | exception Page_table.Page_fault (Page_table.Not_present v) ->
    Printf.sprintf "not_present:%x" v
  | exception Page_table.Page_fault (Page_table.Protection v) ->
    Printf.sprintf "protection:%x" v
  | exception Ept.Ept_violation _ -> "ept_violation"

(* ------------------------------------------------------------------ *)
(* Equivalence property                                                 *)
(* ------------------------------------------------------------------ *)

(* The op universe: two guest page tables (PCIDs 1/2), two EPTs on the
   EPTP list, a handful of VAs spanning distinct PDE/PDPTE/PML4E
   prefixes, and a small pool of data frames. *)

let vas = [| 0x400000; 0x401000; 0x402000; 0x600000; 0x4000_0000; 0x80_0000_0000 |]
let flag_pool = [| Pte.urw; Pte.ur; Pte.rw |]

type world = {
  mem : Phys_mem.t;
  alloc : Frame_alloc.t;
  vcpu : Vcpu.t;
  pts : Page_table.t array;
  epts : Ept.t array;
  frames : int array;
}

let mk_world () =
  let machine = Machine.create ~cores:1 ~mem_mib:64 () in
  let mem = machine.Machine.mem and alloc = machine.Machine.alloc in
  let vcpu = Vcpu.create ~pcid_enabled:true (Machine.core machine 0) in
  let pts = [| Page_table.create alloc; Page_table.create alloc |] in
  let frames = Array.init 6 (fun _ -> Frame_alloc.alloc_frame alloc) in
  let base = Ept.create alloc in
  Ept.map_identity_1g base ~mem ~alloc ~gib:1;
  let epts =
    [| Ept.clone_shallow base ~mem ~alloc; Ept.clone_shallow base ~mem ~alloc |]
  in
  let vmcs = Vmcs.create ~vpid:true () in
  Vmcs.install_list vmcs [ Ept.root_pa epts.(0); Ept.root_pa epts.(1) ];
  Vcpu.enter_non_root vcpu vmcs;
  Vcpu.write_cr3 vcpu ~cr3:(Page_table.root_pa pts.(0)) ~pcid:1;
  Vcpu.set_mode vcpu Vcpu.User;
  { mem; alloc; vcpu; pts; epts; frames }

(* One op = (tag, a, b, c) small ints; interpretation below. Every
   translate op compares the accelerated walker against the reference. *)
let apply w ok (tag, a, b, c) =
  let va = vas.(a mod Array.length vas) in
  let frame = w.frames.(b mod Array.length w.frames) in
  match tag mod 8 with
  | 0 ->
    Page_table.map w.pts.(a mod 2) ~mem:w.mem ~alloc:w.alloc ~va ~pa:frame
      ~flags:flag_pool.(c mod Array.length flag_pool)
  | 1 -> Page_table.unmap w.pts.(a mod 2) ~mem:w.mem ~va
  | 2 -> Vcpu.invlpg w.vcpu ~va
  | 3 ->
    let i = a mod 2 in
    Vcpu.write_cr3 w.vcpu ~cr3:(Page_table.root_pa w.pts.(i)) ~pcid:(i + 1)
  | 4 -> Vmfunc.execute w.vcpu ~func:0 ~index:(a mod 2)
  | 5 -> Ept.unmap_4k w.epts.(a mod 2) ~mem:w.mem ~alloc:w.alloc ~gpa:frame
  | 6 ->
    Ept.remap_gpa w.epts.(a mod 2) ~mem:w.mem ~alloc:w.alloc ~gpa:frame
      ~hpa:w.frames.(c mod Array.length w.frames)
  | _ ->
    let write = c land 1 = 1 in
    let acc = if write then Translate.data_write else Translate.data_read in
    let got = outcome (fun () -> Translate.translate w.vcpu w.mem acc ~va) in
    let want = outcome (fun () -> ref_translate w.vcpu w.mem ~write ~va) in
    if got <> want then
      ok :=
        Some
          (Printf.sprintf "va=%x write=%b: accelerated=%s reference=%s" va
             write got want)

let prop_accel_equals_reference =
  QCheck.Test.make
    ~name:"accelerated translation == cache-free reference under mutations"
    ~count:60
    QCheck.(
      list_of_size (Gen.int_range 1 60)
        (quad (int_bound 7) (int_bound 15) (int_bound 15) (int_bound 15)))
    (fun ops ->
      let w = mk_world () in
      let bad = ref None in
      List.iter (apply w bad) ops;
      (* Sweep every VA at the end so sequences ending in mutations are
         still checked. *)
      List.iteri (fun i _ -> apply w bad (7, i, 0, i)) (Array.to_list vas);
      match !bad with
      | None -> true
      | Some msg -> QCheck.Test.fail_report msg)

(* ------------------------------------------------------------------ *)
(* Targeted regressions                                                 *)
(* ------------------------------------------------------------------ *)

(* A guest unmap must fault on the very next access: neither the TLB,
   the PSCs nor a hot line may serve the stale leaf. *)
let test_stale_psc_after_unmap () =
  let machine = Machine.create ~cores:1 ~mem_mib:64 () in
  let mem = machine.Machine.mem and alloc = machine.Machine.alloc in
  let vcpu = Vcpu.create ~pcid_enabled:true (Machine.core machine 0) in
  let pt = Page_table.create alloc in
  let frame = Frame_alloc.alloc_frame alloc in
  Page_table.map pt ~mem ~alloc ~va:0x400000 ~pa:frame ~flags:Pte.urw;
  Vcpu.write_cr3 vcpu ~cr3:(Page_table.root_pa pt) ~pcid:1;
  Vcpu.set_mode vcpu Vcpu.User;
  (* Warm every structure: TLB, PSCs, and the hot line (3rd access). *)
  for _ = 1 to 3 do
    ignore (Translate.translate vcpu mem Translate.data_read ~va:0x400000)
  done;
  Page_table.unmap pt ~mem ~va:0x400000;
  match
    outcome (fun () -> Translate.translate vcpu mem Translate.data_read ~va:0x400000)
  with
  | "not_present:400000" -> ()
  | other -> Alcotest.failf "expected not_present after unmap, got %s" other

(* An EPT unmap must likewise be visible immediately, even though the
   guest page table is untouched. *)
let test_stale_tlb_after_ept_unmap () =
  let machine = Machine.create ~cores:1 ~mem_mib:64 () in
  let mem = machine.Machine.mem and alloc = machine.Machine.alloc in
  let vcpu = Vcpu.create ~pcid_enabled:true (Machine.core machine 0) in
  let pt = Page_table.create alloc in
  let frame = Frame_alloc.alloc_frame alloc in
  Page_table.map pt ~mem ~alloc ~va:0x400000 ~pa:frame ~flags:Pte.urw;
  let ept = Ept.create alloc in
  Ept.map_identity_1g ept ~mem ~alloc ~gib:1;
  let vmcs = Vmcs.create ~vpid:true () in
  Vmcs.install_list vmcs [ Ept.root_pa ept ];
  Vcpu.enter_non_root vcpu vmcs;
  Vcpu.write_cr3 vcpu ~cr3:(Page_table.root_pa pt) ~pcid:1;
  Vcpu.set_mode vcpu Vcpu.User;
  for _ = 1 to 3 do
    ignore (Translate.translate vcpu mem Translate.data_read ~va:0x400000)
  done;
  Ept.unmap_4k ept ~mem ~alloc ~gpa:frame;
  match
    outcome (fun () -> Translate.translate vcpu mem Translate.data_read ~va:0x400000)
  with
  | "ept_violation" -> ()
  | other -> Alcotest.failf "expected ept_violation after EPT unmap, got %s" other

(* Figure-6 configuration: the same VA resolves through different guest
   page tables on either side of a VMFUNC (CR3-remap trick). The hot
   line recorded for the client's ASID must never answer for the
   server's, and vice versa — with VPID on, so nothing is flushed. *)
let test_hot_line_across_vmfunc () =
  let machine = Machine.create ~cores:1 ~mem_mib:64 () in
  let mem = machine.Machine.mem and alloc = machine.Machine.alloc in
  let vcpu = Vcpu.create ~pcid_enabled:true (Machine.core machine 0) in
  let client_pt = Page_table.create alloc in
  let server_pt = Page_table.create alloc in
  let va = 0x400000 in
  let client_frame = Frame_alloc.alloc_frame alloc in
  let server_frame = Frame_alloc.alloc_frame alloc in
  Page_table.map client_pt ~mem ~alloc ~va ~pa:client_frame ~flags:Pte.urw;
  Page_table.map server_pt ~mem ~alloc ~va ~pa:server_frame ~flags:Pte.urw;
  let base = Ept.create alloc in
  Ept.map_identity_1g base ~mem ~alloc ~gib:1;
  let client_ept = Ept.clone_shallow base ~mem ~alloc in
  let server_ept = Ept.clone_shallow base ~mem ~alloc in
  Ept.remap_gpa server_ept ~mem ~alloc
    ~gpa:(Page_table.root_pa client_pt)
    ~hpa:(Page_table.root_pa server_pt);
  let vmcs = Vmcs.create ~vpid:true () in
  Vmcs.install_list vmcs [ Ept.root_pa client_ept; Ept.root_pa server_ept ];
  Vcpu.enter_non_root vcpu vmcs;
  Vcpu.write_cr3 vcpu ~cr3:(Page_table.root_pa client_pt) ~pcid:1;
  Vcpu.set_mode vcpu Vcpu.User;
  let xlate () = Translate.translate vcpu mem Translate.data_read ~va in
  (* Three accesses: miss+record, then a genuine hot-line hit. *)
  for _ = 1 to 3 do
    Alcotest.(check int) "client frame" client_frame (xlate ())
  done;
  Vmfunc.execute vcpu ~func:0 ~index:1;
  for _ = 1 to 3 do
    Alcotest.(check int) "server frame after VMFUNC" server_frame (xlate ())
  done;
  Vmfunc.execute vcpu ~func:0 ~index:0;
  Alcotest.(check int) "client frame again" client_frame (xlate ())

(* ------------------------------------------------------------------ *)
(* Tlb / Psc flush-path units (the O(1) generation/floor machinery)     *)
(* ------------------------------------------------------------------ *)

let e ppn = { Tlb.ppn; page_shift = 12; writable = true; user = true }

let test_tlb_flush_all_then_reuse () =
  let t = Tlb.create ~name:"t" ~entries:16 ~ways:4 in
  Tlb.insert t ~asid:1 ~vpn:5 (e 100);
  Tlb.insert t ~asid:2 ~vpn:9 (e 200);
  Tlb.flush_all t;
  Alcotest.(check bool) "asid1 gone" true (Tlb.lookup t ~asid:1 ~vpn:5 = None);
  Alcotest.(check bool) "asid2 gone" true (Tlb.lookup t ~asid:2 ~vpn:9 = None);
  (* Slots are reusable after the generation bump. *)
  Tlb.insert t ~asid:1 ~vpn:5 (e 300);
  Alcotest.(check bool) "reinsert lives" true
    (Tlb.lookup t ~asid:1 ~vpn:5 = Some (e 300))

let test_tlb_flush_asid_is_selective () =
  let t = Tlb.create ~name:"t" ~entries:16 ~ways:4 in
  Tlb.insert t ~asid:1 ~vpn:5 (e 100);
  Tlb.insert t ~asid:2 ~vpn:5 (e 200);
  Tlb.flush_asid t ~asid:1;
  Alcotest.(check bool) "asid1 flushed" true (Tlb.lookup t ~asid:1 ~vpn:5 = None);
  Alcotest.(check bool) "asid2 survives" true
    (Tlb.lookup t ~asid:2 ~vpn:5 = Some (e 200));
  (* A fresh insert under the flushed ASID must not be floored away. *)
  Tlb.insert t ~asid:1 ~vpn:5 (e 300);
  Alcotest.(check bool) "post-flush insert lives" true
    (Tlb.lookup t ~asid:1 ~vpn:5 = Some (e 300))

let test_psc_flush_key_all_asids () =
  let p = Psc.create ~name:"p" ~entries:16 ~ways:4 in
  Psc.insert p ~asid:1 ~key:7 100;
  Psc.insert p ~asid:2 ~key:7 200;
  Psc.insert p ~asid:1 ~key:8 300;
  Psc.flush_key p ~key:7;
  Alcotest.(check bool) "key 7 asid 1 gone" true (Psc.lookup p ~asid:1 ~key:7 = None);
  Alcotest.(check bool) "key 7 asid 2 gone" true (Psc.lookup p ~asid:2 ~key:7 = None);
  Alcotest.(check bool) "key 8 survives" true
    (Psc.lookup p ~asid:1 ~key:8 = Some 300)

let test_accel_toggle_flushes_everything () =
  let t = Tlb.create ~name:"t" ~entries:16 ~ways:4 in
  Tlb.insert t ~asid:1 ~vpn:5 (e 100);
  let saved = Accel.is_enabled () in
  Fun.protect
    ~finally:(fun () -> Accel.set_enabled saved)
    (fun () ->
      Accel.set_enabled false;
      Accel.set_enabled true);
  Alcotest.(check bool) "epoch bump invalidates" true
    (Tlb.lookup t ~asid:1 ~vpn:5 = None)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "translation"
    [
      ("equivalence", qc [ prop_accel_equals_reference ]);
      ( "staleness",
        [
          Alcotest.test_case "guest unmap faults immediately" `Quick
            test_stale_psc_after_unmap;
          Alcotest.test_case "EPT unmap faults immediately" `Quick
            test_stale_tlb_after_ept_unmap;
          Alcotest.test_case "hot line respects VMFUNC ASID" `Quick
            test_hot_line_across_vmfunc;
        ] );
      ( "flush_paths",
        [
          Alcotest.test_case "flush_all generation bump" `Quick
            test_tlb_flush_all_then_reuse;
          Alcotest.test_case "flush_asid floor is selective" `Quick
            test_tlb_flush_asid_is_selective;
          Alcotest.test_case "INVLPG drops PSC keys across ASIDs" `Quick
            test_psc_flush_key_all_asids;
          Alcotest.test_case "accel toggle invalidates via epoch" `Quick
            test_accel_toggle_flushes_everything;
        ] );
    ]
