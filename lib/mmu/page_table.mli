(** 4-level x86-64 guest page tables, stored in simulated physical memory.

    The table pages live in {!Sky_mem.Phys_mem} frames allocated from the
    machine's frame allocator, and every entry is a real 64-bit
    {!Pte}-encoded word, so walks read exactly what a hardware walker
    would. Guest page tables map 4 KiB pages only (processes); huge pages
    appear in the EPT ({!Ept}). *)

type t

type fault =
  | Not_present of int  (** faulting virtual address *)
  | Protection of int  (** write to read-only or user access to kernel *)

exception Page_fault of fault

val create : Sky_mem.Frame_alloc.t -> t
(** Allocate an empty PML4. *)

val root_pa : t -> int
(** Physical (= guest-physical under the identity base EPT) address of the
    PML4 frame — the process's CR3 value. *)

val map :
  t ->
  mem:Sky_mem.Phys_mem.t ->
  alloc:Sky_mem.Frame_alloc.t ->
  va:int ->
  pa:int ->
  flags:Pte.flags ->
  unit
(** Map one 4 KiB page. Intermediate levels are allocated on demand.
    Remapping an existing VA overwrites the leaf entry. *)

val map_range :
  t ->
  mem:Sky_mem.Phys_mem.t ->
  alloc:Sky_mem.Frame_alloc.t ->
  va:int ->
  pa:int ->
  len:int ->
  flags:Pte.flags ->
  unit

val unmap : t -> mem:Sky_mem.Phys_mem.t -> va:int -> unit
(** Clear the leaf entry for [va]; no-op if unmapped. *)

val protect :
  t -> mem:Sky_mem.Phys_mem.t -> va:int -> flags:Pte.flags -> unit
(** Change the flags of an existing mapping. Raises [Page_fault] if [va]
    is not mapped. *)

type walk_result = {
  pa : int;  (** translated physical address *)
  flags : Pte.flags;
  entries_read : int list;  (** PAs of the entries touched, root first *)
}

val walk :
  mem:Sky_mem.Phys_mem.t -> root_pa:int -> va:int -> (walk_result, fault) result
(** Pure software walk from an arbitrary root (used by the walker in
    {!Translate} in non-virtualized mode and by tests). Does not charge
    cycles — the caller accounts for [entries_read]. *)

val va_index : level:int -> int -> int
(** [va_index ~level va] is the 9-bit table index of [va] at [level]
    (3 = PML4 … 0 = PT). Exposed for {!Ept} and tests. *)

val iter_leaves :
  mem:Sky_mem.Phys_mem.t ->
  root_pa:int ->
  (va:int -> pa:int -> flags:Pte.flags -> unit) ->
  unit
(** Visit every present 4 KiB leaf mapping reachable from [root_pa] with
    the leaf entry's flags — the W^X auditor's view of a process's
    address space. Intermediate entries (always permissive, the leaf
    gates) are not reported. *)

val pages : t -> int
(** Number of table pages owned by this page table (including the root). *)

val destroy : t -> alloc:Sky_mem.Frame_alloc.t -> unit
(** Free all table pages (not the mapped frames). *)
