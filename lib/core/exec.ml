open Sky_isa
open Sky_ukernel

type stop = [ `Returned | `Syscall | `Fell_off ]

exception Exec_fault of string

type regs = int64 array

let return_sentinel = 0x0dead000

let get regs r = regs.(Reg.encoding r)
let set regs r v = regs.(Reg.encoding r) <- v

(* Minimal flag state, shared semantics with the reference interpreter. *)
type flags = { mutable zf : bool; mutable slt : bool; mutable ult : bool }

let run kernel ~core ~entry ?regs ?(max_steps = 100_000) () =
  let vcpu = Kernel.vcpu kernel ~core in
  let mem = Kernel.mem kernel in
  Sky_mmu.Vcpu.set_mode vcpu Sky_mmu.Vcpu.User;
  let regs =
    match regs with
    | Some r -> Array.copy r
    | None ->
      (* A scratch stack in the live process with the sentinel on top. *)
      let proc =
        match kernel.Kernel.running.(core) with
        | Some p -> p
        | None -> raise (Exec_fault "no process running on this core")
      in
      let stack_va = Kernel.map_anon kernel proc 4096 in
      let r = Array.make 16 0L in
      let rsp = stack_va + 4096 - 8 in
      Sky_mmu.Translate.write_u64 vcpu mem ~va:rsp (Int64.of_int return_sentinel);
      set r Reg.Rsp (Int64.of_int rsp);
      r
  in
  let flags = { zf = false; slt = false; ult = false } in
  let read64 va = Sky_mmu.Translate.read_u64 vcpu mem ~va in
  let write64 va v = Sky_mmu.Translate.write_u64 vcpu mem ~va v in
  let push v =
    let rsp = Int64.to_int (get regs Reg.Rsp) - 8 in
    set regs Reg.Rsp (Int64.of_int rsp);
    write64 rsp v
  in
  let pop () =
    let rsp = Int64.to_int (get regs Reg.Rsp) in
    let v = read64 rsp in
    set regs Reg.Rsp (Int64.of_int (rsp + 8));
    v
  in
  let ea (m : Insn.mem) =
    let base = Option.fold ~none:0L ~some:(get regs) m.Insn.base in
    let index =
      Option.fold ~none:0L
        ~some:(fun (r, s) -> Int64.mul (get regs r) (Int64.of_int s))
        m.Insn.index
    in
    Int64.to_int (Int64.add (Int64.add base index) (Int64.of_int m.Insn.disp))
  in
  let rm_value = function
    | Insn.R r -> get regs r
    | Insn.M m -> read64 (ea m)
  in
  let set_flags_result v =
    flags.zf <- Int64.equal v 0L;
    flags.slt <- Int64.compare v 0L < 0;
    flags.ult <- false
  in
  let set_flags_cmp a b =
    flags.zf <- Int64.equal a b;
    flags.slt <- Int64.compare a b < 0;
    flags.ult <- Int64.unsigned_compare a b < 0
  in
  let cond_holds = function
    | Insn.E -> flags.zf
    | Insn.Ne -> not flags.zf
    | Insn.L -> flags.slt
    | Insn.Ge -> not flags.slt
    | Insn.Le -> flags.slt || flags.zf
    | Insn.G -> not (flags.slt || flags.zf)
    | Insn.B -> flags.ult
    | Insn.Ae -> not flags.ult
  in
  (* Fetch a decode window through the i-side of the MMU. The decoded
     form is memoized per IP for this run; the window is still read
     through translation every step (identical simulated charges and
     fault sites) and the memo is only served when the freshly read
     bytes match, so self-modifying or remapped code can never execute
     stale decodes — only the pure host-side decode work is skipped. *)
  let decode_memo : (int, bytes * Decode.decoded) Hashtbl.t = Hashtbl.create 64 in
  let fetch_insn ip =
    Sky_mmu.Translate.touch vcpu mem Sky_mmu.Translate.fetch ~va:ip ~len:1;
    (* Read up to 16 bytes without crossing into an unmapped next page. *)
    let in_page = 4096 - (ip land 0xfff) in
    let want = min 16 in_page in
    let window =
      if want >= 16 then Sky_mmu.Translate.read_bytes vcpu mem ~va:ip ~len:16
      else begin
        (* Instruction may span the page: try to read beyond; fall back
           to the in-page window if the next page is unmapped. *)
        try Sky_mmu.Translate.read_bytes vcpu mem ~va:ip ~len:16
        with Sky_mmu.Translate.Page_fault _ ->
          Sky_mmu.Translate.read_bytes vcpu mem ~va:ip ~len:want
      end
    in
    if not (Sky_sim.Accel.is_enabled ()) then Decode.decode_one window 0
    else
      match Hashtbl.find_opt decode_memo ip with
      | Some (w, d) when Bytes.equal w window -> d
      | _ ->
        let d = Decode.decode_one window 0 in
        Hashtbl.replace decode_memo ip (window, d);
        d
  in
  let rec step ip steps =
    if steps > max_steps then raise (Exec_fault "step limit")
    else if ip = return_sentinel then (`Returned, regs)
    else begin
      (* Fault site "exec.step": the machine dies mid-trampoline. *)
      if Sky_faults.Fault.is_enabled () then
        Sky_faults.Fault.inject ~core "exec.step";
      let d = fetch_insn ip in
      let next = ip + d.Decode.len in
      match d.Decode.insn with
      | None ->
        raise (Exec_fault (Printf.sprintf "undecodable instruction at %#x" ip))
      | Some insn -> (
        let continue () = step next (steps + 1) in
        let alu r v =
          set regs r v;
          set_flags_result v;
          continue ()
        in
        match insn with
        | Insn.Nop -> continue ()
        | Insn.Push r ->
          push (get regs r);
          continue ()
        | Insn.Pop r ->
          set regs r (pop ());
          continue ()
        | Insn.Mov_rr (d, s) ->
          set regs d (get regs s);
          continue ()
        | Insn.Mov_ri (d, i) ->
          set regs d i;
          continue ()
        | Insn.Mov_load (d, m) ->
          set regs d (read64 (ea m));
          continue ()
        | Insn.Mov_store (m, s) ->
          write64 (ea m) (get regs s);
          continue ()
        | Insn.Add_rr (d, s) ->
          set regs d (Int64.add (get regs d) (get regs s));
          continue ()
        | Insn.Add_ri (d, i) ->
          set regs d (Int64.add (get regs d) (Int64.of_int i));
          continue ()
        | Insn.Add_rm (d, m) ->
          set regs d (Int64.add (get regs d) (read64 (ea m)));
          continue ()
        | Insn.Sub_ri (d, i) ->
          set regs d (Int64.sub (get regs d) (Int64.of_int i));
          continue ()
        | Insn.Xor_rr (d, s) -> alu d (Int64.logxor (get regs d) (get regs s))
        | Insn.And_rr (d, s) -> alu d (Int64.logand (get regs d) (get regs s))
        | Insn.And_ri (d, i) -> alu d (Int64.logand (get regs d) (Int64.of_int i))
        | Insn.Or_rr (d, s) -> alu d (Int64.logor (get regs d) (get regs s))
        | Insn.Or_ri (d, i) -> alu d (Int64.logor (get regs d) (Int64.of_int i))
        | Insn.Cmp_rr (a, b) ->
          set_flags_cmp (get regs a) (get regs b);
          continue ()
        | Insn.Cmp_ri (a, i) ->
          set_flags_cmp (get regs a) (Int64.of_int i);
          continue ()
        | Insn.Test_rr (a, b) ->
          set_flags_result (Int64.logand (get regs a) (get regs b));
          continue ()
        | Insn.Shl_ri (d, i) -> alu d (Int64.shift_left (get regs d) (i land 0x3f))
        | Insn.Shr_ri (d, i) ->
          alu d (Int64.shift_right_logical (get regs d) (i land 0x3f))
        | Insn.Inc d -> alu d (Int64.add (get regs d) 1L)
        | Insn.Dec d -> alu d (Int64.sub (get regs d) 1L)
        | Insn.Neg d -> alu d (Int64.neg (get regs d))
        | Insn.Imul_rri (d, src, i) ->
          set regs d (Int64.mul (rm_value src) (Int64.of_int i));
          continue ()
        | Insn.Imul_rm (d, src) ->
          set regs d (Int64.mul (get regs d) (rm_value src));
          continue ()
        | Insn.Lea (d, m) ->
          set regs d (Int64.of_int (ea m));
          continue ()
        | Insn.Jmp_rel rel -> step (next + rel) (steps + 1)
        | Insn.Jcc (c, rel) ->
          if cond_holds c then step (next + rel) (steps + 1) else continue ()
        | Insn.Call_rel rel ->
          push (Int64.of_int next);
          step (next + rel) (steps + 1)
        | Insn.Ret ->
          let target = Int64.to_int (pop ()) in
          if target = return_sentinel then (`Returned, regs)
          else step target (steps + 1)
        | Insn.Syscall -> (`Syscall, regs)
        | Insn.Vmfunc ->
          (* The real thing: EPTP switching with RAX = function, RCX =
             index, exactly as the trampoline encodes it. *)
          Sky_trace.Trace.instant ~core ~cat:"vmfunc" "exec.vmfunc";
          Sky_mmu.Vmfunc.execute vcpu
            ~func:(Int64.to_int (get regs Reg.Rax))
            ~index:(Int64.to_int (get regs Reg.Rcx));
          continue ()
        | Insn.Wrpkru ->
          (* Hardware faults unless ECX = EDX = 0; the simulated machine
             does too, so a call gate with sloppy operand discipline dies
             here even if the static auditor was bypassed. *)
          if get regs Reg.Rcx <> 0L || get regs Reg.Rdx <> 0L then
            raise (Exec_fault "wrpkru with ECX/EDX nonzero");
          Sky_trace.Trace.instant ~core ~cat:"vmfunc" "exec.wrpkru";
          Sky_mmu.Wrpkru.execute vcpu
            ~pkru:(Int64.to_int (Int64.logand (get regs Reg.Rax) 0xffff_ffffL));
          continue ()
        | Insn.Cpuid ->
          set regs Reg.Rax 0x16L;
          set regs Reg.Rbx 0x756e_6547L;
          set regs Reg.Rcx 0x6c65_746eL;
          set regs Reg.Rdx 0x4965_6e69L;
          continue ())
    end
  in
  step entry 0
