type kind = Insn | Data

let access cpu kind pa =
  let l1 = match kind with Insn -> Cpu.l1i cpu | Data -> Cpu.l1d cpu in
  if Cache.access l1 pa then Cpu.charge cpu Costs.lat_l1
  else if Cache.access (Cpu.l2 cpu) pa then Cpu.charge cpu Costs.lat_l2
  else if Cache.access (Cpu.l3 cpu) pa then Cpu.charge cpu Costs.lat_l3
  else Cpu.charge cpu Costs.lat_dram

let access_state_only cpu kind pa =
  let l1 = match kind with Insn -> Cpu.l1i cpu | Data -> Cpu.l1d cpu in
  if not (Cache.access l1 pa) then
    if not (Cache.access (Cpu.l2 cpu) pa) then ignore (Cache.access (Cpu.l3 cpu) pa)

let touch_range_state_only cpu kind ~pa ~len =
  if len > 0 then begin
    let line = 64 in
    let first = pa / line and last = (pa + len - 1) / line in
    for l = first to last do
      access_state_only cpu kind (l * line)
    done
  end

let access_uncached cpu = Cpu.charge cpu Costs.lat_dram

let touch_range cpu kind ~pa ~len =
  if len > 0 then begin
    let line = 64 in
    let first = pa / line and last = (pa + len - 1) / line in
    for l = first to last do
      access cpu kind (l * line)
    done
  end
