(** Seeded, deterministic fault-plan engine.

    Faults are armed at named {e sites} threaded through the hot layers
    (["sim.cycle"], ["mmu.walk"], ["exec.step"], ["ipc.leg"],
    ["server.<name>"], ["subkernel.call"]) and fire by cycle count, call
    count, or probability. All randomness is per-arm splitmix64 state
    derived from the engine seed and the site name, so a plan's firing
    schedule is independent of arm interleaving and bit-reproducible
    run-to-run.

    By default all operations act on a process-wide engine, like
    {!Sky_trace.Trace}: when disabled every hook is a single atomic
    read, costs zero simulated cycles, and perturbs nothing. The
    parallel scheduler binds a {e fresh} engine domain-locally per
    shard ({!fresh_engine} / {!with_engine}) so concurrent shards arm,
    fire and log independently — a shard's fault schedule and census
    are identical whether it ran sequentially or on its own domain. *)

type kind =
  | Crash  (** the component dies mid-operation *)
  | Hang  (** the handler burns cycles past any watchdog budget *)
  | Revoke  (** the binding is revoked out from under the client *)
  | Ept_fault  (** a spurious EPT violation during the call *)
  | Drop  (** the message/leg is dropped (transport-level loss) *)

type trigger =
  | At_cycle of int  (** first check whose clock reading is >= the cycle *)
  | At_hit of int  (** the n-th check of this site (1-based) *)
  | Every of int  (** every n-th check of this site *)
  | Prob of float  (** each check independently, with probability p *)

exception Injected of { site : string; kind : kind }
(** Raised by hook sites when an armed fault fires. *)

type engine
(** One fault engine: its own enable bit, scope depth, seed, clock,
    arms and fired log. *)

val fresh_engine : ?seed:int -> unit -> engine
(** A new, disabled engine with no arms (seed default 0). *)

val with_engine : engine -> (unit -> 'a) -> 'a
(** Run a thunk with every [Fault] operation in this domain acting on
    [engine] instead of the process-wide default (exception-safe,
    restores the previous binding; the binding is domain-local, so
    concurrent domains can each hold a different engine). *)

val reset : ?seed:int -> unit -> unit
(** Clear all arms and the fired log, reseed, and enable the (current)
    engine. *)

val disable : unit -> unit
(** Turn the engine off (arms and fired log are kept for readout). *)

val is_enabled : unit -> bool

val set_clock : (int -> int) -> unit
(** [set_clock f] installs the cycle clock ([f core] = current cycle of
    [core]); {!Sky_sim.Machine.create} installs it. *)

val arm : ?budget:int -> site:string -> kind:kind -> trigger -> unit
(** Arm a fault at [site]. [budget] (default 1) bounds how many times the
    arm may fire before it is exhausted. *)

val check : ?scoped:bool -> core:int -> string -> kind option
(** Evaluate [site]'s arms against one hit; [Some kind] means a fault
    fires now (the arm's budget is consumed and a ["fault.<site>"] trace
    instant is emitted). [scoped] (default [false]) restricts firing to
    inside a {!with_scope} / {!enter_scope} window — ambient sites on the
    IPC path use it so faults land inside a mediated call, not in
    unrecoverable setup code. *)

val inject : core:int -> string -> unit
(** [check ~scoped:true] and raise {!Injected} if a fault fires — the
    one-liner for ambient hook sites (sim/mmu/exec/ipc). *)

val enter_scope : unit -> unit
val leave_scope : unit -> unit

val on_scope_enter : (unit -> unit) -> unit
(** Register a callback run every time a fault scope opens while the
    engine is enabled. Layers above use it to drop host-side memo state
    (e.g. translation hot lines) so chaos runs take identical code
    paths regardless of prior warm-up. Callbacks accumulate and run in
    registration order. *)

val with_scope : (unit -> 'a) -> 'a
(** Run a thunk with the scoped-site window open (exception-safe). *)

val in_scope : unit -> bool

val fired : unit -> (string * kind * int) list
(** Chronological log of fired faults: (site, kind, cycle). *)

val fired_counts : unit -> (string * int) list
(** Fires per site, sorted by site name (census-stable order). *)

val string_of_kind : kind -> string
