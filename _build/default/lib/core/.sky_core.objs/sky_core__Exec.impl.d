lib/core/exec.ml: Array Decode Insn Int64 Kernel Option Printf Reg Sky_isa Sky_mmu Sky_ukernel
