(* The full benchmark harness.

   Phase 1 regenerates every table and figure of the paper's motivation
   and evaluation sections (the numbers that matter — simulated cycles,
   printed as paper-vs-ours tables).

   Phase 2 registers one Bechamel [Test.make] per table/figure: each
   test wraps the hot operation that the corresponding experiment
   exercises, so `bench/main.exe` also reports how fast the *simulator
   itself* runs on the host. *)

open Bechamel
open Bechamel.Toolkit

(* ------------------------------------------------------------------ *)
(* Phase 1: reproduce the paper                                        *)
(* ------------------------------------------------------------------ *)

let reproduce () =
  print_endline "SkyBridge (EuroSys'19) reproduction - all tables and figures";
  print_endline "=============================================================";
  print_newline ();
  List.iter
    (fun e ->
      Sky_harness.Tbl.print (e.Sky_experiments.Registry.run ());
      print_newline ())
    Sky_experiments.Registry.all

(* ------------------------------------------------------------------ *)
(* Phase 2: Bechamel micro-benchmarks (host-side speed of each
   experiment's hot path)                                              *)
(* ------------------------------------------------------------------ *)

(* Pre-built environments so Test.make measures the steady state. *)

let staged f =
  (* Build the environment once, return a closure Bechamel can hammer. *)
  Staged.stage (f ())

let ipc_env variant =
  let open Sky_ukernel in
  let machine = Sky_sim.Machine.create ~cores:4 ~mem_mib:64 () in
  let kernel = Kernel.create ~config:(Config.default variant) machine in
  let ipc = Sky_kernels.Ipc.create kernel in
  let client = Kernel.spawn kernel ~name:"client" in
  let server = Kernel.spawn kernel ~name:"server" in
  let ep = Sky_kernels.Ipc.register ipc server (fun ~core:_ m -> m) in
  Kernel.context_switch kernel ~core:0 client;
  let msg = Bytes.create 8 in
  fun () -> ignore (Sky_kernels.Ipc.call ipc ~core:0 ~client ep msg)

let skybridge_env () =
  let open Sky_ukernel in
  let machine = Sky_sim.Machine.create ~cores:4 ~mem_mib:64 () in
  let kernel = Kernel.create machine in
  let sb = Sky_core.Subkernel.init kernel in
  let client = Kernel.spawn kernel ~name:"client" in
  let server = Kernel.spawn kernel ~name:"server" in
  let sid = Sky_core.Subkernel.register_server sb server (fun ~core:_ m -> m) in
  Sky_core.Subkernel.register_client_to_server sb client ~server_id:sid;
  Kernel.context_switch kernel ~core:0 client;
  let msg = Bytes.create 8 in
  fun () ->
    ignore (Sky_core.Subkernel.direct_server_call sb ~core:0 ~client ~server_id:sid msg)

let pipeline_env config =
  let open Sky_ukernel in
  let machine = Sky_sim.Machine.create ~cores:4 ~mem_mib:128 () in
  let kernel = Kernel.create machine in
  let p =
    match config with
    | Sky_kvstore.Pipeline.Skybridge ->
      let sb = Sky_core.Subkernel.init kernel in
      Sky_kvstore.Pipeline.create ~sb kernel config
    | _ -> Sky_kvstore.Pipeline.create kernel config
  in
  fun () -> ignore (Sky_kvstore.Pipeline.run p ~core:0 ~ops:2 ~len:64)

let db_env transport =
  let stack = Sky_experiments.Stack.build ~transport () in
  let db = stack.Sky_experiments.Stack.db in
  let key = ref 0 in
  fun () ->
    incr key;
    Sky_sqldb.Db.insert db ~core:0 ~key:!key ~value:(Bytes.make 100 'v')

let ycsb_env () =
  let stack =
    Sky_experiments.Stack.build ~transport:(Sky_experiments.Stack.Ipc { st = false }) ()
  in
  let wl =
    Sky_ycsb.Workload.create stack.Sky_experiments.Stack.kernel
      stack.Sky_experiments.Stack.db ~records:200 ~value_size:100
  in
  Sky_ycsb.Workload.load wl ~core:0;
  fun () ->
    ignore (Sky_ycsb.Workload.run wl ~kind:Sky_ycsb.Workload.A ~threads:1 ~ops_per_thread:4)

let corpus_env () = fun () -> ignore (Sky_rewriter.Corpus.run ~scale:4096 ())

let table2_env () =
  let open Sky_ukernel in
  let machine = Sky_sim.Machine.create ~cores:1 ~mem_mib:32 () in
  let kernel = Kernel.create machine in
  fun () ->
    Kernel.kernel_entry kernel ~core:0;
    Kernel.kernel_exit kernel ~core:0

let table1_env () =
  let p = pipeline_env Sky_kvstore.Pipeline.Ipc_local in
  fun () -> p ()

let tests =
  [
    Test.make ~name:"table1:kv-op-ipc" (staged table1_env);
    Test.make ~name:"table2:noop-syscall" (staged table2_env);
    Test.make ~name:"fig2:kv-op-baseline"
      (staged (fun () -> pipeline_env Sky_kvstore.Pipeline.Baseline));
    Test.make ~name:"fig7:ipc-roundtrip-sel4"
      (staged (fun () -> ipc_env Sky_ukernel.Config.Sel4));
    Test.make ~name:"fig7:ipc-roundtrip-zircon"
      (staged (fun () -> ipc_env Sky_ukernel.Config.Zircon));
    Test.make ~name:"fig7+fig8:skybridge-direct-call" (staged skybridge_env);
    Test.make ~name:"table4:db-insert-mt"
      (staged (fun () -> db_env (Sky_experiments.Stack.Ipc { st = false })));
    Test.make ~name:"table4:db-insert-skybridge"
      (staged (fun () -> db_env Sky_experiments.Stack.Skybridge));
    Test.make ~name:"fig9-11:ycsb-batch" (staged ycsb_env);
    Test.make ~name:"table5:rootkernel-noop"
      (staged (fun () ->
           let open Sky_ukernel in
           let machine = Sky_sim.Machine.create ~cores:1 ~mem_mib:64 () in
           let kernel = Kernel.create machine in
           let sb = Sky_core.Subkernel.init kernel in
           let root = Sky_core.Subkernel.rootkernel sb in
           fun () -> assert (Sky_core.Rootkernel.total_vm_exits root = 0)));
    Test.make ~name:"table6:corpus-scan" (staged corpus_env);
    Test.make ~name:"ablation:vmfunc-novpid"
      (staged (fun () ->
           let open Sky_ukernel in
           let machine = Sky_sim.Machine.create ~cores:1 ~mem_mib:64 () in
           let kernel = Kernel.create machine in
           let sb = Sky_core.Subkernel.init ~vpid:false kernel in
           ignore sb;
           let vcpu = Kernel.vcpu kernel ~core:0 in
           fun () -> Sky_mmu.Vmfunc.execute vcpu ~func:0 ~index:0));
  ]

let run_bechamel () =
  print_endline "Bechamel: host-side speed of each experiment's hot path";
  print_endline "--------------------------------------------------------";
  let instances = [ Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.2) ~kde:(Some 100) () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let collected = ref [] in
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg instances test
        |> Hashtbl.to_seq_values
        |> List.of_seq
        |> List.map (Analyze.one ols Instance.monotonic_clock)
      in
      List.iter
        (fun result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
            let name = Test.Elt.name (List.hd (Test.elements test)) in
            Printf.printf "%-34s %12.0f ns/run\n%!" name est;
            collected := (name, est) :: !collected
          | _ -> ())
        results)
    tests;
  (* Archive the host-side numbers alongside the simulated-cycle BENCH
     artifacts (these are host-dependent, so no determinism gate). *)
  let open Sky_trace.Json in
  let j =
    to_string
      (Obj
         [
           ("bench", String "bechamel");
           ( "results",
             List
               (List.rev_map
                  (fun (name, est) ->
                    Obj [ ("name", String name); ("ns_per_run", Float est) ])
                  !collected) );
         ])
  in
  let path = Sky_harness.Artifact.write ~name:"bechamel" j in
  Printf.printf "wrote %s\n%!" path

let () =
  reproduce ();
  run_bechamel ()
