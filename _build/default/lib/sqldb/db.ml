(** SQLite3-like storage engine facade: a keyed table in one FS file,
    with a rollback journal file protecting every write transaction.

    This reproduces the FS traffic pattern that makes the paper's
    Table 4 shape: Insert/Update/Delete run a full journal cycle
    (journal write + table page writes, each an FS call, each FS call a
    logged multi-block disk transaction), while Query is served almost
    entirely from the pager's internal cache. *)

type t = {
  fs : Sky_xv6fs.Fs_iface.t;
  kernel : Sky_ukernel.Kernel.t;
  name : string;
  pager : Pager.t;
  tree : Btree.t;
  journal_inum : int;
  db_lock : Sky_ukernel.Lock.t;
      (** SQLite's database file lock: one writer at a time, held across
          the whole journaled transaction; readers take it briefly. This
          — together with the xv6fs big lock — is what collapses the
          YCSB curves as threads are added (Figures 9–11). *)
  mutable txs : int;
}

(* Per-operation CPU work of the SQL layer (parsing, planning, record
   packing) — calibrated so absolute throughputs land in the paper's
   range on the simulated 4 GHz clock. *)
let sql_compute_cycles = 80_000
let query_compute_cycles = 40_000

let journal_hot_magic = 0x4a524e4c (* "JRNL" *)

(* Crash recovery: a hot journal means a transaction died mid-write;
   restore the saved page image and cool the journal. *)
let recover kernel fs ~core ~inum ~journal_inum =
  ignore kernel;
  if fs.Sky_xv6fs.Fs_iface.size ~core journal_inum >= 8 then begin
    let hdr = fs.Sky_xv6fs.Fs_iface.read ~core ~inum:journal_inum ~off:0 ~len:8 in
    if Int32.to_int (Bytes.get_int32_le hdr 0) = journal_hot_magic then begin
      let page = Int32.to_int (Bytes.get_int32_le hdr 4) in
      let image =
        fs.Sky_xv6fs.Fs_iface.read ~core ~inum:journal_inum ~off:Pager.page_size
          ~len:Pager.page_size
      in
      fs.Sky_xv6fs.Fs_iface.write ~core ~inum ~off:(page * Pager.page_size) image;
      fs.Sky_xv6fs.Fs_iface.write ~core ~inum:journal_inum ~off:0
        (Bytes.make 64 '\000');
      true
    end
    else false
  end
  else false


let create kernel fs ~core ~name ~value_size =
  let inum = fs.Sky_xv6fs.Fs_iface.create ~core name in
  let journal_inum = fs.Sky_xv6fs.Fs_iface.create ~core (name ^ "-jnl") in
  let pager = Pager.create kernel fs ~core ~inum in
  let tree = Btree.create pager ~core ~value_size in
  { fs; kernel; name; pager; tree; journal_inum;
    db_lock = Sky_ukernel.Lock.create (name ^ "-dblock"); txs = 0 }

let open_ kernel fs ~core ~name =
  match fs.Sky_xv6fs.Fs_iface.lookup ~core name with
  | None -> invalid_arg (Printf.sprintf "Db.open_: no table %s" name)
  | Some inum ->
    let journal_inum =
      match fs.Sky_xv6fs.Fs_iface.lookup ~core (name ^ "-jnl") with
      | Some j -> j
      | None -> fs.Sky_xv6fs.Fs_iface.create ~core (name ^ "-jnl")
    in
    (* Roll a hot journal back before reading any page. *)
    ignore (recover kernel fs ~core ~inum ~journal_inum);
    let pager = Pager.create kernel fs ~core ~inum in
    let tree = Btree.open_ pager ~core in
    { fs; kernel; name; pager; tree; journal_inum;
      db_lock = Sky_ukernel.Lock.create (name ^ "-dblock"); txs = 0 }

let compute t ~core cycles = Sky_ukernel.Kernel.user_compute t.kernel ~core ~cycles

(* A write transaction, SQLite rollback-journal style: save the original
   image of the page about to change into the journal, write the journal
   header (the rollback commit point), run the mutation (whose page
   writes go through the FS), then reset the header — the "delete journal
   on commit" step. Every arrow here is an FS call, i.e. IPC traffic, and
   a crash between the header write and the reset is rolled back by
   {!recover} on the next open. *)

let with_tx t ~core ~page f =
  Sky_ukernel.Lock.acquire t.db_lock (Sky_ukernel.Kernel.cpu t.kernel ~core);
  Fun.protect
    ~finally:(fun () ->
      Sky_ukernel.Lock.release t.db_lock (Sky_ukernel.Kernel.cpu t.kernel ~core))
  @@ fun () ->
  t.txs <- t.txs + 1;
  (* 1. Rollback image. *)
  let original = Pager.read t.pager ~core page in
  t.fs.Sky_xv6fs.Fs_iface.write ~core ~inum:t.journal_inum ~off:Pager.page_size
    original;
  (* 2. Hot journal header naming the page. *)
  let jhdr = Bytes.make Pager.page_size '\000' in
  Bytes.set_int32_le jhdr 0 (Int32.of_int journal_hot_magic);
  Bytes.set_int32_le jhdr 4 (Int32.of_int page);
  t.fs.Sky_xv6fs.Fs_iface.write ~core ~inum:t.journal_inum ~off:0 jhdr;
  (* 3. The mutation. *)
  let r = f () in
  (* 4. Commit: cool the journal. *)
  t.fs.Sky_xv6fs.Fs_iface.write ~core ~inum:t.journal_inum ~off:0
    (Bytes.make 64 '\000');
  r

(* The page an operation will dirty first: its leaf. *)
let leaf_of t ~core ~key =
  let _, leaf_pg, _ = Btree.find_leaf t.tree ~core key in
  leaf_pg

(* The SQL-layer compute happens inside the transaction (BEGIN..COMMIT
   holds SQLite's exclusive lock around the whole statement). *)
let insert t ~core ~key ~value =
  with_tx t ~core ~page:(leaf_of t ~core ~key) (fun () ->
      compute t ~core sql_compute_cycles;
      Btree.insert t.tree ~core ~key ~value)

let update t ~core ~key ~value =
  with_tx t ~core ~page:(leaf_of t ~core ~key) (fun () ->
      compute t ~core sql_compute_cycles;
      Btree.update t.tree ~core ~key ~value)

let query t ~core ~key =
  compute t ~core query_compute_cycles;
  (* Readers take the shared file lock briefly (blocked while a writer
     holds it exclusively). *)
  Sky_ukernel.Lock.with_lock t.db_lock (Sky_ukernel.Kernel.cpu t.kernel ~core)
    (fun () -> Btree.query t.tree ~core key)

let delete t ~core ~key =
  with_tx t ~core ~page:(leaf_of t ~core ~key) (fun () ->
      compute t ~core sql_compute_cycles;
      Btree.delete t.tree ~core ~key)

let count t = Btree.count t.tree
let pager t = t.pager
let tree t = t.tree
let name t = t.name
