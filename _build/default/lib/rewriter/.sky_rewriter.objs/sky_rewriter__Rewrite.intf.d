lib/rewriter/rewrite.mli:
