lib/sim/pmu.ml: Array
