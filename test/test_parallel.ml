(* The quantum-scheduler determinism sweep.

   Property: for a random cluster configuration — shard count, workers
   per shard, quantum size, workload seed, fault-storm seed, isolation
   backend — the parallel engine (OCaml domains, barrier at quantum
   boundaries) produces a byte-identical Cluster_web digest to the
   sequential engine, and chunking itself is invisible (two different
   quanta agree once the boundary-dependent gossip log is excluded).

   The digest covers per-core cycle counters, the full PMU vector,
   cache/TLB footprints, serving counters, latency percentiles, fired
   faults and the trace-stream hash, so "byte-identical" here is the
   machine-state + PMU + trace equivalence the issue demands. *)

open Sky_net
module Fault = Sky_faults.Fault
module Backend = Sky_core.Backend

type config = {
  g_shards : int;
  g_workers : int;
  g_quantum : int;
  g_alt_quantum : int;
  g_seed : int;
  g_storm_seed : int;
  g_backend : Backend.kind;
}

let show_config g =
  Printf.sprintf "{shards=%d workers=%d quantum=%d alt=%d seed=%d storm=%d %s}"
    g.g_shards g.g_workers g.g_quantum g.g_alt_quantum g.g_seed g.g_storm_seed
    (Backend.name g.g_backend)

let config_gen =
  QCheck.Gen.(
    let* g_shards = int_range 1 3 in
    let* g_workers = int_range 1 3 in
    let* g_quantum = int_range 2_000 60_000 in
    let* g_alt_quantum = int_range 2_000 60_000 in
    let* g_seed = int_range 0 10_000 in
    let* g_storm_seed = int_range 0 10_000 in
    let+ g_backend = oneofl Backend.all in
    { g_shards; g_workers; g_quantum; g_alt_quantum; g_seed; g_storm_seed;
      g_backend })

let config_arb = QCheck.make ~print:show_config config_gen

(* A random-but-deterministic per-shard storm: the schedule is a pure
   function of (storm seed, shard), so both clusters in a comparison arm
   identically. Roughly half the shards get faults. *)
let storm ~storm_seed ~shard =
  let h = Hashtbl.hash (storm_seed, shard) in
  if h land 1 = 0 then begin
    Fault.reset ~seed:(storm_seed + shard) ();
    Fault.arm ~budget:1 ~site:"server.httpd" ~kind:Fault.Crash
      (Fault.At_hit (3 + (h mod 17)));
    if h land 2 = 0 then
      Fault.arm ~budget:1 ~site:"server.httpd" ~kind:Fault.Hang
        (Fault.At_hit (5 + (h mod 11)))
  end

let build g ~quantum =
  Cluster_web.build ~seed:g.g_seed ~quantum ~conns:6 ~requests_per_conn:2
    ~prepare:(fun ~shard -> storm ~storm_seed:g.g_storm_seed ~shard)
    ~shards:g.g_shards ~workers:g.g_workers ~transport:Web.Skybridge ()

let seq_vs_par =
  QCheck.Test.make
    ~name:
      "random cluster config: Seq and Par digests byte-identical (state, \
       PMU, trace, faults)"
    ~count:12 config_arb
    (fun g ->
      Backend.with_default g.g_backend @@ fun () ->
      let seq = build g ~quantum:g.g_quantum in
      ignore (Cluster_web.run seq Sky_sim.Quantum.Seq);
      let par = build g ~quantum:g.g_quantum in
      ignore
        (Cluster_web.run par
           (Sky_sim.Quantum.Par { jobs = 1 + (g.g_seed mod 3) }));
      Cluster_web.digest seq = Cluster_web.digest par)

let quantum_invariance =
  QCheck.Test.make
    ~name:
      "random cluster config: two quantum sizes agree up to the gossip log"
    ~count:8 config_arb
    (fun g ->
      Backend.with_default g.g_backend @@ fun () ->
      let a = build g ~quantum:g.g_quantum in
      ignore (Cluster_web.run a Sky_sim.Quantum.Seq);
      let b = build g ~quantum:g.g_alt_quantum in
      ignore (Cluster_web.run b (Sky_sim.Quantum.Par { jobs = 2 }));
      Cluster_web.digest ~gossip:false a = Cluster_web.digest ~gossip:false b)

(* Deterministic (non-random) anchor: the scale configuration used by
   `skybench parallel`'s speedup phase must digest-match engines too —
   16 simulated cores across 4 shards. *)
let scale_anchor () =
  let mk () =
    Cluster_web.build ~seed:7 ~quantum:50_000 ~conns:8 ~requests_per_conn:2
      ~shards:4 ~workers:4 ~transport:Web.Skybridge ()
  in
  let seq = mk () in
  ignore (Cluster_web.run seq Sky_sim.Quantum.Seq);
  let par = mk () in
  ignore (Cluster_web.run par (Sky_sim.Quantum.Par { jobs = 4 }));
  Alcotest.(check bool)
    "4x4 scale cluster: Seq = Par4 digest" true
    (Cluster_web.digest seq = Cluster_web.digest par)

(* The --jobs replica harness must both pass on identical replicas and
   actually detect divergence. *)
let replica_harness () =
  let v =
    Sky_experiments.Par_harness.replicate ~jobs:3 ~render:string_of_int
      (fun () -> 41 + 1)
  in
  Alcotest.(check int) "identical replicas pass" 42 v;
  let diverged =
    let n = Atomic.make 0 in
    match
      Sky_experiments.Par_harness.replicate ~jobs:2 ~render:string_of_int
        (fun () -> Atomic.fetch_and_add n 1)
    with
    | _ -> false
    | exception Failure _ -> true
  in
  Alcotest.(check bool) "divergent replicas detected" true diverged

let () =
  let t name f = Alcotest.test_case name `Quick f in
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "parallel"
    [
      ("equivalence", qc [ seq_vs_par; quantum_invariance ]);
      ( "anchors",
        [
          t "scale cluster digest" scale_anchor;
          t "replica harness" replica_harness;
        ] );
    ]
