open Sky_mem
open Sky_sim
open Sky_mmu

type t = {
  machine : Machine.t;
  config : Config.t;
  vcpus : Vcpu.t array;
  mutable procs : Proc.t list;
  mutable next_pid : int;
  kernel_text_pa : int;
  kernel_data_pa : int;
  mutable running : Proc.t option array;
  mutable on_context_switch : (t -> core:int -> Proc.t -> unit) list;
  mutable on_spawn : (t -> Proc.t -> unit) list;
}

let kernel_text_size = 512 * 1024
let kernel_data_size = 256 * 1024

let create ?config machine =
  let config =
    match config with Some c -> c | None -> Config.default Config.Sel4
  in
  let alloc = machine.Machine.alloc in
  let text = Frame_alloc.alloc_frames alloc ~count:(kernel_text_size / 4096) in
  let data = Frame_alloc.alloc_frames alloc ~count:(kernel_data_size / 4096) in
  let n = Machine.n_cores machine in
  {
    machine;
    config;
    vcpus =
      Array.init n (fun i ->
          Vcpu.create ~pcid_enabled:config.Config.pcid (Machine.core machine i));
    procs = [];
    next_pid = 1;
    kernel_text_pa = text;
    kernel_data_pa = data;
    running = Array.make n None;
    on_context_switch = [];
    on_spawn = [];
  }

let mem t = t.machine.Machine.mem
let alloc t = t.machine.Machine.alloc
let vcpu t ~core = t.vcpus.(core)
let cpu t ~core = Vcpu.cpu t.vcpus.(core)

let spawn t ~name =
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  let page_table = Page_table.create (alloc t) in
  let p = Proc.create ~pid ~name ~page_table in
  (* Identity page (§4.2): records which process this address space
     belongs to; SkyBridge maps it at the same GPA in every EPT. *)
  let frame = Frame_alloc.alloc_frame (alloc t) in
  Phys_mem.write_u64 (mem t) frame (Int64.of_int pid);
  p.Proc.identity_frame <- frame;
  t.procs <- p :: t.procs;
  List.iter (fun f -> f t p) t.on_spawn;
  p

let find_proc t ~pid =
  match List.find_opt (fun p -> p.Proc.pid = pid) t.procs with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Kernel.find_proc: no pid %d" pid)

let map_frames t p ~va ~pa ~len ~flags =
  Page_table.map_range p.Proc.page_table ~mem:(mem t) ~alloc:(alloc t) ~va ~pa
    ~len ~flags

(* Anonymous memory (stacks, heaps, buffers) is never executed: the NX
   default keeps every writable mapping non-executable, which the W^X
   auditor (lib/analysis) asserts over whole address spaces. Callers that
   really need W+X must say so explicitly. *)
let map_anon t p ?va ?(flags = { Pte.urw with Pte.nx = true }) len =
  let len = max len 1 in
  let pages = (len + 4095) / 4096 in
  let va = match va with Some v -> v | None -> Proc.bump_heap p len in
  let pa = Frame_alloc.alloc_frames (alloc t) ~count:pages in
  map_frames t p ~va ~pa ~len ~flags;
  va

let map_code t p code =
  let va = Layout.code_va in
  let pages = (Bytes.length code + 4095) / 4096 in
  let pa = Frame_alloc.alloc_frames (alloc t) ~count:pages in
  Phys_mem.write_bytes (mem t) pa code;
  map_frames t p ~va ~pa ~len:(Bytes.length code) ~flags:Pte.urx;
  p.Proc.code <- (va, Bytes.copy code) :: p.Proc.code;
  va

let load_image t p (img : Sky_isa.Binfmt.image) =
  Sky_isa.Binfmt.validate img;
  List.iter
    (fun s ->
      let len = Bytes.length s.Sky_isa.Binfmt.body in
      if len > 0 then begin
        let pages = (len + 4095) / 4096 in
        let pa = Frame_alloc.alloc_frames (alloc t) ~count:pages in
        Phys_mem.write_bytes (mem t) pa s.Sky_isa.Binfmt.body;
        let flags =
          match s.Sky_isa.Binfmt.kind with
          | Sky_isa.Binfmt.Text -> Pte.urx
          | Sky_isa.Binfmt.Rodata -> Pte.ur
          | Sky_isa.Binfmt.Data -> { Pte.urw with Pte.nx = true }
        in
        map_frames t p ~va:s.Sky_isa.Binfmt.vaddr ~pa ~len ~flags;
        if s.Sky_isa.Binfmt.kind = Sky_isa.Binfmt.Text then
          p.Proc.code <-
            (s.Sky_isa.Binfmt.vaddr, Bytes.copy s.Sky_isa.Binfmt.body) :: p.Proc.code
      end)
    img.Sky_isa.Binfmt.sections

(* Locate the frame backing [va] in the process's page table, bypassing
   the vCPU (kernel-mode software walk). *)
let resolve t p va =
  match Page_table.walk ~mem:(mem t) ~root_pa:(Proc.cr3 p) ~va with
  | Ok r -> r.Page_table.pa
  | Error _ -> invalid_arg (Printf.sprintf "Kernel.resolve: %s va %#x unmapped" p.Proc.name va)

let proc_code_bytes t p =
  List.map
    (fun (va, original) ->
      let len = Bytes.length original in
      let buf = Bytes.create len in
      let rec go off =
        if off < len then begin
          let chunk = min (4096 - ((va + off) land 0xfff)) (len - off) in
          let pa = resolve t p (va + off) in
          Phys_mem.blit_to (mem t) ~src_pa:pa ~dst:buf ~dst_off:off ~len:chunk;
          go (off + chunk)
        end
      in
      go 0;
      (va, buf))
    p.Proc.code

let write_code t p ~va code =
  let len = Bytes.length code in
  let rec go off =
    if off < len then begin
      let chunk = min (4096 - ((va + off) land 0xfff)) (len - off) in
      let pa = resolve t p (va + off) in
      Phys_mem.blit_from (mem t) ~src:code ~src_off:off ~dst_pa:pa ~len:chunk;
      go (off + chunk)
    end
  in
  go 0

let context_switch t ~core to_proc =
  let same =
    match t.running.(core) with
    | Some p -> p.Proc.pid = to_proc.Proc.pid
    | None -> false
  in
  if not same then
    Sky_trace.Trace.span ~core ~cat:"ctx" "context_switch" @@ fun () ->
    let v = t.vcpus.(core) in
    Vcpu.write_cr3 v ~cr3:(Proc.cr3 to_proc) ~pcid:to_proc.Proc.pid;
    t.running.(core) <- Some to_proc;
    List.iter (fun f -> f t ~core to_proc) t.on_context_switch

let touch_kernel_text t ~core ~bytes ~off =
  Memsys.touch_range_state_only (cpu t ~core) Memsys.Insn
    ~pa:(t.kernel_text_pa + (off mod kernel_text_size)) ~len:bytes

let touch_kernel_data t ~core ~bytes ~off =
  Memsys.touch_range_state_only (cpu t ~core) Memsys.Data
    ~pa:(t.kernel_data_pa + (off mod kernel_data_size)) ~len:bytes

(* KPTI: the kernel runs on its own page table, so entry and exit each
   write CR3 (§2.1.1: "an IPC usually involves two address space
   switches"). We model the kernel's page table as the process table —
   only the cost and TLB behaviour matter. *)
let kpti_switch t ~core =
  let v = t.vcpus.(core) in
  Vcpu.write_cr3 v ~cr3:v.Vcpu.cr3 ~pcid:v.Vcpu.pcid

let kernel_entry t ~core =
  Sky_trace.Trace.span ~core ~cat:"syscall" "kernel_entry" @@ fun () ->
  let c = cpu t ~core in
  Cpu.charge c (Costs.syscall + Costs.swapgs);
  Pmu.count (Cpu.pmu c) Pmu.Syscall_exec;
  Vcpu.set_mode t.vcpus.(core) Vcpu.Kernel;
  if t.config.Config.kpti then kpti_switch t ~core;
  touch_kernel_text t ~core ~bytes:512 ~off:0;
  touch_kernel_data t ~core ~bytes:256 ~off:0

let kernel_exit t ~core =
  Sky_trace.Trace.span ~core ~cat:"syscall" "kernel_exit" @@ fun () ->
  let c = cpu t ~core in
  Cpu.charge c (Costs.swapgs + Costs.sysret);
  if t.config.Config.kpti then kpti_switch t ~core;
  Vcpu.set_mode t.vcpus.(core) Vcpu.User

let send_ipi t ~from_core ~to_core =
  Sky_trace.Trace.span ~core:from_core ~cat:"ipi" "ipi" @@ fun () ->
  let src = cpu t ~core:from_core in
  Cpu.charge src Costs.ipi;
  Pmu.count (Cpu.pmu src) Pmu.Ipi_sent;
  Sky_trace.Trace.instant ~core:to_core ~cat:"ipi" "ipi.delivered";
  (* Delivery: the target observes the interrupt no earlier than the
     sender's send time. *)
  Cpu.advance_to (cpu t ~core:to_core) (Cpu.cycles src)

let user_compute t ~core ~cycles = Cpu.charge (cpu t ~core) cycles
