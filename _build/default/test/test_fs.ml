(* Tests for the block device, the xv6fs log file system (including
   crash-recovery property tests), and the FS wire protocol. *)

open Sky_ukernel
open Sky_blockdev
open Sky_xv6fs

let setup ?(nblocks = 4096) () =
  let machine = Sky_sim.Machine.create ~cores:4 ~mem_mib:64 () in
  let k = Kernel.create machine in
  let rd = Ramdisk.create machine ~nblocks in
  (machine, k, rd)

let mkmount ?nblocks () =
  let _, k, rd = setup ?nblocks () in
  let disk = Disk.direct k rd in
  Fs.mkfs k disk ~core:0 ~size:(Ramdisk.nblocks rd) ();
  (k, rd, disk, Fs.mount k disk ~core:0)

(* ------------------------------------------------------------------ *)
(* Ramdisk                                                             *)
(* ------------------------------------------------------------------ *)

let test_ramdisk_rw () =
  let machine, _, rd = setup () in
  let cpu = Sky_sim.Machine.core machine 0 in
  let block = Bytes.init Ramdisk.block_size (fun i -> Char.chr (i land 0xff)) in
  Ramdisk.write rd cpu 5 block;
  Alcotest.(check bool) "roundtrip" true (Bytes.equal block (Ramdisk.read rd cpu 5));
  Alcotest.(check bool) "other block zero" true
    (Bytes.for_all (( = ) '\000') (Ramdisk.read rd cpu 6));
  Alcotest.(check int) "stats" 2 (Ramdisk.reads rd)

let test_ramdisk_bounds () =
  let machine, _, rd = setup () in
  let cpu = Sky_sim.Machine.core machine 0 in
  (try
     ignore (Ramdisk.read rd cpu (Ramdisk.nblocks rd));
     Alcotest.fail "expected out of range"
   with Invalid_argument _ -> ());
  try
    Ramdisk.write rd cpu 0 (Bytes.create 7);
    Alcotest.fail "expected bad length"
  with Invalid_argument _ -> ()

let test_blockdev_proto_roundtrip () =
  let block = Bytes.init Ramdisk.block_size (fun i -> Char.chr (i * 7 land 0xff)) in
  (match Proto.decode_request (Proto.encode_request (Proto.Read 42)) with
  | Proto.Read 42 -> ()
  | _ -> Alcotest.fail "read roundtrip");
  match Proto.decode_request (Proto.encode_request (Proto.Write (9, block))) with
  | Proto.Write (9, b) -> Alcotest.(check bool) "payload" true (Bytes.equal b block)
  | _ -> Alcotest.fail "write roundtrip"

let test_blockdev_over_ipc () =
  let machine, k, rd = setup () in
  ignore machine;
  let ipc = Sky_kernels.Ipc.create k in
  let server = Kernel.spawn k ~name:"blockdev" in
  let client = Kernel.spawn k ~name:"fs" in
  let ep = Sky_kernels.Ipc.register ipc server (Disk.handler k rd) in
  let disk = Disk.over_ipc ipc ~client ep in
  let block = Bytes.make Ramdisk.block_size 'x' in
  disk.Disk.write ~core:0 3 block;
  Alcotest.(check bool) "read back over IPC" true
    (Bytes.equal block (disk.Disk.read ~core:0 3))

(* ------------------------------------------------------------------ *)
(* Log                                                                 *)
(* ------------------------------------------------------------------ *)

let test_log_commit_visible () =
  let k, rd, disk, fs = mkmount () in
  ignore (k, rd, disk);
  let inum = Fs.create fs ~core:0 "a" in
  Fs.write fs ~core:0 ~inum ~off:0 (Bytes.of_string "hello log");
  Alcotest.(check string) "read back" "hello log"
    (Bytes.to_string (Fs.read fs ~core:0 ~inum ~off:0 ~len:9));
  Alcotest.(check bool) "commits counted" true (Fs.log_commits fs > 0)

let test_log_absorption () =
  (* Writing the same block twice in one transaction logs it once. *)
  let k, rd, disk, fs = mkmount () in
  ignore (k, disk);
  let inum = Fs.create fs ~core:0 "a" in
  let w0 = Ramdisk.writes rd in
  Fs.write fs ~core:0 ~inum ~off:0 (Bytes.make 100 'x');
  let single = Ramdisk.writes rd - w0 in
  let w1 = Ramdisk.writes rd in
  (* Two 100-byte writes into the same block, one transaction each: the
     second transaction rewrites the same data block. *)
  Fs.write fs ~core:0 ~inum ~off:0 (Bytes.make 200 'y');
  let second = Ramdisk.writes rd - w1 in
  Alcotest.(check bool)
    (Printf.sprintf "second (%d) <= first (%d): no fresh allocations" second single)
    true (second <= single)

(* Crash injection: run a workload, crash after [n] disk writes, remount,
   and check the invariant: every file readable, every *committed* write
   present in full (no torn transactions). *)
let crash_after n =
  let _, k, rd = setup () in
  let raw = Disk.direct k rd in
  Fs.mkfs k raw ~core:0 ~size:(Ramdisk.nblocks rd) ();
  let budget = ref max_int in
  let disk = Disk.faulty raw ~fail_after:budget in
  let fs = Fs.mount k disk ~core:0 in
  let inum = Fs.create fs ~core:0 "f" in
  budget := n;
  let committed = ref 0 in
  (try
     (* Each write stores a full block of its own sequence number. *)
     for i = 1 to 50 do
       Fs.write fs ~core:0 ~inum
         ~off:((i - 1) * Fs.bsize)
         (Bytes.make Fs.bsize (Char.chr (i land 0xff)));
       committed := i
     done
   with Disk.Crash _ -> ());
  (* Power back on: remount on the pristine device and check. *)
  let fs' = Fs.mount k raw ~core:0 in
  let inum' =
    match Fs.lookup fs' ~core:0 "f" with Some i -> i | None -> Alcotest.fail "file lost"
  in
  ignore inum;
  let size = Fs.file_size fs' ~core:0 ~inum:inum' in
  let blocks = size / Fs.bsize in
  (* All-or-nothing: every block up to the recovered size is fully
     written with its own byte. *)
  for i = 1 to blocks do
    let b = Fs.read fs' ~core:0 ~inum:inum' ~off:((i - 1) * Fs.bsize) ~len:Fs.bsize in
    if not (Bytes.for_all (( = ) (Char.chr (i land 0xff))) b) then
      Alcotest.failf "torn write in block %d after crash at %d" i n
  done;
  (* Recovery never invents more data than was committed. *)
  Alcotest.(check bool)
    (Printf.sprintf "recovered %d blocks <= %d attempted" blocks (!committed + 1))
    true
    (blocks <= !committed + 1)

let test_crash_recovery_sweep () =
  (* Crash at many different points, including mid-commit. *)
  List.iter crash_after [ 0; 1; 2; 3; 5; 8; 13; 21; 34; 55; 89; 144 ]

let prop_crash_recovery =
  QCheck.Test.make ~name:"log recovery: committed data survives any crash point"
    ~count:25
    QCheck.(int_bound 200)
    (fun n ->
      crash_after n;
      true)

(* ------------------------------------------------------------------ *)
(* Fs                                                                  *)
(* ------------------------------------------------------------------ *)

let test_create_lookup_unlink () =
  let _, _, _, fs = mkmount () in
  let a = Fs.create fs ~core:0 "alpha" in
  let b = Fs.create fs ~core:0 "beta" in
  Alcotest.(check bool) "distinct inodes" true (a <> b);
  Alcotest.(check (option int)) "lookup" (Some a) (Fs.lookup fs ~core:0 "alpha");
  Alcotest.(check (option int)) "missing" None (Fs.lookup fs ~core:0 "gamma");
  Alcotest.(check (list string)) "dir list" [ "alpha"; "beta" ] (Fs.list_dir fs ~core:0);
  Alcotest.(check bool) "unlink" true (Fs.unlink fs ~core:0 "alpha");
  Alcotest.(check (option int)) "gone" None (Fs.lookup fs ~core:0 "alpha");
  Alcotest.(check bool) "unlink missing" false (Fs.unlink fs ~core:0 "alpha")

let test_create_idempotent () =
  let _, _, _, fs = mkmount () in
  let a = Fs.create fs ~core:0 "f" in
  Alcotest.(check int) "create twice = same inode" a (Fs.create fs ~core:0 "f")

let test_rw_offsets () =
  let _, _, _, fs = mkmount () in
  let inum = Fs.create fs ~core:0 "f" in
  Fs.write fs ~core:0 ~inum ~off:100 (Bytes.of_string "abc");
  Fs.write fs ~core:0 ~inum ~off:2000 (Bytes.of_string "xyz");
  Alcotest.(check int) "size" 2003 (Fs.file_size fs ~core:0 ~inum);
  Alcotest.(check string) "at 100" "abc"
    (Bytes.to_string (Fs.read fs ~core:0 ~inum ~off:100 ~len:3));
  Alcotest.(check string) "hole reads zero" "\000\000\000"
    (Bytes.to_string (Fs.read fs ~core:0 ~inum ~off:500 ~len:3));
  Alcotest.(check string) "spans blocks" "xyz"
    (Bytes.to_string (Fs.read fs ~core:0 ~inum ~off:2000 ~len:3))

let test_large_file_double_indirect () =
  let _, _, _, fs = mkmount ~nblocks:8192 () in
  let inum = Fs.create fs ~core:0 "big" in
  (* Write a block beyond the single-indirect range. *)
  let far = (Fs.ndirect + Fs.nindirect + 10) * Fs.bsize in
  Fs.write fs ~core:0 ~inum ~off:far (Bytes.of_string "deep");
  Alcotest.(check string) "double indirect" "deep"
    (Bytes.to_string (Fs.read fs ~core:0 ~inum ~off:far ~len:4));
  (* And unlink frees it without error. *)
  Alcotest.(check bool) "unlink big" true (Fs.unlink fs ~core:0 "big")

let test_reuse_after_unlink () =
  let _, _, _, fs = mkmount () in
  for round = 1 to 5 do
    let inum = Fs.create fs ~core:0 "tmp" in
    Fs.write fs ~core:0 ~inum ~off:0 (Bytes.make 5000 (Char.chr (round + 64)));
    Alcotest.(check bool) "unlink" true (Fs.unlink fs ~core:0 "tmp")
  done;
  (* Blocks were freed and reused: the disk did not run out. *)
  ()

let test_bad_names_rejected () =
  let _, _, _, fs = mkmount () in
  (try
     ignore (Fs.create fs ~core:0 "");
     Alcotest.fail "empty name"
   with Fs.Fs_error _ -> ());
  try
    ignore (Fs.create fs ~core:0 "this-name-is-way-too-long");
    Alcotest.fail "long name"
  with Fs.Fs_error _ -> ()

let prop_fs_random_files =
  QCheck.Test.make ~name:"random write/read patterns agree with a model" ~count:20
    QCheck.(
      list_of_size (Gen.int_range 1 25)
        (pair (int_bound 20000) (string_of_size (Gen.int_range 1 300))))
    (fun writes ->
      let _, _, _, fs = mkmount ~nblocks:8192 () in
      let inum = Fs.create fs ~core:0 "m" in
      let model = Bytes.make 32768 '\000' in
      let model_size = ref 0 in
      List.iter
        (fun (off, s) ->
          Fs.write fs ~core:0 ~inum ~off (Bytes.of_string s);
          Bytes.blit_string s 0 model off (String.length s);
          model_size := max !model_size (off + String.length s))
        writes;
      Fs.file_size fs ~core:0 ~inum = !model_size
      && Bytes.equal
           (Fs.read fs ~core:0 ~inum ~off:0 ~len:!model_size)
           (Bytes.sub model 0 !model_size))

(* ------------------------------------------------------------------ *)
(* Fsck                                                                *)
(* ------------------------------------------------------------------ *)

let assert_consistent fs =
  match Fsck.check fs ~core:0 with
  | [] -> ()
  | ps ->
    Alcotest.failf "fsck found: %s"
      (String.concat "; " (List.map Fsck.problem_to_string ps))

let test_fsck_fresh () =
  let _, _, _, fs = mkmount () in
  assert_consistent fs

let test_fsck_after_workload () =
  let _, _, _, fs = mkmount ~nblocks:8192 () in
  for i = 0 to 9 do
    let inum = Fs.create fs ~core:0 (Printf.sprintf "f%d" i) in
    Fs.write fs ~core:0 ~inum ~off:(i * 1000) (Bytes.make 3000 (Char.chr (65 + i)))
  done;
  ignore (Fs.unlink fs ~core:0 "f3");
  ignore (Fs.unlink fs ~core:0 "f7");
  let inum = Fs.create fs ~core:0 "big" in
  Fs.write fs ~core:0 ~inum ~off:((Fs.ndirect + 5) * Fs.bsize) (Bytes.make 100 'x');
  assert_consistent fs

let test_fsck_detects_bitmap_leak () =
  let _, rd, _, fs = mkmount () in
  let machine_cpu = Sky_sim.Machine.create ~cores:1 ~mem_mib:1 () in
  ignore machine_cpu;
  (* Corrupt the image behind the FS's back: set a random data-area bit. *)
  let sb = Fs.superblock fs in
  let data_start = Sky_xv6fs.Superblock.data_start sb in
  let cpu = Sky_sim.Machine.core (Sky_sim.Machine.create ~cores:1 ~mem_mib:1 ()) 0 in
  let bm = Ramdisk.read rd cpu sb.Sky_xv6fs.Superblock.bmapstart in
  let target = data_start + 17 in
  Bytes.set bm (target / 8)
    (Char.chr (Char.code (Bytes.get bm (target / 8)) lor (1 lsl (target mod 8))));
  Ramdisk.write rd cpu sb.Sky_xv6fs.Superblock.bmapstart bm;
  match Fsck.check fs ~core:0 with
  | [ Fsck.Leaked_block b ] -> Alcotest.(check int) "the flipped block" target b
  | ps ->
    Alcotest.failf "expected one leak, got [%s]"
      (String.concat "; " (List.map Fsck.problem_to_string ps))

let test_fsck_after_crash_recovery () =
  (* Crash mid-commit, remount (replaying the log), fsck must be clean. *)
  let _, k, rd = setup () in
  let raw = Disk.direct k rd in
  Fs.mkfs k raw ~core:0 ~size:(Ramdisk.nblocks rd) ();
  let budget = ref max_int in
  let disk = Disk.faulty raw ~fail_after:budget in
  let fs = Fs.mount k disk ~core:0 in
  let inum = Fs.create fs ~core:0 "f" in
  budget := 37;
  (try
     for i = 1 to 50 do
       Fs.write fs ~core:0 ~inum ~off:(i * 500) (Bytes.make 700 'z')
     done
   with Disk.Crash _ -> ());
  let fs' = Fs.mount k raw ~core:0 in
  assert_consistent fs'

(* ------------------------------------------------------------------ *)
(* FS wire protocol                                                    *)
(* ------------------------------------------------------------------ *)

let test_fs_over_ipc () =
  let _, k, rd = setup () in
  let raw = Disk.direct k rd in
  Fs.mkfs k raw ~core:0 ~size:(Ramdisk.nblocks rd) ();
  let fs = Fs.mount k raw ~core:0 in
  let ipc = Sky_kernels.Ipc.create k in
  let server = Kernel.spawn k ~name:"fs" in
  let client = Kernel.spawn k ~name:"app" in
  let ep = Sky_kernels.Ipc.register ipc server (Fs_iface.server_handler fs) in
  let iface =
    Fs_iface.over_call (fun ~core msg -> Sky_kernels.Ipc.call ipc ~core ~client ep msg)
  in
  let inum = iface.Fs_iface.create ~core:0 "remote" in
  iface.Fs_iface.write ~core:0 ~inum ~off:0 (Bytes.of_string "over ipc");
  Alcotest.(check string) "remote rw" "over ipc"
    (Bytes.to_string (iface.Fs_iface.read ~core:0 ~inum ~off:0 ~len:8));
  Alcotest.(check int) "size" 8 (iface.Fs_iface.size ~core:0 inum);
  Alcotest.(check (option int)) "lookup" (Some inum)
    (iface.Fs_iface.lookup ~core:0 "remote");
  Alcotest.(check bool) "unlink" true (iface.Fs_iface.unlink ~core:0 "remote")

let test_fs_iface_error_propagates () =
  let _, _, _, fs = mkmount () in
  let iface = Fs_iface.of_fs fs in
  try
    ignore (iface.Fs_iface.size ~core:0 9999);
    Alcotest.fail "expected Fs_error"
  with Fs.Fs_error _ -> ()

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "fs"
    [
      ( "blockdev",
        [
          Alcotest.test_case "ramdisk rw" `Quick test_ramdisk_rw;
          Alcotest.test_case "bounds" `Quick test_ramdisk_bounds;
          Alcotest.test_case "proto roundtrip" `Quick test_blockdev_proto_roundtrip;
          Alcotest.test_case "over IPC" `Quick test_blockdev_over_ipc;
        ] );
      ( "log",
        [
          Alcotest.test_case "commit visible" `Quick test_log_commit_visible;
          Alcotest.test_case "absorption" `Quick test_log_absorption;
          Alcotest.test_case "crash sweep" `Slow test_crash_recovery_sweep;
        ]
        @ qc [ prop_crash_recovery ] );
      ( "fs",
        [
          Alcotest.test_case "create/lookup/unlink" `Quick test_create_lookup_unlink;
          Alcotest.test_case "create idempotent" `Quick test_create_idempotent;
          Alcotest.test_case "offsets and holes" `Quick test_rw_offsets;
          Alcotest.test_case "double indirect" `Quick test_large_file_double_indirect;
          Alcotest.test_case "block reuse" `Quick test_reuse_after_unlink;
          Alcotest.test_case "bad names" `Quick test_bad_names_rejected;
        ]
        @ qc [ prop_fs_random_files ] );
      ( "fsck",
        [
          Alcotest.test_case "fresh image consistent" `Quick test_fsck_fresh;
          Alcotest.test_case "consistent after workload" `Quick
            test_fsck_after_workload;
          Alcotest.test_case "detects bitmap leak" `Quick
            test_fsck_detects_bitmap_leak;
          Alcotest.test_case "consistent after crash recovery" `Quick
            test_fsck_after_crash_recovery;
        ] );
      ( "fs_iface",
        [
          Alcotest.test_case "over IPC" `Quick test_fs_over_ipc;
          Alcotest.test_case "errors propagate" `Quick test_fs_iface_error_propagates;
        ] );
    ]
