(** Transport-independent file-system interface + wire protocol.

    The SQLite-like database talks to this record; it is backed either by
    an in-process {!Fs.t} (Baseline), or by a remote FS server reached
    over baseline IPC or SkyBridge — the three configurations of
    Table 4 / Figures 9–11. *)

type t = {
  create : core:int -> string -> int;
  lookup : core:int -> string -> int option;
  size : core:int -> int -> int;
  read : core:int -> inum:int -> off:int -> len:int -> bytes;
  write : core:int -> inum:int -> off:int -> bytes -> unit;
  unlink : core:int -> string -> bool;
}

let of_fs fs =
  {
    create = (fun ~core name -> Fs.create fs ~core name);
    lookup = (fun ~core name -> Fs.lookup fs ~core name);
    size = (fun ~core inum -> Fs.file_size fs ~core ~inum);
    read = (fun ~core ~inum ~off ~len -> Fs.read fs ~core ~inum ~off ~len);
    write = (fun ~core ~inum ~off data -> Fs.write fs ~core ~inum ~off data);
    unlink = (fun ~core name -> Fs.unlink fs ~core name);
  }

(* ---- wire protocol ---- *)

exception Bad_message of string
exception Remote_error of string

let op_create = '\001'
let op_lookup = '\002'
let op_size = '\003'
let op_read = '\004'
let op_write = '\005'
let op_unlink = '\006'

let enc_name op name =
  let b = Bytes.create (1 + String.length name) in
  Bytes.set b 0 op;
  Bytes.blit_string name 0 b 1 (String.length name);
  b

let enc_iol op ~inum ~off ~len =
  let b = Bytes.create 13 in
  Bytes.set b 0 op;
  Bytes.set_int32_le b 1 (Int32.of_int inum);
  Bytes.set_int32_le b 5 (Int32.of_int off);
  Bytes.set_int32_le b 9 (Int32.of_int len);
  b

let ok_payload payload =
  let b = Bytes.create (1 + Bytes.length payload) in
  Bytes.set b 0 '\000';
  Bytes.blit payload 0 b 1 (Bytes.length payload);
  b

let err msg =
  let b = Bytes.create (1 + String.length msg) in
  Bytes.set b 0 '\001';
  Bytes.blit_string msg 0 b 1 (String.length msg);
  b

let unwrap reply =
  if Bytes.length reply = 0 then raise (Bad_message "empty reply");
  match Bytes.get reply 0 with
  | '\000' -> Bytes.sub reply 1 (Bytes.length reply - 1)
  | _ -> raise (Remote_error (Bytes.sub_string reply 1 (Bytes.length reply - 1)))

let int_reply b =
  let p = unwrap b in
  Int32.to_int (Bytes.get_int32_le p 0)

let enc_int v =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int v);
  b

(* Server side: decode a request and run it against the local FS. *)
let server_handler fs : Sky_kernels.Ipc.handler =
 fun ~core msg ->
  try
    if Bytes.length msg = 0 then raise (Bad_message "empty request");
    let name () = Bytes.sub_string msg 1 (Bytes.length msg - 1) in
    match Bytes.get msg 0 with
    | c when c = op_create -> ok_payload (enc_int (Fs.create fs ~core (name ())))
    | c when c = op_lookup ->
      ok_payload
        (enc_int (match Fs.lookup fs ~core (name ()) with Some i -> i | None -> -1))
    | c when c = op_size ->
      let inum = Int32.to_int (Bytes.get_int32_le msg 1) in
      ok_payload (enc_int (Fs.file_size fs ~core ~inum))
    | c when c = op_read ->
      let inum = Int32.to_int (Bytes.get_int32_le msg 1) in
      let off = Int32.to_int (Bytes.get_int32_le msg 5) in
      let len = Int32.to_int (Bytes.get_int32_le msg 9) in
      ok_payload (Fs.read fs ~core ~inum ~off ~len)
    | c when c = op_write ->
      let inum = Int32.to_int (Bytes.get_int32_le msg 1) in
      let off = Int32.to_int (Bytes.get_int32_le msg 5) in
      Fs.write fs ~core ~inum ~off (Bytes.sub msg 9 (Bytes.length msg - 9));
      ok_payload (enc_int 0)
    | c when c = op_unlink ->
      ok_payload (enc_int (if Fs.unlink fs ~core (name ()) then 1 else 0))
    | c -> raise (Bad_message (Printf.sprintf "opcode %d" (Char.code c)))
  with
  | Fs.Fs_error m -> err m
  | Bad_message m -> err ("bad message: " ^ m)

(* Client side over any request/reply transport. *)
let over_call call =
  {
    create = (fun ~core name -> int_reply (call ~core (enc_name op_create name)));
    lookup =
      (fun ~core name ->
        match int_reply (call ~core (enc_name op_lookup name)) with
        | -1 -> None
        | i -> Some i);
    size = (fun ~core inum -> int_reply (call ~core (enc_iol op_size ~inum ~off:0 ~len:0)));
    read =
      (fun ~core ~inum ~off ~len ->
        unwrap (call ~core (enc_iol op_read ~inum ~off ~len)));
    write =
      (fun ~core ~inum ~off data ->
        let hdr = enc_iol op_write ~inum ~off ~len:(Bytes.length data) in
        let b = Bytes.create (9 + Bytes.length data) in
        Bytes.blit hdr 0 b 0 9;
        Bytes.blit data 0 b 9 (Bytes.length data);
        ignore (int_reply (call ~core b)));
    unlink = (fun ~core name -> int_reply (call ~core (enc_name op_unlink name)) = 1);
  }
