(** Physical frame allocator.

    A simple bitmap allocator over the frames of a {!Phys_mem.t}. The
    Rootkernel reserves a region for itself at boot; the Subkernel allocates
    page-table pages, EPT pages, code pages, stacks and buffers from the
    rest. Supports contiguous multi-frame allocation (needed for 1 GiB-
    aligned regions and multi-page stacks). *)

type t

exception Out_of_memory

val create : Phys_mem.t -> t

val reserve : t -> first_frame:int -> count:int -> unit
(** Mark a frame range as permanently unavailable (e.g. Rootkernel
    memory). Raises [Invalid_argument] if any frame is already in use. *)

val alloc_frame : t -> int
(** Allocate one frame; returns its base physical address, zeroed.
    @raise Out_of_memory when exhausted. *)

val alloc_frames : t -> count:int -> int
(** Allocate [count] physically contiguous frames; returns the base
    physical address of the first, all zeroed. *)

val free_frame : t -> int -> unit
(** [free_frame t pa] frees the frame containing [pa]. Double frees raise
    [Invalid_argument]. *)

val free_frames : t -> pa:int -> count:int -> unit

val in_use : t -> int
(** Number of frames currently allocated or reserved. *)

val available : t -> int
