(** The three-process KV pipeline of Figure 1 (client → encryption
    server → KV store), wired over every interconnect the paper
    measures:

    - [Baseline]: all three components in one address space, function
      calls (Figure 2's lower bound);
    - [Delay]: function calls plus a busy-wait equal to the direct cost
      of an IPC roundtrip (986 cycles per server call) — isolates the
      *indirect* cost of IPC, which is the gap left between [Delay] and
      [Ipc];
    - [Ipc_local] / [Ipc_cross]: separate processes over the kernel's
      synchronous IPC, servers co-located or pinned to other cores;
    - [Skybridge]: separate processes over [direct_server_call]. *)

open Sky_sim
open Sky_ukernel

type config = Baseline | Delay | Ipc_local | Ipc_cross | Skybridge

let config_name = function
  | Baseline -> "Baseline"
  | Delay -> "Delay"
  | Ipc_local -> "IPC"
  | Ipc_cross -> "IPC-CrossCore"
  | Skybridge -> "SkyBridge"

(* Client-side work per operation: request marshalling, bookkeeping. *)
let client_compute = 1200
let direct_ipc_roundtrip = 986 (* the Delay loop, §2.1.2 *)

(* Instruction working sets (bytes of text exercised per call) — these
   drive the i-cache pollution of Table 1: client + servers + kernel text
   together overflow the 32 KiB L1i, while the Baseline configuration's
   single image stays resident. *)
let client_text = 8 * 1024
let server_text = 6 * 1024

let touch_text kernel ~core pa len =
  Sky_sim.Memsys.touch_range_state_only (Kernel.cpu kernel ~core)
    Sky_sim.Memsys.Insn ~pa ~len

(* ---- server wire formats ---- *)

let kv_insert_msg ~key ~value =
  let b = Bytes.create (4 + Bytes.length key + Bytes.length value) in
  Bytes.set b 0 'I';
  Bytes.set_uint16_le b 2 (Bytes.length key);
  Bytes.blit key 0 b 4 (Bytes.length key);
  Bytes.blit value 0 b (4 + Bytes.length key) (Bytes.length value);
  b

let kv_query_msg ~key =
  let b = Bytes.create (4 + Bytes.length key) in
  Bytes.set b 0 'Q';
  Bytes.set_uint16_le b 2 (Bytes.length key);
  Bytes.blit key 0 b 4 (Bytes.length key);
  b

let kv_handler kv kernel : Sky_kernels.Ipc.handler =
 fun ~core msg ->
  let cpu = Kernel.cpu kernel ~core in
  let klen = Bytes.get_uint16_le msg 2 in
  let key = Bytes.sub msg 4 klen in
  match Bytes.get msg 0 with
  | 'I' ->
    let value = Bytes.sub msg (4 + klen) (Bytes.length msg - 4 - klen) in
    Kv_server.insert kv cpu ~key ~value;
    Bytes.of_string "ok"
  | 'Q' -> (
    match Kv_server.query kv cpu ~key with
    | Some v -> v
    | None -> Bytes.empty)
  | c -> invalid_arg (Printf.sprintf "kv_handler: opcode %c" c)

let enc_handler rc4 kernel : Sky_kernels.Ipc.handler =
 fun ~core msg -> Rc4.crypt rc4 (Kernel.cpu kernel ~core) msg

(* ---- pipeline construction ---- *)

type t = {
  kernel : Kernel.t;
  config : config;
  client : Proc.t;
  call_enc : core:int -> bytes -> bytes;
  call_kv : core:int -> bytes -> bytes;
  buf_va : int;  (** client-side scratch where requests are composed *)
  ws_va : int;  (** client data working set (TLB footprint) *)
  client_text_pa : int;
  rng : Rng.t;
  mutable live_keys : (bytes * bytes) list;  (** (key, plaintext value) *)
  mutable ops : int;
  rstats : Sky_core.Retry.stats option;
}

let create ?sb ?ipc ?mesh ?(resilient = false) kernel config =
  let machine = kernel.Kernel.machine in
  let rc4 = Rc4.create machine ~key:"skybridge-pipeline" in
  let kv = Kv_server.create machine in
  let alloc_text len =
    Sky_mem.Frame_alloc.alloc_frames machine.Sky_sim.Machine.alloc
      ~count:((len + 4095) / 4096)
  in
  let client_text_pa = alloc_text client_text in
  let enc_text_pa = alloc_text server_text in
  let kv_text_pa = alloc_text server_text in
  let enc_h0 = enc_handler rc4 kernel and kv_h0 = kv_handler kv kernel in
  let enc_h ~core msg =
    touch_text kernel ~core enc_text_pa server_text;
    enc_h0 ~core msg
  in
  let kv_h ~core msg =
    touch_text kernel ~core kv_text_pa server_text;
    kv_h0 ~core msg
  in
  let rstats =
    if resilient then Some (Sky_core.Retry.create_stats ()) else None
  in
  let finish client call_enc call_kv =
    let buf_va = Kernel.map_anon kernel client 4096 in
    let ws_va = Kernel.map_anon kernel client 16384 in
    Kernel.context_switch kernel ~core:0 client;
    Sky_mmu.Vcpu.set_mode (Kernel.vcpu kernel ~core:0) Sky_mmu.Vcpu.User;
    {
      kernel;
      config;
      client;
      call_enc;
      call_kv;
      buf_va;
      ws_va;
      client_text_pa;
      rng = Rng.create ~seed:0x6b76;
      live_keys = [];
      ops = 0;
      rstats;
    }
  in
  match config with
  | Baseline | Delay ->
    let app = Kernel.spawn kernel ~name:"kv-app" in
    let delay ~core =
      if config = Delay then
        Cpu.charge (Kernel.cpu kernel ~core) direct_ipc_roundtrip
    in
    finish app
      (fun ~core msg ->
        delay ~core;
        enc_h ~core msg)
      (fun ~core msg ->
        delay ~core;
        kv_h ~core msg)
  | Ipc_local | Ipc_cross ->
    let ipc =
      match ipc with Some i -> i | None -> Sky_kernels.Ipc.create kernel
    in
    let client = Kernel.spawn kernel ~name:"client" in
    let enc_proc = Kernel.spawn kernel ~name:"enc-server" in
    let kv_proc = Kernel.spawn kernel ~name:"kv-server" in
    let cores_enc, cores_kv =
      if config = Ipc_cross then ([ 1 ], [ 2 ]) else ([], [])
    in
    let enc_ep = Sky_kernels.Ipc.register ipc enc_proc ~cores:cores_enc enc_h in
    let kv_ep = Sky_kernels.Ipc.register ipc kv_proc ~cores:cores_kv kv_h in
    finish client
      (fun ~core msg -> Sky_kernels.Ipc.call ipc ~core ~client enc_ep msg)
      (fun ~core msg -> Sky_kernels.Ipc.call ipc ~core ~client kv_ep msg)
  | Skybridge ->
    let sb =
      match sb with
      | Some sb -> sb
      | None -> invalid_arg "Pipeline.create: Skybridge requires ~sb"
    in
    let client = Kernel.spawn kernel ~name:"client" in
    let enc_proc = Kernel.spawn kernel ~name:"enc-server" in
    let kv_proc = Kernel.spawn kernel ~name:"kv-server" in
    let enc_sid = Sky_core.Subkernel.register_server sb enc_proc enc_h in
    let kv_sid = Sky_core.Subkernel.register_server sb kv_proc kv_h in
    (match mesh with
    | Some m ->
      (* URI addressing: servers register with the name service and the
         client is capability-granted (which also binds it); every call
         resolves [enc://] / [kv://] through the per-core cache. *)
      let module Mesh = Sky_mesh.Mesh in
      Mesh.register m ~core:0 ~uri:"enc://" ~server_id:enc_sid;
      Mesh.register m ~core:0 ~uri:"kv://" ~server_id:kv_sid;
      ignore (Mesh.grant m ~core:0 ~client "enc://");
      ignore (Mesh.grant m ~core:0 ~client "kv://")
    | None ->
      Sky_core.Subkernel.register_client_to_server sb client ~server_id:enc_sid;
      Sky_core.Subkernel.register_client_to_server sb client ~server_id:kv_sid);
    (match mesh with
    | Some m ->
      let module Mesh = Sky_mesh.Mesh in
      finish client
        (fun ~core msg -> Mesh.call_exn m ~core ~client "enc://" msg)
        (fun ~core msg -> Mesh.call_exn m ~core ~client "kv://" msg)
    | None ->
    if resilient then
      (* Bounded retry + exponential backoff around the recovery-aware
         call: crashed servers are restarted, revoked bindings degrade
         to the slowpath. Safe to retry: RC4 is stateless per message
         and KV insert is idempotent. *)
      finish client
        (fun ~core msg ->
          Sky_core.Retry.call ?stats:rstats sb ~core ~client
            ~server_id:enc_sid msg)
        (fun ~core msg ->
          Sky_core.Retry.call ?stats:rstats sb ~core ~client ~server_id:kv_sid
            msg)
    else
      finish client
        (fun ~core msg ->
          Sky_core.Subkernel.direct_server_call sb ~core ~client
            ~server_id:enc_sid msg)
        (fun ~core msg ->
          Sky_core.Subkernel.direct_server_call sb ~core ~client
            ~server_id:kv_sid msg))

(* ---- client operations ---- *)

(* Compose a fresh request in the client's scratch buffer (real user-mode
   stores), then run the pipeline. *)
let compose t ~core data =
  Cpu.charge (Kernel.cpu t.kernel ~core) client_compute;
  touch_text t.kernel ~core t.client_text_pa client_text;
  Sky_mmu.Translate.write_bytes
    (Kernel.vcpu t.kernel ~core)
    (Kernel.mem t.kernel) ~va:t.buf_va data

(* Revisit the client's data working set (one word per page): after an
   address-space switch flushed the TLB, these are the d-TLB refills the
   paper's Table 1 counts. *)
let touch_working_set t ~core =
  let vcpu = Kernel.vcpu t.kernel ~core and mem = Kernel.mem t.kernel in
  for page = 0 to 3 do
    ignore (Sky_mmu.Translate.read_u64 vcpu mem ~va:(t.ws_va + (page * 4096)))
  done

let fresh_kv t ~len =
  let key = Rng.bytes t.rng len in
  (* Printable keys avoid zero-length collisions in the store. *)
  Bytes.set key 0 (Char.chr (0x41 + (t.ops land 0xf)));
  let value = Rng.bytes t.rng len in
  (key, value)

let insert t ~core ~len =
  t.ops <- t.ops + 1;
  let key, value = fresh_kv t ~len in
  compose t ~core value;
  (* encrypt, then store the ciphertext *)
  let cipher = t.call_enc ~core value in
  touch_working_set t ~core;
  let reply = t.call_kv ~core (kv_insert_msg ~key ~value:cipher) in
  touch_working_set t ~core;
  assert (Bytes.length reply > 0);
  t.live_keys <- (key, value) :: t.live_keys;
  if List.length t.live_keys > 256 then
    t.live_keys <- List.filteri (fun i _ -> i < 256) t.live_keys;
  ()

exception Corrupt_pipeline of string

let query t ~core ~len =
  t.ops <- t.ops + 1;
  match t.live_keys with
  | [] -> insert t ~core ~len
  | (key, expected) :: _ ->
    compose t ~core key;
    let cipher = t.call_kv ~core (kv_query_msg ~key) in
    touch_working_set t ~core;
    if Bytes.length cipher = 0 then
      raise (Corrupt_pipeline "stored key vanished from the KV server");
    let plain = t.call_enc ~core cipher in
    touch_working_set t ~core;
    (* The pipeline is self-checking: decrypt(store(encrypt(v))) = v on
       every query, across every interconnect. *)
    if not (Bytes.equal plain expected) then
      raise (Corrupt_pipeline "decrypted value differs from what was inserted")

(* The §2.1.2 workload: 50%/50% insert and query. Returns average
   latency in cycles per operation. *)
let run t ~core ~ops ~len =
  let cpu = Kernel.cpu t.kernel ~core in
  let start = Cpu.cycles cpu in
  for i = 1 to ops do
    let t0 = Cpu.cycles cpu in
    if i land 1 = 0 then query t ~core ~len else insert t ~core ~len;
    Sky_trace.Trace.record_latency
      (Printf.sprintf "kv.%s.op" (config_name t.config))
      (Cpu.cycles cpu - t0)
  done;
  (Cpu.cycles cpu - start) / ops

let retry_stats t = t.rstats
