#!/bin/sh
# Advisory lint: inventory toplevel mutable host state in lib/.
#
# Isoflow audits guest-visible state (page tables, EPTs, VMCS EPTP
# lists) but cannot see host-side OCaml globals.  Every toplevel
# `ref`/`Hashtbl.create`/`Array.make`/`Buffer.create` in lib/ is
# simulator state that survives across scenario builds and can leak
# between audit runs, so we keep a visible census of them in CI.
#
# This step is ADVISORY: it always exits 0.  It exists so a new global
# shows up in the CI log (and in review) rather than silently.
set -u
cd "$(dirname "$0")/.."

# A toplevel binding is flush-left `let` (not indented, not `let%`...);
# we flag ones whose right-hand side constructs mutable state on the
# same line.  Heuristic by design -- false negatives are acceptable,
# the goal is a cheap visible inventory, not a proof.
pattern='^let [a-zA-Z_0-9]* *(: *[^=]*)?= *(ref |ref$|Hashtbl\.create|Array\.make|Array\.create|Bytes\.make|Bytes\.create|Buffer\.create|Queue\.create|Stack\.create)'

echo "== toplevel mutable host state in lib/ (advisory) =="
found=0
for f in $(find lib -name '*.ml' | sort); do
  hits=$(grep -nE "$pattern" "$f" || true)
  if [ -n "$hits" ]; then
    echo "$hits" | while IFS= read -r line; do
      echo "$f:$line"
    done
    found=$((found + $(echo "$hits" | wc -l)))
  fi
done
echo "== $found toplevel mutable binding(s) found =="
echo "(advisory only; audit passes cover guest-visible state, this inventories host state)"
exit 0
