lib/rewriter/scan.ml: Array Bytes Char Decode Encode Insn List Printf Sky_isa
