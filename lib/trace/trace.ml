(** Cycle-accurate event tracer.

    Per-core bounded ring buffers of spans/instants keyed on *simulated*
    cycles (never wall clock): the clock is installed by
    {!Sky_sim.Machine.create} and reads the core's TSC. Recording never
    charges cycles, so enabling tracing cannot perturb a measurement —
    cycle counts are identical with tracing on or off (asserted in
    [test/test_trace.ml]).

    Alongside the raw event ring the tracer maintains three O(1)-update
    aggregates so exports survive ring overflow:
    - per-category cycle attribution ({!on_charge} hooks {!Sky_sim.Cpu.charge}
      and bills the innermost open span's category),
    - a latency {!Histogram} per span name,
    - folded call-stack self-cycles for flamegraphs. *)

type ev = {
  name : string;
  cat : string;
  core : int;
  ts : int;  (** simulated cycles at event start *)
  dur : int;  (** span duration in cycles; -1 for an instant *)
}

let is_span e = e.dur >= 0

type ring = {
  mutable buf : ev array;
  mutable filled : int;  (** number of valid entries *)
  mutable next : int;  (** next write position *)
  mutable dropped : int;  (** events overwritten after wrap *)
}

(* An open span on a core's stack. [path] is the ";"-joined ancestry used
   for folded-stack output; [child] accumulates completed child spans'
   cycles so self-time = dur - child. *)
type frame = {
  f_name : string;
  f_cat : string;
  f_path : string;
  f_ts : int;
  mutable f_child : int;
}

let max_cores = 128
let default_capacity = 1 lsl 16

let enabled = ref false
let capacity = ref default_capacity
let clock : (int -> int) ref = ref (fun _ -> 0)
let rings : ring option array = Array.make max_cores None
let stacks : frame list array = Array.make max_cores []
let cat_cycles : (string, int ref) Hashtbl.t = Hashtbl.create 16
let hists : (string, Histogram.t) Hashtbl.t = Hashtbl.create 16
let folded_tbl : (string, int ref) Hashtbl.t = Hashtbl.create 64

let is_enabled () = !enabled
let set_clock f = clock := f
let now ~core = !clock core

let clear () =
  Array.fill rings 0 max_cores None;
  Array.fill stacks 0 max_cores [];
  Hashtbl.reset cat_cycles;
  Hashtbl.reset hists;
  Hashtbl.reset folded_tbl

let enable ?ring_capacity () =
  clear ();
  (match ring_capacity with
  | Some c when c > 0 -> capacity := c
  | Some _ -> invalid_arg "Trace.enable: ring_capacity <= 0"
  | None -> capacity := default_capacity);
  enabled := true

let disable () = enabled := false

let ring_for core =
  match rings.(core) with
  | Some r -> r
  | None ->
    let r = { buf = [||]; filled = 0; next = 0; dropped = 0 } in
    rings.(core) <- Some r;
    r

let push_ev core e =
  if core >= 0 && core < max_cores then begin
    let r = ring_for core in
    if Array.length r.buf = 0 then r.buf <- Array.make !capacity e;
    if r.filled >= Array.length r.buf then r.dropped <- r.dropped + 1
    else r.filled <- r.filled + 1;
    r.buf.(r.next) <- e;
    r.next <- (r.next + 1) mod Array.length r.buf
  end

let bump tbl key n =
  match Hashtbl.find_opt tbl key with
  | Some r -> r := !r + n
  | None -> Hashtbl.replace tbl key (ref n)

let hist_for name =
  match Hashtbl.find_opt hists name with
  | Some h -> h
  | None ->
    let h = Histogram.create () in
    Hashtbl.replace hists name h;
    h

(* ------------------------------------------------------------------ *)
(* Recording API                                                       *)
(* ------------------------------------------------------------------ *)

let instant ~core ?(cat = "") name =
  if !enabled && core >= 0 && core < max_cores then
    push_ev core { name; cat; core; ts = now ~core; dur = -1 }

(* A span recorded from explicit timestamps — for call sites whose begin
   and end are separated by early-exit paths (e.g. Subkernel calls). *)
let emit_span ~core ~cat name ~ts ~dur =
  if !enabled && core >= 0 && core < max_cores then begin
    push_ev core { name; cat; core; ts; dur };
    Histogram.add (hist_for name) dur;
    bump folded_tbl name dur
  end

let span ~core ~cat name f =
  if (not !enabled) || core < 0 || core >= max_cores then f ()
  else begin
    let ts0 = now ~core in
    let path =
      match stacks.(core) with
      | parent :: _ -> parent.f_path ^ ";" ^ name
      | [] -> name
    in
    let fr = { f_name = name; f_cat = cat; f_path = path; f_ts = ts0; f_child = 0 } in
    stacks.(core) <- fr :: stacks.(core);
    let finish () =
      (match stacks.(core) with
      | top :: rest when top == fr -> stacks.(core) <- rest
      | _ ->
        (* Unbalanced pop (an inner span escaped via an exception we did
           not see): drop frames down to ours. *)
        let rec unwind = function
          | top :: rest -> if top == fr then rest else unwind rest
          | [] -> []
        in
        stacks.(core) <- unwind stacks.(core));
      let dur = now ~core - fr.f_ts in
      (match stacks.(core) with
      | parent :: _ -> parent.f_child <- parent.f_child + dur
      | [] -> ());
      bump folded_tbl fr.f_path (max 0 (dur - fr.f_child));
      Histogram.add (hist_for fr.f_name) dur;
      push_ev core { name = fr.f_name; cat = fr.f_cat; core; ts = fr.f_ts; dur }
    in
    match f () with
    | r ->
      finish ();
      r
    | exception e ->
      finish ();
      raise e
  end

(* Called by {!Sky_sim.Cpu.charge}: bill [c] cycles to the category of
   the innermost open span on [core]. *)
let on_charge ~core c =
  if !enabled && core >= 0 && core < max_cores then
    let cat =
      match stacks.(core) with fr :: _ -> fr.f_cat | [] -> "untracked"
    in
    bump cat_cycles cat c

(* Feed a named histogram directly (per-workload-op latencies that are
   not spans). *)
let record_latency name v = if !enabled then Histogram.add (hist_for name) v

(* ------------------------------------------------------------------ *)
(* Readout                                                             *)
(* ------------------------------------------------------------------ *)

let events () =
  let acc = ref [] in
  for core = max_cores - 1 downto 0 do
    match rings.(core) with
    | None -> ()
    | Some r ->
      let len = Array.length r.buf in
      (* Oldest-first: the ring wraps at [next]. *)
      for i = r.filled downto 1 do
        let idx = (r.next - i + (2 * len)) mod len in
        acc := r.buf.(idx) :: !acc
      done
  done;
  List.sort (fun a b -> if a.ts <> b.ts then compare a.ts b.ts else compare a.core b.core) !acc

let dropped () =
  Array.fold_left
    (fun acc -> function Some r -> acc + r.dropped | None -> acc)
    0 rings

let categories () =
  Hashtbl.fold (fun k v acc -> (k, !v) :: acc) cat_cycles []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let histograms () =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) hists []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let histogram name = Hashtbl.find_opt hists name

let folded () =
  Hashtbl.fold (fun k v acc -> (k, !v) :: acc) folded_tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
