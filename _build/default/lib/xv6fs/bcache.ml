(** Block buffer cache.

    A fixed number of block-sized slots backed by simulated physical
    memory, so cache hits and misses have real micro-architectural
    footprints. Write-through happens via the log at commit time; the
    cache itself never holds data the disk does not (after commit). *)

let nbuf = 32

type slot = { pa : int; mutable blockno : int; mutable stamp : int }

type t = {
  mem : Sky_mem.Phys_mem.t;
  slots : slot array;
  index : (int, slot) Hashtbl.t;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

let bsize = Sky_blockdev.Ramdisk.block_size

let create machine =
  let mem = machine.Sky_sim.Machine.mem in
  let pa =
    Sky_mem.Frame_alloc.alloc_frames machine.Sky_sim.Machine.alloc
      ~count:((nbuf * bsize) / 4096)
  in
  {
    mem;
    slots =
      Array.init nbuf (fun i -> { pa = pa + (i * bsize); blockno = -1; stamp = 0 });
    index = Hashtbl.create nbuf;
    clock = 0;
    hits = 0;
    misses = 0;
  }

let touch cpu slot =
  Sky_sim.Memsys.touch_range cpu Sky_sim.Memsys.Data ~pa:slot.pa ~len:bsize

(* Look up [blockno]; on miss, fill from [load ()] into an LRU slot. *)
let get t cpu blockno ~load =
  t.clock <- t.clock + 1;
  match Hashtbl.find_opt t.index blockno with
  | Some slot ->
    t.hits <- t.hits + 1;
    slot.stamp <- t.clock;
    touch cpu slot;
    Sky_mem.Phys_mem.read_bytes t.mem slot.pa bsize
  | None ->
    t.misses <- t.misses + 1;
    let victim = ref t.slots.(0) in
    Array.iter (fun s -> if s.stamp < !victim.stamp then victim := s) t.slots;
    let slot = !victim in
    if slot.blockno >= 0 then Hashtbl.remove t.index slot.blockno;
    let data = load () in
    if Bytes.length data <> bsize then invalid_arg "Bcache: bad block";
    Sky_mem.Phys_mem.write_bytes t.mem slot.pa data;
    slot.blockno <- blockno;
    slot.stamp <- t.clock;
    Hashtbl.replace t.index blockno slot;
    touch cpu slot;
    data

(* Update the cached copy (called when a transaction commits, and for
   log-local writes). *)
let put t cpu blockno data =
  t.clock <- t.clock + 1;
  (match Hashtbl.find_opt t.index blockno with
  | Some slot ->
    slot.stamp <- t.clock;
    Sky_mem.Phys_mem.write_bytes t.mem slot.pa data;
    touch cpu slot
  | None ->
    ignore (get t cpu blockno ~load:(fun () -> data)));
  ()

let invalidate t = Hashtbl.reset t.index
let hits t = t.hits
let misses t = t.misses
