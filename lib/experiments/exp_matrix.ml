(** The cross-mechanism showdown: every isolation backend — VMFUNC
    EPTP switching, ERIM-style MPK, the filtered-syscall slowpath —
    driven through the same three probes, one matrix out.

    Per backend ({!Sky_backends.Registry.with_backend} re-points every
    [Subkernel.init] in the probes, so the probes themselves are
    backend-blind):

    - {b cost}: the pingpong rig ({!Exp_pingpong.measure_full}) under
      TLB pressure, with the Figure-7 attribution separating the
      architectural switch legs from kernel round trips;
    - {b recovery}: a deterministic mini-storm over the §2.1.2 KV
      pipeline — server crashes, a hang past the watchdog, a binding
      revocation mid-traffic — where every injected fault must end
      recovered (restart + rebind), degraded (slowpath) or as a typed
      error, never lost;
    - {b security}: the full post-storm audit, reported per pass, so
      each mechanism is seen passing {e its own} argument (the WRPKRU
      scan for MPK, the entry filter for syscall, the gadget/EPT pair
      for VMFUNC) on a machine that just went through crash recovery.

    Everything is seeded and cycle-deterministic: the same seed yields
    a byte-identical matrix, which is what BENCH_matrix.json archives
    and CI diffs across two runs. *)

open Sky_harness
module Fault = Sky_faults.Fault
module Subkernel = Sky_core.Subkernel
module Descriptor = Sky_backends.Descriptor

type cell = {
  x_d : Descriptor.t;
  x_ping : Exp_pingpong.full;
  x_injected : int;
  x_attempts : int;
  x_recovered : int;
  x_degraded : int;
  x_lost : int;
  x_restarts : int;
  x_forced_returns : int;
  x_audit : (string * int) list;  (** post-storm violations per audit pass *)
}

type result = { r_seed : int; r_cells : cell list }

(* The mini-storm: deterministic At_hit triggers only, so all three
   backends face the identical fault schedule and the matrix rows stay
   comparable call-for-call. *)
let storm seed =
  Fault.reset ~seed ();
  Fault.arm ~budget:2 ~site:"server.enc-server" ~kind:Fault.Crash
    (Fault.At_hit 20);
  Fault.arm ~budget:2 ~site:"server.kv-server" ~kind:Fault.Crash
    (Fault.At_hit 55);
  Fault.arm ~budget:1 ~site:"server.kv-server" ~kind:Fault.Hang
    (Fault.At_hit 90);
  Fault.arm ~budget:1 ~site:"subkernel.call" ~kind:Fault.Revoke
    (Fault.At_hit 130)

let run_storm ~seed =
  let machine = Sky_sim.Machine.create ~cores:4 ~mem_mib:128 () in
  let kernel = Sky_ukernel.Kernel.create machine in
  let sb = Subkernel.init kernel in
  let p = Sky_kvstore.Pipeline.create ~sb ~resilient:true kernel
      Sky_kvstore.Pipeline.Skybridge in
  ignore (Sky_kvstore.Pipeline.run p ~core:0 ~ops:16 ~len:64) (* warm, faults off *);
  storm seed;
  let lost_hard = ref 0 in
  (for i = 1 to 200 do
     try
       if i land 1 = 0 then Sky_kvstore.Pipeline.query p ~core:0 ~len:64
       else Sky_kvstore.Pipeline.insert p ~core:0 ~len:64
     with Sky_core.Retry.Gave_up _ -> incr lost_hard
   done);
  Fault.disable ();
  let st =
    match Sky_kvstore.Pipeline.retry_stats p with
    | Some s -> s
    | None -> assert false
  in
  let injected =
    List.fold_left (fun a (_, n) -> a + n) 0 (Fault.fired_counts ())
  in
  let audit =
    List.map
      (fun (pr : Sky_analysis.Audit.pass_result) ->
        (pr.Sky_analysis.Audit.pr_name,
         List.length pr.Sky_analysis.Audit.pr_violations))
      (Subkernel.audit_passes sb)
  in
  ( injected, st, !lost_hard, Subkernel.forced_returns sb, audit )

let run_cell ~seed d =
  Sky_backends.Registry.with_backend (Descriptor.kind d) @@ fun () ->
  let ping = Exp_pingpong.measure_full () in
  let injected, st, lost_hard, forced, audit = run_storm ~seed in
  {
    x_d = d;
    x_ping = ping;
    x_injected = injected;
    x_attempts = st.Sky_core.Retry.attempts;
    x_recovered = st.Sky_core.Retry.retried_ok;
    x_degraded = st.Sky_core.Retry.degraded;
    x_lost = st.Sky_core.Retry.lost + lost_hard;
    x_restarts = st.Sky_core.Retry.restarts;
    x_forced_returns = forced;
    x_audit = audit;
  }

let default_seed = 7

let run_matrix ?(seed = default_seed) () =
  { r_seed = seed;
    r_cells = List.map (run_cell ~seed) Sky_backends.Registry.all }

(* ---- gates ---- *)

let cell_of r kind =
  List.find (fun c -> Descriptor.kind c.x_d = kind) r.r_cells

let cycles r kind = (cell_of r kind).x_ping.Exp_pingpong.f_cycles_per_call
let zero_lost r = List.for_all (fun c -> c.x_lost = 0) r.r_cells

let audits_clean r =
  List.for_all (fun c -> List.for_all (fun (_, n) -> n = 0) c.x_audit) r.r_cells

(** The headline claim: the WRPKRU switch beats VMFUNC on the identical
    workload (strictly — both legs are cheaper and nothing else in the
    crossing changed). *)
let mpk_beats_vmfunc r =
  cycles r Sky_core.Backend.Mpk < cycles r Sky_core.Backend.Vmfunc

let recovered_under_storm r =
  List.for_all (fun c -> c.x_injected > 0 && c.x_restarts > 0) r.r_cells

let ok r =
  zero_lost r && audits_clean r && mpk_beats_vmfunc r
  && recovered_under_storm r

(* ---- rendering ---- *)

let audit_total c = List.fold_left (fun a (_, n) -> a + n) 0 c.x_audit

let table r =
  let row c =
    let d = c.x_d in
    [
      Descriptor.name d;
      Tbl.fmt_int c.x_ping.Exp_pingpong.f_cycles_per_call;
      Tbl.fmt_int (Descriptor.switch_cycles d);
      Tbl.fmt_int c.x_ping.Exp_pingpong.f_switch_per_call;
      Tbl.fmt_int c.x_ping.Exp_pingpong.f_kernel_per_call;
      (if d.Descriptor.d_kernel_on_path then "yes" else "no");
      (if d.Descriptor.d_tlb_flush_on_switch then "yes" else "no");
      (if d.Descriptor.d_shared_address_space then "yes" else "no");
      string_of_int c.x_injected;
      string_of_int c.x_recovered;
      string_of_int c.x_degraded;
      string_of_int c.x_lost;
      string_of_int c.x_restarts;
      string_of_int (audit_total c);
    ]
  in
  Tbl.make
    ~title:
      (Printf.sprintf
         "Cross-mechanism matrix: VMFUNC vs MPK vs filtered syscall (seed %d)"
         r.r_seed)
    ~header:
      [
        "backend"; "cycles/call"; "switch/leg"; "switch cyc"; "kernel cyc";
        "kernel path"; "tlb flush"; "shared AS"; "injected"; "recovered";
        "degraded"; "lost"; "restarts"; "audit";
      ]
    ~notes:
      [
        "cycles/call: pingpong under TLB pressure (96-page client working \
         set); switch cyc / kernel cyc: Figure-7 attribution of the \
         architectural switch legs vs kernel round trips";
        "every backend faces the identical deterministic fault schedule \
         (crashes, a hang, a revocation); acceptance: lost = 0 and a clean \
         post-storm audit on every row, and mpk strictly under vmfunc on \
         cycles/call";
      ]
    (List.map row r.r_cells)

let to_json r =
  let open Sky_trace.Json in
  let cell c =
    let d = c.x_d in
    Obj
      [
        ("backend", String (Descriptor.name d));
        ("title", String d.Descriptor.d_title);
        ("cycles_per_call", Int c.x_ping.Exp_pingpong.f_cycles_per_call);
        ("switch_cycles_leg", Int (Descriptor.switch_cycles d));
        ("switch_cycles_per_call", Int c.x_ping.Exp_pingpong.f_switch_per_call);
        ("kernel_cycles_per_call", Int c.x_ping.Exp_pingpong.f_kernel_per_call);
        ("copy_cycles_per_call", Int c.x_ping.Exp_pingpong.f_copy_per_call);
        ("kernel_on_path", Bool d.Descriptor.d_kernel_on_path);
        ("tlb_flush_on_switch", Bool d.Descriptor.d_tlb_flush_on_switch);
        ("shared_address_space", Bool d.Descriptor.d_shared_address_space);
        ("injected", Int c.x_injected);
        ("attempts", Int c.x_attempts);
        ("recovered", Int c.x_recovered);
        ("degraded", Int c.x_degraded);
        ("lost", Int c.x_lost);
        ("restarts", Int c.x_restarts);
        ("forced_returns", Int c.x_forced_returns);
        ( "audit",
          Obj (List.map (fun (name, n) -> (name, Int n)) c.x_audit) );
      ]
  in
  to_string
    (Obj
       [
         ("seed", Int r.r_seed);
         ("ok", Bool (ok r));
         ("mpk_beats_vmfunc", Bool (mpk_beats_vmfunc r));
         ("cells", List (List.map cell r.r_cells));
       ])

let run () = table (run_matrix ())
