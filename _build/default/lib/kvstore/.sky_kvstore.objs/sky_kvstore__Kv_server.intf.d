lib/kvstore/kv_server.mli: Sky_sim
