lib/kvstore/kv_server.ml: Bytes Char Sky_mem Sky_sim
