lib/ukernel/kernel.ml: Array Bytes Config Costs Cpu Frame_alloc Int64 Layout List Machine Memsys Page_table Phys_mem Pmu Printf Proc Pte Sky_isa Sky_mem Sky_mmu Sky_sim Vcpu
