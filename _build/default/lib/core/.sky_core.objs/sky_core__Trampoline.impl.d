lib/core/trampoline.ml: Encode Insn List Reg Sky_isa Sky_rewriter Sky_sim
