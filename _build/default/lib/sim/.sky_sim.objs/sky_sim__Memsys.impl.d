lib/sim/memsys.ml: Cache Costs Cpu
