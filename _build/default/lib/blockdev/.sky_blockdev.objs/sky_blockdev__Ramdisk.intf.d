lib/blockdev/ramdisk.mli: Sky_sim
