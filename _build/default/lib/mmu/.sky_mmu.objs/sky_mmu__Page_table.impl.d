lib/mmu/page_table.ml: List Pte Sky_mem
