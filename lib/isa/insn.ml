(** Instruction AST for the x86-64 subset SkyBridge manipulates.

    Covers everything the trampoline generator emits, everything the
    synthetic binary corpus contains, and all the shapes in Table 3 of the
    paper (instructions whose ModRM, SIB, displacement or immediate can
    encode an inadvertent VMFUNC). All register operations are 64-bit. *)

type mem = {
  base : Reg.t option;
  index : (Reg.t * int) option;  (** (register, scale in {1,2,4,8}) *)
  disp : int;  (** signed 32-bit displacement *)
}

let mem ?base ?index ?(disp = 0) () = { base; index; disp }

(* Condition codes for Jcc (tttn encodings 0F 8x). *)
type cond = E | Ne | L | Ge | Le | G | B | Ae

let cond_code = function
  | B -> 0x2
  | Ae -> 0x3
  | E -> 0x4
  | Ne -> 0x5
  | L -> 0xC
  | Ge -> 0xD
  | Le -> 0xE
  | G -> 0xF

let cond_of_code = function
  | 0x2 -> Some B
  | 0x3 -> Some Ae
  | 0x4 -> Some E
  | 0x5 -> Some Ne
  | 0xC -> Some L
  | 0xD -> Some Ge
  | 0xE -> Some Le
  | 0xF -> Some G
  | _ -> None

let cond_name = function
  | E -> "e"
  | Ne -> "ne"
  | L -> "l"
  | Ge -> "ge"
  | Le -> "le"
  | G -> "g"
  | B -> "b"
  | Ae -> "ae"

type t =
  | Nop
  | Push of Reg.t
  | Pop of Reg.t
  | Mov_rr of Reg.t * Reg.t  (** [Mov_rr (dst, src)] *)
  | Mov_ri of Reg.t * int64
  | Mov_load of Reg.t * mem  (** dst <- [mem] *)
  | Mov_store of mem * Reg.t  (** [mem] <- src *)
  | Add_rr of Reg.t * Reg.t
  | Add_ri of Reg.t * int  (** signed 32-bit immediate *)
  | Add_rm of Reg.t * mem  (** dst <- dst + [mem] *)
  | Sub_ri of Reg.t * int
  | Xor_rr of Reg.t * Reg.t
  | And_rr of Reg.t * Reg.t
  | And_ri of Reg.t * int
  | Or_rr of Reg.t * Reg.t
  | Or_ri of Reg.t * int
  | Cmp_rr of Reg.t * Reg.t  (** [Cmp_rr (a, b)]: flags from a - b *)
  | Cmp_ri of Reg.t * int
  | Test_rr of Reg.t * Reg.t
  | Shl_ri of Reg.t * int  (** shift by imm8 *)
  | Shr_ri of Reg.t * int
  | Inc of Reg.t
  | Dec of Reg.t
  | Neg of Reg.t
  | Jcc of cond * int  (** conditional jump, rel32 *)
  | Imul_rri of Reg.t * mem_or_reg * int
      (** [Imul_rri (dst, src, imm)]: dst <- src * imm (69 /r id) *)
  | Imul_rm of Reg.t * mem_or_reg  (** dst <- dst * src (0F AF /r) *)
  | Lea of Reg.t * mem
  | Jmp_rel of int  (** relative to the end of this instruction *)
  | Call_rel of int
  | Ret
  | Syscall
  | Vmfunc
  | Wrpkru
      (** write EAX into PKRU (requires ECX = EDX = 0) — the ERIM-style
          MPK domain-switch instruction, encoded [0F 01 EF] *)
  | Cpuid

and mem_or_reg = R of Reg.t | M of mem

let pp_mem fmt m =
  let base = Option.fold ~none:"" ~some:Reg.name m.base in
  let index =
    Option.fold ~none:""
      ~some:(fun (r, s) -> Printf.sprintf ", %s, %d" (Reg.name r) s)
      m.index
  in
  Format.fprintf fmt "%#x(%s%s)" m.disp base index

let pp fmt = function
  | Nop -> Format.pp_print_string fmt "nop"
  | Push r -> Format.fprintf fmt "push %a" Reg.pp r
  | Pop r -> Format.fprintf fmt "pop %a" Reg.pp r
  | Mov_rr (d, s) -> Format.fprintf fmt "mov %a, %a" Reg.pp s Reg.pp d
  | Mov_ri (d, i) -> Format.fprintf fmt "mov $%#Lx, %a" i Reg.pp d
  | Mov_load (d, m) -> Format.fprintf fmt "mov %a, %a" pp_mem m Reg.pp d
  | Mov_store (m, s) -> Format.fprintf fmt "mov %a, %a" Reg.pp s pp_mem m
  | Add_rr (d, s) -> Format.fprintf fmt "add %a, %a" Reg.pp s Reg.pp d
  | Add_ri (d, i) -> Format.fprintf fmt "add $%#x, %a" i Reg.pp d
  | Add_rm (d, m) -> Format.fprintf fmt "add %a, %a" pp_mem m Reg.pp d
  | Sub_ri (d, i) -> Format.fprintf fmt "sub $%#x, %a" i Reg.pp d
  | Xor_rr (d, s) -> Format.fprintf fmt "xor %a, %a" Reg.pp s Reg.pp d
  | And_rr (d, s) -> Format.fprintf fmt "and %a, %a" Reg.pp s Reg.pp d
  | And_ri (d, i) -> Format.fprintf fmt "and $%#x, %a" i Reg.pp d
  | Or_rr (d, s) -> Format.fprintf fmt "or %a, %a" Reg.pp s Reg.pp d
  | Or_ri (d, i) -> Format.fprintf fmt "or $%#x, %a" i Reg.pp d
  | Cmp_rr (a, b) -> Format.fprintf fmt "cmp %a, %a" Reg.pp b Reg.pp a
  | Cmp_ri (a, i) -> Format.fprintf fmt "cmp $%#x, %a" i Reg.pp a
  | Test_rr (a, b) -> Format.fprintf fmt "test %a, %a" Reg.pp b Reg.pp a
  | Shl_ri (d, i) -> Format.fprintf fmt "shl $%d, %a" i Reg.pp d
  | Shr_ri (d, i) -> Format.fprintf fmt "shr $%d, %a" i Reg.pp d
  | Inc d -> Format.fprintf fmt "inc %a" Reg.pp d
  | Dec d -> Format.fprintf fmt "dec %a" Reg.pp d
  | Neg d -> Format.fprintf fmt "neg %a" Reg.pp d
  | Jcc (c, r) -> Format.fprintf fmt "j%s .%+d" (cond_name c) r
  | Imul_rri (d, R s, i) ->
    Format.fprintf fmt "imul $%#x, %a, %a" i Reg.pp s Reg.pp d
  | Imul_rri (d, M m, i) ->
    Format.fprintf fmt "imul $%#x, %a, %a" i pp_mem m Reg.pp d
  | Imul_rm (d, R s) -> Format.fprintf fmt "imul %a, %a" Reg.pp s Reg.pp d
  | Imul_rm (d, M m) -> Format.fprintf fmt "imul %a, %a" pp_mem m Reg.pp d
  | Lea (d, m) -> Format.fprintf fmt "lea %a, %a" pp_mem m Reg.pp d
  | Jmp_rel r -> Format.fprintf fmt "jmp .%+d" r
  | Call_rel r -> Format.fprintf fmt "call .%+d" r
  | Ret -> Format.pp_print_string fmt "ret"
  | Syscall -> Format.pp_print_string fmt "syscall"
  | Vmfunc -> Format.pp_print_string fmt "vmfunc"
  | Wrpkru -> Format.pp_print_string fmt "wrpkru"
  | Cpuid -> Format.pp_print_string fmt "cpuid"

let to_string i = Format.asprintf "%a" pp i

(* Registers an instruction reads or writes, used by the rewriter to pick
   a safe scratch register. *)
let regs_of_mem m =
  Option.to_list m.base @ List.map fst (Option.to_list m.index)

(* Registers an instruction may write (used by the rewriter to decide
   whether a base register survives the instruction). *)
let regs_written = function
  | Nop | Ret | Syscall | Vmfunc | Wrpkru | Jmp_rel _ | Mov_store _ | Cmp_rr _
  | Cmp_ri _ | Test_rr _ | Jcc _ ->
    []
  | Cpuid -> [ Reg.Rax; Reg.Rbx; Reg.Rcx; Reg.Rdx ]
  | Push _ | Call_rel _ -> [ Reg.Rsp ]
  | Pop r -> [ r; Reg.Rsp ]
  | Mov_rr (d, _)
  | Mov_ri (d, _)
  | Mov_load (d, _)
  | Add_rr (d, _)
  | Add_ri (d, _)
  | Add_rm (d, _)
  | Sub_ri (d, _)
  | Xor_rr (d, _)
  | Imul_rri (d, _, _)
  | Imul_rm (d, _)
  | Lea (d, _)
  | And_rr (d, _)
  | And_ri (d, _)
  | Or_rr (d, _)
  | Or_ri (d, _)
  | Shl_ri (d, _)
  | Shr_ri (d, _)
  | Inc d
  | Dec d
  | Neg d ->
    [ d ]

let regs_used = function
  | Nop | Ret | Syscall | Vmfunc | Jmp_rel _ | Call_rel _ | Jcc _ -> []
  | Wrpkru -> [ Reg.Rax; Reg.Rcx; Reg.Rdx ]
  | Cpuid -> [ Reg.Rax; Reg.Rbx; Reg.Rcx; Reg.Rdx ]
  | Push r | Pop r -> [ r; Reg.Rsp ]
  | Mov_rr (d, s) | Add_rr (d, s) | Xor_rr (d, s) | And_rr (d, s) | Or_rr (d, s)
  | Cmp_rr (d, s) | Test_rr (d, s) ->
    [ d; s ]
  | Mov_ri (d, _) | Add_ri (d, _) | Sub_ri (d, _) | And_ri (d, _) | Or_ri (d, _)
  | Cmp_ri (d, _) | Shl_ri (d, _) | Shr_ri (d, _) | Inc d | Dec d | Neg d ->
    [ d ]
  | Mov_load (d, m) | Add_rm (d, m) | Lea (d, m) -> d :: regs_of_mem m
  | Mov_store (m, s) -> s :: regs_of_mem m
  | Imul_rri (d, R s, _) | Imul_rm (d, R s) -> [ d; s ]
  | Imul_rri (d, M m, _) | Imul_rm (d, M m) -> d :: regs_of_mem m
