exception Page_fault = Page_table.Page_fault
exception Ept_violation = Ept.Ept_violation

type access = { kind : Sky_sim.Memsys.kind; write : bool }

let data_read = { kind = Sky_sim.Memsys.Data; write = false }
let data_write = { kind = Sky_sim.Memsys.Data; write = true }
let fetch = { kind = Sky_sim.Memsys.Insn; write = false }

(* Translate a guest-physical address through the current EPT, charging
   one cached data access per EPT entry read. Identity when the vCPU is
   not virtualized. *)
let ept_translate vcpu mem gpa =
  match vcpu.Vcpu.vmcs with
  | None -> gpa
  | Some vmcs -> (
    let root_pa = Vmcs.current_eptp vmcs in
    match Ept.walk ~mem ~root_pa ~gpa with
    | Ok { Ept.hpa; entries_read } ->
      List.iter
        (fun epa -> Sky_sim.Memsys.access (Vcpu.cpu vcpu) Sky_sim.Memsys.Data epa)
        entries_read;
      hpa
    | Error f -> raise (Ept.Ept_violation f))

(* Nested guest walk: each guest table page is located through the EPT,
   then the entry is read with a cached access. *)
let guest_walk vcpu mem ~va =
  let cpu = Vcpu.cpu vcpu in
  (* Fault site "mmu.walk": a spurious EPT violation (or crash) injected
     into the nested walk — only fires inside a mediated-call scope. *)
  if Sky_faults.Fault.is_enabled () then
    Sky_faults.Fault.inject ~core:(Sky_sim.Cpu.id cpu) "mmu.walk";
  let rec go table_gpa level =
    let table_hpa = ept_translate vcpu mem table_gpa in
    let index = Page_table.va_index ~level va in
    let epa = table_hpa + (index * 8) in
    Sky_sim.Memsys.access cpu Sky_sim.Memsys.Data epa;
    let e = Sky_mem.Phys_mem.read_u64 mem epa in
    if not (Pte.is_present e) then
      raise (Page_table.Page_fault (Page_table.Not_present va))
    else
      let pa, flags = Pte.decode e in
      if level = 0 then (pa, flags) else go pa (level - 1)
  in
  go vcpu.Vcpu.cr3 3

let check_perms vcpu acc ~va (flags : Pte.flags) =
  let user_mode = vcpu.Vcpu.mode = Vcpu.User in
  if user_mode && not flags.Pte.user then
    raise (Page_table.Page_fault (Page_table.Protection va));
  if acc.write && not flags.Pte.writable then
    raise (Page_table.Page_fault (Page_table.Protection va));
  if acc.kind = Sky_sim.Memsys.Insn && flags.Pte.nx then
    raise (Page_table.Page_fault (Page_table.Protection va))

let translate vcpu mem acc ~va =
  let cpu = Vcpu.cpu vcpu in
  let tlb =
    match acc.kind with
    | Sky_sim.Memsys.Insn -> Sky_sim.Cpu.itlb cpu
    | Sky_sim.Memsys.Data -> Sky_sim.Cpu.dtlb cpu
  in
  let vpn = va lsr 12 in
  let asid = Vcpu.asid vcpu in
  match Sky_sim.Tlb.lookup tlb ~asid ~vpn with
  | Some entry ->
    let flags =
      {
        Pte.present = true;
        writable = entry.Sky_sim.Tlb.writable;
        user = entry.Sky_sim.Tlb.user;
        huge = false;
        nx = false;
      }
    in
    check_perms vcpu acc ~va flags;
    (entry.Sky_sim.Tlb.ppn lsl 12) lor (va land 0xfff)
  | None ->
    let page_gpa, flags = guest_walk vcpu mem ~va in
    check_perms vcpu acc ~va flags;
    let page_hpa = ept_translate vcpu mem page_gpa in
    Sky_sim.Tlb.insert tlb ~asid ~vpn
      {
        Sky_sim.Tlb.ppn = page_hpa lsr 12;
        page_shift = 12;
        writable = flags.Pte.writable;
        user = flags.Pte.user;
      };
    page_hpa lor (va land 0xfff)

let accessed vcpu mem acc ~va =
  let hpa = translate vcpu mem acc ~va in
  Sky_sim.Memsys.access (Vcpu.cpu vcpu) acc.kind hpa;
  hpa

let read_u8 vcpu mem ~va = Sky_mem.Phys_mem.read_u8 mem (accessed vcpu mem data_read ~va)

let write_u8 vcpu mem ~va v =
  Sky_mem.Phys_mem.write_u8 mem (accessed vcpu mem data_write ~va) v

let read_u64 vcpu mem ~va =
  Sky_mem.Phys_mem.read_u64 mem (accessed vcpu mem data_read ~va)

let write_u64 vcpu mem ~va v =
  Sky_mem.Phys_mem.write_u64 mem (accessed vcpu mem data_write ~va) v

(* Iterate a virtual range page by page, giving [f] the HPA and length of
   each in-page chunk, charging one cached access per 64-byte line. *)
let iter_range vcpu mem acc ~va ~len f =
  let cpu = Vcpu.cpu vcpu in
  let rec go va off remaining =
    if remaining > 0 then begin
      let in_page = 4096 - (va land 0xfff) in
      let n = min remaining in_page in
      let hpa = translate vcpu mem acc ~va in
      let line = 64 in
      let first = hpa / line and last = (hpa + n - 1) / line in
      for l = first to last do
        Sky_sim.Memsys.access cpu acc.kind (l * line)
      done;
      f ~hpa ~off ~len:n;
      go (va + n) (off + n) (remaining - n)
    end
  in
  go va 0 len

let read_bytes vcpu mem ~va ~len =
  let dst = Bytes.create len in
  iter_range vcpu mem data_read ~va ~len (fun ~hpa ~off ~len ->
      Sky_mem.Phys_mem.blit_to mem ~src_pa:hpa ~dst ~dst_off:off ~len);
  dst

let write_bytes vcpu mem ~va src =
  iter_range vcpu mem data_write ~va ~len:(Bytes.length src)
    (fun ~hpa ~off ~len ->
      Sky_mem.Phys_mem.blit_from mem ~src ~src_off:off ~dst_pa:hpa ~len)

let touch vcpu mem acc ~va ~len =
  if len > 0 then
    iter_range vcpu mem acc ~va ~len (fun ~hpa:_ ~off:_ ~len:_ -> ())
