(** Asynchronous notifications (seL4-style), the other half of a modern
    microkernel's IPC story ("current microkernels usually contain a
    mixture of both synchronous and asynchronous IPCs", §8.1).

    A notification is a word of badge bits. [signal] ORs bits in and, if
    a waiter on another core is blocked, kicks it with an IPI. [wait]
    consumes the word, blocking (in virtual time) until the next signal
    when it is empty. Signals coalesce — N signals before a wait deliver
    one word with the union of the badges. *)

type t

val create : Sky_ukernel.Kernel.t -> name:string -> t

val signal : t -> core:int -> badge:int -> unit
(** Kernel entry + OR the badge in + one IPI per blocked cross-core
    waiter. Waiters are woken (and deregistered) exactly once however
    many signals coalesce before they run. *)

val poll : t -> core:int -> int option
(** Non-blocking: the accumulated word, or [None] when empty. *)

val wait : t -> core:int -> int
(** Consume the word; if empty, block until the next pending signal's
    virtual time.
    @raise Would_block if nothing is pending at all. *)

exception Would_block

val wait_blocking : ?poll:int -> ?polls:int -> t -> core:int -> int option
(** [wait_blocking t ~core] is the ergonomic wrapper around {!wait}'s
    [Would_block]: consume the word if one is pending (advancing to its
    delivery time), otherwise register as a waiter, charge [poll]
    (default 200) cycles per retry for up to [polls] (default 1) rounds,
    and return [None]. [None] means "block": the caller's run loop
    (e.g. {!Sky_sim.Machine.interleave}) should let other cores — the
    signalers — run and then re-poll; the registered waiter guarantees
    the wakeup IPI is delivered cross-core when the signal lands. *)

val signals : t -> int
val waits : t -> int

val ipis : t -> int
(** Cross-core wakeup IPIs sent by {!signal}. *)

val waiting_cores : t -> int list
(** Cores currently blocked in {!wait}, oldest first. *)
