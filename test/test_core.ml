(* Integration tests for SkyBridge proper: Rootkernel boot, registration,
   direct_server_call, all security defences, and the extensions. *)

open Sky_sim
open Sky_ukernel
open Sky_kernels
open Sky_core

let make ?(vpid = true) ?max_eptp ?max_bindings ?(cores = 4) () =
  let machine = Machine.create ~cores ~mem_mib:64 () in
  let k = Kernel.create machine in
  let sb = Subkernel.init ~vpid ?max_eptp ?max_bindings k in
  (k, sb)

let user_code = Sky_isa.Encode.encode_all [ Sky_isa.Insn.Nop; Sky_isa.Insn.Ret ]

let spawn_with_code k name =
  let p = Kernel.spawn k ~name in
  ignore (Kernel.map_code k p user_code);
  p

let echo ~core:_ msg = msg

(* Standard topology: client + echo server, registered and bound. *)
let setup ?vpid ?max_eptp () =
  let k, sb = make ?vpid ?max_eptp () in
  let client = spawn_with_code k "client" in
  let server = spawn_with_code k "server" in
  let sid = Subkernel.register_server sb server echo in
  Subkernel.register_client_to_server sb client ~server_id:sid;
  Kernel.context_switch k ~core:0 client;
  (k, sb, client, server, sid)

(* ------------------------------------------------------------------ *)
(* Rootkernel                                                          *)
(* ------------------------------------------------------------------ *)

let test_boot_reserves_memory () =
  let k, sb = make () in
  let root = Subkernel.rootkernel sb in
  Alcotest.(check bool) "reserved some memory" true
    (root.Rootkernel.reserved_bytes > 0);
  (* The reserved frames cannot be allocated by the Subkernel. *)
  let alloc = Kernel.alloc k in
  Alcotest.(check bool) "frames unavailable" true
    (Sky_mem.Frame_alloc.available alloc
    < Sky_mem.Phys_mem.frames (Kernel.mem k))

let test_boot_virtualizes_all_cores () =
  let k, _sb = make () in
  for core = 0 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "core %d non-root" core)
      true
      (Sky_mmu.Vcpu.virtualized (Kernel.vcpu k ~core))
  done

let test_cpuid_exits () =
  let _, sb = make () in
  let root = Subkernel.rootkernel sb in
  Alcotest.(check int) "no exits after boot" 0 (Rootkernel.total_vm_exits root);
  Rootkernel.handle_cpuid root ~core:0;
  Alcotest.(check int) "one CPUID exit" 1
    (Rootkernel.exits_of root Sky_mmu.Vmcs.Exit_cpuid)

let test_ept_violation_fatal () =
  let _, sb = make () in
  let root = Subkernel.rootkernel sb in
  (try
     ignore (Rootkernel.handle_ept_violation root ~core:0 ~gpa:0xdead000);
     Alcotest.fail "expected Fatal_ept_violation"
   with Rootkernel.Fatal_ept_violation gpa ->
     Alcotest.(check int) "gpa" 0xdead000 gpa);
  Alcotest.(check int) "recorded" 1
    (Rootkernel.exits_of root Sky_mmu.Vmcs.Exit_ept_violation)

(* ------------------------------------------------------------------ *)
(* Registration                                                        *)
(* ------------------------------------------------------------------ *)

let test_register_maps_trampoline () =
  let k, sb, client, _, _ = setup () in
  (* The trampoline page is mapped and contains exactly two legal
     VMFUNCs. *)
  let code = Subkernel.trampoline_code sb in
  Alcotest.(check int) "two vmfuncs in trampoline" 2
    (Sky_rewriter.Scan.count_pattern code);
  match
    Sky_mmu.Page_table.walk ~mem:(Kernel.mem k) ~root_pa:(Proc.cr3 client)
      ~va:Layout.trampoline_va
  with
  | Ok r ->
    Alcotest.(check bool) "executable" false r.Sky_mmu.Page_table.flags.Sky_mmu.Pte.nx;
    Alcotest.(check bool) "not writable" false
      r.Sky_mmu.Page_table.flags.Sky_mmu.Pte.writable
  | Error _ -> Alcotest.fail "trampoline unmapped"

let test_register_rewrites_binary () =
  let k, sb = make () in
  let evil = Kernel.spawn k ~name:"evil" in
  (* A process shipping its own VMFUNC: registration must neuter it. *)
  ignore
    (Kernel.map_code k evil
       (Sky_isa.Encode.encode_all
          [ Sky_isa.Insn.Vmfunc; Sky_isa.Insn.Add_ri (Sky_isa.Reg.Rax, 0xD4010F); Sky_isa.Insn.Ret ]));
  Alcotest.(check bool) "dirty before" false (Subkernel.proc_is_clean sb evil);
  let sid = Subkernel.register_server sb evil echo in
  ignore sid;
  Alcotest.(check bool) "clean after registration" true
    (Subkernel.proc_is_clean sb evil)

let test_register_client_builds_ept () =
  let _, sb, _, _, _ = setup () in
  ignore sb;
  (* Binding exists; nothing to assert beyond no exception + the call
     below working. *)
  ()

(* ------------------------------------------------------------------ *)
(* direct_server_call                                                  *)
(* ------------------------------------------------------------------ *)

let test_direct_call_roundtrip_cost () =
  let k, sb, client, _, sid = setup () in
  let c = Kernel.cpu k ~core:0 in
  let msg = Bytes.create 8 in
  ignore (Subkernel.direct_server_call sb ~core:0 ~client ~server_id:sid msg);
  let before = Cpu.cycles c in
  let reply = Subkernel.direct_server_call sb ~core:0 ~client ~server_id:sid msg in
  let cycles = Cpu.cycles c - before in
  Alcotest.(check int) "echo" 8 (Bytes.length reply);
  (* §6.3: an IPC roundtrip in SkyBridge costs 396 cycles (2 x VMFUNC 134
     + 2 x 64 other). Ours adds the calling-key table lookup reads, so
     allow a small warm-cache margin. *)
  Alcotest.(check bool)
    (Printf.sprintf "roundtrip %d within [396, 450]" cycles)
    true
    (cycles >= 396 && cycles <= 450)

let test_direct_call_no_kernel_no_exit () =
  let k, sb, client, _, sid = setup () in
  let root = Subkernel.rootkernel sb in
  ignore (Subkernel.direct_server_call sb ~core:0 ~client ~server_id:sid (Bytes.create 8));
  let exits = Rootkernel.total_vm_exits root in
  let pmu = Cpu.pmu (Kernel.cpu k ~core:0) in
  let syscalls = Pmu.read pmu Pmu.Syscall_exec in
  ignore (Subkernel.direct_server_call sb ~core:0 ~client ~server_id:sid (Bytes.create 8));
  Alcotest.(check int) "no VM exits during calls" exits (Rootkernel.total_vm_exits root);
  Alcotest.(check int) "no syscalls during calls" syscalls (Pmu.read pmu Pmu.Syscall_exec)

let test_direct_call_switches_address_space () =
  let k, sb, client, server, sid = setup () in
  (* During the handler, the live identity must be the server's; after
     return, the client's (§4.2 process misidentification). *)
  let seen = ref (-1) in
  let probing_sid =
    let prober = spawn_with_code k "prober" in
    ignore prober;
    sid
  in
  ignore probing_sid;
  let sid2 =
    Subkernel.register_server sb server (fun ~core _ ->
        seen := Subkernel.current_identity sb ~core;
        Bytes.empty)
  in
  Subkernel.register_client_to_server sb client ~server_id:sid2;
  Kernel.context_switch k ~core:0 client;
  ignore (Subkernel.direct_server_call sb ~core:0 ~client ~server_id:sid2 Bytes.empty);
  Alcotest.(check int) "identity = server during handler" server.Proc.pid !seen;
  Alcotest.(check int) "identity = client after return" client.Proc.pid
    (Subkernel.current_identity sb ~core:0)

let test_direct_call_large_message () =
  let k, sb, client, _, _ = setup () in
  let data = Bytes.init 4096 (fun i -> Char.chr (i land 0xff)) in
  let sid =
    Subkernel.register_server sb (spawn_with_code k "blob")
      (fun ~core:_ msg -> msg)
  in
  Subkernel.register_client_to_server sb client ~server_id:sid;
  Kernel.context_switch k ~core:0 client;
  let reply = Subkernel.direct_server_call sb ~core:0 ~client ~server_id:sid data in
  Alcotest.(check bool) "large payload via shared buffer" true (Bytes.equal data reply);
  Alcotest.(check bool) "copy cycles recorded" true
    ((Subkernel.stats sb).Breakdown.copy > 0)

let test_direct_call_unregistered_rejected () =
  let k, sb, client, _, sid = setup () in
  let other = spawn_with_code k "other" in
  (* [other] never registered to the server. *)
  (try
     ignore (Subkernel.direct_server_call sb ~core:0 ~client:other ~server_id:sid Bytes.empty);
     Alcotest.fail "expected Not_registered"
   with Subkernel.Not_registered _ -> ());
  ignore client

let test_fake_key_rejected () =
  let _, sb, client, _, sid = setup () in
  (try
     ignore
       (Subkernel.direct_server_call sb ~core:0 ~client ~server_id:sid
          ~attack:`Fake_server_key Bytes.empty);
     Alcotest.fail "expected Bad_server_key"
   with Subkernel.Bad_server_key { server_id; _ } ->
     Alcotest.(check int) "server id" sid server_id);
  Alcotest.(check bool) "kernel notified" true
    (List.length (Subkernel.security_events sb) > 0)

let test_corrupt_return_key_rejected () =
  let _, sb, client, _, sid = setup () in
  try
    ignore
      (Subkernel.direct_server_call sb ~core:0 ~client ~server_id:sid
         ~attack:`Corrupt_return_key Bytes.empty);
    Alcotest.fail "expected Bad_client_return"
  with Subkernel.Bad_client_return _ -> ()

let test_timeout_dos_defence () =
  let k, sb, client, _, _ = setup () in
  let hang_sid =
    Subkernel.register_server sb (spawn_with_code k "hog") (fun ~core msg ->
        (* A server that burns far more than the budget. *)
        Kernel.user_compute k ~core ~cycles:1_000_000;
        msg)
  in
  Subkernel.register_client_to_server sb client ~server_id:hang_sid;
  Kernel.context_switch k ~core:0 client;
  try
    ignore
      (Subkernel.direct_server_call sb ~core:0 ~client ~server_id:hang_sid
         ~timeout:10_000 Bytes.empty);
    Alcotest.fail "expected Call_timeout"
  with Subkernel.Call_timeout { elapsed; _ } ->
    Alcotest.(check bool) "elapsed measured" true (elapsed > 10_000)

let test_nested_direct_calls () =
  (* client -> fs -> disk entirely through SkyBridge (dependency EPTs in
     the client's EPTP list). *)
  let k, sb = make () in
  let client = spawn_with_code k "client" in
  let fs = spawn_with_code k "fs" in
  let disk = spawn_with_code k "disk" in
  let disk_sid =
    Subkernel.register_server sb disk (fun ~core:_ _ -> Bytes.of_string "sector")
  in
  (* The FS registers as a client of the disk before serving anyone. *)
  Subkernel.register_client_to_server sb fs ~server_id:disk_sid;
  let fs_sid =
    Subkernel.register_server sb fs ~deps:[ disk_sid ] (fun ~core msg ->
        let b =
          Subkernel.direct_server_call sb ~core ~client:fs ~server_id:disk_sid msg
        in
        Bytes.of_string ("fs:" ^ Bytes.to_string b))
  in
  Subkernel.register_client_to_server sb client ~server_id:fs_sid;
  Kernel.context_switch k ~core:0 client;
  let reply =
    Subkernel.direct_server_call sb ~core:0 ~client ~server_id:fs_sid
      (Bytes.of_string "rd")
  in
  Alcotest.(check string) "nested" "fs:sector" (Bytes.to_string reply);
  (* And the client is back in its own space. *)
  Alcotest.(check int) "identity restored" client.Proc.pid
    (Subkernel.current_identity sb ~core:0)

let test_faked_vmfunc_defence_end_to_end () =
  (* The §7 attack: a malicious process carries its own VMFUNC to jump
     into a victim's space. After registration the instruction is gone,
     so executing the process's code performs no EPTP switch. *)
  let k, sb = make () in
  let attacker = Kernel.spawn k ~name:"attacker" in
  let attack_code =
    Sky_isa.Encode.encode_all
      [ Sky_isa.Insn.Mov_ri (Sky_isa.Reg.Rax, 0L);
        Sky_isa.Insn.Mov_ri (Sky_isa.Reg.Rcx, 1L);
        Sky_isa.Insn.Vmfunc ]
  in
  ignore (Kernel.map_code k attacker attack_code);
  ignore (Subkernel.register_server sb attacker echo);
  (* Execute the (now rewritten) code in the interpreter: no vmfunc
     event may remain. *)
  match Kernel.proc_code_bytes k attacker with
  | [ (_, code) ] ->
    Alcotest.(check int) "pattern erased" 0 (Sky_rewriter.Scan.count_pattern code);
    let st = Sky_isa.Interp.create () in
    Sky_isa.Interp.run st code;
    Alcotest.(check int) "no vmfunc executed" 0 (Sky_isa.Interp.vmfunc_count st)
  | _ -> Alcotest.fail "one region expected"

(* ------------------------------------------------------------------ *)
(* Trampoline page                                                     *)
(* ------------------------------------------------------------------ *)

let test_trampoline_structure () =
  let code = Sky_core.Trampoline.code () in
  let ds = Sky_isa.Decode.decode_all code in
  let insns = List.filter_map (fun d -> d.Sky_isa.Decode.insn) ds in
  (* Every byte decodes (real machine code, no junk). *)
  Alcotest.(check int) "fully decodable" (List.length ds) (List.length insns);
  (* Exactly two VMFUNCs: the call crossing and the return crossing. *)
  let vmfuncs = List.filter (fun i -> i = Sky_isa.Insn.Vmfunc) insns in
  Alcotest.(check int) "two vmfuncs" 2 (List.length vmfuncs);
  (* Saves callee-saved registers up front and returns at the end. *)
  (match insns with
  | Sky_isa.Insn.Push _ :: _ -> ()
  | _ -> Alcotest.fail "must start by saving registers");
  (match List.rev insns with
  | Sky_isa.Insn.Ret :: _ -> ()
  | _ -> Alcotest.fail "must end with ret");
  (* The rewriter's allowed ranges cover exactly the two VMFUNCs. *)
  Alcotest.(check int) "two allowed ranges" 2
    (List.length (Sky_core.Trampoline.vmfunc_ranges code))

let test_trampoline_shared_frame () =
  (* One physical trampoline frame serves every registered process. *)
  let k, sb, client, server, _ = setup () in
  ignore sb;
  let frame_of p =
    match
      Sky_mmu.Page_table.walk ~mem:(Kernel.mem k) ~root_pa:(Proc.cr3 p)
        ~va:Layout.trampoline_va
    with
    | Ok r -> r.Sky_mmu.Page_table.pa
    | Error _ -> Alcotest.fail "trampoline unmapped"
  in
  Alcotest.(check int) "same frame" (frame_of client) (frame_of server)

(* ------------------------------------------------------------------ *)
(* Client isolation                                                    *)
(* ------------------------------------------------------------------ *)

let test_two_clients_isolated () =
  (* Two clients of one server get distinct calling keys, distinct EPTs
     and distinct shared buffers; each sees only its own traffic. *)
  let k, sb = make () in
  let server = spawn_with_code k "server" in
  let seen = ref [] in
  let sid =
    Subkernel.register_server sb server (fun ~core:_ msg ->
        seen := Bytes.to_string msg :: !seen;
        msg)
  in
  let a = spawn_with_code k "a" and b = spawn_with_code k "b" in
  Subkernel.register_client_to_server sb a ~server_id:sid;
  Subkernel.register_client_to_server sb b ~server_id:sid;
  Kernel.context_switch k ~core:0 a;
  ignore (Subkernel.direct_server_call sb ~core:0 ~client:a ~server_id:sid (Bytes.of_string "from-a"));
  Kernel.context_switch k ~core:0 b;
  ignore (Subkernel.direct_server_call sb ~core:0 ~client:b ~server_id:sid (Bytes.of_string "from-b"));
  Alcotest.(check (list string)) "server saw both" [ "from-b"; "from-a" ] !seen;
  (* b never had a's buffer VA mapped: a's first buffer VA must not
     resolve in b's page table. *)
  let buffers_disjoint =
    (* Find a VA mapped in a's space in the SkyBridge buffer window that
       is unmapped in b's. *)
    let rec probe va count =
      if count = 0 then false
      else
        let in_a =
          Sky_mmu.Page_table.walk ~mem:(Kernel.mem k) ~root_pa:(Proc.cr3 a) ~va
        in
        let in_b =
          Sky_mmu.Page_table.walk ~mem:(Kernel.mem k) ~root_pa:(Proc.cr3 b) ~va
        in
        match (in_a, in_b) with
        | Ok _, Error _ -> true
        | _ -> probe (va + 4096) (count - 1)
    in
    probe Layout.skybridge_buffer_va 64
  in
  Alcotest.(check bool) "buffer mappings disjoint" true buffers_disjoint

(* The flagship end-to-end test: the trampoline page the Subkernel maps
   is real machine code — fetch it through the simulated MMU, execute it
   instruction by instruction, and the embedded VMFUNCs really move the
   core into the server's address space and back. *)
let test_trampoline_executes_for_real () =
  let k, sb, client, _server, sid = setup () in
  let vcpu = Kernel.vcpu k ~core:0 in
  let vmcs = Sky_mmu.Vcpu.vmcs_exn vcpu in
  (* Initial registers per the trampoline's calling convention:
     RDI = EPTP index of the server binding (slot 1),
     RSI = a server-side stack top, RDX = a server-only page (the
     calling-key table) whose first word the trampoline loads. *)
  let regs = Array.make 16 0L in
  let proc_stack = Kernel.map_anon k client 4096 in
  let rsp = proc_stack + 4096 - 8 in
  Sky_mmu.Translate.write_u64 vcpu (Kernel.mem k) ~va:rsp
    (Int64.of_int Exec.return_sentinel);
  regs.(Sky_isa.Reg.encoding Sky_isa.Reg.Rsp) <- Int64.of_int rsp;
  regs.(Sky_isa.Reg.encoding Sky_isa.Reg.Rdi) <- 1L;
  regs.(Sky_isa.Reg.encoding Sky_isa.Reg.Rsi) <-
    Int64.of_int (Subkernel.server_stack_va sb ~server_id:sid ~conn:0);
  regs.(Sky_isa.Reg.encoding Sky_isa.Reg.Rdx) <-
    Int64.of_int Subkernel.key_table_va;
  let stop, out = Exec.run k ~core:0 ~entry:Subkernel.trampoline_va ~regs () in
  Alcotest.(check bool) "returned cleanly" true (stop = `Returned);
  (* Evidence the VMFUNC really switched address spaces: R11 was loaded
     from a page mapped ONLY in the server — the key table, whose first
     word is the client's pid. *)
  Alcotest.(check int64) "read server-only memory mid-trampoline"
    (Int64.of_int client.Proc.pid)
    out.(Sky_isa.Reg.encoding Sky_isa.Reg.R11);
  (* ...and the second VMFUNC switched back to slot 0. *)
  Alcotest.(check int) "EPTP back to slot 0" 0 (Sky_mmu.Vmcs.current_index vmcs);
  (* The key table is NOT readable from plain client context. *)
  try
    ignore
      (Sky_mmu.Translate.read_u64 vcpu (Kernel.mem k) ~va:Subkernel.key_table_va);
    Alcotest.fail "key table must not be client-mapped"
  with Sky_mmu.Translate.Page_fault _ -> ()

let test_exec_faked_vmfunc_faults () =
  (* A process executing its own VMFUNC with an unbound index takes the
     hardware VM exit (Invalid_vmfunc) — the §4.4 attack as executed
     code, not just as bytes. *)
  let k, sb = make () in
  let evil = Kernel.spawn k ~name:"evil" in
  let attack =
    Sky_isa.Encode.encode_all
      [ Sky_isa.Insn.Mov_ri (Sky_isa.Reg.Rax, 0L);
        Sky_isa.Insn.Mov_ri (Sky_isa.Reg.Rcx, 3L);
        Sky_isa.Insn.Vmfunc; Sky_isa.Insn.Ret ]
  in
  ignore (Kernel.map_code k evil attack);
  (* NOT registered into SkyBridge: its VMFUNC survives in the binary,
     but the EPTP list has no slot 3 -> VM exit. *)
  ignore sb;
  Kernel.context_switch k ~core:0 evil;
  try
    ignore (Exec.run k ~core:0 ~entry:Layout.code_va ());
    Alcotest.fail "expected Invalid_vmfunc"
  with Sky_mmu.Vmfunc.Invalid_vmfunc _ -> ()

let test_exec_rewritten_attacker_is_inert () =
  (* After registration the same attack code executes to completion
     without any EPTP switch: the rewriter replaced the VMFUNC. *)
  let k, sb = make () in
  let evil = Kernel.spawn k ~name:"evil" in
  ignore
    (Kernel.map_code k evil
       (Sky_isa.Encode.encode_all
          [ Sky_isa.Insn.Mov_ri (Sky_isa.Reg.Rax, 0L);
            Sky_isa.Insn.Mov_ri (Sky_isa.Reg.Rcx, 1L);
            Sky_isa.Insn.Vmfunc;
            Sky_isa.Insn.Mov_ri (Sky_isa.Reg.Rbx, 77L);
            Sky_isa.Insn.Ret ]));
  ignore (Subkernel.register_server sb evil echo);
  Kernel.context_switch k ~core:0 evil;
  let vmcs = Sky_mmu.Vcpu.vmcs_exn (Kernel.vcpu k ~core:0) in
  let stop, out = Exec.run k ~core:0 ~entry:Layout.code_va () in
  Alcotest.(check bool) "ran to completion" true (stop = `Returned);
  Alcotest.(check int64) "code after the erased vmfunc still ran" 77L
    out.(Sky_isa.Reg.encoding Sky_isa.Reg.Rbx);
  Alcotest.(check int) "no EPTP switch happened" 0 (Sky_mmu.Vmcs.current_index vmcs)

let test_exec_nx_enforced () =
  (* W^X for real: executing from a data page faults at fetch. *)
  let k, sb = make () in
  ignore sb;
  let p = Kernel.spawn k ~name:"p" in
  let data_va = Kernel.map_anon k p 4096 in
  Kernel.context_switch k ~core:0 p;
  (* Write valid code bytes into the RW (hence NX-fetchable?) page: our
     urw mapping is executable unless nx; use the loader's Data kind to
     get a proper NX page. *)
  Sky_mmu.Page_table.protect p.Proc.page_table ~mem:(Kernel.mem k) ~va:data_va
    ~flags:{ Sky_mmu.Pte.urw with Sky_mmu.Pte.nx = true };
  try
    ignore (Exec.run k ~core:0 ~entry:data_va ());
    Alcotest.fail "expected NX fetch fault"
  with Sky_mmu.Translate.Page_fault _ -> ()

let test_meltdown_isolation () =
  (* §7: "SkyBridge can also defeat such attack since it still puts
     different processes into different page tables." A VA mapped in A's
     space must not resolve in B's — with or without SkyBridge. *)
  let k, sb = make () in
  let a = spawn_with_code k "a" and b = spawn_with_code k "b" in
  let secret_va = Kernel.map_anon k a 4096 in
  ignore (Subkernel.register_server sb a echo);
  ignore (Subkernel.register_server sb b echo);
  Kernel.context_switch k ~core:0 b;
  Sky_mmu.Vcpu.set_mode (Kernel.vcpu k ~core:0) Sky_mmu.Vcpu.User;
  (try
     ignore
       (Sky_mmu.Translate.read_u64 (Kernel.vcpu k ~core:0) (Kernel.mem k)
          ~va:secret_va);
     Alcotest.fail "B must not read A's heap"
   with Sky_mmu.Translate.Page_fault _ -> ());
  (* And A still can. *)
  Kernel.context_switch k ~core:0 a;
  ignore
    (Sky_mmu.Translate.read_u64 (Kernel.vcpu k ~core:0) (Kernel.mem k)
       ~va:secret_va)

(* ------------------------------------------------------------------ *)
(* Context switching and EPTP lists                                    *)
(* ------------------------------------------------------------------ *)

let test_context_switch_installs_list () =
  let k, sb, client, _, sid = setup () in
  ignore sid;
  let root = Subkernel.rootkernel sb in
  let before = Rootkernel.exits_of root Sky_mmu.Vmcs.Exit_vmcall in
  let other = spawn_with_code k "bystander" in
  Kernel.context_switch k ~core:0 other;
  Kernel.context_switch k ~core:0 client;
  (* Switching to the registered client must VMCALL to install its EPTP
     list. *)
  Alcotest.(check bool) "vmcalls happened" true
    (Rootkernel.exits_of root Sky_mmu.Vmcs.Exit_vmcall > before)

let test_unregistered_switches_no_exits () =
  let k, sb = make () in
  let a = Kernel.spawn k ~name:"a" and b = Kernel.spawn k ~name:"b" in
  let root = Subkernel.rootkernel sb in
  Kernel.context_switch k ~core:0 a;
  Kernel.context_switch k ~core:0 b;
  Kernel.context_switch k ~core:0 a;
  Alcotest.(check int) "Table 5: zero VM exits without SkyBridge users" 0
    (Rootkernel.total_vm_exits root)

(* ------------------------------------------------------------------ *)
(* EPTP-list eviction (§10 extension)                                  *)
(* ------------------------------------------------------------------ *)

let test_eptp_eviction () =
  (* max_eptp = 4: slot 0 + 3 bindings fit; the 4th server forces LRU
     eviction. *)
  let k, sb = make ~max_eptp:4 () in
  let client = spawn_with_code k "client" in
  let sids =
    List.init 5 (fun i ->
        let s = spawn_with_code k (Printf.sprintf "srv%d" i) in
        let sid = Subkernel.register_server sb s echo in
        Subkernel.register_client_to_server sb client ~server_id:sid;
        sid)
  in
  Kernel.context_switch k ~core:0 client;
  List.iter
    (fun sid ->
      let r = Subkernel.direct_server_call sb ~core:0 ~client ~server_id:sid (Bytes.create 4) in
      Alcotest.(check int) "call works" 4 (Bytes.length r))
    sids;
  Alcotest.(check bool) "evictions happened" true (Subkernel.evictions sb > 0);
  (* Calling all servers round-robin keeps working under thrash. *)
  for _ = 1 to 3 do
    List.iter
      (fun sid ->
        ignore (Subkernel.direct_server_call sb ~core:0 ~client ~server_id:sid (Bytes.create 4)))
      sids
  done

let test_eptp_slot_reuse () =
  (* max_eptp = 4: slot 0 (own EPT) + 3 binding slots. Binding 6 servers
     must recycle slots rather than grow the list, with every eviction
     charged to this process. *)
  let k, sb = make ~max_eptp:4 () in
  let client = spawn_with_code k "client" in
  let sids =
    List.init 6 (fun i ->
        let s = spawn_with_code k (Printf.sprintf "srv%d" i) in
        let sid = Subkernel.register_server sb s echo in
        Subkernel.register_client_to_server sb client ~server_id:sid;
        sid)
  in
  Kernel.context_switch k ~core:0 client;
  (* Touch every binding once: the first 3 are already installed; each
     of the last 3 must steal a slot (eviction is lazy, at call time). *)
  List.iter
    (fun sid ->
      ignore
        (Subkernel.direct_server_call sb ~core:0 ~client ~server_id:sid
           (Bytes.create 4)))
    sids;
  Alcotest.(check bool) "slots bounded by max_eptp" true
    (List.length (Subkernel.installed_servers sb client) <= 3);
  Alcotest.(check int) "evictions = calls beyond the slot budget" 3
    (Subkernel.process_evictions sb client);
  Alcotest.(check int) "all evictions charged to this process"
    (Subkernel.evictions sb)
    (Subkernel.process_evictions sb client);
  (* The survivors are the 3 most recently called; the early ones were
     recycled out. *)
  List.iteri
    (fun i sid ->
      Alcotest.(check bool)
        (Printf.sprintf "srv%d slot state" i)
        (i >= 3)
        (List.mem sid (Subkernel.installed_servers sb client)))
    sids

let test_eptp_lru_never_evicts_recent () =
  (* 3 binding slots, servers a b c bound in that order; calling [a]
     refreshes it, so binding [d] must evict [b] (the LRU), never the
     just-touched [a]. *)
  let k, sb = make ~max_eptp:4 () in
  let client = spawn_with_code k "client" in
  let bind name =
    let s = spawn_with_code k name in
    let sid = Subkernel.register_server sb s echo in
    Subkernel.register_client_to_server sb client ~server_id:sid;
    sid
  in
  let a = bind "a" and b = bind "b" and c = bind "c" in
  Kernel.context_switch k ~core:0 client;
  ignore (Subkernel.direct_server_call sb ~core:0 ~client ~server_id:a (Bytes.create 4));
  let d = bind "d" in
  (* The 4th binding takes no slot until it is called; the call must
     evict the least-recently-used binding [b], not the just-touched
     [a]. *)
  ignore (Subkernel.direct_server_call sb ~core:0 ~client ~server_id:d (Bytes.create 4));
  let installed = Subkernel.installed_servers sb client in
  Alcotest.(check bool) "recently-called a survives" true (List.mem a installed);
  Alcotest.(check bool) "LRU b evicted" false (List.mem b installed);
  Alcotest.(check bool) "c survives" true (List.mem c installed);
  Alcotest.(check bool) "new d installed" true (List.mem d installed);
  Alcotest.(check int) "exactly one eviction" 1 (Subkernel.process_evictions sb client);
  (* The evicted binding still serves — degraded to the slowpath. *)
  match Subkernel.call sb ~core:0 ~client ~server_id:b (Bytes.create 4) with
  | Ok (r, _) -> Alcotest.(check int) "b still answers" 4 (Bytes.length r)
  | Error _ -> Alcotest.fail "evicted binding must degrade, not fail"

let test_max_bindings_global_budget () =
  (* Global budget of 4 live fast-path bindings across 6 single-binding
     clients: the least-recently-calling processes are retired to
     slowpath, nothing fails. *)
  let k, sb = make ~max_eptp:8 ~max_bindings:4 () in
  let server = spawn_with_code k "server" in
  let sid = Subkernel.register_server sb server ~connection_count:8 echo in
  let clients =
    List.init 6 (fun i ->
        let c = spawn_with_code k (Printf.sprintf "cl%d" i) in
        Subkernel.register_client_to_server sb c ~server_id:sid;
        Kernel.context_switch k ~core:0 c;
        ignore (Subkernel.direct_server_call sb ~core:0 ~client:c ~server_id:sid
                  (Bytes.create 4));
        c)
  in
  Alcotest.(check bool) "slot evictions happened" true
    (Subkernel.slot_evictions sb > 0);
  Alcotest.(check bool) "live bindings within budget" true
    (Subkernel.live_bindings sb <= 4);
  (* The first (least-recently-calling) client was retired: its call
     comes back correct via the slowpath. *)
  let c0 = List.hd clients in
  Kernel.context_switch k ~core:0 c0;
  (match Subkernel.call sb ~core:0 ~client:c0 ~server_id:sid (Bytes.create 4) with
  | Ok (r, `Slowpath) -> Alcotest.(check int) "slowpath echo" 4 (Bytes.length r)
  | Ok (_, `Direct) -> Alcotest.fail "retired tenant must be on the slowpath"
  | Error _ -> Alcotest.fail "retired tenant must degrade, not fail");
  (* The most recent client still calls direct. *)
  let c5 = List.nth clients 5 in
  Kernel.context_switch k ~core:0 c5;
  match Subkernel.call sb ~core:0 ~client:c5 ~server_id:sid (Bytes.create 4) with
  | Ok (_, `Direct) -> ()
  | Ok (_, `Slowpath) -> Alcotest.fail "recent tenant should still be fast"
  | Error _ -> Alcotest.fail "recent tenant must not fail"

(* ------------------------------------------------------------------ *)
(* W^X rescanning (§9 extension)                                       *)
(* ------------------------------------------------------------------ *)

let test_wx_rescan () =
  let k, sb = make () in
  let jit = Kernel.spawn k ~name:"jit" in
  ignore (Kernel.map_code k jit (Bytes.make 4096 '\x90'));
  ignore (Subkernel.register_server sb jit echo);
  Alcotest.(check bool) "clean initially" true (Subkernel.proc_is_clean sb jit);
  (* JIT phase: make writable, emit code containing a VMFUNC. *)
  Subkernel.make_code_writable sb jit;
  Kernel.write_code k jit ~va:Layout.code_va
    (Sky_isa.Encode.encode_all [ Sky_isa.Insn.Vmfunc; Sky_isa.Insn.Ret ]);
  Alcotest.(check bool) "dirty while writable" false (Subkernel.proc_is_clean sb jit);
  (* Remap executable: the Subkernel rescans and rewrites. *)
  Subkernel.restore_code_executable sb jit;
  Alcotest.(check bool) "clean after rescan" true (Subkernel.proc_is_clean sb jit);
  (* And the page is executable again. *)
  match
    Sky_mmu.Page_table.walk ~mem:(Kernel.mem k) ~root_pa:(Proc.cr3 jit)
      ~va:Layout.code_va
  with
  | Ok r -> Alcotest.(check bool) "exec" false r.Sky_mmu.Page_table.flags.Sky_mmu.Pte.nx
  | Error _ -> Alcotest.fail "mapped"

(* ------------------------------------------------------------------ *)
(* VPID ablation                                                       *)
(* ------------------------------------------------------------------ *)

let test_vpid_off_is_slower () =
  let measure vpid =
    let k, sb, client, _, sid = setup ~vpid () in
    let va = Kernel.map_anon k client 4096 in
    let vcpu = Kernel.vcpu k ~core:0 in
    Sky_mmu.Vcpu.set_mode vcpu Sky_mmu.Vcpu.User;
    let c = Kernel.cpu k ~core:0 in
    (* Steady state: call + touch own data each iteration. *)
    for _ = 1 to 3 do
      ignore (Subkernel.direct_server_call sb ~core:0 ~client ~server_id:sid (Bytes.create 8));
      ignore (Sky_mmu.Translate.read_u64 vcpu (Kernel.mem k) ~va)
    done;
    let t0 = Cpu.cycles c in
    for _ = 1 to 10 do
      ignore (Subkernel.direct_server_call sb ~core:0 ~client ~server_id:sid (Bytes.create 8));
      ignore (Sky_mmu.Translate.read_u64 vcpu (Kernel.mem k) ~va)
    done;
    Cpu.cycles c - t0
  in
  let with_vpid = measure true and without = measure false in
  Alcotest.(check bool)
    (Printf.sprintf "vpid on (%d) < vpid off (%d)" with_vpid without)
    true (with_vpid < without)

let () =
  Alcotest.run "core"
    [
      ( "rootkernel",
        [
          Alcotest.test_case "boot reserves memory" `Quick test_boot_reserves_memory;
          Alcotest.test_case "all cores virtualized" `Quick test_boot_virtualizes_all_cores;
          Alcotest.test_case "CPUID exits" `Quick test_cpuid_exits;
          Alcotest.test_case "EPT violation fatal" `Quick test_ept_violation_fatal;
        ] );
      ( "registration",
        [
          Alcotest.test_case "trampoline mapped RX" `Quick test_register_maps_trampoline;
          Alcotest.test_case "binary rewritten" `Quick test_register_rewrites_binary;
          Alcotest.test_case "client binding" `Quick test_register_client_builds_ept;
        ] );
      ( "direct_call",
        [
          Alcotest.test_case "roundtrip ~396 cycles" `Quick test_direct_call_roundtrip_cost;
          Alcotest.test_case "no kernel, no VM exits" `Quick
            test_direct_call_no_kernel_no_exit;
          Alcotest.test_case "address space + identity" `Quick
            test_direct_call_switches_address_space;
          Alcotest.test_case "large message via shared buffer" `Quick
            test_direct_call_large_message;
          Alcotest.test_case "nested calls (client->fs->disk)" `Quick
            test_nested_direct_calls;
        ] );
      ( "security",
        [
          Alcotest.test_case "unregistered client rejected" `Quick
            test_direct_call_unregistered_rejected;
          Alcotest.test_case "fake server key rejected" `Quick test_fake_key_rejected;
          Alcotest.test_case "corrupt return key rejected" `Quick
            test_corrupt_return_key_rejected;
          Alcotest.test_case "timeout DoS defence" `Quick test_timeout_dos_defence;
          Alcotest.test_case "faked VMFUNC neutered end-to-end" `Quick
            test_faked_vmfunc_defence_end_to_end;
          Alcotest.test_case "Meltdown-style isolation (SS7)" `Quick
            test_meltdown_isolation;
        ] );
      ( "trampoline",
        [
          Alcotest.test_case "structure" `Quick test_trampoline_structure;
          Alcotest.test_case "EXECUTES for real (VMFUNC switches spaces)" `Quick
            test_trampoline_executes_for_real;
          Alcotest.test_case "faked VMFUNC faults when executed" `Quick
            test_exec_faked_vmfunc_faults;
          Alcotest.test_case "rewritten attacker runs inert" `Quick
            test_exec_rewritten_attacker_is_inert;
          Alcotest.test_case "NX fetch enforced" `Quick test_exec_nx_enforced;
          Alcotest.test_case "shared frame" `Quick test_trampoline_shared_frame;
          Alcotest.test_case "two clients isolated" `Quick test_two_clients_isolated;
        ] );
      ( "eptp_lists",
        [
          Alcotest.test_case "context switch installs list" `Quick
            test_context_switch_installs_list;
          Alcotest.test_case "Table 5: no exits w/o SkyBridge" `Quick
            test_unregistered_switches_no_exits;
          Alcotest.test_case "LRU eviction beyond max" `Quick test_eptp_eviction;
          Alcotest.test_case "slot reuse bounded by max_eptp" `Quick
            test_eptp_slot_reuse;
          Alcotest.test_case "LRU never evicts recently-touched" `Quick
            test_eptp_lru_never_evicts_recent;
          Alcotest.test_case "global max_bindings retires LRU process" `Quick
            test_max_bindings_global_budget;
        ] );
      ( "extensions",
        [
          Alcotest.test_case "W^X rescan" `Quick test_wx_rescan;
          Alcotest.test_case "VPID ablation" `Quick test_vpid_off_is_slower;
        ] );
    ]
