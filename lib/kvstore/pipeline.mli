(** The three-process KV pipeline of Figure 1 (client → RC4 encryption
    server → KV store), wired over every interconnect of Figures 2/8:

    - [Baseline]: one address space, plain function calls;
    - [Delay]: function calls plus a 986-cycle busy-wait per server call
      (the direct cost of one IPC roundtrip) — isolating IPC's
      {e indirect} cost as the remaining gap to [Ipc_local] (§2.1.2);
    - [Ipc_local] / [Ipc_cross]: separate processes over the kernel's
      synchronous IPC, servers co-located or pinned to other cores;
    - [Skybridge]: separate processes over [direct_server_call]. *)

type config = Baseline | Delay | Ipc_local | Ipc_cross | Skybridge

val config_name : config -> string

type t

val create :
  ?sb:Sky_core.Subkernel.t ->
  ?ipc:Sky_kernels.Ipc.t ->
  ?mesh:Sky_mesh.Mesh.t ->
  ?resilient:bool ->
  Sky_ukernel.Kernel.t ->
  config ->
  t
(** Builds the processes, servers and client-side working sets.
    [Skybridge] requires [~sb]; the IPC configs create their own
    {!Sky_kernels.Ipc.t} unless one is passed. With [resilient] (default
    false) the Skybridge client wraps every server call in
    {!Sky_core.Retry.call}: bounded retry with exponential backoff,
    server restart on crash, slowpath degradation on revocation. With
    [mesh] the Skybridge servers register as [enc://] and [kv://] with
    the name service and the client calls by URI under
    capability-granted bindings — the service-mesh wiring of the
    composed scenarios (the default flat wiring is kept for the pinned
    Figure 2/8 measurements). *)

val retry_stats : t -> Sky_core.Retry.stats option
(** The shared retry census when built with [~resilient:true]. *)

val insert : t -> core:int -> len:int -> unit
(** One insert: compose a [len]-byte key and value, encrypt via the
    encryption server, store the ciphertext in the KV server. *)

exception Corrupt_pipeline of string

val query : t -> core:int -> len:int -> unit
(** One query of a previously inserted key: fetch ciphertext, decrypt,
    and verify the plaintext matches what {!insert} stored — every run is
    a data-integrity check of the whole interconnect.
    @raise Corrupt_pipeline on mismatch. *)

val run : t -> core:int -> ops:int -> len:int -> int
(** The §2.1.2 workload (50% insert / 50% query); returns the average
    latency per operation in cycles. *)

val client_compute : int
val direct_ipc_roundtrip : int
