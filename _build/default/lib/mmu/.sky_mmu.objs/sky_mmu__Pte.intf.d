lib/mmu/pte.mli:
