(** SQLite3-like storage engine facade: one keyed table in an FS file,
    with a rollback-journal file protecting every write transaction and
    an exclusive writer lock held across each statement.

    This is the shape that makes the paper's evaluation behave:
    Insert/Update/Delete run a full journal cycle — header write,
    original-page image write, table page write(s), header reset — each
    an FS call, each FS call a logged multi-block disk transaction, each
    boundary crossing an IPC; Query is served almost entirely from the
    pager's internal page cache ("the SQLite3 has an internal cache to
    handle the recent read requests, which thus avoids a large number of
    IPC operations", §6.5). *)

type t

val sql_compute_cycles : int
(** Per-statement SQL-layer work (parse/plan/pack), charged inside the
    transaction. Calibration documented in EXPERIMENTS.md. *)

val query_compute_cycles : int

val create :
  Sky_ukernel.Kernel.t ->
  Sky_xv6fs.Fs_iface.t ->
  core:int ->
  name:string ->
  value_size:int ->
  t
(** Create the table file and its journal on the given FS view. *)

val open_ :
  Sky_ukernel.Kernel.t -> Sky_xv6fs.Fs_iface.t -> core:int -> name:string -> t
(** Opens the table, first rolling back any hot journal (a transaction
    that died mid-write) — SQLite's crash-recovery behaviour. *)

val insert : t -> core:int -> key:int -> value:bytes -> unit
val update : t -> core:int -> key:int -> value:bytes -> bool
val query : t -> core:int -> key:int -> bytes option
val delete : t -> core:int -> key:int -> bool

val count : t -> int
val pager : t -> Pager.t
val tree : t -> Btree.t

val name : t -> string
(** The table name the database was created with. *)
