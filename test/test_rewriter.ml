(* Tests for the VMFUNC scanner and the Table-3 rewriting strategies,
   including interpreter-checked semantic equivalence of rewrites. *)

open Sky_isa
open Sky_rewriter

let bytes_of_insns l = Encode.encode_all l

(* ------------------------------------------------------------------ *)
(* Scanner                                                             *)
(* ------------------------------------------------------------------ *)

let test_find_pattern () =
  let code = Bytes.of_string "\x90\x0f\x01\xd4\x90\x0f\x01\xd4" in
  Alcotest.(check (list int)) "offsets" [ 1; 5 ] (Scan.find_pattern code);
  Alcotest.(check int) "count" 2 (Scan.count_pattern code)

let test_scan_c1 () =
  let code = bytes_of_insns [ Insn.Nop; Insn.Vmfunc; Insn.Ret ] in
  match Scan.scan code with
  | [ { Scan.case = Scan.C1_vmfunc; at = 1; _ } ] -> ()
  | occs ->
    Alcotest.failf "expected one C1, got [%s]"
      (String.concat "; " (List.map (fun o -> Scan.case_name o.Scan.case) occs))

let test_scan_c3_modrm () =
  (* imul $0xD401, (rdi), rcx — ModRM = 0x0F (paper Table 3 row 2). *)
  let code =
    bytes_of_insns [ Insn.Imul_rri (Reg.Rcx, Insn.M (Insn.mem ~base:Reg.Rdi ()), 0xD401) ]
  in
  match Scan.scan code with
  | [ { Scan.case = Scan.C3_embedded Scan.In_modrm; _ } ] -> ()
  | occs ->
    Alcotest.failf "expected C3(modrm), got [%s]"
      (String.concat "; " (List.map (fun o -> Scan.case_name o.Scan.case) occs))

let test_scan_c3_sib () =
  let code =
    bytes_of_insns
      [ Insn.Lea (Reg.Rbx, Insn.mem ~base:Reg.Rdi ~index:(Reg.Rcx, 1) ~disp:0xD401 ()) ]
  in
  match Scan.scan code with
  | [ { Scan.case = Scan.C3_embedded Scan.In_sib; _ } ] -> ()
  | occs ->
    Alcotest.failf "expected C3(sib), got %d others" (List.length occs)

let test_scan_c3_disp () =
  let code = bytes_of_insns [ Insn.Add_rm (Reg.Rbx, Insn.mem ~base:Reg.Rax ~disp:0xD4010F ()) ] in
  match Scan.scan code with
  | [ { Scan.case = Scan.C3_embedded Scan.In_disp; _ } ] -> ()
  | _ -> Alcotest.fail "expected C3(disp)"

let test_scan_c3_imm () =
  let code = bytes_of_insns [ Insn.Add_ri (Reg.Rax, 0xD4010F) ] in
  match Scan.scan code with
  | [ { Scan.case = Scan.C3_embedded Scan.In_imm; _ } ] -> ()
  | _ -> Alcotest.fail "expected C3(imm)"

(* An instruction ending in 0F followed by bytes 01 D4: the pattern spans
   an instruction boundary. *)
let c2_program =
  let first = (Encode.encode (Insn.Add_ri (Reg.Rbx, 0x0F000000))).Encode.bytes in
  (* "01 d4" decodes as add rsp, rdx in our (always-64-bit) subset. *)
  Bytes.of_string (first ^ "\x01\xd4")

let test_scan_c2 () =
  match Scan.scan c2_program with
  | [ { Scan.case = Scan.C2_spanning; span; _ } ] ->
    Alcotest.(check int) "two instructions in span" 2 (List.length span)
  | _ -> Alcotest.fail "expected C2"

let test_scan_clean_code () =
  let code = bytes_of_insns [ Insn.Nop; Insn.Syscall; Insn.Add_ri (Reg.Rax, 5) ] in
  Alcotest.(check int) "no occurrences" 0 (List.length (Scan.scan code))

(* ------------------------------------------------------------------ *)
(* Rewriting: cleanliness + semantic equivalence                       *)
(* ------------------------------------------------------------------ *)

let code_va = 0x2000

(* Lay the rewrite result out in one flat buffer: [0x1000, rewrite page),
   then the code at [code_va]. The interpreter runs both the original and
   rewritten versions from [code_va] and must reach the same final
   state. *)
let flat ~code ~page =
  let total = code_va + Bytes.length code in
  let buf = Bytes.make total '\x00' in
  Bytes.blit page 0 buf Rewrite.rewrite_page_va (Bytes.length page);
  Bytes.blit code 0 buf code_va (Bytes.length code);
  buf

let init_state () =
  let st = Interp.create () in
  List.iter
    (fun r -> Interp.set st r 0x100000L)
    [ Reg.Rax; Reg.Rcx; Reg.Rdx; Reg.Rbx; Reg.Rsi; Reg.Rdi; Reg.R8; Reg.R9;
      Reg.R10; Reg.R11; Reg.R12; Reg.R13; Reg.R14; Reg.R15 ];
  st

let non_stack_mem st =
  Hashtbl.fold
    (fun a v acc -> if v <> 0 && a < 0x6000_0000 then (a, v) :: acc else acc)
    st.Interp.mem []
  |> List.sort compare

let run_flat buf =
  let st = init_state () in
  st.Interp.ip <- code_va;
  Interp.run ~max_steps:100_000 st buf;
  st

(* Check: rewritten code is pattern-free and behaves identically
   (registers, events, non-stack memory). *)
let check_equiv ?(expect_vmfunc_events = 0) code =
  let r = Rewrite.rewrite ~code_va code in
  let all = Bytes.cat r.Rewrite.code r.Rewrite.rewrite_page in
  Alcotest.(check int) "no pattern anywhere after rewrite" 0
    (Scan.count_pattern all);
  let orig = run_flat (flat ~code ~page:(Bytes.create 0)) in
  let rewr = run_flat (flat ~code:r.Rewrite.code ~page:r.Rewrite.rewrite_page) in
  Alcotest.(check int) "original executes the inadvertent vmfuncs"
    expect_vmfunc_events (Interp.vmfunc_count orig);
  Alcotest.(check int) "rewritten executes no vmfunc" 0 (Interp.vmfunc_count rewr);
  (* Registers: all 16 must match. *)
  List.iter
    (fun reg ->
      Alcotest.(check int64)
        (Printf.sprintf "reg %s" (Reg.name reg))
        (Interp.get orig reg) (Interp.get rewr reg))
    Reg.all;
  Alcotest.(check (list (pair int int)))
    "non-stack memory identical" (non_stack_mem orig) (non_stack_mem rewr)

let test_rewrite_c1 () =
  let code = bytes_of_insns [ Insn.Mov_ri (Reg.Rax, 3L); Insn.Vmfunc; Insn.Add_ri (Reg.Rax, 4) ] in
  (* C1: the vmfunc itself disappears (3 NOPs) — the rewritten program
     must NOT execute it, which is exactly the defence. *)
  let r = Rewrite.rewrite ~code_va code in
  Alcotest.(check int) "patched one occurrence" 1 r.Rewrite.patched;
  Alcotest.(check int) "clean" 0 (Scan.count_pattern r.Rewrite.code);
  Alcotest.(check int) "same length" (Bytes.length code) (Bytes.length r.Rewrite.code);
  let rewr = run_flat (flat ~code:r.Rewrite.code ~page:r.Rewrite.rewrite_page) in
  Alcotest.(check int) "no vmfunc executed" 0 (Interp.vmfunc_count rewr);
  Alcotest.(check int64) "rest of program intact" 7L (Interp.get rewr Reg.Rax)

let test_rewrite_table3_row2_modrm () =
  check_equiv
    (bytes_of_insns
       [ Insn.Mov_ri (Reg.Rdi, 0x3000L);
         Insn.Mov_ri (Reg.Rax, 11L);
         Insn.Mov_store (Insn.mem ~base:Reg.Rdi (), Reg.Rax);
         Insn.Imul_rri (Reg.Rcx, Insn.M (Insn.mem ~base:Reg.Rdi ()), 0xD401);
         Insn.Add_rr (Reg.Rbx, Reg.Rcx) ])

let test_rewrite_table3_row3_sib () =
  check_equiv
    (bytes_of_insns
       [ Insn.Mov_ri (Reg.Rdi, 0x4000L);
         Insn.Mov_ri (Reg.Rcx, 0x40L);
         Insn.Lea (Reg.Rbx, Insn.mem ~base:Reg.Rdi ~index:(Reg.Rcx, 1) ~disp:0xD401 ()) ])

let test_rewrite_table3_row4_disp () =
  check_equiv
    (bytes_of_insns
       [ Insn.Mov_ri (Reg.Rax, 0x3000L);
         Insn.Mov_ri (Reg.Rcx, 21L);
         Insn.Mov_store (Insn.mem ~base:Reg.Rax ~disp:0xD4010F (), Reg.Rcx);
         Insn.Add_rm (Reg.Rbx, Insn.mem ~base:Reg.Rax ~disp:0xD4010F ()) ])

let test_rewrite_table3_row4_disp_clobbered_base () =
  (* The instruction overwrites its own base register: the in-place
     add/sub strategy would corrupt it, so the scratch path must kick
     in. *)
  check_equiv
    (bytes_of_insns
       [ Insn.Mov_ri (Reg.Rax, 0x3000L);
         Insn.Mov_ri (Reg.Rcx, 9L);
         Insn.Mov_store (Insn.mem ~base:Reg.Rax ~disp:0xD4010F (), Reg.Rcx);
         Insn.Mov_load (Reg.Rax, Insn.mem ~base:Reg.Rax ~disp:0xD4010F ()) ])

let test_rewrite_table3_row5_imm_add () =
  check_equiv (bytes_of_insns [ Insn.Add_ri (Reg.Rax, 0xD4010F) ])

let test_rewrite_table3_row5_imm_mov () =
  check_equiv (bytes_of_insns [ Insn.Mov_ri (Reg.Rbx, 0xD4010FL) ])

let test_rewrite_table3_row5_imm_imul () =
  check_equiv
    (bytes_of_insns
       [ Insn.Mov_ri (Reg.Rsi, 3L); Insn.Imul_rri (Reg.Rdx, Insn.R Reg.Rsi, 0xD4010F) ])

let test_rewrite_jump_like () =
  (* A call whose offset contains the pattern (the GIMP case, §6.7). The
     callee is reached through the rewrite page; behaviour must be
     preserved. *)
  let call = Insn.Call_rel 0x00D4010F in
  let call_len = Encode.length call in
  ignore call_len;
  (* Build: call +pad ; mov rcx, 1 ; jmp end ; <pad nops> ; callee ; end *)
  let callee = [ Insn.Mov_ri (Reg.Rbx, 55L); Insn.Ret ] in
  let mid = [ Insn.Mov_ri (Reg.Rcx, 1L) ] in
  let mid_len = List.fold_left (fun a i -> a + Encode.length i) 0 mid in
  let callee_len = List.fold_left (fun a i -> a + Encode.length i) 0 callee in
  (* call target must be exactly 0x00D4010F past the call... that is far
     outside the buffer; instead verify rewrite keeps the *offset value*:
     we cannot execute a 13MiB jump, so execute a nearby variant whose
     offset bytes still embed 0F 01 D4? Any rel with those three bytes is
     >= 0x0001010F, still too far. So for the executable test use a
     pattern in the *immediate of a mov* before the call, and separately
     check the pure relink arithmetic of a pattern-bearing call. *)
  ignore (mid_len, callee_len);
  let code = bytes_of_insns [ call ] in
  let r = Rewrite.rewrite ~code_va code in
  let all = Bytes.cat r.Rewrite.code r.Rewrite.rewrite_page in
  Alcotest.(check int) "clean" 0 (Scan.count_pattern all);
  (* The relocated call in the rewrite page must target the original
     va: original target = code_va + 5 + 0x00D4010F. Find the E8 in the
     page and check. *)
  let page = r.Rewrite.rewrite_page in
  let found = ref false in
  List.iter
    (fun d ->
      match d.Decode.insn with
      | Some (Insn.Call_rel rel) ->
        let target = Rewrite.rewrite_page_va + d.Decode.off + d.Decode.len + rel in
        Alcotest.(check int) "relinked target" (code_va + 5 + 0x00D4010F) target;
        found := true
      | _ -> ())
    (Decode.decode_all page);
  Alcotest.(check bool) "call moved to rewrite page" true !found

let test_rewrite_c2 () =
  let code = c2_program in
  let r = Rewrite.rewrite ~code_va code in
  let all = Bytes.cat r.Rewrite.code r.Rewrite.rewrite_page in
  Alcotest.(check int) "clean" 0 (Scan.count_pattern all);
  (* Execute both. *)
  let orig = run_flat (flat ~code ~page:(Bytes.create 0)) in
  let rewr = run_flat (flat ~code:r.Rewrite.code ~page:r.Rewrite.rewrite_page) in
  List.iter
    (fun reg ->
      Alcotest.(check int64) (Reg.name reg) (Interp.get orig reg) (Interp.get rewr reg))
    [ Reg.Rbx; Reg.Rsp; Reg.Rdx ]

let test_rewrite_allowed_range () =
  (* A vmfunc inside the allowed (trampoline) range is preserved. *)
  let code = bytes_of_insns [ Insn.Vmfunc; Insn.Nop; Insn.Vmfunc ] in
  let r = Rewrite.rewrite ~code_va ~allowed:[ (0, 3) ] code in
  Alcotest.(check int) "one occurrence left (the allowed one)" 1
    (Scan.count_pattern r.Rewrite.code);
  Alcotest.(check (list int)) "it is the trampoline one" [ 0 ]
    (Scan.find_pattern r.Rewrite.code);
  Alcotest.(check bool) "clean modulo allowed" true
    (Rewrite.clean ~allowed:[ (0, 3) ] r.Rewrite.code)

let test_rewrite_idempotent_on_clean () =
  let code = bytes_of_insns [ Insn.Mov_ri (Reg.Rax, 1L); Insn.Ret ] in
  let r = Rewrite.rewrite ~code_va code in
  Alcotest.(check int) "nothing to patch" 0 r.Rewrite.patched;
  Alcotest.(check bool) "bytes untouched" true (Bytes.equal code r.Rewrite.code)

(* ------------------------------------------------------------------ *)
(* Negative paths: inputs the rewriter must refuse, not mangle         *)
(* ------------------------------------------------------------------ *)

let check_rewrite_fails ~msg code =
  match Rewrite.rewrite ~code_va code with
  | _ -> Alcotest.failf "expected Rewrite_failed (%s)" msg
  | exception Rewrite.Rewrite_failed m ->
    Alcotest.(check string) "failure reason" msg m

let test_fail_undecodable_carrier () =
  (* C7 /1 does not exist in the subset: the instruction has a known
     length (opcode+modrm+imm32) but no semantics, and the pattern sits
     in its immediate. *)
  check_rewrite_fails ~msg:"pattern inside undecodable instruction"
    (Bytes.of_string "\xc7\xc8\x0f\x01\xd4\x00")

let test_fail_no_memory_operand () =
  (* Multi-byte NOP with the pattern in its displacement: the disp
     strategy needs a memory operand to split, and NOP has none. *)
  check_rewrite_fails ~msg:"instruction has no memory operand"
    (Bytes.of_string "\x0f\x1f\x80\x0f\x01\xd4\x00")

let test_fail_span_at_end_of_code () =
  (* A C2 occurrence whose span cannot grow to 5 bytes (jump size)
     because the code ends right after it. *)
  check_rewrite_fails ~msg:"span too short at end of code"
    (Bytes.of_string "\x01\x0f\x01\xd4")

let test_prefixed_vmfunc_rewrites_as_c1 () =
  (* A redundant-prefix VMFUNC encoding (66 0F 01 D4) still carries the
     raw pattern; C1 NOPs out the whole instruction, prefix included. *)
  let code = Bytes.of_string "\x66\x0f\x01\xd4\xc3" in
  let r = Rewrite.rewrite ~code_va code in
  Alcotest.(check int) "patched" 1 r.Rewrite.patched;
  Alcotest.(check int) "clean" 0 (Scan.count_pattern r.Rewrite.code);
  Alcotest.(check string) "four nops then ret" "\x90\x90\x90\x90\xc3"
    (Bytes.to_string r.Rewrite.code)

(* ------------------------------------------------------------------ *)
(* Property: random pattern-laden programs rewrite to equivalent,      *)
(* pattern-free code                                                   *)
(* ------------------------------------------------------------------ *)

let gen_safe_insn =
  let open QCheck.Gen in
  let reg = oneofl [ Reg.Rax; Reg.Rcx; Reg.Rdx; Reg.Rbx; Reg.Rsi; Reg.Rdi; Reg.R8 ] in
  let small = int_range 0 255 in
  frequency
    [
      (2, return Insn.Nop);
      (3, map2 (fun a b -> Insn.Mov_rr (a, b)) reg reg);
      (3, map2 (fun r i -> Insn.Mov_ri (r, Int64.of_int (0x100000 + i))) reg small);
      (3, map2 (fun a b -> Insn.Add_rr (a, b)) reg reg);
      (3, map2 (fun r i -> Insn.Add_ri (r, i)) reg small);
      (3, map2 (fun a b -> Insn.Xor_rr (a, b)) reg reg);
      (2, map (fun r -> Insn.Push r) reg);
      (2, map (fun r -> Insn.Push r) reg);
      (2, map2 (fun r i -> Insn.Lea (r, Insn.mem ~base:Reg.Rax ~disp:i ())) reg small);
      (2, map2 (fun r i -> Insn.Mov_store (Insn.mem ~base:Reg.Rax ~disp:(8 * i) (), r)) reg (int_range 0 32));
      (2, map2 (fun r i -> Insn.Mov_load (r, Insn.mem ~base:Reg.Rax ~disp:(8 * i) ())) reg (int_range 0 32));
    ]

let gen_dirty_insn =
  QCheck.Gen.oneofl
    [
      Insn.Vmfunc;
      Insn.Imul_rri (Reg.Rcx, Insn.M (Insn.mem ~base:Reg.Rdi ()), 0xD401);
      Insn.Lea (Reg.Rbx, Insn.mem ~base:Reg.Rdi ~index:(Reg.Rcx, 1) ~disp:0xD401 ());
      Insn.Add_rm (Reg.Rbx, Insn.mem ~base:Reg.Rax ~disp:0xD4010F ());
      Insn.Mov_load (Reg.Rax, Insn.mem ~base:Reg.Rax ~disp:0xD4010F ());
      Insn.Add_ri (Reg.Rax, 0xD4010F);
      Insn.Sub_ri (Reg.Rdx, 0xD4010F);
      Insn.Mov_ri (Reg.Rbx, 0xD4010FL);
      Insn.Imul_rri (Reg.Rdx, Insn.R Reg.Rsi, 0xD4010F);
      Insn.And_ri (Reg.Rcx, 0xD4010F);
      Insn.Or_ri (Reg.Rsi, 0xD4010F);
      Insn.Cmp_ri (Reg.Rdx, 0xD4010F);
      Insn.Shl_ri (Reg.Rbx, 3);
    ]

let gen_program =
  let open QCheck.Gen in
  let* pre = list_size (int_range 0 10) gen_safe_insn in
  let* dirty = list_size (int_range 1 4) gen_dirty_insn in
  let* post = list_size (int_range 0 10) gen_safe_insn in
  (* Interleave dirty instructions into the program. *)
  return (pre @ dirty @ post)

let prop_rewrite_equiv =
  QCheck.Test.make ~name:"rewritten programs are clean and equivalent" ~count:200
    (QCheck.make
       ~print:(fun p -> String.concat "; " (List.map Insn.to_string p))
       gen_program)
    (fun prog ->
      let code = bytes_of_insns prog in
      let vmfuncs = List.length (List.filter (fun i -> i = Insn.Vmfunc) prog) in
      let r = Rewrite.rewrite ~code_va code in
      let all = Bytes.cat r.Rewrite.code r.Rewrite.rewrite_page in
      Scan.count_pattern all = 0
      &&
      let orig = run_flat (flat ~code ~page:(Bytes.create 0)) in
      let rewr = run_flat (flat ~code:r.Rewrite.code ~page:r.Rewrite.rewrite_page) in
      Interp.vmfunc_count orig = vmfuncs
      && Interp.vmfunc_count rewr = 0
      && List.for_all
           (fun reg ->
             (* The rewritten program deliberately skips vmfuncs; every
                other architectural effect must match. *)
             Interp.get orig reg = Interp.get rewr reg)
           Reg.all
      && non_stack_mem orig = non_stack_mem rewr)

(* ------------------------------------------------------------------ *)
(* Corpus (Table 6)                                                    *)
(* ------------------------------------------------------------------ *)

let test_corpus_table6 () =
  let rows = Corpus.run ~scale:512 () in
  Alcotest.(check int) "nine groups" 9 (List.length rows);
  let total = List.fold_left (fun a r -> a + r.Corpus.vmfunc_count) 0 rows in
  Alcotest.(check int) "exactly the planted GIMP hit" 1 total

let test_corpus_gimp_in_other_apps () =
  let rows = Corpus.run ~scale:512 () in
  List.iter
    (fun r ->
      let expected = if String.length r.Corpus.group >= 5 && String.sub r.Corpus.group 0 5 = "Other" then 1 else 0 in
      Alcotest.(check int) r.Corpus.group expected r.Corpus.vmfunc_count)
    rows

let test_corpus_deterministic () =
  let a = Corpus.run ~scale:1024 () and b = Corpus.run ~scale:1024 () in
  Alcotest.(check bool) "same counts" true
    (List.for_all2 (fun x y -> x.Corpus.vmfunc_count = y.Corpus.vmfunc_count) a b)

let test_corpus_planted_is_rewritable () =
  (* The GIMP program itself must rewrite cleanly. *)
  let rng = Sky_sim.Rng.create ~seed:99 in
  let prog = Corpus.generate_program rng ~size_bytes:2048 ~plant:true in
  Alcotest.(check int) "planted" 1 (Scan.count_pattern prog);
  let r = Rewrite.rewrite prog in
  Alcotest.(check int) "clean after rewrite" 0
    (Scan.count_pattern (Bytes.cat r.Rewrite.code r.Rewrite.rewrite_page))

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "rewriter"
    [
      ( "scan",
        [
          Alcotest.test_case "find_pattern" `Quick test_find_pattern;
          Alcotest.test_case "C1 vmfunc" `Quick test_scan_c1;
          Alcotest.test_case "C3 modrm" `Quick test_scan_c3_modrm;
          Alcotest.test_case "C3 sib" `Quick test_scan_c3_sib;
          Alcotest.test_case "C3 disp" `Quick test_scan_c3_disp;
          Alcotest.test_case "C3 imm" `Quick test_scan_c3_imm;
          Alcotest.test_case "C2 spanning" `Quick test_scan_c2;
          Alcotest.test_case "clean code" `Quick test_scan_clean_code;
        ] );
      ( "rewrite",
        [
          Alcotest.test_case "C1 nops" `Quick test_rewrite_c1;
          Alcotest.test_case "row 2: modrm subst" `Quick test_rewrite_table3_row2_modrm;
          Alcotest.test_case "row 3: sib subst" `Quick test_rewrite_table3_row3_sib;
          Alcotest.test_case "row 4: disp precompute" `Quick test_rewrite_table3_row4_disp;
          Alcotest.test_case "row 4: clobbered base" `Quick
            test_rewrite_table3_row4_disp_clobbered_base;
          Alcotest.test_case "row 5: imm add" `Quick test_rewrite_table3_row5_imm_add;
          Alcotest.test_case "row 5: imm mov" `Quick test_rewrite_table3_row5_imm_mov;
          Alcotest.test_case "row 5: imm imul" `Quick test_rewrite_table3_row5_imm_imul;
          Alcotest.test_case "jump-like relink (GIMP case)" `Quick test_rewrite_jump_like;
          Alcotest.test_case "C2 move+nop" `Quick test_rewrite_c2;
          Alcotest.test_case "trampoline range exempt" `Quick test_rewrite_allowed_range;
          Alcotest.test_case "idempotent on clean code" `Quick
            test_rewrite_idempotent_on_clean;
        ]
        @ qc [ prop_rewrite_equiv ] );
      ( "negative",
        [
          Alcotest.test_case "undecodable carrier" `Quick
            test_fail_undecodable_carrier;
          Alcotest.test_case "no memory operand" `Quick
            test_fail_no_memory_operand;
          Alcotest.test_case "span at end of code" `Quick
            test_fail_span_at_end_of_code;
          Alcotest.test_case "prefixed vmfunc is C1" `Quick
            test_prefixed_vmfunc_rewrites_as_c1;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "table 6 totals" `Quick test_corpus_table6;
          Alcotest.test_case "GIMP in Other Apps" `Quick test_corpus_gimp_in_other_apps;
          Alcotest.test_case "deterministic" `Quick test_corpus_deterministic;
          Alcotest.test_case "planted program rewrites" `Quick
            test_corpus_planted_is_rewritable;
        ] );
    ]
