(** Benchmark artifacts: every machine-readable result a CI run should
    archive is written as [BENCH_<name>.json] in the working directory,
    so the workflow can glob one pattern and benchmark trajectories can
    be compared across commits. *)

let path_of name = Printf.sprintf "BENCH_%s.json" name

(* [host_seconds] records the host wall-clock cost of producing the
   result next to the simulated numbers, so benchmark trajectories track
   both the modelled machine and the simulator itself. It wraps rather
   than edits [contents]: the simulated result stays byte-deterministic
   under "result" while the timing lives alongside it. *)
let write ~name ?host_seconds contents =
  let path = path_of name in
  let contents =
    match host_seconds with
    | None -> contents
    | Some s ->
      let trimmed = String.trim contents in
      Printf.sprintf "{\"host_seconds\":%.3f,\"result\":%s}" s
        (if trimmed = "" then "null" else trimmed)
  in
  let oc = open_out path in
  output_string oc contents;
  if contents = "" || contents.[String.length contents - 1] <> '\n' then
    output_char oc '\n';
  close_out oc;
  path
