(** The KV-pipeline experiments: Table 1 (processor-structure pollution),
    Figure 2 (Baseline/Delay/IPC/IPC-CrossCore latency vs key+value
    size) and Figure 8 (same plus the SkyBridge series). *)

open Sky_ukernel
open Sky_kvstore
open Sky_harness

let lens = [ 16; 64; 256; 1024 ]

let make_pipeline config =
  let machine = Sky_sim.Machine.create ~cores:4 ~mem_mib:128 () in
  let kernel = Kernel.create machine in
  match config with
  | Pipeline.Skybridge ->
    let sb = Sky_core.Subkernel.init kernel in
    Pipeline.create ~sb kernel config
  | _ -> Pipeline.create kernel config

let latency config ~ops ~len =
  let p = make_pipeline config in
  ignore (Pipeline.run p ~core:0 ~ops:(ops / 4) ~len) (* warmup *);
  Pipeline.run p ~core:0 ~ops ~len

(* ---- Table 1 ---- *)

let run_table1 () =
  let ops = 512 and len = 64 in
  let measure config =
    let machine = Sky_sim.Machine.create ~cores:4 ~mem_mib:128 () in
    let kernel = Kernel.create machine in
    let p =
      match config with
      | Pipeline.Skybridge ->
        let sb = Sky_core.Subkernel.init kernel in
        Pipeline.create ~sb kernel config
      | _ -> Pipeline.create kernel config
    in
    ignore (Pipeline.run p ~core:0 ~ops:64 ~len) (* warm *);
    let cpu = Sky_sim.Machine.core machine 0 in
    Sky_sim.Cpu.reset_stats cpu;
    ignore (Pipeline.run p ~core:0 ~ops ~len);
    Sky_sim.Cpu.footprint cpu
  in
  let fmt (fp : Sky_sim.Cpu.footprint) =
    [
      Tbl.fmt_int fp.Sky_sim.Cpu.l1i_miss;
      Tbl.fmt_int fp.Sky_sim.Cpu.l1d_miss;
      Tbl.fmt_int fp.Sky_sim.Cpu.l2_miss;
      Tbl.fmt_int fp.Sky_sim.Cpu.l3_miss;
      Tbl.fmt_int fp.Sky_sim.Cpu.itlb_miss;
      Tbl.fmt_int fp.Sky_sim.Cpu.dtlb_miss;
    ]
  in
  Tbl.make
    ~title:
      "Table 1: pollution of processor structures (misses during 512 KV ops)"
    ~header:[ "name"; "i-cache"; "d-cache"; "L2"; "L3"; "i-TLB"; "d-TLB" ]
    ~notes:
      [
        "paper (same order): Baseline 15/10624/13237/43/8/17; Delay \
         15/10639/13258/43/9/19; IPC 696/27054/15974/44/11/7832";
      ]
    [
      "Baseline" :: fmt (measure Pipeline.Baseline);
      "Delay" :: fmt (measure Pipeline.Delay);
      "IPC" :: fmt (measure Pipeline.Ipc_local);
    ]

(* ---- Figures 2 and 8 ---- *)

let paper_fig8 =
  (* len -> (baseline, delay, ipc, cross, skybridge) from Figure 8 *)
  [
    (16, (2707, 4735, 7929, 18895, 3512));
    (64, (3485, 5345, 8548, 19609, 4112));
    (256, (5884, 7828, 11025, 22162, 6413));
    (1024, (14652, 16906, 20577, 32061, 15378));
  ]

let run_fig ~with_skybridge () =
  let ops = 256 in
  let series =
    [ Pipeline.Baseline; Pipeline.Delay; Pipeline.Ipc_local; Pipeline.Ipc_cross ]
    @ (if with_skybridge then [ Pipeline.Skybridge ] else [])
  in
  let measured =
    List.map
      (fun config ->
        (config, List.map (fun len -> (len, latency config ~ops ~len)) lens))
      series
  in
  let rows =
    List.map
      (fun len ->
        let b, d, i, c, s =
          match List.assoc_opt len paper_fig8 with
          | Some v -> v
          | None -> (0, 0, 0, 0, 0)
        in
        let get config =
          match List.assoc_opt config measured with
          | Some l -> Tbl.fmt_int (List.assoc len l)
          | None -> "-"
        in
        [
          Printf.sprintf "%d B" len;
          Printf.sprintf "%d/%s" b (get Pipeline.Baseline);
          Printf.sprintf "%d/%s" d (get Pipeline.Delay);
          Printf.sprintf "%d/%s" i (get Pipeline.Ipc_local);
          Printf.sprintf "%d/%s" c (get Pipeline.Ipc_cross);
        ]
        @
        if with_skybridge then [ Printf.sprintf "%d/%s" s (get Pipeline.Skybridge) ]
        else [])
      lens
  in
  Tbl.make
    ~title:
      (if with_skybridge then
         "Figure 8: KV-store latency with SkyBridge (cycles, paper/ours)"
       else "Figure 2: KV-store latency (cycles, paper/ours)")
    ~header:
      ([ "key+value"; "Baseline"; "Delay"; "IPC"; "IPC-CrossCore" ]
      @ if with_skybridge then [ "SkyBridge" ] else [])
    ~notes:[ "each cell is paper/ours; 50% insert + 50% query (SS2.1.2)" ]
    rows

let run_fig2 () = run_fig ~with_skybridge:false ()
let run_fig8 () = run_fig ~with_skybridge:true ()
