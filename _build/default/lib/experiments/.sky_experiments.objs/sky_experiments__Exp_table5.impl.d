lib/experiments/exp_table5.ml: Config Option Printf Sky_core Sky_harness Sky_ukernel Sky_ycsb Stack Tbl
