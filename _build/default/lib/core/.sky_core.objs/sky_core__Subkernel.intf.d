lib/core/subkernel.mli: Rootkernel Sky_kernels Sky_ukernel
