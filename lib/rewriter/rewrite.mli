(** Dynamic rewriting of illegal VMFUNC instructions (§5).

    When a process registers into SkyBridge, the Subkernel scans all of
    its code pages and replaces every VMFUNC encoding outside the
    trampoline with functionally-equivalent instructions, following
    Table 3 of the paper:

    - C1 (the instruction is VMFUNC): three NOPs in place.
    - C2 (pattern spans instructions): the spanning instructions move to
      the rewrite page with a NOP inserted between them.
    - C3/ModRM and C3/SIB: the fixed base register is substituted with a
      scratch register saved/restored around the instruction.
    - C3/displacement: the displacement is partially precomputed into the
      base register (restored afterwards), or a scratch register when the
      instruction overwrites its base.
    - C3/immediate: the instruction is applied twice with two immediates
      that compose to the original; jump-like instructions move to the
      rewrite page and get their offset re-encoded.

    Replacement sequences that do not fit in the original span are placed
    in a {e rewrite page} mapped at virtual address [0x1000] (the
    deliberately unmapped second page, §5.1); the original span is patched
    with a jump there and NOP padding, and the snippet ends with a jump
    back. The rewrite loop re-scans until no pattern remains anywhere
    outside the allowed (trampoline) ranges — junction-created patterns
    are thus also eliminated. *)

exception Rewrite_failed of string

type result = {
  code : bytes;  (** patched copy of the input *)
  rewrite_page : bytes;  (** snippets; map at {!rewrite_page_va} *)
  patched : int;  (** occurrences rewritten *)
  iterations : int;  (** scan-fix rounds until clean *)
}

val rewrite_page_va : int
(** 0x1000 — the default; multi-section binaries lay their snippet pages
    out consecutively from here. *)

val rewrite :
  ?code_va:int ->
  ?rewrite_page_va:int ->
  ?allowed:(int * int) list ->
  bytes ->
  result
(** [rewrite ~code_va ~allowed code] returns patched code and the rewrite
    page. [allowed] lists [(offset, length)] ranges (relative to the start
    of [code]) in which VMFUNC is legal — the trampoline page. The input
    buffer is not modified.

    @raise Rewrite_failed on an occurrence that cannot be rewritten (a
    pattern inside an instruction the decoder has no semantics for) or if
    the fixpoint does not converge. *)

val clean : ?allowed:(int * int) list -> bytes -> bool
(** No VMFUNC pattern outside allowed ranges. *)

val verify : ?allowed:(int * int) list -> result -> unit
(** Independent re-verification of a rewrite result (the mandatory
    post-pass {!rewrite} runs before returning): page-by-page pattern scan
    with a carried overlap plus a decode from every byte offset of both
    the patched code and the rewrite page.

    @raise Rewrite_failed if any VMFUNC encoding survives outside the
    allowed ranges. *)
