(** Tiny single-line HTTP-style codec: [GET /kv/<key>],
    [PUT /kv/<key> <value>], [GET /fs/<name>]; responses are
    [<status> <body>]. Pure functions — the server charges parse cycles
    itself. *)

type request =
  | Kv_get of string
  | Kv_put of string * bytes
  | Fs_get of string

type response = { status : int; body : bytes }

exception Bad_request of string

val parse_request : bytes -> request
val serialize_request : request -> bytes
val parse_response : bytes -> response
val serialize_response : response -> bytes

val ok : bytes -> response
val not_found : response
val bad_request : response
val server_error : response

val service_unavailable : response
(** 503 — the typed load-shed rejection (queue full, deadline blown). *)

val forbidden : response
(** 403 — the request's capability was denied by every receiver. *)

val with_ttl : ttl:int -> bytes -> bytes
(** Prefix a serialized request with a relative deadline ([TTL<cycles> ]).
    Requests without the prefix are wire-identical to the old format. *)

val split_ttl : bytes -> int option * bytes
(** Strip the TTL prefix, if any, returning the relative deadline and
    the bare request payload. *)
