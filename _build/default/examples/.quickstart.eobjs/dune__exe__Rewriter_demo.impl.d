examples/rewriter_demo.ml: Bytes Char Encode Insn Interp List Printf Reg Rewrite Scan Sky_isa Sky_rewriter String
