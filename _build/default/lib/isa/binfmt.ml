(** A minimal executable-image format ("SKYB") — the shape of binary the
    Subkernel loads and, at SkyBridge registration, scans.

    Real systems hand the rewriter ELF executables with several
    executable sections and plenty of non-executable data that may
    legitimately contain [0F 01 D4]; this format reproduces that
    structure: a header, then sections with a virtual address, a kind
    (exec / read-only / read-write) and raw contents. Only executable
    sections are scanned and rewritten; data is mapped NX and left
    byte-identical. *)

type kind = Text | Rodata | Data

type section = { name : string; vaddr : int; kind : kind; body : bytes }

type image = { entry : int; sections : section list }

exception Bad_image of string

let magic = "SKYB"

let kind_code = function Text -> 1 | Rodata -> 2 | Data -> 3

let kind_of_code = function
  | 1 -> Text
  | 2 -> Rodata
  | 3 -> Data
  | n -> raise (Bad_image (Printf.sprintf "bad section kind %d" n))

let kind_name = function Text -> "text" | Rodata -> "rodata" | Data -> "data"

(* Layout: magic | entry u32 | nsections u32 | sections.
   Section: kind u8 | name_len u8 | name | vaddr u32 | body_len u32 | body. *)
let encode img =
  let buf = Buffer.create 256 in
  Buffer.add_string buf magic;
  let u32 v =
    let b = Bytes.create 4 in
    Bytes.set_int32_le b 0 (Int32.of_int v);
    Buffer.add_bytes buf b
  in
  u32 img.entry;
  u32 (List.length img.sections);
  List.iter
    (fun s ->
      if String.length s.name > 255 then raise (Bad_image "section name too long");
      Buffer.add_char buf (Char.chr (kind_code s.kind));
      Buffer.add_char buf (Char.chr (String.length s.name));
      Buffer.add_string buf s.name;
      u32 s.vaddr;
      u32 (Bytes.length s.body);
      Buffer.add_bytes buf s.body)
    img.sections;
  Buffer.to_bytes buf

let decode raw =
  let pos = ref 0 in
  let need n =
    if !pos + n > Bytes.length raw then raise (Bad_image "truncated image")
  in
  let u8 () =
    need 1;
    let v = Char.code (Bytes.get raw !pos) in
    incr pos;
    v
  in
  let u32 () =
    need 4;
    let v = Int32.to_int (Bytes.get_int32_le raw !pos) in
    pos := !pos + 4;
    v
  in
  let str n =
    need n;
    let s = Bytes.sub_string raw !pos n in
    pos := !pos + n;
    s
  in
  if str 4 <> magic then raise (Bad_image "bad magic");
  let entry = u32 () in
  let nsections = u32 () in
  if nsections < 0 || nsections > 1024 then raise (Bad_image "bad section count");
  let sections =
    List.init nsections (fun _ ->
        let kind = kind_of_code (u8 ()) in
        let name = str (u8 ()) in
        let vaddr = u32 () in
        let len = u32 () in
        if len < 0 then raise (Bad_image "bad section length");
        { name; vaddr; kind; body = Bytes.of_string (str len) })
  in
  { entry; sections }

(* Sections must be page-disjoint (each gets its own mapping flags). *)
let validate img =
  let ranges =
    List.map
      (fun s ->
        let first = s.vaddr lsr 12 in
        let last = (s.vaddr + max 1 (Bytes.length s.body) - 1) lsr 12 in
        (s.name, first, last))
      img.sections
  in
  List.iteri
    (fun i (n1, f1, l1) ->
      List.iteri
        (fun j (n2, f2, l2) ->
          if i < j && f1 <= l2 && f2 <= l1 then
            raise
              (Bad_image (Printf.sprintf "sections %s and %s share a page" n1 n2)))
        ranges)
    ranges
