(** YCSB workloads against the SQLite-like database.

    Workload A (50% read / 50% update, Zipfian keys) is what the paper
    reports in Figures 9–11, on a 10,000-record table. The multithreaded
    runner places one client thread per core; threads share the database
    handle and contend on SQLite's writer lock and the file system's big
    lock — the two serialization points that shape the scalability
    curves. *)

type kind = A | B | C

val kind_name : kind -> string

val read_fraction : kind -> float
(** A = 0.5, B = 0.95, C = 1.0. *)

type t

val create :
  Sky_ukernel.Kernel.t -> Sky_sqldb.Db.t -> records:int -> value_size:int -> t

val load : t -> core:int -> unit
(** Populate the table (not measured). *)

val run : t -> kind:kind -> threads:int -> ops_per_thread:int -> float
(** Run thread [i] on core [i] (interleaved in virtual time, all cores
    synchronized at the start); returns throughput in ops/s at the
    simulated 4 GHz clock. *)
