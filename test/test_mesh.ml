(* Tests for the lib/mesh subsystem: the URI name service (per-core
   caches, epoch invalidation, re-registration freshness), refcounted
   capability grants over dependency closures, suspend/resume with
   revocation in between, crash recovery through the mesh, and the
   multi-receiver endpoint's conservation invariant. *)

open Sky_sim
open Sky_ukernel
module Subkernel = Sky_core.Subkernel
module Retry = Sky_core.Retry
module Mesh = Sky_mesh.Mesh
module Endpoint = Sky_mesh.Endpoint
module Fault = Sky_faults.Fault

let with_faults f = Fun.protect ~finally:Fault.disable f
let echo tag ~core:_ msg = Bytes.cat (Bytes.of_string tag) msg

(* One dep server ("store") and two services over it: [svc://] depends
   on the store, [raw://] is the store itself — the overlapping-closure
   shape the refcounting must get right. *)
type fixture = {
  sb : Subkernel.t;
  mesh : Mesh.t;
  client : Proc.t;
  store_sid : int;
  svc_sid : int;
}

let make ?(cores = 4) ?(seed = 1) () =
  let machine = Machine.create ~cores ~mem_mib:64 () in
  let kernel = Kernel.create machine in
  let sb = Subkernel.init ~seed kernel in
  let mesh = Mesh.create ~seed sb in
  let store_proc = Kernel.spawn kernel ~name:"store" in
  let svc_proc = Kernel.spawn kernel ~name:"meshsvc" in
  let client = Kernel.spawn kernel ~name:"client" in
  let store_sid =
    Subkernel.register_server sb store_proc ~connection_count:cores
      (echo "store:")
  in
  let svc_sid =
    Subkernel.register_server sb svc_proc ~connection_count:cores
      ~deps:[ store_sid ] (echo "svc:")
  in
  Mesh.register mesh ~core:0 ~uri:"raw://" ~server_id:store_sid;
  Mesh.register mesh ~core:0 ~uri:"svc://" ~server_id:svc_sid;
  Mesh.connect mesh client;
  { sb; mesh; client; store_sid; svc_sid }

let call_ok f uri =
  match
    Mesh.call f.mesh ~core:0 ~client:f.client uri (Bytes.of_string "ping")
  with
  | Ok reply -> Bytes.to_string reply
  | Error (`Unresolved u) -> Alcotest.failf "unresolved %s" u
  | Error (`Denied u) -> Alcotest.failf "denied %s" u
  | Error (`Failed _) -> Alcotest.fail "retry budget exhausted"

let check_audit f name =
  Alcotest.(check int) (name ^ ": mesh audit clean") 0
    (List.length (Mesh.audit f.mesh));
  Alcotest.(check int) (name ^ ": subkernel audit clean") 0
    (List.length (Subkernel.audit f.sb))

let has_binding f ~sid =
  List.mem (f.client.Proc.pid, sid) (Subkernel.bindings f.sb)

(* ------------------------------------------------------------------ *)
(* name service                                                        *)
(* ------------------------------------------------------------------ *)

let test_resolve_and_call () =
  let f = make () in
  ignore (Mesh.grant f.mesh ~core:0 ~client:f.client "svc://");
  Alcotest.(check string) "routed call reaches the handler" "svc:ping"
    (call_ok f "svc://");
  let misses = Mesh.resolves f.mesh in
  ignore (call_ok f "svc://");
  ignore (call_ok f "svc://");
  Alcotest.(check int) "repeat resolutions hit the per-core cache" misses
    (Mesh.resolves f.mesh);
  Alcotest.(check bool) "cache hits counted" true (Mesh.cache_hits f.mesh > 0);
  check_audit f "resolve"

let test_unresolved () =
  let f = make () in
  Mesh.connect f.mesh f.client;
  (match
     Mesh.call f.mesh ~core:0 ~client:f.client "nope://" (Bytes.of_string "x")
   with
  | Error (`Unresolved "nope://") -> ()
  | _ -> Alcotest.fail "expected `Unresolved");
  Alcotest.check_raises "grant raises Unknown_service"
    (Mesh.Unknown_service "nope://") (fun () ->
      ignore (Mesh.grant f.mesh ~core:0 ~client:f.client "nope://"))

let test_reregister_freshness_on_every_core () =
  let f = make ~cores:4 () in
  ignore (Mesh.grant f.mesh ~core:0 ~client:f.client "svc://");
  (* Warm all four per-core caches against the v1 registration. *)
  for core = 0 to 3 do
    Alcotest.(check (option int))
      (Printf.sprintf "core %d resolves v1" core)
      (Some f.svc_sid)
      (Mesh.resolve f.mesh ~core ~client:f.client "svc://")
  done;
  let epoch_before = Mesh.epoch f.mesh in
  (* Hot re-registration: svc:// now names the store server. *)
  Mesh.register f.mesh ~core:0 ~uri:"svc://" ~server_id:f.store_sid;
  Alcotest.(check bool) "re-registration bumps the epoch" true
    (Mesh.epoch f.mesh > epoch_before);
  for core = 0 to 3 do
    Alcotest.(check (option int))
      (Printf.sprintf "core %d sees v2, not its stale cache" core)
      (Some f.store_sid)
      (Mesh.resolve f.mesh ~core ~client:f.client "svc://")
  done;
  Mesh.unregister f.mesh ~core:0 ~uri:"svc://";
  Alcotest.(check (option int)) "unregistered scheme stops resolving" None
    (Mesh.resolve f.mesh ~core:0 ~client:f.client "svc://")

(* ------------------------------------------------------------------ *)
(* grants, closures, refcounts                                         *)
(* ------------------------------------------------------------------ *)

let test_grant_covers_closure () =
  let f = make () in
  ignore (Mesh.grant f.mesh ~core:0 ~client:f.client "svc://");
  Alcotest.(check bool) "binding on the service" true
    (has_binding f ~sid:f.svc_sid);
  Alcotest.(check string) "call flows" "svc:ping" (call_ok f "svc://");
  check_audit f "closure"

let test_overlapping_closures_refcount () =
  let f = make () in
  let g_svc = Mesh.grant f.mesh ~core:0 ~client:f.client "svc://" in
  let g_raw = Mesh.grant f.mesh ~core:0 ~client:f.client "raw://" in
  (* The store sid is covered twice: via svc://'s dep closure and via
     raw:// directly. Revoking the svc grant must keep it alive. *)
  Mesh.revoke_grant f.mesh ~core:0 g_svc;
  Alcotest.(check bool) "svc grant dead" false (Mesh.grant_live g_svc);
  Alcotest.(check string) "shared dep still reachable via raw://" "store:ping"
    (call_ok f "raw://");
  (match
     Mesh.call f.mesh ~core:0 ~client:f.client "svc://" (Bytes.of_string "x")
   with
  | Error (`Denied "svc://") -> ()
  | _ -> Alcotest.fail "revoked svc:// should be denied");
  check_audit f "after first revoke";
  Mesh.revoke_grant f.mesh ~core:0 g_raw;
  Alcotest.(check bool) "store binding gone once refcount hits zero" false
    (has_binding f ~sid:f.store_sid);
  (match
     Mesh.call f.mesh ~core:0 ~client:f.client "raw://" (Bytes.of_string "x")
   with
  | Error (`Denied _) -> ()
  | _ -> Alcotest.fail "expected `Denied after last revoke");
  Alcotest.(check bool) "denials counted" true (Mesh.denials f.mesh >= 2);
  check_audit f "after last revoke"

let test_revoke_service_retires_subtree () =
  let f = make () in
  ignore (Mesh.grant f.mesh ~core:0 ~client:f.client "svc://");
  ignore (Mesh.grant f.mesh ~core:0 ~client:f.client "svc://");
  let retired = Mesh.revoke_service f.mesh ~core:0 "svc://" in
  Alcotest.(check int) "both grants retired at once" 2 retired;
  (match
     Mesh.call f.mesh ~core:0 ~client:f.client "svc://" (Bytes.of_string "x")
   with
  | Error (`Denied _) -> ()
  | _ -> Alcotest.fail "expected `Denied after revoke_service");
  check_audit f "revoke_service"

(* ------------------------------------------------------------------ *)
(* suspend / resume, crash recovery                                    *)
(* ------------------------------------------------------------------ *)

let test_suspend_revoke_resume_degrades () =
  let f = make () in
  let g_svc = Mesh.grant f.mesh ~core:0 ~client:f.client "svc://" in
  ignore (Mesh.grant f.mesh ~core:0 ~client:f.client "raw://");
  Mesh.suspend_client f.mesh ~core:0 f.client;
  (* The capability dies while the client is down: resume must NOT
     resurrect the binding — degradation, not resurrection. *)
  Mesh.revoke_grant f.mesh ~core:0 g_svc;
  Mesh.resume_client f.mesh f.client;
  (match
     Mesh.call f.mesh ~core:0 ~client:f.client "svc://" (Bytes.of_string "x")
   with
  | Error (`Denied "svc://") -> ()
  | _ -> Alcotest.fail "revoked-while-down grant must stay down");
  Alcotest.(check string) "surviving grant resumed intact" "store:ping"
    (call_ok f "raw://");
  check_audit f "resume"

let test_crash_recovery_refreshes () =
  with_faults (fun () ->
      let f = make () in
      ignore (Mesh.grant f.mesh ~core:0 ~client:f.client "svc://");
      ignore (call_ok f "svc://") (* warm the cache, faults off *);
      Fault.reset ~seed:3 ();
      Fault.arm ~budget:1 ~site:"server.meshsvc" ~kind:Fault.Crash
        (Fault.At_hit 1);
      Alcotest.(check string) "call recovers through restart" "svc:ping"
        (call_ok f "svc://");
      Fault.disable ();
      let st = Mesh.retry_stats f.mesh in
      Alcotest.(check bool) "a restart happened" true (st.Retry.restarts >= 1);
      Alcotest.(check bool) "the retry recovered" true (st.Retry.retried_ok >= 1);
      Alcotest.(check string) "post-recovery calls keep flowing" "svc:ping"
        (call_ok f "svc://");
      check_audit f "crash recovery")

let test_nameserv_crash_mid_resolve () =
  with_faults (fun () ->
      let f = make () in
      ignore (Mesh.grant f.mesh ~core:0 ~client:f.client "svc://");
      Fault.reset ~seed:5 ();
      Fault.arm ~budget:1 ~site:Mesh.fault_site ~kind:Fault.Crash
        (Fault.At_hit 1);
      (* Force a wire resolve on a cold core: the name service crashes
         mid-resolve, restarts, and the resolve retries transparently. *)
      Alcotest.(check (option int)) "resolve survives the nameserv crash"
        (Some f.svc_sid)
        (Mesh.resolve f.mesh ~core:3 ~client:f.client "svc://");
      Fault.disable ();
      check_audit f "nameserv crash")

(* ------------------------------------------------------------------ *)
(* qcheck properties                                                   *)
(* ------------------------------------------------------------------ *)

(* Conservation: under any interleaving of pushes and pops across the
   receivers, every pushed item is popped exactly once. *)
let prop_endpoint_conservation =
  QCheck.Test.make ~name:"endpoint conserves items under any interleaving"
    ~count:30
    QCheck.(list (pair (int_bound 3) (int_bound 4)))
    (fun ops ->
      let machine = Machine.create ~cores:4 ~mem_mib:32 () in
      let kernel = Kernel.create machine in
      let ep = Endpoint.create kernel ~name:"qc" ~receivers:4 in
      let pushed = ref [] and popped = ref [] in
      let next = ref 0 in
      List.iter
        (fun (recv, op) ->
          if op = 0 then (
            (* op 0: pop for [recv]; anything else: push (round-robin
               when the receiver index is out of range). *)
            match Endpoint.pop ep ~core:recv ~recv with
            | Some v -> popped := v :: !popped
            | None -> ())
          else begin
            let v = !next in
            incr next;
            pushed := v :: !pushed;
            if op = 1 then Endpoint.push ep ~core:0 v
            else Endpoint.push ep ~core:0 ~receiver:recv v
          end)
        ops;
      (* Drain: rotate over receivers until the endpoint is empty. *)
      let rec drain r guard =
        if Endpoint.pending ep > 0 && guard > 0 then begin
          (match Endpoint.pop ep ~core:(r mod 4) ~recv:(r mod 4) with
          | Some v -> popped := v :: !popped
          | None -> ());
          drain (r + 1) (guard - 1)
        end
      in
      drain 0 (4 * (List.length ops + 4));
      Endpoint.pending ep = 0
      && List.sort compare !popped = List.sort compare !pushed
      && Endpoint.pushed ep = List.length !pushed
      && Endpoint.popped ep = List.length !pushed)

(* Refcount invariant: after any grant/revoke sequence over the two
   overlapping services, a binding exists iff it was established by a
   grant and is still covered by at least one live capability — the
   svc:// closure includes the store, so a live svc grant keeps the
   store binding alive across raw:// revocations. Calls succeed iff
   covered, and both audits stay clean at every step. *)
let prop_grant_revoke_refcount =
  QCheck.Test.make ~name:"grant/revoke refcounts over overlapping closures"
    ~count:8
    QCheck.(list (pair bool bool))
    (fun ops ->
      let f = make () in
      let live = [| []; [] |] (* per-uri stack of live grants *) in
      let uris = [| "svc://"; "raw://" |] in
      (* Model bindings: a grant establishes bindings for its whole dep
         closure (the store rides along with svc://); the revocation
         sweep removes a binding exactly when no live capability covers
         it any more. *)
      let bound = [| false; false |] in
      let ok = ref true in
      let step (is_grant, which) =
        let i = if which then 1 else 0 in
        if is_grant then begin
          live.(i) <-
            Mesh.grant f.mesh ~core:0 ~client:f.client uris.(i) :: live.(i);
          bound.(i) <- true;
          bound.(1) <- true (* the store is in both closures *)
        end
        else
          match live.(i) with
          | g :: rest ->
            Mesh.revoke_grant f.mesh ~core:0 g;
            live.(i) <- rest;
            bound.(0) <- bound.(0) && live.(0) <> [];
            bound.(1) <- bound.(1) && (live.(0) <> [] || live.(1) <> [])
          | [] -> ()
      in
      List.iter
        (fun op ->
          step op;
          let covered = [| live.(0) <> []; live.(0) <> [] || live.(1) <> [] |] in
          ok :=
            !ok
            && has_binding f ~sid:f.svc_sid = bound.(0)
            && has_binding f ~sid:f.store_sid = bound.(1)
            && List.length (Mesh.audit f.mesh) = 0
            && List.length (Subkernel.audit f.sb) = 0;
          Array.iteri
            (fun i uri ->
              let reply =
                Mesh.call f.mesh ~core:0 ~client:f.client uri
                  (Bytes.of_string "q")
              in
              ok :=
                !ok
                &&
                match (reply, covered.(i)) with
                | Ok _, true -> true
                | Error (`Denied _), false -> true
                | _ -> false)
            uris)
        ops;
      !ok)

(* ------------------------------------------------------------------ *)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "mesh"
    [
      ( "name-service",
        [
          Alcotest.test_case "resolve + cached call" `Quick test_resolve_and_call;
          Alcotest.test_case "unresolved scheme" `Quick test_unresolved;
          Alcotest.test_case "re-register freshness per core" `Quick
            test_reregister_freshness_on_every_core;
        ] );
      ( "capabilities",
        [
          Alcotest.test_case "grant covers dep closure" `Quick
            test_grant_covers_closure;
          Alcotest.test_case "overlapping closures refcount" `Quick
            test_overlapping_closures_refcount;
          Alcotest.test_case "revoke_service retires subtree" `Quick
            test_revoke_service_retires_subtree;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "suspend/revoke/resume degrades" `Quick
            test_suspend_revoke_resume_degrades;
          Alcotest.test_case "crash recovery through the mesh" `Quick
            test_crash_recovery_refreshes;
          Alcotest.test_case "nameserv crash mid-resolve" `Quick
            test_nameserv_crash_mid_resolve;
        ] );
      ( "properties",
        qc [ prop_endpoint_conservation; prop_grant_revoke_refcount ] );
    ]
