lib/kernels/breakdown.ml: Format
