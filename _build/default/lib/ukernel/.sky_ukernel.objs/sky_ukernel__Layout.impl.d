lib/ukernel/layout.ml:
