lib/sqldb/btree.mli: Pager
