(** Virtual Machine Control Structure (the slice SkyBridge needs).

    Holds the EPTP list (up to 512 entries, §2.2), the currently installed
    EPTP index, the VPID setting and VM-exit statistics. The Rootkernel
    (lib/core) owns the policy: which events exit, and what the handlers
    do. *)

type exit_reason =
  | Exit_cpuid
  | Exit_vmcall
  | Exit_ept_violation
  | Exit_invalid_vmfunc

let exit_reason_name = function
  | Exit_cpuid -> "CPUID"
  | Exit_vmcall -> "VMCALL"
  | Exit_ept_violation -> "EPT_VIOLATION"
  | Exit_invalid_vmfunc -> "INVALID_VMFUNC"

let eptp_list_size = 512

type t = {
  eptp_list : int array;  (** EPTP (root PA) per slot; 0 = invalid *)
  mutable current_index : int;
  mutable vpid_enabled : bool;
  exit_counts : int array;
  mutable total_exits : int;
}

let create ?(vpid = true) () =
  {
    eptp_list = Array.make eptp_list_size 0;
    current_index = 0;
    vpid_enabled = vpid;
    exit_counts = Array.make 4 0;
    total_exits = 0;
  }

let reason_index = function
  | Exit_cpuid -> 0
  | Exit_vmcall -> 1
  | Exit_ept_violation -> 2
  | Exit_invalid_vmfunc -> 3

let set_eptp t ~index ~eptp =
  if index < 0 || index >= eptp_list_size then
    invalid_arg "Vmcs.set_eptp: index out of range";
  t.eptp_list.(index) <- eptp

let clear_eptp t ~index = set_eptp t ~index ~eptp:0
let eptp_at t ~index = t.eptp_list.(index)
let current_eptp t = t.eptp_list.(t.current_index)
let current_index t = t.current_index

let install_list t eptps =
  (* Installed by the Subkernel (via the Rootkernel) before scheduling a
     new process: slot 0 is the process's own EPT, the rest are the EPTs
     of the servers it may call (§4.2). *)
  Array.fill t.eptp_list 0 eptp_list_size 0;
  List.iteri (fun i e -> if i < eptp_list_size then t.eptp_list.(i) <- e) eptps;
  t.current_index <- 0

let record_exit t reason =
  t.exit_counts.(reason_index reason) <- t.exit_counts.(reason_index reason) + 1;
  t.total_exits <- t.total_exits + 1

let exits t reason = t.exit_counts.(reason_index reason)
let total_exits t = t.total_exits
