lib/mmu/vmcs.mli:
