(** Address translation: TLB → (nested) page walk.

    This is the hardware walker. On a TLB miss it performs the guest
    4-level walk; when the vCPU is virtualized, every guest table address
    is itself translated through the current EPT (real nested paging —
    up to 4 × (EPT walk + entry read) + final EPT walk ≈ 24 memory
    accesses, §4.1), and all those accesses are charged through the cache
    hierarchy. The CR3-remapping trick of SkyBridge (§4.3) works here with
    no special case: the walk translates the CR3 {e GPA} through the EPT,
    so a remapped EPT transparently switches which page table the walk
    reads. *)

exception Page_fault of Page_table.fault
exception Ept_violation of Ept.fault

type access = { kind : Sky_sim.Memsys.kind; write : bool }

val data_read : access
val data_write : access
val fetch : access

val translate : Vcpu.t -> Sky_mem.Phys_mem.t -> access -> va:int -> int
(** [translate vcpu mem acc ~va] returns the host-physical address.
    Charges TLB/walk costs on the vCPU's core. Raises {!Page_fault} on a
    guest-PT fault (not-present, protection, user access to supervisor
    page) and {!Ept_violation} on an EPT fault (a VM exit in real
    hardware; the Rootkernel handles it). *)

val read_u8 : Vcpu.t -> Sky_mem.Phys_mem.t -> va:int -> int
val write_u8 : Vcpu.t -> Sky_mem.Phys_mem.t -> va:int -> int -> unit
val read_u64 : Vcpu.t -> Sky_mem.Phys_mem.t -> va:int -> int64
val write_u64 : Vcpu.t -> Sky_mem.Phys_mem.t -> va:int -> int64 -> unit

val read_bytes : Vcpu.t -> Sky_mem.Phys_mem.t -> va:int -> len:int -> bytes
(** Bulk read through translation, charging one cached access per 64-byte
    line. May span pages. *)

val write_bytes : Vcpu.t -> Sky_mem.Phys_mem.t -> va:int -> bytes -> unit

val touch : Vcpu.t -> Sky_mem.Phys_mem.t -> access -> va:int -> len:int -> unit
(** Access every line of a virtual range without moving data (models
    executing code or scanning a buffer). *)
