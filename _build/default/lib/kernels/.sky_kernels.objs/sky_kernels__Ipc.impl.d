lib/kernels/ipc.ml: Breakdown Bytes Capability Config Costs Costs_table Cpu Hashtbl Kernel List Memsys Proc Sky_mmu Sky_sim Sky_ukernel
