lib/ukernel/config.ml:
