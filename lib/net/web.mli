(** End-to-end web-serving stack: closed-loop load generator → RSS NIC →
    N skyhttpd workers (one per core) → KV + xv6fs backends, with the
    worker→backend hop over SkyBridge direct calls or the baseline
    kernel's synchronous IPC (the slowpath variant). *)

type transport = Ipc_slowpath | Skybridge

val transport_name : transport -> string

type t

val default_conns : int
val default_requests_per_conn : int
val rtt : int

val build :
  ?variant:Sky_ukernel.Config.variant ->
  ?seed:int ->
  ?cores:int ->
  ?conns:int ->
  ?requests_per_conn:int ->
  ?mix:Loadgen.mix ->
  ?disk_blocks:int ->
  workers:int ->
  transport:transport ->
  unit ->
  t
(** Builds the machine, kernel, backends (KV store, xv6fs over a RAM
    disk), NIC with [workers] queues, [workers] worker processes bound
    to the backends over [transport], and the load generator.
    SkyBridge workers call through {!Sky_core.Retry.call}, so injected
    backend crashes recover transparently. *)

val run : t -> unit
(** Drive the whole stack by virtual time until every connection has
    been answered. *)

val throughput : t -> float
(** Requests per simulated second, over the busiest worker core's
    elapsed cycles. *)

val elapsed : t -> int
val loadgen : t -> Loadgen.t
val httpd : t -> Httpd.t
val nic : t -> Nic.t
val kernel : t -> Sky_ukernel.Kernel.t
val subkernel : t -> Sky_core.Subkernel.t option
val retry_stats : t -> Sky_core.Retry.stats option

val fs : t -> Sky_xv6fs.Fs.t
(** The mounted xv6fs backend (post-recovery handle on the SkyBridge
    path) — for fsck after a fault storm. *)
