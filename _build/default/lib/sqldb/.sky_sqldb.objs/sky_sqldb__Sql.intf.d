lib/sqldb/sql.mli: Db
