(** Write-ahead log (xv6's [log.c]): transactions are all-or-nothing
    across crashes.

    [begin_op] opens a transaction; writes are absorbed into a pending
    set; [end_op] commits: (1) copy every dirty block into the log area,
    (2) write the header block — the commit point, (3) install the
    blocks to their home locations, (4) clear the header. Mounting after
    a crash replays any committed-but-uninstalled transaction. *)

let bsize = Sky_blockdev.Ramdisk.block_size

exception Log_full
exception Nested_transaction

type t = {
  disk : Sky_blockdev.Disk.t;
  sb : Superblock.t;
  bcache : Bcache.t;
  pending : (int, bytes) Hashtbl.t;  (** home blockno -> data *)
  mutable order : int list;  (** insertion order, reversed *)
  mutable in_tx : bool;
  mutable commits : int;
  mutable absorbed : int;
}

let create disk sb bcache =
  {
    disk;
    sb;
    bcache;
    pending = Hashtbl.create 16;
    order = [];
    in_tx = false;
    commits = 0;
    absorbed = 0;
  }

let max_blocks t = t.sb.Superblock.nlog - 1 (* minus the header block *)

let begin_op t =
  if t.in_tx then raise Nested_transaction;
  t.in_tx <- true

(* Record a block write in the transaction (xv6's [log_write]). *)
let write t blockno data =
  if not t.in_tx then invalid_arg "Log.write outside transaction";
  if Bytes.length data <> bsize then invalid_arg "Log.write: bad length";
  if Hashtbl.mem t.pending blockno then t.absorbed <- t.absorbed + 1
  else begin
    if Hashtbl.length t.pending >= max_blocks t then raise Log_full;
    t.order <- blockno :: t.order
  end;
  Hashtbl.replace t.pending blockno (Bytes.copy data)

let encode_header blocknos =
  let b = Bytes.make bsize '\000' in
  Bytes.set_int32_le b 0 (Int32.of_int (List.length blocknos));
  List.iteri
    (fun i bn -> Bytes.set_int32_le b ((i + 1) * 4) (Int32.of_int bn))
    blocknos;
  b

let decode_header b =
  let n = Int32.to_int (Bytes.get_int32_le b 0) in
  List.init n (fun i -> Int32.to_int (Bytes.get_int32_le b ((i + 1) * 4)))

let logstart t = t.sb.Superblock.logstart

let end_op t cpu ~core =
  if not t.in_tx then invalid_arg "Log.end_op outside transaction";
  let blocknos = List.rev t.order in
  if blocknos <> [] then begin
    (* 1. Data to the log area. *)
    List.iteri
      (fun i bn ->
        t.disk.Sky_blockdev.Disk.write ~core
          (logstart t + 1 + i)
          (Hashtbl.find t.pending bn))
      blocknos;
    (* 2. Header — the commit point. *)
    t.disk.Sky_blockdev.Disk.write ~core (logstart t) (encode_header blocknos);
    (* 3. Install to home locations (and refresh the cache). *)
    List.iter
      (fun bn ->
        let data = Hashtbl.find t.pending bn in
        t.disk.Sky_blockdev.Disk.write ~core bn data;
        Bcache.put t.bcache cpu bn data)
      blocknos;
    (* 4. Clear the header. *)
    t.disk.Sky_blockdev.Disk.write ~core (logstart t) (encode_header []);
    t.commits <- t.commits + 1
  end;
  Hashtbl.reset t.pending;
  t.order <- [];
  t.in_tx <- false

(* Transaction-aware read: pending writes are visible to the transaction
   that made them. *)
let read t cpu ~core blockno =
  match Hashtbl.find_opt t.pending blockno with
  | Some data -> Bytes.copy data
  | None ->
    Bcache.get t.bcache cpu blockno ~load:(fun () ->
        t.disk.Sky_blockdev.Disk.read ~core blockno)

(* Crash recovery (xv6's [recover_from_log]): replay a committed
   transaction whose installation may have been cut short. *)
let recover disk sb ~core =
  let header = disk.Sky_blockdev.Disk.read ~core sb.Superblock.logstart in
  let blocknos = decode_header header in
  List.iteri
    (fun i bn ->
      let data = disk.Sky_blockdev.Disk.read ~core (sb.Superblock.logstart + 1 + i) in
      disk.Sky_blockdev.Disk.write ~core bn data)
    blocknos;
  disk.Sky_blockdev.Disk.write ~core sb.Superblock.logstart (encode_header []);
  List.length blocknos

(* Abandon the in-memory transaction (crash or error mid-op): nothing
   reached the log header, so recovery discards it. *)
let abort t =
  Hashtbl.reset t.pending;
  t.order <- [];
  t.in_tx <- false

let commits t = t.commits
let in_tx t = t.in_tx
let pending_blocks t = Hashtbl.length t.pending
