lib/sim/rng.mli:
