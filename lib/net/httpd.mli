(** skyhttpd: N worker processes (worker [i] pinned to core [i], serving
    NIC queue [i]) parsing HTTP-style requests and serving them through
    per-worker backend {!binding}s — mediated SkyBridge calls on the fast
    path, baseline kernel IPC on the slowpath variant.

    Fault site ["server.httpd"]: [Crash] kills a worker mid-request; the
    in-flight request is parked, bindings are revoked, and the worker is
    restarted and re-bound (PR 3 machinery) with the request replayed —
    zero lost requests. [Hang] shows up as a tail-latency spike. *)

type binding = {
  kv_put : core:int -> key:string -> value:bytes -> bool;
  kv_get : core:int -> key:string -> bytes option;
  fs_read : core:int -> name:string -> bytes option;
  revoke : core:int -> unit;
  rebind : core:int -> unit;
}
(** One worker's typed view of the backends, closed over its process and
    transport. [revoke]/[rebind] bracket a worker crash/restart. *)

type t

val fault_site : string
(** ["server.httpd"] — arm {!Sky_faults.Fault} here to crash/hang
    workers mid-request. *)

val restart_cycles : int

val create :
  ?preload:string list ->
  Sky_ukernel.Kernel.t ->
  Nic.t ->
  workers:(Sky_ukernel.Proc.t * binding) array ->
  queue_done:(queue:int -> bool) ->
  t
(** One worker per (process, binding) pair; worker [i] is pinned to core
    [i] and parked blocked in recv on queue [i]'s IRQ. The caller spawns
    the processes (they must already be registered as clients with
    whatever transport the bindings use). [preload] names static files
    each worker reads into its cache at boot, through its binding — the
    startup cost of not convoying every request on the FS big lock.
    [queue_done] is the load generator's per-queue exit test. *)

val step : t -> core:int -> Sky_sim.Machine.step
(** One event-loop quantum of [core]'s worker, for
    {!Sky_sim.Machine.interleave}. *)

val run : t -> unit
(** Interleave all workers by virtual time until every queue is done. *)

val served : t -> int
val bad_requests : t -> int
val restarts : t -> int
val hangs : t -> int

val fs_cold : t -> int
(** Static-file cache misses served through the (big-locked) xv6fs
    backend. Each worker pays one per file per lifetime — a crash wipes
    its cache, so restarts re-read through the FS. *)

val worker_served : t -> int -> int
