(** Pingpong: the perf-gate experiment for the translation-acceleration
    layer.

    A client with a deliberately TLB-straining working set (larger than
    the 64-entry dTLB) pingpongs 8-byte messages over SkyBridge direct
    calls to a server that touches a few pages of its own — §2.1.2's
    indirect-cost scenario, where every call's real price includes the
    TLB refills the crossing provokes. The same workload is measured
    twice: once with the paging-structure caches / EPT walk cache / hot
    lines enabled, once with {!Sky_sim.Accel} disabled (the cache-free
    reference walker). The gap is exactly the cycles the acceleration
    structures save; `skybench perf` gates cycles-per-call against
    bench/budgets.json and CI diffs two same-seed runs for determinism. *)

open Sky_ukernel
open Sky_harness

type result = {
  cycles_per_call : int;  (** acceleration on (the shipped configuration) *)
  cycles_per_call_noaccel : int;  (** reference walker, caches off *)
  walk_cycles_per_call : int;  (** TLB-refill cycles per call, accel on *)
  psc_hits : int;
  psc_misses : int;
  ept_wc_hits : int;
  ept_wc_misses : int;
  hot_line_hits : int;
}

let iters_warm = 50
let iters = 1000
let ws_pages = 96

(* One measured configuration: build a fresh machine, warm up, run
   [iters] calls, hand the measured window to [k]. Shared between the
   accel-on/off measurement below and the cross-backend matrix, which
   wants the Subkernel's cycle breakdown instead of the PMU counters. *)
let with_rig k =
  let machine = Sky_sim.Machine.create ~cores:2 ~mem_mib:128 () in
  let kernel = Kernel.create machine in
  let sb = Sky_core.Subkernel.init kernel in
  let client = Kernel.spawn kernel ~name:"client" in
  let server = Kernel.spawn kernel ~name:"server" in
  let vcpu = Kernel.vcpu kernel ~core:0 in
  let mem = Kernel.mem kernel in
  let client_ws = Kernel.map_anon kernel client (ws_pages * 4096) in
  let server_ws = Kernel.map_anon kernel server (4 * 4096) in
  let handler ~core:_ m =
    for page = 0 to 3 do
      ignore (Sky_mmu.Translate.read_u64 vcpu mem ~va:(server_ws + (page * 4096)))
    done;
    m
  in
  let sid = Sky_core.Subkernel.register_server sb server handler in
  Sky_core.Subkernel.register_client_to_server sb client ~server_id:sid;
  Kernel.context_switch kernel ~core:0 client;
  Sky_mmu.Vcpu.set_mode vcpu Sky_mmu.Vcpu.User;
  let cpu = Kernel.cpu kernel ~core:0 in
  let msg = Bytes.create 8 in
  let one () =
    for page = 0 to ws_pages - 1 do
      ignore (Sky_mmu.Translate.read_u64 vcpu mem ~va:(client_ws + (page * 4096)))
    done;
    ignore (Sky_core.Subkernel.direct_server_call sb ~core:0 ~client ~server_id:sid msg)
  in
  for _ = 1 to iters_warm do
    one ()
  done;
  k ~cpu ~sb ~one

let measure () =
  with_rig @@ fun ~cpu ~sb:_ ~one ->
  let pmu = Sky_sim.Cpu.pmu cpu in
  let read ev = Sky_sim.Pmu.read pmu ev in
  let t0 = Sky_sim.Cpu.cycles cpu in
  let walk0 = read Sky_sim.Pmu.Walk_cycles in
  let psc_h0 = read Sky_sim.Pmu.Psc_hit and psc_m0 = read Sky_sim.Pmu.Psc_miss in
  let wc_h0 = read Sky_sim.Pmu.Ept_walk_cache_hit
  and wc_m0 = read Sky_sim.Pmu.Ept_walk_cache_miss in
  let hl0 = read Sky_sim.Pmu.Hot_line_hit in
  for _ = 1 to iters do
    one ()
  done;
  {
    cycles_per_call = (Sky_sim.Cpu.cycles cpu - t0) / iters;
    cycles_per_call_noaccel = 0 (* filled by [run_result] *);
    walk_cycles_per_call = (read Sky_sim.Pmu.Walk_cycles - walk0) / iters;
    psc_hits = read Sky_sim.Pmu.Psc_hit - psc_h0;
    psc_misses = read Sky_sim.Pmu.Psc_miss - psc_m0;
    ept_wc_hits = read Sky_sim.Pmu.Ept_walk_cache_hit - wc_h0;
    ept_wc_misses = read Sky_sim.Pmu.Ept_walk_cache_miss - wc_m0;
    hot_line_hits = read Sky_sim.Pmu.Hot_line_hit - hl0;
  }

(* The cross-backend view of the same measured window: total per-call
   cycles plus the Subkernel's Figure-7 cycle attribution, so the matrix
   can show where each mechanism spends its crossing (vmfunc-category =
   the architectural switch legs, VMFUNC or WRPKRU; syscall-category =
   kernel round trips, the filtered-syscall backend's whole path). *)
type full = {
  f_backend : Sky_core.Backend.kind;
  f_cycles_per_call : int;
  f_switch_per_call : int;  (** vmfunc-category breakdown cycles / call *)
  f_kernel_per_call : int;  (** syscall-category breakdown cycles / call *)
  f_other_per_call : int;
  f_copy_per_call : int;
}

let measure_full () =
  with_rig @@ fun ~cpu ~sb ~one ->
  let module B = Sky_kernels.Breakdown in
  let snap () = B.scale (Sky_core.Subkernel.stats sb) 1 in
  let s0 = snap () in
  let t0 = Sky_sim.Cpu.cycles cpu in
  for _ = 1 to iters do
    one ()
  done;
  let s1 = snap () in
  {
    f_backend = Sky_core.Subkernel.backend sb;
    f_cycles_per_call = (Sky_sim.Cpu.cycles cpu - t0) / iters;
    f_switch_per_call = (s1.B.vmfunc - s0.B.vmfunc) / iters;
    f_kernel_per_call = (s1.B.syscall - s0.B.syscall) / iters;
    f_other_per_call = (s1.B.other - s0.B.other) / iters;
    f_copy_per_call = (s1.B.copy - s0.B.copy) / iters;
  }

let with_accel enabled f =
  let saved = Sky_sim.Accel.is_enabled () in
  Sky_sim.Accel.set_enabled enabled;
  Fun.protect ~finally:(fun () -> Sky_sim.Accel.set_enabled saved) f

let run_result () =
  let on_ = with_accel true measure in
  let off = with_accel false measure in
  { on_ with cycles_per_call_noaccel = off.cycles_per_call }

let pct_hit h m = if h + m = 0 then 0.0 else 100.0 *. float_of_int h /. float_of_int (h + m)

let table r =
  Tbl.make
    ~title:
      "Pingpong: SkyBridge direct call under TLB pressure (96-page client \
       working set, 1000 calls)"
    ~header:[ "metric"; "value" ]
    ~notes:
      [
        "'accel off' disables PSCs, the EPT walk cache and host hot lines \
         (the cache-free reference walker)";
        "hit rates are over the measured window, acceleration on";
      ]
    [
      [ "cycles/call (accel on)"; Tbl.fmt_int r.cycles_per_call ];
      [ "cycles/call (accel off)"; Tbl.fmt_int r.cycles_per_call_noaccel ];
      [ "walk cycles/call (accel on)"; Tbl.fmt_int r.walk_cycles_per_call ];
      [ "psc hit rate %"; Printf.sprintf "%.1f" (pct_hit r.psc_hits r.psc_misses) ];
      [
        "ept walk cache hit rate %";
        Printf.sprintf "%.1f" (pct_hit r.ept_wc_hits r.ept_wc_misses);
      ];
      [ "hot line hits"; Tbl.fmt_int r.hot_line_hits ];
    ]

let to_json r =
  Printf.sprintf
    "{\"experiment\":\"pingpong\",\"cycles_per_call\":%d,\
     \"cycles_per_call_noaccel\":%d,\"walk_cycles_per_call\":%d,\
     \"psc_hits\":%d,\"psc_misses\":%d,\"ept_wc_hits\":%d,\
     \"ept_wc_misses\":%d,\"hot_line_hits\":%d}"
    r.cycles_per_call r.cycles_per_call_noaccel r.walk_cycles_per_call
    r.psc_hits r.psc_misses r.ept_wc_hits r.ept_wc_misses r.hot_line_hits

let run () = table (run_result ())
