lib/harness/tbl.ml: Array Buffer List Printf String
