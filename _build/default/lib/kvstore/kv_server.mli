(** The key-value store server: an open-addressing hash table whose
    entries live in simulated guest memory, so inserts and lookups have
    real cache footprints proportional to key/value size — the driver of
    Figure 2's size axis. *)

type t

exception Table_full

val slot_count : int
val max_kv : int
(** Maximum key or value length (1024 — Figure 2's largest point). *)

val create : Sky_sim.Machine.t -> t

val insert : t -> Sky_sim.Cpu.t -> key:bytes -> value:bytes -> unit
(** Linear-probed insert or overwrite. *)

val query : t -> Sky_sim.Cpu.t -> key:bytes -> bytes option
val entries : t -> int
