lib/sqldb/sql.ml: Buffer Bytes Db List Printf String
