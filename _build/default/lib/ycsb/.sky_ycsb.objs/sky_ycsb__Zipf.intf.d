lib/ycsb/zipf.mli: Sky_sim
