(** Bounded retry with exponential backoff over {!Subkernel.call} — the
    client-side half of §7 recovery used by the kvstore/ycsb clients.

    On [Crashed] the server is restarted (orphans rebound) before the
    retry; on [Revoked] from an aborted direct call the binding is
    re-established; a top-level revoked binding never errors at all — it
    degrades to the slowpath inside {!Subkernel.call}. *)

type stats = {
  mutable attempts : int;  (** total call attempts, including retries *)
  mutable retried_ok : int;  (** calls that succeeded after >= 1 retry *)
  mutable degraded : int;  (** calls served via the slowpath fallback *)
  mutable lost : int;  (** calls that exhausted the retry budget *)
  mutable restarts : int;  (** server restarts triggered *)
}

val create_stats : unit -> stats

exception Gave_up of Subkernel.call_error
(** The retry budget is exhausted; carries the last typed error. *)

val call :
  ?max_attempts:int ->
  ?backoff:int ->
  ?stats:stats ->
  ?timeout:int ->
  ?on_crash:(int -> unit) ->
  Subkernel.t ->
  core:int ->
  client:Sky_ukernel.Proc.t ->
  server_id:int ->
  bytes ->
  bytes
(** [call sb ~core ~client ~server_id msg] with up to [max_attempts]
    (default 4) attempts, charging [backoff lsl attempt] cycles (default
    base 2000) between attempts. [on_crash sid] runs after a crashed
    server [sid] has been restarted (e.g. to remount a file system). *)
