lib/xv6fs/log.ml: Bcache Bytes Hashtbl Int32 List Sky_blockdev Superblock
