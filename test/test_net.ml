(* Tests for the lib/net subsystem: NIC rings + RSS + coalesced IRQs,
   the HTTP-ish codec, the interleaved multi-core run loop, and the
   end-to-end web stack (SkyBridge vs slowpath IPC, determinism, and
   crash-safe worker recovery). *)

open Sky_sim
open Sky_ukernel
open Sky_net
module Fault = Sky_faults.Fault

let with_faults f = Fun.protect ~finally:Fault.disable f

let make ?(cores = 4) () =
  let machine = Machine.create ~cores ~mem_mib:64 () in
  let kernel = Kernel.create machine in
  (kernel, machine)

(* ------------------------------------------------------------------ *)
(* NIC                                                                 *)
(* ------------------------------------------------------------------ *)

let test_nic_roundtrip () =
  let k, _ = make () in
  let nic = Nic.create k ~queues:2 in
  let flow =
    (* find a flow RSS steers to queue 0 *)
    let rec go f = if Nic.queue_of_flow nic f = 0 then f else go (f + 1) in
    go 1
  in
  let payload = Bytes.of_string "GET /kv/hello" in
  Nic.deliver nic ~flow ~seq:0 ~payload ~at:5_000;
  Alcotest.(check int) "queued" 1 (Nic.rx_level nic ~queue:0);
  Alcotest.(check int) "other queue empty" 0 (Nic.rx_level nic ~queue:1);
  (match Nic.rx nic ~queue:0 ~core:0 with
  | None -> Alcotest.fail "expected a packet"
  | Some pkt ->
    Alcotest.(check int) "flow" flow pkt.Nic.flow;
    Alcotest.(check int) "seq" 0 pkt.Nic.seq;
    Alcotest.(check bytes) "payload survives the rings" payload pkt.Nic.payload;
    Alcotest.(check bool) "consumer advanced to delivery time" true
      (Cpu.cycles (Kernel.cpu k ~core:0) >= 5_000));
  Alcotest.(check bool) "drained" true (Nic.rx nic ~queue:0 ~core:0 = None)

let test_nic_rss_spreads () =
  let k, _ = make () in
  let nic = Nic.create k ~queues:4 in
  let counts = Array.make 4 0 in
  for flow = 0 to 1023 do
    let q = Nic.queue_of_flow nic flow in
    counts.(q) <- counts.(q) + 1
  done;
  Array.iteri
    (fun q c ->
      Alcotest.(check bool)
        (Printf.sprintf "queue %d gets a fair share (%d)" q c)
        true
        (c > 150 && c < 360))
    counts

let test_nic_irq_coalescing () =
  let k, _ = make () in
  let nic = Nic.create k ~queues:1 in
  for seq = 0 to 2 do
    Nic.deliver nic ~flow:1 ~seq ~payload:(Bytes.of_string "x") ~at:0
  done;
  Alcotest.(check int) "burst into empty ring raises one IRQ" 1
    (Nic.irqs_raised nic ~queue:0);
  while Nic.rx nic ~queue:0 ~core:0 <> None do () done;
  Nic.deliver nic ~flow:1 ~seq:3 ~payload:(Bytes.of_string "y") ~at:0;
  Alcotest.(check int) "empty->non-empty edge raises again" 2
    (Nic.irqs_raised nic ~queue:0)

let test_nic_ring_full_drops () =
  let k, _ = make () in
  let nic = Nic.create k ~queues:1 in
  for seq = 0 to Nic.ring_entries + 4 do
    Nic.deliver nic ~flow:1 ~seq ~payload:(Bytes.of_string "x") ~at:0
  done;
  Alcotest.(check int) "overflow counted, not raised" 5 (Nic.dropped nic);
  Alcotest.(check int) "ring holds capacity" Nic.ring_entries
    (Nic.rx_level nic ~queue:0)

(* ------------------------------------------------------------------ *)
(* HTTP codec                                                          *)
(* ------------------------------------------------------------------ *)

let test_http_roundtrip () =
  let reqs =
    [
      Http.Kv_get "alpha";
      Http.Kv_put ("k1", Bytes.of_string "some value with spaces");
      Http.Fs_get "web0.html";
    ]
  in
  List.iter
    (fun r ->
      Alcotest.(check bool) "request roundtrips" true
        (Http.parse_request (Http.serialize_request r) = r))
    reqs;
  let resp = Http.ok (Bytes.of_string "body bytes") in
  let back = Http.parse_response (Http.serialize_response resp) in
  Alcotest.(check int) "status" 200 back.Http.status;
  Alcotest.(check bytes) "body" resp.Http.body back.Http.body;
  List.iter
    (fun junk ->
      try
        ignore (Http.parse_request (Bytes.of_string junk));
        Alcotest.fail ("accepted junk: " ^ junk)
      with Http.Bad_request _ -> ())
    [ "DELETE /kv/x"; "GET /kv/"; "PUT /kv/nokey"; "" ]

(* ------------------------------------------------------------------ *)
(* Interleaved run loop                                                *)
(* ------------------------------------------------------------------ *)

let test_interleave_orders_by_virtual_time () =
  let machine = Machine.create ~cores:2 ~mem_mib:16 () in
  let order = ref [] in
  let left = [| 3; 3 |] in
  Machine.interleave machine ~cores:[ 0; 1 ] ~step:(fun ~core ->
      if left.(core) = 0 then Machine.Done
      else begin
        left.(core) <- left.(core) - 1;
        order := core :: !order;
        (* core 0 is slow: it should run once per two core-1 steps *)
        Cpu.charge (Machine.core machine core) (if core = 0 then 1000 else 500);
        Machine.Progress
      end);
  Alcotest.(check (list int)) "behind core always runs first"
    [ 0; 1; 0; 1; 1; 0 ]
    (List.rev (List.filteri (fun i _ -> i < 6) (List.rev !order)))

let test_interleave_stuck () =
  let machine = Machine.create ~cores:2 ~mem_mib:16 () in
  try
    Machine.interleave machine ~cores:[ 0; 1 ] ~step:(fun ~core:_ -> Machine.Idle);
    Alcotest.fail "expected Stuck"
  with Machine.Stuck _ -> ()

(* ------------------------------------------------------------------ *)
(* End-to-end web stack                                                *)
(* ------------------------------------------------------------------ *)

let small ?(seed = 7) ?(workers = 2) transport =
  Web.build ~seed ~cores:4 ~conns:8 ~requests_per_conn:3 ~workers ~transport ()

let test_web_smoke () =
  let t = small Web.Skybridge in
  Web.run t;
  let lg = Web.loadgen t in
  Alcotest.(check int) "every request answered" (Loadgen.expected lg)
    (Loadgen.responses lg);
  Alcotest.(check int) "no validation errors" 0 (Loadgen.errors lg);
  Alcotest.(check int) "httpd served them" (Loadgen.expected lg)
    (Httpd.served (Web.httpd t));
  Alcotest.(check bool) "positive throughput" true (Web.throughput t > 0.0);
  (match Web.subkernel t with
  | None -> Alcotest.fail "skybridge stack has a subkernel"
  | Some sb -> Alcotest.(check int) "clean audit" 0
      (List.length (Sky_core.Subkernel.audit sb)));
  (* both workers actually served traffic *)
  Alcotest.(check bool) "worker 0 busy" true (Httpd.worker_served (Web.httpd t) 0 > 0);
  Alcotest.(check bool) "worker 1 busy" true (Httpd.worker_served (Web.httpd t) 1 > 0)

let test_web_slowpath_and_gap () =
  let sky = small Web.Skybridge in
  Web.run sky;
  let ipc = small Web.Ipc_slowpath in
  Web.run ipc;
  Alcotest.(check int) "slowpath answers everything too"
    (Loadgen.expected (Web.loadgen ipc))
    (Loadgen.responses (Web.loadgen ipc));
  Alcotest.(check int) "slowpath validation clean" 0 (Loadgen.errors (Web.loadgen ipc));
  Alcotest.(check bool)
    (Printf.sprintf "SkyBridge beats slowpath IPC (%.0f vs %.0f req/s)"
       (Web.throughput sky) (Web.throughput ipc))
    true
    (Web.throughput sky > Web.throughput ipc)

let test_web_deterministic () =
  let run () =
    let t = small ~seed:11 Web.Skybridge in
    Web.run t;
    let h = Loadgen.latencies (Web.loadgen t) in
    ( Web.elapsed t,
      Loadgen.responses (Web.loadgen t),
      Sky_trace.Histogram.p50 h,
      Sky_trace.Histogram.p99 h,
      Sky_trace.Histogram.max_value h )
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "same seed, bit-identical run" true (a = b)

let test_web_worker_crash_recovery () =
  with_faults @@ fun () ->
  Fault.reset ~seed:3 ();
  Fault.arm ~budget:2 ~site:Httpd.fault_site ~kind:Fault.Crash (Fault.At_hit 4);
  let t = small Web.Skybridge in
  Web.run t;
  let lg = Web.loadgen t in
  Alcotest.(check bool) "workers crashed" true (Httpd.restarts (Web.httpd t) >= 1);
  Alcotest.(check int) "zero lost requests" (Loadgen.expected lg)
    (Loadgen.responses lg);
  Alcotest.(check int) "zero corrupt responses" 0 (Loadgen.errors lg);
  match Web.subkernel t with
  | None -> ()
  | Some sb ->
    Alcotest.(check int) "audit still clean after revoke/rebind" 0
      (List.length (Sky_core.Subkernel.audit sb))

let () =
  Alcotest.run "net"
    [
      ( "nic",
        [
          Alcotest.test_case "roundtrip" `Quick test_nic_roundtrip;
          Alcotest.test_case "rss-spreads" `Quick test_nic_rss_spreads;
          Alcotest.test_case "irq-coalescing" `Quick test_nic_irq_coalescing;
          Alcotest.test_case "ring-full-drops" `Quick test_nic_ring_full_drops;
        ] );
      ("http", [ Alcotest.test_case "codec" `Quick test_http_roundtrip ]);
      ( "interleave",
        [
          Alcotest.test_case "virtual-time-order" `Quick
            test_interleave_orders_by_virtual_time;
          Alcotest.test_case "stuck-detection" `Quick test_interleave_stuck;
        ] );
      ( "web",
        [
          Alcotest.test_case "smoke" `Quick test_web_smoke;
          Alcotest.test_case "skybridge-vs-slowpath" `Quick test_web_slowpath_and_gap;
          Alcotest.test_case "deterministic" `Quick test_web_deterministic;
          Alcotest.test_case "worker-crash-recovery" `Quick
            test_web_worker_crash_recovery;
        ] );
    ]
