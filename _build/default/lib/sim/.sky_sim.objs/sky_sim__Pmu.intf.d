lib/sim/pmu.mli:
