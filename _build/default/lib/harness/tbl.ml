(** Minimal aligned-table rendering for experiment output, with optional
    paper-reference columns so every bench prints "paper vs measured"
    side by side. *)

type t = { title : string; header : string list; rows : string list list; notes : string list }

let make ~title ~header ?(notes = []) rows = { title; header; rows; notes }

let widths t =
  let all = t.header :: t.rows in
  let cols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let w = Array.make cols 0 in
  List.iter
    (List.iteri (fun i cell -> w.(i) <- max w.(i) (String.length cell)))
    all;
  w

let render t =
  let w = widths t in
  let line cells =
    String.concat "  "
      (List.mapi
         (fun i c ->
           let pad = w.(i) - String.length c in
           if i = 0 then c ^ String.make pad ' ' else String.make pad ' ' ^ c)
         cells)
  in
  let sep =
    String.concat "--"
      (Array.to_list (Array.map (fun n -> String.make n '-') w))
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf (line t.header ^ "\n");
  Buffer.add_string buf (sep ^ "\n");
  List.iter (fun r -> Buffer.add_string buf (line r ^ "\n")) t.rows;
  List.iter (fun n -> Buffer.add_string buf ("  note: " ^ n ^ "\n")) t.notes;
  Buffer.contents buf

let print t = print_string (render t)

let to_markdown t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "### %s\n\n" t.title);
  let row cells = "| " ^ String.concat " | " cells ^ " |\n" in
  Buffer.add_string buf (row t.header);
  Buffer.add_string buf (row (List.map (fun _ -> "---") t.header));
  List.iter (fun r -> Buffer.add_string buf (row r)) t.rows;
  List.iter (fun n -> Buffer.add_string buf (Printf.sprintf "\n> %s\n" n)) t.notes;
  Buffer.add_string buf "\n";
  Buffer.contents buf

let fmt_int n =
  (* 12345 -> "12,345" for readability *)
  let s = string_of_int n in
  let len = String.length s in
  let buf = Buffer.create (len + 4) in
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 && c <> '-' then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let fmt_float f = Printf.sprintf "%.1f" f
let fmt_ops f = Printf.sprintf "%.0f" f
let fmt_speedup f = Printf.sprintf "%+.1f%%" ((f -. 1.0) *. 100.0)
