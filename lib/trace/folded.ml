(** Folded-stack exporter: one "path;to;frame <self-cycles>" line per
    distinct span stack, the input format of Brendan Gregg's
    [flamegraph.pl] and of speedscope's "folded" importer. *)

let export () =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (path, self) ->
      if self > 0 then Buffer.add_string buf (Printf.sprintf "%s %d\n" path self))
    (Trace.folded ());
  Buffer.contents buf
