lib/kernels/scheduler.ml: List Sky_sim
