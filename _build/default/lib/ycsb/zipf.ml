(** Zipfian request distribution — YCSB's default key popularity model
    (Gray et al.'s rejection-free method, as used in YCSB's
    ZipfianGenerator, with the standard constant 0.99). *)

type t = {
  n : int;
  theta : float;
  alpha : float;
  zetan : float;
  eta : float;
  rng : Sky_sim.Rng.t;
}

let zeta n theta =
  let acc = ref 0.0 in
  for i = 1 to n do
    acc := !acc +. (1.0 /. Float.pow (float_of_int i) theta)
  done;
  !acc

let create ?(theta = 0.99) ~items rng =
  if items <= 0 then invalid_arg "Zipf.create: items <= 0";
  let zetan = zeta items theta in
  let zeta2 = zeta 2 theta in
  {
    n = items;
    theta;
    alpha = 1.0 /. (1.0 -. theta);
    zetan;
    eta =
      (1.0 -. Float.pow (2.0 /. float_of_int items) (1.0 -. theta))
      /. (1.0 -. (zeta2 /. zetan));
    rng;
  }

(* Next item in [0, n). *)
let next t =
  let u = Sky_sim.Rng.float t.rng in
  let uz = u *. t.zetan in
  if uz < 1.0 then 0
  else if uz < 1.0 +. Float.pow 0.5 t.theta then 1
  else
    let v =
      float_of_int t.n
      *. Float.pow ((t.eta *. u) -. t.eta +. 1.0) t.alpha
    in
    min (t.n - 1) (int_of_float v)
