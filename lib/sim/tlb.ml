type entry = { ppn : int; page_shift : int; writable : bool; user : bool }

(* A slot is live iff
     valid  &&  gen = t.gen  &&  stamp > asid_floor(asid)  &&  epoch fresh.
   [flush_all] bumps [t.gen] (O(1)); [flush_asid] records the current
   LRU clock as that ASID's "floor", deadening every older stamp (O(1));
   a global [Accel] epoch change invalidates the whole structure lazily.
   Nothing ever iterates the slot array on a flush. *)
type slot = {
  mutable valid : bool;
  mutable gen : int;
  mutable asid : int;
  mutable vpn : int;
  mutable stamp : int;
  mutable entry : entry;
}

type t = {
  name : string;
  sets : int;
  ways : int;
  slots : slot array;
  asid_floors : (int, int) Hashtbl.t;
  mutable gen : int;
  mutable seen_epoch : int;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

let dummy_entry = { ppn = 0; page_shift = 12; writable = false; user = false }

let is_pow2 n = n > 0 && n land (n - 1) = 0

let create ~name ~entries ~ways =
  if ways <= 0 || entries mod ways <> 0 then
    invalid_arg "Tlb.create: geometry does not divide";
  let sets = entries / ways in
  if not (is_pow2 sets) then invalid_arg "Tlb.create: sets not pow2";
  let slots =
    Array.init entries (fun _ ->
        { valid = false; gen = 0; asid = 0; vpn = 0; stamp = 0;
          entry = dummy_entry })
  in
  { name; sets; ways; slots; asid_floors = Hashtbl.create 7; gen = 0;
    seen_epoch = Accel.current_epoch (); clock = 0; hits = 0; misses = 0 }

let name t = t.name
let capacity t = Array.length t.slots
let set_of t vpn = vpn land (t.sets - 1)

(* Mapping mutations elsewhere in the machine (EPT unmap/remap, guest
   page-table unmap, table teardown) bump the global epoch; drop all
   entries the first time we are consulted afterwards. *)
let sync t =
  let e = Accel.current_epoch () in
  if t.seen_epoch <> e then begin
    t.seen_epoch <- e;
    t.gen <- t.gen + 1;
    Hashtbl.reset t.asid_floors
  end

let floor_of t asid =
  if Hashtbl.length t.asid_floors = 0 then min_int
  else match Hashtbl.find_opt t.asid_floors asid with
    | Some f -> f
    | None -> min_int

let live t s = s.valid && s.gen = t.gen && s.stamp > floor_of t s.asid

let find t ~asid ~vpn =
  let base = set_of t vpn * t.ways in
  let floor = floor_of t asid in
  let rec go w =
    if w = t.ways then None
    else
      let s = t.slots.(base + w) in
      if s.valid && s.gen = t.gen && s.asid = asid && s.vpn = vpn
         && s.stamp > floor
      then Some s
      else go (w + 1)
  in
  go 0

let lookup_slot t ~asid ~vpn =
  sync t;
  t.clock <- t.clock + 1;
  match find t ~asid ~vpn with
  | Some s ->
    s.stamp <- t.clock;
    t.hits <- t.hits + 1;
    Some s
  | None ->
    t.misses <- t.misses + 1;
    None

let lookup t ~asid ~vpn =
  match lookup_slot t ~asid ~vpn with
  | Some s -> Some s.entry
  | None -> None

let slot_entry s = s.entry

(* Hot-line revalidation: the caller remembered [s] from an earlier
   lookup of the same (asid, vpn). If the slot still holds that live
   mapping, replicate the observable effects of a hit (LRU clock,
   stamp, hit counter) without scanning the set. Failure counts
   nothing — the caller falls back to [lookup_slot], which accounts
   the access. *)
let slot_hit t s ~asid ~vpn =
  sync t;
  if s.valid && s.gen = t.gen && s.asid = asid && s.vpn = vpn
     && s.stamp > floor_of t asid
  then begin
    t.clock <- t.clock + 1;
    s.stamp <- t.clock;
    t.hits <- t.hits + 1;
    Some s.entry
  end
  else None

let insert t ~asid ~vpn entry =
  sync t;
  t.clock <- t.clock + 1;
  match find t ~asid ~vpn with
  | Some s ->
    s.entry <- entry;
    s.stamp <- t.clock
  | None ->
    (* Prefer a dead slot, otherwise evict the LRU way. *)
    let base = set_of t vpn * t.ways in
    let victim = ref t.slots.(base) in
    for w = 1 to t.ways - 1 do
      let s = t.slots.(base + w) in
      let v = !victim in
      if live t v && ((not (live t s)) || s.stamp < v.stamp) then victim := s
    done;
    let s = !victim in
    s.valid <- true;
    s.gen <- t.gen;
    s.asid <- asid;
    s.vpn <- vpn;
    s.entry <- entry;
    s.stamp <- t.clock

let flush_all t =
  sync t;
  t.gen <- t.gen + 1;
  Hashtbl.reset t.asid_floors

let flush_asid t ~asid =
  sync t;
  (* Everything tagged [asid] with stamp <= now is dead; entries the
     ASID inserts later get fresher stamps and match again. *)
  Hashtbl.replace t.asid_floors asid t.clock

let flush_page t ~asid ~vpn =
  sync t;
  match find t ~asid ~vpn with Some s -> s.valid <- false | None -> ()

let flush_vpn_all_asids t ~vpn =
  sync t;
  let base = set_of t vpn * t.ways in
  for w = 0 to t.ways - 1 do
    let s = t.slots.(base + w) in
    if s.vpn = vpn then s.valid <- false
  done

let hits t = t.hits
let misses t = t.misses

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0
