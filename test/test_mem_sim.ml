(* Unit and property tests for the physical-memory and machine-simulator
   substrates (lib/mem, lib/sim). *)

open Sky_mem
open Sky_sim

let mem () = Phys_mem.create ~frames:64

(* ------------------------------------------------------------------ *)
(* Phys_mem                                                            *)
(* ------------------------------------------------------------------ *)

let test_u8_roundtrip () =
  let m = mem () in
  Phys_mem.write_u8 m 0 0xab;
  Phys_mem.write_u8 m 4097 0xcd;
  Alcotest.(check int) "byte 0" 0xab (Phys_mem.read_u8 m 0);
  Alcotest.(check int) "byte 4097" 0xcd (Phys_mem.read_u8 m 4097);
  Alcotest.(check int) "untouched is zero" 0 (Phys_mem.read_u8 m 100)

let test_u64_roundtrip () =
  let m = mem () in
  Phys_mem.write_u64 m 8 0x1122334455667788L;
  Alcotest.(check int64) "u64" 0x1122334455667788L (Phys_mem.read_u64 m 8);
  (* little-endian byte order *)
  Alcotest.(check int) "low byte" 0x88 (Phys_mem.read_u8 m 8);
  Alcotest.(check int) "high byte" 0x11 (Phys_mem.read_u8 m 15)

let test_u64_alignment () =
  let m = mem () in
  Alcotest.check_raises "unaligned read"
    (Invalid_argument "Phys_mem.read_u64: unaligned 0x9") (fun () ->
      ignore (Phys_mem.read_u64 m 9))

let test_out_of_range () =
  let m = mem () in
  let size = Phys_mem.size_bytes m in
  (try
     ignore (Phys_mem.read_u8 m size);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ());
  try
    Phys_mem.write_u8 m (-1) 0;
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_bytes_span_frames () =
  let m = mem () in
  let data = Bytes.init 9000 (fun i -> Char.chr (i land 0xff)) in
  Phys_mem.write_bytes m 100 data;
  let back = Phys_mem.read_bytes m 100 9000 in
  Alcotest.(check bool) "spanning blit roundtrips" true (Bytes.equal data back)

let test_lazy_frames () =
  let m = Phys_mem.create ~frames:1024 in
  Alcotest.(check int) "no frames touched" 0 (Phys_mem.touched_frames m);
  Phys_mem.write_u8 m 0 1;
  Phys_mem.write_u8 m (5 * 4096) 1;
  Alcotest.(check int) "two frames touched" 2 (Phys_mem.touched_frames m)

let prop_bytes_roundtrip =
  QCheck.Test.make ~name:"phys_mem blit roundtrips at random offsets"
    ~count:100
    QCheck.(pair (int_bound 20000) (string_of_size (Gen.int_range 1 5000)))
    (fun (off, s) ->
      let m = mem () in
      Phys_mem.write_bytes m off (Bytes.of_string s);
      Bytes.to_string (Phys_mem.read_bytes m off (String.length s)) = s)

(* ------------------------------------------------------------------ *)
(* Frame_alloc                                                         *)
(* ------------------------------------------------------------------ *)

let test_alloc_distinct () =
  let m = mem () in
  let a = Frame_alloc.create m in
  let f1 = Frame_alloc.alloc_frame a in
  let f2 = Frame_alloc.alloc_frame a in
  Alcotest.(check bool) "distinct frames" true (f1 <> f2);
  Alcotest.(check int) "aligned" 0 (f1 land 4095);
  Alcotest.(check int) "in use" 2 (Frame_alloc.in_use a)

let test_alloc_zeroed () =
  let m = mem () in
  let a = Frame_alloc.create m in
  let f = Frame_alloc.alloc_frame a in
  Phys_mem.write_u8 m f 7;
  Frame_alloc.free_frame a f;
  let f' = Frame_alloc.alloc_frame a in
  Alcotest.(check int) "same frame reused" f f';
  Alcotest.(check int) "zeroed on alloc" 0 (Phys_mem.read_u8 m f')

let test_alloc_contiguous () =
  let m = mem () in
  let a = Frame_alloc.create m in
  let base = Frame_alloc.alloc_frames a ~count:8 in
  Alcotest.(check int) "in use" 8 (Frame_alloc.in_use a);
  Frame_alloc.free_frames a ~pa:base ~count:8;
  Alcotest.(check int) "all freed" 0 (Frame_alloc.in_use a)

let test_reserve () =
  let m = mem () in
  let a = Frame_alloc.create m in
  Frame_alloc.reserve a ~first_frame:0 ~count:10;
  let f = Frame_alloc.alloc_frame a in
  Alcotest.(check bool) "skips reserved" true (Phys_mem.frame_of_addr f >= 10);
  Alcotest.check_raises "cannot free reserved"
    (Invalid_argument "Frame_alloc: freeing reserved frame 0") (fun () ->
      Frame_alloc.free_frame a 0)

let test_exhaustion () =
  let m = mem () in
  let a = Frame_alloc.create m in
  for _ = 1 to 64 do
    ignore (Frame_alloc.alloc_frame a)
  done;
  try
    ignore (Frame_alloc.alloc_frame a);
    Alcotest.fail "expected Out_of_memory"
  with Frame_alloc.Out_of_memory -> ()

let test_double_free () =
  let m = mem () in
  let a = Frame_alloc.create m in
  let f = Frame_alloc.alloc_frame a in
  Frame_alloc.free_frame a f;
  try
    Frame_alloc.free_frame a f;
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let prop_alloc_no_overlap =
  QCheck.Test.make ~name:"allocated runs never overlap" ~count:50
    QCheck.(list_of_size (Gen.int_range 1 20) (int_range 1 5))
    (fun counts ->
      let m = Phys_mem.create ~frames:256 in
      let a = Frame_alloc.create m in
      let allocs =
        List.filter_map
          (fun c ->
            try Some (Frame_alloc.alloc_frames a ~count:c, c)
            with Frame_alloc.Out_of_memory -> None)
          counts
      in
      let covered = Hashtbl.create 64 in
      List.for_all
        (fun (base, c) ->
          let ok = ref true in
          for i = 0 to c - 1 do
            let f = Phys_mem.frame_of_addr base + i in
            if Hashtbl.mem covered f then ok := false;
            Hashtbl.replace covered f ()
          done;
          !ok)
        allocs)

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)
(* ------------------------------------------------------------------ *)

let small_cache () =
  Cache.create ~name:"t" ~size_bytes:(4 * 64 * 2) ~ways:2 ~line_bytes:64
(* 4 sets, 2 ways *)

let test_cache_hit_after_access () =
  let c = small_cache () in
  Alcotest.(check bool) "first access misses" false (Cache.access c 0x1000);
  Alcotest.(check bool) "second access hits" true (Cache.access c 0x1000);
  Alcotest.(check bool) "same line hits" true (Cache.access c 0x1030)

let test_cache_lru_eviction () =
  let c = small_cache () in
  (* Three lines in the same set (stride = sets * line = 256). *)
  ignore (Cache.access c 0);
  ignore (Cache.access c 256);
  ignore (Cache.access c 0);
  (* 0 is MRU *)
  ignore (Cache.access c 512);
  (* evicts 256 *)
  Alcotest.(check bool) "0 still present" true (Cache.probe c 0);
  Alcotest.(check bool) "256 evicted" false (Cache.probe c 256);
  Alcotest.(check bool) "512 present" true (Cache.probe c 512)

let test_cache_stats () =
  let c = small_cache () in
  ignore (Cache.access c 0);
  ignore (Cache.access c 0);
  ignore (Cache.access c 64);
  Alcotest.(check int) "hits" 1 (Cache.hits c);
  Alcotest.(check int) "misses" 2 (Cache.misses c);
  Cache.reset_stats c;
  Alcotest.(check int) "reset" 0 (Cache.hits c + Cache.misses c);
  Alcotest.(check bool) "contents survive reset" true (Cache.probe c 0)

let test_cache_geometry_validation () =
  try
    ignore (Cache.create ~name:"bad" ~size_bytes:100 ~ways:3 ~line_bytes:64);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let prop_cache_capacity =
  QCheck.Test.make ~name:"working set <= capacity always hits after warmup"
    ~count:30
    QCheck.(int_range 1 8)
    (fun lines ->
      let c = small_cache () in
      (* [lines] distinct lines all mapping to different sets where
         possible; warm up twice, then every access hits. *)
      let addrs = List.init lines (fun i -> i * 64) in
      List.iter (fun a -> ignore (Cache.access c a)) addrs;
      List.for_all (fun a -> Cache.access c a) addrs)

(* ------------------------------------------------------------------ *)
(* Tlb                                                                 *)
(* ------------------------------------------------------------------ *)

let tlb () = Tlb.create ~name:"t" ~entries:8 ~ways:2

let entry ppn = { Tlb.ppn; page_shift = 12; writable = true; user = true }

let test_tlb_insert_lookup () =
  let t = tlb () in
  Alcotest.(check bool) "miss first" true (Tlb.lookup t ~asid:1 ~vpn:5 = None);
  Tlb.insert t ~asid:1 ~vpn:5 (entry 42);
  (match Tlb.lookup t ~asid:1 ~vpn:5 with
  | Some e -> Alcotest.(check int) "ppn" 42 e.Tlb.ppn
  | None -> Alcotest.fail "expected hit");
  Alcotest.(check bool) "other asid misses" true (Tlb.lookup t ~asid:2 ~vpn:5 = None)

let test_tlb_flush_asid () =
  let t = tlb () in
  Tlb.insert t ~asid:1 ~vpn:1 (entry 1);
  Tlb.insert t ~asid:2 ~vpn:1 (entry 2);
  Tlb.flush_asid t ~asid:1;
  Alcotest.(check bool) "asid1 flushed" true (Tlb.lookup t ~asid:1 ~vpn:1 = None);
  Alcotest.(check bool) "asid2 kept" true (Tlb.lookup t ~asid:2 ~vpn:1 <> None)

let test_tlb_flush_all () =
  let t = tlb () in
  Tlb.insert t ~asid:1 ~vpn:1 (entry 1);
  Tlb.flush_all t;
  Alcotest.(check bool) "flushed" true (Tlb.lookup t ~asid:1 ~vpn:1 = None)

let test_tlb_eviction () =
  let t = tlb () in
  (* 4 sets x 2 ways; vpns 0,4,8 share set 0. *)
  Tlb.insert t ~asid:0 ~vpn:0 (entry 0);
  Tlb.insert t ~asid:0 ~vpn:4 (entry 4);
  ignore (Tlb.lookup t ~asid:0 ~vpn:0);
  Tlb.insert t ~asid:0 ~vpn:8 (entry 8);
  Alcotest.(check bool) "lru (vpn 4) evicted" true (Tlb.lookup t ~asid:0 ~vpn:4 = None);
  Alcotest.(check bool) "mru kept" true (Tlb.lookup t ~asid:0 ~vpn:0 <> None)

(* ------------------------------------------------------------------ *)
(* Cpu / Machine / Memsys                                              *)
(* ------------------------------------------------------------------ *)

let test_cpu_charge () =
  let machine = Machine.create ~cores:2 ~mem_mib:16 () in
  let c = Machine.core machine 0 in
  Cpu.charge c 100;
  Cpu.charge c 50;
  Alcotest.(check int) "cycles accumulate" 150 (Cpu.cycles c);
  Cpu.advance_to c 120;
  Alcotest.(check int) "advance_to never goes back" 150 (Cpu.cycles c);
  Cpu.advance_to c 500;
  Alcotest.(check int) "advance_to goes forward" 500 (Cpu.cycles c)

let test_machine_sync () =
  let machine = Machine.create ~cores:3 ~mem_mib:16 () in
  Cpu.charge (Machine.core machine 1) 1000;
  Alcotest.(check int) "max across cores" 1000 (Machine.max_cycles machine);
  Machine.sync_cores machine;
  Alcotest.(check int) "core 0 advanced" 1000 (Cpu.cycles (Machine.core machine 0))

let test_memsys_latencies () =
  let machine = Machine.create ~cores:1 ~mem_mib:16 () in
  let c = Machine.core machine 0 in
  Memsys.access c Memsys.Data 0x4000;
  Alcotest.(check int) "cold access costs DRAM" Costs.lat_dram (Cpu.cycles c);
  Memsys.access c Memsys.Data 0x4000;
  Alcotest.(check int) "then L1"
    (Costs.lat_dram + Costs.lat_l1)
    (Cpu.cycles c)

let test_memsys_l2_fill () =
  let machine = Machine.create ~cores:1 ~mem_mib:16 () in
  let c = Machine.core machine 0 in
  (* Fill L1d (32 KiB, 512 lines) beyond capacity with a 64 KiB sweep;
     then the first line should still be in L2 (256 KiB). *)
  for i = 0 to 1023 do
    Memsys.access c Memsys.Data (i * 64)
  done;
  let before = Cpu.cycles c in
  Memsys.access c Memsys.Data 0;
  let lat = Cpu.cycles c - before in
  Alcotest.(check int) "L1 evicted, L2 hit" Costs.lat_l2 lat

let test_footprint_counters () =
  let machine = Machine.create ~cores:1 ~mem_mib:16 () in
  let c = Machine.core machine 0 in
  Memsys.access c Memsys.Insn 0;
  Memsys.access c Memsys.Data 4096;
  let fp = Cpu.footprint c in
  Alcotest.(check int) "l1i miss" 1 fp.Cpu.l1i_miss;
  Alcotest.(check int) "l1d miss" 1 fp.Cpu.l1d_miss;
  Alcotest.(check int) "both fell through l2" 2 fp.Cpu.l2_miss

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  let xs = List.init 10 (fun _ -> Rng.next a) in
  let ys = List.init 10 (fun _ -> Rng.next b) in
  Alcotest.(check (list int)) "same seed, same stream" xs ys

let test_rng_bounds () =
  let r = Rng.create ~seed:7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    if v < 0 || v >= 17 then Alcotest.fail "out of bounds"
  done

let prop_rng_float_range =
  QCheck.Test.make ~name:"rng float in [0,1)" ~count:200 QCheck.int (fun seed ->
      let r = Rng.create ~seed in
      let f = Rng.float r in
      f >= 0.0 && f < 1.0)

(* ------------------------------------------------------------------ *)
(* Pmu                                                                 *)
(* ------------------------------------------------------------------ *)

let all_events =
  [
    Pmu.Ipi_sent; Pmu.Vm_exit; Pmu.Vmfunc_exec; Pmu.Syscall_exec;
    Pmu.Cr3_write; Pmu.Ipc_roundtrip; Pmu.Instruction;
  ]

let test_pmu_roundtrip () =
  let p = Pmu.create () in
  List.iter
    (fun ev -> Alcotest.(check int) "fresh is zero" 0 (Pmu.read p ev))
    all_events;
  Pmu.count p Pmu.Vmfunc_exec;
  Pmu.count p Pmu.Vmfunc_exec;
  Pmu.add p Pmu.Vmfunc_exec 40;
  Alcotest.(check int) "count + add accumulate" 42 (Pmu.read p Pmu.Vmfunc_exec)

let test_pmu_independent () =
  let p = Pmu.create () in
  List.iteri (fun i ev -> Pmu.add p ev (i + 1)) all_events;
  List.iteri
    (fun i ev ->
      Alcotest.(check int) (Pmu.name ev) (i + 1) (Pmu.read p ev))
    all_events;
  (* Two PMUs never share counters. *)
  let q = Pmu.create () in
  Alcotest.(check int) "fresh pmu untouched" 0 (Pmu.read q Pmu.Ipi_sent)

let test_pmu_reset () =
  let p = Pmu.create () in
  List.iter (fun ev -> Pmu.add p ev 7) all_events;
  Pmu.reset p;
  List.iter
    (fun ev -> Alcotest.(check int) "zero after reset" 0 (Pmu.read p ev))
    all_events

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "mem_sim"
    [
      ( "phys_mem",
        [
          Alcotest.test_case "u8 roundtrip" `Quick test_u8_roundtrip;
          Alcotest.test_case "u64 roundtrip LE" `Quick test_u64_roundtrip;
          Alcotest.test_case "u64 alignment enforced" `Quick test_u64_alignment;
          Alcotest.test_case "range checks" `Quick test_out_of_range;
          Alcotest.test_case "byte blits span frames" `Quick test_bytes_span_frames;
          Alcotest.test_case "frames materialize lazily" `Quick test_lazy_frames;
        ]
        @ qc [ prop_bytes_roundtrip ] );
      ( "frame_alloc",
        [
          Alcotest.test_case "distinct frames" `Quick test_alloc_distinct;
          Alcotest.test_case "frames zeroed on alloc" `Quick test_alloc_zeroed;
          Alcotest.test_case "contiguous runs" `Quick test_alloc_contiguous;
          Alcotest.test_case "reserved ranges" `Quick test_reserve;
          Alcotest.test_case "exhaustion raises" `Quick test_exhaustion;
          Alcotest.test_case "double free detected" `Quick test_double_free;
        ]
        @ qc [ prop_alloc_no_overlap ] );
      ( "cache",
        [
          Alcotest.test_case "hit after access" `Quick test_cache_hit_after_access;
          Alcotest.test_case "LRU eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "stats" `Quick test_cache_stats;
          Alcotest.test_case "geometry validated" `Quick test_cache_geometry_validation;
        ]
        @ qc [ prop_cache_capacity ] );
      ( "tlb",
        [
          Alcotest.test_case "insert/lookup with asid" `Quick test_tlb_insert_lookup;
          Alcotest.test_case "flush_asid selective" `Quick test_tlb_flush_asid;
          Alcotest.test_case "flush_all" `Quick test_tlb_flush_all;
          Alcotest.test_case "LRU eviction" `Quick test_tlb_eviction;
        ] );
      ( "cpu_machine",
        [
          Alcotest.test_case "cycle charging" `Quick test_cpu_charge;
          Alcotest.test_case "core sync barrier" `Quick test_machine_sync;
          Alcotest.test_case "memsys latencies" `Quick test_memsys_latencies;
          Alcotest.test_case "L2 backstop" `Quick test_memsys_l2_fill;
          Alcotest.test_case "footprint counters" `Quick test_footprint_counters;
        ] );
      ( "pmu",
        [
          Alcotest.test_case "count/add/read roundtrip" `Quick test_pmu_roundtrip;
          Alcotest.test_case "events independent" `Quick test_pmu_independent;
          Alcotest.test_case "reset" `Quick test_pmu_reset;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds respected" `Quick test_rng_bounds;
        ]
        @ qc [ prop_rng_float_range ] );
    ]
