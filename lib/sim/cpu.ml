type t = {
  id : int;
  mutable tsc : int;
  l1i : Cache.t;
  l1d : Cache.t;
  l2 : Cache.t;
  l3 : Cache.t;
  itlb : Tlb.t;
  dtlb : Tlb.t;
  (* Translation acceleration (Skylake-like): paging-structure caches
     keyed by VA prefix, and the nested (EPT) walk cache keyed by GPN. *)
  psc_pml4e : Psc.t;
  psc_pdpte : Psc.t;
  psc_pde : Psc.t;
  ept_walk_cache : Psc.t;
  pmu : Pmu.t;
}

let create ~id ~l3 =
  {
    id;
    tsc = 0;
    l1i =
      Cache.create
        ~name:(Printf.sprintf "core%d.l1i" id)
        ~size_bytes:(32 * 1024) ~ways:8 ~line_bytes:64;
    l1d =
      Cache.create
        ~name:(Printf.sprintf "core%d.l1d" id)
        ~size_bytes:(32 * 1024) ~ways:8 ~line_bytes:64;
    l2 =
      Cache.create
        ~name:(Printf.sprintf "core%d.l2" id)
        ~size_bytes:(256 * 1024) ~ways:4 ~line_bytes:64;
    l3;
    itlb = Tlb.create ~name:(Printf.sprintf "core%d.itlb" id) ~entries:128 ~ways:8;
    dtlb = Tlb.create ~name:(Printf.sprintf "core%d.dtlb" id) ~entries:64 ~ways:4;
    psc_pml4e =
      Psc.create ~name:(Printf.sprintf "core%d.psc_pml4e" id) ~entries:16 ~ways:4;
    psc_pdpte =
      Psc.create ~name:(Printf.sprintf "core%d.psc_pdpte" id) ~entries:16 ~ways:4;
    psc_pde =
      Psc.create ~name:(Printf.sprintf "core%d.psc_pde" id) ~entries:32 ~ways:4;
    ept_walk_cache =
      Psc.create ~name:(Printf.sprintf "core%d.ept_wc" id) ~entries:64 ~ways:4;
    pmu = Pmu.create ();
  }

let id t = t.id
let cycles t = t.tsc

let charge t c =
  assert (c >= 0);
  t.tsc <- t.tsc + c;
  (* Attribute the charged cycles to the innermost open trace span's
     category. Recording reads the clock but never advances it, so cycle
     counts are identical with tracing on or off. *)
  if Sky_trace.Trace.is_enabled () then Sky_trace.Trace.on_charge ~core:t.id c;
  (* Fault site "sim.cycle": an At_cycle arm fires at the first in-scope
     charge whose TSC reading passed the target. One ref read when the
     engine is off; never advances the clock. *)
  if Sky_faults.Fault.is_enabled () then
    Sky_faults.Fault.inject ~core:t.id "sim.cycle"

let advance_to t c = if c > t.tsc then t.tsc <- c
let l1i t = t.l1i
let l1d t = t.l1d
let l2 t = t.l2
let l3 t = t.l3
let itlb t = t.itlb
let dtlb t = t.dtlb
let psc_pml4e t = t.psc_pml4e
let psc_pdpte t = t.psc_pdpte
let psc_pde t = t.psc_pde
let ept_walk_cache t = t.ept_walk_cache

(* Flush everything a guest-linear translation can be built from: the
   leaf TLBs and the paging-structure caches. The EPT walk cache is
   keyed by host-physical EPT root and survives guest-side flushes,
   exactly like the hardware nested-walk cache. *)
let flush_guest_translation t =
  Tlb.flush_all t.itlb;
  Tlb.flush_all t.dtlb;
  Psc.flush_all t.psc_pml4e;
  Psc.flush_all t.psc_pdpte;
  Psc.flush_all t.psc_pde

let pmu t = t.pmu

type footprint = {
  l1i_miss : int;
  l1d_miss : int;
  l2_miss : int;
  l3_miss : int;
  itlb_miss : int;
  dtlb_miss : int;
}

let footprint t =
  {
    l1i_miss = Cache.misses t.l1i;
    l1d_miss = Cache.misses t.l1d;
    l2_miss = Cache.misses t.l2;
    l3_miss = Cache.misses t.l3;
    itlb_miss = Tlb.misses t.itlb;
    dtlb_miss = Tlb.misses t.dtlb;
  }

let reset_stats t =
  Cache.reset_stats t.l1i;
  Cache.reset_stats t.l1d;
  Cache.reset_stats t.l2;
  Cache.reset_stats t.l3;
  Tlb.reset_stats t.itlb;
  Tlb.reset_stats t.dtlb;
  Psc.reset_stats t.psc_pml4e;
  Psc.reset_stats t.psc_pdpte;
  Psc.reset_stats t.psc_pde;
  Psc.reset_stats t.ept_walk_cache;
  Pmu.reset t.pmu

let flush_all t =
  Sky_trace.Trace.instant ~core:t.id ~cat:"ctx" "cpu.flush_all";
  Cache.flush t.l1i;
  Cache.flush t.l1d;
  Cache.flush t.l2;
  Cache.flush t.l3;
  Tlb.flush_all t.itlb;
  Tlb.flush_all t.dtlb;
  Psc.flush_all t.psc_pml4e;
  Psc.flush_all t.psc_pdpte;
  Psc.flush_all t.psc_pde;
  Psc.flush_all t.ept_walk_cache
