type problem =
  | Leaked_block of int
  | Unmarked_block of int * int
  | Double_use of int * int * int
  | Dangling_dirent of string * int
  | Bad_size of int

let problem_to_string = function
  | Leaked_block b -> Printf.sprintf "leaked block %d (marked used, unreachable)" b
  | Unmarked_block (b, i) ->
    Printf.sprintf "block %d of inode %d marked free in the bitmap" b i
  | Double_use (b, a, c) -> Printf.sprintf "block %d used by inodes %d and %d" b a c
  | Dangling_dirent (n, i) -> Printf.sprintf "dirent %S points at dead inode %d" n i
  | Bad_size i -> Printf.sprintf "inode %d: size exceeds mapped blocks" i

let bsize = Fs.bsize

let u32 b i = Int32.to_int (Bytes.get_int32_le b (i * 4))

(* Every data/indirect block reachable from [ino], plus whether the size
   is consistent with the mapping. *)
let blocks_of_inode fs ~core (ino : Fs.dinode) =
  let acc = ref [] in
  let add b = if b <> 0 then acc := b :: !acc in
  let ind_entries blk =
    if blk = 0 then []
    else begin
      add blk;
      let data = Fs.inspect_block fs ~core blk in
      List.init Fs.nindirect (fun i -> u32 data i)
    end
  in
  for i = 0 to Fs.ndirect - 1 do
    add ino.Fs.addrs.(i)
  done;
  List.iter add (ind_entries ino.Fs.addrs.(Fs.ndirect));
  List.iter
    (fun mid -> if mid <> 0 then List.iter add (ind_entries mid))
    (ind_entries ino.Fs.addrs.(Fs.ndirect + 1));
  !acc

let bitmap_bit fs ~core blk =
  let sb = Fs.superblock fs in
  let bm = Fs.inspect_block fs ~core (sb.Superblock.bmapstart + (blk / (bsize * 8))) in
  let idx = blk mod (bsize * 8) in
  Char.code (Bytes.get bm (idx / 8)) land (1 lsl (idx mod 8)) <> 0

let check fs ~core =
  let sb = Fs.superblock fs in
  let problems = ref [] in
  let report p = problems := p :: !problems in
  (* 1. Gather every live inode's reachable blocks, detecting double use
     and size overruns. *)
  let owner : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let live_inodes = ref [] in
  for inum = 1 to sb.Superblock.ninodes - 1 do
    let ino = Fs.inspect_inode fs ~core inum in
    if ino.Fs.typ <> Fs.T_free then begin
      live_inodes := (inum, ino) :: !live_inodes;
      let blocks = blocks_of_inode fs ~core ino in
      List.iter
        (fun b ->
          (match Hashtbl.find_opt owner b with
          | Some prev -> report (Double_use (b, prev, inum))
          | None -> Hashtbl.replace owner b inum);
          if not (bitmap_bit fs ~core b) then report (Unmarked_block (b, inum)))
        blocks;
      (* The size must fit in the *data* blocks mapped (indirect table
         blocks don't count towards the size). *)
      let data_blocks =
        List.length blocks
        - (if ino.Fs.addrs.(Fs.ndirect) <> 0 then 1 else 0)
        -
        if ino.Fs.addrs.(Fs.ndirect + 1) = 0 then 0
        else
          1
          + List.length
              (List.filter
                 (fun i -> i <> 0)
                 (List.init Fs.nindirect (fun i ->
                      u32
                        (Fs.inspect_block fs ~core ino.Fs.addrs.(Fs.ndirect + 1))
                        i)))
      in
      (* Holes are legal, so only flag sizes that could not possibly be
         backed: more precisely, a size requiring more blocks than the
         file could address. *)
      if ino.Fs.size > Fs.max_file_blocks * bsize then report (Bad_size inum)
      else ignore data_blocks
    end
  done;
  (* 2. Bitmap leaks: used bits in the data area nobody reaches. *)
  let data_start = Superblock.data_start sb in
  for blk = data_start to sb.Superblock.size - 1 do
    if bitmap_bit fs ~core blk && not (Hashtbl.mem owner blk) then
      report (Leaked_block blk)
  done;
  (* 3. Directory entries point at live inodes. *)
  let root = Fs.inspect_inode fs ~core Fs.root_inum in
  let live = List.map fst !live_inodes in
  let rec scan_dir off =
    if off < root.Fs.size then begin
      let data = Fs.read fs ~core ~inum:Fs.root_inum ~off ~len:Fs.dirent_size in
      let inum = Bytes.get_uint16_le data 0 in
      if inum <> 0 then begin
        let raw = Bytes.sub_string data 2 Fs.max_name in
        let name =
          match String.index_opt raw '\000' with
          | Some i -> String.sub raw 0 i
          | None -> raw
        in
        if not (List.mem inum live) then report (Dangling_dirent (name, inum))
      end;
      scan_dir (off + Fs.dirent_size)
    end
  in
  scan_dir 0;
  List.rev !problems
