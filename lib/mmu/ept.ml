type fault = Ept_not_present of int

exception Ept_violation of fault

type t = { root : int; owned : (int, unit) Hashtbl.t }

let full = { Pte.present = true; writable = true; user = true; huge = false; nx = false }
let full_huge = { full with huge = true }

let create alloc =
  let root = Sky_mem.Frame_alloc.alloc_frame alloc in
  let owned = Hashtbl.create 8 in
  Hashtbl.replace owned root ();
  { root; owned }

let root_pa t = t.root
let entry_pa table idx = table + (idx * 8)
let idx ~level gpa = Page_table.va_index ~level gpa

(* Size of the region one entry covers at [level]: 4 KiB at 0, 2 MiB at 1,
   1 GiB at 2, 512 GiB at 3. *)
let entry_shift level = 12 + (9 * level)

let map_identity_1g t ~mem ~alloc ~gib =
  (* All 1 GiB entries for [0, gib) live in PDPTs (level 2); one PML4
     entry covers 512 of them. *)
  let pml4_entries = (gib + 511) / 512 in
  for p = 0 to pml4_entries - 1 do
    let pdpt = Sky_mem.Frame_alloc.alloc_frame alloc in
    Hashtbl.replace t.owned pdpt ();
    Sky_mem.Phys_mem.write_u64 mem (entry_pa t.root p) (Pte.encode ~pa:pdpt full);
    let entries = min 512 (gib - (p * 512)) in
    for e = 0 to entries - 1 do
      let gpa = ((p * 512) + e) lsl 30 in
      Sky_mem.Phys_mem.write_u64 mem (entry_pa pdpt e)
        (Pte.encode ~pa:gpa full_huge)
    done
  done

let copy_table mem alloc src =
  let dst = Sky_mem.Frame_alloc.alloc_frame alloc in
  Sky_mem.Phys_mem.write_bytes mem dst (Sky_mem.Phys_mem.read_bytes mem src 4096);
  dst

let clone_shallow t ~mem ~alloc =
  let root = copy_table mem alloc t.root in
  let owned = Hashtbl.create 8 in
  Hashtbl.replace owned root ();
  { root; owned }

(* Split a huge entry at [level] (covering [base_pa, base_pa + size)) into
   a table of 512 next-level entries with the same mapping. *)
let split_huge t ~mem ~alloc ~parent_epa ~base_pa ~level =
  let table = Sky_mem.Frame_alloc.alloc_frame alloc in
  Hashtbl.replace t.owned table ();
  let child_size = 1 lsl (entry_shift (level - 1)) in
  let child_flags = if level - 1 = 0 then full else full_huge in
  for e = 0 to 511 do
    Sky_mem.Phys_mem.write_u64 mem (entry_pa table e)
      (Pte.encode ~pa:(base_pa + (e * child_size)) child_flags)
  done;
  Sky_mem.Phys_mem.write_u64 mem parent_epa (Pte.encode ~pa:table full);
  table

(* Descend to the 4 KiB leaf entry for [gpa], privatizing (copy-on-write)
   shared table pages and splitting huge entries on the way. Returns the
   PA of the leaf entry. *)
let leaf_entry_for_write t ~mem ~alloc ~gpa =
  let rec go table level =
    let epa = entry_pa table (idx ~level gpa) in
    if level = 0 then epa
    else begin
      let e = Sky_mem.Phys_mem.read_u64 mem epa in
      if not (Pte.is_present e) then begin
        (* Allocate a fresh empty table below. *)
        let child = Sky_mem.Frame_alloc.alloc_frame alloc in
        Hashtbl.replace t.owned child ();
        Sky_mem.Phys_mem.write_u64 mem epa (Pte.encode ~pa:child full);
        go child (level - 1)
      end
      else
        let pa, flags = Pte.decode e in
        if flags.Pte.huge then begin
          let base = pa land lnot ((1 lsl entry_shift level) - 1) in
          let child = split_huge t ~mem ~alloc ~parent_epa:epa ~base_pa:base ~level in
          go child (level - 1)
        end
        else if Hashtbl.mem t.owned pa then go pa (level - 1)
        else begin
          let child = copy_table mem alloc pa in
          Hashtbl.replace t.owned child ();
          Sky_mem.Phys_mem.write_u64 mem epa (Pte.encode ~pa:child full);
          go child (level - 1)
        end
    end
  in
  go t.root 3

let map_4k_flags t ~mem ~alloc ~gpa ~hpa ~flags =
  if gpa land 0xfff <> 0 || hpa land 0xfff <> 0 then
    invalid_arg "Ept.map_4k: unaligned";
  let epa = leaf_entry_for_write t ~mem ~alloc ~gpa in
  let old = Sky_mem.Phys_mem.read_u64 mem epa in
  let v = Pte.encode ~pa:hpa { flags with Pte.huge = false } in
  Sky_mem.Phys_mem.write_u64 mem epa v;
  (* Overwriting a live leaf (a remap) can strand cached translations
     anywhere in the machine — TLBs, EPT walk caches, host hot lines.
     Bump the global mutation epoch so they all lazily self-flush.
     Fresh installs can't invalidate a cached positive translation, so
     boot-time identity-map loops stay bump-free. *)
  if Pte.is_present old && old <> v then Sky_sim.Accel.bump ()

let map_4k t ~mem ~alloc ~gpa ~hpa = map_4k_flags t ~mem ~alloc ~gpa ~hpa ~flags:full

let unmap_4k t ~mem ~alloc ~gpa =
  let epa = leaf_entry_for_write t ~mem ~alloc ~gpa in
  let old = Sky_mem.Phys_mem.read_u64 mem epa in
  Sky_mem.Phys_mem.write_u64 mem epa Pte.zero;
  if Pte.is_present old then Sky_sim.Accel.bump ()

let remap_gpa = map_4k

let map_identity_4k t ~mem ~alloc ~mib =
  for page = 0 to (mib * 256) - 1 do
    let gpa = page * 4096 in
    map_4k t ~mem ~alloc ~gpa ~hpa:gpa
  done

let clone_deep t ~mem ~alloc =
  let owned = Hashtbl.create 64 in
  let rec copy table level =
    let dst = copy_table mem alloc table in
    Hashtbl.replace owned dst ();
    if level > 0 then
      for e = 0 to 511 do
        let epa = entry_pa dst e in
        let v = Sky_mem.Phys_mem.read_u64 mem epa in
        if Pte.is_present v then begin
          let pa, flags = Pte.decode v in
          if not flags.Pte.huge then begin
            let child = copy pa (level - 1) in
            Sky_mem.Phys_mem.write_u64 mem epa
              (Pte.encode ~pa:child { flags with Pte.huge = false })
          end
        end
      done;
    dst
  in
  let root = copy t.root 3 in
  { root; owned }

type walk_result = { hpa : int; entries_read : int list }

let walk ~mem ~root_pa ~gpa =
  let rec go table level acc =
    let epa = entry_pa table (idx ~level gpa) in
    let e = Sky_mem.Phys_mem.read_u64 mem epa in
    let acc = epa :: acc in
    if not (Pte.is_present e) then Error (Ept_not_present gpa)
    else
      let pa, flags = Pte.decode e in
      if level = 0 then
        Ok { hpa = pa lor (gpa land 0xfff); entries_read = List.rev acc }
      else if flags.Pte.huge then begin
        let mask = (1 lsl entry_shift level) - 1 in
        Ok { hpa = (pa land lnot mask) lor (gpa land mask); entries_read = List.rev acc }
      end
      else go pa (level - 1) acc
  in
  go root_pa 3 []

let walk_flags ~mem ~root_pa ~gpa =
  let rec go table level =
    let epa = entry_pa table (idx ~level gpa) in
    let e = Sky_mem.Phys_mem.read_u64 mem epa in
    if not (Pte.is_present e) then Error (Ept_not_present gpa)
    else
      let pa, flags = Pte.decode e in
      if level = 0 || flags.Pte.huge then Ok (pa, flags)
      else go pa (level - 1)
  in
  go root_pa 3

let iter_leaves ~mem ~root_pa f =
  let rec go table level gpa_base =
    for e = 0 to 511 do
      let v = Sky_mem.Phys_mem.read_u64 mem (entry_pa table e) in
      if Pte.is_present v then begin
        let pa, flags = Pte.decode v in
        let gpa = gpa_base lor (e lsl entry_shift level) in
        if level = 0 || flags.Pte.huge then f ~gpa ~hpa:pa ~level ~flags
        else go pa (level - 1) gpa
      end
    done
  in
  go root_pa 3 0

let pages_owned t = Hashtbl.length t.owned

let destroy t ~alloc =
  Hashtbl.iter (fun pa () -> Sky_mem.Frame_alloc.free_frame alloc pa) t.owned;
  Hashtbl.reset t.owned;
  (* The root (and table) frames return to the allocator and may be
     recycled as a new EPT — including as a new root whose EPTP value
     would collide with ASID tags derived from this one. *)
  Sky_sim.Accel.bump ()
