(* Security walkthrough (§4.4, §7): every attack the paper discusses,
   launched against a live SkyBridge deployment, and the defence that
   stops it.

   Run with:  dune exec examples/attack_demo.exe *)

open Sky_ukernel

let () =
  let machine = Sky_sim.Machine.create ~cores:4 ~mem_mib:64 () in
  let kernel = Kernel.create machine in
  let sb = Sky_core.Subkernel.init kernel in

  (* A victim server holding "sensitive" data. *)
  let victim = Kernel.spawn kernel ~name:"victim" in
  let victim_sid =
    Sky_core.Subkernel.register_server sb victim (fun ~core:_ _ ->
        Bytes.of_string "SECRET")
  in

  (* 1. The VMFUNC-faking attack: a process ships its own VMFUNC hoping
        to jump into the victim's EPT outside the trampoline. *)
  print_endline "1. self-prepared VMFUNC (SeCage's faking attack)";
  let attacker = Kernel.spawn kernel ~name:"attacker" in
  let evil_code =
    Sky_isa.Encode.encode_all
      [ Sky_isa.Insn.Mov_ri (Sky_isa.Reg.Rax, 0L);
        Sky_isa.Insn.Mov_ri (Sky_isa.Reg.Rcx, 1L);
        Sky_isa.Insn.Vmfunc (* jump into EPTP slot 1 without the trampoline *);
        Sky_isa.Insn.Add_ri (Sky_isa.Reg.Rax, 0xD4010F) (* hidden one, too *);
        Sky_isa.Insn.Ret ]
  in
  ignore (Kernel.map_code kernel attacker evil_code);
  Printf.printf "   before registration: %d VMFUNC pattern(s) in attacker code\n"
    (Sky_rewriter.Scan.count_pattern evil_code);
  ignore (Sky_core.Subkernel.register_server sb attacker (fun ~core:_ m -> m));
  let clean = Sky_core.Subkernel.proc_is_clean sb attacker in
  Printf.printf "   after registration (binary rewriting): clean = %b\n\n" clean;

  (* 2. Illegal server call: calling a server without a binding/key. *)
  print_endline "2. illegal server call (no registration, no calling key)";
  let mallory = Kernel.spawn kernel ~name:"mallory" in
  (try
     ignore
       (Sky_core.Subkernel.direct_server_call sb ~core:0 ~client:mallory
          ~server_id:victim_sid (Bytes.of_string "gimme"))
   with Sky_core.Subkernel.Not_registered _ ->
     print_endline "   -> rejected: Not_registered\n");

  (* 3. A registered client presenting a forged calling key. *)
  print_endline "3. forged calling key";
  let client = Kernel.spawn kernel ~name:"client" in
  Sky_core.Subkernel.register_client_to_server sb client ~server_id:victim_sid;
  Kernel.context_switch kernel ~core:0 client;
  (try
     ignore
       (Sky_core.Subkernel.direct_server_call sb ~core:0 ~client
          ~server_id:victim_sid ~attack:`Fake_server_key Bytes.empty)
   with Sky_core.Subkernel.Bad_server_key _ ->
     print_endline "   -> rejected: Bad_server_key (table lookup failed)\n");

  (* 4. Illegal client return: the server corrupts the echoed client key. *)
  print_endline "4. illegal client return (corrupted key echo)";
  (try
     ignore
       (Sky_core.Subkernel.direct_server_call sb ~core:0 ~client
          ~server_id:victim_sid ~attack:`Corrupt_return_key Bytes.empty)
   with Sky_core.Subkernel.Bad_client_return _ ->
     print_endline "   -> detected: Bad_client_return\n");

  (* 5. DoS: a server that never comes back. *)
  print_endline "5. denial of service (server burns cycles forever)";
  let hog = Kernel.spawn kernel ~name:"hog" in
  let hog_sid =
    Sky_core.Subkernel.register_server sb hog (fun ~core m ->
        Kernel.user_compute kernel ~core ~cycles:10_000_000;
        m)
  in
  Sky_core.Subkernel.register_client_to_server sb client ~server_id:hog_sid;
  (try
     ignore
       (Sky_core.Subkernel.direct_server_call sb ~core:0 ~client
          ~server_id:hog_sid ~timeout:50_000 Bytes.empty)
   with Sky_core.Subkernel.Call_timeout { elapsed; _ } ->
     Printf.printf "   -> forced return after %d cycles (timeout mechanism)\n\n"
       elapsed);

  (* 6. Process misidentification is solved by the identity page. *)
  print_endline "6. process identity during a direct call";
  let seen = ref 0 in
  let probe_sid =
    Sky_core.Subkernel.register_server sb victim (fun ~core _ ->
        seen := Sky_core.Subkernel.current_identity sb ~core;
        Bytes.empty)
  in
  Sky_core.Subkernel.register_client_to_server sb client ~server_id:probe_sid;
  Kernel.context_switch kernel ~core:0 client;
  ignore
    (Sky_core.Subkernel.direct_server_call sb ~core:0 ~client ~server_id:probe_sid
       Bytes.empty);
  Printf.printf
    "   identity page says pid %d (victim) inside the handler, pid %d \
     (client) after return\n\n"
    !seen
    (Sky_core.Subkernel.current_identity sb ~core:0);

  Printf.printf "security events logged for the kernel: %d\n"
    (List.length (Sky_core.Subkernel.security_events sb))
