(** Simulated physical memory.

    Memory is an array of 4 KiB frames. Everything in the simulated machine
    lives here: guest page tables, EPTs, process code pages, stacks, shared
    buffers and file-system blocks. Addresses are host physical addresses
    (HPA) represented as OCaml [int] (63 usable bits, plenty for a 16 GiB
    machine). *)

type t

val frame_size : int
(** 4096. *)

val frame_shift : int
(** 12. *)

val create : frames:int -> t
(** [create ~frames] makes a physical memory of [frames] zeroed 4 KiB
    frames. Frames are allocated lazily, so large memories are cheap until
    touched. *)

val size_bytes : t -> int
(** Total addressable bytes. *)

val frames : t -> int

val frame_of_addr : int -> int
(** Frame number containing a physical address. *)

val addr_of_frame : int -> int
(** Base physical address of a frame number. *)

val read_u8 : t -> int -> int
val write_u8 : t -> int -> int -> unit

val read_u16 : t -> int -> int
val write_u16 : t -> int -> int -> unit

val read_u32 : t -> int -> int
val write_u32 : t -> int -> int -> unit

val read_u64 : t -> int -> int64
(** [read_u64 mem pa] reads a little-endian 64-bit word. [pa] must be
    8-byte aligned and in range; raises [Invalid_argument] otherwise.
    May cross nothing: a u64 never spans frames given alignment. *)

val write_u64 : t -> int -> int64 -> unit

val read_bytes : t -> int -> int -> bytes
(** [read_bytes mem pa len] copies [len] bytes starting at [pa]; may span
    frame boundaries. *)

val write_bytes : t -> int -> bytes -> unit

val blit_to : t -> src_pa:int -> dst:bytes -> dst_off:int -> len:int -> unit
val blit_from : t -> src:bytes -> src_off:int -> dst_pa:int -> len:int -> unit

val zero_frame : t -> int -> unit
(** [zero_frame mem frame] clears one frame. *)

val touched_frames : t -> int
(** Number of frames that have actually been materialized (for tests and
    for reporting the Rootkernel's memory footprint). *)
