(** PKRU value arithmetic for the MPK isolation backend.

    The protection-key rights register holds one (AD, WD) bit pair per
    key [k]: bit [2k] is access-disable, bit [2k+1] is write-disable.
    A value of 0 grants every key; setting both bits of a pair removes
    the key entirely. The Subkernel gives each registered domain a
    resting view that grants exactly {e the shared key and its own key}
    ({!allow_only}); the Isoflow invariant [flow.pkru-escape] audits
    that no resting view grants write access to another domain's key. *)

let n_keys = 16

let valid_key k = k >= 0 && k < n_keys

(* The PKRU value denying every key except those listed (listed keys get
   full read/write). *)
let allow_only keys =
  let v = ref 0 in
  for k = 0 to n_keys - 1 do
    if not (List.mem k keys) then v := !v lor (0b11 lsl (2 * k))
  done;
  !v

let allows_read ~pkru ~key = pkru land (1 lsl (2 * key)) = 0

let allows_write ~pkru ~key =
  allows_read ~pkru ~key && pkru land (1 lsl ((2 * key) + 1)) = 0

(* The keys a PKRU value grants write access to — for census/debugging. *)
let writable_keys pkru =
  List.filter (fun k -> allows_write ~pkru ~key:k) (List.init n_keys Fun.id)

let to_string pkru =
  Printf.sprintf "pkru:%#x[w:%s]" pkru
    (String.concat "," (List.map string_of_int (writable_keys pkru)))
