(** Web serving: throughput vs worker count, SkyBridge vs slowpath IPC.

    For each worker count [w] in [1 .. cores], run the full stack —
    closed-loop load generator → RSS NIC → [w] skyhttpd workers → KV +
    xv6fs backends — twice: once with the worker→backend hop over
    SkyBridge direct server calls, once over the baseline kernel's
    synchronous IPC (MT-server, so every slowpath call at least takes
    the kernel's local path). The offered load (connections, request
    mix, seeds) is identical between the two, so the gap is pure
    interconnect cost — the paper's macro story (§6) played out at the
    application tier.

    Two structural properties are asserted by `skybench web` and the
    test suite: SkyBridge throughput strictly above slowpath IPC at
    every worker count, and SkyBridge throughput monotonically
    increasing with workers up to the core count. *)

open Sky_net
open Sky_harness

type side = {
  v_tput : float;  (** requests per simulated second *)
  v_p50 : int;
  v_p95 : int;
  v_p99 : int;
  v_responses : int;
  v_errors : int;
  v_elapsed : int;
  v_evictions : int;  (** EPTP-list LRU evictions, all worker processes *)
  v_worker_evictions : int list;  (** per worker process, core order *)
}

type point = { p_workers : int; p_sky : side; p_ipc : side }

type result = {
  r_variant : Sky_ukernel.Config.variant;
  r_seed : int;
  r_cores : int;
  r_conns : int;
  r_requests_per_conn : int;
  r_points : point list;
}

let side_of t =
  let lg = Web.loadgen t in
  let h = Loadgen.latencies lg in
  let worker_evictions =
    match Web.subkernel t with
    | None -> List.map (fun _ -> 0) (Array.to_list (Web.worker_procs t))
    | Some sb ->
      List.map
        (fun p -> Sky_core.Subkernel.process_evictions sb p)
        (Array.to_list (Web.worker_procs t))
  in
  let open Sky_trace.Histogram in
  {
    v_tput = Web.throughput t;
    v_p50 = p50 h;
    v_p95 = p95 h;
    v_p99 = p99 h;
    v_responses = Loadgen.responses lg;
    v_errors = Loadgen.errors lg;
    v_elapsed = Web.elapsed t;
    v_evictions = List.fold_left ( + ) 0 worker_evictions;
    v_worker_evictions = worker_evictions;
  }

let measure ~variant ~seed ~cores ~conns ~requests_per_conn ~workers transport =
  let t =
    Web.build ~variant ~seed ~cores ~conns ~requests_per_conn ~workers
      ~transport ()
  in
  Web.run t;
  side_of t

let run_curve ?(variant = Sky_ukernel.Config.Sel4) ?(seed = 42) ?(cores = 16)
    ?(conns = Web.default_conns)
    ?(requests_per_conn = Web.default_requests_per_conn) () =
  let point workers =
    let m = measure ~variant ~seed ~cores ~conns ~requests_per_conn ~workers in
    { p_workers = workers; p_sky = m Web.Skybridge; p_ipc = m Web.Ipc_slowpath }
  in
  {
    r_variant = variant;
    r_seed = seed;
    r_cores = cores;
    r_conns = conns;
    r_requests_per_conn = requests_per_conn;
    r_points = List.init cores (fun i -> point (i + 1));
  }

(* ---- the two acceptance properties ---- *)

let sky_always_ahead r =
  List.for_all (fun p -> p.p_sky.v_tput > p.p_ipc.v_tput) r.r_points

let sky_monotone r =
  let rec go = function
    | a :: (b :: _ as rest) -> a.p_sky.v_tput < b.p_sky.v_tput && go rest
    | _ -> true
  in
  go r.r_points

let all_served r =
  let want = r.r_conns * r.r_requests_per_conn in
  List.for_all
    (fun p ->
      p.p_sky.v_responses = want && p.p_sky.v_errors = 0
      && p.p_ipc.v_responses = want && p.p_ipc.v_errors = 0)
    r.r_points

let ok r = sky_always_ahead r && sky_monotone r && all_served r

(* ---- rendering ---- *)

let table r =
  Tbl.make
    ~title:
      (Printf.sprintf "Web serving on %s: throughput vs workers (%d conns)"
         (Sky_ukernel.Config.variant_name r.r_variant)
         r.r_conns)
    ~header:
      [
        "workers"; "sky req/s"; "sky p50"; "sky p99"; "ipc req/s"; "ipc p50";
        "ipc p99"; "speedup";
      ]
    ~notes:
      [
        Printf.sprintf
          "closed-loop, %d requests/conn, RSS over one queue per worker"
          r.r_requests_per_conn;
        "latency = wire-to-wire cycles per request, including queueing";
      ]
    (List.map
       (fun p ->
         [
           string_of_int p.p_workers;
           Tbl.fmt_ops p.p_sky.v_tput;
           Tbl.fmt_int p.p_sky.v_p50;
           Tbl.fmt_int p.p_sky.v_p99;
           Tbl.fmt_ops p.p_ipc.v_tput;
           Tbl.fmt_int p.p_ipc.v_p50;
           Tbl.fmt_int p.p_ipc.v_p99;
           Tbl.fmt_speedup (p.p_sky.v_tput /. p.p_ipc.v_tput);
         ])
       r.r_points)

let to_json r =
  let open Sky_trace.Json in
  let side v =
    Obj
      [
        ("throughput_req_per_sec", Float v.v_tput);
        ("p50_cycles", Int v.v_p50);
        ("p95_cycles", Int v.v_p95);
        ("p99_cycles", Int v.v_p99);
        ("responses", Int v.v_responses);
        ("errors", Int v.v_errors);
        ("elapsed_cycles", Int v.v_elapsed);
        ("evictions", Int v.v_evictions);
        ("worker_evictions", List (List.map (fun n -> Int n) v.v_worker_evictions));
      ]
  in
  to_string
    (Obj
       [
         ("bench", String "web");
         ("variant", String (Sky_ukernel.Config.variant_name r.r_variant));
         ("seed", Int r.r_seed);
         ("cores", Int r.r_cores);
         ("conns", Int r.r_conns);
         ("requests_per_conn", Int r.r_requests_per_conn);
         ( "points",
           List
             (List.map
                (fun p ->
                  Obj
                    [
                      ("workers", Int p.p_workers);
                      ("skybridge", side p.p_sky);
                      ("slowpath_ipc", side p.p_ipc);
                      ( "speedup",
                        Float (p.p_sky.v_tput /. p.p_ipc.v_tput) );
                    ])
                r.r_points) );
         ("sky_beats_slowpath", Bool (sky_always_ahead r));
         ("monotone_scaling", Bool (sky_monotone r));
         ("all_served", Bool (all_served r));
       ])

(* Registry entry: a small configuration so `skybench run all` and the
   test suite stay fast; `skybench web` runs the full curve. *)
let run () =
  table (run_curve ~cores:4 ~conns:24 ~requests_per_conn:2 ())
