lib/mmu/ept.ml: Hashtbl List Page_table Pte Sky_mem
