open Sky_isa

exception Rewrite_failed of string

type result = {
  code : bytes;
  rewrite_page : bytes;
  patched : int;
  iterations : int;
}

let default_rewrite_page_va = 0x1000
let rewrite_page_va = default_rewrite_page_va
let default_code_va = 0x400000

let in_allowed allowed at =
  List.exists (fun (off, len) -> at >= off && at < off + len) allowed

(* A replacement element: a semantic instruction we can re-encode, or raw
   bytes copied verbatim, or an IP-relative instruction that must be
   re-linked to a fixed absolute target. *)
type reloc_kind = R_jmp | R_call | R_jcc of Insn.cond

type element =
  | E_insn of Insn.t
  | E_bytes of string
  | E_reloc of { kind : reloc_kind; target_va : int }

let encode_element ~at_va = function
  | E_insn i -> (Encode.encode i).Encode.bytes
  | E_bytes s -> s
  | E_reloc { kind; target_va } ->
    (* jmp/call are 5 bytes, jcc rel32 is 6. *)
    let len = match kind with R_jcc _ -> 6 | _ -> 5 in
    let rel = target_va - (at_va + len) in
    let i =
      match kind with
      | R_jmp -> Insn.Jmp_rel rel
      | R_call -> Insn.Call_rel rel
      | R_jcc c -> Insn.Jcc (c, rel)
    in
    (Encode.encode i).Encode.bytes

let encode_elements ~base_va elems =
  let buf = Buffer.create 32 in
  List.iter
    (fun e -> Buffer.add_string buf (encode_element ~at_va:(base_va + Buffer.length buf) e))
    elems;
  Buffer.contents buf

(* Scratch register choice: any register the instruction does not touch.
   RSP is excluded (push/pop juggling), RBP kept free for frame-pointer
   code. *)
let scratch_for insn =
  let used = Insn.regs_used insn in
  let candidates =
    [ Reg.Rax; Reg.Rcx; Reg.Rdx; Reg.Rbx; Reg.Rsi; Reg.Rdi; Reg.R8; Reg.R9;
      Reg.R10; Reg.R11 ]
  in
  match List.find_opt (fun r -> not (List.exists (Reg.equal r) used)) candidates with
  | Some r -> r
  | None -> raise (Rewrite_failed "no scratch register available")

let subst_mem_base m scratch = { m with Insn.base = Some scratch }

let with_mem insn f =
  match insn with
  | Insn.Mov_load (d, m) -> Insn.Mov_load (d, f m)
  | Insn.Mov_store (m, s) -> Insn.Mov_store (f m, s)
  | Insn.Add_rm (d, m) -> Insn.Add_rm (d, f m)
  | Insn.Lea (d, m) -> Insn.Lea (d, f m)
  | Insn.Imul_rri (d, Insn.M m, i) -> Insn.Imul_rri (d, Insn.M (f m), i)
  | Insn.Imul_rm (d, Insn.M m) -> Insn.Imul_rm (d, Insn.M (f m))
  | _ -> raise (Rewrite_failed "instruction has no memory operand")

let mem_of insn =
  match insn with
  | Insn.Mov_load (_, m) | Insn.Mov_store (m, _) | Insn.Add_rm (_, m)
  | Insn.Lea (_, m) | Insn.Imul_rri (_, Insn.M m, _) | Insn.Imul_rm (_, Insn.M m) ->
    m
  | _ -> raise (Rewrite_failed "instruction has no memory operand")

(* Candidate adjustment constants for displacement/immediate splitting;
   tried in order until the encoded replacement contains no pattern. *)
let split_candidates = [ 0x11; 0x23; 0x101; 0x1011; 0x3713; 0x111111; 1; 2; 3; 5 ]

let clean_bytes s = Scan.count_pattern (Bytes.of_string s) = 0

let pick_split ~make =
  let rec go = function
    | [] -> raise (Rewrite_failed "no clean split found")
    | k :: rest ->
      let elems = make k in
      if clean_bytes (encode_elements ~base_va:0 elems) then elems else go rest
  in
  go split_candidates

(* Strategy for a register-substitution rewrite (Table 3 rows 2 and 3). *)
let strategy_subst_base insn =
  let m = mem_of insn in
  match m.Insn.base with
  | None -> raise (Rewrite_failed "modrm/sib pattern without base register")
  | Some base ->
    let scratch = scratch_for insn in
    [
      E_insn (Insn.Push scratch);
      E_insn (Insn.Mov_rr (scratch, base));
      E_insn (with_mem insn (fun m -> subst_mem_base m scratch));
      E_insn (Insn.Pop scratch);
    ]

(* Table 3 row 4: precompute part of the displacement. *)
let strategy_disp insn =
  let m = mem_of insn in
  match m.Insn.base with
  | Some base
    when not (List.exists (Reg.equal base) (Insn.regs_written insn)) ->
    pick_split ~make:(fun k ->
        [
          E_insn (Insn.Add_ri (base, k));
          E_insn (with_mem insn (fun m -> { m with Insn.disp = m.Insn.disp - k }));
          E_insn (Insn.Sub_ri (base, k));
        ])
  | _ ->
    (* No base, or the instruction clobbers it: route through scratch. *)
    let scratch = scratch_for insn in
    pick_split ~make:(fun k ->
        let loaded =
          match m.Insn.base with
          | None -> Insn.Mov_ri (scratch, Int64.of_int (m.Insn.disp - k))
          | Some base -> Insn.Lea (scratch, Insn.mem ~base ~disp:(m.Insn.disp - k) ())
        in
        [
          E_insn (Insn.Push scratch);
          E_insn loaded;
          E_insn
            (with_mem insn (fun m ->
                 { (subst_mem_base m scratch) with Insn.disp = k }));
          E_insn (Insn.Pop scratch);
        ])

(* Table 3 row 5: apply the instruction twice with composing immediates;
   jump-likes are re-linked instead (handled by the caller via E_reloc). *)
let strategy_imm insn =
  match insn with
  | Insn.Add_ri (r, imm) ->
    pick_split ~make:(fun k ->
        [ E_insn (Insn.Add_ri (r, imm - k)); E_insn (Insn.Add_ri (r, k)) ])
  | Insn.Sub_ri (r, imm) ->
    pick_split ~make:(fun k ->
        [ E_insn (Insn.Sub_ri (r, imm - k)); E_insn (Insn.Sub_ri (r, k)) ])
  | Insn.Mov_ri (r, imm) ->
    pick_split ~make:(fun k ->
        [
          E_insn (Insn.Mov_ri (r, Int64.sub imm (Int64.of_int k)));
          E_insn (Insn.Add_ri (r, k));
        ])
  | Insn.Imul_rri (d, src, imm) ->
    let scratch = scratch_for insn in
    pick_split ~make:(fun k ->
        [
          E_insn (Insn.Push scratch);
          E_insn (Insn.Mov_ri (scratch, Int64.of_int (imm - k)));
          E_insn (Insn.Add_ri (scratch, k));
          E_insn (Insn.Imul_rm (scratch, src));
          E_insn (Insn.Mov_rr (d, scratch));
          E_insn (Insn.Pop scratch);
        ])
  | Insn.And_ri (r, imm) | Insn.Or_ri (r, imm) | Insn.Cmp_ri (r, imm) ->
    (* Non-additive immediates: stage the constant in a scratch register
       (the split keeps each staged immediate pattern-free), then apply
       the register form LAST so the final flags match the original. *)
    let scratch = scratch_for insn in
    let apply =
      match insn with
      | Insn.And_ri _ -> Insn.And_rr (r, scratch)
      | Insn.Or_ri _ -> Insn.Or_rr (r, scratch)
      | _ -> Insn.Cmp_rr (r, scratch)
    in
    (* push/pop would clobber flags? push/pop do not affect flags; the
       trailing pop is safe. *)
    pick_split ~make:(fun k ->
        [
          E_insn (Insn.Push scratch);
          E_insn (Insn.Mov_ri (scratch, Int64.of_int (imm - k)));
          E_insn (Insn.Add_ri (scratch, k));
          E_insn apply;
          E_insn (Insn.Pop scratch);
        ])
  | _ -> raise (Rewrite_failed "unsupported immediate-bearing instruction")

(* Turn one decoded instruction of the span into replacement elements.
   [next_va] is the VA of the byte after the instruction at its ORIGINAL
   location, used to resolve IP-relative targets. *)
let elements_of_decoded ~code ~code_va (d : Decode.decoded) =
  let next_va = code_va + d.Decode.off + d.Decode.len in
  match d.Decode.insn with
  | Some (Insn.Jmp_rel rel) -> [ E_reloc { kind = R_jmp; target_va = next_va + rel } ]
  | Some (Insn.Call_rel rel) -> [ E_reloc { kind = R_call; target_va = next_va + rel } ]
  | Some (Insn.Jcc (c, rel)) ->
    [ E_reloc { kind = R_jcc c; target_va = next_va + rel } ]
  | Some i -> [ E_insn i ]
  | None -> [ E_bytes (Bytes.sub_string code d.Decode.off d.Decode.len) ]

(* Replacement elements for one occurrence (C1 is handled in place by the
   caller). *)
let elements_for_occurrence ~code ~code_va (occ : Scan.occurrence) =
  match occ.Scan.case with
  | Scan.C1_vmfunc -> assert false
  | Scan.C2_spanning ->
    (* The same instructions with a NOP wedged between each pair. *)
    let rec interleave = function
      | [] -> []
      | [ d ] -> elements_of_decoded ~code ~code_va d
      | d :: rest ->
        elements_of_decoded ~code ~code_va d @ (E_insn Insn.Nop :: interleave rest)
    in
    interleave occ.Scan.span
  | Scan.C3_embedded field -> (
    let d = List.hd occ.Scan.span in
    match d.Decode.insn with
    | None -> raise (Rewrite_failed "pattern inside undecodable instruction")
    | Some (Insn.Jmp_rel _) | Some (Insn.Call_rel _) | Some (Insn.Jcc _) ->
      (* Jump-like: moving to the rewrite page re-encodes the offset. *)
      elements_of_decoded ~code ~code_va d
    | Some insn -> (
      match field with
      | Scan.In_modrm | Scan.In_sib -> strategy_subst_base insn
      | Scan.In_disp -> strategy_disp insn
      | Scan.In_imm -> strategy_imm insn
      | Scan.In_opcode ->
        raise (Rewrite_failed "pattern in opcode of non-vmfunc instruction")))

let nop_byte = '\x90'

let patch_in_place code ~off ~len ~bytes_str =
  assert (String.length bytes_str <= len);
  Bytes.blit_string bytes_str 0 code off (String.length bytes_str);
  Bytes.fill code (off + String.length bytes_str) (len - String.length bytes_str) nop_byte

(* Emit [elems] as a snippet in the rewrite page, ending with a jump back
   to [return_va]. Retries with leading NOP padding until the snippet
   bytes are pattern-free (padding shifts IP-relative encodings). *)
let emit_snippet page ~page_va ~return_va elems =
  let rec try_pad pad =
    if pad > 16 then raise (Rewrite_failed "snippet never became clean")
    else begin
      let snippet_off = Buffer.length page in
      let snippet_va = page_va + snippet_off in
      let body =
        encode_elements ~base_va:snippet_va
          (List.init pad (fun _ -> E_insn Insn.Nop)
          @ elems
          @ [ E_reloc { kind = R_jmp; target_va = return_va } ])
      in
      (* The junction with existing page content must stay clean too. *)
      let tail_ctx =
        let n = Buffer.length page in
        let keep = min 2 n in
        Buffer.sub page (n - keep) keep
      in
      if clean_bytes (tail_ctx ^ body) then begin
        Buffer.add_string page body;
        snippet_va
      end
      else try_pad (pad + 1)
    end
  in
  try_pad 0

(* Grow the span rightwards until it is big enough for a 5-byte jump,
   pulling whole following instructions in. *)
let widen_span ~code span =
  let last = List.nth span (List.length span - 1) in
  let span_off = (List.hd span).Decode.off in
  let rec grow span last =
    let span_len = last.Decode.off + last.Decode.len - span_off in
    if span_len >= 5 then span
    else begin
      let next_off = last.Decode.off + last.Decode.len in
      if next_off >= Bytes.length code then
        raise (Rewrite_failed "span too short at end of code")
      else begin
        let d = Decode.decode_one code next_off in
        grow (span @ [ d ]) d
      end
    end
  in
  grow span last

let handle_occurrence ~code ~code_va ~page_va ~page (occ : Scan.occurrence) =
  match occ.Scan.case with
  | Scan.C1_vmfunc ->
    let d = List.hd occ.Scan.span in
    (* Three NOPs in place (Table 3 row 1). VMFUNC is exactly 3 bytes
       but a redundant-prefix encoding could be longer; pad whatever the
       instruction occupies. *)
    patch_in_place code ~off:d.Decode.off ~len:d.Decode.len ~bytes_str:""
  | Scan.C2_spanning | Scan.C3_embedded _ ->
    let span = widen_span ~code occ.Scan.span in
    let span_off = (List.hd span).Decode.off in
    let last = List.nth span (List.length span - 1) in
    let span_len = last.Decode.off + last.Decode.len - span_off in
    let occ = { occ with Scan.span } in
    let elems =
      match occ.Scan.case with
      | Scan.C2_spanning -> elements_for_occurrence ~code ~code_va occ
      | _ -> (
        (* Widening may have appended trailing instructions after a C3;
           rewrite the first instruction, then move the rest verbatim. *)
        match span with
        | [] -> assert false
        | first :: rest ->
          elements_for_occurrence ~code ~code_va { occ with Scan.span = [ first ] }
          @ List.concat_map (elements_of_decoded ~code ~code_va) rest)
    in
    (* Try in place first. *)
    let in_place = encode_elements ~base_va:(code_va + span_off) elems in
    if String.length in_place <= span_len && clean_bytes in_place then
      patch_in_place code ~off:span_off ~len:span_len ~bytes_str:in_place
    else begin
      let return_va = code_va + span_off + span_len in
      let snippet_va = emit_snippet page ~page_va ~return_va elems in
      let jmp =
        (Encode.encode (Insn.Jmp_rel (snippet_va - (code_va + span_off + 5))))
          .Encode.bytes
      in
      patch_in_place code ~off:span_off ~len:span_len ~bytes_str:jmp
    end

(* ------------------------------------------------------------------ *)
(* Independent post-verification (ERIM-style scan-and-verify)          *)
(* ------------------------------------------------------------------ *)

(* The fixpoint loop above already re-scans until clean, but the security
   argument should not rest on the rewriting code being correct about its
   own output. [verify] re-checks a result with machinery the rewriting
   path does not use: a page-by-page scan with a carried overlap (the
   shape the per-page auditor sees) and a decode from *every* byte offset
   that catches VMFUNCs reachable through misaligned execution. *)
let verify ?(allowed = []) r =
  let check name buf allowed =
    List.iter
      (fun at ->
        if not (in_allowed allowed at) then
          raise
            (Rewrite_failed
               (Printf.sprintf "post-verify: pattern at %#x in %s" at name)))
      (Scan.find_pattern_paged buf);
    let n = Bytes.length buf in
    for off = 0 to n - 1 do
      let d = Decode.decode_one buf off in
      if d.Decode.insn = Some Insn.Vmfunc then begin
        (* Prefixed encodings put the 0F 01 D4 after the prefixes. *)
        let pat = off + d.Decode.layout.Encode.opcode_off in
        if not (in_allowed allowed pat) then
          raise
            (Rewrite_failed
               (Printf.sprintf
                  "post-verify: vmfunc decodable at offset %#x in %s" off name))
      end
    done
  in
  check "code" r.code allowed;
  check "rewrite page" r.rewrite_page []

let rewrite ?(code_va = default_code_va)
    ?(rewrite_page_va = default_rewrite_page_va) ?(allowed = []) input =
  let page_va = rewrite_page_va in
  let code = Bytes.copy input in
  let page = Buffer.create 256 in
  let patched = ref 0 in
  let rec fix iter =
    if iter > 200 then raise (Rewrite_failed "rewriting did not converge");
    let occs =
      List.filter
        (fun o -> not (in_allowed allowed o.Scan.at))
        (Scan.scan code)
    in
    match occs with
    | [] ->
      if not (clean_bytes (Buffer.contents page)) then
        raise (Rewrite_failed "rewrite page contains pattern")
      else iter
    | occ :: _ ->
      handle_occurrence ~code ~code_va ~page_va ~page occ;
      incr patched;
      fix (iter + 1)
  in
  let iterations = fix 0 in
  let r =
    {
      code;
      rewrite_page = Buffer.to_bytes page;
      patched = !patched;
      iterations;
    }
  in
  (* Mandatory post-pass: never hand back a result the independent
     verifier would reject. *)
  verify ~allowed r;
  r

let clean ?(allowed = []) code =
  List.for_all (fun at -> in_allowed allowed at) (Scan.find_pattern code)
