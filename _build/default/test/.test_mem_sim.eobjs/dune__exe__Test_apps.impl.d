test/test_apps.ml: Alcotest Bytes Char Config Gen Hashtbl Kernel Kv_server List Pipeline Printf QCheck QCheck_alcotest Rc4 Sky_core Sky_kvstore Sky_sim Sky_ukernel Sky_ycsb String
