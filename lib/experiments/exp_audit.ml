(** The `skybench audit` scenarios and the ERIM-style gadget-occurrence
    breakdown.

    [scenarios] boots each kernel personality, registers a client/server/
    dependency topology whose client ships VMFUNC encodings of all three
    cases (C1 actual instruction, C2 spanning an instruction boundary, C3
    embedded in an immediate), exercises direct calls, and then runs the
    whole-machine pass registry ({!Sky_core.Subkernel.audit_passes}),
    returning per-pass results with timing. A fourth scenario routes the
    same topology through the capability mesh and audits with the
    capability closure as Isoflow's ground truth
    ({!Sky_mesh.Mesh.audit_passes}). A healthy build reports zero
    violations everywhere — the CI gate.

    [run_cases] re-scans the Table 6 synthetic corpus and classifies every
    occurrence by case, the way ERIM reports WRPKRU occurrences — the
    EXPERIMENTS.md appendix. *)

open Sky_sim
open Sky_ukernel
open Sky_core
open Sky_harness

let echo ~core:_ msg = msg

(* Client code carrying every rewrite case: a bare VMFUNC (C1), the
   pattern inside a call immediate (C3/imm, the GIMP shape), the pattern
   in a mov immediate (C3/imm), and a byte stream whose instruction
   boundary splits the pattern (C2). *)
let dirty_client_code () =
  let open Sky_isa in
  let aligned =
    Encode.encode_all
      [
        Insn.Nop;
        Insn.Vmfunc;
        Insn.Add_ri (Reg.Rax, 0xD4010F);
        Insn.Mov_ri (Reg.Rbx, 0x00D4010FL);
        Insn.Call_rel 0x00D4010F;
        Insn.Ret;
      ]
  in
  (* C2: add rbx, 0x0F000000 ends in byte 0F; "01 D4" (add rsp, rdx in
     the always-64-bit subset) follows — the pattern spans the boundary. *)
  let c2 =
    Bytes.of_string
      ((Encode.encode (Insn.Add_ri (Reg.Rbx, 0x0F000000))).Encode.bytes
      ^ "\x01\xd4"
      ^ (Encode.encode Insn.Ret).Encode.bytes)
  in
  Bytes.cat aligned c2

let variants =
  [ (Config.Sel4, "sel4"); (Config.Fiasco, "fiasco"); (Config.Zircon, "zircon") ]

let build variant =
  let machine = Machine.create ~cores:2 ~mem_mib:64 () in
  let kernel = Kernel.create ~config:(Config.default variant) machine in
  let sb = Subkernel.init kernel in
  let spawn name code =
    let p = Kernel.spawn kernel ~name in
    ignore (Kernel.map_code kernel p code);
    p
  in
  let clean = Sky_isa.Encode.encode_all [ Sky_isa.Insn.Nop; Sky_isa.Insn.Ret ] in
  let client = spawn "client" (dirty_client_code ()) in
  let fs = spawn "fs" clean in
  let disk = spawn "disk" clean in
  let sid_disk = Subkernel.register_server sb disk echo in
  let sid_fs = Subkernel.register_server sb fs ~deps:[ sid_disk ] echo in
  Subkernel.register_client_to_server sb client ~server_id:sid_fs;
  Kernel.context_switch kernel ~core:0 client;
  (* Exercise calls so VMCS EPTP lists and bindings are in their live,
     post-traffic state when audited. *)
  ignore
    (Subkernel.direct_server_call sb ~core:0 ~client ~server_id:sid_fs
       (Bytes.make 64 'x'));
  sb

(* The same topology routed through the capability mesh: grants cover
   the dependency closure, so Isoflow's [flow.closure] runs against the
   capability registry rather than the binding registry. *)
let build_mesh () =
  let machine = Machine.create ~cores:2 ~mem_mib:64 () in
  let kernel = Kernel.create machine in
  let sb = Subkernel.init kernel in
  let mesh = Sky_mesh.Mesh.create sb in
  let spawn name code =
    let p = Kernel.spawn kernel ~name in
    ignore (Kernel.map_code kernel p code);
    p
  in
  let clean = Sky_isa.Encode.encode_all [ Sky_isa.Insn.Nop; Sky_isa.Insn.Ret ] in
  let client = spawn "client" (dirty_client_code ()) in
  let fs = spawn "fs" clean in
  let disk = spawn "disk" clean in
  let sid_disk = Subkernel.register_server sb disk echo in
  let sid_fs = Subkernel.register_server sb fs ~deps:[ sid_disk ] echo in
  Sky_mesh.Mesh.register mesh ~core:0 ~uri:"blk://" ~server_id:sid_disk;
  Sky_mesh.Mesh.register mesh ~core:0 ~uri:"fs://" ~server_id:sid_fs;
  Sky_mesh.Mesh.connect mesh client;
  ignore (Sky_mesh.Mesh.grant mesh ~core:0 ~client "fs://");
  Kernel.context_switch kernel ~core:0 client;
  ignore (Sky_mesh.Mesh.call_exn mesh ~core:0 ~client "fs://" (Bytes.make 64 'x'));
  mesh

let scenarios () =
  List.map
    (fun (variant, name) -> (name, Subkernel.audit_passes (build variant)))
    variants
  @ [ ("mesh", Sky_mesh.Mesh.audit_passes (build_mesh ())) ]

(* ------------------------------------------------------------------ *)
(* ERIM-style case breakdown over the corpus                           *)
(* ------------------------------------------------------------------ *)

let case_key occ =
  match occ.Sky_rewriter.Scan.case with
  | Sky_rewriter.Scan.C1_vmfunc -> `C1
  | Sky_rewriter.Scan.C2_spanning -> `C2
  | Sky_rewriter.Scan.C3_embedded _ -> `C3

let run_cases ?(scale = 256) ?(seed = 0x5B) () =
  let rows =
    List.map
      (fun (g : Sky_rewriter.Corpus.group) ->
        let rng =
          Rng.create ~seed:(seed lxor Hashtbl.hash g.Sky_rewriter.Corpus.name)
        in
        let size =
          max 256 (g.Sky_rewriter.Corpus.avg_code_kb * 1024 / scale)
        in
        let scanned = ref 0 in
        let c1 = ref 0 and c2 = ref 0 and c3 = ref 0 in
        for app = 0 to g.Sky_rewriter.Corpus.apps - 1 do
          let plant =
            g.Sky_rewriter.Corpus.plant_gimp
            && app = g.Sky_rewriter.Corpus.apps / 2
          in
          let prog =
            Sky_rewriter.Corpus.generate_program rng ~size_bytes:size ~plant
          in
          scanned := !scanned + Bytes.length prog;
          List.iter
            (fun occ ->
              match case_key occ with
              | `C1 -> incr c1
              | `C2 -> incr c2
              | `C3 -> incr c3)
            (Sky_rewriter.Scan.scan prog)
        done;
        [
          g.Sky_rewriter.Corpus.name;
          Tbl.fmt_int (!scanned / 1024);
          string_of_int !c1;
          string_of_int !c2;
          string_of_int !c3;
          string_of_int (!c1 + !c2 + !c3);
        ])
      Sky_rewriter.Corpus.table6_groups
  in
  Tbl.make
    ~title:"Audit: inadvertent VMFUNC occurrences by case (ERIM-style)"
    ~header:[ "program group"; "scanned (KB)"; "C1"; "C2"; "C3"; "total" ]
    ~notes:
      [
        Printf.sprintf
          "synthetic Table 6 corpus, code sizes scaled by 1/%d; C1 = actual \
           VMFUNC instruction, C2 = pattern spans an instruction boundary, \
           C3 = pattern embedded in modrm/sib/disp/imm (the planted GIMP \
           hit is C3/imm)"
          scale;
      ]
    rows

let run () = run_cases ()
