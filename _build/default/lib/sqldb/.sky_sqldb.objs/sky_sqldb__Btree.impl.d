lib/sqldb/btree.ml: Array Bytes Char Int32 List Pager Printf
