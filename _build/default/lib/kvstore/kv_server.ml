(** The key-value store server: an open-addressing hash table whose
    entries live in simulated guest memory, so inserts and lookups have
    real cache/TLB footprints proportional to key/value size. *)

let slot_count = 4096
let max_kv = 1024

(* slot: used u16 | klen u16 | vlen u16 | pad u16 | key | value *)
let slot_size = 8 + max_kv + max_kv

type t = {
  mem : Sky_mem.Phys_mem.t;
  base_pa : int;
  mutable entries : int;
}

let create machine =
  let frames = (slot_count * slot_size + 4095) / 4096 in
  let base_pa =
    Sky_mem.Frame_alloc.alloc_frames machine.Sky_sim.Machine.alloc ~count:frames
  in
  { mem = machine.Sky_sim.Machine.mem; base_pa; entries = 0 }

let hash key =
  let h = ref 5381 in
  Bytes.iter (fun c -> h := ((!h lsl 5) + !h + Char.code c) land 0x3fffffff) key;
  !h mod slot_count

let slot_pa t i = t.base_pa + (i * slot_size)

let touch cpu pa len =
  Sky_sim.Memsys.touch_range cpu Sky_sim.Memsys.Data ~pa ~len

let slot_used t i = Sky_mem.Phys_mem.read_u16 t.mem (slot_pa t i) = 1

let slot_key t i =
  let pa = slot_pa t i in
  let klen = Sky_mem.Phys_mem.read_u16 t.mem (pa + 2) in
  Sky_mem.Phys_mem.read_bytes t.mem (pa + 8) klen

exception Table_full

(* Linear probing from the hash slot. [f pa i] is applied to the first
   slot matching [key] (or the first free slot when [for_insert]). *)
let probe t cpu key ~for_insert =
  let start = hash key in
  let rec go n =
    if n >= slot_count then if for_insert then raise Table_full else None
    else begin
      let i = (start + n) mod slot_count in
      let pa = slot_pa t i in
      touch cpu pa 8;
      if not (slot_used t i) then if for_insert then Some i else None
      else begin
        touch cpu (pa + 8) (Bytes.length key);
        if Bytes.equal (slot_key t i) key then Some i else go (n + 1)
      end
    end
  in
  go 0

let insert t cpu ~key ~value =
  if Bytes.length key > max_kv || Bytes.length value > max_kv then
    invalid_arg "Kv_server.insert: too large";
  (* record packing / checksum work *)
  Sky_sim.Cpu.charge cpu (2 * (Bytes.length key + Bytes.length value));
  match probe t cpu key ~for_insert:true with
  | None -> raise Table_full
  | Some i ->
    let pa = slot_pa t i in
    if not (slot_used t i) then t.entries <- t.entries + 1;
    Sky_mem.Phys_mem.write_u16 t.mem pa 1;
    Sky_mem.Phys_mem.write_u16 t.mem (pa + 2) (Bytes.length key);
    Sky_mem.Phys_mem.write_u16 t.mem (pa + 4) (Bytes.length value);
    Sky_mem.Phys_mem.write_bytes t.mem (pa + 8) key;
    Sky_mem.Phys_mem.write_bytes t.mem (pa + 8 + max_kv) value;
    touch cpu (pa + 8) (Bytes.length key);
    touch cpu (pa + 8 + max_kv) (Bytes.length value)

let query t cpu ~key =
  Sky_sim.Cpu.charge cpu (2 * Bytes.length key);
  match probe t cpu key ~for_insert:false with
  | None -> None
  | Some i ->
    let pa = slot_pa t i in
    let vlen = Sky_mem.Phys_mem.read_u16 t.mem (pa + 4) in
    touch cpu (pa + 8 + max_kv) vlen;
    Some (Sky_mem.Phys_mem.read_bytes t.mem (pa + 8 + max_kv) vlen)

let entries t = t.entries
