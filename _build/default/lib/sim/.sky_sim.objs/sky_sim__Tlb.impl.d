lib/sim/tlb.ml: Array
