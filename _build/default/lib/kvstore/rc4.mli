(** RC4 stream cipher — the encryption server's workload (Figure 1).

    The cipher is real (the pipeline round-trips plaintext through
    encrypt + store + fetch + decrypt, and a known-answer test pins the
    keystream); its micro-architectural footprint is modelled by
    streaming the S-box region through the serving core's caches and
    charging per-byte mixing work. *)

type t

val create : Sky_sim.Machine.t -> key:string -> t

val crypt : t -> Sky_sim.Cpu.t -> bytes -> bytes
(** Encrypt/decrypt (RC4 is symmetric) with a fresh key schedule,
    charging [ksa_cycles + cycles_per_byte * length]. *)

val crypt_pure : bytes -> bytes -> bytes
(** [crypt_pure key data]: the bare cipher, for tests. *)

val ksa_cycles : int
val cycles_per_byte : int
