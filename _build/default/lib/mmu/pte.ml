(** 64-bit page-table / EPT entry encoding.

    Uses the x86-64 layout: bit 0 present (EPT: read), bit 1 writable,
    bit 2 user (EPT: execute), bit 5 accessed, bit 6 dirty, bit 7 PS
    (huge page, at PDPT/PD level), bit 63 NX. The physical frame number
    occupies bits 12..51. *)

type flags = {
  present : bool;
  writable : bool;
  user : bool;
  huge : bool;
  nx : bool;
}

let rw = { present = true; writable = true; user = false; huge = false; nx = false }
let urw = { rw with user = true }
let urx = { present = true; writable = false; user = true; huge = false; nx = false }
let ur = { present = true; writable = false; user = true; huge = false; nx = true }
let kernel_rx = { present = true; writable = false; user = false; huge = false; nx = false }
let absent = { present = false; writable = false; user = false; huge = false; nx = false }

let bit b v = if v then Int64.shift_left 1L b else 0L
let test v b = Int64.logand (Int64.shift_right_logical v b) 1L = 1L

let addr_mask = 0x000F_FFFF_FFFF_F000L

let encode ~pa flags =
  let open Int64 in
  if pa land 0xfff <> 0 then
    invalid_arg (Printf.sprintf "Pte.encode: unaligned pa %#x" pa);
  logor
    (logand (of_int pa) addr_mask)
    (logor (bit 0 flags.present)
       (logor (bit 1 flags.writable)
          (logor (bit 2 flags.user)
             (logor (bit 7 flags.huge) (bit 63 flags.nx)))))

let decode v =
  let pa = Int64.to_int (Int64.logand v addr_mask) in
  ( pa,
    {
      present = test v 0;
      writable = test v 1;
      user = test v 2;
      huge = test v 7;
      nx = test v 63;
    } )

let is_present v = test v 0
let zero = 0L
