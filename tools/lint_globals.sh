#!/bin/sh
# Enforcing lint: inventory toplevel mutable host state in lib/.
#
# Isoflow audits guest-visible state (page tables, EPTs, VMCS EPTP
# lists) but cannot see host-side OCaml globals.  Every toplevel
# `ref`/`Hashtbl.create`/`Atomic.make`/... in lib/ is simulator state
# that survives across scenario builds and — now that the quantum
# scheduler runs shards on OCaml domains and `--jobs` runs whole
# replicas concurrently — can leak between runs racing on different
# domains.  The Accel kill-switch bug (a process-global Atomic flipped
# mid-run by one replica, perturbing the others) is exactly the class
# this catches.
#
# Every finding must appear in tools/lint_globals.allow with a reviewed
# domain-safety classification; an unlisted finding fails the build.
# The fix for a real finding is the scoped-world pattern: move the
# state into Sky_sim.Scopes (or the fast-default + Domain.DLS override
# pattern it is built from), not the allowlist.
set -u
cd "$(dirname "$0")/.."

allow=tools/lint_globals.allow

# A toplevel binding is flush-left `let`; we flag ones whose right-hand
# side constructs mutable state on the same line.  Heuristic by design
# -- false negatives are acceptable, the goal is a cheap reviewable
# census, not a proof.
pattern='^let [a-zA-Z_0-9]* *(: *[^=]*)?= *(ref |ref$|Hashtbl\.create|Array\.make|Array\.create|Bytes\.make|Bytes\.create|Buffer\.create|Queue\.create|Stack\.create|Atomic\.make|Mutex\.create)'

echo "== toplevel mutable host state in lib/ (enforcing) =="
total=0
bad=0
for f in $(find lib -name '*.ml' | sort); do
  hits=$(grep -nE "$pattern" "$f" || true)
  [ -n "$hits" ] || continue
  while IFS= read -r line; do
    total=$((total + 1))
    sym=$(printf '%s\n' "$line" | sed -E 's/^[0-9]+:let ([a-zA-Z_0-9]*).*/\1/')
    if grep -q "^$f:$sym\$" "$allow"; then
      echo "  ok    $f:$line"
    else
      echo "  FAIL  $f:$line"
      echo "        not in $allow -- move it into a scoped bundle"
      echo "        (Sky_sim.Scopes / Domain.DLS override) or review and allowlist it"
      bad=$((bad + 1))
    fi
  done <<EOF
$hits
EOF
done

# Stale allowlist entries rot the census: flag entries whose binding no
# longer exists so the list shrinks as globals are burned down.
while IFS= read -r entry; do
  case "$entry" in ''|'#'*) continue ;; esac
  ef=${entry%%:*}
  es=${entry##*:}
  if [ ! -f "$ef" ] || ! grep -qE "^let $es( |:|$)" "$ef"; then
    echo "  STALE $entry (allowlisted but no such toplevel binding)"
    bad=$((bad + 1))
  fi
done < "$allow"

echo "== $total toplevel mutable binding(s), $bad unreviewed/stale =="
if [ "$bad" -gt 0 ]; then
  exit 1
fi
echo "(all findings reviewed; audit passes cover guest-visible state, this inventories host state)"
exit 0
