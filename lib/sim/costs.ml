(** Hardware latency calibration table.

    Every constant is a cycle count measured by the SkyBridge paper on an
    Intel Skylake i7-6700K (the evaluation machine, §6.1), with the paper
    section it comes from. These are the *direct* costs; indirect costs
    (cache and TLB pollution) are not constants — they emerge from the
    cache/TLB simulation in {!Cache} and {!Tlb}. *)

(* §2.1.1: mode switch components, measured with TSC around each
   instruction. *)
let syscall = 82
let swapgs = 26
let sysret = 75

(* §2.1.1 / Table 2: address-space switch (CR3 write with PCID enabled). *)
let cr3_write = 186

(* Table 2: VMFUNC EPTP switch with VPID enabled (no TLB flush). *)
let vmfunc = 134

(* WRPKRU protection-key switch (the ERIM-style MPK backend). ERIM
   measures 11–260 cycles for a full call gate; the WRPKRU instruction
   itself is in the tens of cycles on Skylake and never touches the TLB.
   The gate's register zeroing/moves ride in the generic per-crossing
   trampoline cost, so this constant is the bare instruction. *)
let wrpkru = 26

(* Allowed-entry-point table lookup in the "syscall as a privilege"
   filtered slowpath: a hashed (domain, server) probe plus an entry
   compare, performed at trap time in the kernel. Software-check cost of
   the same order as the seL4 fastpath capability logic. *)
let entry_filter_check = 48

(* §2.1.3: one inter-processor interrupt. *)
let ipi = 1913

(* INVLPG single-page invalidation. The paper does not measure it; this
   is a Skylake-class public figure of the same order as other
   serializing TLB maintenance, kept well below a PCID CR3 write. *)
let invlpg = 120

(* §2.1.1: seL4 fastpath software IPC logic (checks, endpoint management,
   capability enforcement). *)
let sel4_fastpath_logic = 98

(* §6.3: SkyBridge per-crossing cost other than VMFUNC itself: saving and
   restoring register values and installing the target stack. *)
let skybridge_crossing_other = 64

(* Table 2: no-op system call round trips, for the table2 experiment.
   Note the paper's own Table 2 (181 w/o KPTI) differs slightly from the
   §2.1.1 decomposition (82+26+26+75 = 209); see EXPERIMENTS.md. *)
let noop_syscall_kpti = 431
let noop_syscall_nokpti = 181

(* Memory hierarchy access latencies (Skylake, public figures; the paper
   does not list them but the indirect-cost experiment in §2.1.2 depends on
   realistic values). *)
let lat_l1 = 4
let lat_l2 = 12
let lat_l3 = 42
let lat_dram = 200

(* TLB-miss page walks issue one memory access per paging level; those
   accesses are charged through the cache hierarchy, so there is no flat
   "walk cost" constant. §4.1 cites up to 24 accesses for a 2-level
   (nested) walk, which is exactly 4 guest levels x (4 EPT levels + 1
   access each) + 4 for the final GPA: our walker reproduces that count
   structurally. *)

(* Evaluation machine clock (i7-6700K nominal, frequency scaling disabled
   per §6.1): used to convert simulated cycles to ops/s. *)
let freq_ghz = 4.0

let cycles_to_seconds c = float_of_int c /. (freq_ghz *. 1e9)

let ops_per_sec ~ops ~cycles =
  if cycles <= 0 then 0.0
  else float_of_int ops /. cycles_to_seconds cycles
