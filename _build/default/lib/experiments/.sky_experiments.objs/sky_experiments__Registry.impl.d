lib/experiments/registry.ml: Exp_ablation Exp_extensions Exp_fig7 Exp_kv Exp_scheduling Exp_table2 Exp_table4 Exp_table5 Exp_table6 Exp_ycsb List Sky_harness
