lib/experiments/exp_extensions.ml: Bytes Config Ipc Kernel List Printf Sky_core Sky_harness Sky_kernels Sky_sim Sky_ukernel Sky_ycsb Stack Tbl
