(** Global state for the translation-acceleration layer: the kill
    switch for all acceleration structures (paging-structure caches,
    EPT walk cache, host hot lines) and the mutation epoch that lazily
    invalidates every one of them when a mapping changes underneath. *)

val is_enabled : unit -> bool

val set_enabled : bool -> unit
(** Toggle all acceleration structures. Disabling restores the
    cache-free reference walker bit for bit; toggling also bumps the
    epoch so no entry survives a disable/enable round trip. *)

val current_epoch : unit -> int

val bump : unit -> unit
(** Record a mapping mutation (EPT unmap/remap of a live leaf, guest
    page-table unmap/protect/overwrite, table destruction). Every
    translation structure self-flushes on its next use. *)
