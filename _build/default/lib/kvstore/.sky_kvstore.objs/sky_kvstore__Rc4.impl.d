lib/kvstore/rc4.ml: Array Bytes Char Sky_mem Sky_sim
