(** The WRPKRU instruction (protection-key rights switch).

    Executable at any privilege level, like VMFUNC — which is what makes
    protection keys a viable user-level domain-switch mechanism (ERIM).
    Unlike VMFUNC it switches {e nothing} in the translation machinery:
    no EPTP change, no CR3 write, no TLB or paging-structure-cache
    interaction of any kind. The whole architectural effect is the PKRU
    register update, at {!Sky_sim.Costs.wrpkru} cycles. The hardware
    requires ECX = EDX = 0 at execution; that operand discipline is a
    property of the call-gate code and is checked statically by
    {!Sky_analysis.Tramp_check} in its MPK flavor, not dynamically
    here. *)

let execute vcpu ~pkru =
  let cpu = Vcpu.cpu vcpu in
  let core = Sky_sim.Cpu.id cpu in
  Sky_trace.Trace.span ~core ~cat:"vmfunc" "wrpkru" @@ fun () ->
  Sky_sim.Cpu.charge cpu Sky_sim.Costs.wrpkru;
  Sky_sim.Pmu.count (Sky_sim.Cpu.pmu cpu) Sky_sim.Pmu.Wrpkru_exec;
  vcpu.Vcpu.pkru <- pkru land 0xffff_ffff
