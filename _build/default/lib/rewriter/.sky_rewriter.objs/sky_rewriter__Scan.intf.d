lib/rewriter/scan.mli: Sky_isa
