(** The simulated machine: physical memory, frame allocator, cores and the
    shared L3 cache.

    Mirrors the paper's evaluation box (§6.1): an Intel Skylake i7-6700K
    with 4 cores / 8 hardware threads and 16 GiB of RAM — scaled down by
    default to keep the simulation light, but configurable. *)

type t = {
  mem : Sky_mem.Phys_mem.t;
  alloc : Sky_mem.Frame_alloc.t;
  cores : Cpu.t array;
  l3 : Cache.t;
}

val create : ?cores:int -> ?mem_mib:int -> unit -> t
(** Defaults: 8 logical cores (hyper-threading on, as in the paper),
    256 MiB of simulated physical memory. *)

val core : t -> int -> Cpu.t
val n_cores : t -> int

val max_cycles : t -> int
(** The wall clock of the machine: the furthest-ahead core. Used to turn a
    multi-core run into elapsed time. *)

val sync_cores : t -> unit
(** Advance every core to [max_cycles] — a barrier, used between
    experiment phases. *)
