examples/attack_demo.ml: Bytes Kernel List Printf Sky_core Sky_isa Sky_rewriter Sky_sim Sky_ukernel
