lib/blockdev/ramdisk.ml: Bytes Printf Sky_mem Sky_sim
