(** Open-loop (Poisson-arrival) load generator on the wire side of the
    {!Nic} — the overload instrument.

    Where {!Loadgen} is closed-loop (each connection keeps one request
    outstanding, so offered load self-throttles to the service rate),
    this generator fires requests from a global Poisson process whose
    mean inter-arrival gap is configured {e independently} of how fast
    the server drains them. Past saturation the backlog grows without
    bound unless the server sheds — exactly the regime admission control
    exists for.

    Arrivals are spread uniformly over a fleet of {b tenants}. Each
    tenant pipelines through one connection at a time (so per-connection
    response ordering stays well-defined even under work-stealing and
    batching), queueing arrivals client-side while a request is in
    flight; latency is measured from the {e arrival}, not the injection,
    so client-side queueing is charged to the server — the
    coordinated-omission-free measurement. After [requests_per_conn]
    requests a tenant churns: the connection is retired and a fresh flow
    id (hunted onto the same RSS queue) opens a new one, so a long run
    exercises thousands of short-lived connections.

    Tenants read only {e provisioned} keys (warmed server-side before
    the run) and write only keys that are never read back, so a shed PUT
    can never make a later GET look corrupt: every admitted response is
    classified by {!Workload.classify} into goodput / shed / unservable
    / corrupt with no false positives under load shedding. A request
    whose packet finds the RX ring full is counted [shed_wire] (the
    NIC is the outermost admission controller) and its client-side slot
    is recycled immediately.

    Like {!Loadgen}, everything runs in the NIC's DMA hooks and costs
    the simulated cores nothing — except the arrival pump itself, which
    must be stepped by a dedicated (wire-side) core: {!step} injects all
    due arrivals and sleeps to the next one. *)

open Sky_sim

type tenant = {
  tn_id : int;
  tn_queue : int;  (** RSS queue every connection of this tenant lands on *)
  tn_rng : Rng.t;
  tn_keys : (string * bytes) array;  (** provisioned warm keys (read path) *)
  mutable tn_flow : int;
  mutable tn_seq : int;  (** next packet seq on the current connection *)
  mutable tn_conn_left : int;  (** requests before the connection churns *)
  mutable tn_writes : int;  (** write-only key counter *)
  mutable tn_outstanding : (Workload.expect * int) option;
      (** in-flight request: expectation and arrival timestamp *)
  tn_backlog : int Queue.t;  (** arrival timestamps awaiting injection *)
}

type t = {
  nic : Nic.t;
  mix : Workload.mix;
  rtt : int;
  ttl : int option;  (** relative deadline stamped on every request *)
  requests_per_conn : int;
  files : (string * bytes) array;
  tenants : tenant array;
  by_flow : (int, tenant) Hashtbl.t;
  used : (int, unit) Hashtbl.t;  (** every flow id ever opened *)
  probe : int array;  (** per-queue flow-id hunt cursor (churn) *)
  remaining : int array;  (** unresolved requests per queue *)
  arrival_rng : Rng.t;
  mean_gap : int;
  total : int;
  hist : Sky_trace.Histogram.t;  (** arrival→response, goodput only *)
  mutable next_at : int;
  mutable offered : int;
  mutable ok : int;
  mutable shed : int;  (** 503 responses (queue-full / deadline) *)
  mutable shed_wire : int;  (** RX-ring-full drops at injection *)
  mutable unservable : int;  (** terminal 403s *)
  mutable corrupt : int;
  mutable responses : int;
  mutable churns : int;
}

let create nic ~seed ~mix ~tenants:ntenants ~requests_per_conn ~mean_gap
    ~total ~rtt ?ttl ~files ~keys () =
  if ntenants <= 0 then invalid_arg "Openloop.create: tenants";
  if requests_per_conn <= 0 then invalid_arg "Openloop.create: requests_per_conn";
  if mean_gap <= 0 then invalid_arg "Openloop.create: mean_gap";
  if total <= 0 then invalid_arg "Openloop.create: total";
  if Array.length keys <> ntenants then invalid_arg "Openloop.create: keys";
  let nq = Nic.n_queues nic in
  let flow_ids = Workload.place_flows nic ~conns:ntenants in
  let tenants =
    Array.mapi
      (fun i flow ->
        {
          tn_id = i;
          tn_queue = Nic.queue_of_flow nic flow;
          tn_rng = Rng.create ~seed:(seed + (i * 0x9e3779b9) + flow);
          tn_keys = keys.(i);
          tn_flow = flow;
          tn_seq = 0;
          tn_conn_left = requests_per_conn;
          tn_writes = 0;
          tn_outstanding = None;
          tn_backlog = Queue.create ();
        })
      flow_ids
  in
  let by_flow = Hashtbl.create (2 * ntenants) in
  let used = Hashtbl.create (4 * ntenants) in
  Array.iter
    (fun tn ->
      Hashtbl.replace by_flow tn.tn_flow tn;
      Hashtbl.replace used tn.tn_flow ())
    tenants;
  let top = Array.fold_left (fun a f -> Int.max a f) 0 flow_ids + 1 in
  {
    nic;
    mix;
    rtt;
    ttl;
    requests_per_conn;
    files;
    tenants;
    by_flow;
    used;
    probe = Array.make nq top;
    remaining = Array.make nq 0;
    arrival_rng = Rng.create ~seed:(seed lxor 0x0b3a10ad);
    mean_gap;
    total;
    hist = Sky_trace.Histogram.create ();
    next_at = 0;
    offered = 0;
    ok = 0;
    shed = 0;
    shed_wire = 0;
    unservable = 0;
    corrupt = 0;
    responses = 0;
    churns = 0;
  }

(* Hunt the next never-used flow id whose RSS hash lands on [queue] —
   how a real client fleet picks source ports. Never reusing an id keeps
   the server's per-flow sequence check honest across churn. *)
let fresh_flow t ~queue =
  let f = ref t.probe.(queue) in
  while Hashtbl.mem t.used !f || Nic.queue_of_flow t.nic !f <> queue do
    incr f
  done;
  t.probe.(queue) <- !f + 1;
  Hashtbl.replace t.used !f ();
  !f

(* Next request of [tn]: GETs read only provisioned keys, PUTs write
   only keys no GET ever asks for — load shedding can drop any subset of
   requests without ever faking a corruption. *)
let next_request t tn =
  let { Workload.m_kv_get; m_kv_put; m_fs_get } = t.mix in
  let total = m_kv_get + m_kv_put + m_fs_get in
  let roll = Rng.int tn.tn_rng total in
  if roll < m_kv_get && Array.length tn.tn_keys > 0 then begin
    let key, value = tn.tn_keys.(Rng.int tn.tn_rng (Array.length tn.tn_keys)) in
    (Http.Kv_get key, Workload.Value value)
  end
  else if roll < m_kv_get + m_kv_put || Array.length t.files = 0 then begin
    let n = tn.tn_writes in
    tn.tn_writes <- n + 1;
    let key = Printf.sprintf "t%d-w%d" tn.tn_id n in
    (Http.Kv_put (key, Workload.value_bytes tn.tn_rng tn.tn_id n), Workload.Stored)
  end
  else begin
    let name, data = t.files.(Rng.int tn.tn_rng (Array.length t.files)) in
    (Http.Fs_get name, Workload.File data)
  end

let rec inject t tn ~arrival ~at =
  if tn.tn_conn_left = 0 then begin
    (* Connection churn: retire the flow, open a fresh one (new SYN,
       seq restarts at 0) on the same RSS queue. *)
    Hashtbl.remove t.by_flow tn.tn_flow;
    tn.tn_flow <- fresh_flow t ~queue:tn.tn_queue;
    tn.tn_seq <- 0;
    tn.tn_conn_left <- t.requests_per_conn;
    t.churns <- t.churns + 1;
    Hashtbl.replace t.by_flow tn.tn_flow tn
  end;
  let req, expect = next_request t tn in
  let payload = Http.serialize_request req in
  let payload =
    match t.ttl with Some n -> Http.with_ttl ~ttl:n payload | None -> payload
  in
  let before = Nic.dropped t.nic in
  Nic.deliver t.nic ~flow:tn.tn_flow ~seq:tn.tn_seq ~payload ~at;
  if Nic.dropped t.nic > before then begin
    (* RX ring full — the NIC shed it. The seq was never consumed, so
       the server's ordering check stays intact; recycle the slot. *)
    t.shed_wire <- t.shed_wire + 1;
    t.remaining.(tn.tn_queue) <- t.remaining.(tn.tn_queue) - 1;
    pump t tn ~at
  end
  else begin
    tn.tn_seq <- tn.tn_seq + 1;
    tn.tn_conn_left <- tn.tn_conn_left - 1;
    tn.tn_outstanding <- Some (expect, arrival)
  end

and pump t tn ~at =
  match Queue.take_opt tn.tn_backlog with
  | Some arrival -> inject t tn ~arrival ~at
  | None -> ()

(* TX-completion hook: classify the response against what the in-flight
   request should produce, then feed the tenant's next queued arrival. *)
let on_response t (pkt : Nic.pkt) =
  match Hashtbl.find_opt t.by_flow pkt.Nic.flow with
  | None -> t.corrupt <- t.corrupt + 1
  | Some tn -> (
    match tn.tn_outstanding with
    | None -> t.corrupt <- t.corrupt + 1
    | Some (expect, arrival) ->
      tn.tn_outstanding <- None;
      t.responses <- t.responses + 1;
      t.remaining.(tn.tn_queue) <- t.remaining.(tn.tn_queue) - 1;
      (match Http.parse_response pkt.Nic.payload with
      | resp -> (
        match Workload.classify expect resp with
        | Workload.Good ->
          t.ok <- t.ok + 1;
          Sky_trace.Histogram.add t.hist (pkt.Nic.deliver_at - arrival)
        | Workload.Shed -> t.shed <- t.shed + 1
        | Workload.Unservable -> t.unservable <- t.unservable + 1
        | Workload.Corrupt -> t.corrupt <- t.corrupt + 1)
      | exception Http.Bad_request _ -> t.corrupt <- t.corrupt + 1);
      pump t tn ~at:(pkt.Nic.deliver_at + t.rtt))

(* Fire one arrival of the global Poisson process: route it to a
   uniformly random tenant (inject now if the tenant is idle, else queue
   client-side) and draw the next exponential gap. *)
let fire t =
  let at = t.next_at in
  t.offered <- t.offered + 1;
  let tn = t.tenants.(Rng.int t.arrival_rng (Array.length t.tenants)) in
  t.remaining.(tn.tn_queue) <- t.remaining.(tn.tn_queue) + 1;
  if tn.tn_outstanding = None && Queue.is_empty tn.tn_backlog then
    inject t tn ~arrival:at ~at
  else Queue.add at tn.tn_backlog;
  let u = Rng.float t.arrival_rng in
  let gap = int_of_float (ceil (-.log (1. -. u) *. float_of_int t.mean_gap)) in
  t.next_at <- at + Int.max 1 gap

let start t ~at =
  Nic.set_on_tx t.nic (on_response t);
  t.next_at <- at

let step t ~now =
  if t.offered >= t.total then Sky_sim.Machine.Done
  else if t.next_at > now then Sky_sim.Machine.Idle_until t.next_at
  else begin
    while t.next_at <= now && t.offered < t.total do
      fire t
    done;
    Sky_sim.Machine.Progress
  end

let next_event t = if t.offered < t.total then Some t.next_at else None
let queue_done t ~queue = t.offered >= t.total && t.remaining.(queue) = 0

let finished t =
  t.offered >= t.total && Array.for_all (fun r -> r = 0) t.remaining

let offered t = t.offered
let responses t = t.responses
let ok t = t.ok
let shed t = t.shed
let shed_wire t = t.shed_wire
let unservable t = t.unservable
let corrupt t = t.corrupt
let errors t = t.unservable + t.corrupt
let churns t = t.churns
let latencies t = t.hist
let tenants t = Array.length t.tenants
