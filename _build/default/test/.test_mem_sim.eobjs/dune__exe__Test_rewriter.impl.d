test/test_rewriter.ml: Alcotest Bytes Corpus Decode Encode Hashtbl Insn Int64 Interp List Printf QCheck QCheck_alcotest Reg Rewrite Scan Sky_isa Sky_rewriter Sky_sim String
