(** Table 2: latency of individual instructions and operations. *)

open Sky_ukernel
open Sky_harness

let measure_n n f =
  let acc = ref 0 in
  for _ = 1 to n do
    acc := !acc + f ()
  done;
  !acc / n

let run () =
  let machine = Sky_sim.Machine.create ~cores:1 ~mem_mib:64 () in
  let kernel = Kernel.create machine in
  let cpu = Kernel.cpu kernel ~core:0 in
  let cycles f =
    let t0 = Sky_sim.Cpu.cycles cpu in
    f ();
    Sky_sim.Cpu.cycles cpu - t0
  in
  let vcpu = Kernel.vcpu kernel ~core:0 in
  let pt = Sky_mmu.Page_table.create (Kernel.alloc kernel) in
  let cr3_write =
    measure_n 100 (fun () ->
        cycles (fun () ->
            Sky_mmu.Vcpu.write_cr3 vcpu ~cr3:(Sky_mmu.Page_table.root_pa pt) ~pcid:1))
  in
  let noop_syscall kpti =
    let config = { (Config.default Config.Sel4) with Config.kpti = kpti } in
    let k = Kernel.create ~config (Sky_sim.Machine.create ~cores:1 ~mem_mib:32 ()) in
    let c = Kernel.cpu k ~core:0 in
    (* warm the kernel entry footprint *)
    Kernel.kernel_entry k ~core:0;
    Kernel.kernel_exit k ~core:0;
    measure_n 100 (fun () ->
        let t0 = Sky_sim.Cpu.cycles c in
        Kernel.kernel_entry k ~core:0;
        Kernel.kernel_exit k ~core:0;
        Sky_sim.Cpu.cycles c - t0)
  in
  (* VMFUNC on a virtualized machine. *)
  let vm_machine = Sky_sim.Machine.create ~cores:1 ~mem_mib:64 () in
  let vm_kernel = Kernel.create vm_machine in
  let sb = Sky_core.Subkernel.init vm_kernel in
  ignore (Sky_core.Subkernel.rootkernel sb);
  let vm_vcpu = Kernel.vcpu vm_kernel ~core:0 in
  let vm_cpu = Kernel.cpu vm_kernel ~core:0 in
  let vmfunc =
    measure_n 100 (fun () ->
        let t0 = Sky_sim.Cpu.cycles vm_cpu in
        Sky_mmu.Vmfunc.execute vm_vcpu ~func:0 ~index:0;
        Sky_sim.Cpu.cycles vm_cpu - t0)
  in
  Tbl.make ~title:"Table 2: instruction/operation latencies (cycles)"
    ~header:[ "instruction or operation"; "paper"; "ours" ]
    ~notes:
      [
        "the paper's own Table 2 (181 w/o KPTI) differs from its SS2.1.1 \
         decomposition (82+26+26+75 = 209); we model the decomposition — \
         see EXPERIMENTS.md";
      ]
    [
      [ "write to CR3"; "186±10"; Tbl.fmt_int cr3_write ];
      [ "no-op system call w/ KPTI"; "431±13"; Tbl.fmt_int (noop_syscall true) ];
      [ "no-op system call w/o KPTI"; "181±5"; Tbl.fmt_int (noop_syscall false) ];
      [ "VMFUNC"; "134±3"; Tbl.fmt_int vmfunc ];
    ]
