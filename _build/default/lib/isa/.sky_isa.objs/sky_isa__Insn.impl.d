lib/isa/insn.ml: Format List Option Printf Reg
