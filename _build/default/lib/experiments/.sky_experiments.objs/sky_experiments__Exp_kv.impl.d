lib/experiments/exp_kv.ml: Kernel List Pipeline Printf Sky_core Sky_harness Sky_kvstore Sky_sim Sky_ukernel Tbl
