lib/experiments/exp_ablation.ml: Bytes Config Kernel List Printf Sky_core Sky_harness Sky_kernels Sky_mmu Sky_sim Sky_ukernel Tbl
