lib/experiments/stack.ml: Config Disk Fs Fs_iface Kernel Proc Ramdisk Sky_blockdev Sky_core Sky_kernels Sky_sim Sky_sqldb Sky_ukernel Sky_xv6fs
