(** The VMFUNC instruction (EPTP switching, function 0).

    Executable from non-root mode at any privilege level — including
    ring 3, which is the property SkyBridge builds on. With VPID enabled
    it does not flush the TLB and costs 134 cycles (Table 2). An invalid
    function number or EPTP index causes a VM exit, which the Rootkernel
    turns into a fault for the offending process. *)

exception Invalid_vmfunc of { func : int; index : int }

let execute vcpu ~func ~index =
  let cpu = Vcpu.cpu vcpu in
  let core = Sky_sim.Cpu.id cpu in
  Sky_trace.Trace.span ~core ~cat:"vmfunc" "vmfunc" @@ fun () ->
  Sky_sim.Cpu.charge cpu Sky_sim.Costs.vmfunc;
  Sky_sim.Pmu.count (Sky_sim.Cpu.pmu cpu) Sky_sim.Pmu.Vmfunc_exec;
  let vmcs = Vcpu.vmcs_exn vcpu in
  if
    func <> 0
    || index < 0
    || index >= Vmcs.eptp_list_size
    || Vmcs.eptp_at vmcs ~index = 0
  then begin
    Vmcs.record_exit vmcs Vmcs.Exit_invalid_vmfunc;
    Sky_sim.Pmu.count (Sky_sim.Cpu.pmu cpu) Sky_sim.Pmu.Vm_exit;
    Sky_trace.Trace.instant ~core ~cat:"vmexit" "vmexit.invalid_vmfunc";
    raise (Invalid_vmfunc { func; index })
  end;
  vmcs.Vmcs.current_index <- index;
  if not vmcs.Vmcs.vpid_enabled then begin
    (* Without VPID the EPTP switch invalidates combined mappings:
       leaf TLBs and paging-structure caches alike. The EPT walk cache
       is keyed by EPT root and correct across the switch. *)
    Sky_trace.Trace.instant ~core ~cat:"vmfunc" "tlb.flush";
    Sky_sim.Cpu.flush_guest_translation cpu
  end
