open Sky_sim
open Sky_ukernel
module Notification = Sky_kernels.Notification

let push_cycles = 120 (* enqueue + badge OR-in *)
let pop_cycles = 90 (* dequeue from the own queue *)
let steal_cycles = 60 (* extra: scan peers + cross-queue take *)

type 'a t = {
  kernel : Kernel.t;
  note : Notification.t;
  queues : 'a Queue.t array;
  capacity : int option;  (** per-receiver queue bound; [None] = unbounded *)
  mutable rr : int;  (** deterministic round-robin push cursor *)
  mutable pushed : int;
  mutable popped : int;
  mutable steals : int;
  mutable rejected : int;  (** {!try_push} refusals against [capacity] *)
}

let create ?capacity kernel ~name ~receivers =
  if receivers < 1 then invalid_arg "Endpoint.create: no receivers";
  (match capacity with
  | Some c when c < 1 -> invalid_arg "Endpoint.create: capacity"
  | _ -> ());
  {
    kernel;
    note = Notification.create kernel ~name;
    queues = Array.init receivers (fun _ -> Queue.create ());
    capacity;
    rr = 0;
    pushed = 0;
    popped = 0;
    steals = 0;
    rejected = 0;
  }

let receivers t = Array.length t.queues
let note t = t.note
let queue_level t ~recv = Queue.length t.queues.(recv)
let pending t = Array.fold_left (fun a q -> a + Queue.length q) 0 t.queues
let pushed t = t.pushed
let popped t = t.popped
let steals t = t.steals
let rejected t = t.rejected
let capacity t = t.capacity

let pick_receiver t receiver =
  match receiver with
  | Some r -> r mod Array.length t.queues
  | None ->
    let r = t.rr in
    t.rr <- (t.rr + 1) mod Array.length t.queues;
    r

let enqueue t ~core recv item =
  Queue.add item t.queues.(recv);
  t.pushed <- t.pushed + 1;
  Cpu.charge (Kernel.cpu t.kernel ~core) push_cycles;
  Notification.signal t.note ~core ~badge:(1 lsl recv)

let push t ~core ?receiver item = enqueue t ~core (pick_receiver t receiver) item

(* Admission-controlled enqueue: against the configured bound the length
   check happens before the round-robin cursor moves, so a rejected push
   leaves the cursor (and thus the deterministic schedule) untouched. *)
let try_push t ~core ?receiver item =
  let target =
    match receiver with Some r -> r mod Array.length t.queues | None -> t.rr
  in
  match t.capacity with
  | Some cap when Queue.length t.queues.(target) >= cap ->
    t.rejected <- t.rejected + 1;
    Cpu.charge (Kernel.cpu t.kernel ~core) push_cycles;
    false
  | _ ->
    enqueue t ~core (pick_receiver t receiver) item;
    true

(* Steal source: the longest peer queue, ties to the lowest index — a
   pure function of queue contents, so the schedule stays deterministic. *)
let steal_source t ~recv =
  let best = ref (-1) and best_len = ref 0 in
  Array.iteri
    (fun i q ->
      if i <> recv && Queue.length q > !best_len then begin
        best := i;
        best_len := Queue.length q
      end)
    t.queues;
  if !best >= 0 then Some !best else None

let pop t ~core ~recv =
  match Queue.take_opt t.queues.(recv) with
  | Some item ->
    t.popped <- t.popped + 1;
    Cpu.charge (Kernel.cpu t.kernel ~core) pop_cycles;
    Some item
  | None -> (
    match steal_source t ~recv with
    | None -> None
    | Some src ->
      let item = Queue.take t.queues.(src) in
      t.popped <- t.popped + 1;
      t.steals <- t.steals + 1;
      Cpu.charge (Kernel.cpu t.kernel ~core) (pop_cycles + steal_cycles);
      Some item)
