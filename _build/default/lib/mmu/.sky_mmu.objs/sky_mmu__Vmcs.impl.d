lib/mmu/vmcs.ml: Array List
