(** One simulated CPU core.

    Holds the purely architectural per-core state: the cycle counter (TSC),
    private L1i/L1d/L2 caches, instruction and data TLBs and the PMU. The
    MMU layer wraps this with virtualization state (CR3, VMCS); the kernel
    layer adds scheduling state. The shared L3 lives in {!Machine}. *)

type t

val create : id:int -> l3:Cache.t -> t
(** Creates a core with Skylake-like private structures:
    L1i 32 KiB/8-way, L1d 32 KiB/8-way, L2 256 KiB/4-way,
    iTLB 128 entries/8-way, dTLB 64 entries/4-way. *)

val id : t -> int
val cycles : t -> int

val charge : t -> int -> unit
(** Advance this core's cycle counter. *)

val advance_to : t -> int -> unit
(** [advance_to t c] sets the counter to [max (cycles t) c] — used when a
    core blocks on a resource another core releases at time [c]. *)

val l1i : t -> Cache.t
val l1d : t -> Cache.t
val l2 : t -> Cache.t
val l3 : t -> Cache.t
val itlb : t -> Tlb.t
val dtlb : t -> Tlb.t

val psc_pml4e : t -> Psc.t
(** Paging-structure cache over VA bits 47:39 → PDPT base GPA. *)

val psc_pdpte : t -> Psc.t
(** VA bits 47:30 → PD base GPA. *)

val psc_pde : t -> Psc.t
(** VA bits 47:21 → PT base GPA. *)

val ept_walk_cache : t -> Psc.t
(** Nested-walk cache: (EPT root, GPN) → HPN. *)

val flush_guest_translation : t -> unit
(** Flush leaf TLBs and paging-structure caches (what an untagged CR3
    write or VMFUNC without VPID flushes). The EPT walk cache is keyed
    by host-physical EPT root and deliberately survives. *)

val pmu : t -> Pmu.t

type footprint = {
  l1i_miss : int;
  l1d_miss : int;
  l2_miss : int;
  l3_miss : int;
  itlb_miss : int;
  dtlb_miss : int;
}
(** Snapshot of the Table-1 counters. *)

val footprint : t -> footprint
val reset_stats : t -> unit
(** Reset counters (not contents — pollution state survives, as on real
    hardware when you reprogram the PMU). *)

val flush_all : t -> unit
(** Invalidate all private caches and TLBs (power-on state). *)
