(** Minimal JSON: enough of RFC 8259 to emit Chrome trace files and to
    parse them back in tests (the toolchain image carries no JSON
    library). Writer escapes control characters; parser is a plain
    recursive-descent over a string. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string buf (Printf.sprintf "%.1f" f)
    else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | String s -> escape buf s
  | List l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        write buf v)
      l;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        write buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 4096 in
  write buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else begin
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' ->
          (if !pos >= n then fail "unterminated escape"
           else begin
             let e = s.[!pos] in
             advance ();
             match e with
             | '"' -> Buffer.add_char buf '"'
             | '\\' -> Buffer.add_char buf '\\'
             | '/' -> Buffer.add_char buf '/'
             | 'n' -> Buffer.add_char buf '\n'
             | 'r' -> Buffer.add_char buf '\r'
             | 't' -> Buffer.add_char buf '\t'
             | 'b' -> Buffer.add_char buf '\b'
             | 'f' -> Buffer.add_char buf '\012'
             | 'u' ->
               if !pos + 4 > n then fail "bad \\u escape";
               let hex = String.sub s !pos 4 in
               pos := !pos + 4;
               let code =
                 try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
               in
               (* Non-BMP and multibyte not needed for our own output. *)
               if code < 0x80 then Buffer.add_char buf (Char.chr code)
               else Buffer.add_string buf (Printf.sprintf "\\u%04x" code)
             | _ -> fail "bad escape"
           end);
          go ()
        | c -> Buffer.add_char buf c; go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected , or }"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            List (List.rev (v :: acc))
          | _ -> fail "expected , or ]"
        in
        elements []
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* Accessors used by tests. *)
let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_list = function List l -> l | _ -> []

let string_value = function String s -> Some s | _ -> None
let int_value = function Int i -> Some i | _ -> None
