type entry = { ppn : int; page_shift : int; writable : bool; user : bool }

type slot = {
  mutable valid : bool;
  mutable asid : int;
  mutable vpn : int;
  mutable stamp : int;
  mutable entry : entry;
}

type t = {
  name : string;
  sets : int;
  ways : int;
  slots : slot array;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

let dummy_entry = { ppn = 0; page_shift = 12; writable = false; user = false }

let is_pow2 n = n > 0 && n land (n - 1) = 0

let create ~name ~entries ~ways =
  if ways <= 0 || entries mod ways <> 0 then
    invalid_arg "Tlb.create: geometry does not divide";
  let sets = entries / ways in
  if not (is_pow2 sets) then invalid_arg "Tlb.create: sets not pow2";
  let slots =
    Array.init entries (fun _ ->
        { valid = false; asid = 0; vpn = 0; stamp = 0; entry = dummy_entry })
  in
  { name; sets; ways; slots; clock = 0; hits = 0; misses = 0 }

let name t = t.name
let capacity t = Array.length t.slots
let set_of t vpn = vpn land (t.sets - 1)

let find t ~asid ~vpn =
  let base = set_of t vpn * t.ways in
  let rec go w =
    if w = t.ways then None
    else
      let s = t.slots.(base + w) in
      if s.valid && s.asid = asid && s.vpn = vpn then Some s else go (w + 1)
  in
  go 0

let lookup t ~asid ~vpn =
  t.clock <- t.clock + 1;
  match find t ~asid ~vpn with
  | Some s ->
    s.stamp <- t.clock;
    t.hits <- t.hits + 1;
    Some s.entry
  | None ->
    t.misses <- t.misses + 1;
    None

let insert t ~asid ~vpn entry =
  t.clock <- t.clock + 1;
  match find t ~asid ~vpn with
  | Some s ->
    s.entry <- entry;
    s.stamp <- t.clock
  | None ->
    (* Prefer an invalid slot, otherwise evict the LRU way. *)
    let base = set_of t vpn * t.ways in
    let victim = ref t.slots.(base) in
    for w = 1 to t.ways - 1 do
      let s = t.slots.(base + w) in
      let v = !victim in
      if v.valid && ((not s.valid) || s.stamp < v.stamp) then victim := s
    done;
    let s = !victim in
    s.valid <- true;
    s.asid <- asid;
    s.vpn <- vpn;
    s.entry <- entry;
    s.stamp <- t.clock

let flush_all t = Array.iter (fun s -> s.valid <- false) t.slots

let flush_asid t ~asid =
  Array.iter (fun s -> if s.asid = asid then s.valid <- false) t.slots

let flush_page t ~asid ~vpn =
  match find t ~asid ~vpn with Some s -> s.valid <- false | None -> ()

let hits t = t.hits
let misses t = t.misses

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0
