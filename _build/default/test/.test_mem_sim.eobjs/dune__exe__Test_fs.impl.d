test/test_fs.ml: Alcotest Bytes Char Disk Fs Fs_iface Fsck Gen Kernel List Printf Proto QCheck QCheck_alcotest Ramdisk Sky_blockdev Sky_kernels Sky_sim Sky_ukernel Sky_xv6fs String
