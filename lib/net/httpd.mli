(** skyhttpd: N worker processes (worker [i] pinned to core [i]; workers
    [0..queues-1] each own a NIC ring) parsing HTTP-style requests and
    serving them through per-worker backend {!binding}s — mediated
    SkyBridge calls on the fast path, baseline kernel IPC on the
    slowpath variant.

    Requests are routed through a multi-receiver {!Sky_mesh.Endpoint},
    not by RSS: ring owners push demultiplexed requests onto the
    endpoint, any worker pops (own queue first, then work-stealing), and
    workers beyond the ring count live purely off the endpoint — one
    server URI fanning out across more cores than RX queues.

    Fault site ["server.httpd"]: [Crash] kills a worker mid-request; the
    in-flight request is parked, bindings are revoked, and the worker is
    restarted and re-bound (PR 3 machinery) with the request replayed —
    zero lost requests. [Hang] shows up as a tail-latency spike. A
    binding that raises {!Denied} (capability revoked — least privilege)
    bounces the request to the next receiver instead of serving it. *)

type binding = {
  kv_put : core:int -> key:string -> value:bytes -> bool;
  kv_get : core:int -> key:string -> bytes option;
  fs_read : core:int -> name:string -> bytes option;
  revoke : core:int -> unit;
  rebind : core:int -> unit;
}
(** One worker's typed view of the backends, closed over its process and
    transport. [revoke]/[rebind] bracket a worker crash/restart. *)

type t

val fault_site : string
(** ["server.httpd"] — arm {!Sky_faults.Fault} here to crash/hang
    workers mid-request. *)

exception Denied
(** Raised by a binding whose capability was revoked: the worker
    survives, counts the denial, and bounces the request to a peer. *)

val restart_cycles : int

val create :
  ?preload:string list ->
  ?file_cache:bool ->
  Sky_ukernel.Kernel.t ->
  Nic.t ->
  workers:(Sky_ukernel.Proc.t * binding) array ->
  queue_done:(queue:int -> bool) ->
  t
(** One worker per (process, binding) pair; worker [i] is pinned to core
    [i]. There must be at least as many workers as NIC queues; workers
    [0..queues-1] own a ring each and park blocked in recv on its IRQ,
    the rest park on the endpoint notification. The caller spawns the
    processes (they must already be registered as clients with whatever
    transport the bindings use). [preload] names static files each
    worker reads into its cache at boot, through its binding — the
    startup cost of not convoying every request on the FS big lock.
    [file_cache] (default true) enables the per-worker static-file
    cache; the composed mesh scenario disables it so every [Fs_get]
    exercises the capability-checked backend path. [queue_done] is the
    load generator's per-queue exit test. *)

val step : t -> core:int -> Sky_sim.Machine.step
(** One event-loop quantum of [core]'s worker, for
    {!Sky_sim.Machine.interleave}. *)

val run : t -> unit
(** Interleave all workers by virtual time until every queue is done and
    the endpoint is drained. *)

val served : t -> int
val bad_requests : t -> int
val restarts : t -> int
val hangs : t -> int

val denials : t -> int
(** Requests bounced to a peer because a binding raised {!Denied}. *)

val steals : t -> int
(** Endpoint pops satisfied from a peer's receive queue. *)

val endpoint : t -> (Socket.conn * bytes) Sky_mesh.Endpoint.t

val fs_cold : t -> int
(** Static-file cache misses served through the (big-locked) xv6fs
    backend. Each worker pays one per file per lifetime — a crash wipes
    its cache, so restarts re-read through the FS. *)

val worker_served : t -> int -> int
