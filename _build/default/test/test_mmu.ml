(* Tests for the MMU: guest page tables, EPTs (incl. the CR3-remap shallow
   copy), VMCS, nested translation and VMFUNC. *)

open Sky_mem
open Sky_sim
open Sky_mmu

let setup () =
  let machine = Machine.create ~cores:2 ~mem_mib:64 () in
  (machine, machine.Machine.mem, machine.Machine.alloc)

(* ------------------------------------------------------------------ *)
(* Pte                                                                 *)
(* ------------------------------------------------------------------ *)

let test_pte_roundtrip () =
  let e = Pte.encode ~pa:0x1234000 Pte.urw in
  let pa, f = Pte.decode e in
  Alcotest.(check int) "pa" 0x1234000 pa;
  Alcotest.(check bool) "present" true f.Pte.present;
  Alcotest.(check bool) "writable" true f.Pte.writable;
  Alcotest.(check bool) "user" true f.Pte.user;
  Alcotest.(check bool) "not huge" false f.Pte.huge

let test_pte_absent () =
  Alcotest.(check bool) "zero not present" false (Pte.is_present Pte.zero)

let prop_pte_roundtrip =
  QCheck.Test.make ~name:"pte encode/decode roundtrip" ~count:200
    QCheck.(
      tup5 (int_bound 0xfffff) bool bool bool bool)
    (fun (frame, w, u, h, nx) ->
      let pa = frame * 4096 in
      let flags = { Pte.present = true; writable = w; user = u; huge = h; nx } in
      let pa', flags' = Pte.decode (Pte.encode ~pa flags) in
      pa = pa' && flags = flags')

(* ------------------------------------------------------------------ *)
(* Page_table                                                          *)
(* ------------------------------------------------------------------ *)

let test_pt_map_walk () =
  let _, mem, alloc = setup () in
  let pt = Page_table.create alloc in
  Page_table.map pt ~mem ~alloc ~va:0x400000 ~pa:0x7000 ~flags:Pte.urw;
  match Page_table.walk ~mem ~root_pa:(Page_table.root_pa pt) ~va:0x400123 with
  | Ok r ->
    Alcotest.(check int) "pa includes offset" 0x7123 r.Page_table.pa;
    Alcotest.(check int) "4-level walk" 4 (List.length r.Page_table.entries_read)
  | Error _ -> Alcotest.fail "expected mapping"

let test_pt_unmapped_faults () =
  let _, mem, alloc = setup () in
  let pt = Page_table.create alloc in
  match Page_table.walk ~mem ~root_pa:(Page_table.root_pa pt) ~va:0x400000 with
  | Error (Page_table.Not_present va) -> Alcotest.(check int) "va" 0x400000 va
  | _ -> Alcotest.fail "expected Not_present"

let test_pt_unmap () =
  let _, mem, alloc = setup () in
  let pt = Page_table.create alloc in
  Page_table.map pt ~mem ~alloc ~va:0x400000 ~pa:0x7000 ~flags:Pte.urw;
  Page_table.unmap pt ~mem ~va:0x400000;
  match Page_table.walk ~mem ~root_pa:(Page_table.root_pa pt) ~va:0x400000 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected fault after unmap"

let test_pt_protect () =
  let _, mem, alloc = setup () in
  let pt = Page_table.create alloc in
  Page_table.map pt ~mem ~alloc ~va:0x400000 ~pa:0x7000 ~flags:Pte.urw;
  Page_table.protect pt ~mem ~va:0x400000 ~flags:Pte.ur;
  match Page_table.walk ~mem ~root_pa:(Page_table.root_pa pt) ~va:0x400000 with
  | Ok r -> Alcotest.(check bool) "now read-only" false r.Page_table.flags.Pte.writable
  | Error _ -> Alcotest.fail "still mapped"

let test_pt_distinct_vas_share_tables () =
  let _, mem, alloc = setup () in
  let pt = Page_table.create alloc in
  (* Two pages in the same 2 MiB region share all intermediate tables. *)
  Page_table.map pt ~mem ~alloc ~va:0x400000 ~pa:0x7000 ~flags:Pte.urw;
  Page_table.map pt ~mem ~alloc ~va:0x401000 ~pa:0x8000 ~flags:Pte.urw;
  Alcotest.(check int) "4 table pages total" 4 (Page_table.pages pt)

let prop_pt_map_then_walk =
  QCheck.Test.make ~name:"map-then-walk agrees for random mappings" ~count:50
    QCheck.(list_of_size (Gen.int_range 1 20) (pair (int_bound 0xffff) (int_bound 0x3fff)))
    (fun pairs ->
      let _, mem, alloc = setup () in
      let pt = Page_table.create alloc in
      (* Deduplicate VAs (later mappings overwrite earlier). *)
      let tbl = Hashtbl.create 16 in
      List.iter
        (fun (vpn, ppn) ->
          let va = vpn * 4096 and pa = ppn * 4096 in
          Page_table.map pt ~mem ~alloc ~va ~pa ~flags:Pte.urw;
          Hashtbl.replace tbl va pa)
        pairs;
      Hashtbl.fold
        (fun va pa acc ->
          acc
          &&
          match Page_table.walk ~mem ~root_pa:(Page_table.root_pa pt) ~va with
          | Ok r -> r.Page_table.pa = pa
          | Error _ -> false)
        tbl true)

(* ------------------------------------------------------------------ *)
(* Ept                                                                 *)
(* ------------------------------------------------------------------ *)

let test_ept_identity_1g () =
  let _, mem, alloc = setup () in
  let ept = Ept.create alloc in
  Ept.map_identity_1g ept ~mem ~alloc ~gib:4;
  (match Ept.walk ~mem ~root_pa:(Ept.root_pa ept) ~gpa:0x12345678 with
  | Ok r ->
    Alcotest.(check int) "identity" 0x12345678 r.Ept.hpa;
    Alcotest.(check int) "2 entries read (PML4 + 1G leaf)" 2
      (List.length r.Ept.entries_read)
  | Error _ -> Alcotest.fail "mapped");
  (* 1 root + 1 PDPT for 4 GiB. *)
  Alcotest.(check int) "tiny footprint" 2 (Ept.pages_owned ept)

let test_ept_violation () =
  let _, mem, alloc = setup () in
  let ept = Ept.create alloc in
  Ept.map_identity_1g ept ~mem ~alloc ~gib:1;
  match Ept.walk ~mem ~root_pa:(Ept.root_pa ept) ~gpa:(3 lsl 30) with
  | Error (Ept.Ept_not_present _) -> ()
  | Ok _ -> Alcotest.fail "expected violation beyond mapped range"

let test_ept_clone_cr3_remap_four_pages () =
  (* §4.3: "Only four pages that map client-CR3 to the HPA of server-CR3
     are modified. All other EPT pages are kept intact." *)
  let _, mem, alloc = setup () in
  let base = Ept.create alloc in
  Ept.map_identity_1g base ~mem ~alloc ~gib:4;
  let server_ept = Ept.clone_shallow base ~mem ~alloc in
  Alcotest.(check int) "clone owns only its root" 1 (Ept.pages_owned server_ept);
  let client_cr3 = 0x0123_4000 and server_cr3 = 0x0777_7000 in
  Ept.remap_gpa server_ept ~mem ~alloc ~gpa:client_cr3 ~hpa:server_cr3;
  Alcotest.(check int) "exactly four private pages" 4 (Ept.pages_owned server_ept);
  (* The remapped GPA translates to the server's CR3 frame... *)
  (match Ept.walk ~mem ~root_pa:(Ept.root_pa server_ept) ~gpa:(client_cr3 + 0x18) with
  | Ok r -> Alcotest.(check int) "remapped" (server_cr3 + 0x18) r.Ept.hpa
  | Error _ -> Alcotest.fail "remapped gpa must be mapped");
  (* ...while neighbouring GPAs keep the identity mapping... *)
  (match Ept.walk ~mem ~root_pa:(Ept.root_pa server_ept) ~gpa:(client_cr3 + 0x1000) with
  | Ok r -> Alcotest.(check int) "neighbour untouched" (client_cr3 + 0x1000) r.Ept.hpa
  | Error _ -> Alcotest.fail "neighbour must stay mapped");
  (* ...and the base EPT is unchanged. *)
  match Ept.walk ~mem ~root_pa:(Ept.root_pa base) ~gpa:client_cr3 with
  | Ok r -> Alcotest.(check int) "base identity intact" client_cr3 r.Ept.hpa
  | Error _ -> Alcotest.fail "base must stay mapped"

let test_ept_unmap_injects_violation () =
  let _, mem, alloc = setup () in
  let ept = Ept.create alloc in
  Ept.map_identity_1g ept ~mem ~alloc ~gib:1;
  Ept.unmap_4k ept ~mem ~alloc ~gpa:0x5000;
  (match Ept.walk ~mem ~root_pa:(Ept.root_pa ept) ~gpa:0x5000 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected violation");
  match Ept.walk ~mem ~root_pa:(Ept.root_pa ept) ~gpa:0x6000 with
  | Ok r -> Alcotest.(check int) "neighbour intact" 0x6000 r.Ept.hpa
  | Error _ -> Alcotest.fail "neighbour"

let prop_ept_remaps =
  QCheck.Test.make ~name:"ept random remaps resolve correctly" ~count:30
    QCheck.(list_of_size (Gen.int_range 1 10) (pair (int_bound 0xfffff) (int_bound 0xfffff)))
    (fun pairs ->
      let _, mem, alloc = setup () in
      let ept = Ept.create alloc in
      Ept.map_identity_1g ept ~mem ~alloc ~gib:8;
      let tbl = Hashtbl.create 16 in
      List.iter
        (fun (gfn, hfn) ->
          let gpa = gfn * 4096 and hpa = hfn * 4096 in
          Ept.remap_gpa ept ~mem ~alloc ~gpa ~hpa;
          Hashtbl.replace tbl gpa hpa)
        pairs;
      Hashtbl.fold
        (fun gpa hpa acc ->
          acc
          &&
          match Ept.walk ~mem ~root_pa:(Ept.root_pa ept) ~gpa with
          | Ok r -> r.Ept.hpa = hpa
          | Error _ -> false)
        tbl true)

(* ------------------------------------------------------------------ *)
(* Vmcs / Vmfunc / Translate                                           *)
(* ------------------------------------------------------------------ *)

let test_vmcs_eptp_list () =
  let vmcs = Vmcs.create () in
  Vmcs.set_eptp vmcs ~index:0 ~eptp:0x1000;
  Vmcs.set_eptp vmcs ~index:3 ~eptp:0x2000;
  Alcotest.(check int) "slot 0" 0x1000 (Vmcs.eptp_at vmcs ~index:0);
  Alcotest.(check int) "current is slot 0" 0x1000 (Vmcs.current_eptp vmcs);
  Vmcs.install_list vmcs [ 0x5000; 0x6000 ];
  Alcotest.(check int) "install resets current" 0x5000 (Vmcs.current_eptp vmcs);
  Alcotest.(check int) "old entries cleared" 0 (Vmcs.eptp_at vmcs ~index:3)

(* Build a virtualized vcpu with a client and a server process, the
   paper's Figure 6 configuration, and exercise the full path. *)
let fig6_setup ?(vpid = true) () =
  let machine, mem, alloc = setup () in
  let vcpu = Vcpu.create (Machine.core machine 0) in
  (* Two guest page tables mapping the same VA to different frames. *)
  let client_pt = Page_table.create alloc in
  let server_pt = Page_table.create alloc in
  let va = 0x400000 in
  let client_frame = Frame_alloc.alloc_frame alloc in
  let server_frame = Frame_alloc.alloc_frame alloc in
  Phys_mem.write_u64 mem client_frame 0xC11EA7L;
  Phys_mem.write_u64 mem server_frame 0x5E77E7L;
  Page_table.map client_pt ~mem ~alloc ~va ~pa:client_frame ~flags:Pte.urw;
  Page_table.map server_pt ~mem ~alloc ~va ~pa:server_frame ~flags:Pte.urw;
  (* Base EPT + client EPT (plain clone) + server EPT (CR3 remapped). *)
  let base = Ept.create alloc in
  Ept.map_identity_1g base ~mem ~alloc ~gib:1;
  let client_ept = Ept.clone_shallow base ~mem ~alloc in
  let server_ept = Ept.clone_shallow base ~mem ~alloc in
  Ept.remap_gpa server_ept ~mem ~alloc
    ~gpa:(Page_table.root_pa client_pt)
    ~hpa:(Page_table.root_pa server_pt);
  let vmcs = Vmcs.create ~vpid () in
  Vmcs.install_list vmcs [ Ept.root_pa client_ept; Ept.root_pa server_ept ];
  Vcpu.enter_non_root vcpu vmcs;
  Vcpu.set_mode vcpu Vcpu.User;
  vcpu.Vcpu.cr3 <- Page_table.root_pa client_pt;
  (machine, mem, vcpu, va, client_frame, server_frame)

let test_fig6_vmfunc_switches_address_space () =
  let _, mem, vcpu, va, client_frame, server_frame = fig6_setup () in
  (* Before VMFUNC: VA translates via the client page table. *)
  let hpa1 = Translate.translate vcpu mem Translate.data_read ~va in
  Alcotest.(check int) "client frame" client_frame hpa1;
  (* VMFUNC to EPTP index 1 (the server EPT): same CR3 value, but the
     walk now reads the server page table. *)
  Vmfunc.execute vcpu ~func:0 ~index:1;
  let hpa2 = Translate.translate vcpu mem Translate.data_read ~va in
  Alcotest.(check int) "server frame after VMFUNC" server_frame hpa2;
  (* And back. *)
  Vmfunc.execute vcpu ~func:0 ~index:0;
  let hpa3 = Translate.translate vcpu mem Translate.data_read ~va in
  Alcotest.(check int) "client frame again" client_frame hpa3

let test_vmfunc_cost_and_no_flush () =
  let _, mem, vcpu, va, _, _ = fig6_setup () in
  let cpu = Vcpu.cpu vcpu in
  ignore (Translate.translate vcpu mem Translate.data_read ~va);
  Vmfunc.execute vcpu ~func:0 ~index:1;
  ignore (Translate.translate vcpu mem Translate.data_read ~va);
  Vmfunc.execute vcpu ~func:0 ~index:0;
  Tlb.reset_stats (Cpu.dtlb cpu);
  (* With VPID, returning to EPTP 0 must hit the TLB entry cached before
     the switches. *)
  ignore (Translate.translate vcpu mem Translate.data_read ~va);
  Alcotest.(check int) "TLB hit across VMFUNC (VPID)" 1 (Tlb.hits (Cpu.dtlb cpu));
  Alcotest.(check int) "no TLB miss" 0 (Tlb.misses (Cpu.dtlb cpu))

let test_vmfunc_vpid_disabled_flushes () =
  let _, mem, vcpu, va, _, _ = fig6_setup ~vpid:false () in
  let cpu = Vcpu.cpu vcpu in
  ignore (Translate.translate vcpu mem Translate.data_read ~va);
  Vmfunc.execute vcpu ~func:0 ~index:1;
  Vmfunc.execute vcpu ~func:0 ~index:0;
  Tlb.reset_stats (Cpu.dtlb cpu);
  ignore (Translate.translate vcpu mem Translate.data_read ~va);
  Alcotest.(check int) "TLB miss after unVPID'd VMFUNC" 1 (Tlb.misses (Cpu.dtlb cpu))

let test_vmfunc_invalid_index () =
  let _, _, vcpu, _, _, _ = fig6_setup () in
  let vmcs = Vcpu.vmcs_exn vcpu in
  (try
     Vmfunc.execute vcpu ~func:0 ~index:7;
     Alcotest.fail "expected Invalid_vmfunc"
   with Vmfunc.Invalid_vmfunc _ -> ());
  Alcotest.(check int) "records a VM exit" 1
    (Vmcs.exits vmcs Vmcs.Exit_invalid_vmfunc);
  try
    Vmfunc.execute vcpu ~func:1 ~index:0;
    Alcotest.fail "expected Invalid_vmfunc for func != 0"
  with Vmfunc.Invalid_vmfunc _ -> ()

let test_translate_user_kernel_protection () =
  let machine, mem, alloc = setup () in
  let vcpu = Vcpu.create (Machine.core machine 0) in
  let pt = Page_table.create alloc in
  let frame = Frame_alloc.alloc_frame alloc in
  Page_table.map pt ~mem ~alloc ~va:0x400000 ~pa:frame ~flags:Pte.rw;
  (* supervisor-only *)
  vcpu.Vcpu.cr3 <- Page_table.root_pa pt;
  Vcpu.set_mode vcpu Vcpu.User;
  (try
     ignore (Translate.translate vcpu mem Translate.data_read ~va:0x400000);
     Alcotest.fail "expected protection fault"
   with Translate.Page_fault (Page_table.Protection _) -> ());
  Vcpu.set_mode vcpu Vcpu.Kernel;
  ignore (Translate.translate vcpu mem Translate.data_read ~va:0x400000)

let test_translate_write_protection () =
  let machine, mem, alloc = setup () in
  let vcpu = Vcpu.create (Machine.core machine 0) in
  let pt = Page_table.create alloc in
  let frame = Frame_alloc.alloc_frame alloc in
  Page_table.map pt ~mem ~alloc ~va:0x400000 ~pa:frame ~flags:Pte.ur;
  vcpu.Vcpu.cr3 <- Page_table.root_pa pt;
  Vcpu.set_mode vcpu Vcpu.User;
  ignore (Translate.translate vcpu mem Translate.data_read ~va:0x400000);
  try
    ignore (Translate.translate vcpu mem Translate.data_write ~va:0x400000);
    Alcotest.fail "expected write-protection fault"
  with Translate.Page_fault (Page_table.Protection _) -> ()

let test_translate_guest_rw () =
  let machine, mem, alloc = setup () in
  let vcpu = Vcpu.create (Machine.core machine 0) in
  let pt = Page_table.create alloc in
  let f1 = Frame_alloc.alloc_frame alloc in
  let f2 = Frame_alloc.alloc_frame alloc in
  Page_table.map pt ~mem ~alloc ~va:0x400000 ~pa:f1 ~flags:Pte.urw;
  Page_table.map pt ~mem ~alloc ~va:0x401000 ~pa:f2 ~flags:Pte.urw;
  vcpu.Vcpu.cr3 <- Page_table.root_pa pt;
  Vcpu.set_mode vcpu Vcpu.User;
  let data = Bytes.of_string (String.init 6000 (fun i -> Char.chr (i land 0xff))) in
  (* Write spans the two pages. *)
  Translate.write_bytes vcpu mem ~va:0x400100 data;
  let back = Translate.read_bytes vcpu mem ~va:0x400100 ~len:6000 in
  Alcotest.(check bool) "guest rw roundtrip across pages" true (Bytes.equal data back)

let test_cr3_write_flushes_without_pcid () =
  let machine, mem, alloc = setup () in
  let vcpu = Vcpu.create ~pcid_enabled:false (Machine.core machine 0) in
  let pt = Page_table.create alloc in
  let f = Frame_alloc.alloc_frame alloc in
  Page_table.map pt ~mem ~alloc ~va:0x400000 ~pa:f ~flags:Pte.urw;
  Vcpu.write_cr3 vcpu ~cr3:(Page_table.root_pa pt) ~pcid:1;
  Vcpu.set_mode vcpu Vcpu.User;
  ignore (Translate.translate vcpu mem Translate.data_read ~va:0x400000);
  Vcpu.write_cr3 vcpu ~cr3:(Page_table.root_pa pt) ~pcid:1;
  let cpu = Vcpu.cpu vcpu in
  Tlb.reset_stats (Cpu.dtlb cpu);
  ignore (Translate.translate vcpu mem Translate.data_read ~va:0x400000);
  Alcotest.(check int) "miss after flush" 1 (Tlb.misses (Cpu.dtlb cpu))

let test_cr3_write_keeps_tlb_with_pcid () =
  let machine, mem, alloc = setup () in
  let vcpu = Vcpu.create ~pcid_enabled:true (Machine.core machine 0) in
  let pt = Page_table.create alloc in
  let f = Frame_alloc.alloc_frame alloc in
  Page_table.map pt ~mem ~alloc ~va:0x400000 ~pa:f ~flags:Pte.urw;
  Vcpu.write_cr3 vcpu ~cr3:(Page_table.root_pa pt) ~pcid:1;
  Vcpu.set_mode vcpu Vcpu.User;
  ignore (Translate.translate vcpu mem Translate.data_read ~va:0x400000);
  Vcpu.write_cr3 vcpu ~cr3:(Page_table.root_pa pt) ~pcid:1;
  let cpu = Vcpu.cpu vcpu in
  Tlb.reset_stats (Cpu.dtlb cpu);
  ignore (Translate.translate vcpu mem Translate.data_read ~va:0x400000);
  Alcotest.(check int) "hit preserved with PCID" 1 (Tlb.hits (Cpu.dtlb cpu))

let test_nested_walk_access_count () =
  (* §4.1: a nested TLB miss costs up to 24 memory accesses with 4 KiB
     EPT pages; with the Rootkernel's 1 GiB base EPT the guest walk is
     4 x (2 EPT reads + 1 PT read) + 2 EPT reads for the final page =
     14 accesses. *)
  let _, mem, vcpu, va, _, _ = fig6_setup () in
  let cpu = Vcpu.cpu vcpu in
  let fp0 = Cpu.footprint cpu in
  let before = Cache.hits (Cpu.l1d cpu) + Cache.misses (Cpu.l1d cpu) in
  ignore (fp0 : Cpu.footprint);
  ignore (Translate.translate vcpu mem Translate.data_read ~va);
  let after = Cache.hits (Cpu.l1d cpu) + Cache.misses (Cpu.l1d cpu) in
  Alcotest.(check int) "14 memory accesses for a nested miss" 14 (after - before)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "mmu"
    [
      ( "pte",
        [
          Alcotest.test_case "roundtrip" `Quick test_pte_roundtrip;
          Alcotest.test_case "absent" `Quick test_pte_absent;
        ]
        @ qc [ prop_pte_roundtrip ] );
      ( "page_table",
        [
          Alcotest.test_case "map/walk" `Quick test_pt_map_walk;
          Alcotest.test_case "unmapped faults" `Quick test_pt_unmapped_faults;
          Alcotest.test_case "unmap" `Quick test_pt_unmap;
          Alcotest.test_case "protect" `Quick test_pt_protect;
          Alcotest.test_case "table sharing" `Quick test_pt_distinct_vas_share_tables;
        ]
        @ qc [ prop_pt_map_then_walk ] );
      ( "ept",
        [
          Alcotest.test_case "identity 1G mapping" `Quick test_ept_identity_1g;
          Alcotest.test_case "violation beyond range" `Quick test_ept_violation;
          Alcotest.test_case "clone + CR3 remap = 4 pages" `Quick
            test_ept_clone_cr3_remap_four_pages;
          Alcotest.test_case "unmap injects violation" `Quick
            test_ept_unmap_injects_violation;
        ]
        @ qc [ prop_ept_remaps ] );
      ( "vmfunc_translate",
        [
          Alcotest.test_case "EPTP list management" `Quick test_vmcs_eptp_list;
          Alcotest.test_case "Fig 6: VMFUNC switches address space" `Quick
            test_fig6_vmfunc_switches_address_space;
          Alcotest.test_case "VPID keeps TLB across VMFUNC" `Quick
            test_vmfunc_cost_and_no_flush;
          Alcotest.test_case "no VPID flushes on VMFUNC" `Quick
            test_vmfunc_vpid_disabled_flushes;
          Alcotest.test_case "invalid index VM-exits" `Quick test_vmfunc_invalid_index;
          Alcotest.test_case "user/kernel protection" `Quick
            test_translate_user_kernel_protection;
          Alcotest.test_case "write protection" `Quick test_translate_write_protection;
          Alcotest.test_case "guest rw across pages" `Quick test_translate_guest_rw;
          Alcotest.test_case "CR3 write flushes w/o PCID" `Quick
            test_cr3_write_flushes_without_pcid;
          Alcotest.test_case "CR3 write keeps TLB w/ PCID" `Quick
            test_cr3_write_keeps_tlb_with_pcid;
          Alcotest.test_case "nested walk = 14 accesses (1G EPT)" `Quick
            test_nested_walk_access_count;
        ] );
    ]
