(* skybench: run one (or all) of the paper's tables/figures.

   Usage:
     skybench list
     skybench run table4
     skybench run all
     skybench run fig9 --records 10000 --ops 1000   (paper-scale YCSB) *)

open Cmdliner

let list_cmd =
  let doc = "List available experiments." in
  let run () =
    List.iter
      (fun e ->
        Printf.printf "%-10s %s\n" e.Sky_experiments.Registry.id
          e.Sky_experiments.Registry.title)
      Sky_experiments.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let run_one ~records ~ops id =
  match id with
  | "fig9" | "fig10" | "fig11" when records <> None || ops <> None ->
    let variant =
      match id with
      | "fig9" -> Sky_ukernel.Config.Sel4
      | "fig10" -> Sky_ukernel.Config.Fiasco
      | _ -> Sky_ukernel.Config.Zircon
    in
    Sky_harness.Tbl.print
      (Sky_experiments.Exp_ycsb.run_variant
         ?records ?ops_per_thread:ops variant)
  | _ -> (
    match Sky_experiments.Registry.find id with
    | Some e -> Sky_harness.Tbl.print (e.Sky_experiments.Registry.run ())
    | None ->
      Printf.eprintf "unknown experiment %S; try `skybench list`\n" id;
      exit 1)

let run_cmd =
  let doc = "Run an experiment by id (or `all`)." in
  let id = Arg.(required & pos 0 (some string) None & info [] ~docv:"ID") in
  let records =
    Arg.(value & opt (some int) None & info [ "records" ] ~doc:"YCSB table size")
  in
  let ops =
    Arg.(value & opt (some int) None & info [ "ops" ] ~doc:"YCSB ops per thread")
  in
  let run id records ops =
    if id = "all" then
      List.iter
        (fun e ->
          Sky_harness.Tbl.print (e.Sky_experiments.Registry.run ());
          print_newline ())
        Sky_experiments.Registry.all
    else run_one ~records ~ops id
  in
  Cmd.v (Cmd.info "run" ~doc) Term.(const run $ id $ records $ ops)

let md_cmd =
  let doc = "Render every experiment as a markdown report (for EXPERIMENTS.md)." in
  let run () =
    List.iter
      (fun e ->
        print_string
          (Sky_harness.Tbl.to_markdown (e.Sky_experiments.Registry.run ())))
      Sky_experiments.Registry.all
  in
  Cmd.v (Cmd.info "md" ~doc) Term.(const run $ const ())

let () =
  let doc = "SkyBridge (EuroSys'19) reproduction benchmarks" in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "skybench" ~doc ~version:"1.0")
          [ list_cmd; run_cmd; md_cmd ]))
