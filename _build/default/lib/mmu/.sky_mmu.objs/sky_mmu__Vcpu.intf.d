lib/mmu/vcpu.mli: Sky_sim Vmcs
