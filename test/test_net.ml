(* Tests for the lib/net subsystem: NIC rings + RSS + coalesced IRQs,
   the HTTP-ish codec, the interleaved multi-core run loop, and the
   end-to-end web stack (SkyBridge vs slowpath IPC, determinism, and
   crash-safe worker recovery). *)

open Sky_sim
open Sky_ukernel
open Sky_net
module Fault = Sky_faults.Fault

let with_faults f = Fun.protect ~finally:Fault.disable f

let make ?(cores = 4) () =
  let machine = Machine.create ~cores ~mem_mib:64 () in
  let kernel = Kernel.create machine in
  (kernel, machine)

(* ------------------------------------------------------------------ *)
(* NIC                                                                 *)
(* ------------------------------------------------------------------ *)

let test_nic_roundtrip () =
  let k, _ = make () in
  let nic = Nic.create k ~queues:2 in
  let flow =
    (* find a flow RSS steers to queue 0 *)
    let rec go f = if Nic.queue_of_flow nic f = 0 then f else go (f + 1) in
    go 1
  in
  let payload = Bytes.of_string "GET /kv/hello" in
  Nic.deliver nic ~flow ~seq:0 ~payload ~at:5_000;
  Alcotest.(check int) "queued" 1 (Nic.rx_level nic ~queue:0);
  Alcotest.(check int) "other queue empty" 0 (Nic.rx_level nic ~queue:1);
  (match Nic.rx nic ~queue:0 ~core:0 with
  | None -> Alcotest.fail "expected a packet"
  | Some pkt ->
    Alcotest.(check int) "flow" flow pkt.Nic.flow;
    Alcotest.(check int) "seq" 0 pkt.Nic.seq;
    Alcotest.(check bytes) "payload survives the rings" payload pkt.Nic.payload;
    Alcotest.(check bool) "consumer advanced to delivery time" true
      (Cpu.cycles (Kernel.cpu k ~core:0) >= 5_000));
  Alcotest.(check bool) "drained" true (Nic.rx nic ~queue:0 ~core:0 = None)

let test_nic_rss_spreads () =
  let k, _ = make () in
  let nic = Nic.create k ~queues:4 in
  let counts = Array.make 4 0 in
  for flow = 0 to 1023 do
    let q = Nic.queue_of_flow nic flow in
    counts.(q) <- counts.(q) + 1
  done;
  Array.iteri
    (fun q c ->
      Alcotest.(check bool)
        (Printf.sprintf "queue %d gets a fair share (%d)" q c)
        true
        (c > 150 && c < 360))
    counts

let test_nic_irq_coalescing () =
  let k, _ = make () in
  let nic = Nic.create k ~queues:1 in
  for seq = 0 to 2 do
    Nic.deliver nic ~flow:1 ~seq ~payload:(Bytes.of_string "x") ~at:0
  done;
  Alcotest.(check int) "burst into empty ring raises one IRQ" 1
    (Nic.irqs_raised nic ~queue:0);
  while Nic.rx nic ~queue:0 ~core:0 <> None do () done;
  Nic.deliver nic ~flow:1 ~seq:3 ~payload:(Bytes.of_string "y") ~at:0;
  Alcotest.(check int) "empty->non-empty edge raises again" 2
    (Nic.irqs_raised nic ~queue:0)

let test_nic_ring_full_drops () =
  let k, _ = make () in
  let nic = Nic.create k ~queues:1 in
  for seq = 0 to Nic.ring_entries + 4 do
    Nic.deliver nic ~flow:1 ~seq ~payload:(Bytes.of_string "x") ~at:0
  done;
  Alcotest.(check int) "overflow counted, not raised" 5 (Nic.dropped nic);
  Alcotest.(check int) "ring holds capacity" Nic.ring_entries
    (Nic.rx_level nic ~queue:0)

(* ------------------------------------------------------------------ *)
(* HTTP codec                                                          *)
(* ------------------------------------------------------------------ *)

let test_http_roundtrip () =
  let reqs =
    [
      Http.Kv_get "alpha";
      Http.Kv_put ("k1", Bytes.of_string "some value with spaces");
      Http.Fs_get "web0.html";
    ]
  in
  List.iter
    (fun r ->
      Alcotest.(check bool) "request roundtrips" true
        (Http.parse_request (Http.serialize_request r) = r))
    reqs;
  let resp = Http.ok (Bytes.of_string "body bytes") in
  let back = Http.parse_response (Http.serialize_response resp) in
  Alcotest.(check int) "status" 200 back.Http.status;
  Alcotest.(check bytes) "body" resp.Http.body back.Http.body;
  List.iter
    (fun junk ->
      try
        ignore (Http.parse_request (Bytes.of_string junk));
        Alcotest.fail ("accepted junk: " ^ junk)
      with Http.Bad_request _ -> ())
    [ "DELETE /kv/x"; "GET /kv/"; "PUT /kv/nokey"; "" ]

(* ------------------------------------------------------------------ *)
(* Interleaved run loop                                                *)
(* ------------------------------------------------------------------ *)

let test_interleave_orders_by_virtual_time () =
  let machine = Machine.create ~cores:2 ~mem_mib:16 () in
  let order = ref [] in
  let left = [| 3; 3 |] in
  Machine.interleave machine ~cores:[ 0; 1 ] ~step:(fun ~core ->
      if left.(core) = 0 then Machine.Done
      else begin
        left.(core) <- left.(core) - 1;
        order := core :: !order;
        (* core 0 is slow: it should run once per two core-1 steps *)
        Cpu.charge (Machine.core machine core) (if core = 0 then 1000 else 500);
        Machine.Progress
      end);
  Alcotest.(check (list int)) "behind core always runs first"
    [ 0; 1; 0; 1; 1; 0 ]
    (List.rev (List.filteri (fun i _ -> i < 6) (List.rev !order)))

let test_interleave_stuck () =
  let machine = Machine.create ~cores:2 ~mem_mib:16 () in
  try
    Machine.interleave machine ~cores:[ 0; 1 ] ~step:(fun ~core:_ -> Machine.Idle);
    Alcotest.fail "expected Stuck"
  with Machine.Stuck _ -> ()

(* ------------------------------------------------------------------ *)
(* End-to-end web stack                                                *)
(* ------------------------------------------------------------------ *)

let small ?(seed = 7) ?(workers = 2) transport =
  Web.build ~seed ~cores:4 ~conns:8 ~requests_per_conn:3 ~workers ~transport ()

let test_web_smoke () =
  let t = small Web.Skybridge in
  Web.run t;
  let lg = Web.loadgen t in
  Alcotest.(check int) "every request answered" (Loadgen.expected lg)
    (Loadgen.responses lg);
  Alcotest.(check int) "no validation errors" 0 (Loadgen.errors lg);
  Alcotest.(check int) "httpd served them" (Loadgen.expected lg)
    (Httpd.served (Web.httpd t));
  Alcotest.(check bool) "positive throughput" true (Web.throughput t > 0.0);
  (match Web.subkernel t with
  | None -> Alcotest.fail "skybridge stack has a subkernel"
  | Some sb -> Alcotest.(check int) "clean audit" 0
      (List.length (Sky_core.Subkernel.audit sb)));
  (* both workers actually served traffic *)
  Alcotest.(check bool) "worker 0 busy" true (Httpd.worker_served (Web.httpd t) 0 > 0);
  Alcotest.(check bool) "worker 1 busy" true (Httpd.worker_served (Web.httpd t) 1 > 0)

let test_web_slowpath_and_gap () =
  let sky = small Web.Skybridge in
  Web.run sky;
  let ipc = small Web.Ipc_slowpath in
  Web.run ipc;
  Alcotest.(check int) "slowpath answers everything too"
    (Loadgen.expected (Web.loadgen ipc))
    (Loadgen.responses (Web.loadgen ipc));
  Alcotest.(check int) "slowpath validation clean" 0 (Loadgen.errors (Web.loadgen ipc));
  Alcotest.(check bool)
    (Printf.sprintf "SkyBridge beats slowpath IPC (%.0f vs %.0f req/s)"
       (Web.throughput sky) (Web.throughput ipc))
    true
    (Web.throughput sky > Web.throughput ipc)

let test_web_deterministic () =
  let run () =
    let t = small ~seed:11 Web.Skybridge in
    Web.run t;
    let h = Loadgen.latencies (Web.loadgen t) in
    ( Web.elapsed t,
      Loadgen.responses (Web.loadgen t),
      Sky_trace.Histogram.p50 h,
      Sky_trace.Histogram.p99 h,
      Sky_trace.Histogram.max_value h )
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "same seed, bit-identical run" true (a = b)

let test_web_worker_crash_recovery () =
  with_faults @@ fun () ->
  Fault.reset ~seed:3 ();
  Fault.arm ~budget:2 ~site:Httpd.fault_site ~kind:Fault.Crash (Fault.At_hit 4);
  let t = small Web.Skybridge in
  Web.run t;
  let lg = Web.loadgen t in
  Alcotest.(check bool) "workers crashed" true (Httpd.restarts (Web.httpd t) >= 1);
  Alcotest.(check int) "zero lost requests" (Loadgen.expected lg)
    (Loadgen.responses lg);
  Alcotest.(check int) "zero corrupt responses" 0 (Loadgen.errors lg);
  match Web.subkernel t with
  | None -> ()
  | Some sb ->
    Alcotest.(check int) "audit still clean after revoke/rebind" 0
      (List.length (Sky_core.Subkernel.audit sb))

(* A request denied by EVERY receiver must terminate as a counted 403,
   not cycle around the endpoint forever. Revoking the kv:// service
   kills every worker's capability at once; the static files stay
   servable from the worker caches, so the run must finish with exactly
   the KV share of the mix as unservable errors. *)
let test_denied_by_all_terminates () =
  let t = small Web.Skybridge in
  (match Web.mesh t with
  | None -> Alcotest.fail "skybridge stack has a mesh"
  | Some mesh -> ignore (Sky_mesh.Mesh.revoke_service mesh ~core:0 "kv://"));
  Web.run t;
  let lg = Web.loadgen t in
  Alcotest.(check int) "every request answered (served or 403)"
    (Loadgen.expected lg) (Loadgen.responses lg);
  Alcotest.(check bool) "unservable requests counted" true
    (Httpd.unservable (Web.httpd t) > 0);
  Alcotest.(check bool) "denials bounced before terminating" true
    (Httpd.denials (Web.httpd t) > 0);
  Alcotest.(check int) "load generator saw them as errors"
    (Httpd.unservable (Web.httpd t))
    (Loadgen.errors lg)

(* ------------------------------------------------------------------ *)
(* Open-loop generator + admission control                             *)
(* ------------------------------------------------------------------ *)

let accounted ol =
  Openloop.offered ol
  = Openloop.ok ol + Openloop.shed ol + Openloop.shed_wire ol
    + Openloop.unservable ol + Openloop.corrupt ol

let test_openloop_accounting () =
  (* Moderate load: everything served, nothing shed, invariant holds. *)
  let o =
    Web.build_open ~seed:5 ~tenants:8 ~mean_gap:4000 ~total:160 ~workers:2
      ~transport:Web.Skybridge ()
  in
  Web.run_open o;
  let ol = o.Web.o_ol in
  Alcotest.(check bool) "finished" true (Openloop.finished ol);
  Alcotest.(check int) "all offered" 160 (Openloop.offered ol);
  Alcotest.(check bool) "accounting invariant" true (accounted ol);
  Alcotest.(check int) "zero errors at moderate load" 0 (Openloop.errors ol);
  Alcotest.(check int) "all goodput" 160 (Openloop.ok ol);
  Alcotest.(check bool) "connections churned" true (Openloop.churns ol > 0)

let test_openloop_deterministic () =
  let run () =
    let o =
      Web.build_open ~seed:13 ~tenants:10 ~mean_gap:900 ~total:250 ~workers:2
        ~admission:
          { Httpd.a_queue_cap = Some 4; a_default_ttl = None; a_batch_max = 3 }
        ~transport:Web.Skybridge ()
    in
    Web.run_open o;
    let ol = o.Web.o_ol in
    let h = Openloop.latencies ol in
    ( Openloop.ok ol,
      Openloop.shed ol,
      Openloop.churns ol,
      Sky_trace.Histogram.p50 h,
      Sky_trace.Histogram.p99 h,
      o.Web.o_elapsed )
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "same seed, bit-identical run" true (a = b)

let test_admission_queue_cap_sheds () =
  (* Far past saturation with a tiny queue bound: overflow sheds as
     typed 503s at demux, and nothing is lost or corrupted. *)
  let o =
    Web.build_open ~seed:9 ~tenants:16 ~mean_gap:250 ~total:400 ~workers:2
      ~admission:
        { Httpd.a_queue_cap = Some 2; a_default_ttl = None; a_batch_max = 1 }
      ~transport:Web.Skybridge ()
  in
  Web.run_open o;
  let ol = o.Web.o_ol in
  Alcotest.(check bool) "accounting invariant" true (accounted ol);
  Alcotest.(check bool) "queue-full sheds happened" true
    (Httpd.shed_queue o.Web.o_httpd > 0);
  Alcotest.(check int) "client saw every shed as a 503"
    (Httpd.shed o.Web.o_httpd + Openloop.shed_wire ol)
    (Openloop.shed ol + Openloop.shed_wire ol);
  Alcotest.(check int) "zero corrupt" 0 (Openloop.corrupt ol);
  Alcotest.(check int) "zero unservable" 0 (Openloop.unservable ol)

let test_admission_deadline_sheds () =
  (* A TTL so tight the queue can never be worked off: expired requests
     are shed, admitted ones still validate. *)
  let o =
    Web.build_open ~seed:21 ~tenants:12 ~mean_gap:400 ~total:300 ~workers:2
      ~admission:
        { Httpd.a_queue_cap = None; a_default_ttl = None; a_batch_max = 1 }
      ~ttl:9_000 ~transport:Web.Skybridge ()
  in
  Web.run_open o;
  let ol = o.Web.o_ol in
  Alcotest.(check bool) "accounting invariant" true (accounted ol);
  Alcotest.(check bool) "deadline sheds happened" true
    (Httpd.shed_expired o.Web.o_httpd > 0);
  Alcotest.(check int) "zero corrupt" 0 (Openloop.corrupt ol);
  Alcotest.(check bool) "some goodput survived" true (Openloop.ok ol > 0)

let test_batching_amortizes () =
  (* Deep queues + batch_max > 1: workers drain several requests per
     quantum and carry their KV ops in one backend crossing. *)
  let o =
    Web.build_open ~seed:17 ~tenants:16 ~mean_gap:400 ~total:400 ~workers:2
      ~admission:
        { Httpd.a_queue_cap = Some 8; a_default_ttl = None; a_batch_max = 4 }
      ~transport:Web.Skybridge ()
  in
  Web.run_open o;
  let ol = o.Web.o_ol in
  let httpd = o.Web.o_httpd in
  Alcotest.(check bool) "batched crossings happened" true (Httpd.batches httpd > 0);
  Alcotest.(check bool) "each batch carries >= 2 ops" true
    (Httpd.batched_ops httpd >= 2 * Httpd.batches httpd);
  Alcotest.(check bool) "accounting invariant" true (accounted ol);
  Alcotest.(check int) "zero errors: batched replies validate" 0
    (Openloop.errors ol)

let test_openloop_worker_crash_zero_lost () =
  (* The chaos interlock: a worker crash mid-overload parks the live
     batch and replays it — every admitted request still resolves. *)
  with_faults @@ fun () ->
  Fault.reset ~seed:3 ();
  Fault.arm ~budget:2 ~site:Httpd.fault_site ~kind:Fault.Crash (Fault.At_hit 5);
  let o =
    Web.build_open ~seed:29 ~tenants:10 ~mean_gap:1200 ~total:200 ~workers:2
      ~admission:
        { Httpd.a_queue_cap = Some 16; a_default_ttl = None; a_batch_max = 3 }
      ~transport:Web.Skybridge ()
  in
  Web.run_open o;
  let ol = o.Web.o_ol in
  Alcotest.(check bool) "workers crashed" true (Httpd.restarts o.Web.o_httpd >= 1);
  Alcotest.(check bool) "accounting invariant" true (accounted ol);
  Alcotest.(check int) "zero corrupt under crash replay" 0 (Openloop.corrupt ol)

let () =
  Alcotest.run "net"
    [
      ( "nic",
        [
          Alcotest.test_case "roundtrip" `Quick test_nic_roundtrip;
          Alcotest.test_case "rss-spreads" `Quick test_nic_rss_spreads;
          Alcotest.test_case "irq-coalescing" `Quick test_nic_irq_coalescing;
          Alcotest.test_case "ring-full-drops" `Quick test_nic_ring_full_drops;
        ] );
      ("http", [ Alcotest.test_case "codec" `Quick test_http_roundtrip ]);
      ( "interleave",
        [
          Alcotest.test_case "virtual-time-order" `Quick
            test_interleave_orders_by_virtual_time;
          Alcotest.test_case "stuck-detection" `Quick test_interleave_stuck;
        ] );
      ( "web",
        [
          Alcotest.test_case "smoke" `Quick test_web_smoke;
          Alcotest.test_case "skybridge-vs-slowpath" `Quick test_web_slowpath_and_gap;
          Alcotest.test_case "deterministic" `Quick test_web_deterministic;
          Alcotest.test_case "worker-crash-recovery" `Quick
            test_web_worker_crash_recovery;
          Alcotest.test_case "denied-by-all-terminates" `Quick
            test_denied_by_all_terminates;
        ] );
      ( "overload",
        [
          Alcotest.test_case "openloop-accounting" `Quick
            test_openloop_accounting;
          Alcotest.test_case "openloop-deterministic" `Quick
            test_openloop_deterministic;
          Alcotest.test_case "queue-cap-sheds" `Quick
            test_admission_queue_cap_sheds;
          Alcotest.test_case "deadline-sheds" `Quick
            test_admission_deadline_sheds;
          Alcotest.test_case "batching-amortizes" `Quick test_batching_amortizes;
          Alcotest.test_case "crash-zero-lost" `Quick
            test_openloop_worker_crash_zero_lost;
        ] );
    ]
