(* Integration tests over the experiment harness: each paper table/figure
   must reproduce its qualitative claims, run-to-run deterministically.
   These are the executable versions of the "shape targets" documented in
   EXPERIMENTS.md. *)

open Sky_experiments
open Sky_ukernel

let cell tbl ~row ~col =
  let t = tbl in
  match List.nth_opt t.Sky_harness.Tbl.rows row with
  | Some r -> List.nth r col
  | None -> Alcotest.failf "no row %d" row

(* Parse "paper/ours" cells and comma-grouped ints. *)
let ours_of s =
  let s = match String.index_opt s '/' with
    | Some i -> String.sub s (i + 1) (String.length s - i - 1)
    | None -> s
  in
  let b = Buffer.create 8 in
  String.iter (fun c -> if c <> ',' then Buffer.add_char b c) s;
  float_of_string (Buffer.contents b)

(* ------------------------------------------------------------------ *)
(* Figure 7                                                            *)
(* ------------------------------------------------------------------ *)

let fig7 = lazy (Exp_fig7.run ())

let test_fig7_skybridge_396 () =
  let t = Lazy.force fig7 in
  (* Rows 0-2 are the three SkyBridge bars. *)
  for row = 0 to 2 do
    let ours = ours_of (cell t ~row ~col:2) in
    Alcotest.(check bool)
      (Printf.sprintf "skybridge row %d in [396, 410]" row)
      true
      (ours >= 396.0 && ours <= 410.0)
  done

let test_fig7_within_2pct_of_paper () =
  let t = Lazy.force fig7 in
  List.iteri
    (fun _row r ->
      let paper = ours_of (List.nth r 1) and ours = ours_of (List.nth r 2) in
      let err = abs_float (ours -. paper) /. paper in
      Alcotest.(check bool)
        (Printf.sprintf "%s: |%.0f - %.0f| / paper < 2%%" (List.nth r 0) ours paper)
        true (err < 0.02))
    t.Sky_harness.Tbl.rows

let test_fig7_ordering () =
  let t = Lazy.force fig7 in
  let v row = ours_of (cell t ~row ~col:2) in
  (* sky < sel4 fast < fiasco fast < sel4 cross < fiasco cross *)
  Alcotest.(check bool) "sky < sel4 fastpath" true (v 0 < v 3);
  Alcotest.(check bool) "sel4 fast < fiasco fast" true (v 3 < v 5);
  Alcotest.(check bool) "fiasco fast < zircon" true (v 5 < v 7);
  Alcotest.(check bool) "zircon single < zircon cross" true (v 7 < v 8)

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)
(* ------------------------------------------------------------------ *)

let test_table1_pollution () =
  let t = Exp_kv.run_table1 () in
  let v ~row ~col = ours_of (cell t ~row ~col) in
  (* Baseline ~ Delay on every structure. *)
  for col = 1 to 6 do
    let b = v ~row:0 ~col and d = v ~row:1 ~col in
    Alcotest.(check bool) "baseline ~ delay" true (abs_float (b -. d) <= 0.1 *. (b +. 1.))
  done;
  (* IPC pollutes d-cache and d-TLB. *)
  Alcotest.(check bool) "d-cache pollution" true (v ~row:2 ~col:2 > 1.3 *. v ~row:0 ~col:2);
  Alcotest.(check bool) "d-TLB pollution" true (v ~row:2 ~col:6 > 100.0);
  Alcotest.(check bool) "baseline d-TLB quiet" true (v ~row:0 ~col:6 < 10.0)

(* ------------------------------------------------------------------ *)
(* Figure 8                                                            *)
(* ------------------------------------------------------------------ *)

let test_fig8_ladder () =
  let t = Exp_kv.run_fig8 () in
  List.iteri
    (fun row r ->
      let base = ours_of (List.nth r 1) in
      let delay = ours_of (List.nth r 2) in
      let ipc = ours_of (List.nth r 3) in
      let cross = ours_of (List.nth r 4) in
      let sky = ours_of (List.nth r 5) in
      let m = Printf.sprintf "row %d" row in
      Alcotest.(check bool) (m ^ " base<delay") true (base < delay);
      Alcotest.(check bool) (m ^ " base<sky") true (base < sky);
      Alcotest.(check bool) (m ^ " sky<ipc") true (sky < ipc);
      Alcotest.(check bool) (m ^ " ipc<cross") true (ipc < cross))
    t.Sky_harness.Tbl.rows

let test_fig8_within_35pct () =
  let t = Exp_kv.run_fig8 () in
  List.iter
    (fun r ->
      List.iteri
        (fun col cellv ->
          if col > 0 then begin
            let paper = float_of_string (List.hd (String.split_on_char '/' cellv)) in
            let ours = ours_of cellv in
            let err = abs_float (ours -. paper) /. paper in
            Alcotest.(check bool)
              (Printf.sprintf "%s vs paper %.0f: %.0f%%" cellv paper (err *. 100.))
              true (err < 0.35)
          end)
        r)
    t.Sky_harness.Tbl.rows

(* ------------------------------------------------------------------ *)
(* Table 4                                                             *)
(* ------------------------------------------------------------------ *)

let table4 = lazy (Exp_table4.run ())

let test_table4_skybridge_wins_writes () =
  let t = Lazy.force table4 in
  List.iter
    (fun r ->
      let label = List.nth r 0 in
      let st = ours_of (List.nth r 1) in
      let mt = ours_of (List.nth r 2) in
      let sky = ours_of (List.nth r 3) in
      Alcotest.(check bool) (label ^ ": st <= mt") true (st <= mt *. 1.01);
      Alcotest.(check bool) (label ^ ": mt < sky") true (mt < sky))
    t.Sky_harness.Tbl.rows

let test_table4_query_gains_least () =
  let t = Lazy.force table4 in
  (* Per kernel (4 consecutive rows), the Query row's sky/mt ratio must be
     the smallest. *)
  let ratio r = ours_of (List.nth r 3) /. ours_of (List.nth r 2) in
  List.iteri
    (fun k rows_start ->
      ignore k;
      let rows =
        List.filteri
          (fun i _ -> i >= rows_start && i < rows_start + 4)
          t.Sky_harness.Tbl.rows
      in
      match rows with
      | [ ins; upd; qry; del ] ->
        Alcotest.(check bool) "query < insert gain" true (ratio qry < ratio ins);
        Alcotest.(check bool) "query < update gain" true (ratio qry < ratio upd);
        Alcotest.(check bool) "query < delete gain" true (ratio qry < ratio del)
      | _ -> Alcotest.fail "expected 4 rows per kernel")
    [ 0; 4; 8 ]

let test_table4_zircon_gains_most () =
  let t = Lazy.force table4 in
  let gain row = ours_of (cell t ~row ~col:3) /. ours_of (cell t ~row ~col:2) in
  (* Insert rows: seL4 = 0, Fiasco = 4, Zircon = 8. *)
  Alcotest.(check bool) "zircon > fiasco insert gain" true (gain 8 > gain 4);
  Alcotest.(check bool) "fiasco > sel4 insert gain" true (gain 4 > gain 0)

(* ------------------------------------------------------------------ *)
(* Figures 9–11                                                        *)
(* ------------------------------------------------------------------ *)

let test_ycsb_shape () =
  let t = Exp_ycsb.run_variant ~records:400 ~ops_per_thread:30 Config.Sel4 in
  let series row = List.map ours_of (List.tl (List.nth t.Sky_harness.Tbl.rows row)) in
  let st = series 0 and mt = series 1 and sky = series 2 in
  (* SkyBridge on top at 1 and 2 threads. *)
  Alcotest.(check bool) "sky > mt @1" true (List.nth sky 0 > List.nth mt 0);
  Alcotest.(check bool) "mt > st @1" true (List.nth mt 0 > List.nth st 0);
  Alcotest.(check bool) "sky > mt @2" true (List.nth sky 1 > List.nth mt 1);
  (* Collapse: 8-thread throughput far below 1-thread on every series. *)
  List.iter
    (fun s ->
      Alcotest.(check bool) "falls with threads" true
        (List.nth s 3 < 0.6 *. List.nth s 0))
    [ st; mt; sky ]

(* ------------------------------------------------------------------ *)
(* Table 5                                                             *)
(* ------------------------------------------------------------------ *)

let test_table5_zero_exits_low_overhead () =
  let t = Exp_table5.run () in
  List.iter
    (fun r ->
      let overhead = float_of_string (Filename.chop_suffix (List.nth r 3) "%") in
      let exits = int_of_float (ours_of (List.nth r 4)) in
      Alcotest.(check int) "zero VM exits" 0 exits;
      Alcotest.(check bool)
        (Printf.sprintf "overhead %.2f%% < 4%%" overhead)
        true
        (abs_float overhead < 4.0))
    t.Sky_harness.Tbl.rows

(* ------------------------------------------------------------------ *)
(* Table 6                                                             *)
(* ------------------------------------------------------------------ *)

let test_table6_exactly_one_hit () =
  let t = Exp_table6.run ~scale:512 () in
  let total =
    List.fold_left (fun acc r -> acc + int_of_float (ours_of (List.nth r 4))) 0
      t.Sky_harness.Tbl.rows
  in
  Alcotest.(check int) "one inadvertent VMFUNC in the whole corpus" 1 total

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let test_ablation_directions () =
  let t = Exp_ablation.run () in
  let chosen row = ours_of (cell t ~row ~col:1) in
  let alt row = ours_of (cell t ~row ~col:2) in
  (* Every chosen design must beat its alternative (fewer accesses/cycles;
     for pages, fewer pages). *)
  for row = 0 to 5 do
    Alcotest.(check bool)
      (Printf.sprintf "row %d: chosen (%.0f) <= alternative (%.0f)" row
         (chosen row) (alt row))
      true
      (chosen row <= alt row)
  done;
  (* Specific facts. *)
  Alcotest.(check bool) "nested walk 14 vs 24" true
    (chosen 0 = 14.0 && alt 0 = 24.0);
  Alcotest.(check bool) "shallow copy is 4 pages" true (chosen 4 = 4.0)

(* ------------------------------------------------------------------ *)
(* Determinism                                                         *)
(* ------------------------------------------------------------------ *)

let test_experiments_deterministic () =
  let render e = Sky_harness.Tbl.render (e.Registry.run ()) in
  List.iter
    (fun id ->
      match Registry.find id with
      | Some e -> Alcotest.(check string) (id ^ " deterministic") (render e) (render e)
      | None -> Alcotest.failf "missing experiment %s" id)
    [ "fig7"; "table2"; "table6" ]

(* The overload scenario's acceptance gates on a test-sized config:
   accounting holds with zero lost/corrupt, admission sheds at 2x,
   goodput survives, the storm is survived cleanly, and the tenant
   fleet drives both eviction paths. *)
let test_overload_gates () =
  let r =
    Exp_overload.run_overload ~workers:2 ~tenants:12 ~total:400
      ~scale_tenants:80 ()
  in
  Alcotest.(check bool) "zero lost/corrupt" true (Exp_overload.zero_lost r);
  Alcotest.(check bool) "sheds under 2x overload" true
    (Exp_overload.overload_sheds r);
  Alcotest.(check bool) "goodput holds at 2x" true
    (Exp_overload.goodput_ratio r >= 0.5);
  Alcotest.(check bool) "chaos injected and survived" true
    (Exp_overload.chaos_active r);
  Alcotest.(check bool) "audits + fsck clean after storm" true
    (Exp_overload.chaos_clean r);
  Alcotest.(check bool) "tenant fleet evicted to slowpath" true
    (Exp_overload.tenants_evicted r)

let test_registry_complete () =
  (* One entry per paper table/figure + the ablation. *)
  let expected =
    [ "table1"; "table2"; "fig2"; "fig7"; "fig8"; "table4"; "fig9"; "fig10";
      "fig11"; "table5"; "table6"; "gadgets"; "ablation"; "monolithic";
      "tempmap"; "scheduling"; "chaos"; "web"; "mesh"; "ycsbmix"; "pingpong";
      "overload"; "matrix"; "parallel" ]
  in
  List.iter
    (fun id ->
      Alcotest.(check bool) (id ^ " registered") true (Registry.find id <> None))
    expected;
  Alcotest.(check int) "no stray entries" (List.length expected)
    (List.length Registry.all)

let () =
  Alcotest.run "experiments"
    [
      ( "fig7",
        [
          Alcotest.test_case "skybridge ~396 cycles" `Quick test_fig7_skybridge_396;
          Alcotest.test_case "all bars within 2% of paper" `Quick
            test_fig7_within_2pct_of_paper;
          Alcotest.test_case "ordering" `Quick test_fig7_ordering;
        ] );
      ( "kv",
        [
          Alcotest.test_case "table1 pollution pattern" `Slow test_table1_pollution;
          Alcotest.test_case "fig8 latency ladder" `Slow test_fig8_ladder;
          Alcotest.test_case "fig8 within 35% of paper" `Slow test_fig8_within_35pct;
        ] );
      ( "sqlite",
        [
          Alcotest.test_case "table4: sky > mt > st" `Slow test_table4_skybridge_wins_writes;
          Alcotest.test_case "table4: query gains least" `Slow test_table4_query_gains_least;
          Alcotest.test_case "table4: zircon gains most" `Slow test_table4_zircon_gains_most;
          Alcotest.test_case "ycsb shape (fig9)" `Slow test_ycsb_shape;
        ] );
      ( "virtualization",
        [
          Alcotest.test_case "table5: 0 exits, <4% overhead" `Slow
            test_table5_zero_exits_low_overhead;
          Alcotest.test_case "table6: exactly one hit" `Slow test_table6_exactly_one_hit;
          Alcotest.test_case "ablation directions" `Slow test_ablation_directions;
        ] );
      ( "registry",
        [
          Alcotest.test_case "deterministic" `Slow test_experiments_deterministic;
          Alcotest.test_case "complete" `Quick test_registry_complete;
        ] );
      ( "overload",
        [ Alcotest.test_case "acceptance gates" `Slow test_overload_gates ] );
    ]
