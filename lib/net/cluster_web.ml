(** A cluster of independent web-serving shards under the
    quantum-synchronized scheduler — the workload that buys true host
    parallelism.

    Each shard is a complete machine + skyhttpd + load-generator stack
    built and run inside its own {!Sky_sim.Scopes} bundle, so its
    tracer, fault engine, Accel epoch and hot-line table are private:
    during a quantum, nothing a shard touches is visible to any other
    shard, which is what lets {!Sky_sim.Quantum} advance shards on
    separate OCaml domains. The only cross-shard interaction is the
    boundary {e gossip} commit: after every quantum's barrier the
    cluster-wide served total is computed and recorded into each shard,
    single-threaded, in shard order, at a fixed virtual time — so it is
    bit-identical under [Seq] and [Par].

    {!digest} folds everything observable about a shard's world —
    per-core clocks and PMU vectors, cache footprints, serving counters,
    latency percentiles, fired faults, the trace stream, the gossip log
    — into a canonical string. Equality of digests between a [Seq] and
    a [Par] run (or runs with different quanta) is the determinism gate
    for the whole scheduler. *)

open Sky_sim

type shard = {
  sh_id : int;
  sh_seed : int;
  sh_scope : Scopes.t;
  sh_web : Web.t;
  mutable sh_session : Web.session option;
  mutable sh_gossip : (int * int) list;
      (** (boundary, cluster served total), newest first *)
}

type t = {
  cl_shards : shard array;
  cl_quantum : int;
  mutable cl_quanta : int;
}

let build ?(variant = Sky_ukernel.Config.Sel4) ?(seed = 42)
    ?(quantum = Quantum.default_quantum) ?(conns = 12)
    ?(requests_per_conn = 2) ?prepare ~shards ~workers ~transport () =
  if shards <= 0 then invalid_arg "Cluster_web.build: shards <= 0";
  let mk i =
    (* Distinct per-shard seeds: shards model different machines serving
       different traffic, not replicas. *)
    let sseed = seed + (7919 * i) in
    let scope = Scopes.fresh ~seed:sseed () in
    let web =
      Scopes.enter scope (fun () ->
          let w =
            Web.build ~variant ~seed:sseed ~cores:workers ~conns
              ~requests_per_conn ~workers ~transport ()
          in
          (match prepare with None -> () | Some f -> f ~shard:i);
          w)
    in
    {
      sh_id = i;
      sh_seed = sseed;
      sh_scope = scope;
      sh_web = web;
      sh_session = None;
      sh_gossip = [];
    }
  in
  { cl_shards = Array.init shards mk; cl_quantum = quantum; cl_quanta = 0 }

let n_shards t = Array.length t.cl_shards
let quanta t = t.cl_quanta

let lane sh =
  {
    Quantum.l_name = Printf.sprintf "shard%d" sh.sh_id;
    l_advance =
      (fun ~until ->
        (* Runs on an arbitrary worker domain under [Par]: bind the
           shard's world first, every time. *)
        Scopes.enter sh.sh_scope (fun () ->
            let s =
              match sh.sh_session with
              | Some s -> s
              | None ->
                let s = Web.start_run sh.sh_web in
                sh.sh_session <- Some s;
                s
            in
            Web.advance sh.sh_web s ~until));
  }

(* The boundary gossip: cluster-wide served total, recorded into every
   shard. Runs single-threaded between quanta; shard order and virtual
   time are fixed, so the gossip stream each shard sees is engine-
   independent. *)
let commit t ~boundary =
  t.cl_quanta <- t.cl_quanta + 1;
  let total =
    Array.fold_left
      (fun acc sh -> acc + Loadgen.responses (Web.loadgen sh.sh_web))
      0 t.cl_shards
  in
  Array.iter
    (fun sh ->
      sh.sh_gossip <- (boundary, total) :: sh.sh_gossip;
      Scopes.enter sh.sh_scope (fun () ->
          Sky_trace.Trace.instant ~core:0 ~cat:"cluster"
            (Printf.sprintf "gossip served=%d" total)))
    t.cl_shards

let run t engine =
  Quantum.run ~quantum:t.cl_quantum engine
    ~lanes:(Array.to_list (Array.map lane t.cl_shards))
    ~commit:(fun ~boundary -> commit t ~boundary)
    ()

(* ---- equivalence digest ---- *)

let pmu_events =
  [
    Pmu.Ipi_sent; Pmu.Vm_exit; Pmu.Vmfunc_exec; Pmu.Syscall_exec;
    Pmu.Cr3_write; Pmu.Ipc_roundtrip; Pmu.Instruction; Pmu.Psc_hit;
    Pmu.Psc_miss; Pmu.Ept_walk_cache_hit; Pmu.Ept_walk_cache_miss;
    Pmu.Hot_line_hit; Pmu.Walk_cycles; Pmu.Wrpkru_exec;
  ]

let digest_shard ?(gossip = true) sh =
  Scopes.enter sh.sh_scope @@ fun () ->
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let w = sh.sh_web in
  let m = (Web.kernel w).Sky_ukernel.Kernel.machine in
  add "shard %d seed %d\n" sh.sh_id sh.sh_seed;
  for c = 0 to Machine.n_cores m - 1 do
    let cpu = Machine.core m c in
    add "  core %d cycles=%d fp=%#x pmu=" c (Cpu.cycles cpu)
      (Hashtbl.hash (Cpu.footprint cpu));
    List.iter (fun e -> add "%d," (Pmu.read (Cpu.pmu cpu) e)) pmu_events;
    add "\n"
  done;
  let lg = Web.loadgen w in
  let h = Loadgen.latencies lg in
  let module H = Sky_trace.Histogram in
  add "  served=%d errors=%d elapsed=%d p50=%d p95=%d p99=%d p999=%d\n"
    (Loadgen.responses lg) (Loadgen.errors lg) (Web.elapsed w) (H.p50 h)
    (H.p95 h) (H.p99 h) (H.p999 h);
  List.iter
    (fun (site, n) -> add "  fault %s=%d\n" site n)
    (Sky_faults.Fault.fired_counts ());
  let trace_hash =
    List.fold_left
      (fun acc e -> (acc * 1000003) lxor Hashtbl.hash e)
      0
      (Sky_trace.Trace.events ())
  in
  add "  trace=%#x dropped=%d\n" trace_hash (Sky_trace.Trace.dropped ());
  if gossip then
    List.iter
      (fun (bd, tot) -> add "  gossip@%d=%d\n" bd tot)
      (List.rev sh.sh_gossip);
  Buffer.contents b

let digest ?gossip t =
  String.concat ""
    (Array.to_list (Array.map (digest_shard ?gossip) t.cl_shards))

let served t =
  Array.fold_left
    (fun acc sh -> acc + Loadgen.responses (Web.loadgen sh.sh_web))
    0 t.cl_shards

let errors t =
  Array.fold_left
    (fun acc sh -> acc + Loadgen.errors (Web.loadgen sh.sh_web))
    0 t.cl_shards

let max_cycles t =
  Array.fold_left
    (fun acc sh ->
      max acc (Machine.max_cycles (Web.kernel sh.sh_web).Sky_ukernel.Kernel.machine))
    0 t.cl_shards

let shard_scope t i = t.cl_shards.(i).sh_scope
let shard_web t i = t.cl_shards.(i).sh_web
