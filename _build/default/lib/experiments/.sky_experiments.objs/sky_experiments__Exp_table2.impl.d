lib/experiments/exp_table2.ml: Config Kernel Sky_core Sky_harness Sky_mmu Sky_sim Sky_ukernel Tbl
