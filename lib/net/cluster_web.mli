(** A cluster of independent web-serving shards driven by the
    quantum-synchronized scheduler ({!Sky_sim.Quantum}) — sequentially
    or in parallel on OCaml domains, with bit-identical results.

    Each shard runs a full machine + skyhttpd + load generator inside
    its own {!Sky_sim.Scopes} bundle; cross-shard gossip (cluster-wide
    served totals) happens only in the single-threaded boundary commit.
    {!digest} renders everything observable about the cluster into a
    canonical string; digest equality between engines is the
    determinism gate. *)

type t

val build :
  ?variant:Sky_ukernel.Config.variant ->
  ?seed:int ->
  ?quantum:int ->
  ?conns:int ->
  ?requests_per_conn:int ->
  ?prepare:(shard:int -> unit) ->
  shards:int ->
  workers:int ->
  transport:Web.transport ->
  unit ->
  t
(** Build [shards] independent stacks of [workers] cores each, seeded
    distinctly from [seed]. [prepare] runs once per shard {e inside}
    its scope bundle — the hook for arming per-shard fault storms or
    enabling tracing. *)

val run : t -> Sky_sim.Quantum.engine -> int
(** Drive every shard to completion under the given engine; returns the
    number of quanta executed. *)

val digest : ?gossip:bool -> t -> string
(** Canonical rendering of all shard worlds: per-core clocks, PMU
    vectors, cache footprints, serving counters, latency percentiles,
    fired faults, trace-stream hash, gossip log. Two runs of the same
    cluster configuration are equivalent iff their digests are equal.
    [~gossip:false] omits the gossip log (which intentionally depends
    on the quantum size), for comparisons across different quanta. *)

val n_shards : t -> int
val quanta : t -> int
val served : t -> int
val errors : t -> int

val max_cycles : t -> int
(** Furthest-ahead core clock across all shards — the cluster's virtual
    elapsed time. *)

val shard_scope : t -> int -> Sky_sim.Scopes.t
val shard_web : t -> int -> Web.t
