(** Minimal socket/accept layer over the NIC.

    One listener per server; per-queue connection tables demultiplex RX
    packets by flow id. A flow's first packet ([seq = 0]) doubles as SYN
    and first request (TCP-fast-open style): [service] surfaces it as
    [`Accept], charging the three-way-handshake bookkeeping, then the
    request itself. Packets carry whole requests (the load generator
    never fragments), so there is no reassembly — but ordering is
    enforced: a flow's packets are consumed in sequence order. *)

open Sky_ukernel

let accept_cost = 600 (* socket alloc + handshake bookkeeping *)
let demux_cost = 90 (* flow-table lookup per packet *)

type conn = {
  flow : int;
  queue : int;
  mutable rx_seq : int;  (** next expected request sequence *)
  mutable tx_seq : int;  (** next response sequence *)
  mutable requests : int;
}

type t = {
  kernel : Kernel.t;
  nic : Nic.t;
  conns : (int, conn) Hashtbl.t;  (** flow id -> connection *)
  staged : (int, conn * bytes) Hashtbl.t;
      (** per-queue request embedded in a just-accepted SYN *)
  mutable accepts : int;
}

type event =
  | Accepted of conn
  | Request of conn * bytes

exception Out_of_order of { flow : int; got : int; expected : int }

let create kernel nic =
  { kernel; nic; conns = Hashtbl.create 64; staged = Hashtbl.create 8; accepts = 0 }

let conn_count t = Hashtbl.length t.conns
let accepts t = t.accepts

(* Pop the next RX packet of [queue] and demultiplex it. The [Accepted]
   event precedes the embedded first request: callers get two events for
   a SYN-carrying packet, so the request half is staged per queue. *)
let service t ~queue ~core =
  match Hashtbl.find_opt t.staged queue with
  | Some (c, payload) ->
    Hashtbl.remove t.staged queue;
    Some (Request (c, payload))
  | None -> (
    match Nic.rx t.nic ~queue ~core with
    | None -> None
    | Some pkt ->
      Kernel.user_compute t.kernel ~core ~cycles:demux_cost;
      (match Hashtbl.find_opt t.conns pkt.Nic.flow with
      | None ->
        if pkt.Nic.seq <> 0 then
          raise (Out_of_order { flow = pkt.Nic.flow; got = pkt.Nic.seq; expected = 0 });
        let c = { flow = pkt.Nic.flow; queue; rx_seq = 1; tx_seq = 0; requests = 0 } in
        Hashtbl.add t.conns pkt.Nic.flow c;
        t.accepts <- t.accepts + 1;
        Kernel.user_compute t.kernel ~core ~cycles:accept_cost;
        (* The SYN carries the first request: deliver it on the next
           service pass. *)
        if Bytes.length pkt.Nic.payload > 0 then
          Hashtbl.replace t.staged queue (c, pkt.Nic.payload);
        Some (Accepted c)
      | Some c ->
        if pkt.Nic.seq <> c.rx_seq then
          raise (Out_of_order { flow = pkt.Nic.flow; got = pkt.Nic.seq; expected = c.rx_seq });
        c.rx_seq <- c.rx_seq + 1;
        Some (Request (c, pkt.Nic.payload))))

let reply t c ~core payload =
  c.requests <- c.requests + 1;
  let seq = c.tx_seq in
  c.tx_seq <- seq + 1;
  Nic.tx t.nic ~queue:c.queue ~core ~flow:c.flow ~seq payload
