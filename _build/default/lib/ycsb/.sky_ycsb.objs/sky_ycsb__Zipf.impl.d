lib/ycsb/zipf.ml: Float Sky_sim
