type stmt =
  | Insert of { table : string; key : int; value : string }
  | Select of { table : string; key : int }
  | Update of { table : string; key : int; value : string }
  | Delete of { table : string; key : int }

exception Parse_error of string

type token = Word of string | Int of int | Str of string | Punct of char

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

let is_ident c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

let tokenize s =
  let n = String.length s in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      match s.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1) acc
      | '(' | ')' | ',' | '=' | ';' | '*' -> go (i + 1) (Punct s.[i] :: acc)
      | '\'' ->
        (* string literal with '' escaping *)
        let buf = Buffer.create 16 in
        let rec str j =
          if j >= n then fail "unterminated string literal"
          else if s.[j] = '\'' then
            if j + 1 < n && s.[j + 1] = '\'' then begin
              Buffer.add_char buf '\'';
              str (j + 2)
            end
            else j + 1
          else begin
            Buffer.add_char buf s.[j];
            str (j + 1)
          end
        in
        let next = str (i + 1) in
        go next (Str (Buffer.contents buf) :: acc)
      | c when (c >= '0' && c <= '9') || c = '-' ->
        let j = ref (i + 1) in
        while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do
          incr j
        done;
        let lit = String.sub s i (!j - i) in
        let v = try int_of_string lit with _ -> fail "bad integer %S" lit in
        go !j (Int v :: acc)
      | c when is_ident c ->
        let j = ref i in
        while !j < n && is_ident s.[!j] do
          incr j
        done;
        go !j (Word (String.lowercase_ascii (String.sub s i (!j - i))) :: acc)
      | c -> fail "unexpected character %C" c
  in
  go 0 []

(* Micro parser combinators over the token list. *)
let kw expect = function
  | Word w :: rest when w = expect -> rest
  | t ->
    fail "expected %s%s" (String.uppercase_ascii expect)
      (match t with Word w :: _ -> Printf.sprintf ", got %S" w | _ -> "")

let ident = function
  | Word w :: rest -> (w, rest)
  | _ -> fail "expected identifier"

let int_lit = function
  | Int v :: rest -> (v, rest)
  | _ -> fail "expected integer literal"

let str_lit = function
  | Str v :: rest -> (v, rest)
  | _ -> fail "expected string literal"

let punct c = function
  | Punct p :: rest when p = c -> rest
  | _ -> fail "expected %C" c

let finished = function
  | [] | [ Punct ';' ] -> ()
  | _ -> fail "trailing tokens"

(* WHERE key = <int> *)
let where_clause toks =
  let toks = kw "where" toks in
  let col, toks = ident toks in
  if col <> "key" then fail "only WHERE key = ... is supported";
  let toks = punct '=' toks in
  int_lit toks

let parse s =
  match tokenize s with
  | Word "insert" :: rest ->
    let rest = kw "into" rest in
    let table, rest = ident rest in
    let rest = kw "values" rest in
    let rest = punct '(' rest in
    let key, rest = int_lit rest in
    let rest = punct ',' rest in
    let value, rest = str_lit rest in
    let rest = punct ')' rest in
    finished rest;
    Insert { table; key; value }
  | Word "select" :: rest ->
    let rest =
      match rest with
      | Punct '*' :: r -> r
      | Word "value" :: r -> r
      | _ -> fail "expected * or value after SELECT"
    in
    let rest = kw "from" rest in
    let table, rest = ident rest in
    let key, rest = where_clause rest in
    finished rest;
    Select { table; key }
  | Word "update" :: rest ->
    let table, rest = ident rest in
    let rest = kw "set" rest in
    let col, rest = ident rest in
    if col <> "value" then fail "only SET value = ... is supported";
    let rest = punct '=' rest in
    let value, rest = str_lit rest in
    let key, rest = where_clause rest in
    finished rest;
    Update { table; key; value }
  | Word "delete" :: rest ->
    let rest = kw "from" rest in
    let table, rest = ident rest in
    let key, rest = where_clause rest in
    finished rest;
    Delete { table; key }
  | Word w :: _ -> fail "unknown statement %S" w
  | _ -> fail "empty statement"

type result = Ok_affected of int | Row of string | Empty

let check_table db table =
  if table <> Db.name db then
    fail "no such table %S (this database has %S)" table (Db.name db)

(* The stored value is padded to the column width; strip trailing NULs on
   the way out. *)
let strip_nuls b =
  let s = Bytes.to_string b in
  match String.index_opt s '\000' with
  | Some i -> String.sub s 0 i
  | None -> s

let exec db ~core s =
  match parse s with
  | Insert { table; key; value } ->
    check_table db table;
    Db.insert db ~core ~key ~value:(Bytes.of_string value);
    Ok_affected 1
  | Select { table; key } -> (
    check_table db table;
    match Db.query db ~core ~key with
    | Some v -> Row (strip_nuls v)
    | None -> Empty)
  | Update { table; key; value } ->
    check_table db table;
    Ok_affected (if Db.update db ~core ~key ~value:(Bytes.of_string value) then 1 else 0)
  | Delete { table; key } ->
    check_table db table;
    Ok_affected (if Db.delete db ~core ~key then 1 else 0)
