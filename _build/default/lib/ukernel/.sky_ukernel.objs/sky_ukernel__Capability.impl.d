lib/ukernel/capability.ml: Hashtbl List Option
