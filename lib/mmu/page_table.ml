type fault = Not_present of int | Protection of int

exception Page_fault of fault

type t = { root : int; mutable owned : int list (* table-page PAs *) }

let create alloc =
  let root = Sky_mem.Frame_alloc.alloc_frame alloc in
  { root; owned = [ root ] }

let root_pa t = t.root
let va_index ~level va = (va lsr (12 + (9 * level))) land 0x1ff
let entry_pa table_pa idx = table_pa + (idx * 8)

(* Walk down to the PT level, allocating missing intermediate tables. *)
let rec table_for t ~mem ~alloc ~table_pa ~level ~va =
  if level = 0 then table_pa
  else begin
    let epa = entry_pa table_pa (va_index ~level va) in
    let e = Sky_mem.Phys_mem.read_u64 mem epa in
    let next =
      if Pte.is_present e then fst (Pte.decode e)
      else begin
        let page = Sky_mem.Frame_alloc.alloc_frame alloc in
        t.owned <- page :: t.owned;
        (* Intermediate entries are maximally permissive; the leaf gates. *)
        Sky_mem.Phys_mem.write_u64 mem epa (Pte.encode ~pa:page Pte.urw);
        page
      end
    in
    table_for t ~mem ~alloc ~table_pa:next ~level:(level - 1) ~va
  end

let map t ~mem ~alloc ~va ~pa ~flags =
  if va land 0xfff <> 0 || pa land 0xfff <> 0 then
    invalid_arg "Page_table.map: unaligned";
  let pt = table_for t ~mem ~alloc ~table_pa:t.root ~level:3 ~va in
  let epa = entry_pa pt (va_index ~level:0 va) in
  let old = Sky_mem.Phys_mem.read_u64 mem epa in
  let v = Pte.encode ~pa flags in
  Sky_mem.Phys_mem.write_u64 mem epa v;
  (* Remapping a live leaf invalidates cached translations machine-wide
     (TLBs, PSCs, hot lines): bump the global epoch. Fresh installs
     don't — nothing positive can be cached for an unmapped page. *)
  if Pte.is_present old && old <> v then Sky_sim.Accel.bump ()

let map_range t ~mem ~alloc ~va ~pa ~len ~flags =
  let pages = (len + 4095) / 4096 in
  for i = 0 to pages - 1 do
    map t ~mem ~alloc ~va:(va + (i * 4096)) ~pa:(pa + (i * 4096)) ~flags
  done

let rec find_leaf ~mem ~table_pa ~level ~va =
  let epa = entry_pa table_pa (va_index ~level va) in
  let e = Sky_mem.Phys_mem.read_u64 mem epa in
  if not (Pte.is_present e) then None
  else if level = 0 then Some epa
  else find_leaf ~mem ~table_pa:(fst (Pte.decode e)) ~level:(level - 1) ~va

let unmap t ~mem ~va =
  match find_leaf ~mem ~table_pa:t.root ~level:3 ~va with
  | None -> ()
  | Some epa ->
    Sky_mem.Phys_mem.write_u64 mem epa Pte.zero;
    Sky_sim.Accel.bump ()

let protect t ~mem ~va ~flags =
  match find_leaf ~mem ~table_pa:t.root ~level:3 ~va with
  | None -> raise (Page_fault (Not_present va))
  | Some epa ->
    let old = Sky_mem.Phys_mem.read_u64 mem epa in
    let pa, _ = Pte.decode old in
    let v = Pte.encode ~pa flags in
    Sky_mem.Phys_mem.write_u64 mem epa v;
    if old <> v then Sky_sim.Accel.bump ()

type walk_result = { pa : int; flags : Pte.flags; entries_read : int list }

let walk ~mem ~root_pa ~va =
  let rec go table_pa level acc =
    let epa = entry_pa table_pa (va_index ~level va) in
    let e = Sky_mem.Phys_mem.read_u64 mem epa in
    let acc = epa :: acc in
    if not (Pte.is_present e) then Error (Not_present va)
    else
      let pa, flags = Pte.decode e in
      if level = 0 then
        Ok { pa = pa lor (va land 0xfff); flags; entries_read = List.rev acc }
      else go pa (level - 1) acc
  in
  go root_pa 3 []

let iter_leaves ~mem ~root_pa f =
  let rec go table level va_base =
    for e = 0 to 511 do
      let v = Sky_mem.Phys_mem.read_u64 mem (entry_pa table e) in
      if Pte.is_present v then begin
        let pa, flags = Pte.decode v in
        let va = va_base lor (e lsl (12 + (9 * level))) in
        if level = 0 then f ~va ~pa ~flags
        else go pa (level - 1) va
      end
    done
  in
  go root_pa 3 0

let pages t = List.length t.owned

let destroy t ~alloc =
  List.iter (fun pa -> Sky_mem.Frame_alloc.free_frame alloc pa) t.owned;
  t.owned <- [];
  Sky_sim.Accel.bump ()
