(* Tests for the x86-64 subset: encoder, decoder, interpreter. *)

open Sky_isa

let insn = Alcotest.testable Insn.pp ( = )

let hex s =
  String.concat " "
    (List.init (String.length s) (fun i -> Printf.sprintf "%02x" (Char.code s.[i])))

let check_bytes what expected insn_v =
  let e = Encode.encode insn_v in
  Alcotest.(check string) what expected (hex e.Encode.bytes)

(* ------------------------------------------------------------------ *)
(* Encoder: known encodings                                            *)
(* ------------------------------------------------------------------ *)

let test_encode_simple () =
  check_bytes "nop" "90" Insn.Nop;
  check_bytes "ret" "c3" Insn.Ret;
  check_bytes "syscall" "0f 05" Insn.Syscall;
  check_bytes "vmfunc" "0f 01 d4" Insn.Vmfunc;
  check_bytes "cpuid" "0f a2" Insn.Cpuid;
  check_bytes "push rax" "50" (Insn.Push Reg.Rax);
  check_bytes "push r9" "41 51" (Insn.Push Reg.R9);
  check_bytes "pop rdi" "5f" (Insn.Pop Reg.Rdi)

let test_encode_mov () =
  check_bytes "mov rax, rbx (dst=rax src=rbx)" "48 89 d8" (Insn.Mov_rr (Reg.Rax, Reg.Rbx));
  check_bytes "mov $1, rax" "48 c7 c0 01 00 00 00" (Insn.Mov_ri (Reg.Rax, 1L));
  check_bytes "movabs" "48 b8 88 77 66 55 44 33 22 11"
    (Insn.Mov_ri (Reg.Rax, 0x1122334455667788L))

let test_encode_jmp_call () =
  check_bytes "jmp +0x10" "e9 10 00 00 00" (Insn.Jmp_rel 0x10);
  check_bytes "call -2" "e8 fe ff ff ff" (Insn.Call_rel (-2))

(* The paper's Table 3 shapes: instructions whose encoding embeds
   0F 01 D4. *)
let test_encode_table3_shapes () =
  (* Row 2: imul $0xD401, (rdi), rcx — ModRM = 0x0F. *)
  let e =
    Encode.encode
      (Insn.Imul_rri (Reg.Rcx, Insn.M (Insn.mem ~base:Reg.Rdi ()), 0xD401))
  in
  Alcotest.(check string) "imul ModRM=0F imm=D401"
    "48 69 0f 01 d4 00 00" (hex e.Encode.bytes);
  (* Row 3: lea 0xD401(rdi, rcx, 1), rbx — SIB = 0x0F. *)
  let e =
    Encode.encode
      (Insn.Lea (Reg.Rbx, Insn.mem ~base:Reg.Rdi ~index:(Reg.Rcx, 1) ~disp:0xD401 ()))
  in
  Alcotest.(check string) "lea SIB=0F" "48 8d 9c 0f 01 d4 00 00" (hex e.Encode.bytes);
  (* Row 4: add 0xD4010F(rax), rbx — displacement contains 0F 01 D4. *)
  let e =
    Encode.encode (Insn.Add_rm (Reg.Rbx, Insn.mem ~base:Reg.Rax ~disp:0xD4010F ()))
  in
  Alcotest.(check string) "disp contains pattern" "48 03 98 0f 01 d4 00"
    (hex e.Encode.bytes);
  (* Row 5: add $0xD4010F, rax — immediate contains 0F 01 D4. *)
  let e = Encode.encode (Insn.Add_ri (Reg.Rax, 0xD4010F)) in
  Alcotest.(check string) "imm contains pattern" "48 81 c0 0f 01 d4 00"
    (hex e.Encode.bytes)

let test_layout_fields () =
  let e =
    Encode.encode
      (Insn.Lea (Reg.Rbx, Insn.mem ~base:Reg.Rdi ~index:(Reg.Rcx, 1) ~disp:0xD401 ()))
  in
  let l = e.Encode.layout in
  Alcotest.(check (option int)) "modrm at 2" (Some 2) l.Encode.modrm_off;
  Alcotest.(check (option int)) "sib at 3" (Some 3) l.Encode.sib_off;
  Alcotest.(check (option int)) "disp at 4" (Some 4) l.Encode.disp_off;
  Alcotest.(check int) "disp32" 4 l.Encode.disp_len;
  let e = Encode.encode (Insn.Add_ri (Reg.Rax, 5)) in
  Alcotest.(check (option int)) "imm at 3" (Some 3) (e.Encode.layout.Encode.imm_off)

(* ------------------------------------------------------------------ *)
(* Decoder                                                             *)
(* ------------------------------------------------------------------ *)

let decode_first bytes =
  Decode.decode_one (Bytes.of_string bytes) 0

let test_decode_vmfunc () =
  let d = decode_first "\x0f\x01\xd4" in
  Alcotest.(check (option insn)) "vmfunc" (Some Insn.Vmfunc) d.Decode.insn;
  Alcotest.(check int) "len 3" 3 d.Decode.len

let test_decode_0f01_group_not_vmfunc () =
  (* 0F 01 /0 with a memory ModRM (sgdt) must not decode as vmfunc and
     must consume its ModRM cluster. *)
  let d = decode_first "\x0f\x01\x00" in
  Alcotest.(check (option insn)) "opaque" None d.Decode.insn;
  Alcotest.(check int) "len 3 (opc2 + modrm)" 3 d.Decode.len

let test_decode_unknown_is_one_byte () =
  let d = decode_first "\xf4" (* hlt: not in subset *) in
  Alcotest.(check (option insn)) "opaque" None d.Decode.insn;
  Alcotest.(check int) "len 1" 1 d.Decode.len

let test_decode_all_boundaries () =
  let prog =
    [ Insn.Push Reg.Rbx; Insn.Mov_ri (Reg.Rbx, 7L); Insn.Add_rr (Reg.Rax, Reg.Rbx);
      Insn.Pop Reg.Rbx; Insn.Ret ]
  in
  let code = Encode.encode_all prog in
  let ds = Decode.decode_all code in
  Alcotest.(check int) "five instructions" 5 (List.length ds);
  List.iter2
    (fun expect d ->
      Alcotest.(check (option insn)) "roundtrip" (Some expect) d.Decode.insn)
    prog ds

(* Generator for random (valid) instructions. Avoids RSP/RBP bases going
   through the stack and keeps displacements/immediates in int32. *)
let gen_reg =
  QCheck.Gen.oneofl
    [ Reg.Rax; Reg.Rcx; Reg.Rdx; Reg.Rbx; Reg.Rsi; Reg.Rdi; Reg.R8; Reg.R9;
      Reg.R10; Reg.R11; Reg.R12; Reg.R13; Reg.R14; Reg.R15 ]

let gen_mem =
  let open QCheck.Gen in
  let* base = opt gen_reg in
  let* index =
    opt (pair (oneofl [ Reg.Rax; Reg.Rcx; Reg.Rdx; Reg.Rbx; Reg.Rsi; Reg.Rdi;
                        Reg.R8; Reg.R13 ])
           (oneofl [ 1; 2; 4; 8 ]))
  in
  let* disp = int_range (-0x100000) 0x100000 in
  (* base=None ∧ index=None with nonzero disp is fine; keep as-is. *)
  return { Insn.base; index; disp }

let gen_insn =
  let open QCheck.Gen in
  frequency
    [
      (1, return Insn.Nop);
      (1, return Insn.Ret);
      (1, return Insn.Syscall);
      (1, return Insn.Vmfunc);
      (1, return Insn.Cpuid);
      (2, map (fun r -> Insn.Push r) gen_reg);
      (2, map (fun r -> Insn.Pop r) gen_reg);
      (3, map2 (fun a b -> Insn.Mov_rr (a, b)) gen_reg gen_reg);
      (3, map2 (fun r i -> Insn.Mov_ri (r, Int64.of_int i)) gen_reg (int_range (-0x7fffffff) 0x7fffffff));
      (1, map2 (fun r i -> Insn.Mov_ri (r, i)) gen_reg (map Int64.of_int int));
      (3, map2 (fun r m -> Insn.Mov_load (r, m)) gen_reg gen_mem);
      (3, map2 (fun m r -> Insn.Mov_store (m, r)) gen_mem gen_reg);
      (3, map2 (fun a b -> Insn.Add_rr (a, b)) gen_reg gen_reg);
      (3, map2 (fun r i -> Insn.Add_ri (r, i)) gen_reg (int_range (-0x7fffffff) 0x7fffffff));
      (3, map2 (fun r i -> Insn.Sub_ri (r, i)) gen_reg (int_range (-0x7fffffff) 0x7fffffff));
      (3, map2 (fun r m -> Insn.Add_rm (r, m)) gen_reg gen_mem);
      (3, map2 (fun a b -> Insn.Xor_rr (a, b)) gen_reg gen_reg);
      (2, map3 (fun d s i -> Insn.Imul_rri (d, Insn.R s, i)) gen_reg gen_reg (int_range (-1000) 1000));
      (2, map3 (fun d m i -> Insn.Imul_rri (d, Insn.M m, i)) gen_reg gen_mem (int_range (-1000) 1000));
      (2, map2 (fun d s -> Insn.Imul_rm (d, Insn.R s)) gen_reg gen_reg);
      (2, map2 (fun d m -> Insn.Imul_rm (d, Insn.M m)) gen_reg gen_mem);
      (3, map2 (fun r m -> Insn.Lea (r, m)) gen_reg gen_mem);
      (1, map (fun r -> Insn.Jmp_rel r) (int_range 0 64));
      (1, map (fun r -> Insn.Call_rel r) (int_range 0 64));
      (3, map2 (fun a b -> Insn.And_rr (a, b)) gen_reg gen_reg);
      (3, map2 (fun r i -> Insn.And_ri (r, i)) gen_reg (int_range (-0x7fffffff) 0x7fffffff));
      (3, map2 (fun a b -> Insn.Or_rr (a, b)) gen_reg gen_reg);
      (3, map2 (fun r i -> Insn.Or_ri (r, i)) gen_reg (int_range (-0x7fffffff) 0x7fffffff));
      (3, map2 (fun a b -> Insn.Cmp_rr (a, b)) gen_reg gen_reg);
      (3, map2 (fun r i -> Insn.Cmp_ri (r, i)) gen_reg (int_range (-0x7fffffff) 0x7fffffff));
      (2, map2 (fun a b -> Insn.Test_rr (a, b)) gen_reg gen_reg);
      (2, map2 (fun r i -> Insn.Shl_ri (r, i)) gen_reg (int_range 0 63));
      (2, map2 (fun r i -> Insn.Shr_ri (r, i)) gen_reg (int_range 0 63));
      (1, map (fun r -> Insn.Inc r) gen_reg);
      (1, map (fun r -> Insn.Dec r) gen_reg);
      (1, map (fun r -> Insn.Neg r) gen_reg);
      ( 1,
        map2
          (fun c r -> Insn.Jcc (c, r))
          (oneofl [ Insn.E; Insn.Ne; Insn.L; Insn.Ge; Insn.Le; Insn.G; Insn.B; Insn.Ae ])
          (int_range 0 64) );
    ]

let arb_insn = QCheck.make ~print:Insn.to_string gen_insn

(* Mov_ri decodes to the value the hardware would load; normalize the
   expected side the same way (imm32 forms sign-extend). *)
let normalize = function
  | Insn.Imul_rri (d, rm, i) -> Insn.Imul_rri (d, rm, i)
  | x -> x

let prop_encode_decode_roundtrip =
  QCheck.Test.make ~name:"encode/decode roundtrip" ~count:2000 arb_insn
    (fun i ->
      let e = Encode.encode i in
      let d = Decode.decode_one (Bytes.of_string e.Encode.bytes) 0 in
      d.Decode.len = String.length e.Encode.bytes
      && d.Decode.insn = Some (normalize i))

let prop_decode_layout_matches_encode =
  QCheck.Test.make ~name:"decoder reproduces encoder field layout" ~count:500
    arb_insn (fun i ->
      let e = Encode.encode i in
      let d = Decode.decode_one (Bytes.of_string e.Encode.bytes) 0 in
      let le = e.Encode.layout and ld = d.Decode.layout in
      le.Encode.modrm_off = ld.Encode.modrm_off
      && le.Encode.sib_off = ld.Encode.sib_off
      && le.Encode.disp_off = ld.Encode.disp_off
      && le.Encode.disp_len = ld.Encode.disp_len
      && le.Encode.imm_off = ld.Encode.imm_off
      && le.Encode.imm_len = ld.Encode.imm_len)

let prop_decode_all_partitions =
  QCheck.Test.make ~name:"decode_all partitions the byte stream" ~count:300
    QCheck.(list_of_size (Gen.int_range 1 30) arb_insn)
    (fun prog ->
      let code = Encode.encode_all prog in
      let ds = Decode.decode_all code in
      let total = List.fold_left (fun a d -> a + d.Decode.len) 0 ds in
      total = Bytes.length code
      && List.for_all2
           (fun i d -> d.Decode.insn = Some (normalize i))
           prog ds)

(* ------------------------------------------------------------------ *)
(* Interpreter                                                         *)
(* ------------------------------------------------------------------ *)

let run prog =
  let st = Interp.create () in
  Interp.run st (Encode.encode_all prog);
  st

let test_interp_arith () =
  let st =
    run
      [ Insn.Mov_ri (Reg.Rax, 10L); Insn.Add_ri (Reg.Rax, 32);
        Insn.Mov_rr (Reg.Rbx, Reg.Rax); Insn.Imul_rri (Reg.Rcx, Insn.R Reg.Rbx, 3) ]
  in
  Alcotest.(check int64) "rax" 42L (Interp.get st Reg.Rax);
  Alcotest.(check int64) "rcx" 126L (Interp.get st Reg.Rcx)

let test_interp_stack () =
  let st =
    run
      [ Insn.Mov_ri (Reg.Rax, 7L); Insn.Push Reg.Rax; Insn.Mov_ri (Reg.Rax, 0L);
        Insn.Pop Reg.Rbx ]
  in
  Alcotest.(check int64) "popped" 7L (Interp.get st Reg.Rbx)

let test_interp_mem () =
  let st =
    run
      [ Insn.Mov_ri (Reg.Rdi, 0x1000L); Insn.Mov_ri (Reg.Rax, 99L);
        Insn.Mov_store (Insn.mem ~base:Reg.Rdi ~disp:8 (), Reg.Rax);
        Insn.Mov_load (Reg.Rbx, Insn.mem ~base:Reg.Rdi ~disp:8 ()) ]
  in
  Alcotest.(check int64) "load back" 99L (Interp.get st Reg.Rbx)

let test_interp_jmp () =
  (* jmp over a mov: rax keeps its initial value. *)
  let skip = Encode.length (Insn.Mov_ri (Reg.Rax, 1L)) in
  let st = run [ Insn.Jmp_rel skip; Insn.Mov_ri (Reg.Rax, 1L); Insn.Nop ] in
  Alcotest.(check int64) "mov skipped" 0L (Interp.get st Reg.Rax)

let test_interp_call_ret () =
  (* call the function after the fallthrough block; function sets rbx. *)
  let body = [ Insn.Mov_ri (Reg.Rbx, 5L); Insn.Ret ] in
  let after_call = [ Insn.Mov_ri (Reg.Rcx, 1L); Insn.Jmp_rel 0 ] in
  let after_len =
    List.fold_left (fun a i -> a + Encode.length i) 0 after_call
  in
  let prog = (Insn.Call_rel after_len :: after_call) @ body in
  (* jmp 0 falls through to the body... rework: jump past body to end. *)
  let body_len = List.fold_left (fun a i -> a + Encode.length i) 0 body in
  let prog =
    match prog with
    | c :: rest ->
      c
      :: (List.map
            (function Insn.Jmp_rel 0 -> Insn.Jmp_rel body_len | x -> x)
            rest)
    | [] -> assert false
  in
  let st = run prog in
  Alcotest.(check int64) "function ran" 5L (Interp.get st Reg.Rbx);
  Alcotest.(check int64) "continuation ran" 1L (Interp.get st Reg.Rcx)

let test_interp_cmp_jcc () =
  (* Loop: rcx = 0; do rcx++ while rcx < 5 -> rcx = 5. *)
  let body = [ Insn.Inc Reg.Rcx; Insn.Cmp_ri (Reg.Rcx, 5) ] in
  let body_len = List.fold_left (fun a i -> a + Encode.length i) 0 body in
  let jcc = Insn.Jcc (Insn.L, -(body_len + 6)) in
  let st = run (body @ [ jcc ]) in
  Alcotest.(check int64) "loop ran to 5" 5L (Interp.get st Reg.Rcx)

let test_interp_flags_semantics () =
  let cases =
    [ (Insn.E, 3L, 3, true); (Insn.E, 3L, 4, false);
      (Insn.L, -1L, 1, true); (Insn.L, 2L, 1, false);
      (Insn.B, -1L, 1, false) (* unsigned: -1 is huge *);
      (Insn.G, 7L, 3, true); (Insn.Ae, 0L, 0, true) ]
  in
  List.iter
    (fun (cond, a, b, expect) ->
      (* set rax = a; cmp rax, b; jcc +skip; mov rbx, 1 *)
      let tail = [ Insn.Mov_ri (Reg.Rbx, 1L) ] in
      let skip = List.fold_left (fun acc i -> acc + Encode.length i) 0 tail in
      let st =
        run
          ([ Insn.Mov_ri (Reg.Rax, a); Insn.Cmp_ri (Reg.Rax, b);
             Insn.Jcc (cond, skip) ]
          @ tail)
      in
      (* If the jump was taken, rbx stays 0. *)
      Alcotest.(check int64)
        (Printf.sprintf "j%s after cmp %Ld,%d" (Insn.cond_name cond) a b)
        (if expect then 0L else 1L)
        (Interp.get st Reg.Rbx))
    cases

let test_interp_events () =
  let st = run [ Insn.Vmfunc; Insn.Syscall; Insn.Vmfunc ] in
  Alcotest.(check int) "vmfunc count" 2 (Interp.vmfunc_count st);
  Alcotest.(check (list bool)) "event order"
    [ true; false; true ]
    (List.rev_map (fun e -> e = Interp.Ev_vmfunc) st.Interp.events)

let test_interp_stuck_on_bad_ip () =
  let code = Encode.encode_all [ Insn.Jmp_rel 100 ] in
  let st = Interp.create () in
  try
    Interp.run st code;
    Alcotest.fail "expected Stuck"
  with Interp.Stuck _ -> ()

(* Straight-line programs (no control flow) must leave identical state
   when executed twice from the same start. Sanity for determinism. *)
let gen_straightline =
  QCheck.Gen.(
    list_size (int_range 1 20)
      (gen_insn
      |> map (function
           | Insn.Jmp_rel _ | Insn.Call_rel _ | Insn.Ret | Insn.Jcc _ -> Insn.Nop
           | Insn.Pop r -> Insn.Push r (* keep stack non-underflowing *)
           | x -> x)))

let prop_interp_deterministic =
  QCheck.Test.make ~name:"interpreter deterministic" ~count:300
    (QCheck.make gen_straightline) (fun prog ->
      let code = Encode.encode_all prog in
      let a = Interp.create () and b = Interp.create () in
      (* Point memory operands somewhere harmless. *)
      List.iter
        (fun r -> Interp.set a r 0x2000L; Interp.set b r 0x2000L)
        [ Reg.Rax; Reg.Rcx; Reg.Rdx; Reg.Rbx; Reg.Rsi; Reg.Rdi; Reg.R8; Reg.R9;
          Reg.R10; Reg.R11; Reg.R12; Reg.R13; Reg.R14; Reg.R15 ];
      (try Interp.run a code with Interp.Stuck _ -> ());
      (try Interp.run b code with Interp.Stuck _ -> ());
      Interp.equal_state a b)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "isa"
    [
      ( "encode",
        [
          Alcotest.test_case "simple opcodes" `Quick test_encode_simple;
          Alcotest.test_case "mov forms" `Quick test_encode_mov;
          Alcotest.test_case "jmp/call" `Quick test_encode_jmp_call;
          Alcotest.test_case "Table 3 shapes" `Quick test_encode_table3_shapes;
          Alcotest.test_case "field layout" `Quick test_layout_fields;
        ] );
      ( "decode",
        [
          Alcotest.test_case "vmfunc" `Quick test_decode_vmfunc;
          Alcotest.test_case "0f01 group not vmfunc" `Quick
            test_decode_0f01_group_not_vmfunc;
          Alcotest.test_case "unknown = 1 byte" `Quick test_decode_unknown_is_one_byte;
          Alcotest.test_case "boundary bookkeeping" `Quick test_decode_all_boundaries;
        ]
        @ qc
            [
              prop_encode_decode_roundtrip;
              prop_decode_layout_matches_encode;
              prop_decode_all_partitions;
            ] );
      ( "interp",
        [
          Alcotest.test_case "arithmetic" `Quick test_interp_arith;
          Alcotest.test_case "stack" `Quick test_interp_stack;
          Alcotest.test_case "memory" `Quick test_interp_mem;
          Alcotest.test_case "jmp" `Quick test_interp_jmp;
          Alcotest.test_case "call/ret" `Quick test_interp_call_ret;
          Alcotest.test_case "cmp + jcc loop" `Quick test_interp_cmp_jcc;
          Alcotest.test_case "flag semantics" `Quick test_interp_flags_semantics;
          Alcotest.test_case "events" `Quick test_interp_events;
          Alcotest.test_case "stuck on bad ip" `Quick test_interp_stuck_on_bad_ip;
        ]
        @ qc [ prop_interp_deterministic ] );
    ]
