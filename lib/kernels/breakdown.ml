(** Per-category cycle accounting for an IPC path — the categories of
    Figure 7: VMFUNC, SYSCALL/SYSRET, context switch, IPI, message copy,
    schedule, others. [walk] is a cross-cutting attribution: the cycles
    spent inside TLB refills (nested page walks), read from the PMU's
    walk-cycles accumulator. Those cycles are already contained in the
    measured categories they occurred under (copy, ctx, other), so
    [walk] is excluded from {!total} — it reports how much of the bar
    is translation machinery, not an extra segment. *)

type t = {
  mutable vmfunc : int;
  mutable syscall : int;
  mutable ctx : int;
  mutable ipi : int;
  mutable copy : int;
  mutable sched : int;
  mutable other : int;
  mutable walk : int;
}

let create () =
  { vmfunc = 0; syscall = 0; ctx = 0; ipi = 0; copy = 0; sched = 0; other = 0;
    walk = 0 }

let total t = t.vmfunc + t.syscall + t.ctx + t.ipi + t.copy + t.sched + t.other

let add a b =
  a.vmfunc <- a.vmfunc + b.vmfunc;
  a.syscall <- a.syscall + b.syscall;
  a.ctx <- a.ctx + b.ctx;
  a.ipi <- a.ipi + b.ipi;
  a.copy <- a.copy + b.copy;
  a.sched <- a.sched + b.sched;
  a.other <- a.other + b.other;
  a.walk <- a.walk + b.walk

let scale t n =
  if n <= 0 then create ()
  else
    {
      vmfunc = t.vmfunc / n;
      syscall = t.syscall / n;
      ctx = t.ctx / n;
      ipi = t.ipi / n;
      copy = t.copy / n;
      sched = t.sched / n;
      other = t.other / n;
      walk = t.walk / n;
    }

let pp fmt t =
  Format.fprintf fmt
    "total %d (vmfunc %d, syscall/sysret %d, ctx %d, ipi %d, copy %d, sched %d, other %d; walk %d)"
    (total t) t.vmfunc t.syscall t.ctx t.ipi t.copy t.sched t.other t.walk
