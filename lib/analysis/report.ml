(** Structured violation reports for the static security auditor.

    Every check in {!Gadget}, {!Ept_check} and {!Tramp_check} names the
    invariant it enforces with a stable dotted identifier (the mutation
    tests and the CI gate match on these names):

    - [gadget.*] — VMFUNC encodings outside the trampoline (§3.3, §5)
    - [ept.*] — EPT shape: W^X, execute-only trampoline, EPTP slots
      (§4.1, §4.3)
    - [pt.*] — guest page-table W^X and trampoline protection (§9)
    - [trampoline.*] — abstract-interpretation facts about the
      trampoline code itself (§4.4) *)

type violation = {
  invariant : string;  (** stable dotted name, e.g. ["ept.wx"] *)
  image : string;  (** process / EPT / page-table the fault is in *)
  addr : int option;  (** byte offset, VA or GPA, as fits the invariant *)
  detail : string;
}

let v ?addr ~invariant ~image detail = { invariant; image; addr; detail }

let to_string r =
  Printf.sprintf "[%s] %s%s: %s" r.invariant r.image
    (match r.addr with Some a -> Printf.sprintf " @ %#x" a | None -> "")
    r.detail

let pp fmt r = Format.pp_print_string fmt (to_string r)

let has ~invariant vs = List.exists (fun r -> r.invariant = invariant) vs

(* Deterministic report order regardless of hash-table iteration order in
   the callers. *)
let sort vs =
  List.sort_uniq
    (fun a b ->
      compare (a.invariant, a.image, a.addr, a.detail)
        (b.invariant, b.image, b.addr, b.detail))
    vs

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json r =
  Printf.sprintf "{\"invariant\":\"%s\",\"image\":\"%s\",\"addr\":%s,\"detail\":\"%s\"}"
    (json_escape r.invariant) (json_escape r.image)
    (match r.addr with Some a -> string_of_int a | None -> "null")
    (json_escape r.detail)

let list_to_json vs =
  "[" ^ String.concat "," (List.map to_json vs) ^ "]"
