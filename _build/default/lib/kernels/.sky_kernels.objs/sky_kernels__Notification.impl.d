lib/kernels/notification.ml: Cpu Kernel Sky_sim Sky_ukernel
