lib/blockdev/disk.ml: Proto Ramdisk Sky_core Sky_kernels Sky_ukernel
