lib/ukernel/proc.mli: Sky_mmu
