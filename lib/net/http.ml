(** A deliberately tiny HTTP-style request/response codec.

    Requests are single-line, [CRLF]-free, whole-packet:

    - [GET /kv/<key>]          — KV lookup
    - [PUT /kv/<key> <value>]  — KV store (value = rest of line)
    - [GET /fs/<name>]         — read a whole file from the FS backend

    Responses are [<status> <body>] with numeric status (200/404/400/500).
    Parsing and serialization are pure; the server charges cycles for
    them separately (per-byte, like real header parsing). *)

type request =
  | Kv_get of string
  | Kv_put of string * bytes
  | Fs_get of string

type response = { status : int; body : bytes }

exception Bad_request of string

let prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let after p s = String.sub s (String.length p) (String.length s - String.length p)

let parse_request b =
  let s = Bytes.to_string b in
  if prefix "GET /kv/" s then begin
    let key = after "GET /kv/" s in
    if key = "" then raise (Bad_request "empty key");
    Kv_get key
  end
  else if prefix "PUT /kv/" s then begin
    let rest = after "PUT /kv/" s in
    match String.index_opt rest ' ' with
    | None -> raise (Bad_request "PUT without value")
    | Some i ->
      let key = String.sub rest 0 i in
      if key = "" then raise (Bad_request "empty key");
      Kv_put (key, Bytes.of_string (String.sub rest (i + 1) (String.length rest - i - 1)))
  end
  else if prefix "GET /fs/" s then begin
    let name = after "GET /fs/" s in
    if name = "" then raise (Bad_request "empty path");
    Fs_get name
  end
  else raise (Bad_request (if String.length s > 32 then String.sub s 0 32 else s))

let serialize_request = function
  | Kv_get key -> Bytes.of_string ("GET /kv/" ^ key)
  | Kv_put (key, value) ->
    let prefix = "PUT /kv/" ^ key ^ " " in
    let b = Bytes.create (String.length prefix + Bytes.length value) in
    Bytes.blit_string prefix 0 b 0 (String.length prefix);
    Bytes.blit value 0 b (String.length prefix) (Bytes.length value);
    b
  | Fs_get name -> Bytes.of_string ("GET /fs/" ^ name)

let serialize_response { status; body } =
  let head = string_of_int status ^ " " in
  let b = Bytes.create (String.length head + Bytes.length body) in
  Bytes.blit_string head 0 b 0 (String.length head);
  Bytes.blit body 0 b (String.length head) (Bytes.length body);
  b

let parse_response b =
  let s = Bytes.to_string b in
  match String.index_opt s ' ' with
  | None -> raise (Bad_request "malformed response")
  | Some i ->
    let status =
      match int_of_string_opt (String.sub s 0 i) with
      | Some n -> n
      | None -> raise (Bad_request "non-numeric status")
    in
    { status; body = Bytes.sub b (i + 1) (Bytes.length b - i - 1) }

let ok body = { status = 200; body }
let not_found = { status = 404; body = Bytes.empty }
let bad_request = { status = 400; body = Bytes.empty }
let server_error = { status = 500; body = Bytes.empty }
let service_unavailable = { status = 503; body = Bytes.empty }
let forbidden = { status = 403; body = Bytes.empty }

(* ---- deadline propagation ---- *)

(* A request may carry a relative deadline as a [TTL<cycles> ] prefix —
   serialized only when the client sets one, so the plain wire format
   (and every existing trace) is unchanged. The server strips the prefix
   before parsing and converts the TTL to an absolute deadline against
   the request's arrival time. *)

let with_ttl ~ttl payload =
  if ttl <= 0 then invalid_arg "Http.with_ttl";
  Bytes.cat (Bytes.of_string (Printf.sprintf "TTL%d " ttl)) payload

let split_ttl payload =
  let s = Bytes.to_string payload in
  if not (prefix "TTL" s) then (None, payload)
  else
    match String.index_opt s ' ' with
    | None -> (None, payload)
    | Some sp -> (
      match int_of_string_opt (String.sub s 3 (sp - 3)) with
      | Some ttl when ttl > 0 ->
        (Some ttl, Bytes.sub payload (sp + 1) (Bytes.length payload - sp - 1))
      | _ -> (None, payload))
