(* The §5 defence, live: scan a binary for inadvertent VMFUNC encodings,
   classify each occurrence (Table 3), rewrite, and prove equivalence by
   executing both versions in the reference interpreter.

   Run with:  dune exec examples/rewriter_demo.exe *)

open Sky_isa
open Sky_rewriter

let hex code off len =
  String.concat " "
    (List.init len (fun i ->
         Printf.sprintf "%02x" (Char.code (Bytes.get code (off + i)))))

let () =
  (* A program whose bytes hide VMFUNC (0F 01 D4) five different ways. *)
  let program =
    [
      Insn.Mov_ri (Reg.Rdi, 0x3000L);
      Insn.Mov_ri (Reg.Rax, 7L);
      Insn.Mov_store (Insn.mem ~base:Reg.Rdi (), Reg.Rax);
      (* C1: an actual vmfunc instruction *)
      Insn.Vmfunc;
      (* C3/ModRM: imul $0xD401, (rdi), rcx encodes ModRM = 0F *)
      Insn.Imul_rri (Reg.Rcx, Insn.M (Insn.mem ~base:Reg.Rdi ()), 0xD401);
      (* C3/SIB *)
      Insn.Lea (Reg.Rbx, Insn.mem ~base:Reg.Rdi ~index:(Reg.Rcx, 1) ~disp:0xD401 ());
      (* C3/displacement *)
      Insn.Add_rm (Reg.Rdx, Insn.mem ~base:Reg.Rdi ~disp:0xD4010F ());
      (* C3/immediate *)
      Insn.Add_ri (Reg.Rax, 0xD4010F);
    ]
  in
  let code = Encode.encode_all program in
  Printf.printf "scanning %d bytes of code...\n\n" (Bytes.length code);
  List.iter
    (fun occ ->
      Printf.printf "  offset %2d: %-12s bytes [%s]\n" occ.Scan.at
        (Scan.case_name occ.Scan.case)
        (hex code occ.Scan.at 3))
    (Scan.scan code);
  let r = Rewrite.rewrite ~code_va:0x2000 code in
  Printf.printf "\nrewrote %d occurrences in %d scan rounds\n" r.Rewrite.patched
    r.Rewrite.iterations;
  Printf.printf "rewrite page: %d bytes of snippets at VA 0x1000\n"
    (Bytes.length r.Rewrite.rewrite_page);
  Printf.printf "patterns left (code + rewrite page): %d\n\n"
    (Scan.count_pattern (Bytes.cat r.Rewrite.code r.Rewrite.rewrite_page));
  (* Execute original vs rewritten. *)
  let flat ~code ~page =
    let buf = Bytes.make (0x2000 + Bytes.length code) '\x00' in
    Bytes.blit page 0 buf Rewrite.rewrite_page_va (Bytes.length page);
    Bytes.blit code 0 buf 0x2000 (Bytes.length code);
    buf
  in
  let run ~code ~page =
    let st = Interp.create () in
    st.Interp.ip <- 0x2000;
    Interp.run st (flat ~code ~page);
    st
  in
  let orig = run ~code ~page:Bytes.empty in
  let rewr = run ~code:r.Rewrite.code ~page:r.Rewrite.rewrite_page in
  Printf.printf "original executed %d vmfunc(s); rewritten executed %d\n"
    (Interp.vmfunc_count orig) (Interp.vmfunc_count rewr);
  List.iter
    (fun reg ->
      let a = Interp.get orig reg and b = Interp.get rewr reg in
      if a <> b then
        Printf.printf "  MISMATCH %s: %Lx vs %Lx\n" (Reg.name reg) a b)
    Reg.all;
  Printf.printf "all 16 registers identical after rewriting: %b\n"
    (List.for_all (fun rg -> Interp.get orig rg = Interp.get rewr rg) Reg.all)
