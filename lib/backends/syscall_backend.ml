(** "Syscall as a privilege": every crossing traps into a filtered
    kernel slowpath.

    The trampoline's SYSCALL hands control to the kernel, which charges
    the full round trip — entry + swapgs, the per-domain
    allowed-entry-point check ({!Sky_ukernel.Entry_filter}), an
    un-PCID'd CR3 write (which flushes), swapgs + SYSRET — before the
    handler runs. Slowest of the three by an order of magnitude, but
    the security argument is the simplest: the kernel is on every call
    path, the grant table is the single source of authority, and the
    [entryfilter] audit pass proves every granted entry VA falls inside
    a blessed code range (the trampoline page). Revocation removes the
    grant, so the very next trap is denied at the filter — there is no
    user-mode state to chase. *)

let descriptor =
  {
    Descriptor.d_kind = Sky_core.Backend.Syscall;
    d_name = "syscall";
    d_title = "Filtered-syscall kernel slowpath with a per-domain entry table";
    d_switch_cycles = Sky_core.Backend.switch_cycles Sky_core.Backend.Syscall;
    d_kernel_on_path = true;
    d_tlb_flush_on_switch = true;
    d_shared_address_space = false;
    d_audit_passes = [ "trampoline"; "entryfilter"; "ept"; "isoflow" ];
    d_invalidation =
      "The (client pid, server id) grant is removed from the kernel's entry \
       filter; the next trap is denied at check time — no user-mode state \
       to invalidate";
    d_security =
      "The kernel mediates every crossing; the entry filter allows only \
       granted (client, server, entry) triples, and the entryfilter audit \
       pass proves every granted entry VA falls inside a blessed code range";
  }
