(** Minimal socket/accept layer over the {!Nic}: per-flow connection
    state, SYN-carries-first-request accept (TCP fast open), in-order
    delivery of whole-request packets, and sequenced replies. *)

type conn = {
  flow : int;
  queue : int;
  mutable rx_seq : int;
  mutable tx_seq : int;
  mutable requests : int;  (** requests answered on this connection *)
}

type t

type event =
  | Accepted of conn  (** new flow; its first request follows *)
  | Request of conn * bytes

exception Out_of_order of { flow : int; got : int; expected : int }

val create : Sky_ukernel.Kernel.t -> Nic.t -> t

val service : t -> queue:int -> core:int -> event option
(** Demultiplex the next RX packet of [queue] (charging flow-table and,
    for new flows, accept costs on [core]); [None] when the ring is
    empty. A SYN packet yields [Accepted] now and its embedded request on
    the next call. *)

val reply : t -> conn -> core:int -> bytes -> unit
(** Send one sequenced response packet back down the connection. *)

val conn_count : t -> int
val accepts : t -> int

val accept_cost : int
val demux_cost : int
