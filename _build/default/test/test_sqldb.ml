(* Tests for the pager, B+tree and DB facade, including model-based
   property tests against Stdlib.Hashtbl. *)

open Sky_ukernel
open Sky_blockdev
open Sky_xv6fs
open Sky_sqldb
open Sky_sim

let fresh ?(value_size = 64) () =
  let machine = Machine.create ~cores:4 ~mem_mib:128 () in
  let k = Kernel.create machine in
  let rd = Ramdisk.create machine ~nblocks:8192 in
  let disk = Disk.direct k rd in
  Fs.mkfs k disk ~core:0 ~size:8192 ();
  let fs = Fs.mount k disk ~core:0 in
  let iface = Fs_iface.of_fs fs in
  let db = Db.create k iface ~core:0 ~name:"tbl" ~value_size in
  (k, iface, db)

let v s = Bytes.of_string s

(* ------------------------------------------------------------------ *)
(* Pager                                                               *)
(* ------------------------------------------------------------------ *)

let test_pager_cache_hits () =
  let _, _, db = fresh () in
  let pager = Db.pager db in
  ignore (Pager.read pager ~core:0 0);
  let h0 = Pager.hits pager in
  ignore (Pager.read pager ~core:0 0);
  ignore (Pager.read pager ~core:0 0);
  Alcotest.(check int) "hits counted" (h0 + 2) (Pager.hits pager)

let test_pager_write_through () =
  let k, iface, db = fresh () in
  ignore k;
  let pager = Db.pager db in
  let page = Bytes.make Pager.page_size 'p' in
  Pager.write pager ~core:0 7 page;
  (* The FS (bypassing the pager cache) sees the data. *)
  let inum =
    match iface.Fs_iface.lookup ~core:0 "tbl" with Some i -> i | None -> assert false
  in
  let back =
    iface.Fs_iface.read ~core:0 ~inum ~off:(7 * Pager.page_size) ~len:Pager.page_size
  in
  Alcotest.(check bool) "write-through" true (Bytes.equal page back)

(* ------------------------------------------------------------------ *)
(* Btree                                                               *)
(* ------------------------------------------------------------------ *)

let test_btree_basic () =
  let _, _, db = fresh () in
  let t = Db.tree db in
  Btree.insert t ~core:0 ~key:5 ~value:(v "five");
  Btree.insert t ~core:0 ~key:3 ~value:(v "three");
  Btree.insert t ~core:0 ~key:9 ~value:(v "nine");
  Alcotest.(check int) "count" 3 (Btree.count t);
  (match Btree.query t ~core:0 5 with
  | Some b -> Alcotest.(check string) "value" "five" (Bytes.to_string (Bytes.sub b 0 4))
  | None -> Alcotest.fail "missing");
  Alcotest.(check bool) "absent" true (Btree.query t ~core:0 7 = None);
  Alcotest.(check (list int)) "sorted" [ 3; 5; 9 ] (Btree.keys t ~core:0)

let test_btree_split_and_depth () =
  let _, _, db = fresh ~value_size:200 () in
  (* value 200 -> ~4 records per leaf: splits kick in fast. *)
  let t = Db.tree db in
  for key = 0 to 199 do
    Btree.insert t ~core:0 ~key ~value:(v (string_of_int key))
  done;
  Alcotest.(check int) "count" 200 (Btree.count t);
  Alcotest.(check (list int)) "in order" (List.init 200 Fun.id) (Btree.keys t ~core:0);
  for key = 0 to 199 do
    match Btree.query t ~core:0 key with
    | Some b ->
      let s = string_of_int key in
      Alcotest.(check string) "value survives splits" s
        (Bytes.to_string (Bytes.sub b 0 (String.length s)))
    | None -> Alcotest.failf "lost key %d" key
  done

let test_btree_persistence () =
  let k, iface, db = fresh () in
  let t = Db.tree db in
  for key = 0 to 50 do
    Btree.insert t ~core:0 ~key ~value:(v (string_of_int key))
  done;
  Btree.flush t ~core:0;
  (* Reopen from disk. *)
  let db2 = Db.open_ k iface ~core:0 ~name:"tbl" in
  Alcotest.(check int) "count persisted" 51 (Btree.count (Db.tree db2));
  match Db.query db2 ~core:0 ~key:37 with
  | Some b -> Alcotest.(check string) "persisted value" "37" (Bytes.to_string (Bytes.sub b 0 2))
  | None -> Alcotest.fail "lost after reopen"

let prop_btree_vs_model =
  QCheck.Test.make ~name:"btree agrees with a Hashtbl model" ~count:15
    QCheck.(
      list_of_size (Gen.int_range 1 300)
        (pair (int_bound 500) (int_bound 2)))
    (fun ops ->
      let _, _, db = fresh ~value_size:32 () in
      let t = Db.tree db in
      let model : (int, string) Hashtbl.t = Hashtbl.create 64 in
      List.iter
        (fun (key, op) ->
          match op with
          | 0 ->
            let value = Printf.sprintf "v%d" key in
            Btree.insert t ~core:0 ~key ~value:(v value);
            Hashtbl.replace model key value
          | 1 ->
            let deleted = Btree.delete t ~core:0 ~key in
            let expected = Hashtbl.mem model key in
            Hashtbl.remove model key;
            if deleted <> expected then failwith "delete mismatch"
          | _ ->
            let got = Btree.query t ~core:0 key in
            let expected = Hashtbl.find_opt model key in
            let ok =
              match (got, expected) with
              | None, None -> true
              | Some b, Some s ->
                Bytes.to_string (Bytes.sub b 0 (String.length s)) = s
              | _ -> false
            in
            if not ok then failwith "query mismatch")
        ops;
      (* Final sweep. *)
      Hashtbl.fold
        (fun key value acc ->
          acc
          &&
          match Btree.query t ~core:0 key with
          | Some b -> Bytes.to_string (Bytes.sub b 0 (String.length value)) = value
          | None -> false)
        model true
      && Btree.count t = Hashtbl.length model)

(* ------------------------------------------------------------------ *)
(* Db                                                                  *)
(* ------------------------------------------------------------------ *)

let test_db_crud () =
  let _, _, db = fresh () in
  Db.insert db ~core:0 ~key:1 ~value:(v "one");
  Alcotest.(check bool) "query hit" true (Db.query db ~core:0 ~key:1 <> None);
  Alcotest.(check bool) "update hit" true (Db.update db ~core:0 ~key:1 ~value:(v "uno"));
  Alcotest.(check bool) "update miss" false (Db.update db ~core:0 ~key:2 ~value:(v "x"));
  Alcotest.(check bool) "delete hit" true (Db.delete db ~core:0 ~key:1);
  Alcotest.(check bool) "delete miss" false (Db.delete db ~core:0 ~key:1);
  Alcotest.(check bool) "gone" true (Db.query db ~core:0 ~key:1 = None)

let test_db_query_cheaper_than_insert () =
  (* Table 4's shape in miniature: queries hit the pager cache and cost
     far fewer cycles than journaled writes. *)
  let k, _, db = fresh () in
  for key = 0 to 99 do
    Db.insert db ~core:0 ~key ~value:(v "warm")
  done;
  let cpu = Kernel.cpu k ~core:0 in
  let t0 = Sky_sim.Cpu.cycles cpu in
  for key = 0 to 99 do
    ignore (Db.query db ~core:0 ~key)
  done;
  let query_cycles = Sky_sim.Cpu.cycles cpu - t0 in
  let t1 = Sky_sim.Cpu.cycles cpu in
  for key = 100 to 199 do
    Db.insert db ~core:0 ~key ~value:(v "cold")
  done;
  let insert_cycles = Sky_sim.Cpu.cycles cpu - t1 in
  Alcotest.(check bool)
    (Printf.sprintf "query (%d) < insert (%d)" query_cycles insert_cycles)
    true
    (query_cycles < insert_cycles)

(* ------------------------------------------------------------------ *)
(* Journal crash recovery                                              *)
(* ------------------------------------------------------------------ *)

(* Crash after [n] more disk writes during an update; reopen; the value
   must be entirely old or entirely new, never torn, and the tree must
   stay readable. *)
let db_crash_after n =
  let machine = Sky_sim.Machine.create ~cores:2 ~mem_mib:128 () in
  let k = Kernel.create machine in
  let rd = Ramdisk.create machine ~nblocks:8192 in
  let raw = Disk.direct k rd in
  Fs.mkfs k raw ~core:0 ~size:8192 ();
  let budget = ref max_int in
  let disk = Disk.faulty raw ~fail_after:budget in
  let fs = Fs.mount k disk ~core:0 in
  let iface = Fs_iface.of_fs fs in
  let db = Db.create k iface ~core:0 ~name:"t" ~value_size:32 in
  Db.insert db ~core:0 ~key:1 ~value:(v "old-value");
  Btree.flush (Db.tree db) ~core:0;
  budget := n;
  (try ignore (Db.update db ~core:0 ~key:1 ~value:(v "new-value"))
   with Disk.Crash _ -> ());
  (* Power back on: remount the FS (log replay), reopen the DB (journal
     rollback). *)
  let fs' = Fs.mount k raw ~core:0 in
  let db' = Db.open_ k (Fs_iface.of_fs fs') ~core:0 ~name:"t" in
  match Db.query db' ~core:0 ~key:1 with
  | None -> Alcotest.failf "key lost after crash at %d" n
  | Some got ->
    let s = Bytes.to_string (Bytes.sub got 0 9) in
    if s <> "old-value" && s <> "new-value" then
      Alcotest.failf "torn value %S after crash at %d" s n

let test_db_crash_recovery_sweep () =
  List.iter db_crash_after [ 0; 1; 2; 3; 4; 6; 8; 11; 15; 20; 30; 50 ]

let prop_db_crash_recovery =
  QCheck.Test.make ~name:"journal rollback: never a torn row" ~count:15
    QCheck.(int_bound 60)
    (fun n ->
      db_crash_after n;
      true)

(* ------------------------------------------------------------------ *)
(* SQL front end                                                       *)
(* ------------------------------------------------------------------ *)

let test_sql_crud () =
  let _, _, db = fresh () in
  (match Sql.exec db ~core:0 "INSERT INTO tbl VALUES (42, 'hello world')" with
  | Sql.Ok_affected 1 -> ()
  | _ -> Alcotest.fail "insert");
  (match Sql.exec db ~core:0 "SELECT value FROM tbl WHERE key = 42" with
  | Sql.Row s -> Alcotest.(check string) "select" "hello world" s
  | _ -> Alcotest.fail "select");
  (match Sql.exec db ~core:0 "UPDATE tbl SET value = 'bye' WHERE key = 42" with
  | Sql.Ok_affected 1 -> ()
  | _ -> Alcotest.fail "update");
  (match Sql.exec db ~core:0 "select * from tbl where key = 42" with
  | Sql.Row s -> Alcotest.(check string) "lowercase keywords" "bye" s
  | _ -> Alcotest.fail "select 2");
  (match Sql.exec db ~core:0 "DELETE FROM tbl WHERE key = 42" with
  | Sql.Ok_affected 1 -> ()
  | _ -> Alcotest.fail "delete");
  match Sql.exec db ~core:0 "SELECT * FROM tbl WHERE key = 42" with
  | Sql.Empty -> ()
  | _ -> Alcotest.fail "gone"

let test_sql_misses_and_escapes () =
  let _, _, db = fresh () in
  (match Sql.exec db ~core:0 "UPDATE tbl SET value = 'x' WHERE key = 7" with
  | Sql.Ok_affected 0 -> ()
  | _ -> Alcotest.fail "update miss = 0 rows");
  (match Sql.exec db ~core:0 "INSERT INTO tbl VALUES (1, 'it''s quoted')" with
  | Sql.Ok_affected 1 -> ()
  | _ -> Alcotest.fail "insert escape");
  match Sql.exec db ~core:0 "SELECT * FROM tbl WHERE key = 1" with
  | Sql.Row s -> Alcotest.(check string) "'' unescapes" "it's quoted" s
  | _ -> Alcotest.fail "select escape"

let test_sql_errors () =
  let _, _, db = fresh () in
  let bad stmt =
    try
      ignore (Sql.exec db ~core:0 stmt);
      Alcotest.failf "expected Parse_error for %S" stmt
    with Sql.Parse_error _ -> ()
  in
  bad "DROP TABLE tbl";
  bad "INSERT INTO tbl VALUES (1)";
  bad "SELECT * FROM other WHERE key = 1";
  bad "SELECT * FROM tbl WHERE name = 'x'";
  bad "INSERT INTO tbl VALUES (1, 'unterminated)";
  bad ""

let prop_sql_roundtrip =
  QCheck.Test.make ~name:"SQL insert/select roundtrips arbitrary strings" ~count:50
    QCheck.(pair (int_bound 1000) (string_of_size (Gen.int_range 0 40)))
    (fun (key, value) ->
      QCheck.assume (not (String.contains value '\000'));
      let _, _, db = fresh () in
      let quoted =
        String.concat "''" (String.split_on_char '\'' value)
      in
      (match
         Sql.exec db ~core:0
           (Printf.sprintf "INSERT INTO tbl VALUES (%d, '%s')" key quoted)
       with
      | Sql.Ok_affected 1 -> ()
      | _ -> failwith "insert");
      match
        Sql.exec db ~core:0 (Printf.sprintf "SELECT * FROM tbl WHERE key = %d" key)
      with
      | Sql.Row s -> s = value
      | _ -> false)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "sqldb"
    [
      ( "pager",
        [
          Alcotest.test_case "cache hits" `Quick test_pager_cache_hits;
          Alcotest.test_case "write-through" `Quick test_pager_write_through;
        ] );
      ( "btree",
        [
          Alcotest.test_case "basic" `Quick test_btree_basic;
          Alcotest.test_case "splits" `Quick test_btree_split_and_depth;
          Alcotest.test_case "persistence" `Quick test_btree_persistence;
        ]
        @ qc [ prop_btree_vs_model ] );
      ( "db",
        [
          Alcotest.test_case "crud" `Quick test_db_crud;
          Alcotest.test_case "query cheaper than insert" `Quick
            test_db_query_cheaper_than_insert;
        ] );
      ( "journal",
        [ Alcotest.test_case "crash sweep" `Slow test_db_crash_recovery_sweep ]
        @ qc [ prop_db_crash_recovery ] );
      ( "sql",
        [
          Alcotest.test_case "crud statements" `Quick test_sql_crud;
          Alcotest.test_case "misses + quote escapes" `Quick
            test_sql_misses_and_escapes;
          Alcotest.test_case "parse errors" `Quick test_sql_errors;
        ]
        @ qc [ prop_sql_roundtrip ] );
    ]
