(** `--jobs N` replica harness: N concurrent, scoped, byte-compared
    replicas of one experiment. *)

val replicate : jobs:int -> render:('a -> string) -> (unit -> 'a) -> 'a
(** Run [f] on [jobs] domains, each in a fresh {!Sky_sim.Scopes} bundle;
    render every replica's result with [render] and fail unless all
    renderings are byte-identical. Returns replica 0's result.
    [jobs <= 1] runs [f] directly on the calling domain. *)
