lib/xv6fs/fsck.ml: Array Bytes Char Fs Hashtbl Int32 List Printf String Superblock
