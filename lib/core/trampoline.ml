(** The SkyBridge trampoline (§4.4): a real x86-64 code page mapped by the
    Subkernel into every registered process at {!Sky_ukernel.Layout.trampoline_va}.

    The bytes matter: the trampoline contains the only two legal VMFUNC
    instructions in a process, and the binary rewriter's allowed-range
    logic and the W^X story are exercised against this page. Execution is
    modelled: each crossing charges the paper's measured 64 cycles of
    save/restore + stack-install work (§6.3) plus VMFUNC's 134, and pulls
    the trampoline's code lines through the i-cache. *)

open Sky_isa

(* direct_server_call entry:
     save callee-saved registers, load the EPTP index, VMFUNC into the
     server, install the server stack, call the registered handler via
     the server function list, VMFUNC back, restore, return. *)
let insns =
  [
    Insn.Push Reg.Rbx;
    Insn.Push Reg.Rbp;
    Insn.Push Reg.R12;
    Insn.Push Reg.R13;
    Insn.Push Reg.R14;
    Insn.Push Reg.R15;
    Insn.Mov_rr (Reg.Rbp, Reg.Rsp) (* remember the client stack *);
    Insn.Mov_ri (Reg.Rax, 0L) (* VM function 0: EPTP switching *);
    Insn.Mov_rr (Reg.Rcx, Reg.Rdi) (* EPTP index argument *);
    Insn.Vmfunc;
    Insn.Mov_rr (Reg.Rsp, Reg.Rsi) (* install the server stack *);
    Insn.Mov_load (Reg.R11, Insn.mem ~base:Reg.Rdx ()) (* function list *);
    Insn.Call_rel 0 (* call the registered handler (linked at runtime) *);
    Insn.Mov_ri (Reg.Rax, 0L);
    Insn.Mov_ri (Reg.Rcx, 0L) (* EPTP index 0: back to the caller *);
    Insn.Vmfunc;
    Insn.Mov_rr (Reg.Rsp, Reg.Rbp) (* restore the client stack *);
    Insn.Pop Reg.R15;
    Insn.Pop Reg.R14;
    Insn.Pop Reg.R13;
    Insn.Pop Reg.R12;
    Insn.Pop Reg.Rbp;
    Insn.Pop Reg.Rbx;
    Insn.Ret;
  ]

let code () = Encode.encode_all insns

(* The MPK call gate (ERIM §3): same frame discipline, but the switch is
   a WRPKRU pair. The hardware faults unless ECX = EDX = 0, hence the
   XOR-zeroing immediately before each gate — the exact entry/exit
   sequence ERIM's binary inspection insists on. Arguments move over:
   RDI = server PKRU view, RSI = server stack, R8 = function list,
   R9 = the client's resting PKRU to restore on the way out (stashed in
   callee-saved RBX across the handler call). *)
let mpk_insns =
  [
    Insn.Push Reg.Rbx;
    Insn.Push Reg.Rbp;
    Insn.Push Reg.R12;
    Insn.Push Reg.R13;
    Insn.Push Reg.R14;
    Insn.Push Reg.R15;
    Insn.Mov_rr (Reg.Rbp, Reg.Rsp) (* remember the client stack *);
    Insn.Mov_rr (Reg.Rbx, Reg.R9) (* client resting PKRU, survives the call *);
    Insn.Xor_rr (Reg.Rcx, Reg.Rcx);
    Insn.Xor_rr (Reg.Rdx, Reg.Rdx);
    Insn.Mov_rr (Reg.Rax, Reg.Rdi) (* server view *);
    Insn.Wrpkru;
    Insn.Mov_rr (Reg.Rsp, Reg.Rsi) (* install the server stack *);
    Insn.Mov_load (Reg.R11, Insn.mem ~base:Reg.R8 ()) (* function list *);
    Insn.Call_rel 0 (* call the registered handler (linked at runtime) *);
    Insn.Xor_rr (Reg.Rcx, Reg.Rcx);
    Insn.Xor_rr (Reg.Rdx, Reg.Rdx);
    Insn.Mov_rr (Reg.Rax, Reg.Rbx) (* restore the client view *);
    Insn.Wrpkru;
    Insn.Mov_rr (Reg.Rsp, Reg.Rbp) (* restore the client stack *);
    Insn.Pop Reg.R15;
    Insn.Pop Reg.R14;
    Insn.Pop Reg.R13;
    Insn.Pop Reg.R12;
    Insn.Pop Reg.Rbp;
    Insn.Pop Reg.Rbx;
    Insn.Ret;
  ]

(* The filtered-syscall gate: the crossing is one SYSCALL; the kernel's
   trap path checks the entry filter, context-switches, runs the
   handler, and SYSRETs back. RDI carries the server id the kernel
   filters on. *)
let syscall_insns =
  [
    Insn.Push Reg.Rbx;
    Insn.Push Reg.Rbp;
    Insn.Push Reg.R12;
    Insn.Push Reg.R13;
    Insn.Push Reg.R14;
    Insn.Push Reg.R15;
    Insn.Mov_rr (Reg.Rbp, Reg.Rsp);
    Insn.Mov_rr (Reg.Rax, Reg.Rdi) (* server id for the entry filter *);
    Insn.Syscall;
    Insn.Mov_rr (Reg.Rsp, Reg.Rbp);
    Insn.Pop Reg.R15;
    Insn.Pop Reg.R14;
    Insn.Pop Reg.R13;
    Insn.Pop Reg.R12;
    Insn.Pop Reg.Rbp;
    Insn.Pop Reg.Rbx;
    Insn.Ret;
  ]

let mpk_code () = Encode.encode_all mpk_insns
let syscall_code () = Encode.encode_all syscall_insns

let code_for = function
  | Backend.Vmfunc -> code ()
  | Backend.Mpk -> mpk_code ()
  | Backend.Syscall -> syscall_code ()

(* Offsets of the two legal VMFUNCs — the allowed ranges for the
   rewriter. *)
let vmfunc_ranges code =
  List.map (fun off -> (off, 3)) (Sky_rewriter.Scan.find_pattern code)

(* Offsets of the two legal WRPKRUs — the MPK scan's allowed ranges. *)
let wrpkru_ranges code =
  List.map (fun off -> (off, 3)) (Sky_rewriter.Scan.find_wrpkru code)

let crossing_cycles = Sky_sim.Costs.skybridge_crossing_other

let charge_crossing cpu ~text_pa =
  Sky_trace.Trace.span ~core:(Sky_sim.Cpu.id cpu) ~cat:"other"
    "trampoline.crossing"
  @@ fun () ->
  Sky_sim.Cpu.charge cpu crossing_cycles;
  (* The trampoline text itself flows through the i-cache. *)
  Sky_sim.Memsys.touch_range_state_only cpu Sky_sim.Memsys.Insn ~pa:text_pa
    ~len:128
