lib/core/exec.mli: Sky_ukernel
