lib/ukernel/capability.mli:
