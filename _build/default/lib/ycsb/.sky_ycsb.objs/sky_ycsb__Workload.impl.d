lib/ycsb/workload.ml: Array Sky_sim Sky_sqldb Sky_ukernel Zipf
