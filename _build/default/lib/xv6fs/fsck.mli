(** File-system consistency checker.

    Walks the on-disk structures the way a recovery tool would and
    cross-checks them: the block bitmap must agree exactly with the set
    of blocks reachable from live inodes, no block may be referenced
    twice, every directory entry must point at a live inode, and inode
    sizes must fit their block counts. Run after crash-recovery in the
    property tests: the log must never let an inconsistent image reach
    the disk. *)

type problem =
  | Leaked_block of int  (** marked used in the bitmap, reachable nowhere *)
  | Unmarked_block of int * int  (** (block, inum): reachable but marked free *)
  | Double_use of int * int * int  (** block claimed by two inodes *)
  | Dangling_dirent of string * int  (** name -> free/invalid inode *)
  | Bad_size of int  (** inode whose size exceeds its mapped blocks *)

val problem_to_string : problem -> string

val check : Fs.t -> core:int -> problem list
(** Empty list = consistent. Takes the FS big lock; must not be called
    from inside a transaction. *)
